package core

// Multi-run merging: the paper collects hours of data per class; a single
// virtual run resolves tails down to its own span. RunMerged pools several
// independently-seeded runs into one result, which deepens the resolvable
// tail in proportion to the pooled span (longer collections and more seeds
// are statistically equivalent here because the generators are stationary).
//
// Replicas are independent simulations, so they fan out across a bounded
// worker pool; determinism is preserved because each replica's seed depends
// only on (base seed, replica index) and replicas are merged in index
// order regardless of which worker finishes first.

import (
	"strconv"

	"wdmlat/internal/causetool"
	"wdmlat/internal/par"
	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
	"wdmlat/internal/workload"
)

// ReplicaSeed derives the seed of replica i of a pooled run. Replica 0
// keeps the base seed (so RunMerged(cfg, 1) ≡ Run(cfg)); later replicas
// hash their index against the base through SplitMix64. The earlier
// additive scheme (base + i*7919) let campaigns with stride-offset base
// seeds share entire replica streams (base 3 replica 1 == base 7922
// replica 0); a keyed hash cannot alias that way.
func ReplicaSeed(base uint64, i int) uint64 {
	if i == 0 {
		return base
	}
	return sim.DeriveSeed(base, "replica/"+strconv.Itoa(i))
}

// RunMerged executes runs independent replicas of cfg (seeds derived per
// replica via ReplicaSeed) on a worker pool bounded by GOMAXPROCS and
// pools their distributions.
func RunMerged(cfg RunConfig, runs int) *Result {
	return RunMergedJobs(cfg, runs, 0)
}

// RunMergedJobs is RunMerged with an explicit worker bound (jobs <= 0
// means GOMAXPROCS, jobs == 1 runs strictly serially). The result is
// byte-identical for every jobs value.
func RunMergedJobs(cfg RunConfig, runs, jobs int) *Result {
	if runs <= 1 {
		return Run(cfg)
	}
	cfg.fillDefaults() // resolve the default seed before deriving from it
	results := make([]*Result, runs)
	par.ForEach(runs, jobs, func(i int) {
		next := cfg
		next.Seed = ReplicaSeed(cfg.Seed, i)
		results[i] = Run(next)
	})
	base := results[0]
	for _, r := range results[1:] {
		base.Merge(r)
	}
	return base
}

// Clone returns a deep copy of r that Merge can accumulate into without
// mutating r: histograms and the priority maps are copied, the episode
// slice is re-sliced (episodes themselves are never mutated by pooling).
// Collectors that hand out a stored result more than once must merge into
// a clone, or the second collection double-pools the first one's data.
func (r *Result) Clone() *Result {
	cp := *r
	cloneH := func(h *stats.Histogram) *stats.Histogram {
		if h == nil {
			return nil
		}
		return h.Clone()
	}
	cp.DpcInt = cloneH(r.DpcInt)
	cp.DpcIntOracle = cloneH(r.DpcIntOracle)
	cp.IntLat = cloneH(r.IntLat)
	cp.DpcLat = cloneH(r.DpcLat)
	if r.Thread != nil {
		cp.Thread = make(map[int]*stats.Histogram, len(r.Thread))
		for p, h := range r.Thread {
			cp.Thread[p] = cloneH(h)
		}
	}
	if r.HwToThread != nil {
		cp.HwToThread = make(map[int]*stats.Histogram, len(r.HwToThread))
		for p, h := range r.HwToThread {
			cp.HwToThread[p] = cloneH(h)
		}
	}
	if r.Episodes != nil {
		cp.Episodes = append([]causetool.Episode(nil), r.Episodes...)
	}
	cp.NicLat = cloneH(r.NicLat)
	if r.Storm != nil {
		st := *r.Storm
		st.Backlog = append([]workload.BacklogSample(nil), r.Storm.Backlog...)
		cp.Storm = &st
	}
	if r.Pacing != nil {
		p := *r.Pacing
		p.FrameLat = cloneH(r.Pacing.FrameLat)
		p.Jitter = cloneH(r.Pacing.Jitter)
		cp.Pacing = &p
	}
	return &cp
}

// Merge pools other into r: histograms, counters and episode lists are
// accumulated. Histogram and counter pooling is order-independent; the
// episode list preserves merge order, so callers pooling replicas must
// merge in a fixed (replica-index) order for full determinism.
func (r *Result) Merge(other *Result) {
	r.Observed += other.Observed
	r.Samples += other.Samples
	r.DpcInt.Merge(other.DpcInt)
	r.DpcIntOracle.Merge(other.DpcIntOracle)
	if r.IntLat != nil && other.IntLat != nil {
		r.IntLat.Merge(other.IntLat)
	}
	if r.DpcLat != nil && other.DpcLat != nil {
		r.DpcLat.Merge(other.DpcLat)
	}
	for p, h := range r.Thread {
		if oh, ok := other.Thread[p]; ok {
			h.Merge(oh)
		}
	}
	for p, h := range r.HwToThread {
		if oh, ok := other.HwToThread[p]; ok {
			h.Merge(oh)
		}
	}
	r.Counters.ISRCycles += other.Counters.ISRCycles
	r.Counters.DPCCycles += other.Counters.DPCCycles
	r.Counters.EpisodeCycles += other.Counters.EpisodeCycles
	r.Counters.SwitchCycles += other.Counters.SwitchCycles
	r.Counters.ThreadCycles += other.Counters.ThreadCycles
	r.Counters.Interrupts += other.Counters.Interrupts
	r.Counters.DPCs += other.Counters.DPCs
	r.Counters.Switches += other.Counters.Switches
	r.Counters.Episodes += other.Counters.Episodes
	if other.Counters.MaxLockEpisode > r.Counters.MaxLockEpisode {
		r.Counters.MaxLockEpisode = other.Counters.MaxLockEpisode
	}
	if other.Counters.MaxMaskEpisode > r.Counters.MaxMaskEpisode {
		r.Counters.MaxMaskEpisode = other.Counters.MaxMaskEpisode
	}
	r.Counters.NMIs += other.Counters.NMIs
	r.Counters.NMIsDropped += other.Counters.NMIsDropped
	r.AudioUnderruns += other.AudioUnderruns
	r.AudioPeriods += other.AudioPeriods
	r.Episodes = append(r.Episodes, other.Episodes...)
	if r.NicLat != nil && other.NicLat != nil {
		r.NicLat.Merge(other.NicLat)
	}
	if r.Storm != nil && other.Storm != nil {
		r.Storm.Offered += other.Storm.Offered
		r.Storm.Delivered += other.Storm.Delivered
		r.Storm.Dropped += other.Storm.Dropped
		r.Storm.Asserts += other.Storm.Asserts
		// Backlog trajectories concatenate in merge (replica) order; the
		// livelock criterion re-splits them where T resets.
		r.Storm.Backlog = append(r.Storm.Backlog, other.Storm.Backlog...)
	}
	if r.Pacing != nil && other.Pacing != nil {
		r.Pacing.VBlanks += other.Pacing.VBlanks
		r.Pacing.Releases += other.Pacing.Releases
		r.Pacing.Completions += other.Pacing.Completions
		r.Pacing.Misses += other.Pacing.Misses
		r.Pacing.Skips += other.Pacing.Skips
		if other.Pacing.MaxLateness > r.Pacing.MaxLateness {
			r.Pacing.MaxLateness = other.Pacing.MaxLateness
		}
		r.Pacing.FrameLat.Merge(other.Pacing.FrameLat)
		r.Pacing.Jitter.Merge(other.Pacing.Jitter)
	}
}
