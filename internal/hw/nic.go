package hw

import "wdmlat/internal/sim"

// NIC models the EtherExpress Pro 100 of the test system: received packets
// accumulate in a ring and the card asserts its interrupt line under a
// configurable interrupt-moderation mode. The web-browsing workload
// delivers download bursts through it (§3.1.3); the interrupt-storm
// frontier drives it with a sustained packet stream and sweeps the
// moderation axis.
//
// Moderation modes:
//
//   - ModeratePerWindow (default): one assertion per pending window — the
//     line raises when the ring goes non-empty and stays logically raised
//     until the driver drains it, re-asserting after a partial drain. This
//     is the card behaviour every paper-era figure was produced under.
//   - ModerateITR: a fixed interrupt-throttle gap — assertions (including
//     partial-drain re-assertions) are spaced at least Gap apart, trading
//     packet-service latency for fewer interrupts per second.
//   - ModerateAdaptive: the ITR gap adapts to the observed arrival rate
//     between a min and max bound — multiplicatively widened when windows
//     arrive full (bursty), tightened when they arrive nearly empty.
type NIC struct {
	eng  *sim.Engine
	line IRQLine

	// InterPacketGap is the wire spacing between packets inside a burst
	// (10 Mbit LAN in the paper ≈ 1.2 ms for a 1500-byte frame; the test
	// LAN was 100 Mbit to over-stress the system).
	InterPacketGap sim.Cycles

	// ring holds pending packet sizes and arr the matching arrival times;
	// head indexes the first undrained entry. Draining advances head
	// instead of re-slicing the base away, which would discard capacity
	// and make every burst reallocate; receive compacts the live window
	// back to the base once the backing slice fills, so a sustained storm
	// (which never lets the ring empty) cannot grow the backing without
	// bound.
	ring      []int
	arr       []sim.Time
	waits     []sim.Cycles
	head      int
	delivered uint64
	dropped   uint64
	ringCap   int
	raised    bool

	// Interrupt moderation state.
	mode         Moderation
	gap          sim.Cycles // current inter-assert spacing (ITR/adaptive)
	gapMin       sim.Cycles // adaptive bounds
	gapMax       sim.Cycles
	lastAssert   sim.Time
	everAsserted bool
	sinceAssert  int // packets received since the last assertion
	asserts      uint64
	throttle     *sim.Event
	throttleFn   func(sim.Time)
}

// Moderation selects the card's interrupt-moderation strategy.
type Moderation int

// The three moderation modes of the frontier sweep.
const (
	ModeratePerWindow Moderation = iota
	ModerateITR
	ModerateAdaptive
)

// String returns the mode's slug, used in campaign cell keys and artifact
// labels — stable, lower-case, no spaces.
func (m Moderation) String() string {
	switch m {
	case ModeratePerWindow:
		return "per-assert"
	case ModerateITR:
		return "itr"
	case ModerateAdaptive:
		return "adaptive"
	default:
		return "moderation(?)"
	}
}

// Adaptive window classification: a full-ish window widens the gap, a
// nearly-empty one tightens it (the classic rate-adaptive ITR scheme).
const (
	adaptHighWater = 16
	adaptLowWater  = 2
)

// NewNIC creates a card with the given ring capacity, in per-window mode.
func NewNIC(eng *sim.Engine, line IRQLine, ringCap int, gap sim.Cycles) *NIC {
	if ringCap <= 0 {
		panic("hw: non-positive NIC ring capacity")
	}
	n := &NIC{eng: eng, line: line, ringCap: ringCap, InterPacketGap: gap}
	n.throttleFn = func(sim.Time) {
		n.throttle = nil
		if len(n.ring)-n.head > 0 {
			n.doAssert()
		}
	}
	return n
}

// SetModeration configures the interrupt-moderation mode. For ModerateITR,
// gap is the fixed inter-assert spacing; for ModerateAdaptive, [gapMin,
// gapMax] bound the adaptive gap (which starts at gapMin). Configure before
// traffic flows — the mode is part of the card's identity, not a runtime
// control register.
func (n *NIC) SetModeration(mode Moderation, gap, gapMin, gapMax sim.Cycles) {
	if n.everAsserted || len(n.ring) > 0 {
		panic("hw: NIC moderation changed after traffic")
	}
	switch mode {
	case ModeratePerWindow:
	case ModerateITR:
		if gap <= 0 {
			panic("hw: non-positive ITR gap")
		}
	case ModerateAdaptive:
		if gapMin <= 0 || gapMax < gapMin {
			panic("hw: invalid adaptive gap bounds")
		}
		gap = gapMin
	default:
		panic("hw: unknown NIC moderation mode")
	}
	n.mode, n.gap, n.gapMin, n.gapMax = mode, gap, gapMin, gapMax
}

// Moderation returns the configured mode.
func (n *NIC) Moderation() Moderation { return n.mode }

// Gap returns the current inter-assert spacing (0 in per-window mode).
func (n *NIC) Gap() sim.Cycles { return n.gap }

// DeliverBurst schedules n packets of the given size arriving back to back
// starting now. Each arrival raises the interrupt line if it is not already
// raised.
func (n *NIC) DeliverBurst(packets, bytes int) {
	if packets <= 0 || bytes <= 0 {
		panic("hw: invalid NIC burst")
	}
	// One arrival closure serves the whole burst: every packet in a burst
	// has the same size, and allocating per packet dominated the machine's
	// steady-state garbage.
	rx := func(sim.Time) { n.receive(bytes) }
	for i := 0; i < packets; i++ {
		delay := sim.Cycles(i) * n.InterPacketGap
		n.eng.After(delay, "nic-rx", rx)
	}
}

// Deliver receives one packet now. The interrupt-storm workload schedules
// its own arrival process and feeds packets in one at a time.
func (n *NIC) Deliver(bytes int) {
	if bytes <= 0 {
		panic("hw: invalid NIC packet")
	}
	n.receive(bytes)
}

func (n *NIC) receive(bytes int) {
	if len(n.ring)-n.head >= n.ringCap {
		n.dropped++
		return
	}
	if len(n.ring) >= n.ringCap && n.head > 0 {
		// The backing slice is full but the live window is not: compact it
		// back to the base instead of letting append grow the backing. A
		// sustained storm never fully drains the ring, so without this the
		// backing grows by every accepted packet for the whole run. (Drain
		// results are documented as valid only until the next receive, so
		// moving the live window here is within contract.)
		n.ring = n.ring[:copy(n.ring, n.ring[n.head:])]
		n.arr = n.arr[:copy(n.arr, n.arr[n.head:])]
		n.head = 0
	}
	n.ring = append(n.ring, bytes)
	n.arr = append(n.arr, n.eng.Now())
	n.sinceAssert++
	if !n.raised {
		n.tryAssert()
	}
}

// tryAssert raises the line now or, in throttled modes, no earlier than one
// gap after the previous assertion.
func (n *NIC) tryAssert() {
	if n.mode == ModeratePerWindow {
		n.doAssert()
		return
	}
	now := n.eng.Now()
	next := n.lastAssert.Add(n.gap)
	if !n.everAsserted || !next.After(now) {
		n.doAssert()
		return
	}
	if n.throttle == nil {
		n.throttle = n.eng.After(next.Sub(now), "nic-itr", n.throttleFn)
	}
}

func (n *NIC) doAssert() {
	if n.mode == ModerateAdaptive && n.everAsserted {
		n.adapt()
	}
	n.raised = true
	n.asserts++
	n.lastAssert = n.eng.Now()
	n.everAsserted = true
	n.sinceAssert = 0
	n.line.Assert()
}

// adapt widens the gap when assertion windows arrive full (bursty traffic —
// coalesce harder) and tightens it when they arrive nearly empty (sparse
// traffic — favour latency).
func (n *NIC) adapt() {
	switch {
	case n.sinceAssert >= adaptHighWater:
		n.gap *= 2
		if n.gap > n.gapMax {
			n.gap = n.gapMax
		}
	case n.sinceAssert <= adaptLowWater:
		n.gap /= 2
		if n.gap < n.gapMin {
			n.gap = n.gapMin
		}
	}
}

// Drain removes up to max packets from the ring (the driver ISR/DPC calls
// this), returning their sizes. When the ring empties the line deasserts;
// if packets remain the card re-asserts (subject to moderation) so the
// driver takes another pass. The returned slice aliases the ring's recycled
// storage and is only valid until the card next receives a packet.
func (n *NIC) Drain(max int) []int {
	pkts, _ := n.drain(max, false)
	return pkts
}

// DrainTimed is Drain, additionally reporting each drained packet's
// queueing delay (arrival to drain — the latency cost of interrupt
// moderation). The waits slice aliases recycled storage exactly like the
// packet slice.
func (n *NIC) DrainTimed(max int) ([]int, []sim.Cycles) {
	return n.drain(max, true)
}

func (n *NIC) drain(max int, timed bool) ([]int, []sim.Cycles) {
	avail := len(n.ring) - n.head
	if max <= 0 || avail == 0 {
		n.raised = avail > 0
		return nil, nil
	}
	if max > avail {
		max = avail
	}
	out := n.ring[n.head : n.head+max]
	var waits []sim.Cycles
	if timed {
		if cap(n.waits) < max {
			n.waits = make([]sim.Cycles, max)
		}
		waits = n.waits[:max]
		now := n.eng.Now()
		for i, at := range n.arr[n.head : n.head+max] {
			waits[i] = now.Sub(at)
		}
	}
	n.head += max
	n.delivered += uint64(max)
	if n.head < len(n.ring) {
		// More work: model a level-triggered line by re-asserting.
		n.tryAssert()
	} else {
		n.ring = n.ring[:0]
		n.arr = n.arr[:0]
		n.head = 0
		n.raised = false
	}
	return out, waits
}

// Pending returns the number of packets in the ring.
func (n *NIC) Pending() int { return len(n.ring) - n.head }

// Delivered returns packets handed to the driver; Dropped counts ring
// overflows.
func (n *NIC) Delivered() uint64 { return n.delivered }

// Dropped returns the number of packets lost to ring overflow.
func (n *NIC) Dropped() uint64 { return n.dropped }

// Asserts returns the number of interrupt assertions — the coalescing
// ratio is Delivered/Asserts.
func (n *NIC) Asserts() uint64 { return n.asserts }
