package hw

import (
	"testing"

	"wdmlat/internal/sim"
)

// TestNICSustainedStormKeepsBackingBounded is the regression test for the
// head-indexed ring under a continuous storm: more than one ring's worth of
// packets arrives with no idle gap, and the driver drains slower than the
// wire delivers, so the ring never fully empties and the reset-on-empty
// path never runs. Before the compaction fix, every accepted packet grew
// the backing slice for the whole storm (append never re-used the drained
// prefix); the backing must instead stay bounded by the ring capacity.
func TestNICSustainedStormKeepsBackingBounded(t *testing.T) {
	eng := sim.NewEngine(1)
	const ringCap = 8
	n := NewNIC(eng, LineFunc(func() {}), ringCap, 10)
	// 100 packets at one per 10 cycles; the driver drains one per 25
	// cycles, so the ring saturates and stays non-empty throughout.
	n.DeliverBurst(100, 1500)
	var drained int
	var poll func(sim.Time)
	poll = func(sim.Time) {
		if got := n.Drain(1); len(got) == 1 {
			drained++
			if got[0] != 1500 {
				t.Fatalf("drained packet size %d, want 1500", got[0])
			}
		}
		eng.After(25, "drv-poll", poll)
	}
	eng.After(25, "drv-poll", poll)
	eng.RunUntil(1000) // storm window: arrivals end at t=990

	if n.Pending() == 0 {
		t.Fatal("ring emptied mid-storm; the test no longer exercises the sustained case")
	}
	if n.Pending() > ringCap {
		t.Fatalf("pending %d exceeds ring capacity %d", n.Pending(), ringCap)
	}
	if len(n.ring) > ringCap {
		t.Fatalf("backing slice holds %d entries, want <= ring capacity %d (compaction regressed)",
			len(n.ring), ringCap)
	}
	if cap(n.ring) > 2*ringCap {
		t.Fatalf("backing capacity grew to %d for an %d-entry ring (unbounded append regressed)",
			cap(n.ring), ringCap)
	}
	if len(n.arr) != len(n.ring) {
		t.Fatalf("arrival-time slice out of sync: %d vs %d", len(n.arr), len(n.ring))
	}
	if got := n.Delivered() + n.Dropped() + uint64(n.Pending()); got != 100 {
		t.Fatalf("delivered %d + dropped %d + pending %d = %d, want 100 offered",
			n.Delivered(), n.Dropped(), n.Pending(), got)
	}
	if n.Dropped() == 0 {
		t.Fatal("a storm faster than the drain rate must overflow the ring")
	}

	// Drain the remainder: the packets that survived compaction must all be
	// intact and the ring must reset cleanly.
	for n.Pending() > 0 {
		for _, b := range n.Drain(4) {
			if b != 1500 {
				t.Fatalf("post-storm drain saw size %d, want 1500", b)
			}
			drained++
		}
	}
	if uint64(drained) != n.Delivered() {
		t.Fatalf("drained %d packets, delivered counter says %d", drained, n.Delivered())
	}
}

func TestNICITRThrottlesAssertRate(t *testing.T) {
	eng := sim.NewEngine(1)
	var n *NIC
	asserts := 0
	// Driver: fully drain on every assertion.
	n = NewNIC(eng, LineFunc(func() {
		asserts++
		n.Drain(1 << 20)
	}), 64, 100)
	n.SetModeration(ModerateITR, 1000, 0, 0)
	// One packet every 100 cycles for 10k cycles: unthrottled this would be
	// ~100 assertions; a 1000-cycle ITR gap allows at most ~11.
	n.DeliverBurst(100, 1500)
	eng.RunUntil(10_100)
	if asserts < 9 || asserts > 12 {
		t.Fatalf("asserts = %d, want ~10 under a 1000-cycle ITR gap", asserts)
	}
	if n.Asserts() != uint64(asserts) {
		t.Fatalf("Asserts() = %d, line saw %d", n.Asserts(), asserts)
	}
	if n.Delivered() != 100 {
		t.Fatalf("delivered = %d, want 100", n.Delivered())
	}
}

func TestNICITRFirstAssertImmediateThenDeferred(t *testing.T) {
	eng := sim.NewEngine(1)
	var at []sim.Time
	n := NewNIC(eng, LineFunc(func() { at = append(at, eng.Now()) }), 64, 10)
	n.SetModeration(ModerateITR, 1000, 0, 0)
	eng.After(100, "p1", func(sim.Time) { n.Deliver(1500) })
	eng.RunUntil(150)
	if len(at) != 1 || at[0] != 100 {
		t.Fatalf("first packet should assert immediately: %v", at)
	}
	n.Drain(10)
	// Second packet lands inside the throttle window: the assertion must be
	// deferred to exactly lastAssert+gap.
	eng.After(150, "p2", func(sim.Time) { n.Deliver(1500) }) // arrives at t=300
	eng.RunUntil(2000)
	if len(at) != 2 {
		t.Fatalf("asserts = %v, want deferred second assert", at)
	}
	if at[1] != 1100 {
		t.Fatalf("throttled assert at %d, want 1100 (lastAssert 100 + gap 1000)", at[1])
	}
}

func TestNICAdaptiveGapWidensAndTightens(t *testing.T) {
	eng := sim.NewEngine(1)
	var n *NIC
	n = NewNIC(eng, LineFunc(func() { n.Drain(1 << 20) }), 256, 10)
	n.SetModeration(ModerateAdaptive, 0, 100, 10_000)
	if n.Gap() != 100 {
		t.Fatalf("adaptive gap starts at %d, want gapMin 100", n.Gap())
	}
	// Dense phase: one packet per cycle — every window is full, so the gap
	// must widen to the max bound (doubling per full window: the widening
	// gaps sum to ~23k cycles, well inside the 30k-cycle dense phase).
	n.InterPacketGap = 1
	n.DeliverBurst(30_000, 1500)
	eng.RunUntil(40_000)
	if n.Gap() != 10_000 {
		t.Fatalf("gap after dense phase = %d, want widened to 10000", n.Gap())
	}
	// Sparse phase: one packet per 20k cycles — windows carry one packet,
	// so the gap must tighten back to the min bound.
	n.InterPacketGap = 20_000
	n.DeliverBurst(20, 1500)
	eng.RunUntil(500_000)
	if n.Gap() != 100 {
		t.Fatalf("gap after sparse phase = %d, want tightened to 100", n.Gap())
	}
}

func TestNICDrainTimedReportsQueueingDelay(t *testing.T) {
	eng := sim.NewEngine(1)
	n := NewNIC(eng, LineFunc(func() {}), 64, 10)
	eng.After(100, "p1", func(sim.Time) { n.Deliver(1500) })
	eng.After(300, "p2", func(sim.Time) { n.Deliver(1500) })
	eng.RunUntil(500)
	pkts, waits := n.DrainTimed(10)
	if len(pkts) != 2 || len(waits) != 2 {
		t.Fatalf("drained %d pkts / %d waits, want 2/2", len(pkts), len(waits))
	}
	if waits[0] != 400 || waits[1] != 200 {
		t.Fatalf("waits = %v, want [400 200]", waits)
	}
}

func TestNICModerationValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		fn()
	}
	n := NewNIC(eng, LineFunc(func() {}), 8, 10)
	mustPanic("zero ITR gap", func() { n.SetModeration(ModerateITR, 0, 0, 0) })
	mustPanic("inverted adaptive bounds", func() { n.SetModeration(ModerateAdaptive, 0, 100, 10) })
	mustPanic("unknown mode", func() { n.SetModeration(Moderation(99), 0, 0, 0) })
	n.Deliver(1500)
	mustPanic("mode change after traffic", func() { n.SetModeration(ModerateITR, 100, 0, 0) })
}

func TestModerationStrings(t *testing.T) {
	for m, want := range map[Moderation]string{
		ModeratePerWindow: "per-assert",
		ModerateITR:       "itr",
		ModerateAdaptive:  "adaptive",
	} {
		if got := m.String(); got != want {
			t.Fatalf("Moderation(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestDisplayVBlanksAtExactPeriods(t *testing.T) {
	eng := sim.NewEngine(1)
	var at []sim.Time
	d := NewDisplay(eng, LineFunc(func() { at = append(at, eng.Now()) }))
	d.Start(16_700)
	eng.RunUntil(60_000)
	if len(at) != 3 {
		t.Fatalf("got %d vblanks, want 3", len(at))
	}
	for i, tm := range at {
		if want := sim.Time(16_700 * (i + 1)); tm != want {
			t.Fatalf("vblank %d at %d, want %d", i, tm, want)
		}
	}
	if d.VBlanks() != 3 {
		t.Fatalf("VBlanks = %d", d.VBlanks())
	}
	if d.NominalVBlankTime(2) != 33_400 {
		t.Fatalf("NominalVBlankTime(2) = %d", d.NominalVBlankTime(2))
	}
}

func TestDisplayStop(t *testing.T) {
	eng := sim.NewEngine(1)
	ticks := 0
	d := NewDisplay(eng, LineFunc(func() { ticks++ }))
	d.Start(1000)
	eng.RunUntil(3500)
	d.Stop()
	eng.RunUntil(10_000)
	if ticks != 3 {
		t.Fatalf("vblanks after stop = %d, want 3", ticks)
	}
}

func TestDisplayValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Start(0) should panic")
		}
	}()
	NewDisplay(eng, LineFunc(func() {})).Start(0)
}
