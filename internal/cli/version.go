package cli

// The shared -version flag: every cmd binary reports the same build
// identity (module path + VCS revision stamped by the go toolchain), so a
// results directory or a server's logs can always be traced back to the
// exact code that produced them.

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
)

// exitFunc is swapped out by tests; production -version exits the process.
var exitFunc = os.Exit

// Version returns the build identity string: module path, VCS revision
// (short, "+dirty" when the tree was modified at build time) and the Go
// toolchain version. Builds without build info (rare: non-module builds)
// report "devel".
func Version() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	mod := info.Main.Path
	if mod == "" {
		mod = "wdmlat"
	}
	rev, dirty := "unknown", ""
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	return fmt.Sprintf("%s %s%s (%s)", mod, rev, dirty, info.GoVersion)
}

// AddVersionFlag registers -version on fs: when set, parsing prints
// "<name> <Version()>" and exits 0, so binaries need only this one call
// before their flag.Parse().
func AddVersionFlag(name string, fs *flag.FlagSet) {
	fs.BoolFunc("version", "print version (module path + VCS revision) and exit", func(string) error {
		fmt.Printf("%s %s\n", name, Version())
		exitFunc(0)
		return nil
	})
}
