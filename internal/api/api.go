// Package api is the wire protocol of the latency-campaign service: the
// campaign submission spec, job status and progress-event shapes shared by
// internal/server and internal/client, and the content address that makes
// the service a cache rather than a job queue.
//
// A campaign's identity is derived from its content, not from when or by
// whom it was submitted: CampaignID hashes the ordered list of per-cell
// checkpoint fingerprints (store.Fingerprint over base seed, cell key and
// the canonical config with the derived per-cell seed filled in — exactly
// the key the on-disk result cache files live under). Two submissions of
// the same campaign therefore map to the same job, in flight or finished,
// and a campaign executed by the server shares cell-level cache entries
// with the same campaign run locally against the same store directory.
package api

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"wdmlat/internal/campaign/store"
	"wdmlat/internal/core"
	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
)

// CellSpec is one submitted measurement cell: the stable key its seed is
// derived from and its run configuration (Config.Seed is ignored — the
// runner overwrites it with the seed derived from the campaign base seed
// and the key, as in internal/campaign).
type CellSpec struct {
	Key    string         `json:"key"`
	Config core.RunConfig `json:"config"`
}

// CampaignSpec is the POST /v1/campaigns request body: a base seed and the
// ordered cell list. Order matters — the campaign's result stream is one
// core.EncodeResult document per cell, in this order.
type CampaignSpec struct {
	BaseSeed uint64     `json:"base_seed"`
	Cells    []CellSpec `json:"cells"`
	// Precision, if set, turns every cell into a logical cell run under the
	// adaptive-replica policy: replicas "<key>/0", "<key>/1", ... are added
	// until the policy's tail quantiles converge (or its MaxRuns cap is
	// hit), and the result stream carries one pooled document per logical
	// cell. The policy is part of the campaign identity — CampaignID folds
	// its canonical form in, so the same cells at a different precision are
	// a different campaign — but not of the per-replica cache fingerprints,
	// because a replica's result does not depend on the stopping rule that
	// requested it (see DESIGN.md §12).
	Precision *stats.Precision `json:"precision,omitempty"`
}

// Seed returns the effective base seed (the runner treats 0 as 1, so the
// content address must too).
func (s *CampaignSpec) Seed() uint64 {
	if s.BaseSeed == 0 {
		return 1
	}
	return s.BaseSeed
}

// Validate rejects specs the campaign runner would panic on (empty cell
// list, empty or duplicate keys) before they reach a worker pool.
func (s *CampaignSpec) Validate() error {
	if len(s.Cells) == 0 {
		return fmt.Errorf("api: campaign has no cells")
	}
	seen := make(map[string]struct{}, len(s.Cells))
	for i, c := range s.Cells {
		if c.Key == "" {
			return fmt.Errorf("api: cell %d has an empty key", i)
		}
		if _, dup := seen[c.Key]; dup {
			return fmt.Errorf("api: duplicate cell key %q", c.Key)
		}
		seen[c.Key] = struct{}{}
	}
	if s.Precision != nil {
		if err := s.Precision.Validate(); err != nil {
			return fmt.Errorf("api: invalid precision policy: %w", err)
		}
	}
	return nil
}

// CampaignID is the campaign's content address: SHA-256 over the ordered
// per-cell store fingerprints (each of which already covers the codec
// version, base seed, cell key and canonical config with the derived
// seed), plus — for adaptive campaigns — the canonical form of the
// precision policy, because precision changes the pooled result stream.
// Identical campaigns — same seed, same cells, same order, same policy —
// hash identical; reordering the cells changes the result stream and
// therefore the ID. Fixed-replica campaigns (nil Precision) hash exactly
// as before the policy existed, so published IDs stay stable.
func CampaignID(s *CampaignSpec) string {
	seed := s.Seed()
	h := sha256.New()
	fmt.Fprintf(h, "wdmlat-campaign\x00%d\x00%d\x00", seed, len(s.Cells))
	for _, c := range s.Cells {
		cfg := c.Config
		cfg.Seed = sim.DeriveSeed(seed, c.Key)
		fmt.Fprintf(h, "%s\x00", store.Fingerprint(seed, c.Key, cfg))
	}
	if s.Precision != nil {
		fmt.Fprintf(h, "precision\x00%s\x00", s.Precision.Canonical())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Job states, in lifecycle order. Queued and Running are transient;
// Done, Failed and Cancelled are terminal.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// TerminalState reports whether a job in this state will never change
// again (its events stream has ended and its status is final).
func TerminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Status is a job's externally visible state: GET /v1/campaigns/{id}, and
// the body of a successful submission.
type Status struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Done/Total count published cells (any outcome) out of cells
	// submitted, exactly as campaign.Runner.Progress reports them.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Cached is set on terminal jobs that executed zero cells: every cell
	// was served from the content-addressed result cache.
	Cached bool `json:"cached"`
	// Error carries the failure (or cancellation) detail on terminal
	// non-done jobs.
	Error string `json:"error,omitempty"`
}

// Event kinds on the NDJSON /events stream.
const (
	EventState = "state" // job changed state; State is set
	EventCell  = "cell"  // one cell was published; Key is set
)

// Event is one line of GET /v1/campaigns/{id}/events. Seq numbers are
// dense from 0, so a watcher that saw event N resumes with ?from=N+1 and
// misses nothing.
type Event struct {
	Seq   int    `json:"seq"`
	Type  string `json:"type"`
	State string `json:"state,omitempty"`
	Key   string `json:"key,omitempty"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// Error is the JSON body of every non-2xx response.
type Error struct {
	Message string `json:"error"`
}
