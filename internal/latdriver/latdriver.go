// Package latdriver implements the paper's latency measurement tools
// (§2.2) as WDM drivers against the simulated kernel:
//
//   - the portable DPC-interrupt + thread latency driver (Figure 3): the
//     driver I/O read routine reads the TSC and sets a timer; the timer DPC
//     reads the TSC and signals the measurement threads; each thread reads
//     the TSC on wakeup; the control application computes the latencies and
//     immediately re-issues the read;
//   - the Windows 9x-only raw interrupt-latency extension, which installs
//     its own handler on the PIT vector ("on Windows 98 it is possible,
//     using legacy interfaces, to supply our own timer ISR, whereas on
//     Windows NT this would require source code access") and splits the
//     measurement into interrupt latency and DPC latency.
//
// Latencies are estimated exactly as in the paper: the hardware-interrupt
// instant is taken to be "I/O-read TSC + programmed delay", giving +/- one
// PIT period of resolution (§2.2). Ground-truth ("oracle") histograms
// computed from the simulator's exact tick times are kept alongside so the
// estimation error itself is testable.
package latdriver

import (
	"fmt"

	"wdmlat/internal/cpu"
	"wdmlat/internal/hw"
	"wdmlat/internal/kernel"
	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
	"wdmlat/internal/wdm"
)

// Options configures the measurement tool.
type Options struct {
	// DelayTicks is the ARBITRARY_DELAY of the pseudocode, in PIT ticks.
	// Default 3 (3 ms at the tool's 1 kHz PIT programming).
	DelayTicks int
	// HighPriority and MediumPriority are the two measurement thread
	// priorities; defaults are the paper's 28 and 24. The medium thread
	// completes the IRP back to the control application.
	HighPriority, MediumPriority int
	// HookTimerISR installs the Windows 9x-only raw-interrupt hook. The
	// Lab only enables it on personalities that support legacy vector
	// patching.
	HookTimerISR bool
	// ReadCost, DpcCost and ThreadCost model the tool's own instruction
	// footprint (TSC reads, bookkeeping). Defaults are a few hundred
	// cycles — the tool is deliberately "extremely low cost, non-invasive"
	// (§1).
	ReadCost, DpcCost, ThreadCost sim.Cycles
	// OnThreadLatency, if set, observes every thread-latency sample as it
	// is recorded. The cause tool (§2.3) uses it as its episode trigger.
	OnThreadLatency func(priority int, lat sim.Cycles)
}

func (o *Options) fillDefaults() {
	if o.DelayTicks == 0 {
		o.DelayTicks = 3
	}
	if o.HighPriority == 0 {
		o.HighPriority = kernel.RealtimeHigh
	}
	if o.MediumPriority == 0 {
		o.MediumPriority = kernel.RealtimeDefault
	}
	if o.ReadCost == 0 {
		o.ReadCost = 150
	}
	if o.DpcCost == 0 {
		o.DpcCost = 200
	}
	if o.ThreadCost == 0 {
		o.ThreadCost = 150
	}
}

// Tool is an installed measurement driver pair plus its collected
// distributions.
type Tool struct {
	k    *kernel.Kernel
	pit  *hw.PIT
	drv  *wdm.Driver
	opts Options

	gTimer *kernel.Timer
	gDpc   *kernel.DPC
	events map[int]*kernel.Event // per measurement-thread priority

	// Per-cycle state (one measurement in flight at a time).
	armed    bool
	due      sim.Time // estimated hardware-interrupt instant: ASB[0]+delay
	dpcTsc   sim.Time
	isrTsc   sim.Time
	isrValid bool
	inflight *kernel.IRP

	running bool
	unhook  func()

	// Measurement-loop callbacks, hoisted to fields so the per-cycle
	// issueRead path allocates nothing (both close over t alone, and the
	// loop runs once per sample).
	onComplete func(*kernel.IRP, sim.Time)
	rearm      func(sim.Time)

	// Results.
	hDpcInt       *stats.Histogram // estimated, the paper's headline number
	hDpcIntOracle *stats.Histogram // against exact tick time
	hIntLat       *stats.Histogram // hook mode only
	hDpcLat       *stats.Histogram // hook mode only
	hThread       map[int]*stats.Histogram
	hHwToThread   map[int]*stats.Histogram // end-to-end: estimated H/W int → thread
	samples       uint64
	isrMisses     uint64
}

// Install loads the measurement driver on a machine. The PIT must already
// be programmed (the tool assumes the 1 kHz reprogramming has happened at
// machine assembly, as §2.2 describes).
func Install(k *kernel.Kernel, pit *hw.PIT, opts Options) (*Tool, error) {
	opts.fillDefaults()
	if opts.HighPriority <= opts.MediumPriority {
		return nil, fmt.Errorf("latdriver: high priority %d must exceed medium %d",
			opts.HighPriority, opts.MediumPriority)
	}
	freq := k.CPU().Freq()
	t := &Tool{
		k:             k,
		pit:           pit,
		opts:          opts,
		events:        make(map[int]*kernel.Event),
		hDpcInt:       stats.NewHistogram(freq),
		hDpcIntOracle: stats.NewHistogram(freq),
		hThread:       make(map[int]*stats.Histogram),
		hHwToThread:   make(map[int]*stats.Histogram),
	}
	if opts.HookTimerISR {
		t.hIntLat = stats.NewHistogram(freq)
		t.hDpcLat = stats.NewHistogram(freq)
	}

	drv, err := wdm.Load(k, "WDMLAT", t.driverEntry)
	if err != nil {
		return nil, err
	}
	t.drv = drv
	return t, nil
}

// driverEntry is the DriverEntry of §2.2.1: create the single-shot timer,
// the synchronization events, and the measurement threads; install the read
// dispatch; optionally patch the PIT vector.
func (t *Tool) driverEntry(drv *wdm.Driver) error {
	t.gTimer = drv.KeCreateTimer("gTimer")
	t.gDpc = kernel.NewDPC("WDMLAT", kernel.MediumImportance, t.latDpcRoutine)
	drv.MajorRead = t.latRead

	for _, p := range []int{t.opts.HighPriority, t.opts.MediumPriority} {
		p := p
		t.events[p] = drv.KeCreateEvent(fmt.Sprintf("gEvent%d", p), kernel.SynchronizationEvent)
		t.hThread[p] = stats.NewHistogram(t.k.CPU().Freq())
		t.hHwToThread[p] = stats.NewHistogram(t.k.CPU().Freq())
		drv.PsCreateSystemThread(fmt.Sprintf("LatThread%d", p), func(tc *kernel.ThreadContext) {
			t.latThreadFunc(tc, p)
		})
	}

	if t.opts.HookTimerISR {
		t.unhook = t.k.CPU().Hook(t.k.ClockVector(), t.timerISRHook)
	}
	return nil
}

// latRead is the driver I/O read routine (§2.2.2): record the TSC into
// ASB[0] and arm the timer; the estimated hardware-interrupt instant for
// this cycle is ASB[0] + delay.
func (t *Tool) latRead(irp *kernel.IRP) {
	tsc := t.drv.GetCycleCount()
	irp.ASB[0] = tsc
	t.due = tsc.Add(sim.Cycles(t.opts.DelayTicks) * t.k.TickPeriod())
	t.isrValid = false
	t.armed = true
	t.inflight = irp
	t.drv.KeSetTimer(t.gTimer, t.opts.DelayTicks, t.gDpc)
}

// timerISRHook is the Windows 9x legacy timer ISR (§2.2): it runs on every
// PIT interrupt ahead of the OS handler, and for the tick that satisfies
// the armed timer it records the raw interrupt latency sample.
func (t *Tool) timerISRHook(now sim.Time, chain cpu.Handler) {
	t.k.CPU().AddCharge(60) // the hook's own footprint
	tsc := t.k.CPU().TSC()
	if t.armed && !t.isrValid {
		nominal := t.pit.NominalTickTime(t.pit.Ticks())
		if nominal >= t.due || tsc >= t.due {
			t.isrTsc = tsc
			t.isrValid = true
			lat := tsc.Sub(t.due)
			if lat < 0 {
				lat = 0
			}
			t.hIntLat.Add(lat)
		}
	}
	chain(now)
}

// latDpcRoutine is the timer DPC (§2.2.3): record the TSC into ASB[1],
// then signal both measurement threads.
func (t *Tool) latDpcRoutine(c *kernel.DpcContext) {
	tsc := c.Now()
	t.dpcTsc = tsc
	if irp := t.inflight; irp != nil {
		irp.ASB[1] = tsc
	}
	t.armed = false

	// Estimated DPC-interrupt latency: ASB[1] - (ASB[0] + delay).
	est := tsc.Sub(t.due)
	if est < 0 {
		est = 0
	}
	t.hDpcInt.Add(est)

	// Oracle: against the exact hardware tick that fired the timer.
	actual := t.firingTick()
	if orc := tsc.Sub(actual); orc >= 0 {
		t.hDpcIntOracle.Add(orc)
	}

	// Hook mode: split into interrupt + DPC latency (Figure 3, Win98 row).
	if t.opts.HookTimerISR {
		if t.isrValid {
			if d := tsc.Sub(t.isrTsc); d >= 0 {
				t.hDpcLat.Add(d)
			}
		} else {
			t.isrMisses++
		}
	}

	c.Charge(t.opts.DpcCost)
	c.SetEvent(t.events[t.opts.HighPriority])
	c.SetEvent(t.events[t.opts.MediumPriority])
}

// firingTick returns the exact hardware time of the first PIT assertion at
// or after the timer's due time — the simulator's ground truth for "the
// hardware interrupt was asserted here".
func (t *Tool) firingTick() sim.Time {
	return t.pit.FirstTickAtOrAfter(t.due)
}

// latThreadFunc is the measurement thread body (§2.2.4): raise to the
// target priority, then loop waiting on the event, timestamping each
// wakeup. The medium-priority thread completes the IRP, which makes the
// control application compute the cycle's results and issue the next read.
func (t *Tool) latThreadFunc(tc *kernel.ThreadContext, priority int) {
	tc.SetPriority(priority)
	ev := t.events[priority]
	completer := priority == t.opts.MediumPriority
	for {
		tc.Wait(ev)
		tsc := tc.Now()
		if lat := tsc.Sub(t.dpcTsc); lat >= 0 {
			t.hThread[priority].Add(lat)
			if t.opts.OnThreadLatency != nil {
				t.opts.OnThreadLatency(priority, lat)
			}
		}
		// Table 3's end-to-end rows: estimated hardware interrupt → this
		// thread's first instruction after the wait.
		if lat := tsc.Sub(t.due); lat >= 0 {
			t.hHwToThread[priority].Add(lat)
		}
		tc.Exec(t.opts.ThreadCost)
		if completer {
			irp := t.inflight
			t.inflight = nil
			if irp != nil {
				irp.ASB[2] = tsc
				tc.CompleteIrp(irp)
			}
		}
	}
}

// Start begins the measurement loop: the control application issues the
// first ReadFileEx; every completion issues the next.
func (t *Tool) Start() error {
	if t.running {
		return fmt.Errorf("latdriver: already running")
	}
	t.running = true
	return t.issueRead()
}

func (t *Tool) issueRead() error {
	if t.onComplete == nil {
		t.rearm = func(sim.Time) {
			if !t.running {
				return
			}
			if err := t.issueRead(); err != nil {
				panic(err)
			}
		}
		t.onComplete = func(irp *kernel.IRP, at sim.Time) {
			t.samples++
			if t.running {
				// The control application calculates and outputs the
				// latencies before issuing the next ReadFileEx (Figure 3,
				// "Control App: Calculate, Output Latencies"); its
				// user-mode delay varies, which smears the next cycle's
				// timer phase across the PIT period.
				delay := t.k.Engine().RNG().Cyclesn(t.k.TickPeriod())
				t.k.Engine().After(delay, "latctl-rearm", t.rearm)
			}
			// The driver has dropped its inflight reference by completion
			// time and nothing reads the packet after this routine.
			t.k.FreeIRP(irp)
		}
	}
	_, err := t.drv.ReadFileEx(t.onComplete)
	return err
}

// Stop ends the measurement loop after the in-flight cycle and removes the
// legacy hook.
func (t *Tool) Stop() {
	t.running = false
	if t.unhook != nil {
		t.unhook()
		t.unhook = nil
	}
}

// Samples returns the number of completed measurement cycles.
func (t *Tool) Samples() uint64 { return t.samples }

// IsrMisses returns cycles where the legacy hook failed to attribute the
// firing tick (possible when the interrupt was delayed past the estimation
// window); their interrupt/DPC split is not recorded.
func (t *Tool) IsrMisses() uint64 { return t.isrMisses }

// DpcInterruptLatency returns the estimated DPC-interrupt latency
// distribution — the quantity plotted for both OSes in Figure 4.
func (t *Tool) DpcInterruptLatency() *stats.Histogram { return t.hDpcInt }

// DpcInterruptLatencyOracle returns the same latency measured against the
// simulator's exact tick times (no estimation error).
func (t *Tool) DpcInterruptLatencyOracle() *stats.Histogram { return t.hDpcIntOracle }

// InterruptLatency returns the raw interrupt latency distribution (legacy
// hook mode only; nil otherwise).
func (t *Tool) InterruptLatency() *stats.Histogram { return t.hIntLat }

// DpcLatency returns the ISR-to-DPC latency distribution (legacy hook mode
// only; nil otherwise).
func (t *Tool) DpcLatency() *stats.Histogram { return t.hDpcLat }

// ThreadLatency returns the thread latency distribution for one of the two
// configured measurement priorities (nil for other priorities).
func (t *Tool) ThreadLatency(priority int) *stats.Histogram { return t.hThread[priority] }

// HwToThreadLatency returns the end-to-end distribution from the estimated
// hardware interrupt to the thread's first instruction — Table 3's "H/W
// Int. to kernel RT thread" rows.
func (t *Tool) HwToThreadLatency(priority int) *stats.Histogram { return t.hHwToThread[priority] }

// HighPriority and MediumPriority report the configured thread priorities.
func (t *Tool) HighPriority() int { return t.opts.HighPriority }

// MediumPriority reports the lower measurement thread priority.
func (t *Tool) MediumPriority() int { return t.opts.MediumPriority }
