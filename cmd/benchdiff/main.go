// Command benchdiff compares two benchmark records produced by
// `go test -json -bench` (the `make bench` output) and enforces the repo's
// perf-regression policy: a benchmark may not get more than -max-regress
// slower in ns/op, and may not allocate more per op, than the baseline.
//
// Usage:
//
//	benchdiff -base BENCH_0.json -new BENCH_1.json
//
// The tool prints a comparison table for every benchmark present in both
// files and exits non-zero if any regression exceeds the policy, so it can
// gate CI via `make bench-compare`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"wdmlat/internal/cli"
)

// testEvent is the subset of the `go test -json` event stream benchdiff
// needs: benchmark result lines arrive as Output events, with the
// benchmark's name in the Test field (the Output itself holds only the
// iteration count and metrics).
type testEvent struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// benchResult is one parsed benchmark result line.
type benchResult struct {
	Name     string
	NsPerOp  float64
	BPerOp   float64
	AllocsOp float64
	hasNs    bool
	hasAlloc bool
}

// parseBenchFile reads a `go test -json` stream and returns results keyed by
// benchmark name (GOMAXPROCS suffix stripped). Plain-text benchmark output
// (without -json) is accepted too: lines starting with "Benchmark" parse the
// same way.
func parseBenchFile(path string) (map[string]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string]benchResult)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				continue // tolerate interleaved non-JSON noise
			}
			if ev.Action != "output" {
				continue
			}
			text := strings.TrimSpace(ev.Output)
			if strings.HasPrefix(ev.Test, "Benchmark") && !strings.HasPrefix(text, "Benchmark") {
				// Metrics-only Output ("12  56.7 ns/op ...") for the
				// benchmark named in Test: the result line was split
				// across events at the name/metrics boundary.
				if r, ok := parseMetrics(strings.Fields(text)); ok {
					r.Name = ev.Test
					out[r.Name] = r
				}
				continue
			}
			// Otherwise the Output may itself be a full result line
			// ("BenchmarkName-8  12  56.7 ns/op ..."): fall through.
			line = text
		}
		r, ok := parseBenchLine(strings.TrimSpace(line))
		if ok {
			out[r.Name] = r
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	return out, nil
}

// parseBenchLine parses one testing.B result line:
//
//	BenchmarkName-8   1234   56.7 ns/op   8 B/op   1 allocs/op   0.5 extra-metric
func parseBenchLine(line string) (benchResult, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return benchResult{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchResult{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r, ok := parseMetrics(fields[1:])
	if !ok {
		return benchResult{}, false
	}
	r.Name = name
	return r, true
}

// parseMetrics parses the tail of a benchmark result line: an iteration
// count followed by "value unit" pairs.
func parseMetrics(fields []string) (benchResult, bool) {
	if len(fields) < 3 {
		return benchResult{}, false
	}
	if _, err := strconv.ParseInt(fields[0], 10, 64); err != nil {
		return benchResult{}, false // not an iteration count: a status line
	}
	var r benchResult
	for i := 1; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp, r.hasNs = v, true
		case "B/op":
			r.BPerOp = v
		case "allocs/op":
			r.AllocsOp, r.hasAlloc = v, true
		}
	}
	return r, r.hasNs
}

// rowVerdict is the policy outcome for one benchmark: the formatted table
// cells plus any failure lines the row contributes to the gate.
type rowVerdict struct {
	speedup  string
	allocs   string
	status   string
	failures []string
}

// compareRow applies the regression policy to one benchmark pair. A zero
// ns/op baseline carries no information (a sub-resolution or degenerate
// record), so the speedup column reads "n/a" and the time gate is skipped
// for that row rather than producing an Inf/NaN ratio and a spurious
// verdict. The allocs gate is ratio-free and always applies.
func compareRow(name string, b, n benchResult, maxRegress float64) rowVerdict {
	var v rowVerdict
	v.speedup = "n/a"
	if b.NsPerOp > 0 {
		if n.NsPerOp > 0 {
			v.speedup = fmt.Sprintf("%.2fx", b.NsPerOp/n.NsPerOp)
		}
		if n.NsPerOp > b.NsPerOp*(1+maxRegress) {
			v.status = "  REGRESSION(time)"
			v.failures = append(v.failures, fmt.Sprintf(
				"%s: %.4g -> %.4g ns/op (%.1f%% slower, limit %.0f%%)",
				name, b.NsPerOp, n.NsPerOp,
				(n.NsPerOp/b.NsPerOp-1)*100, maxRegress*100))
		}
	}
	if b.hasAlloc || n.hasAlloc {
		v.allocs = fmt.Sprintf("%.0f -> %.0f", b.AllocsOp, n.AllocsOp)
		if n.AllocsOp > b.AllocsOp {
			v.status += "  REGRESSION(allocs)"
			v.failures = append(v.failures, fmt.Sprintf(
				"%s: allocs/op grew %.0f -> %.0f", name, b.AllocsOp, n.AllocsOp))
		}
	}
	return v
}

// writeComparison renders the comparison table for every benchmark present
// in both records (sorted by name) and returns the accumulated policy
// failures. It errors when the two records share no benchmark: that is a
// tooling mistake (wrong file, renamed suite), not a clean pass. basePath
// and newPath only label the summary line.
func writeComparison(w io.Writer, baseRes, newRes map[string]benchResult,
	basePath, newPath string, maxRegress float64) ([]string, error) {
	names := make([]string, 0, len(baseRes))
	for name := range baseRes {
		if _, ok := newRes[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no common benchmarks between %s and %s", basePath, newPath)
	}

	fmt.Fprintf(w, "%-52s %14s %14s %8s %16s\n",
		"benchmark", "base ns/op", "new ns/op", "speedup", "allocs/op")
	var failures []string
	for _, name := range names {
		v := compareRow(name, baseRes[name], newRes[name], maxRegress)
		failures = append(failures, v.failures...)
		fmt.Fprintf(w, "%-52s %14.4g %14.4g %8s %16s%s\n",
			name, baseRes[name].NsPerOp, newRes[name].NsPerOp,
			v.speedup, v.allocs, v.status)
	}

	fmt.Fprintf(w, "\n%d benchmarks compared (%s -> %s)\n", len(names), basePath, newPath)
	if len(failures) == 0 {
		fmt.Fprintln(w, "no regressions beyond policy")
	}
	return failures, nil
}

func main() {
	base := flag.String("base", "BENCH_0.json", "baseline bench record")
	newer := flag.String("new", "BENCH_1.json", "candidate bench record")
	maxRegress := flag.Float64("max-regress", 0.10,
		"maximum tolerated ns/op regression as a fraction (0.10 = 10%)")
	cli.AddVersionFlag("benchdiff", flag.CommandLine)
	flag.Parse()

	baseRes, err := parseBenchFile(*base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRes, err := parseBenchFile(*newer)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	failures, err := writeComparison(os.Stdout, baseRes, newRes, *base, *newer, *maxRegress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: %d regression(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  -", f)
		}
		os.Exit(1)
	}
}
