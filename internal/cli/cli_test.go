package cli

import (
	"errors"
	"strings"
	"testing"

	"wdmlat/internal/campaign"
	"wdmlat/internal/metrics"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/workload"
)

func TestParseOS(t *testing.T) {
	good := map[string]ospersona.OS{
		"nt4": ospersona.NT4, "NT": ospersona.NT4, "winnt": ospersona.NT4,
		"win98": ospersona.Win98, "98": ospersona.Win98, " W98 ": ospersona.Win98,
	}
	for in, want := range good {
		got, err := ParseOS(in)
		if err != nil || got != want {
			t.Errorf("ParseOS(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseOS("os2warp"); err == nil {
		t.Error("unknown OS should fail")
	}
}

func TestParseOSList(t *testing.T) {
	both, err := ParseOSList("both")
	if err != nil || len(both) != 2 {
		t.Fatalf("both: %v %v", both, err)
	}
	one, err := ParseOSList("nt4")
	if err != nil || len(one) != 1 || one[0] != ospersona.NT4 {
		t.Fatalf("nt4: %v %v", one, err)
	}
	if _, err := ParseOSList("neither"); err == nil {
		t.Error("bad list should fail")
	}
}

func TestParseWorkload(t *testing.T) {
	good := map[string]workload.Class{
		"business": workload.Business, "biz": workload.Business,
		"workstation": workload.Workstation, "wks": workload.Workstation,
		"games": workload.Games, "3d": workload.Games,
		"web": workload.Web,
	}
	for in, want := range good {
		got, err := ParseWorkload(in)
		if err != nil || got != want {
			t.Errorf("ParseWorkload(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseWorkload("spreadsheets"); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestParseWorkloadList(t *testing.T) {
	all, err := ParseWorkloadList("all")
	if err != nil || len(all) != 4 {
		t.Fatalf("all: %v %v", all, err)
	}
	one, err := ParseWorkloadList("web")
	if err != nil || len(one) != 1 || one[0] != workload.Web {
		t.Fatalf("web: %v %v", one, err)
	}
	if _, err := ParseWorkloadList("none"); err == nil {
		t.Error("bad list should fail")
	}
}

func TestOpenStore(t *testing.T) {
	if st, err := OpenStore("", nil); st != nil || err != nil {
		t.Fatalf("empty dir: (%v, %v), want (nil, nil)", st, err)
	}
	dir := t.TempDir() + "/ckpt"
	st, err := OpenStore(dir, metrics.NewRegistry())
	if err != nil || st == nil || st.Dir() != dir {
		t.Fatalf("OpenStore(%q) = (%v, %v)", dir, st, err)
	}
}

func TestReportFailures(t *testing.T) {
	var buf strings.Builder
	ReportFailures(&buf, "tool", []campaign.Failure{
		{Key: "a/0", Err: errors.New("boom")},
		{Key: "b/0", Err: &campaign.PanicError{Key: "b/0", Value: "bad", Stack: []byte("goroutine 1")}},
	})
	out := buf.String()
	for _, want := range []string{`cell "a/0" failed: boom`, `cell "b/0" failed: panic: bad`, "goroutine 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q in:\n%s", want, out)
		}
	}
}
