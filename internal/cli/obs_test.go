package cli

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wdmlat/internal/campaign"
	"wdmlat/internal/core"
	"wdmlat/internal/metrics"
)

// newTestObs builds an Obs on a private FlagSet so tests never touch
// flag.CommandLine.
func newTestObs(t *testing.T, args ...string) *Obs {
	t.Helper()
	fs := flag.NewFlagSet("obs-test", flag.ContinueOnError)
	o := NewObs("obstest", fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return o
}

// TestObsTelemetrySnapshot: -telemetry writes a parseable JSON snapshot of
// the registry on Close, and Close is idempotent (the FailCampaign path and
// a deferred Close may both run).
func TestObsTelemetrySnapshot(t *testing.T) {
	out := filepath.Join(t.TempDir(), "telemetry.json")
	o := newTestObs(t, "-telemetry", out)
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	o.Registry.Counter(campaign.MetricCellsCompleted).Add(7)
	o.Registry.Gauge(campaign.MetricQueueDepth).Set(3)
	o.Registry.Histogram(campaign.MetricCellWallTime).Observe(5 * time.Millisecond)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var s metrics.Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatalf("telemetry is not valid JSON: %v\n%s", err, raw)
	}
	if s.Counters[campaign.MetricCellsCompleted] != 7 {
		t.Fatalf("snapshot counters wrong: %+v", s.Counters)
	}
	if s.Histograms[campaign.MetricCellWallTime].Count != 1 {
		t.Fatalf("snapshot histograms wrong: %+v", s.Histograms)
	}
	if err := os.Remove(out); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatal("second Close rewrote the telemetry file")
	}
}

// TestObsProfiles: -cpuprofile and -memprofile produce non-empty profile
// files through the Start/Close lifecycle.
func TestObsProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	o := newTestObs(t, "-cpuprofile", cpu, "-memprofile", mem)
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to say.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestObsProgressLine: the reporter line carries done/total from the
// runner and an ETA once wall-time observations exist.
func TestObsProgressLine(t *testing.T) {
	o := newTestObs(t, "-progress")
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	run := campaign.New(campaign.Options{
		BaseSeed: 1, Jobs: 2, Metrics: o.Registry,
		Execute: func(core.RunConfig) *core.Result { return &core.Result{} },
	})
	run.Submit(
		campaign.Cell{Key: "a"},
		campaign.Cell{Key: "b"},
		campaign.Cell{Key: "c"},
		campaign.Cell{Key: "d"},
	)
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	line := o.progressLine(run)
	if !strings.Contains(line, "4/4 cells (100%)") {
		t.Fatalf("progress line missing completion: %q", line)
	}
	if !strings.Contains(line, "cells/s") || !strings.Contains(line, "ETA") {
		t.Fatalf("progress line missing throughput/ETA: %q", line)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestObsProgressReporterLifecycle: StartProgress spins the ticker
// goroutine and Close tears it down without leaking or racing (make race
// covers the latter).
func TestObsProgressReporterLifecycle(t *testing.T) {
	old := progressInterval
	progressInterval = time.Millisecond
	defer func() { progressInterval = old }()

	o := newTestObs(t, "-progress")
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	run := campaign.New(campaign.Options{
		BaseSeed: 1, Jobs: 2, Metrics: o.Registry,
		Execute: func(core.RunConfig) *core.Result {
			time.Sleep(2 * time.Millisecond)
			return &core.Result{}
		},
	})
	o.StartProgress(run)
	run.Submit(campaign.Cell{Key: "a"}, campaign.Cell{Key: "b"})
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let at least one tick fire
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
}
