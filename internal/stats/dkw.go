// Dvoretzky–Kiefer–Wolfowitz confidence machinery: distribution-free,
// simultaneous bands around the empirical CDF/CCDF kept in the integer
// histograms, and the quantile confidence intervals they induce. The paper
// publishes fixed-replica tail quantiles with no stated confidence — the
// exact methodology trap Becker & Chakraborty catalog — and these bands
// are what turns every such number into a bounded claim: P(sup_x |F_n(x) -
// F(x)| > eps) <= 2 exp(-2 n eps^2), so eps(n, alpha) = sqrt(ln(2/alpha) /
// (2n)) bounds the whole curve at once, with no assumption about the
// (highly nonsymmetric, long-tailed, §4.2) underlying distribution.
//
// Everything here is a pure function of the histogram's bucket counts, so
// any two processes holding the same merged histogram — different worker
// counts, a resumed campaign, a fleet of remote workers — compute bit-equal
// bands. That purity is what lets the adaptive replica rule in
// internal/campaign treat "is the tail converged?" as part of the
// deterministic campaign contract.
package stats

import (
	"math"

	"wdmlat/internal/sim"
)

// DKWEpsilon returns the half-width of the simultaneous DKW band around
// the empirical CDF of n samples at the given confidence level: the
// smallest eps with P(sup_x |F_n(x) - F(x)| > eps) <= 1 - confidence.
// It shrinks as 1/sqrt(n); with no samples (or a degenerate confidence)
// the band is vacuous and eps is clamped to 1.
func DKWEpsilon(n uint64, confidence float64) float64 {
	if n == 0 || confidence <= 0 || confidence >= 1 {
		return 1
	}
	eps := math.Sqrt(math.Log(2/(1-confidence)) / (2 * float64(n)))
	if eps > 1 {
		return 1
	}
	return eps
}

// CCDFBand returns the DKW confidence band around the empirical CCDF at v:
// with probability >= confidence (simultaneously over every v), the true
// fraction of the distribution >= v lies within [lo, hi]. The band is
// centered on CCDF(v) and clipped to [0, 1].
func (h *Histogram) CCDFBand(v sim.Cycles, confidence float64) (lo, hi float64) {
	eps := DKWEpsilon(h.n, confidence)
	c := h.CCDF(v)
	lo, hi = c-eps, c+eps
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// rankEdge returns a quantile-CI endpoint at bucket resolution: the bucket
// holding rank p of the sample is located exactly as Quantile locates it,
// and the endpoint is that bucket's inclusive lower edge (upper false) or
// its exclusive upper edge (upper true) — always an exact integer bucket
// edge, so CI endpoints are stable under merge order and re-encoding. p is
// clamped to the sample range.
func (h *Histogram) rankEdge(p float64, upper bool) sim.Cycles {
	if h.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := uint64(p * float64(h.n))
	if target >= h.n {
		target = h.n - 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i]
		if cum > target {
			if upper {
				return bucketLow(i + 1)
			}
			return bucketLow(i)
		}
	}
	return bucketLow(numBuckets + 1) // unreachable for n > 0
}

// QuantileCI returns the q-quantile estimate together with its DKW
// confidence interval at the given confidence: by the band inversion, the
// true q-quantile lies in [lo, hi] with probability >= confidence (again
// simultaneously over every q). lo and hi are conservative bucket edges —
// the lower edge of the bucket holding rank q-eps and the upper edge of
// the bucket holding rank q+eps — and est is Quantile(q). When q±eps falls
// outside (0,1) the data carry no distribution-free bound in that
// direction and the interval is clamped to the observed support (see
// QuantileConverged, which refuses to call such an interval converged).
func (h *Histogram) QuantileCI(q, confidence float64) (lo, est, hi sim.Cycles) {
	est = h.Quantile(q)
	if h.n == 0 {
		return 0, est, 0
	}
	eps := DKWEpsilon(h.n, confidence)
	return h.rankEdge(q-eps, false), est, h.rankEdge(q+eps, true)
}

// QuantileConverged reports whether the q-quantile is pinned to the
// requested relative half-width: the DKW interval [lo, hi] must be a real
// two-sided bound (eps small enough that q±eps stays inside (0,1) — for a
// tail quantile this is what demands enough samples to see past it) and
// satisfy (hi-lo)/2 <= relWidth·est with a positive estimate.
func (h *Histogram) QuantileConverged(q, confidence, relWidth float64) bool {
	if h.n == 0 {
		return false
	}
	eps := DKWEpsilon(h.n, confidence)
	if eps >= 1-q || eps >= q {
		return false
	}
	lo, est, hi := h.QuantileCI(q, confidence)
	if est <= 0 {
		return false
	}
	return float64(hi-lo) <= 2*relWidth*float64(est)
}
