package ospersona

import (
	"testing"

	"wdmlat/internal/kernel"
	"wdmlat/internal/sim"
)

func build(t *testing.T, os OS, opts Options) *Machine {
	t.Helper()
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	m := Build(os, opts)
	t.Cleanup(m.Shutdown)
	return m
}

func TestBuildBothPersonalities(t *testing.T) {
	nt := build(t, NT4, Options{})
	w98 := build(t, Win98, Options{})
	if nt.Profile.SupportsLegacyTimerHook {
		t.Fatal("NT must not allow legacy timer ISR hooks (paper §2.2)")
	}
	if !w98.Profile.SupportsLegacyTimerHook {
		t.Fatal("Win98 must allow legacy timer ISR hooks")
	}
	if nt.Kernel.Name() == w98.Kernel.Name() {
		t.Fatal("personalities share a kernel name")
	}
	if nt.PIT.Period() != nt.MS(1) {
		t.Fatalf("PIT period = %d, want 1 ms (tool reprogramming)", nt.PIT.Period())
	}
	if nt.Kernel.Config().WorkerPriority != kernel.RealtimeDefault {
		t.Fatal("work-item worker must run at real-time default priority (paper §4.2)")
	}
}

func TestClockTicksDriveKernelTimers(t *testing.T) {
	m := build(t, NT4, Options{})
	fired := 0
	d := kernel.NewDPC("t", kernel.MediumImportance, func(c *kernel.DpcContext) { fired++ })
	tm := m.Kernel.NewTimer("t")
	m.Eng.At(100, "arm", func(sim.Time) {
		m.Kernel.SetPeriodicTimer(tm, m.MS(1), m.MS(10), d)
	})
	m.RunFor(m.MS(105))
	if fired < 9 || fired > 11 {
		t.Fatalf("periodic timer fired %d times in 105 ms with 10 ms period", fired)
	}
}

func TestFileOpCompletesThroughDiskPath(t *testing.T) {
	m := build(t, NT4, Options{})
	done := 0
	m.Eng.At(1000, "op", func(sim.Time) {
		m.FileOp(64*1024, false, func(c *kernel.DpcContext) { done++ })
	})
	m.RunFor(m.MS(100))
	if done != 1 {
		t.Fatalf("file op completions = %d", done)
	}
	if m.Disk.Transfers() != 1 {
		t.Fatalf("disk transfers = %d", m.Disk.Transfers())
	}
	ctr := m.Kernel.Counters()
	if ctr.Interrupts == 0 || ctr.DPCs == 0 {
		t.Fatalf("file op produced no interrupt/DPC activity: %+v", ctr)
	}
}

func TestWin98FileOpsInjectMoreOverheadThanNT(t *testing.T) {
	run := func(os OS) kernel.Counters {
		m := build(t, os, Options{Seed: 7})
		for i := 0; i < 2000; i++ {
			i := i
			m.Eng.At(sim.Time(i)*sim.Time(m.MS(1)), "op", func(sim.Time) {
				m.FileOp(32*1024, i%2 == 0, nil)
			})
		}
		m.RunFor(m.MS(3000))
		return m.Kernel.Counters()
	}
	nt, w98 := run(NT4), run(Win98)
	if w98.EpisodeCycles < 3*nt.EpisodeCycles {
		t.Fatalf("Win98 episode cycles %d not well above NT %d", w98.EpisodeCycles, nt.EpisodeCycles)
	}
}

func TestSoundSchemeRoutesUIEventsToSoundPath(t *testing.T) {
	quiet := build(t, Win98, Options{Seed: 3})
	loud := build(t, Win98, Options{Seed: 3, SoundScheme: true})
	for _, m := range []*Machine{quiet, loud} {
		for i := 0; i < 200; i++ {
			i := i
			m.Eng.At(sim.Time(i)*sim.Time(m.MS(5)), "ui", func(sim.Time) { m.UIEvent() })
		}
		m.RunFor(m.MS(1100))
	}
	qc, lc := quiet.Kernel.Counters(), loud.Kernel.Counters()
	if lc.Interrupts <= qc.Interrupts {
		t.Fatalf("sound scheme produced no extra interrupts: %d vs %d", lc.Interrupts, qc.Interrupts)
	}
	if lc.DPCCycles <= qc.DPCCycles {
		t.Fatal("sound scheme produced no extra DPC work")
	}
}

func TestVirusScannerAddsSchedulerLocks(t *testing.T) {
	clean := build(t, Win98, Options{Seed: 5})
	dirty := build(t, Win98, Options{Seed: 5, VirusScanner: true})
	for _, m := range []*Machine{clean, dirty} {
		for i := 0; i < 3000; i++ {
			i := i
			m.Eng.At(sim.Time(i)*sim.Time(m.MS(2)), "op", func(sim.Time) {
				m.FileOp(16*1024, false, nil)
			})
		}
		m.RunFor(m.MS(6100))
	}
	cc, dc := clean.Kernel.Counters(), dirty.Kernel.Counters()
	if dc.EpisodeCycles <= cc.EpisodeCycles {
		t.Fatalf("virus scanner added no episode time: %d vs %d", dc.EpisodeCycles, cc.EpisodeCycles)
	}
}

func TestAudioPipelineMixesWithoutUnderrunsWhenIdle(t *testing.T) {
	m := build(t, NT4, Options{})
	m.StartAudio(AudioConfig{PeriodMS: 16})
	m.RunFor(m.MS(2000))
	if u := m.Sound.Underruns(); u != 0 {
		t.Fatalf("idle NT audio underruns = %d", u)
	}
	signaled, mixed := m.AudioStats()
	if signaled < 100 || mixed < 100 {
		t.Fatalf("audio pipeline barely ran: signaled=%d mixed=%d", signaled, mixed)
	}
}

func TestAudioUnderrunsUnderHeavySchedulerLocks(t *testing.T) {
	m := build(t, Win98, Options{Seed: 11})
	m.StartAudio(AudioConfig{PeriodMS: 8})
	// Saturate with 30 ms scheduler locks every 50 ms: the mixer thread
	// cannot keep a 4-deep 8 ms queue alive.
	var inject func(sim.Time)
	inject = func(sim.Time) {
		m.Kernel.InjectEpisode(kernel.LockScheduler, m.MS(30), "VMM", "_Win16Lock")
		m.Eng.After(m.MS(50), "inj", inject)
	}
	m.Eng.After(m.MS(100), "inj", inject)
	m.RunFor(m.MS(3000))
	if u := m.Sound.Underruns(); u == 0 {
		t.Fatal("expected audio underruns under heavy scheduler locking")
	}
}

func TestAppRunsScriptToCompletion(t *testing.T) {
	m := build(t, NT4, Options{})
	app := m.NewApp("winword")
	m.Eng.At(1000, "submit", func(sim.Time) {
		app.Submit(
			Op{UI: true, Compute: m.MS(2)},
			Op{ReadBytes: 128 * 1024},
			Op{Compute: m.MS(5)},
			Op{WriteBytes: 64 * 1024},
			Op{UI: true},
		)
	})
	m.RunFor(m.MS(2000))
	if app.Done() != 5 {
		t.Fatalf("app completed %d/5 ops", app.Done())
	}
	if app.Pending() != 0 {
		t.Fatalf("pending = %d", app.Pending())
	}
	if !app.IdleEvent().Signaled() {
		t.Fatal("idle event not signaled after drain")
	}
	fileOps, uiEvents, _, _, _ := m.Counters()
	if fileOps != 2 || uiEvents != 2 {
		t.Fatalf("activity counters: files=%d ui=%d", fileOps, uiEvents)
	}
}

func TestAppThinkTimePausesThread(t *testing.T) {
	m := build(t, NT4, Options{})
	app := m.NewApp("reader")
	m.Eng.At(1000, "submit", func(sim.Time) {
		app.Submit(Op{ThinkMS: 100, Compute: 1000})
	})
	m.RunFor(m.MS(50))
	if app.Done() != 0 {
		t.Fatal("op finished during think time")
	}
	m.RunFor(m.MS(200))
	if app.Done() != 1 {
		t.Fatalf("op not finished after think time: %d", app.Done())
	}
}

func TestDeterministicMachineRuns(t *testing.T) {
	run := func() kernel.Counters {
		m := Build(Win98, Options{Seed: 42, SoundScheme: true})
		defer m.Shutdown()
		app := m.NewApp("app")
		for i := 0; i < 50; i++ {
			i := i
			m.Eng.At(sim.Time(i)*sim.Time(m.MS(7)), "act", func(sim.Time) {
				m.UIEvent()
				m.FileOp(8192, false, nil)
				if i%10 == 0 {
					m.NetDeliver(5, 1460)
				}
				app.Submit(Op{Compute: m.MS(1)})
			})
		}
		m.RunFor(m.MS(1000))
		return m.Kernel.Counters()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic machine: %+v vs %+v", a, b)
	}
}

func TestNetDeliverDrivesNicPath(t *testing.T) {
	m := build(t, NT4, Options{})
	m.Eng.At(1000, "net", func(sim.Time) { m.NetDeliver(20, 1460) })
	m.RunFor(m.MS(100))
	if m.NIC.Delivered() != 20 {
		t.Fatalf("delivered %d packets", m.NIC.Delivered())
	}
}

func TestRenderFrameAndPageFault(t *testing.T) {
	m := build(t, Win98, Options{Seed: 13})
	for i := 0; i < 100; i++ {
		i := i
		m.Eng.At(sim.Time(i)*sim.Time(m.MS(33)), "frame", func(sim.Time) { m.RenderFrame() })
	}
	m.Eng.At(sim.Time(m.MS(50)), "pf", func(sim.Time) { m.PageFaultBurst(16) })
	m.RunFor(m.MS(3500))
	_, _, _, frames, pf := m.Counters()
	if frames != 100 || pf != 1 {
		t.Fatalf("frames=%d pagefaults=%d", frames, pf)
	}
	if m.Disk.Transfers() == 0 {
		t.Fatal("page fault did not reach the disk")
	}
}

func TestWin2000BetaProfileShape(t *testing.T) {
	p := Win2000BetaProfile()
	if p.OS != Win2000Beta || p.Name == "" {
		t.Fatalf("profile identity: %v %q", p.OS, p.Name)
	}
	// NT lineage: no legacy IDT patching, worker at RT default.
	if p.SupportsLegacyTimerHook {
		t.Fatal("Win2000 must not allow legacy timer hooks")
	}
	if p.Kernel.WorkerPriority != kernel.RealtimeDefault {
		t.Fatal("worker priority should remain RT default")
	}
	// Beta overheads sit at or above NT 4.0's.
	nt := NT4Profile()
	if p.Kernel.IsrEntry.Mean() < nt.Kernel.IsrEntry.Mean() {
		t.Fatal("Beta ISR entry should not be cheaper than NT 4.0")
	}
	m := Build(Win2000Beta, Options{Seed: 1})
	defer m.Shutdown()
	if m.Kernel.Name() != p.Name {
		t.Fatalf("kernel name %q", m.Kernel.Name())
	}
}

func TestMachineStringAndAccessors(t *testing.T) {
	m := Build(NT4, Options{Seed: 1})
	defer m.Shutdown()
	if m.String() == "" || m.Freq() != 300_000_000 {
		t.Fatalf("machine accessors: %q %v", m.String(), m.Freq())
	}
	if m.MS(1) != 300_000 {
		t.Fatalf("MS(1) = %d", m.MS(1))
	}
	if m.Now() != 0 {
		t.Fatalf("Now = %d at boot", m.Now())
	}
}
