package sim

// eventState tracks where an Event record is in the pooling lifecycle.
// Records cycle pending -> dead -> (recycled by the engine) -> pending; the
// state field is what lets Cancel and Reschedule reject handles whose
// records the engine has already reclaimed instead of corrupting the queue.
type eventState uint8

const (
	// stateDead: the event fired or was cancelled. The record belongs to
	// the engine's free list and may be reissued by the next At/After.
	stateDead eventState = iota
	// statePending: the event is queued (wheel or overflow heap).
	statePending
)

// Event.level values beyond the wheel levels 0..wheelLevels-1.
const (
	levelNone     int8 = -1 // not queued
	levelOverflow int8 = -2 // in the overflow heap
)

// Event is a scheduled callback in the simulation. Events are created with
// Engine.At or Engine.After and may be cancelled before they fire. The zero
// Event is not usable.
//
// Event records are pooled: once an event has fired or been cancelled its
// record is recycled into a future At/After call, so a retained *Event is
// only meaningful while Pending reports true. Holders that may outlive
// their event (device re-arm loops, per-thread timeout slots) must drop the
// handle — conventionally by nilling their field at the top of the event's
// own callback — before the engine can hand the record to someone else.
type Event struct {
	when Time
	seq  uint64 // tie-break: FIFO among events with equal timestamps

	// Queue position. A pending event is either linked into a timing-wheel
	// slot list (level 0..wheelLevels-1, next/prev intrusive links, slot
	// recomputable from when) or sitting in the overflow heap
	// (level == levelOverflow, index = heap position).
	next, prev *Event
	index      int32 // overflow-heap index, -1 when not in the heap
	level      int8

	state eventState
	fn    func(Time)
	label string
}

// When returns the virtual time at which the event is (or, for a dead
// record not yet recycled, was) scheduled to fire.
func (e *Event) When() Time { return e.when }

// Pending reports whether the event is still in the queue (scheduled and
// neither fired nor cancelled).
func (e *Event) Pending() bool { return e != nil && e.state == statePending }

// Label returns the debugging label attached at scheduling time.
func (e *Event) Label() string {
	if e == nil {
		return ""
	}
	return e.label
}

// The overflow area is a 4-ary min-heap over (when, seq), stored in
// Engine.overflow with each event carrying its own index for O(log n)
// cancellation. It holds only the far future — events at least
// overflowCutoff cycles ahead, which the timing wheel (wheel.go) cannot
// reach — so its log n costs are off the hot periodic-timer paths. A 4-ary
// layout halves the tree depth of a binary heap and keeps the four children
// of a node in one or two cache lines of the backing slice; the
// hand-specialized code also avoids the container/heap interface-call and
// boxing overhead on every operation.

// eventLess orders the heap: earlier timestamp first, scheduling order
// (seq) breaking ties so same-instant events fire FIFO.
func eventLess(a, b *Event) bool {
	return a.when < b.when || (a.when == b.when && a.seq < b.seq)
}

// heapPush appends ev and restores heap order.
func (e *Engine) heapPush(ev *Event) {
	e.overflow = append(e.overflow, ev)
	i := len(e.overflow) - 1
	ev.index = int32(i)
	e.siftUp(i)
}

// heapPopMin removes and returns the minimum element.
func (e *Engine) heapPopMin() *Event {
	q := e.overflow
	min := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	e.overflow = q[:n]
	if n > 0 {
		q[0] = last
		last.index = 0
		e.siftDown(0)
	}
	min.index = -1
	return min
}

// heapRemove deletes the element at index i.
func (e *Engine) heapRemove(i int) {
	q := e.overflow
	n := len(q) - 1
	rem := q[i]
	last := q[n]
	q[n] = nil
	e.overflow = q[:n]
	if i < n {
		q[i] = last
		last.index = int32(i)
		e.heapFix(i)
	}
	rem.index = -1
}

// heapFix restores order after the element at i changed key.
func (e *Engine) heapFix(i int) {
	if !e.siftDown(i) {
		e.siftUp(i)
	}
}

func (e *Engine) siftUp(i int) {
	q := e.overflow
	ev := q[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(ev, q[p]) {
			break
		}
		q[i] = q[p]
		q[i].index = int32(i)
		i = p
	}
	q[i] = ev
	ev.index = int32(i)
}

// siftDown reports whether the element moved, so heapFix can fall back to
// siftUp when the key decreased.
func (e *Engine) siftDown(i int) bool {
	q := e.overflow
	n := len(q)
	ev := q[i]
	start := i
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if eventLess(q[j], q[m]) {
				m = j
			}
		}
		if !eventLess(q[m], ev) {
			break
		}
		q[i] = q[m]
		q[i].index = int32(i)
		i = m
	}
	q[i] = ev
	ev.index = int32(i)
	return i != start
}
