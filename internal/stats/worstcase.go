package stats

import (
	"math"
	"time"

	"wdmlat/internal/sim"
)

// RateAbove returns the observed rate (events per cycle) of samples >= v,
// given the virtual observation span over which the histogram was
// collected.
func (h *Histogram) RateAbove(v sim.Cycles, observed sim.Cycles) float64 {
	if observed <= 0 {
		return 0
	}
	return float64(h.CountAtLeast(v)) / float64(observed)
}

// ExpectedMaxOver estimates the expected worst-case latency over a horizon
// of `window` cycles, from a distribution observed over `observed` cycles.
//
// This is the paper's extrapolation (§4.3/§4.4 assume "long latencies are
// uniformly distributed over time"): tail events of magnitude >= L arrive
// as a Poisson process at the observed rate, so over a window the maximum
// exceeds L with probability 1-exp(-rate(>=L)·window), and the expected
// maximum is the integral of that exceedance probability:
//
//	E[max] = ∫ P(max >= x) dx ≈ Σ_buckets width(b) · (1 - e^{-λ(lo(b))}).
//
// For windows at or beyond the observation span the estimate is clamped at
// the observed maximum — the distribution's support is all the data can
// testify to, so daily/weekly figures from shorter runs are conservative.
func (h *Histogram) ExpectedMaxOver(window, observed sim.Cycles) sim.Cycles {
	if h.n == 0 || window <= 0 || observed <= 0 {
		return 0
	}
	if window >= observed {
		return h.Max()
	}
	scale := float64(window) / float64(observed)
	iMax := bucketIndex(h.max)

	// Cumulative counts at-or-above each bucket's lower edge.
	lam := make([]float64, iMax+1)
	var cum uint64
	for i := iMax; i >= 0; i-- {
		cum += h.counts[i]
		lam[i] = float64(cum) * scale
	}

	var expected float64
	for i := 0; i <= iMax; i++ {
		lo, hi := bucketLow(i), bucketLow(i+1)
		if hi > h.max {
			hi = h.max // the support ends at the observed maximum
		}
		if hi <= lo {
			continue
		}
		expected += float64(hi-lo) * (1 - math.Exp(-lam[i]))
	}
	if m := float64(h.max); expected > m {
		expected = m
	}
	return sim.Cycles(expected)
}

// Horizon describes an observation horizon from the paper's usage model
// (§4.3): a "day" is hours of actual use, a "week" is days of days.
type Horizon struct {
	Name  string
	Spans time.Duration // cumulative active use
}

// UsageModel is a workload category's heavy-use pattern, used to convert
// the hourly/daily/weekly columns of Table 3 into active-use horizons.
type UsageModel struct {
	// HoursPerDay of active use and DaysPerWeek of use.
	HoursPerDay  float64
	DaysPerWeek  float64
	CategoryName string
}

// Horizons returns the three Table 3 horizons for this usage model.
func (u UsageModel) Horizons() [3]Horizon {
	day := time.Duration(u.HoursPerDay * float64(time.Hour))
	week := time.Duration(u.DaysPerWeek * float64(day))
	return [3]Horizon{
		{Name: "Max Per Hr", Spans: time.Hour},
		{Name: "Max Per Day", Spans: day},
		{Name: "Max Per Wk", Spans: week},
	}
}

// Office/Workstation/Consumer usage models from §3.1: office and
// workstation "days" are 6–8 working hours, five days a week; games and web
// are 3–4 hours a day, seven days a week.
var (
	OfficeUsage      = UsageModel{HoursPerDay: 8, DaysPerWeek: 5, CategoryName: "office"}
	WorkstationUsage = UsageModel{HoursPerDay: 6, DaysPerWeek: 5, CategoryName: "workstation"}
	ConsumerUsage    = UsageModel{HoursPerDay: 3.5, DaysPerWeek: 7, CategoryName: "consumer"}
)

// WorstCases computes the Table 3 row for a measured distribution: the
// expected worst case per hour, per day and per week of active use, in
// milliseconds.
func (h *Histogram) WorstCases(observed sim.Cycles, usage UsageModel) [3]float64 {
	var out [3]float64
	for i, hz := range usage.Horizons() {
		w := h.freq.Cycles(hz.Spans)
		out[i] = h.freq.Millis(h.ExpectedMaxOver(w, observed))
	}
	return out
}
