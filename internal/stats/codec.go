package stats

// Checkpoint codec for Histogram. A resumed campaign replays stored
// results instead of re-simulating, so the encoding must round-trip the
// histogram *exactly*: the bucket counts drive quantiles and CCDFs, and
// the float accumulators drive reported means. encoding/json preserves
// float64 exactly (it emits the shortest representation that parses back
// to the same bits), so the wire form stays readable without sacrificing
// the byte-identical-artifact guarantee.

import (
	"encoding/json"
	"fmt"

	"wdmlat/internal/sim"
)

// histogramWire is the serialized form of a Histogram. Counts is sparse —
// a latency histogram populates a few dozen of the 642 buckets — keyed by
// bucket index. Min/Max are stored raw (an empty histogram's sentinels
// included) so decode(encode(h)) is field-for-field identical.
type histogramWire struct {
	Freq   sim.Freq       `json:"freq"`
	N      uint64         `json:"n"`
	Sum    float64        `json:"sum"`
	SumSq  float64        `json:"sumsq"`
	Min    sim.Cycles     `json:"min"`
	Max    sim.Cycles     `json:"max"`
	Counts map[int]uint64 `json:"counts,omitempty"`
}

// MarshalJSON encodes the histogram for checkpointing.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	w := histogramWire{
		Freq:  h.freq,
		N:     h.n,
		Sum:   h.sum,
		SumSq: h.sumsq,
		Min:   h.min,
		Max:   h.max,
	}
	for i, c := range h.counts {
		if c != 0 {
			if w.Counts == nil {
				w.Counts = make(map[int]uint64)
			}
			w.Counts[i] = c
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a checkpointed histogram, replacing h's contents.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Freq <= 0 {
		return fmt.Errorf("stats: decoded histogram has non-positive frequency %d", w.Freq)
	}
	*h = Histogram{freq: w.Freq, n: w.N, sum: w.Sum, sumsq: w.SumSq, min: w.Min, max: w.Max}
	for i, c := range w.Counts {
		if i < 0 || i >= len(h.counts) {
			return fmt.Errorf("stats: decoded histogram bucket index %d out of range", i)
		}
		h.counts[i] = c
	}
	return nil
}
