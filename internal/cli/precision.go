package cli

import (
	"flag"
	"fmt"

	"wdmlat/internal/stats"
)

// PrecisionFlags holds the adaptive-replica policy flags shared by the
// measurement cmds: -precision selects the target relative half-width for
// the policy's tail quantiles (0, the default, keeps the fixed -runs
// replica count), -ci the confidence level of the DKW bands, and -max-runs
// the hard replica cap per logical cell.
type PrecisionFlags struct {
	relWidth   *float64
	confidence *float64
	maxRuns    *int
}

// AddPrecisionFlags registers the policy flags on fs.
func AddPrecisionFlags(fs *flag.FlagSet) *PrecisionFlags {
	return &PrecisionFlags{
		relWidth: fs.Float64("precision", 0,
			"adaptive replicas: target relative half-width for tail quantiles (e.g. 0.1); 0 keeps fixed -runs"),
		confidence: fs.Float64("ci", stats.DefaultConfidence,
			"confidence level of the DKW bands the -precision stopping rule uses"),
		maxRuns: fs.Int("max-runs", stats.DefaultMaxRuns,
			"hard replica cap per logical cell in -precision mode"),
	}
}

// Policy resolves the flags into an adaptive policy, or nil when -precision
// was left at 0 (fixed-replica mode). Tuning flags without -precision are an
// error — silently ignoring them would misreport what the campaign did.
func (p *PrecisionFlags) Policy() (*stats.Precision, error) {
	if *p.relWidth == 0 {
		if *p.confidence != stats.DefaultConfidence {
			return nil, fmt.Errorf("cli: -ci only applies with -precision")
		}
		if *p.maxRuns != stats.DefaultMaxRuns {
			return nil, fmt.Errorf("cli: -max-runs only applies with -precision")
		}
		return nil, nil
	}
	prec := &stats.Precision{RelWidth: *p.relWidth, Confidence: *p.confidence, MaxRuns: *p.maxRuns}
	if err := prec.Normalized().Validate(); err != nil {
		return nil, err
	}
	return prec, nil
}
