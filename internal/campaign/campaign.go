// Package campaign orchestrates measurement campaigns: it fans the
// paper's independent measurement cells (OS personality × stress class ×
// variant × replica) out across a bounded worker pool while preserving
// byte-for-byte determinism.
//
// The determinism contract is the point of the package. Every Cell carries
// a stable string key, and the cell's seed is derived from the campaign's
// base seed by hashing that key through SplitMix64 (sim.DeriveSeed) — never
// from a counter, submission index, or worker id. A cell's result therefore
// depends only on (base seed, key, config), so a campaign run with one
// worker and a campaign run with sixteen produce identical results, and so
// do two campaigns that submit the same cells in different orders. The
// paper's replication methodology (hours of collection per class, §3.1)
// then parallelizes freely: replicas of one cell are just sibling cells
// keyed "<cell>/0", "<cell>/1", ... and are pooled in replica order.
package campaign

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"wdmlat/internal/core"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
	"wdmlat/internal/workload"
)

// Cell is one independent measurement: a run configuration plus the stable
// identity its seed is derived from. Key is conventionally
// "os/workload/variant/replica" (see MatrixKey/ReplicaKey) but any
// campaign-unique string works. Config.Seed is ignored — the runner
// overwrites it with sim.DeriveSeed(base seed, Key).
type Cell struct {
	Key    string
	Config core.RunConfig
}

// Options configures a Runner.
type Options struct {
	// BaseSeed is the campaign seed every per-cell seed is derived from
	// (default 1).
	BaseSeed uint64
	// Jobs bounds the number of concurrently executing cells; <= 0 means
	// runtime.GOMAXPROCS(0).
	Jobs int
	// OnCellDone, if non-nil, is invoked from worker goroutines as each
	// cell completes (progress reporting). It must be safe for concurrent
	// use and must not block for long.
	OnCellDone func(key string)
}

// Runner executes submitted cells on a bounded worker pool. Submit all
// cells up front, then collect with Result/Merged — collection blocks only
// until the requested cell (not the whole campaign) has finished, so
// artifacts can be emitted as their inputs complete.
type Runner struct {
	opts Options

	mu    sync.Mutex
	cond  *sync.Cond
	queue []*pending          // FIFO of not-yet-started cells
	cells map[string]*pending // every submitted cell, by key
	live  int                 // worker goroutines currently running
	open  int                 // submitted cells not yet finished
}

type pending struct {
	cell Cell
	done bool
	res  *core.Result
}

// New returns a Runner with no cells submitted.
func New(opts Options) *Runner {
	if opts.BaseSeed == 0 {
		opts.BaseSeed = 1
	}
	if opts.Jobs <= 0 {
		opts.Jobs = runtime.GOMAXPROCS(0)
	}
	r := &Runner{opts: opts, cells: map[string]*pending{}}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// BaseSeed returns the campaign's base seed.
func (r *Runner) BaseSeed() uint64 { return r.opts.BaseSeed }

// Submit enqueues cells for execution, deriving each cell's seed from the
// campaign base seed and the cell key. It never blocks on simulation work.
// Submitting an empty or duplicate key panics: keys are the determinism
// contract, and a collision would silently correlate two cells.
func (r *Runner) Submit(cells ...Cell) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range cells {
		if c.Key == "" {
			panic("campaign: cell with empty key")
		}
		if _, dup := r.cells[c.Key]; dup {
			panic(fmt.Sprintf("campaign: duplicate cell key %q", c.Key))
		}
		c.Config.Seed = sim.DeriveSeed(r.opts.BaseSeed, c.Key)
		p := &pending{cell: c}
		r.cells[c.Key] = p
		r.queue = append(r.queue, p)
		r.open++
		if r.live < r.opts.Jobs {
			r.live++
			go r.worker()
		}
	}
}

// worker drains the queue and exits when it is empty; Submit spawns fresh
// workers as needed, so a drained pool restarts transparently.
func (r *Runner) worker() {
	r.mu.Lock()
	for len(r.queue) > 0 {
		p := r.queue[0]
		r.queue = r.queue[1:]
		r.mu.Unlock()

		res := core.Run(p.cell.Config)
		if cb := r.opts.OnCellDone; cb != nil {
			cb(p.cell.Key)
		}

		r.mu.Lock()
		p.res = res
		p.done = true
		r.open--
		r.cond.Broadcast()
	}
	r.live--
	r.mu.Unlock()
}

// Result blocks until the cell with the given key has finished and returns
// its result. It panics on an unknown key (the cell was never submitted,
// so waiting would deadlock).
func (r *Runner) Result(key string) *core.Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.cells[key]
	if !ok {
		panic(fmt.Sprintf("campaign: result requested for unsubmitted cell %q", key))
	}
	for !p.done {
		r.cond.Wait()
	}
	return p.res
}

// Merged collects the runs replica cells of key (submitted via Replicas)
// and pools them in replica-index order — a fixed order, so the merged
// histograms, counters and episode lists are independent of which worker
// finished first.
func (r *Runner) Merged(key string, runs int) *core.Result {
	if runs < 1 {
		runs = 1
	}
	base := r.Result(ReplicaKey(key, 0))
	for i := 1; i < runs; i++ {
		base.Merge(r.Result(ReplicaKey(key, i)))
	}
	return base
}

// Wait blocks until every submitted cell has finished.
func (r *Runner) Wait() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.open > 0 {
		r.cond.Wait()
	}
}

// Run is the one-shot form: execute all cells on a fresh pool and return
// results in cell order.
func Run(cells []Cell, opts Options) []*core.Result {
	r := New(opts)
	r.Submit(cells...)
	out := make([]*core.Result, len(cells))
	for i, c := range cells {
		out[i] = r.Result(c.Key)
	}
	return out
}

// Key joins key components with "/", the conventional separator.
func Key(parts ...string) string { return strings.Join(parts, "/") }

// ReplicaKey returns the key of replica i of a cell.
func ReplicaKey(key string, i int) string { return key + "/" + strconv.Itoa(i) }

// Replicas expands one logical cell into runs replica cells keyed
// "<key>/0" ... "<key>/<runs-1>", all sharing cfg. Collect them pooled
// with Runner.Merged(key, runs).
func Replicas(key string, cfg core.RunConfig, runs int) []Cell {
	if runs < 1 {
		runs = 1
	}
	cells := make([]Cell, runs)
	for i := range cells {
		cells[i] = Cell{Key: ReplicaKey(key, i), Config: cfg}
	}
	return cells
}

// OSSlug returns the short stable key token for an OS personality (the
// same tokens cli.ParseOS accepts).
func OSSlug(o ospersona.OS) string {
	switch o {
	case ospersona.NT4:
		return "nt4"
	case ospersona.Win98:
		return "win98"
	case ospersona.Win2000Beta:
		return "win2000"
	default:
		return "os" + strconv.Itoa(int(o))
	}
}

// ClassSlug returns the short stable key token for a workload class.
func ClassSlug(c workload.Class) string {
	switch c {
	case workload.Business:
		return "business"
	case workload.Workstation:
		return "workstation"
	case workload.Games:
		return "games"
	case workload.Web:
		return "web"
	default:
		return "class" + strconv.Itoa(int(c))
	}
}

// MatrixKey returns the canonical logical-cell key for one OS × workload
// cell of a named campaign variant ("default", "scanner", ...).
func MatrixKey(o ospersona.OS, c workload.Class, variant string) string {
	return Key(OSSlug(o), ClassSlug(c), variant)
}

// MatrixCells builds the replica cells of a full OS × workload matrix. The
// base config supplies everything but OS, Workload and Seed, which are set
// per cell. Collect with Runner.Merged(MatrixKey(...), runs).
func MatrixCells(oses []ospersona.OS, classes []workload.Class, variant string, base core.RunConfig, runs int) []Cell {
	var cells []Cell
	for _, o := range oses {
		for _, c := range classes {
			cfg := base
			cfg.OS = o
			cfg.Workload = c
			cells = append(cells, Replicas(MatrixKey(o, c, variant), cfg, runs)...)
		}
	}
	return cells
}

// RunMatrix submits a full OS × workload matrix on r and collects the
// pooled per-cell results, indexed by OS then class.
func (r *Runner) RunMatrix(oses []ospersona.OS, classes []workload.Class, variant string, base core.RunConfig, runs int) map[ospersona.OS]map[workload.Class]*core.Result {
	r.Submit(MatrixCells(oses, classes, variant, base, runs)...)
	out := make(map[ospersona.OS]map[workload.Class]*core.Result, len(oses))
	for _, o := range oses {
		out[o] = make(map[workload.Class]*core.Result, len(classes))
		for _, c := range classes {
			out[o][c] = r.Merged(MatrixKey(o, c, variant), runs)
		}
	}
	return out
}
