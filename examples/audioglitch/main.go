// Audioglitch: the Figure 5 story as a user would hear it. A low-latency
// soft audio pipeline (16 ms buffers mixed by a KMixer-style real-time
// thread) plays on Windows 98 under the Business Winstone stress, with and
// without the Plus! 98 virus scanner. "Intel's audio experts did not find
// it surprising that the virus scanner had this effect; they had remarked
// for some time that the virus scanner causes breakup of low latency
// audio" (§4.3).
package main

import (
	"fmt"
	"time"

	"wdmlat/internal/core"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/workload"
)

func main() {
	fmt.Println("Low-latency audio on Windows 98 under Business Winstone (Figure 5)")
	fmt.Println("16 ms buffers, double buffered (16 ms tolerance); the KMixer thread must")
	fmt.Println("refill before the queue drains.")
	fmt.Println()

	for _, scanner := range []bool{false, true} {
		underruns, periods, p16 := run(scanner)
		label := "no virus scanner "
		if scanner {
			label = "virus scanner ON "
		}
		fmt.Printf("%s: %6d audio periods, %4d underruns (breakups)\n", label, periods, underruns)
		fmt.Printf("                    P(thread latency >= 16 ms) = %.2g per wait\n", p16)
		if p16 > 0 {
			// "roughly every N seconds for an audio thread with a 16 ms
			// period" (§4.3).
			fmt.Printf("                    => one 16 ms latency every ~%.0f s of audio\n", 0.016/p16)
		}
		fmt.Println()
	}
	fmt.Println("The paper measures the same two orders of magnitude: one long latency per")
	fmt.Println("~1,000 waits with the scanner versus one per ~165,000 without (§4.3).")
}

func run(scanner bool) (underruns, periods uint64, p16 float64) {
	// Run the standard measurement alongside an audio pipeline by reusing
	// the Lab run and a second bare-machine audio run with the same seed.
	r := core.Run(core.RunConfig{
		OS:           ospersona.Win98,
		Workload:     workload.Business,
		Duration:     3 * time.Minute,
		Seed:         11,
		VirusScanner: scanner,
	})
	p16 = r.Thread[24].CCDF(r.Freq.FromMillis(15))

	m := ospersona.Build(ospersona.Win98, ospersona.Options{Seed: 11, VirusScanner: scanner})
	defer m.Shutdown()
	m.StartAudio(ospersona.AudioConfig{PeriodMS: 16, Buffers: 2})
	m.RunFor(m.Freq().Cycles(200 * time.Millisecond))
	gen := workload.New(workload.Business, m)
	gen.Start()
	m.RunFor(m.Freq().Cycles(10 * time.Minute))
	return m.Sound.Underruns(), m.Sound.Periods(), p16
}
