// Package interactive implements the Endo et al. interactive-event latency
// methodology the paper positions itself against (§1.2): measure the
// response time of simple user events (keystrokes, mouse clicks) on a
// loaded system. Interactive response is "generally regarded as being
// adequately responsive if the latencies are in the range of 50 to 150 ms"
// [20] — which, as the paper notes, "is considerably longer than the
// latency tolerances of the low latency drivers and multimedia applications
// that we consider here" (4–40 ms, Table 1).
//
// Running both methodologies on the same simulated machine makes the gap
// concrete: a system can be impeccably "responsive" by the interactive
// standard while missing multimedia deadlines constantly.
package interactive

import (
	"time"

	"wdmlat/internal/kernel"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
	"wdmlat/internal/workload"
)

// Config describes one interactive-latency run.
type Config struct {
	OS ospersona.OS
	// Workload is the concurrent stress (the user types while the machine
	// works).
	Workload workload.Class
	Idle     bool
	Duration time.Duration
	Seed     uint64
	// EventEveryMS is the mean spacing of user input events (default 300,
	// unhurried human input — not MS-Test rates).
	EventEveryMS float64
	// EchoCostMS is the foreground processing per event: message
	// dispatch, edit, repaint (default 8 ms on the 300 MHz machine).
	EchoCostMS float64
	// Priority of the foreground thread (default 9: normal + foreground
	// boost).
	Priority int
}

func (c *Config) fillDefaults() {
	if c.Duration == 0 {
		c.Duration = time.Minute
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.EventEveryMS <= 0 {
		c.EventEveryMS = 300
	}
	if c.EchoCostMS <= 0 {
		c.EchoCostMS = 8
	}
	if c.Priority == 0 {
		c.Priority = kernel.NormalPriority + 1
	}
}

// Result is a measured interactive-response distribution.
type Result struct {
	OSName   string
	Events   uint64
	Response *stats.Histogram // input event -> echo painted
	Freq     sim.Freq
}

// WithinMS returns the fraction of events echoed within the given bound
// (the Shneiderman 50–150 ms adequacy band is the interesting range).
func (r *Result) WithinMS(ms float64) float64 {
	if r.Response.N() == 0 {
		return 0
	}
	return 1 - r.Response.CCDF(r.Freq.FromMillis(ms))
}

// Run measures keystroke-to-echo response times under load.
func Run(cfg Config) *Result {
	cfg.fillDefaults()
	m := ospersona.Build(cfg.OS, ospersona.Options{Seed: cfg.Seed})
	defer m.Shutdown()

	res := &Result{
		OSName:   m.Profile.Name,
		Response: stats.NewHistogram(m.Freq()),
		Freq:     m.Freq(),
	}

	// The foreground application: wakes per input event, processes and
	// repaints, records the end-to-end response time.
	wake := m.Kernel.NewEvent("fg.input", kernel.SynchronizationEvent)
	var pressedAt sim.Time
	echoCost := m.MS(cfg.EchoCostMS)
	m.Kernel.CreateThread("foreground", cfg.Priority, func(tc *kernel.ThreadContext) {
		for {
			tc.Wait(wake)
			tc.Exec(echoCost)
			tc.Do(func() {
				res.Response.Add(m.CPU.TSC().Sub(pressedAt))
				res.Events++
			})
		}
	})

	// The typist: one event at a time (humans wait for the echo), mean
	// spacing EventEveryMS.
	rng := m.Eng.RNG().Split()
	var press func(sim.Time)
	press = func(sim.Time) {
		pressedAt = m.Eng.Now()
		m.UIEvent() // the input also exercises the UI path (Win16 lock &c.)
		m.Kernel.SetEvent(wake)
		m.Eng.After(sim.Cycles(rng.Exp(float64(m.MS(cfg.EventEveryMS))))+m.MS(1), "press", press)
	}
	m.Eng.After(m.MS(50), "press", press)

	m.RunFor(m.Freq().Cycles(200 * time.Millisecond))
	if !cfg.Idle {
		gen := workload.New(cfg.Workload, m)
		gen.Start()
	}
	m.RunFor(m.Freq().Cycles(cfg.Duration))
	return res
}
