package kernel_test

import (
	"testing"

	"wdmlat/internal/cpu"
	"wdmlat/internal/kernel"
	"wdmlat/internal/sim"
)

// Deterministic cost configuration so tests can do exact arithmetic.
const (
	costIsrEntry = 100
	costIsrExit  = 50
	costDpcDisp  = 30
	costTick     = 40
	costTimer    = 20
	costSwitch   = 200
	quantum      = 100_000
	clockVector  = 32
	tickPeriod   = 300_000 // 1 ms at 300 MHz
)

func testConfig() kernel.Config {
	return kernel.Config{
		Name:           "testkernel",
		IsrEntry:       sim.Constant(costIsrEntry),
		IsrExit:        sim.Constant(costIsrExit),
		DpcDispatch:    sim.Constant(costDpcDisp),
		ClockTick:      sim.Constant(costTick),
		TimerFire:      sim.Constant(costTimer),
		ContextSwitch:  sim.Constant(costSwitch),
		Quantum:        quantum,
		WorkerPriority: kernel.RealtimeDefault,
	}
}

// bench is a minimal simulated machine: engine, CPU, booted kernel, and a
// self-rescheduling PIT that asserts the clock vector every tick.
type bench struct {
	eng *sim.Engine
	cpu *cpu.CPU
	k   *kernel.Kernel
	pit *kernel.Interrupt
}

func newBench(t *testing.T, seed uint64, withClock bool) *bench {
	t.Helper()
	eng := sim.NewEngine(seed)
	c := cpu.New(eng, sim.DefaultFreq)
	k := kernel.New(eng, c, testConfig())
	k.Boot(clockVector, tickPeriod)
	b := &bench{eng: eng, cpu: c, k: k}
	b.pit = kernelInterrupt(k, clockVector)
	if withClock {
		var tick func(sim.Time)
		tick = func(sim.Time) {
			b.pit.Assert()
			eng.After(tickPeriod, "pit", tick)
		}
		eng.After(tickPeriod, "pit", tick)
	}
	t.Cleanup(k.Shutdown)
	return b
}

// kernelInterrupt fetches the clock interrupt object so tests can assert it
// manually. The kernel installed it at Boot.
func kernelInterrupt(k *kernel.Kernel, vector int) *kernel.Interrupt {
	// The kernel does not expose its interrupt table; reconnecting would
	// panic. Instead we look it up through a tiny exported helper.
	return k.InterruptForVector(vector)
}

func TestThreadExecAdvancesTime(t *testing.T) {
	b := newBench(t, 1, false)
	var started, finished sim.Time
	b.k.CreateThread("worker1", kernel.NormalPriority, func(tc *kernel.ThreadContext) {
		started = tc.Now()
		tc.Exec(10_000)
		finished = tc.Now()
	})
	b.eng.RunUntil(1_000_000)
	// The Boot-created work-item worker dispatches first (RT default
	// priority), immediately blocks on its queue, and then our thread gets
	// the CPU: two context switches from time zero.
	if started != 2*costSwitch {
		t.Fatalf("thread started at %d, want %d (two context switches)", started, 2*costSwitch)
	}
	if got := finished - started; got != 10_000 {
		t.Fatalf("exec took %d cycles, want 10000", got)
	}
}

func TestThreadPriorityPreemption(t *testing.T) {
	b := newBench(t, 1, false)
	var order []string
	done := b.k.NewEvent("hi-go", kernel.SynchronizationEvent)

	b.k.CreateThread("low", 8, func(tc *kernel.ThreadContext) {
		order = append(order, "low-start")
		tc.SetEvent(done) // readies the high-priority thread: must preempt us
		order = append(order, "low-after-set")
		tc.Exec(1000)
		order = append(order, "low-done")
	})
	b.k.CreateThread("high", 20, func(tc *kernel.ThreadContext) {
		tc.Wait(done)
		order = append(order, "high-ran")
	})

	b.eng.RunUntil(10_000_000)
	// KeSetEvent that readies a higher-priority thread preempts the setter
	// before the call returns, so "high-ran" precedes "low-after-set".
	want := []string{"low-start", "high-ran", "low-after-set", "low-done"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRoundRobinAtSamePriority(t *testing.T) {
	b := newBench(t, 1, false)
	var aDone, bDone sim.Time
	b.k.CreateThread("rrA", 10, func(tc *kernel.ThreadContext) {
		tc.Exec(quantum * 3)
		aDone = tc.Now()
	})
	b.k.CreateThread("rrB", 10, func(tc *kernel.ThreadContext) {
		tc.Exec(quantum * 3)
		bDone = tc.Now()
	})
	b.eng.RunUntil(100 * quantum)
	if aDone == 0 || bDone == 0 {
		t.Fatal("threads did not finish")
	}
	// With round-robin they interleave: both finish within one quantum (plus
	// switch costs) of each other, rather than serially (3 quanta apart).
	gap := bDone - aDone
	if gap < 0 {
		gap = -gap
	}
	if sim.Cycles(gap) > quantum+20*costSwitch {
		t.Fatalf("finish gap %d implies FIFO, not round-robin", gap)
	}
}

func TestNoRoundRobinAcrossPriorities(t *testing.T) {
	b := newBench(t, 1, false)
	var loRan bool
	b.k.CreateThread("hi", 12, func(tc *kernel.ThreadContext) {
		tc.Exec(quantum * 4)
		if loRan {
			t.Error("lower-priority thread ran while higher was runnable")
		}
	})
	b.k.CreateThread("lo", 11, func(tc *kernel.ThreadContext) {
		loRan = true
	})
	b.eng.RunUntil(10 * quantum)
	if !loRan {
		t.Fatal("low thread never ran")
	}
}

func TestSynchronizationEventAutoClears(t *testing.T) {
	b := newBench(t, 1, false)
	ev := b.k.NewEvent("sync", kernel.SynchronizationEvent)
	woken := 0
	for i := 0; i < 2; i++ {
		b.k.CreateThread("waiter", 15, func(tc *kernel.ThreadContext) {
			tc.Wait(ev)
			woken++
		})
	}
	b.eng.At(1000, "set", func(sim.Time) { b.k.SetEvent(ev) })
	b.eng.RunUntil(1_000_000)
	if woken != 1 {
		t.Fatalf("sync event woke %d waiters, want exactly 1", woken)
	}
	if ev.Signaled() {
		t.Fatal("sync event should be unsignaled after waking a waiter")
	}
}

func TestNotificationEventWakesAllAndLatches(t *testing.T) {
	b := newBench(t, 1, false)
	ev := b.k.NewEvent("notif", kernel.NotificationEvent)
	woken := 0
	for i := 0; i < 3; i++ {
		b.k.CreateThread("waiter", 15, func(tc *kernel.ThreadContext) {
			tc.Wait(ev)
			woken++
		})
	}
	b.eng.At(1000, "set", func(sim.Time) { b.k.SetEvent(ev) })
	b.eng.RunUntil(1_000_000)
	if woken != 3 {
		t.Fatalf("notification event woke %d waiters, want 3", woken)
	}
	if !ev.Signaled() {
		t.Fatal("notification event should stay signaled")
	}
	// A later waiter passes straight through.
	passed := false
	b.eng.At(2_000_000, "late", func(sim.Time) {
		b.k.CreateThread("late", 15, func(tc *kernel.ThreadContext) {
			tc.Wait(ev)
			passed = true
		})
	})
	b.eng.RunUntil(3_000_000)
	if !passed {
		t.Fatal("latched notification event did not satisfy a later wait")
	}
}

func TestEventSetWithNoWaitersLatchesOnce(t *testing.T) {
	b := newBench(t, 1, false)
	ev := b.k.NewEvent("sync", kernel.SynchronizationEvent)
	b.k.SetEvent(ev)
	if !ev.Signaled() {
		t.Fatal("set with no waiters should latch")
	}
	got := 0
	b.k.CreateThread("w", 15, func(tc *kernel.ThreadContext) {
		tc.Wait(ev) // satisfied immediately, consumes the signal
		got++
	})
	b.eng.RunUntil(1_000_000)
	if got != 1 {
		t.Fatal("waiter not satisfied by latched signal")
	}
	if ev.Signaled() {
		t.Fatal("sync event must auto-clear on consumption")
	}
}

func TestSemaphore(t *testing.T) {
	b := newBench(t, 1, false)
	sem := b.k.NewSemaphore(0, 10)
	entered := 0
	for i := 0; i < 3; i++ {
		b.k.CreateThread("consumer", 15, func(tc *kernel.ThreadContext) {
			tc.Wait(sem)
			entered++
		})
	}
	b.eng.At(1000, "rel2", func(sim.Time) { b.k.ReleaseSemaphore(sem, 2) })
	b.eng.RunUntil(1_000_000)
	if entered != 2 {
		t.Fatalf("semaphore admitted %d, want 2", entered)
	}
	b.eng.At(2_000_000, "rel1", func(sim.Time) { b.k.ReleaseSemaphore(sem, 1) })
	b.eng.RunUntil(3_000_000)
	if entered != 3 {
		t.Fatalf("semaphore admitted %d, want 3", entered)
	}
	if sem.Count() != 0 {
		t.Fatalf("count = %d, want 0", sem.Count())
	}
}

func TestMutexOwnershipAndRecursion(t *testing.T) {
	b := newBench(t, 1, false)
	m := b.k.NewMutex("m")
	var order []string
	b.k.CreateThread("first", 15, func(tc *kernel.ThreadContext) {
		tc.Wait(m)
		tc.Wait(m) // recursive acquire must not deadlock
		order = append(order, "first-owns")
		tc.Exec(5000)
		tc.ReleaseMutex(m)
		order = append(order, "first-released-once")
		tc.Exec(5000)
		tc.ReleaseMutex(m)
	})
	b.k.CreateThread("second", 15, func(tc *kernel.ThreadContext) {
		tc.Exec(100) // let first acquire
		tc.Wait(m)
		order = append(order, "second-owns")
		tc.ReleaseMutex(m)
	})
	b.eng.RunUntil(10_000_000)
	want := []string{"first-owns", "first-released-once", "second-owns"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if m.Owner() != nil {
		t.Fatal("mutex should end unowned")
	}
}

func TestWaitTimeout(t *testing.T) {
	b := newBench(t, 1, false)
	ev := b.k.NewEvent("never", kernel.SynchronizationEvent)
	var status kernel.WaitStatus
	var woke sim.Time
	b.k.CreateThread("w", 15, func(tc *kernel.ThreadContext) {
		status = tc.WaitTimeout(ev, 50_000)
		woke = tc.Now()
	})
	b.eng.RunUntil(10_000_000)
	if status != kernel.WaitTimedOut {
		t.Fatalf("status = %v, want timeout", status)
	}
	// Wait begins after two context switches (worker first, then us);
	// timeout fires 50k later; the thread needs another switch to resume.
	want := sim.Time(2*costSwitch + 50_000 + costSwitch)
	if woke != want {
		t.Fatalf("woke at %d, want %d", woke, want)
	}
}

func TestWaitTimeoutRaceWithSignal(t *testing.T) {
	b := newBench(t, 1, false)
	ev := b.k.NewEvent("raced", kernel.SynchronizationEvent)
	var status kernel.WaitStatus
	b.k.CreateThread("w", 15, func(tc *kernel.ThreadContext) {
		status = tc.WaitTimeout(ev, 50_000)
	})
	// Signal well before the timeout.
	b.eng.At(10_000, "set", func(sim.Time) { b.k.SetEvent(ev) })
	b.eng.RunUntil(10_000_000)
	if status != kernel.WaitSuccess {
		t.Fatalf("status = %v, want success", status)
	}
}

func TestSleep(t *testing.T) {
	b := newBench(t, 1, false)
	var before, after sim.Time
	b.k.CreateThread("sleeper", 15, func(tc *kernel.ThreadContext) {
		before = tc.Now()
		tc.Sleep(30_000)
		after = tc.Now()
	})
	b.eng.RunUntil(10_000_000)
	elapsed := after - before
	if sim.Cycles(elapsed) < 30_000 || sim.Cycles(elapsed) > 30_000+2*costSwitch {
		t.Fatalf("sleep elapsed %d, want ~30000", elapsed)
	}
}

func TestDpcRunsAfterIsrAndFIFO(t *testing.T) {
	b := newBench(t, 1, false)
	var order []string
	d1 := kernel.NewDPC("d1", kernel.MediumImportance, func(c *kernel.DpcContext) {
		order = append(order, "d1")
		c.Charge(1000)
	})
	d2 := kernel.NewDPC("d2", kernel.MediumImportance, func(c *kernel.DpcContext) {
		order = append(order, "d2")
	})
	hi := kernel.NewDPC("hi", kernel.HighImportance, func(c *kernel.DpcContext) {
		order = append(order, "hi")
	})
	intr := b.k.Connect(40, 16, "TESTDRV", "_ISR", func(c *kernel.IsrContext) {
		order = append(order, "isr")
		c.QueueDpc(d1)
		c.QueueDpc(d2)
		c.QueueDpc(hi) // high importance jumps the queue
	})
	b.eng.At(1000, "irq", func(sim.Time) { intr.Assert() })
	b.eng.RunUntil(1_000_000)
	want := []string{"isr", "hi", "d1", "d2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDpcDoubleQueueRejected(t *testing.T) {
	b := newBench(t, 1, false)
	runs := 0
	d := kernel.NewDPC("d", kernel.MediumImportance, func(c *kernel.DpcContext) { runs++ })
	var first, second bool
	// Queue twice from inside an ISR, before any DPC can drain: the second
	// insert must be rejected (KeInsertQueueDpc returns FALSE).
	intr := b.k.Connect(40, 16, "DRV", "_ISR", func(c *kernel.IsrContext) {
		first = c.QueueDpc(d)
		second = c.QueueDpc(d)
	})
	b.eng.At(1000, "irq", func(sim.Time) { intr.Assert() })
	b.eng.RunUntil(1_000_000)
	if !first {
		t.Fatal("first queue should succeed")
	}
	if second {
		t.Fatal("second queue while pending should fail")
	}
	if runs != 1 {
		t.Fatalf("DPC ran %d times, want 1", runs)
	}
}

func TestInterruptPreemptsThreadExec(t *testing.T) {
	b := newBench(t, 1, false)
	var isrAt, finished sim.Time
	intr := b.k.Connect(40, 16, "TESTDRV", "_ISR", func(c *kernel.IsrContext) {
		isrAt = c.Now()
		c.Charge(2000)
	})
	b.k.CreateThread("worker1", 15, func(tc *kernel.ThreadContext) {
		tc.Exec(100_000)
		finished = tc.Now()
	})
	b.eng.At(50_000, "irq", func(sim.Time) { intr.Assert() })
	b.eng.RunUntil(10_000_000)

	if isrAt != 50_000+costIsrEntry {
		t.Fatalf("ISR entered at %d, want %d", isrAt, 50_000+costIsrEntry)
	}
	// The thread's 100k of work (starting after the worker's switch and its
	// own) is stretched by the ISR (entry+body+exit).
	isrTotal := sim.Time(costIsrEntry + 2000 + costIsrExit)
	want := sim.Time(2*costSwitch) + 100_000 + isrTotal
	if finished != want {
		t.Fatalf("exec finished at %d, want %d", finished, want)
	}
}

func TestHigherIrqlInterruptNestsOverLower(t *testing.T) {
	b := newBench(t, 1, false)
	var order []string
	low := b.k.Connect(40, 10, "LOWDRV", "_ISR", func(c *kernel.IsrContext) {
		order = append(order, "low-enter")
		c.Charge(30_000)
	})
	high := b.k.Connect(41, 20, "HIGHDRV", "_ISR", func(c *kernel.IsrContext) {
		order = append(order, "high-enter")
		c.Charge(1000)
	})
	_ = high
	b.eng.At(1000, "low", func(sim.Time) { low.Assert() })
	// Arrives while the low ISR occupies the CPU: must nest immediately.
	b.eng.At(5000, "high", func(sim.Time) { b.k.InterruptForVector(41).Assert() })
	b.eng.RunUntil(1_000_000)
	want := []string{"low-enter", "high-enter"}
	if len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestEqualIrqlInterruptWaits(t *testing.T) {
	b := newBench(t, 1, false)
	var entries []sim.Time
	mk := func(vec int) *kernel.Interrupt {
		return b.k.Connect(vec, 16, "DRV", "_ISR", func(c *kernel.IsrContext) {
			entries = append(entries, c.Now())
			c.Charge(10_000)
		})
	}
	a, c2 := mk(40), mk(41)
	_ = c2
	b.eng.At(1000, "a", func(sim.Time) { a.Assert() })
	b.eng.At(2000, "b", func(sim.Time) { b.k.InterruptForVector(41).Assert() })
	b.eng.RunUntil(1_000_000)
	if len(entries) != 2 {
		t.Fatalf("entries = %v", entries)
	}
	// Second ISR must wait for the first to finish (entry+10k+exit).
	firstDone := sim.Time(1000 + costIsrEntry + 10_000 + costIsrExit)
	if entries[1] < firstDone {
		t.Fatalf("equal-IRQL ISR entered at %d, before first finished at %d", entries[1], firstDone)
	}
}

func TestTimerFiresOnTickAndQueuesDpc(t *testing.T) {
	b := newBench(t, 1, true)
	var dpcAt sim.Time
	d := kernel.NewDPC("timerdpc", kernel.MediumImportance, func(c *kernel.DpcContext) {
		dpcAt = c.Now()
	})
	tm := b.k.NewTimer("t")
	b.eng.At(100, "set", func(sim.Time) { b.k.SetTimer(tm, sim.Cycles(tickPeriod/2), d) })
	b.eng.RunUntil(10 * tickPeriod)
	if dpcAt == 0 {
		t.Fatal("timer DPC never ran")
	}
	// Due at 100+150000=150100; the PIT tick at 300000 processes it.
	if dpcAt < tickPeriod || dpcAt > tickPeriod+10_000 {
		t.Fatalf("timer DPC at %d, want shortly after tick %d", dpcAt, tickPeriod)
	}
	if tm.Fires() != 1 {
		t.Fatalf("fires = %d, want 1", tm.Fires())
	}
}

func TestPeriodicTimer(t *testing.T) {
	b := newBench(t, 1, true)
	var times []sim.Time
	d := kernel.NewDPC("ptdpc", kernel.MediumImportance, func(c *kernel.DpcContext) {
		times = append(times, c.Now())
	})
	tm := b.k.NewTimer("pt")
	b.eng.At(100, "set", func(sim.Time) {
		b.k.SetPeriodicTimer(tm, tickPeriod, 2*tickPeriod, d)
	})
	b.eng.RunUntil(11 * tickPeriod)
	if len(times) < 4 {
		t.Fatalf("periodic timer fired %d times, want >= 4", len(times))
	}
	for i := 1; i < len(times); i++ {
		gap := times[i] - times[i-1]
		if sim.Cycles(gap) < 2*tickPeriod-10_000 || sim.Cycles(gap) > 2*tickPeriod+10_000 {
			t.Fatalf("periodic gap %d, want ~%d", gap, 2*tickPeriod)
		}
	}
}

func TestCancelTimer(t *testing.T) {
	b := newBench(t, 1, true)
	fired := false
	d := kernel.NewDPC("cd", kernel.MediumImportance, func(c *kernel.DpcContext) { fired = true })
	tm := b.k.NewTimer("c")
	b.eng.At(100, "set", func(sim.Time) { b.k.SetTimer(tm, 5*tickPeriod, d) })
	b.eng.At(200, "cancel", func(sim.Time) {
		if !b.k.CancelTimer(tm) {
			t.Error("cancel should report armed")
		}
	})
	b.eng.RunUntil(20 * tickPeriod)
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerIsWaitable(t *testing.T) {
	b := newBench(t, 1, true)
	var woke sim.Time
	tm := b.k.NewTimer("w")
	b.k.CreateThread("tw", 20, func(tc *kernel.ThreadContext) {
		tc.SetTimer(tm, 2*tickPeriod, nil)
		tc.Wait(tm)
		woke = tc.Now()
	})
	b.eng.RunUntil(20 * tickPeriod)
	if woke == 0 {
		t.Fatal("thread never woke from timer wait")
	}
	if woke < 2*tickPeriod {
		t.Fatalf("woke at %d, before timer due", woke)
	}
}

func TestSchedLockEpisodeDelaysThreadButNotDpc(t *testing.T) {
	b := newBench(t, 1, false)
	ev := b.k.NewEvent("ev", kernel.SynchronizationEvent)
	var dpcAt, threadAt sim.Time
	d := kernel.NewDPC("d", kernel.MediumImportance, func(c *kernel.DpcContext) {
		dpcAt = c.Now()
		c.SetEvent(ev)
	})
	b.k.CreateThread("rt", 28, func(tc *kernel.ThreadContext) {
		tc.Wait(ev)
		threadAt = tc.Now()
	})
	const epLen = 3_000_000 // 10 ms
	b.eng.At(100_000, "ep", func(sim.Time) {
		b.k.InjectEpisode(kernel.LockScheduler, epLen, "VMM", "_LegacyRegion")
	})
	b.eng.At(200_000, "dpc", func(sim.Time) { b.k.QueueDpc(d) })
	b.eng.RunUntil(10_000_000)

	// The DPC preempts the scheduler-locked episode: runs ~immediately.
	if dpcAt > 200_000+10_000 {
		t.Fatalf("DPC at %d: scheduler lock wrongly delayed a DPC", dpcAt)
	}
	// The thread cannot dispatch until the episode ends at ~100000+epLen
	// (stretched by the DPC execution).
	if threadAt < 100_000+epLen {
		t.Fatalf("thread at %d ran during a scheduler-locked episode ending ~%d", threadAt, 100_000+epLen)
	}
}

func TestMaskInterruptsEpisodeDelaysIsr(t *testing.T) {
	b := newBench(t, 1, false)
	var isrAt sim.Time
	intr := b.k.Connect(40, 16, "DRV", "_ISR", func(c *kernel.IsrContext) {
		isrAt = c.Now()
	})
	const epLen = 600_000 // 2 ms
	b.eng.At(100_000, "ep", func(sim.Time) {
		b.k.InjectEpisode(kernel.MaskInterrupts, epLen, "VXD", "_CliRegion")
	})
	b.eng.At(200_000, "irq", func(sim.Time) { intr.Assert() })
	b.eng.RunUntil(10_000_000)
	wantMin := sim.Time(100_000 + epLen)
	if isrAt < wantMin {
		t.Fatalf("ISR at %d ran inside a masked window ending at %d", isrAt, wantMin)
	}
	if isrAt > wantMin+costIsrEntry+1000 {
		t.Fatalf("ISR at %d, want right after mask window ends (%d)", isrAt, wantMin)
	}
}

func TestWorkItemRunsOnWorkerAtDefaultRTPriority(t *testing.T) {
	b := newBench(t, 1, false)
	var ranOn string
	done := false
	b.k.QueueWorkItem(&kernel.WorkItem{
		Name:   "wi",
		Cycles: 10_000,
		Fn: func(tc *kernel.ThreadContext) {
			ranOn = tc.Thread().Name
			done = true
		},
	})
	b.eng.RunUntil(10_000_000)
	if !done {
		t.Fatal("work item never ran")
	}
	if ranOn != "ExWorkerThread" {
		t.Fatalf("work item ran on %q", ranOn)
	}
	if got := b.k.Worker().Priority(); got != kernel.RealtimeDefault {
		t.Fatalf("worker priority = %d, want %d", got, kernel.RealtimeDefault)
	}
}

// The paper's central NT observation: a priority-24 thread shares its level
// with the work-item worker and must wait for work-item bursts, while a
// priority-28 thread preempts them (§4.2).
func TestWorkerInterferesWithDefaultRTButNotHigh(t *testing.T) {
	measure := func(prio int) sim.Cycles {
		b := newBench(t, 1, false)
		ev := b.k.NewEvent("go", kernel.SynchronizationEvent)
		var readied, ran sim.Time
		b.k.CreateThread("meas", prio, func(tc *kernel.ThreadContext) {
			tc.Wait(ev)
			ran = tc.Now()
		})
		const burst = 3_000_000 // 10 ms work item
		b.eng.At(100_000, "wi", func(sim.Time) {
			b.k.QueueWorkItem(&kernel.WorkItem{Name: "burst", Cycles: burst})
		})
		// Signal while the worker is mid-burst, just after a quantum refresh
		// so the round-robin wait is nearly a full quantum.
		b.eng.At(410_000, "set", func(sim.Time) {
			readied = b.eng.Now()
			b.k.SetEvent(ev)
		})
		b.eng.RunUntil(100_000_000)
		if ran == 0 {
			t.Fatal("measurement thread never ran")
		}
		return ran.Sub(readied)
	}

	lat28 := measure(28)
	lat24 := measure(24)
	if lat28 > 10*costSwitch {
		t.Fatalf("priority 28 latency %d: should preempt the worker immediately", lat28)
	}
	if lat24 < 50_000 || lat24 < 10*lat28 {
		t.Fatalf("priority 24 latency %d vs 28 latency %d: worker interference missing", lat24, lat28)
	}
}

func TestIrpCompletionCallback(t *testing.T) {
	b := newBench(t, 1, false)
	irp := b.k.NewIRP()
	var completedAt sim.Time
	irp.OnComplete = func(i *kernel.IRP, at sim.Time) { completedAt = at }
	b.eng.At(5000, "complete", func(sim.Time) { b.k.CompleteIrp(irp) })
	b.eng.RunUntil(10_000)
	if !irp.Completed() || completedAt != 5000 {
		t.Fatalf("completed=%v at %d", irp.Completed(), completedAt)
	}
}

func TestIrpDoubleCompletionPanics(t *testing.T) {
	b := newBench(t, 1, false)
	irp := b.k.NewIRP()
	b.k.CompleteIrp(irp)
	defer func() {
		if recover() == nil {
			t.Fatal("double completion should panic")
		}
	}()
	b.k.CompleteIrp(irp)
}

func TestFigure3Chain(t *testing.T) {
	// The full measurement pipeline of Figure 3: PIT interrupt → clock ISR
	// fires the driver timer → driver DPC reads TSC and signals → RT
	// thread reads TSC. Verifies the latency decomposition identity
	// DPC-interrupt latency = interrupt latency + DPC latency (§2.1).
	b := newBench(t, 7, true)
	ev := b.k.NewEvent("gEvent", kernel.SynchronizationEvent)
	var tsc [3]sim.Time
	var got bool
	d := kernel.NewDPC("LatDpc", kernel.MediumImportance, func(c *kernel.DpcContext) {
		tsc[1] = c.Now()
		c.SetEvent(ev)
	})
	b.k.CreateThread("LatThread", 24, func(tc *kernel.ThreadContext) {
		tc.SetPriority(24)
		for {
			tc.Wait(ev)
			tsc[2] = tc.Now()
			got = true
		}
	})
	tm := b.k.NewTimer("gTimer")
	b.eng.At(1000, "read", func(sim.Time) {
		tsc[0] = b.cpu.TSC()
		b.k.SetTimer(tm, 2*tickPeriod, d)
	})
	b.eng.RunUntil(20 * tickPeriod)
	if !got {
		t.Fatal("measurement chain did not complete")
	}
	if !(tsc[0] < tsc[1] && tsc[1] < tsc[2]) {
		t.Fatalf("timeline out of order: %v", tsc)
	}
	// The timer was due at 1000+2*tick; the PIT tick at 3*tick fires it.
	due := sim.Time(3 * tickPeriod)
	if tsc[1] < due {
		t.Fatalf("DPC ran at %d, before the firing tick %d", tsc[1], due)
	}
	if tsc[1] > due+sim.Time(tickPeriod) {
		t.Fatalf("DPC at %d, more than one tick after %d", tsc[1], due)
	}
	// On an idle system the thread latency is a couple of context switches.
	if lat := tsc[2] - tsc[1]; lat > 10*costSwitch {
		t.Fatalf("idle thread latency %d too large", lat)
	}
}

func TestCountersAccumulate(t *testing.T) {
	b := newBench(t, 1, true)
	b.k.CreateThread("burn", 10, func(tc *kernel.ThreadContext) {
		tc.Exec(5 * tickPeriod)
	})
	b.eng.RunUntil(10 * tickPeriod)
	ctr := b.k.Counters()
	if ctr.Interrupts == 0 || ctr.ISRCycles == 0 {
		t.Fatalf("no interrupt accounting: %+v", ctr)
	}
	if ctr.ThreadCycles != 5*tickPeriod {
		t.Fatalf("thread cycles = %d, want %d", ctr.ThreadCycles, 5*tickPeriod)
	}
	if ctr.Switches == 0 || ctr.SwitchCycles == 0 {
		t.Fatalf("no switch accounting: %+v", ctr)
	}
}

func TestThreadCPUTimeAccounting(t *testing.T) {
	b := newBench(t, 1, false)
	var th *kernel.Thread
	th = b.k.CreateThread("acct", 10, func(tc *kernel.ThreadContext) {
		tc.Exec(77_777)
	})
	b.eng.RunUntil(1_000_000)
	if th.CPUTime() != 77_777 {
		t.Fatalf("cpu time = %d, want 77777", th.CPUTime())
	}
	if !th.Terminated() {
		t.Fatal("thread should have terminated")
	}
}

func TestProbeGroundTruth(t *testing.T) {
	b := newBench(t, 1, false)
	var asserted, entered sim.Time
	var readied, dispatched sim.Time
	b.k.SetHooks(kernel.Hooks{
		IsrEntered: func(vector int, a, e sim.Time) {
			if vector == 40 {
				asserted, entered = a, e
			}
		},
		ThreadDispatched: func(th *kernel.Thread, r, d sim.Time) {
			if th.Name == "meas" {
				readied, dispatched = r, d
			}
		},
	})
	ev := b.k.NewEvent("ev", kernel.SynchronizationEvent)
	intr := b.k.Connect(40, 16, "DRV", "_ISR", func(c *kernel.IsrContext) {})
	b.k.CreateThread("meas", 28, func(tc *kernel.ThreadContext) {
		tc.Wait(ev)
	})
	b.eng.At(10_000, "irq", func(sim.Time) { intr.Assert() })
	b.eng.At(50_000, "set", func(sim.Time) { b.k.SetEvent(ev) })
	b.eng.RunUntil(1_000_000)

	if asserted != 10_000 || entered != 10_000+costIsrEntry {
		t.Fatalf("ISR ground truth: asserted=%d entered=%d", asserted, entered)
	}
	if readied != 50_000 {
		t.Fatalf("thread readied ground truth = %d, want 50000", readied)
	}
	if dispatched != 50_000+costSwitch {
		t.Fatalf("thread dispatched = %d, want %d", dispatched, 50_000+costSwitch)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (sim.Time, kernel.Counters) {
		b := newBench(t, 42, true)
		ev := b.k.NewEvent("ev", kernel.SynchronizationEvent)
		var last sim.Time
		b.k.CreateThread("t", 24, func(tc *kernel.ThreadContext) {
			for {
				tc.Wait(ev)
				last = tc.Now()
				tc.Exec(1000)
			}
		})
		d := kernel.NewDPC("d", kernel.MediumImportance, func(c *kernel.DpcContext) {
			c.Charge(500)
			c.SetEvent(ev)
		})
		tm := b.k.NewTimer("tm")
		b.eng.At(100, "arm", func(sim.Time) {
			b.k.SetPeriodicTimer(tm, tickPeriod, tickPeriod, d)
		})
		b.eng.RunUntil(500 * tickPeriod)
		return last, b.k.Counters()
	}
	l1, c1 := run()
	l2, c2 := run()
	if l1 != l2 || c1 != c2 {
		t.Fatalf("non-deterministic: %d/%+v vs %d/%+v", l1, c1, l2, c2)
	}
}

func TestShutdownTerminatesThreads(t *testing.T) {
	b := newBench(t, 1, false)
	ev := b.k.NewEvent("forever", kernel.SynchronizationEvent)
	for i := 0; i < 5; i++ {
		b.k.CreateThread("stuck", 15, func(tc *kernel.ThreadContext) {
			tc.Wait(ev)
		})
	}
	b.eng.RunUntil(1_000_000)
	b.k.Shutdown() // must not hang; cleanup also calls it (idempotent)
}

func TestCreateThreadValidation(t *testing.T) {
	b := newBench(t, 1, false)
	for _, bad := range []int{-1, 32} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("priority %d should panic", bad)
				}
			}()
			b.k.CreateThread("bad", bad, func(tc *kernel.ThreadContext) {})
		}()
	}
}

func TestPriorityBoostAndDecay(t *testing.T) {
	// Build a bench with boosting enabled.
	eng := sim.NewEngine(1)
	c := cpu.New(eng, sim.DefaultFreq)
	cfg := testConfig()
	cfg.PriorityBoost = true
	k := kernel.New(eng, c, cfg)
	k.Boot(clockVector, tickPeriod)
	t.Cleanup(k.Shutdown)

	ev := k.NewEvent("boost", kernel.SynchronizationEvent)
	var th *kernel.Thread
	th = k.CreateThread("dyn", 8, func(tc *kernel.ThreadContext) {
		tc.Wait(ev)
		// At this point the boost is visible.
		if got := tc.Thread().Priority(); got != 10 {
			t.Errorf("boosted priority = %d, want 10", got)
		}
		if got := tc.Thread().BasePriority(); got != 8 {
			t.Errorf("base priority = %d, want 8", got)
		}
		// Burn two quanta: the boost decays one level per expiry.
		tc.Exec(2*quantum + 1000)
	})
	eng.At(10_000, "set", func(sim.Time) { k.SetEvent(ev) })
	eng.RunUntil(10 * quantum)
	if got := th.Priority(); got != 8 {
		t.Fatalf("priority after decay = %d, want base 8", got)
	}
}

func TestNoBoostInRealtimeBand(t *testing.T) {
	eng := sim.NewEngine(1)
	c := cpu.New(eng, sim.DefaultFreq)
	cfg := testConfig()
	cfg.PriorityBoost = true
	k := kernel.New(eng, c, cfg)
	k.Boot(clockVector, tickPeriod)
	t.Cleanup(k.Shutdown)

	ev := k.NewEvent("rt", kernel.SynchronizationEvent)
	k.CreateThread("rt", 24, func(tc *kernel.ThreadContext) {
		tc.Wait(ev)
		if got := tc.Thread().Priority(); got != 24 {
			t.Errorf("real-time priority changed to %d", got)
		}
	})
	eng.At(10_000, "set", func(sim.Time) { k.SetEvent(ev) })
	eng.RunUntil(1_000_000)
}

func TestBoostDisabledByDefault(t *testing.T) {
	b := newBench(t, 1, false)
	ev := b.k.NewEvent("nb", kernel.SynchronizationEvent)
	b.k.CreateThread("dyn", 8, func(tc *kernel.ThreadContext) {
		tc.Wait(ev)
		if got := tc.Thread().Priority(); got != 8 {
			t.Errorf("priority = %d without PriorityBoost", got)
		}
	})
	b.eng.At(10_000, "set", func(sim.Time) { b.k.SetEvent(ev) })
	b.eng.RunUntil(1_000_000)
}
