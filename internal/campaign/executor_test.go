package campaign

// Tests of the ExecuteCell seam — the hook a distributed coordinator plugs
// into: key-aware, error-capable, and failure-isolated exactly like the
// in-process executor.

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"wdmlat/internal/core"
	"wdmlat/internal/sim"
)

// TestExecuteCellReceivesKeyAndDerivedSeed: the seam sees the cell's key
// and a config whose seed was already derived from (base seed, key) — the
// exact identity a coordinator fingerprints a lease with.
func TestExecuteCellReceivesKeyAndDerivedSeed(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]uint64{}
	r := New(Options{
		BaseSeed: 11,
		Jobs:     4,
		ExecuteCell: func(key string, cfg core.RunConfig) (*core.Result, error) {
			mu.Lock()
			seen[key] = cfg.Seed
			mu.Unlock()
			return &core.Result{Config: cfg}, nil
		},
	})
	keys := []string{"a/0", "a/1", "b/0"}
	for _, k := range keys {
		r.Submit(Cell{Key: k})
	}
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if got, want := seen[k], sim.DeriveSeed(11, k); got != want {
			t.Errorf("cell %q executed with seed %d, want derived %d", k, got, want)
		}
	}
}

// TestExecuteCellSupersedesExecute: when both seams are set, only
// ExecuteCell runs.
func TestExecuteCellSupersedesExecute(t *testing.T) {
	r := New(Options{
		Execute: func(core.RunConfig) *core.Result {
			t.Error("Execute ran despite ExecuteCell being set")
			return &core.Result{}
		},
		ExecuteCell: func(key string, cfg core.RunConfig) (*core.Result, error) {
			return &core.Result{Config: cfg}, nil
		},
	})
	r.Submit(Cell{Key: "x"})
	if _, err := r.Result("x"); err != nil {
		t.Fatal(err)
	}
}

// TestExecuteCellErrorFailsOnlyThatCell: an executor error is published as
// that cell's failure — sibling cells complete, Wait aggregates, and the
// campaign never deadlocks or dies.
func TestExecuteCellErrorFailsOnlyThatCell(t *testing.T) {
	boom := errors.New("worker fleet drained")
	r := New(Options{
		Jobs: 2,
		ExecuteCell: func(key string, cfg core.RunConfig) (*core.Result, error) {
			if key == "bad" {
				return nil, boom
			}
			return &core.Result{Config: cfg}, nil
		},
	})
	r.Submit(Cell{Key: "good"}, Cell{Key: "bad"}, Cell{Key: "also-good"})
	if _, err := r.Result("good"); err != nil {
		t.Fatalf("healthy cell failed: %v", err)
	}
	if _, err := r.Result("bad"); !errors.Is(err, boom) {
		t.Fatalf("failed cell error = %v, want %v", err, boom)
	}
	err := r.Wait()
	if err == nil || !strings.Contains(err.Error(), "worker fleet drained") {
		t.Fatalf("Wait() = %v, want aggregate containing the executor error", err)
	}
	failed := r.Failed()
	if len(failed) != 1 || failed[0].Key != "bad" {
		t.Fatalf("Failed() = %+v, want exactly the bad cell", failed)
	}
}

// TestExecuteCellPanicIsolated: a panicking remote executor is recovered
// into a PanicError like any local cell.
func TestExecuteCellPanicIsolated(t *testing.T) {
	r := New(Options{
		ExecuteCell: func(key string, cfg core.RunConfig) (*core.Result, error) {
			panic("lease table corrupted")
		},
	})
	r.Submit(Cell{Key: "x"})
	_, err := r.Result("x")
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}
}
