// Package cli holds small helpers shared by the cmd/ tools: flag parsing
// for OS and workload names, and duration conveniences.
package cli

import (
	"fmt"
	"strings"

	"wdmlat/internal/ospersona"
	"wdmlat/internal/workload"
)

// ParseOS resolves an --os flag value.
func ParseOS(s string) (ospersona.OS, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "nt", "nt4", "winnt", "nt4.0":
		return ospersona.NT4, nil
	case "98", "win98", "windows98", "w98":
		return ospersona.Win98, nil
	case "2000", "win2000", "win2k", "nt5":
		return ospersona.Win2000Beta, nil
	default:
		return 0, fmt.Errorf("unknown OS %q (want nt4, win98 or win2000)", s)
	}
}

// ParseOSList resolves an --os flag that may be "both" (the paper's two
// systems) or "all" (including the Windows 2000 Beta).
func ParseOSList(s string) ([]ospersona.OS, error) {
	if strings.EqualFold(strings.TrimSpace(s), "both") {
		return []ospersona.OS{ospersona.NT4, ospersona.Win98}, nil
	}
	if strings.EqualFold(strings.TrimSpace(s), "all") {
		return []ospersona.OS{ospersona.NT4, ospersona.Win98, ospersona.Win2000Beta}, nil
	}
	os, err := ParseOS(s)
	if err != nil {
		return nil, err
	}
	return []ospersona.OS{os}, nil
}

// ParseWorkload resolves a --workload flag value.
func ParseWorkload(s string) (workload.Class, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "business", "biz", "office":
		return workload.Business, nil
	case "workstation", "wks", "highend":
		return workload.Workstation, nil
	case "games", "game", "3d":
		return workload.Games, nil
	case "web", "browsing":
		return workload.Web, nil
	default:
		return 0, fmt.Errorf("unknown workload %q (want business|workstation|games|web)", s)
	}
}

// ParseWorkloadList resolves a --workload flag that may be "all".
func ParseWorkloadList(s string) ([]workload.Class, error) {
	if strings.EqualFold(strings.TrimSpace(s), "all") {
		return workload.Classes, nil
	}
	c, err := ParseWorkload(s)
	if err != nil {
		return nil, err
	}
	return []workload.Class{c}, nil
}
