package server

// The durable half of the coordinator: an append-only NDJSON journal of
// everything a restart must not forget. Three record kinds cover it:
//
//	{"op":"campaign","id":...,"spec":{...}}  a campaign was admitted
//	{"op":"state","id":...,"state":"done"}   it reached a terminal state
//	{"op":"merged","fp":"..."}               the coordinator merged a cell
//
// A campaign with no terminal-state record is live: on restart the server
// re-admits it from the journaled spec and the task table rebuilds itself
// as the resumed job's cells flow back through ExecuteRemote — cells whose
// results already reached the checkpoint store replay from disk, the rest
// re-dispatch to workers. Merged fingerprints seed the coordinator's
// duplicate set, so a straggler completion that crossed the crash boundary
// is answered CompleteDuplicate (idempotent no-op) instead of
// CompleteUnknown, and byte-identity is preserved: the journal only ever
// changes whether a cell re-executes, never what its bytes are.
//
// Open replays the file, tolerating a truncated final record (the crash
// landed mid-append), then compacts: finished campaigns' records are
// dropped and the live state is rewritten atomically before the file
// reopens for appending. Appends are fsynced one record at a time — a
// record covers an entire campaign admission or a multi-second simulated
// cell, so durability here is nowhere near any hot path. Append failures
// are counted (MetricJournalErrors), not fatal: a full disk degrades the
// server to PR-6 semantics (restart loses state) instead of killing it.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"wdmlat/internal/api"
	"wdmlat/internal/metrics"
)

// Journal metric names, published once Instrument is called.
const (
	MetricJournalErrors = "server_journal_errors" // append/sync failures (journal degraded, server alive)
)

const (
	journalOpCampaign = "campaign"
	journalOpState    = "state"
	journalOpMerged   = "merged"
)

type journalRecord struct {
	Op    string            `json:"op"`
	ID    string            `json:"id,omitempty"`
	State string            `json:"state,omitempty"`
	Spec  *api.CampaignSpec `json:"spec,omitempty"`
	FP    string            `json:"fp,omitempty"`
}

// JournalCampaign is one live (admitted, not yet terminal) campaign as
// replayed from the journal.
type JournalCampaign struct {
	ID   string
	Spec api.CampaignSpec
}

// JournalState is what a journal remembers across a restart.
type JournalState struct {
	// Campaigns lists live campaigns in admission order.
	Campaigns []JournalCampaign
	// Merged lists every fingerprint that reached a terminal outcome in a
	// prior incarnation, for the coordinator's duplicate set.
	Merged []string
}

// Journal is the append-only durable record of server/coordinator state.
// All methods are safe for concurrent use and nil-receiver safe (a nil
// *Journal journals nothing), mirroring the metrics registry contract.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	state JournalState
	errs  *metrics.Counter
}

// OpenJournal opens (creating if needed) the journal at path, replays its
// records into State, compacts it, and leaves it open for appending. A
// truncated or garbled tail — the signature of a crash mid-append — ends
// the replay silently; everything before it is kept.
func OpenJournal(path string) (*Journal, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
	}
	state, err := replayJournal(path)
	if err != nil {
		return nil, err
	}
	if err := compactJournal(path, state); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{f: f, state: state}, nil
}

// replayJournal folds a journal file into the state a restart needs:
// admitted campaigns minus those with terminal-state records, plus the
// merged-fingerprint set.
func replayJournal(path string) (JournalState, error) {
	var state JournalState
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return state, nil
	}
	if err != nil {
		return state, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()

	var campaigns []JournalCampaign
	terminal := map[string]struct{}{}
	mergedSeen := map[string]struct{}{}
	dec := json.NewDecoder(f)
	for {
		var rec journalRecord
		if err := dec.Decode(&rec); err != nil {
			// io.EOF is a clean end; anything else is the torn tail of an
			// append the crash interrupted. Records are self-contained and
			// appended in causal order, so dropping the tail only forgets
			// the newest events — a resumed campaign re-executes a little
			// more, bytes unchanged.
			break
		}
		switch rec.Op {
		case journalOpCampaign:
			if rec.ID == "" || rec.Spec == nil || rec.Spec.Validate() != nil {
				continue
			}
			campaigns = append(campaigns, JournalCampaign{ID: rec.ID, Spec: *rec.Spec})
		case journalOpState:
			if api.TerminalState(rec.State) {
				terminal[rec.ID] = struct{}{}
			}
		case journalOpMerged:
			if rec.FP == "" {
				continue
			}
			if _, dup := mergedSeen[rec.FP]; dup {
				continue
			}
			mergedSeen[rec.FP] = struct{}{}
			state.Merged = append(state.Merged, rec.FP)
		}
	}
	seen := map[string]struct{}{}
	for _, c := range campaigns {
		if _, done := terminal[c.ID]; done {
			continue
		}
		if _, dup := seen[c.ID]; dup {
			continue
		}
		seen[c.ID] = struct{}{}
		state.Campaigns = append(state.Campaigns, c)
	}
	return state, nil
}

// compactJournal atomically rewrites the journal to exactly the live
// state: one campaign record per unfinished campaign, one merged record
// per remembered fingerprint. Terminal-state records disappear together
// with the campaigns they closed.
func compactJournal(path string, state JournalState) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	enc := json.NewEncoder(tmp)
	write := func(rec journalRecord) error { return enc.Encode(rec) }
	for _, c := range state.Campaigns {
		spec := c.Spec
		if err := write(journalRecord{Op: journalOpCampaign, ID: c.ID, Spec: &spec}); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: compacting: %w", err)
		}
	}
	for _, fp := range state.Merged {
		if err := write(journalRecord{Op: journalOpMerged, FP: fp}); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: compacting: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// State returns what the journal replayed at open time. The caller owns
// the returned slices.
func (j *Journal) State() JournalState {
	if j == nil {
		return JournalState{}
	}
	return JournalState{
		Campaigns: append([]JournalCampaign(nil), j.state.Campaigns...),
		Merged:    append([]string(nil), j.state.Merged...),
	}
}

// Instrument attaches the journal's error counter to reg.
func (j *Journal) Instrument(reg *metrics.Registry) {
	if j == nil {
		return
	}
	j.errs = reg.Counter(MetricJournalErrors)
}

// Campaign records an admitted campaign.
func (j *Journal) Campaign(id string, spec *api.CampaignSpec) {
	j.append(journalRecord{Op: journalOpCampaign, ID: id, Spec: spec})
}

// Finished records a campaign's terminal state. Non-terminal states are
// ignored: only done/failed/cancelled close a campaign's journal entry.
func (j *Journal) Finished(id, state string) {
	if !api.TerminalState(state) {
		return
	}
	j.append(journalRecord{Op: journalOpState, ID: id, State: state})
}

// Merged records a fingerprint the coordinator published a terminal
// outcome for.
func (j *Journal) Merged(fp string) {
	j.append(journalRecord{Op: journalOpMerged, FP: fp})
}

func (j *Journal) append(rec journalRecord) {
	if j == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		j.errs.Inc()
		return
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		j.errs.Inc()
		return
	}
	if err := j.f.Sync(); err != nil {
		j.errs.Inc()
	}
}

// Close closes the journal file. Appends after Close count as errors.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
