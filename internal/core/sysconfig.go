package core

import "wdmlat/internal/ospersona"

// SystemConfig reproduces Table 2 of the paper: the test system
// configuration, with the rows that differ between the two installations.
type SystemConfig struct {
	OSVersion        string
	OptionalPack     string
	Filesystem       string
	IDEDriver        string
	Processor        string
	Motherboard      string
	BIOS             string
	Memory           string
	HardDrive        string
	CDROM            string
	Graphics         string
	Resolution       string
	Audio            string
	Network          string
	PITFrequency     string
	LegacyISADevices string
}

// SystemConfigFor returns the Table 2 row set for one OS.
func SystemConfigFor(os ospersona.OS) SystemConfig {
	common := SystemConfig{
		Processor:        "Pentium II 300 MHz",
		Motherboard:      "Atlanta (Intel 440 LX)",
		BIOS:             "4A4LL0X0.86A.0012.P02",
		Memory:           "32 MB SDRAM",
		HardDrive:        "Maxtor DiamondMax 6.4 GB UDMA",
		CDROM:            "Sony CDU 711E 32x",
		Graphics:         "ATI Xpert@Work (AGP)",
		Resolution:       "1024 x 768 x 32 bit (games 800 x 600)",
		Network:          "Intel EtherExpress Pro 100 PCI NIC",
		PITFrequency:     "reprogrammed to 1 kHz by the measurement tools",
		LegacyISADevices: "disabled (PCI/USB only)",
	}
	switch os {
	case ospersona.NT4:
		common.OSVersion = "Windows NT 4.0, Service Pack 3 w. 11/97 rollup hotfix"
		common.Filesystem = "NTFS"
		common.IDEDriver = "Intel PIIX Bus Master IDE Driver ver. 2.01.3 (DMA)"
		common.Audio = "Ensoniq PCI sound card, Prosonic speakers"
	case ospersona.Win98:
		common.OSVersion = "Windows 98 (4.10.1998)"
		common.OptionalPack = "Plus! 98 Pack w/o optional Virus Scanner"
		common.Filesystem = "FAT32"
		common.IDEDriver = "Default with DMA set ON"
		common.Audio = "Philips DSS 350 USB speakers"
	}
	return common
}
