// Package wdmlat is a simulation-based reproduction of "A Comparison of
// Windows Driver Model Latency Performance on Windows NT and Windows 98"
// (Erik Cota-Robles and James P. Held, OSDI 1999).
//
// The repository builds, in pure Go with only the standard library:
//
//   - a discrete-event simulated PC (virtual CPU with TSC and hookable IDT,
//     PIT, DMA disk, NIC, sound device),
//   - a WDM kernel (ISRs at device IRQLs, a FIFO DPC queue with three
//     importances, a 32-priority preemptive thread scheduler, dispatcher
//     objects, timers, the kernel work-item queue, IRPs),
//   - two OS personalities calibrated to the paper's measurements
//     (Windows NT 4.0 and Windows 98),
//   - the paper's measurement drivers, latency cause tool, four application
//     stress workloads, and the soft-modem / schedulability analyses.
//
// See DESIGN.md for the system inventory and per-experiment index,
// EXPERIMENTS.md for paper-vs-measured results, and the cmd/ tools for
// regenerating every table and figure.
package wdmlat
