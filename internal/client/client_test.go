package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wdmlat/internal/api"
)

// testClient returns a client whose sleeps are recorded instead of slept
// and whose jitter is pinned to its maximum (Rand()==1 → delay exactly d).
func testClient(base string, retries int) (*Client, *[]time.Duration) {
	var mu sync.Mutex
	var slept []time.Duration
	c := New(base, Options{
		Retries:   retries,
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  2 * time.Second,
		Rand:      func() float64 { return 1 },
		Sleep: func(_ context.Context, d time.Duration) error {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
			return nil
		},
	})
	return c, &slept
}

func TestSubmitRetries429HonoringRetryAfter(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n <= 2 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(api.Error{Message: "queue full"})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(api.Status{ID: "abc", State: api.StateQueued})
	}))
	defer srv.Close()

	c, slept := testClient(srv.URL, 5)
	st, err := c.Submit(context.Background(), &api.CampaignSpec{})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.ID != "abc" {
		t.Fatalf("status = %+v", st)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("want 3 attempts, got %d", got)
	}
	if len(*slept) != 2 {
		t.Fatalf("want 2 backoff sleeps, got %v", *slept)
	}
	for i, d := range *slept {
		// Retry-After: 3 dominates the 100–200ms exponential schedule.
		if d < 3*time.Second {
			t.Errorf("sleep %d = %v ignored Retry-After of 3s", i, d)
		}
	}
}

func TestRetryOn500AndConnectionReset(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(api.Error{Message: "boom"})
		case 2:
			// Drop the connection mid-response: the client sees a
			// transport error, not a status.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("recorder cannot hijack")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatalf("hijack: %v", err)
			}
			conn.Close()
		default:
			json.NewEncoder(w).Encode(api.Status{ID: "ok", State: api.StateDone})
		}
	}))
	defer srv.Close()

	c, slept := testClient(srv.URL, 5)
	st, err := c.Status(context.Background(), "ok")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.ID != "ok" || calls.Load() != 3 {
		t.Fatalf("st=%+v calls=%d", st, calls.Load())
	}
	// The 500 always costs one client-level backoff. The dropped
	// connection is retried either by the client loop (second sleep) or
	// transparently by net/http's idempotent-GET replay (no sleep) —
	// both are acceptable, silent failure is not.
	if n := len(*slept); n < 1 || n > 2 {
		t.Fatalf("want 1 or 2 sleeps, got %v", *slept)
	}
}

func TestBackoffGrowsExponentiallyAndCaps(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c, slept := testClient(srv.URL, 8)
	_, err := c.Status(context.Background(), "x")
	if err == nil {
		t.Fatal("want exhaustion error")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("want wrapped 503 StatusError, got %v", err)
	}
	// Rand pinned to 1 → delay n is exactly min(base·2ⁿ, max).
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 2 * time.Second, 2 * time.Second,
	}
	if len(*slept) != len(want) {
		t.Fatalf("want %d sleeps, got %v", len(want), *slept)
	}
	for i, d := range *slept {
		if d != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, d, want[i])
		}
	}
}

func TestJitterStaysWithinHalfWindow(t *testing.T) {
	c := New("http://unused", Options{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second,
		Rand: func() float64 { return 0 }})
	if d := c.backoff(0, 0); d != 50*time.Millisecond {
		t.Errorf("zero jitter floor = %v, want 50ms (half the window, never ~0)", d)
	}
	c = New("http://unused", Options{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second,
		Rand: func() float64 { return 0.999999 }})
	if d := c.backoff(0, 0); d < 50*time.Millisecond || d > 100*time.Millisecond {
		t.Errorf("max jitter = %v, want within (50ms, 100ms]", d)
	}
}

func TestNonRetryableStatusFailsFast(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(api.Error{Message: "unknown campaign"})
	}))
	defer srv.Close()

	c, slept := testClient(srv.URL, 5)
	_, err := c.Status(context.Background(), "nope")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("want 404 StatusError, got %v", err)
	}
	if calls.Load() != 1 || len(*slept) != 0 {
		t.Fatalf("404 was retried: calls=%d sleeps=%v", calls.Load(), *slept)
	}
}

func TestWatchResumesAfterDisconnect(t *testing.T) {
	// The stream drops after two events; the resumed connection must ask
	// for from=2 and deliver the rest exactly once.
	events := []api.Event{
		{Seq: 0, Type: api.EventState, State: api.StateQueued, Total: 2},
		{Seq: 1, Type: api.EventCell, Key: "a", Done: 1, Total: 2},
		{Seq: 2, Type: api.EventCell, Key: "b", Done: 2, Total: 2},
		{Seq: 3, Type: api.EventState, State: api.StateDone, Done: 2, Total: 2},
	}
	var mu sync.Mutex
	var froms []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/campaigns/job1" {
			json.NewEncoder(w).Encode(api.Status{ID: "job1", State: api.StateDone, Done: 2, Total: 2})
			return
		}
		from := r.URL.Query().Get("from")
		mu.Lock()
		froms = append(froms, from)
		nconn := len(froms)
		mu.Unlock()
		start := 0
		fmt.Sscanf(from, "%d", &start)
		end := len(events)
		if nconn == 1 {
			end = 2 // first connection drops early
		}
		enc := json.NewEncoder(w)
		for _, ev := range events[start:end] {
			enc.Encode(ev)
		}
		// Returning without a terminal event closes the stream (EOF).
	}))
	defer srv.Close()

	c, _ := testClient(srv.URL, 5)
	var got []api.Event
	st, err := c.Watch(context.Background(), "job1", func(ev api.Event) { got = append(got, ev) })
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if st.State != api.StateDone {
		t.Fatalf("final status = %+v", st)
	}
	if len(froms) != 2 || froms[0] != "0" || froms[1] != "2" {
		t.Fatalf("resume offsets = %v, want [0 2]", froms)
	}
	if len(got) != len(events) {
		t.Fatalf("delivered %d events, want %d: %+v", len(got), len(events), got)
	}
	for i, ev := range got {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d (duplicate or gap)", i, ev.Seq)
		}
	}
}

func TestWatchGivesUpAfterRepeatedFailures(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	}))
	defer srv.Close()
	c, _ := testClient(srv.URL, 3)
	_, err := c.Watch(context.Background(), "x", nil)
	if err == nil {
		t.Fatal("want error after retries exhausted")
	}
}
