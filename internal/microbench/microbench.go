// Package microbench implements the *traditional* OS microbenchmark
// methodology the paper argues is insufficient (§1.2): average costs of
// primitive OS services measured over thousands of iterations on an
// otherwise unloaded system, in the style of lmbench [17] and hbench:OS
// [3]. Running it against the same simulated machines that produce the
// paper's loaded latency distributions makes the critique concrete: the
// averages are nearly identical across operating systems whose loaded
// worst cases differ by two orders of magnitude — "microbenchmarks have
// not been very useful in assessing the OS and hardware overhead that an
// application or driver will actually receive in practice" [2].
package microbench

import (
	"fmt"
	"math"
	"time"

	"wdmlat/internal/kernel"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
)

// Stat is a mean/deviation pair in microseconds — the shape traditional
// suites report.
type Stat struct {
	MeanUS   float64
	StdDevUS float64
	N        int
}

func (s Stat) String() string {
	return fmt.Sprintf("%8.2f µs ± %.2f (n=%d)", s.MeanUS, s.StdDevUS, s.N)
}

// Results is one suite run on one OS.
type Results struct {
	OSName string
	// ContextSwitch is lmbench lat_ctx-style: half a ping-pong round trip
	// between two equal-priority threads.
	ContextSwitch Stat
	// EventSignal is the latency from KeSetEvent (in a DPC) to the woken
	// real-time thread's first instruction.
	EventSignal Stat
	// DpcDispatch is queue-to-first-instruction for a DPC on an idle CPU.
	DpcDispatch Stat
	// InterruptDispatch is assert-to-ISR-entry on an idle CPU.
	InterruptDispatch Stat
	// TimerGranularity is the mean error between a requested timer delay
	// and its actual expiry (the PIT quantization).
	TimerGranularity Stat
}

type accumulator struct {
	sum, sum2 float64
	n         int
}

func (a *accumulator) add(us float64) {
	a.sum += us
	a.sum2 += us * us
	a.n++
}

func (a *accumulator) stat() Stat {
	if a.n == 0 {
		return Stat{}
	}
	mean := a.sum / float64(a.n)
	v := a.sum2/float64(a.n) - mean*mean
	if v < 0 {
		v = 0
	}
	return Stat{MeanUS: mean, StdDevUS: math.Sqrt(v), N: a.n}
}

// Run executes the suite on an unloaded machine of the given OS.
func Run(os ospersona.OS, seed uint64, iterations int) Results {
	if iterations <= 0 {
		iterations = 1000
	}
	m := ospersona.Build(os, ospersona.Options{Seed: seed})
	defer m.Shutdown()
	freq := m.Freq()
	us := func(c sim.Cycles) float64 { return freq.Millis(c) * 1000 }

	res := Results{OSName: m.Profile.Name}

	// --- context switch: two equal-priority threads ping-pong ------------
	{
		var acc accumulator
		ping := m.Kernel.NewEvent("mb.ping", kernel.SynchronizationEvent)
		pong := m.Kernel.NewEvent("mb.pong", kernel.SynchronizationEvent)
		var lastSet sim.Time
		m.Kernel.CreateThread("mb.a", 20, func(tc *kernel.ThreadContext) {
			for {
				tc.Wait(ping)
				if acc.n < iterations {
					acc.add(us(tc.Now().Sub(lastSet)))
				}
				tc.Do(func() { lastSet = m.CPU.TSC() })
				tc.SetEvent(pong)
			}
		})
		m.Kernel.CreateThread("mb.b", 20, func(tc *kernel.ThreadContext) {
			for {
				tc.Do(func() { lastSet = m.CPU.TSC() })
				tc.SetEvent(ping)
				tc.Wait(pong)
			}
		})
		for acc.n < iterations {
			m.RunFor(freq.Cycles(10 * time.Millisecond))
		}
		res.ContextSwitch = acc.stat()
	}

	// --- event signal from DPC to RT thread ------------------------------
	{
		var acc accumulator
		ev := m.Kernel.NewEvent("mb.ev", kernel.SynchronizationEvent)
		var setAt sim.Time
		m.Kernel.CreateThread("mb.rt", 28, func(tc *kernel.ThreadContext) {
			tc.SetPriority(28)
			for {
				tc.Wait(ev)
				if acc.n < iterations {
					acc.add(us(tc.Now().Sub(setAt)))
				}
			}
		})
		d := kernel.NewDPC("mb.dpc", kernel.MediumImportance, func(c *kernel.DpcContext) {
			setAt = c.Now()
			c.SetEvent(ev)
		})
		for acc.n < iterations {
			m.Eng.After(freq.Cycles(200*time.Microsecond), "mb.kick", func(sim.Time) {
				m.Kernel.QueueDpc(d)
			})
			m.RunFor(freq.Cycles(time.Millisecond))
		}
		res.EventSignal = acc.stat()
	}

	// --- DPC dispatch -----------------------------------------------------
	{
		var acc accumulator
		var queuedAt sim.Time
		d := kernel.NewDPC("mb.d2", kernel.MediumImportance, func(c *kernel.DpcContext) {
			if acc.n < iterations {
				acc.add(us(c.Now().Sub(queuedAt)))
			}
		})
		for acc.n < iterations {
			m.Eng.After(freq.Cycles(100*time.Microsecond), "mb.q", func(sim.Time) {
				queuedAt = m.CPU.TSC()
				m.Kernel.QueueDpc(d)
			})
			m.RunFor(freq.Cycles(500 * time.Microsecond))
		}
		res.DpcDispatch = acc.stat()
	}

	// --- interrupt dispatch ------------------------------------------------
	{
		var acc accumulator
		var assertAt sim.Time
		intr := m.Kernel.Connect(40, 16, "MBENCH", "_ISR", func(c *kernel.IsrContext) {
			if acc.n < iterations {
				acc.add(us(c.Now().Sub(assertAt)))
			}
		})
		for acc.n < iterations {
			m.Eng.After(freq.Cycles(100*time.Microsecond), "mb.irq", func(sim.Time) {
				assertAt = m.CPU.TSC()
				intr.Assert()
			})
			m.RunFor(freq.Cycles(500 * time.Microsecond))
		}
		res.InterruptDispatch = acc.stat()
	}

	// --- timer granularity --------------------------------------------------
	{
		var acc accumulator
		tm := m.Kernel.NewTimer("mb.t")
		var due sim.Time
		d := kernel.NewDPC("mb.td", kernel.MediumImportance, func(c *kernel.DpcContext) {
			if acc.n < iterations {
				acc.add(us(c.Now().Sub(due)))
			}
		})
		delay := freq.Cycles(2500 * time.Microsecond)
		for acc.n < iterations {
			m.Eng.After(freq.Cycles(700*time.Microsecond), "mb.arm", func(sim.Time) {
				due = m.CPU.TSC().Add(delay)
				m.Kernel.SetTimer(tm, delay, d)
			})
			m.RunFor(freq.Cycles(5 * time.Millisecond))
		}
		res.TimerGranularity = acc.stat()
	}

	return res
}
