package server

// End-to-end enforcement of the service's load-bearing guarantee: the
// result stream fetched from the server is byte-identical to the same
// campaign executed locally on the campaign runner — at any worker count,
// on a cold cache and on a warm one — and duplicate concurrent
// submissions of one campaign execute each cell exactly once. These run
// the real simulator (core.Run), just with short virtual durations.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"wdmlat/internal/api"
	"wdmlat/internal/campaign"
	"wdmlat/internal/campaign/store"
	"wdmlat/internal/client"
	"wdmlat/internal/core"
	"wdmlat/internal/metrics"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/workload"
)

// e2eSpec is a small real matrix: both paper OSes × two classes, 150 ms
// of virtual collection per cell.
func e2eSpec() *api.CampaignSpec {
	base := core.RunConfig{Duration: 150 * time.Millisecond}
	cells := campaign.MatrixCells(
		[]ospersona.OS{ospersona.NT4, ospersona.Win98},
		[]workload.Class{workload.Business, workload.Games},
		"default", base, 1)
	spec := &api.CampaignSpec{BaseSeed: 17, Cells: make([]api.CellSpec, len(cells))}
	for i, c := range cells {
		spec.Cells[i] = api.CellSpec{Key: c.Key, Config: c.Config}
	}
	return spec
}

// runLocally executes spec on the campaign runner at the given worker
// count and returns the result stream the server should serve.
func runLocally(t *testing.T, spec *api.CampaignSpec, jobs int) []byte {
	t.Helper()
	run := campaign.New(campaign.Options{BaseSeed: spec.Seed(), Jobs: jobs})
	cells := make([]campaign.Cell, len(spec.Cells))
	for i, c := range spec.Cells {
		cells[i] = campaign.Cell{Key: c.Key, Config: c.Config}
	}
	run.Submit(cells...)
	var buf bytes.Buffer
	for _, c := range spec.Cells {
		res, err := run.Result(c.Key)
		if err != nil {
			t.Fatalf("local cell %q: %v", c.Key, err)
		}
		if err := core.EncodeResult(&buf, res); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func fetchViaClient(t *testing.T, ts *httptest.Server, spec *api.CampaignSpec) (api.Status, []byte) {
	t.Helper()
	c := client.New(ts.URL, client.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err = c.Watch(ctx, st.ID, nil)
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if st.State != api.StateDone {
		t.Fatalf("campaign finished %s: %s", st.State, st.Error)
	}
	data, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	return st, data
}

func TestServerResultByteIdenticalToLocalRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real simulator")
	}
	spec := e2eSpec()
	local1 := runLocally(t, spec, 1)
	local8 := runLocally(t, spec, 8)
	if !bytes.Equal(local1, local8) {
		t.Fatal("local runs at jobs=1 and jobs=8 differ; campaign determinism broken")
	}

	for _, jobs := range []int{1, 8} {
		reg := metrics.NewRegistry()
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		st.Instrument(reg)
		srv := New(Options{Jobs: jobs, Store: st, Metrics: reg})
		ts := httptest.NewServer(srv.Handler())

		// Cold cache: every cell executes.
		status, got := fetchViaClient(t, ts, spec)
		if !bytes.Equal(got, local1) {
			t.Errorf("jobs=%d cold: server bytes differ from local run (%d vs %d bytes)", jobs, len(got), len(local1))
		}
		if status.Cached {
			t.Errorf("jobs=%d cold: status claims cached", jobs)
		}
		if exec := reg.Counter(MetricCellsExec).Value(); exec != uint64(len(spec.Cells)) {
			t.Errorf("jobs=%d cold: executed %d cells, want %d", jobs, exec, len(spec.Cells))
		}

		// Warm cache: a fresh server over the same store must serve the
		// same bytes while executing nothing — every cell replays from
		// the content-addressed cache through the exact codec.
		ts.Close()
		srv.Close()
		reg2 := metrics.NewRegistry()
		st.Instrument(reg2)
		srv2 := New(Options{Jobs: jobs, Store: st, Metrics: reg2})
		ts2 := httptest.NewServer(srv2.Handler())
		status2, got2 := fetchViaClient(t, ts2, spec)
		if !bytes.Equal(got2, local1) {
			t.Errorf("jobs=%d warm: server bytes differ from local run", jobs)
		}
		if !status2.Cached {
			t.Errorf("jobs=%d warm: status not marked cached", jobs)
		}
		if exec := reg2.Counter(MetricCellsExec).Value(); exec != 0 {
			t.Errorf("jobs=%d warm: executed %d cells, want 0", jobs, exec)
		}
		if hits := reg2.Counter(campaign.MetricCheckpointHits).Value(); hits != uint64(len(spec.Cells)) {
			t.Errorf("jobs=%d warm: checkpoint hits = %d, want %d", jobs, hits, len(spec.Cells))
		}
		ts2.Close()
		srv2.Close()
	}
}

func TestConcurrentDuplicateSubmissionsExecuteOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real simulator")
	}
	spec := &api.CampaignSpec{BaseSeed: 23, Cells: []api.CellSpec{
		{Key: "nt4/business/dup/0", Config: core.RunConfig{OS: ospersona.NT4, Workload: workload.Business, Duration: 100 * time.Millisecond}},
		{Key: "win98/web/dup/0", Config: core.RunConfig{OS: ospersona.Win98, Workload: workload.Web, Duration: 100 * time.Millisecond}},
	}}
	want := runLocally(t, spec, 2)

	reg := metrics.NewRegistry()
	srv := New(Options{Jobs: 2, Metrics: reg})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const submitters = 4
	var wg sync.WaitGroup
	results := make([][]byte, submitters)
	ids := make([]string, submitters)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := client.New(ts.URL, client.Options{})
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			st, err := c.Submit(ctx, spec)
			if err != nil {
				t.Errorf("submitter %d: %v", i, err)
				return
			}
			ids[i] = st.ID
			if st, err = c.Watch(ctx, st.ID, nil); err != nil || st.State != api.StateDone {
				t.Errorf("submitter %d: watch: %v %+v", i, err, st)
				return
			}
			if results[i], err = c.Result(ctx, st.ID); err != nil {
				t.Errorf("submitter %d: result: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	for i := 1; i < submitters; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("submitter %d got id %s, submitter 0 got %s", i, ids[i], ids[0])
		}
	}
	for i, data := range results {
		if !bytes.Equal(data, want) {
			t.Errorf("submitter %d: result differs from local bytes", i)
		}
	}
	// The decisive counters: each cell simulated exactly once, all other
	// submissions were dedup joins.
	if exec := reg.Counter(MetricCellsExec).Value(); exec != uint64(len(spec.Cells)) {
		t.Errorf("%s = %d, want %d (exactly one execution)", MetricCellsExec, exec, len(spec.Cells))
	}
	if sub := reg.Counter(MetricSubmitted).Value(); sub != 1 {
		t.Errorf("%s = %d, want 1", MetricSubmitted, sub)
	}
	if ded := reg.Counter(MetricDeduped).Value(); ded != submitters-1 {
		t.Errorf("%s = %d, want %d", MetricDeduped, ded, submitters-1)
	}
}
