package frontier

import (
	"fmt"

	"wdmlat/internal/core"
	"wdmlat/internal/workload"
)

// Criterion is the deterministic livelock/saturation test a probe's merged
// result is judged by. A probe saturates when any of three signals fires:
//
//   - drops: the ring overflows more than MaxDropFrac of offered packets —
//     the driver demonstrably cannot keep up;
//   - cpu: the CPU-available fraction (cycles not spent in ISRs, DPCs,
//     overhead episodes, context switches or measured threads) falls below
//     MinCPUAvail — the receive-livelock regime of Horst et al., where the
//     system still delivers packets but has no cycles left for any
//     application;
//   - backlog: the sampled ring occupancy trends upward across the run —
//     late-window mean at least GrowthFloor packets AND at least
//     GrowthFactor times the early-window mean — the queue is growing
//     without bound even though drops have not started yet.
//
// Every input is pooled deterministically by the campaign layer, so the
// verdict is a pure function of (config, seed) — the property the frontier
// byte-identity tests pin.
type Criterion struct {
	// MaxDropFrac is the tolerated ring-overflow fraction (default 0.01).
	MaxDropFrac float64
	// MinCPUAvail is the minimum CPU-available fraction (default 0.10).
	MinCPUAvail float64
	// GrowthFactor is the late/early backlog ratio that counts as growth
	// (default 4).
	GrowthFactor float64
	// GrowthFloor is the minimum late-window mean occupancy, in packets,
	// for the growth signal to fire (default 96 — ¾ of the 128-slot ring);
	// small absolute wobbles can never trip it.
	GrowthFloor float64
}

// Normalized returns the criterion with documented defaults filled in.
func (c Criterion) Normalized() Criterion {
	if c.MaxDropFrac == 0 {
		c.MaxDropFrac = 0.01
	}
	if c.MinCPUAvail == 0 {
		c.MinCPUAvail = 0.10
	}
	if c.GrowthFactor == 0 {
		c.GrowthFactor = 4
	}
	if c.GrowthFloor == 0 {
		c.GrowthFloor = 96
	}
	return c
}

// Verdict is one probe's evaluation: the boolean that steers the sweep
// plus the measured signals, kept for the frontier tables.
type Verdict struct {
	Saturated bool
	// Reasons lists which signals fired, in the stable order
	// "drops", "cpu", "backlog" (empty when sustainable).
	Reasons []string
	// DropFrac is dropped/offered; CPUAvail is the available fraction;
	// BacklogEarly/BacklogLate are the early/late mean ring occupancies
	// the growth signal compared.
	DropFrac     float64
	CPUAvail     float64
	BacklogEarly float64
	BacklogLate  float64
}

// String renders the verdict for tables and logs.
func (v Verdict) String() string {
	state := "sustainable"
	if v.Saturated {
		state = fmt.Sprintf("saturated%v", v.Reasons)
	}
	return fmt.Sprintf("%s drop=%.4f cpu=%.3f backlog=%.1f→%.1f",
		state, v.DropFrac, v.CPUAvail, v.BacklogEarly, v.BacklogLate)
}

// Evaluate judges one merged storm result. It panics if the result carries
// no storm stats (the probe was misconfigured, not borderline).
func (c Criterion) Evaluate(res *core.Result) Verdict {
	c = c.Normalized()
	if res.Storm == nil {
		panic("frontier: evaluating a result with no storm stats")
	}
	var v Verdict
	if res.Storm.Offered > 0 {
		v.DropFrac = float64(res.Storm.Dropped) / float64(res.Storm.Offered)
	}
	v.CPUAvail = 1
	if res.Observed > 0 {
		v.CPUAvail = 1 - float64(res.Counters.Busy())/float64(res.Observed)
	}
	v.BacklogEarly, v.BacklogLate = backlogWindows(res.Storm.Backlog)

	if v.DropFrac > c.MaxDropFrac {
		v.Reasons = append(v.Reasons, "drops")
	}
	if v.CPUAvail < c.MinCPUAvail {
		v.Reasons = append(v.Reasons, "cpu")
	}
	if v.BacklogLate >= c.GrowthFloor && v.BacklogLate >= c.GrowthFactor*maxf(1, v.BacklogEarly) {
		v.Reasons = append(v.Reasons, "backlog")
	}
	v.Saturated = len(v.Reasons) > 0
	return v
}

// backlogWindows computes the early- and late-quarter mean ring occupancy
// of a backlog trajectory. Merged replicas concatenate their trajectories,
// so the series is first split into per-replica segments wherever the
// sample time resets; each segment contributes its own quarters and the
// segments' means are averaged (every replica has equal weight — growth in
// one replica cannot be laundered against another's idle tail).
func backlogWindows(samples []workload.BacklogSample) (early, late float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	var segs [][]workload.BacklogSample
	start := 0
	for i := 1; i < len(samples); i++ {
		if samples[i].T <= samples[i-1].T {
			segs = append(segs, samples[start:i])
			start = i
		}
	}
	segs = append(segs, samples[start:])

	var nseg float64
	for _, seg := range segs {
		q := len(seg) / 4
		if q < 1 {
			q = 1
		}
		var e, l float64
		for _, s := range seg[:q] {
			e += float64(s.Pending)
		}
		for _, s := range seg[len(seg)-q:] {
			l += float64(s.Pending)
		}
		early += e / float64(q)
		late += l / float64(q)
		nseg++
	}
	return early / nseg, late / nseg
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
