// Package campaign orchestrates measurement campaigns: it fans the
// paper's independent measurement cells (OS personality × stress class ×
// variant × replica) out across a bounded worker pool while preserving
// byte-for-byte determinism, and keeps multi-hour campaigns alive through
// partial failure, cancellation, and process death.
//
// The determinism contract is the point of the package. Every Cell carries
// a stable string key, and the cell's seed is derived from the campaign's
// base seed by hashing that key through SplitMix64 (sim.DeriveSeed) — never
// from a counter, submission index, or worker id. A cell's result therefore
// depends only on (base seed, key, config), so a campaign run with one
// worker and a campaign run with sixteen produce identical results, and so
// do two campaigns that submit the same cells in different orders. The
// paper's replication methodology (hours of collection per class, §3.1)
// then parallelizes freely: replicas of one cell are just sibling cells
// keyed "<cell>/0", "<cell>/1", ... and are pooled in replica order.
//
// The fault-tolerance contract builds on the same property. A panicking
// cell is recovered and published as a failure (key, error, stack) instead
// of deadlocking collection; a cancelled campaign (Options.Context) stops
// dispatching queued cells, drains the running ones, and publishes the
// rest as cancelled; and with Options.Store each finished cell is
// checkpointed on disk under a content fingerprint, so re-submitting the
// same campaign against the same store replays completed cells and
// re-runs only the missing ones — producing artifacts byte-identical to
// an uninterrupted run, because each cell's result never depended on
// which process computed it.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"wdmlat/internal/campaign/store"
	"wdmlat/internal/core"
	"wdmlat/internal/metrics"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
	"wdmlat/internal/workload"
)

// Metric names the runner publishes on Options.Metrics. Counters count
// cells by outcome and checkpoint-store dispositions; the gauges track the
// pool's instantaneous load (with high-watermarks); the histogram is the
// distribution of per-cell execution wall time — the runner's own "full
// distribution on a loaded system", in the paper's sense.
const (
	MetricCellsStarted      = "campaign_cells_started"      // cells dispatched to a worker
	MetricCellsCompleted    = "campaign_cells_completed"    // successful results published (incl. checkpoint restores)
	MetricCellsFailed       = "campaign_cells_failed"       // cells published with an execution error
	MetricCellsCancelled    = "campaign_cells_cancelled"    // cells dropped by cancellation before dispatch
	MetricCellPanics        = "campaign_cell_panics"        // failed cells whose error was a recovered panic
	MetricCheckpointHits    = "campaign_checkpoint_hits"    // submitted cells restored from the store
	MetricCheckpointMisses  = "campaign_checkpoint_misses"  // submitted cells absent from the store
	MetricCheckpointCorrupt = "campaign_checkpoint_corrupt" // submitted cells whose stored entry was unreadable
	MetricWorkersBusy       = "campaign_workers_busy"       // gauge: workers executing a cell right now
	MetricQueueDepth        = "campaign_queue_depth"        // gauge: cells submitted but not yet dispatched
	MetricCellWallTime      = "campaign_cell_wall_time"     // histogram: per-cell execution wall time
)

// ErrCancelled marks cells that were never dispatched because the
// campaign's context was cancelled. Test with errors.Is on the error
// returned by Result/Merged/Wait.
var ErrCancelled = errors.New("cell cancelled")

// PanicError is the failure recorded for a cell whose execution panicked.
// The campaign continues past it; collecting the cell reports this error
// instead of deadlocking.
type PanicError struct {
	Key   string // the failed cell
	Value any    // the recovered panic value
	Stack []byte // the panicking goroutine's stack
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// Failure is one failed cell: its key and what went wrong (a *PanicError
// for panics, an ErrCancelled-wrapped error for cancelled cells).
type Failure struct {
	Key string
	Err error
}

// Cell is one independent measurement: a run configuration plus the stable
// identity its seed is derived from. Key is conventionally
// "os/workload/variant/replica" (see MatrixKey/ReplicaKey) but any
// campaign-unique string works. Config.Seed is ignored — the runner
// overwrites it with sim.DeriveSeed(base seed, Key).
type Cell struct {
	Key    string
	Config core.RunConfig
}

// Options configures a Runner.
type Options struct {
	// BaseSeed is the campaign seed every per-cell seed is derived from
	// (default 1).
	BaseSeed uint64
	// Jobs bounds the number of concurrently executing cells; <= 0 means
	// runtime.GOMAXPROCS(0).
	Jobs int
	// OnCellDone, if non-nil, is invoked as each cell's outcome is
	// published — after the result (or failure) is visible to Result, and
	// outside the runner lock, so the callback may itself call Result or
	// read completion counts. It fires for successful, failed, and
	// checkpoint-restored cells (not for cells cancelled before dispatch),
	// from worker goroutines: it must be safe for concurrent use and must
	// not block for long.
	OnCellDone func(key string)
	// Context, if non-nil, cancels the campaign: queued cells stop being
	// dispatched and are published as failed with ErrCancelled, while
	// cells already executing drain to completion (and checkpoint, if a
	// Store is attached). Collection then returns errors for the
	// cancelled cells instead of blocking forever.
	Context context.Context
	// Store, if non-nil, checkpoints every successfully finished cell and
	// lets Submit satisfy cells from prior runs: a submitted cell whose
	// fingerprint (base seed, key, canonical config, codec version) is
	// already stored is published immediately from disk and never
	// dispatched.
	Store *store.Store
	// Execute overrides the cell executor, core.Run. Tests use it to
	// inject panics, cancellation windows, and cheap fake cells; leave
	// nil for real campaigns. It must stay a pure function of its config
	// or the determinism contract is void.
	Execute func(core.RunConfig) *core.Result
	// ExecuteCell, if non-nil, supersedes Execute: it receives the cell's
	// key alongside its final config (per-cell seed already derived), and
	// may fail with an error — the seam a distributed coordinator needs,
	// where "executing" a cell means leasing it to a remote worker by its
	// content fingerprint and execution can fail for reasons that are not
	// panics (coordinator drain, campaign cancellation). An error is
	// published as that cell's failure exactly like a recovered panic; it
	// never takes the campaign down. The same purity rule applies: the
	// result must be a function of (key, config) only, never of which
	// worker ran it or when.
	ExecuteCell func(key string, cfg core.RunConfig) (*core.Result, error)
	// Metrics, if non-nil, receives the runner's operational telemetry
	// (the Metric* instruments above). Telemetry is strictly out-of-band:
	// it is never read by the runner or the simulation, so results are
	// byte-identical with it attached or not — a property the test suite
	// enforces. Nil disables collection at zero cost.
	Metrics *metrics.Registry
}

// runnerMetrics holds the runner's instrument handles, pre-resolved once so
// the hot paths never take the registry lock. With a nil registry every
// handle is nil and every update is a nil-safe no-op.
type runnerMetrics struct {
	started, completed, failed, cancelled, panics *metrics.Counter
	ckptHit, ckptMiss, ckptCorrupt                *metrics.Counter
	adaptive, converged, convFailed               *metrics.Counter
	busy, depth                                   *metrics.Gauge
	wall                                          *metrics.Histogram
}

func newRunnerMetrics(reg *metrics.Registry) runnerMetrics {
	return runnerMetrics{
		started:     reg.Counter(MetricCellsStarted),
		completed:   reg.Counter(MetricCellsCompleted),
		failed:      reg.Counter(MetricCellsFailed),
		cancelled:   reg.Counter(MetricCellsCancelled),
		panics:      reg.Counter(MetricCellPanics),
		ckptHit:     reg.Counter(MetricCheckpointHits),
		ckptMiss:    reg.Counter(MetricCheckpointMisses),
		ckptCorrupt: reg.Counter(MetricCheckpointCorrupt),
		adaptive:    reg.Counter(MetricReplicasAdaptive),
		converged:   reg.Counter(MetricCellsConverged),
		convFailed:  reg.Counter(MetricConvergenceFailures),
		busy:        reg.Gauge(MetricWorkersBusy),
		depth:       reg.Gauge(MetricQueueDepth),
		wall:        reg.Histogram(MetricCellWallTime),
	}
}

// Runner executes submitted cells on a bounded worker pool. Submit all
// cells up front, then collect with Result/Merged — collection blocks only
// until the requested cell (not the whole campaign) has finished, so
// artifacts can be emitted as their inputs complete.
type Runner struct {
	opts Options
	met  runnerMetrics

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []*pending          // FIFO of not-yet-started cells
	cells     map[string]*pending // every submitted cell, by key
	live      int                 // worker goroutines currently running
	open      int                 // dispatched cells not yet finished
	done      int                 // cells published (any outcome)
	total     int                 // cells submitted
	storeErrs []error             // checkpoint I/O problems (non-fatal per cell)
}

type pending struct {
	cell Cell
	fp   string // checkpoint fingerprint ("" when no store attached)
	done bool
	res  *core.Result
	err  error
}

// New returns a Runner with no cells submitted.
func New(opts Options) *Runner {
	if opts.BaseSeed == 0 {
		opts.BaseSeed = 1
	}
	if opts.Jobs <= 0 {
		opts.Jobs = runtime.GOMAXPROCS(0)
	}
	r := &Runner{opts: opts, met: newRunnerMetrics(opts.Metrics), cells: map[string]*pending{}}
	r.cond = sync.NewCond(&r.mu)
	if ctx := opts.Context; ctx != nil {
		// Cancel queued cells promptly, not only when a worker next looks
		// at the queue — a campaign whose workers are deep in multi-hour
		// cells should release waiting collectors immediately.
		go func() {
			<-ctx.Done()
			r.mu.Lock()
			r.cancelQueuedLocked()
			r.mu.Unlock()
		}()
	}
	return r
}

// BaseSeed returns the campaign's base seed.
func (r *Runner) BaseSeed() uint64 { return r.opts.BaseSeed }

// Jobs returns the campaign's worker-pool width.
func (r *Runner) Jobs() int { return r.opts.Jobs }

// Progress returns the number of cells published so far (any outcome —
// success, checkpoint restore, failure or cancellation) and the total
// submitted. Safe to call concurrently; progress reporters poll it.
func (r *Runner) Progress() (done, total int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done, r.total
}

// cancelErr builds the error published on cells the cancellation dropped.
func (r *Runner) cancelErr() error {
	cause := context.Cause(r.opts.Context)
	if cause == nil {
		cause = context.Canceled
	}
	return fmt.Errorf("%w: %v", ErrCancelled, cause)
}

// cancelled reports whether the campaign context is cancelled.
func (r *Runner) cancelled() bool {
	return r.opts.Context != nil && r.opts.Context.Err() != nil
}

// cancelQueuedLocked publishes every still-queued cell as cancelled.
// Running cells are left alone: they drain and publish normally.
func (r *Runner) cancelQueuedLocked() {
	if len(r.queue) == 0 {
		return
	}
	err := r.cancelErr()
	for _, p := range r.queue {
		p.err = err
		p.done = true
		r.open--
		r.done++
	}
	r.met.cancelled.Add(uint64(len(r.queue)))
	r.met.depth.Add(-int64(len(r.queue)))
	r.queue = nil
	r.cond.Broadcast()
}

// Submit enqueues cells for execution, deriving each cell's seed from the
// campaign base seed and the cell key. It never blocks on simulation work.
// Submitting an empty or duplicate key panics: keys are the determinism
// contract, and a collision would silently correlate two cells. With a
// Store attached, cells already checkpointed are published immediately
// instead of dispatched; with a cancelled Context, new cells are published
// as cancelled.
func (r *Runner) Submit(cells ...Cell) {
	var restored []string // checkpoint hits, for OnCellDone outside the lock
	r.mu.Lock()
	for _, c := range cells {
		if c.Key == "" {
			r.mu.Unlock()
			panic("campaign: cell with empty key")
		}
		if _, dup := r.cells[c.Key]; dup {
			r.mu.Unlock()
			panic(fmt.Sprintf("campaign: duplicate cell key %q", c.Key))
		}
		c.Config.Seed = sim.DeriveSeed(r.opts.BaseSeed, c.Key)
		p := &pending{cell: c}
		r.cells[c.Key] = p
		r.total++
		if st := r.opts.Store; st != nil {
			p.fp = store.Fingerprint(r.opts.BaseSeed, c.Key, c.Config)
			res, err := st.Load(p.fp)
			switch {
			case err != nil:
				// Unreadable or corrupt checkpoint: re-run the cell (the
				// safe direction) and surface the problem through Wait.
				r.storeErrs = append(r.storeErrs, fmt.Errorf("cell %q: %w", c.Key, err))
				r.met.ckptCorrupt.Inc()
			case res != nil:
				r.met.ckptHit.Inc()
			default:
				r.met.ckptMiss.Inc()
			}
			if res != nil {
				p.res, p.done = res, true
				r.done++
				r.met.completed.Inc()
				restored = append(restored, c.Key)
				continue
			}
		}
		if r.cancelled() {
			p.err = r.cancelErr()
			p.done = true
			r.done++
			r.met.cancelled.Inc()
			continue
		}
		r.queue = append(r.queue, p)
		r.open++
		r.met.depth.Inc()
		if r.live < r.opts.Jobs {
			r.live++
			go r.worker()
		}
	}
	if len(restored) > 0 {
		r.cond.Broadcast()
	}
	r.mu.Unlock()
	if cb := r.opts.OnCellDone; cb != nil {
		for _, key := range restored {
			cb(key)
		}
	}
}

// worker drains the queue and exits when it is empty; Submit spawns fresh
// workers as needed, so a drained pool restarts transparently.
func (r *Runner) worker() {
	r.mu.Lock()
	for len(r.queue) > 0 {
		if r.cancelled() {
			r.cancelQueuedLocked()
			break
		}
		p := r.queue[0]
		r.queue = r.queue[1:]
		r.mu.Unlock()
		r.met.depth.Dec()
		r.met.started.Inc()
		r.met.busy.Inc()

		begin := time.Now()
		res, err := r.runCell(p.cell)
		r.met.wall.Observe(time.Since(begin))
		r.met.busy.Dec()
		if err == nil {
			r.met.completed.Inc()
		} else {
			r.met.failed.Inc()
			var pe *PanicError
			if errors.As(err, &pe) {
				r.met.panics.Inc()
			}
		}
		if err == nil && r.opts.Store != nil {
			if serr := r.opts.Store.Save(p.fp, res); serr != nil {
				r.mu.Lock()
				r.storeErrs = append(r.storeErrs, fmt.Errorf("cell %q: %w", p.cell.Key, serr))
				r.mu.Unlock()
			}
		}

		r.mu.Lock()
		p.res, p.err = res, err
		p.done = true
		r.open--
		r.done++
		r.cond.Broadcast()
		// Invoke the callback only after the outcome is published, and
		// outside the lock: a callback that calls Result on its own key,
		// or reads completed counts, must observe this cell as done.
		if cb := r.opts.OnCellDone; cb != nil {
			r.mu.Unlock()
			cb(p.cell.Key)
			r.mu.Lock()
		}
	}
	r.live--
	r.mu.Unlock()
}

// runCell executes one cell, converting a panic inside the simulation into
// a recorded failure so one bad cell cannot take the campaign down.
func (r *Runner) runCell(c Cell) (res *core.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res = nil
			err = &PanicError{Key: c.Key, Value: v, Stack: debug.Stack()}
		}
	}()
	if r.opts.ExecuteCell != nil {
		return r.opts.ExecuteCell(c.Key, c.Config)
	}
	execute := r.opts.Execute
	if execute == nil {
		execute = core.Run
	}
	return execute(c.Config), nil
}

// Result blocks until the cell with the given key has finished and returns
// its result, or the error it failed with (a *PanicError for panics, an
// ErrCancelled-wrapped error for cells dropped by cancellation). It panics
// on an unknown key (the cell was never submitted, so waiting would
// deadlock).
func (r *Runner) Result(key string) (*core.Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.cells[key]
	if !ok {
		panic(fmt.Sprintf("campaign: result requested for unsubmitted cell %q", key))
	}
	for !p.done {
		r.cond.Wait()
	}
	if p.err != nil {
		return nil, fmt.Errorf("campaign: cell %q: %w", key, p.err)
	}
	return p.res, nil
}

// Merged collects the runs replica cells of key (submitted via Replicas)
// and pools them in replica-index order — a fixed order, so the merged
// histograms, counters and episode lists are independent of which worker
// finished first. Pooling accumulates into a clone of replica 0's stored
// result, never into the stored result itself: collecting the same key
// twice therefore returns two identical, independent results instead of
// double-merging the campaign's copy. Any failed replica fails the
// collection with that cell's error.
func (r *Runner) Merged(key string, runs int) (*core.Result, error) {
	if runs < 1 {
		runs = 1
	}
	first, err := r.Result(ReplicaKey(key, 0))
	if err != nil {
		return nil, err
	}
	merged := first.Clone()
	for i := 1; i < runs; i++ {
		next, err := r.Result(ReplicaKey(key, i))
		if err != nil {
			return nil, err
		}
		merged.Merge(next)
	}
	return merged, nil
}

// Wait blocks until every submitted cell has finished (or been published
// as cancelled) and returns the campaign's aggregate error: one entry per
// failed cell plus any checkpoint-store I/O problems, nil if everything
// succeeded. Running cells always drain before Wait returns, so with a
// Store attached their checkpoints are flushed even on cancellation.
func (r *Runner) Wait() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.open > 0 {
		r.cond.Wait()
	}
	var errs []error
	for _, f := range r.failedLocked() {
		errs = append(errs, fmt.Errorf("cell %q: %w", f.Key, f.Err))
	}
	errs = append(errs, r.storeErrs...)
	return errors.Join(errs...)
}

// Failed returns the failures among cells that have finished so far,
// sorted by key. After Wait it is the campaign's complete failure list.
func (r *Runner) Failed() []Failure {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failedLocked()
}

func (r *Runner) failedLocked() []Failure {
	var out []Failure
	for key, p := range r.cells {
		if p.done && p.err != nil {
			out = append(out, Failure{Key: key, Err: p.err})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Run is the one-shot form: execute all cells on a fresh pool and return
// results in cell order, or the first failed cell's error.
func Run(cells []Cell, opts Options) ([]*core.Result, error) {
	r := New(opts)
	r.Submit(cells...)
	out := make([]*core.Result, len(cells))
	for i, c := range cells {
		res, err := r.Result(c.Key)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// Key joins key components with "/", the conventional separator.
func Key(parts ...string) string { return strings.Join(parts, "/") }

// ReplicaKey returns the key of replica i of a cell.
func ReplicaKey(key string, i int) string { return key + "/" + strconv.Itoa(i) }

// Replicas expands one logical cell into runs replica cells keyed
// "<key>/0" ... "<key>/<runs-1>", all sharing cfg. Collect them pooled
// with Runner.Merged(key, runs).
func Replicas(key string, cfg core.RunConfig, runs int) []Cell {
	if runs < 1 {
		runs = 1
	}
	cells := make([]Cell, runs)
	for i := range cells {
		cells[i] = Cell{Key: ReplicaKey(key, i), Config: cfg}
	}
	return cells
}

// OSSlug returns the short stable key token for an OS personality (the
// same tokens cli.ParseOS accepts).
func OSSlug(o ospersona.OS) string {
	switch o {
	case ospersona.NT4:
		return "nt4"
	case ospersona.Win98:
		return "win98"
	case ospersona.Win2000Beta:
		return "win2000"
	default:
		return "os" + strconv.Itoa(int(o))
	}
}

// ClassSlug returns the short stable key token for a workload class.
func ClassSlug(c workload.Class) string {
	switch c {
	case workload.Business:
		return "business"
	case workload.Workstation:
		return "workstation"
	case workload.Games:
		return "games"
	case workload.Web:
		return "web"
	default:
		return "class" + strconv.Itoa(int(c))
	}
}

// MatrixKey returns the canonical logical-cell key for one OS × workload
// cell of a named campaign variant ("default", "scanner", ...).
func MatrixKey(o ospersona.OS, c workload.Class, variant string) string {
	return Key(OSSlug(o), ClassSlug(c), variant)
}

// MatrixCells builds the replica cells of a full OS × workload matrix. The
// base config supplies everything but OS, Workload and Seed, which are set
// per cell. Collect with Runner.Merged(MatrixKey(...), runs).
func MatrixCells(oses []ospersona.OS, classes []workload.Class, variant string, base core.RunConfig, runs int) []Cell {
	var cells []Cell
	for _, o := range oses {
		for _, c := range classes {
			cfg := base
			cfg.OS = o
			cfg.Workload = c
			cells = append(cells, Replicas(MatrixKey(o, c, variant), cfg, runs)...)
		}
	}
	return cells
}

// RunMatrix submits a full OS × workload matrix on r and collects the
// pooled per-cell results, indexed by OS then class. The first failed or
// cancelled cell aborts collection with its error.
func (r *Runner) RunMatrix(oses []ospersona.OS, classes []workload.Class, variant string, base core.RunConfig, runs int) (map[ospersona.OS]map[workload.Class]*core.Result, error) {
	r.Submit(MatrixCells(oses, classes, variant, base, runs)...)
	out := make(map[ospersona.OS]map[workload.Class]*core.Result, len(oses))
	for _, o := range oses {
		out[o] = make(map[workload.Class]*core.Result, len(classes))
		for _, c := range classes {
			res, err := r.Merged(MatrixKey(o, c, variant), runs)
			if err != nil {
				return nil, err
			}
			out[o][c] = res
		}
	}
	return out, nil
}
