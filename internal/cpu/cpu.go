// Package cpu models the processor-visible hardware services that the
// paper's tools depend on: the Pentium time stamp counter (read with RDTSC
// in the paper, §2.2.5), the Interrupt Descriptor Table with hookable
// vectors (the latency cause tool of §2.3 patches the PIT vector), and a
// registry of "what code is executing right now" that stands in for the
// instruction pointer + code segment samples the cause tool records.
package cpu

import (
	"fmt"

	"wdmlat/internal/sim"
)

// NumVectors is the size of the IDT on IA-32.
const NumVectors = 256

// Handler is an interrupt handler installed in an IDT slot. It receives the
// virtual time at which the processor dispatches through the vector.
type Handler func(now sim.Time)

// Frame identifies the code executing on the CPU at an instant: a module
// (driver or OS component, e.g. "VMM", "SYSAUDIO", "KMIXER") and a function
// within it. It is the simulated analogue of the instruction pointer / code
// segment pair captured by the cause tool; with "symbols available", a frame
// resolves to module+function exactly as in Table 4 of the paper.
type Frame struct {
	Module   string
	Function string
}

// String formats the frame the way the paper's post-mortem analysis prints
// trace lines ("VMM function _mmCalcFrameBadness").
func (f Frame) String() string {
	if f.Module == "" {
		return "idle"
	}
	if f.Function == "" {
		return f.Module + " function unknown"
	}
	return f.Module + " function " + f.Function
}

// IdleFrame is the frame reported when nothing is executing.
var IdleFrame = Frame{}

// CPU is the virtual processor. It owns the time stamp counter (delegated to
// the simulation clock), the IDT, and the current execution frame stack.
//
// CPU is not safe for concurrent use; the simulator is single-threaded.
type CPU struct {
	eng    *sim.Engine
	freq   sim.Freq
	idt    [NumVectors]Handler
	frames []Frame
	// charge is extra cycles attributed to the currently running body
	// beyond the engine clock; it makes TSC reads inside an ISR/DPC body
	// reflect the cycles the body has "executed" so far even though the
	// body runs instantaneously in host terms.
	charge sim.Cycles
}

// New returns a CPU bound to the engine at the given clock frequency.
func New(eng *sim.Engine, freq sim.Freq) *CPU {
	if freq <= 0 {
		panic("cpu: non-positive frequency")
	}
	return &CPU{eng: eng, freq: freq}
}

// Engine returns the simulation engine driving this CPU.
func (c *CPU) Engine() *sim.Engine { return c.eng }

// Freq returns the core clock frequency.
func (c *CPU) Freq() sim.Freq { return c.freq }

// TSC returns the current value of the time stamp counter, including any
// cycles charged by the currently executing body. This is the simulated
// GetCycleCount of §2.2.5.
func (c *CPU) TSC() sim.Time { return c.eng.Now().Add(c.charge) }

// AddCharge attributes extra executed cycles to the current body so that
// subsequent TSC reads observe them. The kernel resets the charge at body
// boundaries via ResetCharge.
func (c *CPU) AddCharge(d sim.Cycles) {
	if d < 0 {
		panic("cpu: negative charge")
	}
	c.charge += d
}

// Charge returns the cycles charged since the last ResetCharge.
func (c *CPU) Charge() sim.Cycles { return c.charge }

// ResetCharge clears the per-body charge accumulator and returns the total
// that was accumulated.
func (c *CPU) ResetCharge() sim.Cycles {
	ch := c.charge
	c.charge = 0
	return ch
}

// Install sets the handler for a vector, replacing any previous handler and
// discarding any hooks. It is how the OS claims a vector at boot.
func (c *CPU) Install(vector int, h Handler) {
	c.checkVector(vector)
	c.idt[vector] = h
}

// Handler returns the currently installed handler chain for a vector, or nil.
func (c *CPU) Handler(vector int) Handler {
	c.checkVector(vector)
	return c.idt[vector]
}

// Hook patches a vector the way the cause tool does: the hook function runs
// first and receives the previous handler so it can chain to the OS ISR.
// It returns an unhook function restoring the previous handler.
func (c *CPU) Hook(vector int, hook func(now sim.Time, chain Handler)) (unhook func()) {
	c.checkVector(vector)
	prev := c.idt[vector]
	c.idt[vector] = func(now sim.Time) { hook(now, prev) }
	return func() { c.idt[vector] = prev }
}

// Dispatch vectors an interrupt through the IDT. The kernel calls this when
// it accepts a hardware interrupt. Dispatching through an empty vector
// panics: it corresponds to the triple-fault you would get on hardware.
func (c *CPU) Dispatch(vector int, now sim.Time) {
	c.checkVector(vector)
	h := c.idt[vector]
	if h == nil {
		panic(fmt.Sprintf("cpu: interrupt through empty vector %d", vector))
	}
	h(now)
}

func (c *CPU) checkVector(vector int) {
	if vector < 0 || vector >= NumVectors {
		panic(fmt.Sprintf("cpu: vector %d out of range", vector))
	}
}

// PushFrame records that execution entered module/function. Every ISR, DPC,
// overhead episode and thread body is bracketed by Push/PopFrame so that a
// sampler (the cause tool) can observe what is on-CPU.
func (c *CPU) PushFrame(module, function string) {
	c.frames = append(c.frames, Frame{Module: module, Function: function})
}

// PopFrame undoes the most recent PushFrame.
func (c *CPU) PopFrame() {
	if len(c.frames) == 0 {
		panic("cpu: PopFrame on empty frame stack")
	}
	c.frames = c.frames[:len(c.frames)-1]
}

// CurrentFrame returns the innermost executing frame, or IdleFrame when the
// stack is empty.
func (c *CPU) CurrentFrame() Frame {
	if len(c.frames) == 0 {
		return IdleFrame
	}
	return c.frames[len(c.frames)-1]
}

// Stack returns a copy of the whole frame stack, outermost first. The
// "walk the stack to generate call trees" enhancement described in §6.1 of
// the paper corresponds to sampling this instead of CurrentFrame.
func (c *CPU) Stack() []Frame {
	out := make([]Frame, len(c.frames))
	copy(out, c.frames)
	return out
}

// Depth returns the current frame stack depth.
func (c *CPU) Depth() int { return len(c.frames) }
