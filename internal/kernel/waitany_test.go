package kernel_test

import (
	"testing"

	"wdmlat/internal/kernel"
	"wdmlat/internal/sim"
)

func TestWaitAnyReturnsSignaledIndex(t *testing.T) {
	b := newBench(t, 1, false)
	a := b.k.NewEvent("a", kernel.SynchronizationEvent)
	c := b.k.NewEvent("c", kernel.SynchronizationEvent)
	var got []int
	b.k.CreateThread("w", 20, func(tc *kernel.ThreadContext) {
		for i := 0; i < 3; i++ {
			got = append(got, tc.WaitAny(a, c))
		}
	})
	b.eng.At(10_000, "c", func(sim.Time) { b.k.SetEvent(c) })
	b.eng.At(20_000, "a", func(sim.Time) { b.k.SetEvent(a) })
	b.eng.At(30_000, "c2", func(sim.Time) { b.k.SetEvent(c) })
	b.eng.RunUntil(1_000_000)
	want := []int{1, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("indices = %v, want %v", got, want)
		}
	}
}

func TestWaitAnyImmediateSatisfactionPrefersEarlierObject(t *testing.T) {
	b := newBench(t, 1, false)
	a := b.k.NewEvent("a", kernel.SynchronizationEvent)
	c := b.k.NewEvent("c", kernel.SynchronizationEvent)
	b.k.SetEvent(a)
	b.k.SetEvent(c)
	var idx int
	b.k.CreateThread("w", 20, func(tc *kernel.ThreadContext) {
		idx = tc.WaitAny(a, c)
	})
	b.eng.RunUntil(1_000_000)
	if idx != 0 {
		t.Fatalf("index = %d, want 0 (argument order wins ties)", idx)
	}
	// Only the first event's signal was consumed.
	if a.Signaled() {
		t.Fatal("event a should have been consumed")
	}
	if !c.Signaled() {
		t.Fatal("event c should remain signaled")
	}
}

func TestWaitAnyDeregistersFromLosers(t *testing.T) {
	b := newBench(t, 1, false)
	a := b.k.NewEvent("a", kernel.SynchronizationEvent)
	c := b.k.NewEvent("c", kernel.SynchronizationEvent)
	woke := 0
	b.k.CreateThread("w", 20, func(tc *kernel.ThreadContext) {
		tc.WaitAny(a, c)
		woke++
		tc.Exec(1_000_000) // busy: no second wait outstanding
	})
	b.eng.At(10_000, "a", func(sim.Time) { b.k.SetEvent(a) })
	// c fires later; the thread must NOT be woken through its stale
	// registration — the signal latches instead.
	b.eng.At(20_000, "c", func(sim.Time) { b.k.SetEvent(c) })
	b.eng.RunUntil(5_000_000)
	if woke != 1 {
		t.Fatalf("woke %d times", woke)
	}
	if !c.Signaled() {
		t.Fatal("c's signal should have latched (no waiter registered)")
	}
}

func TestWaitAnyTimeout(t *testing.T) {
	b := newBench(t, 1, false)
	a := b.k.NewEvent("a", kernel.SynchronizationEvent)
	c := b.k.NewEvent("c", kernel.SynchronizationEvent)
	var idx int
	var st kernel.WaitStatus
	b.k.CreateThread("w", 20, func(tc *kernel.ThreadContext) {
		idx, st = tc.WaitAnyTimeout(50_000, a, c)
	})
	b.eng.RunUntil(1_000_000)
	if st != kernel.WaitTimedOut || idx != -1 {
		t.Fatalf("idx=%d status=%v, want -1/timeout", idx, st)
	}
	// Timed-out registrations must be gone: later signals latch.
	b.k.SetEvent(a)
	if !a.Signaled() {
		t.Fatal("stale registration consumed the signal")
	}
}

func TestWaitAnyWithTimerObject(t *testing.T) {
	b := newBench(t, 1, true)
	ev := b.k.NewEvent("never", kernel.SynchronizationEvent)
	tm := b.k.NewTimer("tick")
	var idx int
	b.k.CreateThread("w", 20, func(tc *kernel.ThreadContext) {
		tc.SetTimer(tm, 2*tickPeriod, nil)
		idx = tc.WaitAny(ev, tm)
	})
	b.eng.RunUntil(20 * tickPeriod)
	if idx != 1 {
		t.Fatalf("index = %d, want 1 (the timer)", idx)
	}
}

func TestWaitAnyMixedObjectKinds(t *testing.T) {
	b := newBench(t, 1, false)
	sem := b.k.NewSemaphore(0, 4)
	mu := b.k.NewMutex("m")
	ev := b.k.NewEvent("e", kernel.SynchronizationEvent)
	var order []int
	b.k.CreateThread("w", 20, func(tc *kernel.ThreadContext) {
		order = append(order, tc.WaitAny(ev, sem, mu)) // mutex free: index 2
		tc.ReleaseMutex(mu)
		order = append(order, tc.WaitAny(ev, sem)) // semaphore released below
	})
	b.eng.At(10_000, "rel", func(sim.Time) { b.k.ReleaseSemaphore(sem, 1) })
	b.eng.RunUntil(1_000_000)
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("order = %v, want [2 1]", order)
	}
}
