package workload_test

import (
	"testing"
	"time"

	"wdmlat/internal/ospersona"
	"wdmlat/internal/workload"
)

func build(t *testing.T, os ospersona.OS, seed uint64) *ospersona.Machine {
	t.Helper()
	m := ospersona.Build(os, ospersona.Options{Seed: seed})
	t.Cleanup(m.Shutdown)
	return m
}

func TestClassMetadata(t *testing.T) {
	if len(workload.Classes) != 4 {
		t.Fatalf("classes = %v", workload.Classes)
	}
	names := map[workload.Class]string{
		workload.Business:    "Business Apps",
		workload.Workstation: "Workstation Apps",
		workload.Games:       "3D Games",
		workload.Web:         "Web Browsing",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q", int(c), c.String())
		}
	}
	// §3.1 compression factors.
	comp := map[workload.Class]float64{
		workload.Business:    10,
		workload.Workstation: 5,
		workload.Games:       1,
		workload.Web:         4,
	}
	for c, want := range comp {
		if c.TimeCompression() != want {
			t.Errorf("%v compression = %v, want %v", c, c.TimeCompression(), want)
		}
	}
	// Usage models map to the right categories.
	if workload.Business.Usage().CategoryName != "office" {
		t.Error("business should use the office usage model")
	}
	if workload.Games.Usage().CategoryName != "consumer" {
		t.Error("games should use the consumer usage model")
	}
}

func TestEachClassGeneratesItsSignatureActivity(t *testing.T) {
	type counts struct{ files, ui, net, frames, pf uint64 }
	run := func(c workload.Class) counts {
		m := build(t, ospersona.Win98, 5)
		g := workload.New(c, m)
		g.Start()
		m.RunFor(m.Freq().Cycles(10 * time.Second))
		var out counts
		out.files, out.ui, out.net, out.frames, out.pf = m.Counters()
		return out
	}

	biz := run(workload.Business)
	if biz.ui < 500 {
		t.Fatalf("business UI events = %d, want dense MS-Test input", biz.ui)
	}
	if biz.files < 50 {
		t.Fatalf("business file ops = %d", biz.files)
	}
	if biz.net != 0 || biz.frames != 0 {
		t.Fatalf("business should not browse or render frames: %+v", biz)
	}

	wks := run(workload.Workstation)
	if wks.pf < 10 {
		t.Fatalf("workstation page faults = %d, want paging pressure", wks.pf)
	}
	if wks.ui > biz.ui/3 {
		t.Fatalf("workstation UI (%d) should be far sparser than business (%d)", wks.ui, biz.ui)
	}

	games := run(workload.Games)
	if games.frames < 200 {
		t.Fatalf("games frames = %d, want ~30 fps", games.frames)
	}

	web := run(workload.Web)
	if web.net < 10 {
		t.Fatalf("web net bursts = %d", web.net)
	}
}

func TestStopHaltsActivity(t *testing.T) {
	m := build(t, ospersona.NT4, 1)
	g := workload.New(workload.Business, m)
	g.Start()
	m.RunFor(m.Freq().Cycles(5 * time.Second))
	g.Stop()
	f1, u1, _, _, _ := m.Counters()
	m.RunFor(m.Freq().Cycles(5 * time.Second))
	f2, u2, _, _, _ := m.Counters()
	// In-flight app ops may drain, but the generator loops must stop.
	if u2 != u1 {
		t.Fatalf("UI events kept flowing after Stop: %d -> %d", u1, u2)
	}
	if f2 > f1+20 {
		t.Fatalf("file ops kept flowing after Stop: %d -> %d", f1, f2)
	}
}

func TestDoubleStartPanics(t *testing.T) {
	m := build(t, ospersona.NT4, 1)
	g := workload.New(workload.Business, m)
	g.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start should panic")
		}
	}()
	g.Start()
}

func TestGamesKeepAudioPlaying(t *testing.T) {
	m := build(t, ospersona.NT4, 1)
	g := workload.New(workload.Games, m)
	g.Start()
	m.RunFor(m.Freq().Cycles(5 * time.Second))
	if !m.Sound.Playing() {
		t.Fatal("games should keep the audio pipeline running")
	}
	if m.Sound.Periods() < 200 {
		t.Fatalf("audio periods = %d", m.Sound.Periods())
	}
}

func TestWinstoneScriptDeterministic(t *testing.T) {
	m := build(t, ospersona.NT4, 1)
	a := workload.WinstoneScript(m, 10)
	b := workload.WinstoneScript(m, 10)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("script lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("script not deterministic at op %d", i)
		}
	}
	// 10 units: 40 base ops + 2 saves + 0 save-as.
	if len(a) != 42 {
		t.Fatalf("script has %d ops, want 42", len(a))
	}
}

func TestRunThroughputCompletes(t *testing.T) {
	m := build(t, ospersona.NT4, 3)
	d := workload.RunThroughput(m, 20)
	if d <= 0 {
		t.Fatalf("duration = %d", d)
	}
	// 20 units of ~11 ms compute + I/O should take roughly 0.3-3 s.
	sec := m.Freq().Duration(d).Seconds()
	if sec < 0.05 || sec > 10 {
		t.Fatalf("throughput run took %v s", sec)
	}
}

func TestThroughputSimilarAcrossOSes(t *testing.T) {
	// §4.2: the macrobenchmark deltas are ~10% average, 20% max — the
	// throughput view cannot tell the two OSes apart.
	nt := build(t, ospersona.NT4, 11)
	w98 := build(t, ospersona.Win98, 11)
	dn := nt.Freq().Duration(workload.RunThroughput(nt, 60)).Seconds()
	dw := w98.Freq().Duration(workload.RunThroughput(w98, 60)).Seconds()
	ratio := dn / dw
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if ratio > 1.25 {
		t.Fatalf("throughput differs %.0f%% between OSes; the paper bounds it ~10-20%%", (ratio-1)*100)
	}
}
