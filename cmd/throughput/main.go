// throughput reproduces the §4.2 macrobenchmark observation: a
// Winstone-style throughput score differs only ~10% (max 20%) between the
// two operating systems, even though their latency behaviour differs by one
// to two orders of magnitude — the paper's argument that throughput metrics
// miss real-time performance entirely.
package main

import (
	"flag"
	"fmt"
	"os"

	"wdmlat/internal/cli"
	"wdmlat/internal/core"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/report"
)

func main() {
	units := flag.Int("units", 200, "benchmark script size (user-action units)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	cli.AddVersionFlag("throughput", flag.CommandLine)
	flag.Parse()

	nt := core.RunThroughput(ospersona.NT4, *units, *seed)
	w98 := core.RunThroughput(ospersona.Win98, *units, *seed)

	t := &report.Table{
		Title:   "Winstone-style throughput (same deterministic script on both systems, §4.2)",
		Headers: []string{"System", "Script time (s)", "Score (units/s)"},
	}
	for _, r := range []core.ThroughputResult{nt, w98} {
		t.AddRow(r.OSName, fmt.Sprintf("%.2f", r.Seconds()), fmt.Sprintf("%.2f", r.Score()))
	}
	if err := t.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "throughput:", err)
		os.Exit(1)
	}
	delta := core.ThroughputDelta(nt, w98)
	fmt.Printf("\nScore delta: %.1f%% (paper: average delta between like scores was 10%%, max 20%%)\n", delta*100)
	fmt.Println("Contrast with latbench: thread latency differs by 1-2 orders of magnitude on the same machines.")
}
