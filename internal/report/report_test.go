package report

import (
	"strings"
	"testing"

	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
)

func sampleHistogram() *stats.Histogram {
	h := stats.NewHistogram(sim.DefaultFreq)
	for i := 0; i < 900; i++ {
		h.AddMillis(0.2)
	}
	for i := 0; i < 99; i++ {
		h.AddMillis(3)
	}
	h.AddMillis(50)
	return h
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "Table 1: Latency Tolerances",
		Headers: []string{"Application", "Buffer (ms)", "Tolerance (ms)"},
	}
	tbl.AddRow("ADSL", "2 to 4", "4 to 10")
	tbl.AddRow("RT video", "33 to 50", "33 to 100")
	var b strings.Builder
	if err := tbl.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table 1", "Application", "ADSL", "33 to 100", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("table has %d lines, want 5", len(lines))
	}
}

func TestSeriesAndLogLog(t *testing.T) {
	h := sampleHistogram()
	s := NewSeries("Business Apps", h, 0.125, 128)
	if len(s.Points) != 10 {
		t.Fatalf("series has %d bins", len(s.Points))
	}
	var b strings.Builder
	if err := WriteLogLog(&b, "Windows 98 Thread Latency", []Series{s}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Windows 98 Thread Latency") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "Business Apps") {
		t.Fatal("missing series label")
	}
	if !strings.Contains(out, "0.0001") {
		t.Fatal("missing deep-tail decade row (paper plots to 0.0001%)")
	}
}

func TestWriteCSV(t *testing.T) {
	h := sampleHistogram()
	series := []Series{
		NewSeries("NT 4.0", h, 0.125, 128),
		NewSeries("Win 98", h, 0.125, 128),
	}
	var b strings.Builder
	if err := WriteCSV(&b, series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 11 { // header + 10 bins
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "bin_lo_ms,nt_4_0_pct,nt_4_0_ccdf_pct,win_98_pct") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0.125,") {
		t.Fatalf("first row = %q", lines[1])
	}
	for _, l := range lines[1:] {
		if got := strings.Count(l, ","); got != 4 {
			t.Fatalf("row %q has %d commas", l, got)
		}
	}
}

func TestFormatPercentRange(t *testing.T) {
	cases := map[float64]string{
		0:       ".",
		42.1234: "42.1",
		1.5:     "1.5",
		0.01:    "0.010",
		0.00001: "<1e-4",
	}
	for in, want := range cases {
		if got := formatPercent(in); got != want {
			t.Errorf("formatPercent(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestMillisFormatting(t *testing.T) {
	if Millis(0.04) != "<0.1" {
		t.Fatalf("Millis(0.04) = %q", Millis(0.04))
	}
	if Millis(1.62) != "1.6" {
		t.Fatalf("Millis(1.62) = %q", Millis(1.62))
	}
	if Millis(84.2) != "84.2" {
		t.Fatalf("Millis(84.2) = %q", Millis(84.2))
	}
}

func TestEmptySeriesSafe(t *testing.T) {
	var b strings.Builder
	if err := WriteLogLog(&b, "x", nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&b, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBandCSV(t *testing.T) {
	h := sampleHistogram()
	series := []BandSeries{NewBandSeries("NT 4.0", h, 0.125, 128, 0.95)}
	var b strings.Builder
	if err := WriteBandCSV(&b, series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 11 { // header + 10 bins
		t.Fatalf("band CSV has %d lines", len(lines))
	}
	if lines[0] != "bin_lo_ms,nt_4_0_ccdf_pct,nt_4_0_ccdf_lo_pct,nt_4_0_ccdf_hi_pct" {
		t.Fatalf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if got := strings.Count(l, ","); got != 3 {
			t.Fatalf("row %q has %d commas", l, got)
		}
	}
	// The band must bracket the point estimate on every row.
	for _, p := range series[0].Points {
		if p.CCDFLoPercent > p.CCDFPercent+1e-9 || p.CCDFHiPercent < p.CCDFPercent-1e-9 {
			t.Fatalf("band [%g, %g] does not contain estimate %g at %g ms",
				p.CCDFLoPercent, p.CCDFHiPercent, p.CCDFPercent, p.LoMs)
		}
	}
	if err := WriteBandCSV(&b, nil); err != nil {
		t.Fatal("empty band series should be a no-op, not an error")
	}
}

func TestCIMillis(t *testing.T) {
	if got := CIMillis(4.5, 1.5, 11.3); got != "4.5 [1.5, 11.3]" {
		t.Fatalf("CIMillis = %q", got)
	}
}
