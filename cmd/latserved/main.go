// latserved serves measurement campaigns over HTTP: POST an OS×workload
// cell matrix to /v1/campaigns, watch its NDJSON progress stream, and
// fetch a result byte-identical to running the same campaign locally.
// Campaigns are content-addressed, so identical submissions — concurrent
// or repeated — share one execution, and with -cache the per-cell results
// persist across restarts under their checkpoint-store fingerprints (the
// same files a local `reproduce -checkpoint` run reads and writes).
// -cache also holds latserved.journal, an append-only record of admitted
// campaigns: a server killed mid-campaign re-admits its unfinished
// campaigns on the next start and resumes them — cached cells replay from
// disk, the rest re-execute or re-dispatch — instead of failing waiters.
//
// Endpoints:
//
//	POST   /v1/campaigns             submit {base_seed, cells:[{key,config}]}
//	GET    /v1/campaigns/{id}        status
//	DELETE /v1/campaigns/{id}        cancel
//	GET    /v1/campaigns/{id}/result exact core.EncodeResult stream (NDJSON)
//	GET    /v1/campaigns/{id}/events progress events (NDJSON, ?from= resume)
//	GET    /healthz                  liveness
//	GET    /metrics                  internal/metrics registry snapshot
//
// With -fleet the server becomes a coordinator: instead of simulating
// in-process it shards each campaign's cells across registered latworkd
// workers by checkpoint fingerprint, merges validated results in
// submission order (byte-identical to a local run at any fleet size), and
// re-dispatches the leases of workers that stop heartbeating:
//
//	POST   /v1/workers                    worker registration
//	POST   /v1/workers/{id}/heartbeat     liveness (410: re-register)
//	POST   /v1/workers/{id}/leases        claim cells
//	POST   /v1/workers/{id}/complete      deliver a validated result
//	GET    /v1/fleet                      fleet status (workers, leases)
//
// Admission is bounded (-queue): when the queue is full the server answers
// 429 with Retry-After instead of blocking. SIGINT/SIGTERM shut down
// gracefully — running cells drain through the checkpoint path, then the
// listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"wdmlat/internal/campaign/store"
	"wdmlat/internal/cli"
	"wdmlat/internal/metrics"
	"wdmlat/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	cache := flag.String("cache", "latserved-cache", "content-addressed result cache directory (empty disables caching)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulation workers per campaign")
	queue := flag.Int("queue", 16, "max campaigns admitted but not yet running (beyond it: 429)")
	campaigns := flag.Int("campaigns", 1, "campaigns executing concurrently")
	retryAfter := flag.Duration("retry-after", 2*time.Second, "Retry-After hint on 429 responses")
	drain := flag.Duration("drain", time.Minute, "shutdown grace for open HTTP connections after jobs drain")
	fleet := flag.Bool("fleet", false, "coordinator mode: lease cells to latworkd workers instead of simulating in-process")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "fleet: reclaim a worker's leases after this long without a heartbeat")
	poll := flag.Duration("poll", 500*time.Millisecond, "fleet: idle-worker re-poll hint")
	cli.AddVersionFlag("latserved", flag.CommandLine)
	flag.Parse()

	reg := metrics.NewRegistry()
	var st *store.Store
	var journal *server.Journal
	if *cache != "" {
		var err error
		st, err = store.Open(*cache)
		if err != nil {
			fail(err)
		}
		st.Instrument(reg)
		// The journal lives beside the cell cache: together they are the
		// server's durable state. On restart its unfinished campaigns are
		// re-admitted — finished cells replay from the cache, the rest
		// re-execute (or re-dispatch, in fleet mode) — so a crash or
		// redeploy mid-campaign resumes instead of failing waiters.
		journal, err = server.OpenJournal(filepath.Join(*cache, "latserved.journal"))
		if err != nil {
			fail(err)
		}
	}
	srvOpts := server.Options{
		Jobs:        *jobs,
		QueueLimit:  *queue,
		Concurrency: *campaigns,
		RetryAfter:  *retryAfter,
		Store:       st,
		Metrics:     reg,
		Journal:     journal,
	}
	if *fleet {
		srvOpts.Fleet = &server.CoordinatorOptions{LeaseTTL: *leaseTTL, Poll: *poll}
	}
	srv := server.New(srvOpts)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := cli.SignalContext()
	defer stop()
	go func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "latserved: shutting down: draining running campaigns")
		// Drain jobs first: their terminal events end any open watch
		// streams, so the HTTP shutdown below does not wait on them.
		srv.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "latserved: shutdown:", err)
		}
	}()

	mode := "local execution"
	if *fleet {
		mode = fmt.Sprintf("fleet coordinator (lease TTL %s)", *leaseTTL)
	}
	fmt.Fprintf(os.Stderr, "latserved: listening on %s (cache %q, %d workers/campaign, queue %d, %s)\n",
		*addr, *cache, *jobs, *queue, mode)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	<-ctx.Done() // ListenAndServe returned because Shutdown ran; let it finish
	srv.Close()
	_ = journal.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "latserved:", err)
	os.Exit(1)
}
