// prioritysweep measures thread latency as a function of the measurement
// thread's real-time priority, on both operating systems. It extends the
// paper's two-point comparison (priorities 24 and 28, §4.1) to the whole
// real-time band and makes the §4.2 mechanism visible as a cliff: on NT,
// priorities at or below the work-item worker's (default 24) absorb
// work-item bursts, priorities above it are clean; on Windows 98 the
// scheduler-locked windows dominate every priority equally.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"wdmlat/internal/campaign"
	"wdmlat/internal/cli"
	"wdmlat/internal/core"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/report"
	"wdmlat/internal/workload"
)

func main() {
	wlFlag := flag.String("workload", "business", "stress class")
	duration := flag.Duration("duration", 3*time.Minute, "virtual collection per priority")
	seed := flag.Uint64("seed", 1, "simulation seed")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulation workers")
	checkpoint := flag.String("checkpoint", "", "checkpoint directory: persist finished cells and skip them on re-run")
	obs := cli.NewObs("prioritysweep", flag.CommandLine)
	cli.AddVersionFlag("prioritysweep", flag.CommandLine)
	flag.Parse()

	wl := workload.Business
	switch *wlFlag {
	case "business":
	case "games":
		wl = workload.Games
	case "workstation":
		wl = workload.Workstation
	case "web":
		wl = workload.Web
	default:
		fmt.Fprintf(os.Stderr, "prioritysweep: unknown workload %q\n", *wlFlag)
		os.Exit(1)
	}

	prios := []int{17, 19, 21, 23, 24, 25, 27, 29, 31}
	oses := []ospersona.OS{ospersona.NT4, ospersona.Win98}

	// Every (priority, OS) point is an independent cell: submit the whole
	// sweep up front and collect in print order.
	ctx, stop := cli.SignalContext()
	defer stop()
	if err := obs.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "prioritysweep:", err)
		os.Exit(1)
	}
	st, err := cli.OpenStore(*checkpoint, obs.Registry)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prioritysweep:", err)
		os.Exit(1)
	}
	run := campaign.New(campaign.Options{BaseSeed: *seed, Jobs: *jobs, Context: ctx, Store: st, Metrics: obs.Registry})
	obs.StartProgress(run)
	key := func(osSel ospersona.OS, p int) string {
		return campaign.MatrixKey(osSel, wl, fmt.Sprintf("prio-%d", p))
	}
	for _, p := range prios {
		for _, osSel := range oses {
			run.Submit(campaign.Cell{Key: campaign.ReplicaKey(key(osSel, p), 0), Config: core.RunConfig{
				OS:             osSel,
				Workload:       wl,
				Duration:       *duration,
				HighPriority:   p,
				MediumPriority: p - 1,
			}})
		}
	}

	t := &report.Table{
		Title: fmt.Sprintf("Thread latency vs real-time priority under %v (worst case, ms)\n"+
			"(the WDM work-item worker runs at priority 24 — §4.2)", wl),
		Headers: []string{"Priority", "NT 4.0 worst", "NT 4.0 p99.9", "Win98 worst", "Win98 p99.9"},
	}
	for _, p := range prios {
		row := []string{fmt.Sprintf("%d", p)}
		for _, osSel := range oses {
			r, err := run.Merged(key(osSel, p), 1)
			if err != nil {
				cli.FailCampaign("prioritysweep", run, obs, err)
			}
			h := r.Thread[p]
			row = append(row,
				fmt.Sprintf("%.2f", r.Freq.Millis(h.Max())),
				fmt.Sprintf("%.2f", r.Freq.Millis(h.Quantile(0.999))))
		}
		t.AddRow(row...)
	}
	if err := t.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prioritysweep:", err)
		os.Exit(1)
	}
	fmt.Println("\nExpected shape: NT shows a cliff at the worker's priority — two orders of")
	fmt.Println("magnitude once the measurement thread clears 24 — while Windows 98 is flat")
	fmt.Println("across the band: its scheduler-locked windows stall every priority equally,")
	fmt.Println("so no priority buys a Win98 driver its way out (§4.2, §6).")
	if err := run.Wait(); err != nil {
		cli.FailCampaign("prioritysweep", run, obs, err)
	}
	if err := obs.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "prioritysweep:", err)
		os.Exit(1)
	}
}
