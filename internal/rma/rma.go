// Package rma implements fixed-priority schedulability analysis and the
// paper's extension of it to general-purpose operating systems (§5.2,
// building on the authors' earlier Schedulability Analysis work [4]):
//
//   - classic rate-monotonic analysis: the Liu & Layland utilization bound
//     and exact response-time analysis for fixed-priority preemptive task
//     sets;
//   - the "pseudo worst-case" method: on an OS whose worst-case service
//     times are orders of magnitude above its averages, pick the worst case
//     as a function of a permissible error rate (e.g. one dropped buffer
//     per hour) from a measured latency distribution, and feed that into
//     the standard analysis instead of the true (hopeless) worst case.
package rma

import (
	"fmt"
	"math"
	"sort"

	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
)

// Task is a periodic task with implicit or constrained deadline.
type Task struct {
	Name    string
	Period  sim.Cycles
	Compute sim.Cycles
	// Deadline relative to release; 0 means Deadline = Period.
	Deadline sim.Cycles
	// Blocking is extra per-activation delay from OS overhead (the pseudo
	// worst case of §5.2 goes here).
	Blocking sim.Cycles
}

func (t Task) deadline() sim.Cycles {
	if t.Deadline > 0 {
		return t.Deadline
	}
	return t.Period
}

// Validate checks task sanity.
func (t Task) Validate() error {
	if t.Period <= 0 {
		return fmt.Errorf("rma: task %q has non-positive period", t.Name)
	}
	if t.Compute <= 0 {
		return fmt.Errorf("rma: task %q has non-positive compute", t.Name)
	}
	if t.Compute+t.Blocking > t.deadline() {
		return fmt.Errorf("rma: task %q cannot meet its deadline even alone", t.Name)
	}
	return nil
}

// Utilization returns the task set's processor utilization.
func Utilization(tasks []Task) float64 {
	var u float64
	for _, t := range tasks {
		u += float64(t.Compute) / float64(t.Period)
	}
	return u
}

// LiuLaylandBound returns n(2^{1/n} − 1), the sufficient utilization bound
// for rate-monotonic scheduling of n tasks [15].
func LiuLaylandBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// PassesUtilizationTest reports whether the set passes the (sufficient, not
// necessary) Liu & Layland test.
func PassesUtilizationTest(tasks []Task) bool {
	return Utilization(tasks) <= LiuLaylandBound(len(tasks))
}

// Result is a per-task analysis outcome.
type Result struct {
	Task      Task
	Response  sim.Cycles
	Meets     bool
	Converged bool
}

// Analyze performs exact response-time analysis under rate-monotonic
// priority assignment (shorter period = higher priority):
//
//	R_i = C_i + B_i + Σ_{j∈hp(i)} ceil(R_i / T_j) · C_j
//
// iterated to fixpoint [13][14]. It returns per-task results and whether
// the whole set is schedulable.
func Analyze(tasks []Task) ([]Result, bool, error) {
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return nil, false, err
		}
	}
	order := make([]Task, len(tasks))
	copy(order, tasks)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Period < order[j].Period })

	results := make([]Result, len(order))
	all := true
	for i, t := range order {
		r := t.Compute + t.Blocking
		converged := false
		for iter := 0; iter < 10000; iter++ {
			next := t.Compute + t.Blocking
			for j := 0; j < i; j++ {
				hp := order[j]
				next += sim.Cycles(ceilDiv(int64(r), int64(hp.Period))) * hp.Compute
			}
			if next == r {
				converged = true
				break
			}
			r = next
			if r > 100*t.deadline() {
				break // diverging: unschedulable by a mile
			}
		}
		meets := converged && r <= t.deadline()
		results[i] = Result{Task: t, Response: r, Meets: meets, Converged: converged}
		if !meets {
			all = false
		}
	}
	return results, all, nil
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("rma: division by non-positive period")
	}
	return (a + b - 1) / b
}

// PseudoWorstCase picks the worst-case OS latency to design against, as a
// function of the permissible error rate (§5.2): the smallest level L such
// that latencies >= L occur no more often than once per errorPeriod.
// "One chooses the worst case latency as a function of the permissible
// error rate: for example, one dropped buffer every five or ten minutes for
// low latency audio ..., one dropped buffer per hour for a soft modem, or
// one dropped buffer per day for a more high-reliability device."
func PseudoWorstCase(h *stats.Histogram, observed, errorPeriod sim.Cycles) sim.Cycles {
	if h.N() == 0 || observed <= 0 || errorPeriod <= 0 {
		return 0
	}
	// Binary search over latency levels at bucket resolution: rate(>=L)
	// is non-increasing in L, so find the smallest L whose expected count
	// per errorPeriod is <= 1.
	lo, hi := sim.Cycles(0), h.Max()+1
	for lo < hi {
		mid := lo + (hi-lo)/2
		expected := h.RateAbove(mid, observed) * float64(errorPeriod)
		if expected <= 1 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// DesignTask builds the schedulability model of a driver computation that
// waits on interrupts: compute per period plus the pseudo worst-case
// dispatch latency as blocking.
func DesignTask(name string, period, compute sim.Cycles, h *stats.Histogram, observed, errorPeriod sim.Cycles) Task {
	return Task{
		Name:     name,
		Period:   period,
		Compute:  compute,
		Blocking: PseudoWorstCase(h, observed, errorPeriod),
	}
}
