// Package wdm is the driver-facing surface of the simulated Windows Driver
// Model: driver objects with dispatch routines, device I/O via IRPs, and
// the Ke*/Io*/Ps* helpers the paper's pseudocode uses (§2.2). A driver
// written against this package is "binary portable" in the paper's sense:
// the identical driver value runs unmodified on the NT 4.0 and the
// Windows 98 personality, because both are instantiations of the same
// kernel mechanics.
package wdm

import (
	"fmt"

	"wdmlat/internal/kernel"
	"wdmlat/internal/sim"
)

// DriverEntry is the driver initialization routine, called at load time
// (paper §2.2.1). It receives the driver object to populate with dispatch
// routines and may create timers, events and system threads.
type DriverEntry func(drv *Driver) error

// Driver is a loaded WDM driver: a named device object plus its dispatch
// table. Only the read dispatch is modeled — it is the only entry point the
// paper's tools use ("the latencies are returned to the application via WDM
// I/O Request Packets which the application supplies via a call to the
// Win32 ReadFileEx API").
type Driver struct {
	name string
	k    *kernel.Kernel

	// MajorRead is the IRP_MJ_READ dispatch routine (LatRead in the
	// paper's pseudocode). DriverEntry must set it before the control
	// application can issue reads.
	MajorRead func(irp *kernel.IRP)

	unloaded bool
}

// Load creates a driver object and runs its DriverEntry.
func Load(k *kernel.Kernel, name string, entry DriverEntry) (*Driver, error) {
	if entry == nil {
		return nil, fmt.Errorf("wdm: driver %q has no DriverEntry", name)
	}
	drv := &Driver{name: name, k: k}
	if err := entry(drv); err != nil {
		return nil, fmt.Errorf("wdm: DriverEntry of %q failed: %w", name, err)
	}
	return drv, nil
}

// Name returns the driver's device name.
func (d *Driver) Name() string { return d.name }

// Kernel returns the OS instance the driver is loaded on.
func (d *Driver) Kernel() *kernel.Kernel { return d.k }

// Unload marks the driver unloaded; subsequent reads fail.
func (d *Driver) Unload() { d.unloaded = true }

// ReadFileEx is the control-application side of the exchange: it allocates
// an IRP, attaches the caller's completion routine, and invokes the
// driver's read dispatch. The returned IRP completes asynchronously via
// IoCompleteRequest.
func (d *Driver) ReadFileEx(onComplete func(irp *kernel.IRP, at sim.Time)) (*kernel.IRP, error) {
	if d.unloaded {
		return nil, fmt.Errorf("wdm: read on unloaded driver %q", d.name)
	}
	if d.MajorRead == nil {
		return nil, fmt.Errorf("wdm: driver %q has no read dispatch", d.name)
	}
	irp := d.k.NewIRP()
	irp.OnComplete = onComplete
	d.MajorRead(irp)
	return irp, nil
}

// --- Ke*/Io*/Ps* conveniences used by driver bodies -----------------------

// GetCycleCount reads the Pentium time stamp counter (paper §2.2.5).
func (d *Driver) GetCycleCount() sim.Time { return d.k.CPU().TSC() }

// KeCreateTimer creates a single-shot timer (KeInitializeTimer).
func (d *Driver) KeCreateTimer(name string) *kernel.Timer {
	return d.k.NewTimer(d.name + "." + name)
}

// KeCreateEvent creates an event object (KeInitializeEvent).
func (d *Driver) KeCreateEvent(name string, kind kernel.EventKind) *kernel.Event {
	return d.k.NewEvent(d.name+"."+name, kind)
}

// KeSetTimer arms a single-shot timer whose expiry queues dpc, with the
// delay given in PIT ticks — exactly how the measurement driver programs
// its "ARBITRARY_DELAY" (§2.2.2). Callable from any driver context.
func (d *Driver) KeSetTimer(t *kernel.Timer, delayTicks int, dpc *kernel.DPC) {
	if delayTicks <= 0 {
		panic("wdm: KeSetTimer with non-positive tick delay")
	}
	d.k.SetTimer(t, sim.Cycles(delayTicks)*d.k.TickPeriod(), dpc)
}

// PsCreateSystemThread creates a kernel-mode thread at the default priority;
// the thread body typically raises its own priority via
// KeSetPriorityThread, as LatThreadFunc does (§2.2.4).
func (d *Driver) PsCreateSystemThread(name string, fn func(tc *kernel.ThreadContext)) *kernel.Thread {
	return d.k.CreateThread(d.name+"."+name, kernel.NormalPriority, fn)
}

// IoCompleteRequest completes an IRP back to the control application.
// Callable from DPC or harness context; from thread context use the
// ThreadContext method so the completion charges to the thread.
func (d *Driver) IoCompleteRequest(irp *kernel.IRP) { d.k.CompleteIrp(irp) }
