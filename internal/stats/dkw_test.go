package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"wdmlat/internal/sim"
)

// bandHistogram fills a histogram with n samples from a seeded long-tailed
// distribution (geometric octave + uniform mantissa — shaped like the
// paper's latency data).
func bandHistogram(rng *rand.Rand, n int) *Histogram {
	h := NewHistogram(sim.DefaultFreq)
	for i := 0; i < n; i++ {
		oct := 1
		for oct < 20 && rng.Intn(2) == 0 {
			oct++
		}
		v := sim.Cycles(1<<uint(oct)) + sim.Cycles(rng.Int63n(1<<uint(oct)))
		h.Add(v)
	}
	return h
}

// isBucketEdge reports whether v is an exact histogram bucket edge (the
// underflow edge 0 and the overflow edge included).
func isBucketEdge(v sim.Cycles) bool {
	return v == bucketLow(bucketIndex(v))
}

// TestDKWBandContainsEmpiricalCCDF: the band is centered on the empirical
// CCDF, so for every probe value lo <= CCDF(v) <= hi, and for a known
// uniform distribution it also covers the true CCDF at the probes (seeded,
// so deterministic).
func TestDKWBandContainsEmpiricalCCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		h := bandHistogram(rng, 200+rng.Intn(5000))
		for probe := 0; probe < 50; probe++ {
			v := sim.Cycles(rng.Int63n(1 << 22))
			lo, hi := h.CCDFBand(v, 0.95)
			c := h.CCDF(v)
			if lo > c || c > hi {
				t.Fatalf("band [%v,%v] does not contain empirical CCDF %v at v=%d", lo, hi, c, v)
			}
			if lo < 0 || hi > 1 {
				t.Fatalf("band [%v,%v] escapes [0,1]", lo, hi)
			}
		}
	}

	// True-coverage spot check: n uniform samples on [1, 2^20); the true
	// CCDF of v is (2^20 - v) / (2^20 - 1). One seeded draw at n=20000 —
	// the 95% band covers the truth at every probed point.
	const span = 1 << 20
	h := NewHistogram(sim.DefaultFreq)
	for i := 0; i < 20000; i++ {
		h.Add(1 + sim.Cycles(rng.Int63n(span-1)))
	}
	for _, v := range []sim.Cycles{2, 100, 1 << 10, 1 << 16, 1 << 19} {
		lo, hi := h.CCDFBand(v, 0.95)
		truth := float64(span-v) / float64(span-1)
		// CCDF is bucket-resolution (counts from the bucket containing v
		// upward), so compare against the truth at the bucket's lower edge.
		edgeTruth := float64(span-bucketLow(bucketIndex(v))) / float64(span-1)
		if edgeTruth < lo || edgeTruth > hi {
			t.Errorf("v=%d: true CCDF %.4f (edge %.4f) outside band [%.4f,%.4f]", v, truth, edgeTruth, lo, hi)
		}
	}
}

// TestDKWWidthShrinksAsRootN: eps is exactly halved when n quadruples
// (sqrt scaling is exact under power-of-two scaling in IEEE arithmetic),
// and is monotone non-increasing in n.
func TestDKWWidthShrinksAsRootN(t *testing.T) {
	for _, conf := range []float64{0.9, 0.95, 0.99} {
		for _, n := range []uint64{16, 100, 1024, 1 << 20} {
			e1 := DKWEpsilon(n, conf)
			e4 := DKWEpsilon(4*n, conf)
			if e1 <= 1 { // below the clamp the scaling law must be exact
				if got, want := e4, e1/2; got != want {
					t.Errorf("eps(%d)=%v, eps(%d)=%v: want exact halving", n, e1, 4*n, want)
				}
			}
			if DKWEpsilon(n+1, conf) > e1 {
				t.Errorf("eps not monotone at n=%d conf=%v", n, conf)
			}
		}
	}
	if DKWEpsilon(0, 0.95) != 1 {
		t.Errorf("eps(0) = %v, want vacuous 1", DKWEpsilon(0, 0.95))
	}
	if DKWEpsilon(10, 0) != 1 || DKWEpsilon(10, 1) != 1 {
		t.Errorf("degenerate confidence should clamp eps to 1")
	}
}

// TestQuantileCIEndpointsOnBucketEdges: every CI endpoint is an exact
// integer bucket edge, the interval brackets the point estimate, and it
// widens monotonically as confidence rises.
func TestQuantileCIEndpointsOnBucketEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		h := bandHistogram(rng, 100+rng.Intn(20000))
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			lo, est, hi := h.QuantileCI(q, 0.95)
			if !isBucketEdge(lo) {
				t.Fatalf("q=%v: lower endpoint %d is not a bucket edge", q, lo)
			}
			if !isBucketEdge(hi) {
				t.Fatalf("q=%v: upper endpoint %d is not a bucket edge", q, hi)
			}
			if lo > est || est > hi {
				// est is bucket-resolution (Quantile's bucketLow) except at
				// the q<=0/q>=1 clamps, which cannot occur for these q.
				t.Fatalf("q=%v: estimate %d outside its own CI [%d,%d]", q, est, lo, hi)
			}
			l90, _, h90 := h.QuantileCI(q, 0.90)
			if l90 < lo || h90 > hi {
				t.Fatalf("q=%v: 90%% CI [%d,%d] wider than 95%% CI [%d,%d]", q, l90, h90, lo, hi)
			}
		}
	}
}

// TestQuantileConverged: a tail quantile is never "converged" while the
// DKW band cannot even see past it (eps >= 1-q), becomes converged as
// samples accumulate, and stays unconverged forever at impossible widths.
func TestQuantileConverged(t *testing.T) {
	rng := rand.New(rand.NewSource(11))

	small := bandHistogram(rng, 50) // eps(50, .95) ≈ 0.19 > 1-0.99
	if small.QuantileConverged(0.99, 0.95, 0.5) {
		t.Error("50 samples claimed to pin p99 — DKW cannot see past the tail yet")
	}

	// A tight distribution: everything in one bucket pair. With enough
	// samples the p99 CI collapses to adjacent bucket edges (~4.4% wide).
	tight := NewHistogram(sim.DefaultFreq)
	for i := 0; i < 200000; i++ {
		tight.Add(1000 + sim.Cycles(i%3))
	}
	if !tight.QuantileConverged(0.99, 0.95, 0.1) {
		lo, est, hi := tight.QuantileCI(0.99, 0.95)
		t.Errorf("200k tight samples did not converge p99 at 10%%: [%d, %d, %d]", lo, est, hi)
	}
	if tight.QuantileConverged(0.99, 0.95, 0.000001) {
		t.Error("bucket resolution (~4.4%) cannot satisfy a 0.0001% width")
	}

	var empty *Histogram = NewHistogram(sim.DefaultFreq)
	if empty.QuantileConverged(0.99, 0.95, 0.5) {
		t.Error("empty histogram claimed convergence")
	}
}

func TestSteadyState(t *testing.T) {
	cases := []struct {
		name   string
		series []float64
		window int
		tol    float64
		want   bool
	}{
		{"settled", []float64{5, 9, 10, 10.2, 10.1, 10}, 3, 0.05, true},
		{"still-moving", []float64{5, 9, 10, 12, 14, 16}, 3, 0.05, false},
		{"too-short", []float64{10, 10}, 3, 0.05, false},
		{"exact-window", []float64{10, 10, 10}, 3, 0, true},
		{"zero-ref-all-zero", []float64{0, 0, 0}, 3, 0.1, true},
		{"zero-ref-nonzero", []float64{0.1, 0, 0}, 3, 0.1, false},
		{"bad-window", []float64{1, 2, 3}, 0, 0.1, false},
	}
	for _, c := range cases {
		if got := SteadyState(c.series, c.window, c.tol); got != c.want {
			t.Errorf("%s: SteadyState(%v, %d, %v) = %v, want %v", c.name, c.series, c.window, c.tol, got, c.want)
		}
	}
}

func TestPrecisionValidateAndCanonical(t *testing.T) {
	good := Precision{RelWidth: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatalf("minimal policy invalid: %v", err)
	}
	n := good.Normalized()
	if n.Confidence != DefaultConfidence || n.MinRuns != DefaultMinRuns ||
		n.MaxRuns != DefaultMaxRuns || n.Batch != DefaultBatch || len(n.Quantiles) != 2 {
		t.Fatalf("defaults not filled: %+v", n)
	}

	bad := []Precision{
		{RelWidth: 0},
		{RelWidth: -1},
		{RelWidth: 1.5},
		{RelWidth: 0.1, Confidence: 1.2},
		{RelWidth: 0.1, Quantiles: []float64{0}},
		{RelWidth: 0.1, Quantiles: []float64{1}},
		{RelWidth: 0.1, MinRuns: -1},
		{RelWidth: 0.1, MinRuns: 10, MaxRuns: 5},
		{RelWidth: 0.1, Batch: -2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad[%d] %+v validated", i, p)
		}
	}

	// Canonical is insensitive to spelled-out defaults and quantile order.
	a := Precision{RelWidth: 0.1}.Canonical()
	b := Precision{RelWidth: 0.1, Confidence: 0.95, MinRuns: 3, MaxRuns: 64, Batch: 1,
		Quantiles: []float64{0.999, 0.99}}.Canonical()
	if a != b {
		t.Errorf("canonical forms differ:\n %s\n %s", a, b)
	}
	if !strings.Contains(a, "q=0.99,0.999") || !strings.Contains(a, "w=0.1") {
		t.Errorf("canonical form unexpected: %s", a)
	}
	// ...and sensitive to every knob that changes the stopping rule.
	if (Precision{RelWidth: 0.1, Batch: 2}).Canonical() == a {
		t.Error("batch not part of the canonical identity")
	}
}

// TestQuantileCIShrinksWithSamples: the quantile CI relative width is
// non-increasing (down to bucket resolution) as the same distribution
// accumulates samples — the property the adaptive replica loop relies on
// to terminate.
func TestQuantileCIShrinksWithSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := NewHistogram(sim.DefaultFreq)
	add := func(n int) {
		for i := 0; i < n; i++ {
			h.Add(1 + sim.Cycles(rng.Int63n(1<<16)))
		}
	}
	width := func() float64 {
		lo, est, hi := h.QuantileCI(0.99, 0.95)
		if est == 0 {
			return math.Inf(1)
		}
		return float64(hi-lo) / float64(est)
	}
	add(2000)
	w1 := width()
	add(200000)
	w2 := width()
	if w2 > w1 {
		t.Errorf("p99 CI widened with more samples: %v -> %v", w1, w2)
	}
	if !h.QuantileConverged(0.99, 0.95, 0.15) {
		t.Errorf("202k uniform samples should pin p99 to 15%%: rel width %v", w2)
	}
}
