// Package stats implements the statistical machinery of the paper's
// methodology: latency distributions kept as log-scale histograms (Figure 4
// is plotted log-log precisely because the distributions are "highly
// nonsymmetric, with a very long tail on one side", §4.2), complementary
// distributions, tail-event rates, and the expected worst case over an
// observation horizon (the hourly/daily/weekly columns of Table 3).
package stats

import (
	"fmt"
	"math"

	"wdmlat/internal/sim"
)

// Histogram bucket geometry: logarithmic buckets, bucketsPerOctave per
// doubling, spanning [minValue, minValue<<octaves). At 16 buckets per
// octave the relative resolution is ~4.4%, ample for order-of-magnitude
// latency comparisons while keeping memory constant regardless of sample
// count.
const (
	bucketsPerOctave = 16
	octaves          = 40 // covers [1, 2^40) cycles ≈ up to ~1 hour at 300 MHz
	numBuckets       = bucketsPerOctave * octaves
)

// Histogram is a fixed-memory log-scale histogram of non-negative cycle
// counts. The zero value is not usable; call NewHistogram.
type Histogram struct {
	freq     sim.Freq
	counts   [numBuckets + 2]uint64 // +underflow (index 0 handles <1), +overflow
	n        uint64
	sum      float64
	sumsq    float64
	min, max sim.Cycles
}

// NewHistogram creates an empty histogram that formats values at the given
// clock frequency.
func NewHistogram(freq sim.Freq) *Histogram {
	if freq <= 0 {
		panic("stats: non-positive frequency")
	}
	return &Histogram{freq: freq, min: math.MaxInt64, max: -1}
}

// Freq returns the histogram's clock frequency.
func (h *Histogram) Freq() sim.Freq { return h.freq }

// bucketIndex maps a value to its bucket. Values < 1 go to the underflow
// bucket 0; values beyond the top octave go to the overflow bucket.
func bucketIndex(v sim.Cycles) int {
	if v < 1 {
		return 0
	}
	lg := math.Log2(float64(v))
	i := 1 + int(lg*bucketsPerOctave)
	if i > numBuckets {
		return numBuckets + 1
	}
	return i
}

// bucketLow returns the inclusive lower edge of bucket i in cycles. The
// ceiling keeps integer values inside their bucket's half-open interval
// even in the lowest octaves where edges would otherwise truncate together.
func bucketLow(i int) sim.Cycles {
	if i <= 0 {
		return 0
	}
	if i > numBuckets {
		i = numBuckets + 1
	}
	return sim.Cycles(math.Ceil(math.Exp2(float64(i-1) / bucketsPerOctave)))
}

// Add records one latency sample. Negative samples panic: a latency cannot
// be negative, and silently clamping would hide measurement bugs.
func (h *Histogram) Add(v sim.Cycles) {
	if v < 0 {
		panic(fmt.Sprintf("stats: negative latency sample %d", v))
	}
	h.counts[bucketIndex(v)]++
	h.n++
	f := float64(v)
	h.sum += f
	h.sumsq += f * f
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// AddMillis records a sample given in milliseconds.
func (h *Histogram) AddMillis(ms float64) {
	h.Add(h.freq.FromMillis(ms))
}

// N returns the sample count.
func (h *Histogram) N() uint64 { return h.n }

// Min returns the smallest sample (0 if empty).
func (h *Histogram) Min() sim.Cycles {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 if empty).
func (h *Histogram) Max() sim.Cycles {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Mean returns the sample mean in cycles.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// StdDev returns the sample standard deviation in cycles.
func (h *Histogram) StdDev() float64 {
	if h.n < 2 {
		return 0
	}
	m := h.Mean()
	v := h.sumsq/float64(h.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// MaxMillis returns the largest sample in milliseconds.
func (h *Histogram) MaxMillis() float64 { return h.freq.Millis(h.Max()) }

// MeanMillis returns the mean in milliseconds.
func (h *Histogram) MeanMillis() float64 {
	return h.Mean() / float64(h.freq) * 1e3
}

// CountAtLeast returns the number of samples in buckets whose lower edge is
// >= v (i.e., samples guaranteed to be >= the bucket floor containing v;
// the count is taken from the bucket containing v upward, which
// slightly over-counts by at most one bucket width — conservative in the
// direction the worst-case analysis wants).
func (h *Histogram) CountAtLeast(v sim.Cycles) uint64 {
	var c uint64
	for i := bucketIndex(v); i < len(h.counts); i++ {
		c += h.counts[i]
	}
	return c
}

// CCDF returns the fraction of samples >= v (bucket-resolution), in [0,1].
func (h *Histogram) CCDF(v sim.Cycles) float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.CountAtLeast(v)) / float64(h.n)
}

// Quantile returns the q-quantile (q in [0,1]) at bucket resolution.
func (h *Histogram) Quantile(q float64) sim.Cycles {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(q * float64(h.n))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i]
		if cum > target {
			return bucketLow(i)
		}
	}
	return h.max
}

// Merge adds other's samples into h. The frequencies must match.
func (h *Histogram) Merge(other *Histogram) {
	if h.freq != other.freq {
		panic("stats: merging histograms with different frequencies")
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.n += other.n
	h.sum += other.sum
	h.sumsq += other.sumsq
	if other.n > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	cp := *h
	return &cp
}
