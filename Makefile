# Developer entry points. `make check` is the full gate: vet, build, tests
# with the race detector (the campaign worker pool now runs simulations —
# each with its own kernel thread goroutines — concurrently, so races are a
# first-class failure mode, not a theoretical one), plus the event-heap
# oracle and steady-state allocation tests that guard the pooled substrate.

GO ?= go

# Bench comparison inputs for bench-compare (override on the command line).
BASE ?= BENCH_0.json
NEW  ?= BENCH_1.json

.PHONY: all check vet build test race substrate smoke bench bench-smoke bench-compare reproduce clean

all: check

check: vet build test race substrate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# substrate: the pooled-event-heap oracle property test under -race, plus
# the zero-allocation tests without -race (AllocsPerRun is meaningless under
# the race detector's instrumented allocator, so those tests skip themselves
# there and must also run uninstrumented).
substrate:
	$(GO) test -race -run 'TestEngineHeapMatchesOracle|TestEngineFIFOUnderPooling' ./internal/sim/
	$(GO) test -run 'TestEngineSteadyStateAllocFree' ./internal/sim/

# smoke: a fast end-to-end pass of the full reproduction pipeline on the
# parallel campaign runner. Artifacts land in a scratch directory (not
# results/, which holds the full-length record).
smoke:
	$(GO) run ./cmd/reproduce -duration 5s -jobs 4 -outdir results-smoke

# bench: record the substrate and experiment benchmarks into $(NEW). Compare
# against the committed pre-optimisation baseline $(BASE) with bench-compare.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -json . > $(NEW)

# bench-smoke: one iteration of every benchmark — asserts the benches still
# compile and run, without the cost of a measured pass.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem . > /dev/null

# bench-compare: enforce the perf-regression policy (>10% ns/op or any
# allocs/op growth fails) between two bench records.
bench-compare:
	$(GO) run ./cmd/benchdiff -base $(BASE) -new $(NEW)

# reproduce: regenerate the checked-in full-length experimental record.
# These flags are the record's provenance — results/ headers embed them, and
# `git diff --exit-code results/` after this target is the determinism gate.
reproduce:
	$(GO) run ./cmd/reproduce -duration 30m -runs 3

clean:
	rm -rf results-smoke
