package sim

// Event is a scheduled callback in the simulation. Events are created with
// Engine.At or Engine.After and may be cancelled before they fire. The zero
// Event is not usable.
type Event struct {
	when  Time
	seq   uint64 // tie-break: FIFO among events with equal timestamps
	index int    // heap index, -1 when not queued
	fn    func(Time)
	label string
}

// When returns the virtual time at which the event is (or was) scheduled to
// fire.
func (e *Event) When() Time { return e.when }

// Pending reports whether the event is still in the queue (scheduled and
// neither fired nor cancelled).
func (e *Event) Pending() bool { return e != nil && e.index >= 0 }

// Label returns the debugging label attached at scheduling time.
func (e *Event) Label() string {
	if e == nil {
		return ""
	}
	return e.label
}

// eventHeap is a binary min-heap of events ordered by (when, seq). It
// implements container/heap.Interface but is manipulated directly by Engine
// so that events can carry their own heap indices for O(log n) cancellation.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
