package client

// The fleet worker loop: the other half of the coordinator protocol in
// internal/server. A worker registers, then cycles lease → verify →
// execute → complete while a background heartbeat keeps its leases alive.
// Everything it sends rides the same Backoff schedule as the rest of the
// client, and every message is idempotent — a retried completion of an
// already-merged cell is a counted no-op on the coordinator — so the loop
// survives dropped connections, coordinator restarts (a session that dies
// on a transport failure re-registers instead of exiting, so a worker
// outlives arbitrary coordinator downtime once it has registered), and
// its own expiry (a 410 from any call sends it back through registration
// with a fresh identity; its old leases are re-dispatched, and if it
// already finished one, the straggler completion still merges).
//
// With a Store attached the worker is checkpoint-backed: every lease is
// looked up by fingerprint before executing — a hit (its own earlier run,
// a neighbor sharing the directory, or a cell delivered whose completion
// was lost to a coordinator restart) is delivered as-is and flagged
// Cached, and every executed result is persisted before delivery. The
// store's codec round-trips exactly, so a cached payload is byte-for-byte
// the payload a fresh execution would deliver.
//
// The load-bearing check is Lease.Verify: before executing, the worker
// re-derives the cell's checkpoint fingerprint from the lease's own fields
// (base seed, key, config — including the result codec version baked into
// the fingerprint). A mismatch means this binary would compute bytes the
// coordinator must never merge, so RunWorker returns the error instead of
// continuing: a fleet is only sound while every worker is bit-for-bit
// interchangeable, and a version-skewed worker is not.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"wdmlat/internal/api"
	"wdmlat/internal/campaign/store"
	"wdmlat/internal/core"
)

// WorkerOptions tunes RunWorker.
type WorkerOptions struct {
	// Name labels the worker in coordinator logs and /v1/fleet.
	Name string
	// Cells bounds how many leased cells execute concurrently (default 1;
	// one cell already saturates a core, so raise it only on big hosts).
	Cells int
	// Execute overrides the cell executor, core.Run — tests inject fakes
	// and saboteurs. Must stay a pure function of its config.
	Execute func(core.RunConfig) *core.Result
	// OnCell, if non-nil, is called after each completed cell with the
	// cell key and the execution error (nil on success) — a logging hook.
	OnCell func(key string, err error)
	// Store, if non-nil, is the worker's local (or host-shared) checkpoint
	// store: leases are answered from it by fingerprint when possible
	// (reported Cached to the coordinator) and executed results are
	// persisted to it before delivery, so a re-dispatched straggler cell
	// costs a disk read instead of a re-simulation. Load failures fall
	// back to execution; Save failures are surfaced on OnCell only —
	// persistence is an optimization, never a correctness dependency.
	Store *store.Store
}

// ErrWorkerSkew is wrapped by RunWorker when a lease fails verification:
// the worker and coordinator disagree about cell identity (diverged codec
// or simulator version) and the worker must not execute fleet work.
var ErrWorkerSkew = errors.New("worker/coordinator version skew")

// RunWorker registers against the server's coordinator and processes
// leases until ctx is cancelled (returns ctx.Err()), the coordinator
// drains (returns nil), or a lease fails verification (returns
// ErrWorkerSkew). Losing its registration — expired by the coordinator
// after missed heartbeats, or a coordinator restart — is not fatal: the
// worker re-registers and continues. Nor is losing the coordinator
// entirely: a session that dies on a transport failure re-registers too,
// and once a worker has registered successfully it keeps retrying
// registration through arbitrary downtime (each cycle carries the
// client's full backoff budget), so a coordinator SIGKILLed mid-campaign
// finds its fleet waiting when it comes back. Only the first registration
// is fail-fast — a misconfigured worker should die loudly, not camp on a
// URL that never answers — and a coordinator that answers with a
// conclusive protocol verdict (e.g. 404: not in fleet mode) is fatal at
// any point.
func (c *Client) RunWorker(ctx context.Context, opts WorkerOptions) error {
	if opts.Cells < 1 {
		opts.Cells = 1
	}
	if opts.Execute == nil {
		opts.Execute = core.Run
	}
	registered := false
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		reg, err := c.register(ctx, opts.Name)
		if err != nil {
			var se *StatusError
			if !registered || ctx.Err() != nil || isStatusError(err, &se) {
				// Never-registered, cancelled, or a conclusive verdict
				// (do() returns a bare *StatusError only for statuses it
				// will not retry): give up. Transport failures arrive
				// wrapped and fall through to another paced attempt.
				return fmt.Errorf("client: worker registration: %w", err)
			}
			continue // register's own backoff paces this loop
		}
		registered = true
		err = c.workerSession(ctx, reg, opts)
		switch {
		case errors.Is(err, errWorkerGone):
			continue // identity lost (expired or coordinator restart): re-register
		case err == nil, errors.Is(err, ErrWorkerSkew), ctx.Err() != nil:
			return err
		default:
			// The session died on a transport failure (coordinator
			// restart or partition), not a protocol verdict: re-register.
			// Paced, so a coordinator that accepts registrations but
			// fails sessions cannot induce a hot loop.
			if serr := c.opts.Sleep(ctx, time.Second); serr != nil {
				return serr
			}
		}
	}
}

// errWorkerGone is the internal signal that the coordinator no longer
// knows this worker id (HTTP 410): the session ends and RunWorker starts a
// fresh one.
var errWorkerGone = errors.New("worker identity gone")

func (c *Client) register(ctx context.Context, name string) (api.RegisterResponse, error) {
	body, err := json.Marshal(api.RegisterRequest{Name: name})
	if err != nil {
		return api.RegisterResponse{}, err
	}
	data, err := c.do(ctx, http.MethodPost, "/v1/workers", body)
	if err != nil {
		return api.RegisterResponse{}, err
	}
	var reg api.RegisterResponse
	if err := json.Unmarshal(data, &reg); err != nil {
		return api.RegisterResponse{}, fmt.Errorf("decoding registration: %w", err)
	}
	if reg.WorkerID == "" {
		return api.RegisterResponse{}, errors.New("coordinator assigned no worker id")
	}
	return reg, nil
}

// workerSession drives one registered identity: a heartbeat ticker at a
// third of the lease TTL, and a lease/execute/complete loop with up to
// opts.Cells cells in flight. It returns errWorkerGone when any call
// answers 410, nil when the coordinator drains, ctx.Err() on cancellation.
func (c *Client) workerSession(ctx context.Context, reg api.RegisterResponse, opts WorkerOptions) error {
	sessionCtx, cancel := context.WithCancel(ctx)

	ttl := time.Duration(reg.LeaseTTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	poll := time.Duration(reg.PollMillis) * time.Millisecond
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}

	// Heartbeat in the background; its failure modes surface on beatErr
	// and end the session (gone → re-register upstream).
	beatErr := make(chan error, 1)
	var wg sync.WaitGroup     // heartbeat goroutine
	var execWG sync.WaitGroup // in-flight cells
	defer func() {
		// Cancellation must precede the waits or the heartbeat ticker
		// would keep a drained session alive forever.
		cancel()
		execWG.Wait()
		wg.Wait()
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-sessionCtx.Done():
				return
			case <-t.C:
				if err := c.heartbeat(sessionCtx, reg.WorkerID); err != nil {
					select {
					case beatErr <- err:
					default:
					}
					return
				}
			}
		}
	}()

	// sem bounds in-flight cells; executions run in goroutines so a slow
	// cell never blocks leasing the next one.
	sem := make(chan struct{}, opts.Cells)
	cellErr := make(chan error, 1)

	for {
		select {
		case err := <-beatErr:
			return err
		case err := <-cellErr:
			return err // fatal (skew): the deferred cancel drains in-flight cells
		case <-sessionCtx.Done():
			return ctx.Err()
		case sem <- struct{}{}:
		}

		// Ask for as many cells as we have free slots (the one just
		// reserved plus any others idle).
		free := 1
		for len(sem) < cap(sem) {
			select {
			case sem <- struct{}{}:
				free++
			default:
			}
		}
		resp, err := c.lease(sessionCtx, reg.WorkerID, free)
		if err != nil {
			for i := 0; i < free; i++ {
				<-sem
			}
			return err
		}
		for i := len(resp.Leases); i < free; i++ {
			<-sem // slots the coordinator didn't fill
		}
		if resp.Draining {
			execWG.Wait()
			return nil
		}
		for i := range resp.Leases {
			l := resp.Leases[i]
			execWG.Add(1)
			go func() {
				defer execWG.Done()
				defer func() { <-sem }()
				if err := c.executeLease(sessionCtx, reg.WorkerID, l, opts); err != nil {
					select {
					case cellErr <- err:
					default:
					}
				}
			}()
		}
		if len(resp.Leases) == 0 {
			// Idle: wait the coordinator's poll hint before asking again.
			if err := c.opts.Sleep(sessionCtx, poll); err != nil {
				return ctx.Err()
			}
		}
	}
}

// executeLease verifies, resolves (checkpoint store first, simulator
// second) and delivers one cell. Only version skew is returned as an
// error; execution failures are reported to the coordinator (which fails
// the cell deterministically) and delivery problems are left to lease
// expiry — the coordinator re-dispatches, and this worker's eventual
// retry lands as a duplicate no-op.
func (c *Client) executeLease(ctx context.Context, workerID string, l api.Lease, opts WorkerOptions) error {
	if err := l.Verify(); err != nil {
		return fmt.Errorf("%w: %v", ErrWorkerSkew, err)
	}
	var res *core.Result
	var execErr, storeErr error
	cached := false
	if opts.Store != nil {
		// An unreadable or corrupt checkpoint falls back to execution —
		// re-running a cell is always safe; serving bad bytes never is
		// (the coordinator would reject them anyway).
		if hit, err := opts.Store.Load(l.Fingerprint); err == nil && hit != nil {
			res, cached = hit, true
		}
	}
	if !cached {
		res, execErr = runCellRecovering(opts.Execute, l.Config)
		if execErr == nil && opts.Store != nil {
			if err := opts.Store.Save(l.Fingerprint, res); err != nil {
				storeErr = fmt.Errorf("checkpointing cell: %w", err)
			}
		}
	}
	req := api.CompleteRequest{Fingerprint: l.Fingerprint, Cached: cached}
	if execErr != nil {
		req.Error = execErr.Error()
	} else {
		payload, err := api.EncodeCellResult(res)
		if err != nil {
			req.Error = fmt.Sprintf("encoding result: %v", err)
			req.Cached = false
			execErr = err
		} else {
			req.Result = payload
		}
	}
	if err := c.complete(ctx, workerID, req); err != nil {
		// Undeliverable (coordinator gone, cell re-dispatched, payload
		// rejected): the lease TTL and the duplicate-completion no-op make
		// dropping it safe. Surface it to the hook, not the session.
		execErr = errors.Join(execErr, err)
	}
	if opts.OnCell != nil {
		opts.OnCell(l.Key, errors.Join(execErr, storeErr))
	}
	return nil
}

// runCellRecovering executes one cell, converting a simulator panic into
// an error the coordinator records as that cell's deterministic failure.
func runCellRecovering(execute func(core.RunConfig) *core.Result, cfg core.RunConfig) (res *core.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res = nil
			err = fmt.Errorf("panic: %v\n%s", v, debug.Stack())
		}
	}()
	return execute(cfg), nil
}

func (c *Client) heartbeat(ctx context.Context, workerID string) error {
	_, err := c.do(ctx, http.MethodPost, "/v1/workers/"+workerID+"/heartbeat", nil)
	return mapGone(err)
}

func (c *Client) lease(ctx context.Context, workerID string, max int) (api.LeaseResponse, error) {
	body, err := json.Marshal(api.LeaseRequest{Max: max})
	if err != nil {
		return api.LeaseResponse{}, err
	}
	data, err := c.do(ctx, http.MethodPost, "/v1/workers/"+workerID+"/leases", body)
	if err != nil {
		return api.LeaseResponse{}, mapGone(err)
	}
	var resp api.LeaseResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return api.LeaseResponse{}, fmt.Errorf("decoding leases: %w", err)
	}
	return resp, nil
}

// complete delivers one finished cell. 410 (campaign gone) and 422
// (payload rejected; the coordinator already re-dispatched the cell) are
// swallowed: both mean "this copy of the work is no longer wanted".
func (c *Client) complete(ctx context.Context, workerID string, req api.CompleteRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	_, err = c.do(ctx, http.MethodPost, "/v1/workers/"+workerID+"/complete", body)
	var se *StatusError
	if isStatusError(err, &se) && (se.Code == http.StatusGone || se.Code == http.StatusUnprocessableEntity) {
		return nil
	}
	return err
}

// Fleet fetches the coordinator's fleet status: registered workers, their
// outstanding leases, and queue depth. Fails with a *StatusError (404) when
// the server is not running in fleet mode.
func (c *Client) Fleet(ctx context.Context) (api.FleetStatus, error) {
	data, err := c.do(ctx, http.MethodGet, "/v1/fleet", nil)
	if err != nil {
		return api.FleetStatus{}, err
	}
	var st api.FleetStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return api.FleetStatus{}, fmt.Errorf("decoding fleet status: %w", err)
	}
	return st, nil
}

// mapGone converts an HTTP 410 into errWorkerGone so the session loop can
// re-register instead of giving up.
func mapGone(err error) error {
	var se *StatusError
	if isStatusError(err, &se) && se.Code == http.StatusGone {
		return errWorkerGone
	}
	return err
}
