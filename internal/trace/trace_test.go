package trace_test

import (
	"strings"
	"testing"
	"time"

	"wdmlat/internal/kernel"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
	"wdmlat/internal/trace"
	"wdmlat/internal/workload"
)

func newMachine(t *testing.T, seed uint64) *ospersona.Machine {
	t.Helper()
	m := ospersona.Build(ospersona.Win98, ospersona.Options{Seed: seed})
	t.Cleanup(m.Shutdown)
	return m
}

func TestTracerRecordsSchedulingEvents(t *testing.T) {
	m := newMachine(t, 1)
	tr := trace.Attach(m.Kernel, 1<<14)
	gen := workload.New(workload.Business, m)
	gen.Start()
	m.RunFor(m.Freq().Cycles(2 * time.Second))

	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	kinds := map[trace.Kind]int{}
	for _, e := range evs {
		kinds[e.Kind]++
	}
	for _, k := range []trace.Kind{
		trace.InterruptAsserted, trace.IsrEntered,
		trace.DpcQueued, trace.DpcStarted,
		trace.ThreadReadied, trace.ThreadDispatched,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %v events under load", k)
		}
	}
	// Events are in recording order; timestamps are monotone up to the
	// charge-projection skew of ISR entries (an entry's At is the accept
	// time plus the vectoring cost, which may slightly exceed the raw
	// timestamp of the next recorded event).
	slack := sim.Time(m.MS(0.1))
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At-slack {
			t.Fatalf("events out of order at %d: %d then %d", i, evs[i-1].At, evs[i].At)
		}
	}
}

func TestTracerLagsMatchGroundTruth(t *testing.T) {
	m := newMachine(t, 2)
	tr := trace.Attach(m.Kernel, 1<<12)
	// One controlled interrupt with a masked window in front of it.
	m.Eng.At(sim.Time(m.MS(10)), "mask", func(sim.Time) {
		m.Kernel.InjectEpisode(kernel.MaskInterrupts, m.MS(3), "VXD", "_X")
	})
	m.Eng.At(sim.Time(m.MS(11)), "irq", func(sim.Time) {
		m.Kernel.InterruptForVector(ospersona.VectorDisk).Assert()
	})
	m.RunFor(m.Freq().Cycles(100 * time.Millisecond))

	// The disk ISR waited out the remaining ~2 ms of the mask. (The clock
	// ISR tick that collided with the mask start waited the full 3 ms, so
	// filter to the disk vector.)
	var diskLag sim.Cycles
	for _, e := range tr.Events() {
		if e.Kind == trace.IsrEntered && e.Vector == ospersona.VectorDisk && e.Lag > diskLag {
			diskLag = e.Lag
		}
	}
	if ms := m.Freq().Millis(diskLag); ms < 1.5 || ms > 2.5 {
		t.Fatalf("worst disk ISR lag %.2f ms, want ~2", ms)
	}
	if _, ok := tr.WorstLag(trace.IsrEntered); !ok {
		t.Fatal("no ISR events")
	}
}

func TestTracerRingBounds(t *testing.T) {
	m := newMachine(t, 3)
	tr := trace.Attach(m.Kernel, 16)
	gen := workload.New(workload.Games, m)
	gen.Start()
	m.RunFor(m.Freq().Cycles(time.Second))
	if got := len(tr.Events()); got != 16 {
		t.Fatalf("retained %d events, want ring size 16", got)
	}
	if tr.Total() <= 16 {
		t.Fatal("total should exceed ring capacity")
	}
}

func TestTracerFilter(t *testing.T) {
	m := newMachine(t, 4)
	tr := trace.Attach(m.Kernel, 1<<12)
	tr.SetFilter(func(e trace.Event) bool { return e.Kind == trace.ThreadDispatched })
	gen := workload.New(workload.Business, m)
	gen.Start()
	m.RunFor(m.Freq().Cycles(time.Second))
	for _, e := range tr.Events() {
		if e.Kind != trace.ThreadDispatched {
			t.Fatalf("filter leaked %v", e.Kind)
		}
	}
	if len(tr.Events()) == 0 {
		t.Fatal("filter dropped everything")
	}
}

func TestTracerBetweenAndDump(t *testing.T) {
	m := newMachine(t, 5)
	tr := trace.Attach(m.Kernel, 1<<12)
	m.Eng.At(sim.Time(m.MS(5)), "irq", func(sim.Time) {
		m.Kernel.InterruptForVector(ospersona.VectorDisk).Assert()
	})
	m.RunFor(m.Freq().Cycles(50 * time.Millisecond))
	window := tr.Between(sim.Time(m.MS(4)), sim.Time(m.MS(7)))
	if len(window) == 0 {
		t.Fatal("no events in window")
	}
	var b strings.Builder
	if err := tr.Dump(&b, m.Freq()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "irq-assert") || !strings.Contains(b.String(), "ms") {
		t.Fatalf("dump malformed:\n%s", b.String())
	}
}

func TestDetachStopsRecording(t *testing.T) {
	m := newMachine(t, 6)
	tr := trace.Attach(m.Kernel, 1<<10)
	m.RunFor(m.Freq().Cycles(100 * time.Millisecond))
	tr.Detach()
	n := tr.Total()
	gen := workload.New(workload.Business, m)
	gen.Start()
	m.RunFor(m.Freq().Cycles(time.Second))
	if tr.Total() != n {
		t.Fatal("tracer kept recording after Detach")
	}
}
