package interactive

import (
	"testing"
	"time"

	"wdmlat/internal/ospersona"
	"wdmlat/internal/workload"
)

func TestIdleResponseIsFast(t *testing.T) {
	r := Run(Config{OS: ospersona.NT4, Idle: true, Duration: 30 * time.Second})
	if r.Events < 50 {
		t.Fatalf("only %d events", r.Events)
	}
	// Unloaded: echo ≈ the 8 ms processing cost.
	if p := r.Freq.Millis(r.Response.Quantile(0.5)); p < 7 || p > 12 {
		t.Fatalf("idle median response %.1f ms, want ~8", p)
	}
	if got := r.WithinMS(50); got < 0.999 {
		t.Fatalf("idle responsiveness %.4f, want ~1", got)
	}
}

// The §1.2 observation, computed: both systems remain "adequately
// responsive" by the interactive standard (50–150 ms) under the business
// load — the methodology cannot surface the real-time gap that the
// latency-distribution methodology shows on the same machines.
func TestBothSystemsLookResponsiveUnderLoad(t *testing.T) {
	for _, osSel := range []ospersona.OS{ospersona.NT4, ospersona.Win98} {
		r := Run(Config{
			OS:       osSel,
			Workload: workload.Business,
			Duration: time.Minute,
			Seed:     5,
		})
		if r.Events < 100 {
			t.Fatalf("%v: only %d events", osSel, r.Events)
		}
		if got := r.WithinMS(150); got < 0.95 {
			t.Fatalf("%v: only %.1f%% within 150 ms — interactive adequacy should hold",
				osSel, got*100)
		}
	}
}

func TestLoadSlowsResponseTail(t *testing.T) {
	// The foreground thread outranks the stress apps, so the load shows
	// up in the tail (scheduler locks, DPC storms), not the mean.
	idle := Run(Config{OS: ospersona.Win98, Idle: true, Duration: time.Minute, Seed: 3})
	loaded := Run(Config{OS: ospersona.Win98, Workload: workload.Games, Duration: time.Minute, Seed: 3})
	iq := idle.Freq.Millis(idle.Response.Quantile(0.99))
	lq := loaded.Freq.Millis(loaded.Response.Quantile(0.99))
	if lq <= iq {
		t.Fatalf("loaded p99 %.2f ms not above idle p99 %.2f ms", lq, iq)
	}
	if loaded.Response.Max() <= idle.Response.Max() {
		t.Fatal("loaded worst response should exceed idle worst")
	}
}

func TestDeterministic(t *testing.T) {
	cfg := Config{OS: ospersona.Win98, Workload: workload.Business, Duration: 20 * time.Second, Seed: 7}
	a, b := Run(cfg), Run(cfg)
	if a.Events != b.Events || a.Response.Mean() != b.Response.Mean() {
		t.Fatal("interactive runs not deterministic")
	}
}
