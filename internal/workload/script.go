package workload

import (
	"fmt"

	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
)

// WinstoneScript returns a fixed, deterministic operation sequence modeling
// one pass of a Business Winstone-style benchmark: typed input, document
// compute, reads, and save bursts. Being identical across machines, it is
// the workload for the §4.2 throughput comparison ("the average delta
// between like scores was 10% and the maximum delta was 20%").
func WinstoneScript(m *ospersona.Machine, units int) []ospersona.Op {
	if units <= 0 {
		panic("workload: non-positive script units")
	}
	var ops []ospersona.Op
	for i := 0; i < units; i++ {
		// One "user action" block: input, app work, I/O.
		ops = append(ops,
			ospersona.Op{UI: true, Compute: m.MS(2)},
			ospersona.Op{Compute: m.MS(8)},
			ospersona.Op{ReadBytes: 24 * 1024},
			ospersona.Op{UI: true, Compute: m.MS(1)},
		)
		if i%5 == 4 {
			ops = append(ops, ospersona.Op{WriteBytes: 96 * 1024}) // save
		}
		if i%20 == 19 {
			// "save as": read + rewrite the document.
			ops = append(ops,
				ospersona.Op{ReadBytes: 256 * 1024},
				ospersona.Op{WriteBytes: 256 * 1024},
			)
		}
	}
	return ops
}

// RunThroughput executes the deterministic Winstone script on a machine and
// returns the virtual time it took — the macrobenchmark "score" whose
// near-equality across the two OSes the paper contrasts with their
// order-of-magnitude latency differences.
func RunThroughput(m *ospersona.Machine, units int) sim.Cycles {
	app := m.NewApp("winstone")
	ops := WinstoneScript(m, units)
	start := m.Now()
	app.Submit(ops...)
	deadline := start.Add(sim.Cycles(len(ops)) * m.MS(2000))
	for app.Done() < uint64(len(ops)) {
		if m.Now() > deadline {
			panic(fmt.Sprintf("workload: throughput script stalled at %d/%d ops", app.Done(), len(ops)))
		}
		m.RunFor(m.MS(50))
	}
	return m.Now().Sub(start)
}
