package store

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"wdmlat/internal/core"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/workload"
)

func testResult(t *testing.T) (*core.Result, core.RunConfig) {
	t.Helper()
	cfg := core.RunConfig{OS: ospersona.Win98, Workload: workload.Business, Duration: time.Second, Seed: 31}
	return core.Run(cfg), cfg
}

// TestStoreRoundTrip: Save then Load reproduces the result exactly.
func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, cfg := testResult(t)
	fp := Fingerprint(7, "win98/business/default/0", cfg)

	if err := s.Save(fp, res); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(fp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, got) {
		t.Fatal("stored result differs from original after round-trip")
	}
}

// TestStoreMiss: an absent fingerprint is (nil, nil), not an error.
func TestStoreMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(strings.Repeat("ab", 32))
	if err != nil || got != nil {
		t.Fatalf("miss returned (%v, %v), want (nil, nil)", got, err)
	}
}

// TestStoreCorruptEntry: a truncated checkpoint is an error (the runner
// re-runs the cell), never a silently wrong result.
func TestStoreCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fp := strings.Repeat("cd", 32)
	if err := os.WriteFile(filepath.Join(dir, fp+".json"), []byte(`{"Version":1,"Conf`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(fp); err == nil {
		t.Fatal("load of corrupt checkpoint succeeded, want error")
	}
}

// TestStoreSaveAtomic: after Save, the directory holds exactly the final
// file — no temp leftovers a crashed writer could confuse a reader with.
func TestStoreSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, cfg := testResult(t)
	fp := Fingerprint(7, "k", cfg)
	if err := s.Save(fp, res); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != fp+".json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("store dir holds %v, want exactly [%s.json]", names, fp)
	}
}

// TestFingerprintSensitivity: the fingerprint must change with every input
// it claims to cover — base seed, key, and any config field — and must be
// stable across calls.
func TestFingerprintSensitivity(t *testing.T) {
	cfg := core.RunConfig{OS: ospersona.NT4, Workload: workload.Games, Duration: time.Minute, Seed: 1}
	base := Fingerprint(1, "k", cfg)
	if base != Fingerprint(1, "k", cfg) {
		t.Fatal("fingerprint not stable")
	}
	altCfg := cfg
	altCfg.VirusScanner = true
	altDur := cfg
	altDur.Duration = 2 * time.Minute
	for name, fp := range map[string]string{
		"base seed": Fingerprint(2, "k", cfg),
		"key":       Fingerprint(1, "k2", cfg),
		"config":    Fingerprint(1, "k", altCfg),
		"duration":  Fingerprint(1, "k", altDur),
	} {
		if fp == base {
			t.Errorf("fingerprint insensitive to %s", name)
		}
	}
}

// TestOpenSweepsOrphanedTemps: a Save interrupted between CreateTemp and
// Rename (killed process, kernel panic) leaves `.<fp>.tmp-*` droppings
// that nothing would ever remove. Open must sweep them — and only them:
// real checkpoints and unrelated files survive.
func TestOpenSweepsOrphanedTemps(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, cfg := testResult(t)
	fp := Fingerprint(7, "win98/business/default/0", cfg)
	if err := s.Save(fp, res); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "."+fp+".tmp-1234567")
	if err := os.WriteFile(orphan, []byte(`{"Version":1,"Conf`), 0o644); err != nil {
		t.Fatal(err)
	}
	bystander := filepath.Join(dir, "latserved.journal")
	if err := os.WriteFile(bystander, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphaned temp survived Open: stat err = %v", err)
	}
	if got, err := s.Load(fp); err != nil || got == nil {
		t.Fatalf("checkpoint lost to the sweep: (%v, %v)", got, err)
	}
	if _, err := os.Stat(bystander); err != nil {
		t.Fatalf("unrelated file lost to the sweep: %v", err)
	}
}
