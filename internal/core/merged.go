package core

// Multi-run merging: the paper collects hours of data per class; a single
// virtual run resolves tails down to its own span. RunMerged pools several
// independently-seeded runs into one result, which deepens the resolvable
// tail in proportion to the pooled span (longer collections and more seeds
// are statistically equivalent here because the generators are stationary).

// RunMerged executes runs independent replicas of cfg (seeds cfg.Seed,
// cfg.Seed+1, ...) and pools their distributions.
func RunMerged(cfg RunConfig, runs int) *Result {
	if runs <= 1 {
		return Run(cfg)
	}
	base := Run(cfg)
	for i := 1; i < runs; i++ {
		next := cfg
		next.Seed = cfg.Seed + uint64(i)*7919 // decorrelate streams
		r := Run(next)
		base.merge(r)
	}
	return base
}

// merge pools other into r.
func (r *Result) merge(other *Result) {
	r.Observed += other.Observed
	r.Samples += other.Samples
	r.DpcInt.Merge(other.DpcInt)
	r.DpcIntOracle.Merge(other.DpcIntOracle)
	if r.IntLat != nil && other.IntLat != nil {
		r.IntLat.Merge(other.IntLat)
	}
	if r.DpcLat != nil && other.DpcLat != nil {
		r.DpcLat.Merge(other.DpcLat)
	}
	for p, h := range r.Thread {
		if oh, ok := other.Thread[p]; ok {
			h.Merge(oh)
		}
	}
	for p, h := range r.HwToThread {
		if oh, ok := other.HwToThread[p]; ok {
			h.Merge(oh)
		}
	}
	r.Counters.ISRCycles += other.Counters.ISRCycles
	r.Counters.DPCCycles += other.Counters.DPCCycles
	r.Counters.EpisodeCycles += other.Counters.EpisodeCycles
	r.Counters.SwitchCycles += other.Counters.SwitchCycles
	r.Counters.ThreadCycles += other.Counters.ThreadCycles
	r.Counters.Interrupts += other.Counters.Interrupts
	r.Counters.DPCs += other.Counters.DPCs
	r.Counters.Switches += other.Counters.Switches
	r.Counters.Episodes += other.Counters.Episodes
	r.AudioUnderruns += other.AudioUnderruns
	r.AudioPeriods += other.AudioPeriods
	r.Episodes = append(r.Episodes, other.Episodes...)
}
