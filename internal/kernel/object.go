package kernel

// WaitStatus is the outcome of a wait (KeWaitForSingleObject).
type WaitStatus int

// Wait outcomes.
const (
	WaitSuccess WaitStatus = iota
	WaitTimedOut
	WaitKilled // the simulation shut down while the thread was waiting
)

// String implements fmt.Stringer.
func (s WaitStatus) String() string {
	switch s {
	case WaitSuccess:
		return "STATUS_SUCCESS"
	case WaitTimedOut:
		return "STATUS_TIMEOUT"
	case WaitKilled:
		return "STATUS_KILLED"
	default:
		return "STATUS(?)"
	}
}

// Waitable is a dispatcher object a thread can block on.
type Waitable interface {
	// poll attempts to satisfy a wait immediately, consuming the signal
	// state if appropriate. It returns true on success.
	poll(t *Thread) bool
	// addWaiter and removeWaiter maintain the FIFO waiter list.
	addWaiter(t *Thread)
	removeWaiter(t *Thread)
	kernel() *Kernel
}

// waiterList is the shared FIFO waiter bookkeeping.
type waiterList struct {
	k       *Kernel
	waiters []*Thread
}

func (w *waiterList) addWaiter(t *Thread) { w.waiters = append(w.waiters, t) }

func (w *waiterList) removeWaiter(t *Thread) {
	for i, x := range w.waiters {
		if x == t {
			w.waiters = append(w.waiters[:i], w.waiters[i+1:]...)
			return
		}
	}
}

func (w *waiterList) kernel() *Kernel { return w.k }

// popWaiter dequeues the longest-waiting thread, or nil. It shifts in
// place rather than re-slicing the head away: advancing the slice base
// discards capacity, which made every steady-state wait/wake cycle
// reallocate the list from scratch.
func (w *waiterList) popWaiter() *Thread {
	if len(w.waiters) == 0 {
		return nil
	}
	t := w.waiters[0]
	copy(w.waiters, w.waiters[1:])
	w.waiters[len(w.waiters)-1] = nil
	w.waiters = w.waiters[:len(w.waiters)-1]
	return t
}

// EventKind selects WDM event semantics.
type EventKind int

const (
	// SynchronizationEvent auto-clears after satisfying a single wait —
	// the kind the paper's measurement driver uses (§2.2: "an event that
	// autoclears after a single wait is satisfied").
	SynchronizationEvent EventKind = iota
	// NotificationEvent satisfies all outstanding waits and stays
	// signaled until reset, like Unix kernel events (paper §2.2).
	NotificationEvent
)

// Event is a KEVENT.
type Event struct {
	waiterList
	Name     string
	Kind     EventKind
	signaled bool
	sets     uint64
}

// NewEvent creates an event in the non-signaled state (KeInitializeEvent).
func (k *Kernel) NewEvent(name string, kind EventKind) *Event {
	return &Event{waiterList: waiterList{k: k}, Name: name, Kind: kind}
}

// Signaled reports the event's current signal state.
func (e *Event) Signaled() bool { return e.signaled }

// Sets returns the number of times the event has been set.
func (e *Event) Sets() uint64 { return e.sets }

func (e *Event) poll(t *Thread) bool {
	if !e.signaled {
		return false
	}
	if e.Kind == SynchronizationEvent {
		e.signaled = false
	}
	return true
}

// set is KeSetEvent: synchronization events wake exactly one waiter and
// stay unsignaled if one was woken; notification events wake everyone and
// latch.
func (e *Event) set() {
	e.sets++
	switch e.Kind {
	case SynchronizationEvent:
		if t := e.popWaiter(); t != nil {
			e.k.wakeThreadFrom(e, t, WaitSuccess)
			return
		}
		e.signaled = true
	case NotificationEvent:
		e.signaled = true
		for {
			t := e.popWaiter()
			if t == nil {
				break
			}
			e.k.wakeThreadFrom(e, t, WaitSuccess)
		}
	}
}

// reset is KeResetEvent.
func (e *Event) reset() { e.signaled = false }

// SetEvent signals ev from simulation-harness context. Driver code running
// inside the machine should use the ISR/DPC/thread contexts instead.
func (k *Kernel) SetEvent(ev *Event) {
	ev.set()
	k.maybeRun()
}

// ResetEvent clears ev from simulation-harness context.
func (k *Kernel) ResetEvent(ev *Event) { ev.reset() }

// Semaphore is a KSEMAPHORE: a counted dispatcher object.
type Semaphore struct {
	waiterList
	Name  string
	count int
	limit int
}

// NewSemaphore creates a semaphore with an initial count and a limit.
func (k *Kernel) NewSemaphore(initial, limit int) *Semaphore {
	if initial < 0 || limit <= 0 || initial > limit {
		panic("kernel: invalid semaphore counts")
	}
	return &Semaphore{waiterList: waiterList{k: k}, count: initial, limit: limit}
}

// Count returns the current count.
func (s *Semaphore) Count() int { return s.count }

func (s *Semaphore) poll(t *Thread) bool {
	if s.count <= 0 {
		return false
	}
	s.count--
	return true
}

// release is KeReleaseSemaphore: add n units, waking waiters while units
// remain.
func (s *Semaphore) release(n int) {
	if n <= 0 {
		panic("kernel: semaphore release of non-positive count")
	}
	s.count += n
	if s.count > s.limit {
		s.count = s.limit
	}
	for s.count > 0 {
		t := s.popWaiter()
		if t == nil {
			break
		}
		s.count--
		s.k.wakeThreadFrom(s, t, WaitSuccess)
	}
}

// ReleaseSemaphore releases from simulation-harness context.
func (k *Kernel) ReleaseSemaphore(s *Semaphore, n int) {
	s.release(n)
	k.maybeRun()
}

// Mutex is a KMUTEX with recursive acquisition by the owning thread.
type Mutex struct {
	waiterList
	Name      string
	owner     *Thread
	recursion int
}

// NewMutex creates an unowned mutex.
func (k *Kernel) NewMutex(name string) *Mutex {
	return &Mutex{waiterList: waiterList{k: k}, Name: name}
}

// Owner returns the owning thread, or nil.
func (m *Mutex) Owner() *Thread { return m.owner }

func (m *Mutex) poll(t *Thread) bool {
	if m.owner == nil {
		m.owner = t
		m.recursion = 1
		return true
	}
	if m.owner == t {
		m.recursion++
		return true
	}
	return false
}

// release is KeReleaseMutex; only the owner may release, and the mutex
// transfers directly to the longest waiter.
func (m *Mutex) release(t *Thread) {
	if m.owner != t {
		panic("kernel: mutex released by non-owner")
	}
	m.recursion--
	if m.recursion > 0 {
		return
	}
	m.owner = nil
	if next := m.popWaiter(); next != nil {
		m.owner = next
		m.recursion = 1
		m.k.wakeThreadFrom(m, next, WaitSuccess)
	}
}

// wakeThread transitions a waiting thread to ready (single-object waits
// and timer wakes).
func (k *Kernel) wakeThread(t *Thread, status WaitStatus) {
	k.wakeThreadFrom(nil, t, status)
}

// wakeThreadFrom transitions a waiting thread to ready, recording the
// ground-truth "readied" timestamp from which thread latency is defined
// (paper §2.1: the delay from the signal until the thread's first
// instruction after the wait). src identifies the satisfying object for
// multi-object waits; the thread is deregistered from the others.
func (k *Kernel) wakeThreadFrom(src Waitable, t *Thread, status WaitStatus) {
	if t.state != threadWaiting {
		panic("kernel: waking thread " + t.Name + " in state " + t.state.String())
	}
	if t.waitTimeoutEv != nil {
		k.eng.Cancel(t.waitTimeoutEv)
		t.waitTimeoutEv = nil
	}
	t.waitObj = nil
	idx := 0
	if t.waitAny != nil {
		for i, o := range t.waitAny {
			if o == src {
				idx = i
				continue
			}
			o.removeWaiter(t)
		}
		t.waitAny = nil
	}
	t.resumeVal = resumeMsg{status: status, index: idx}
	t.needsResume = true
	t.state = threadReady
	t.readiedAt = k.now()
	// Dynamic-class boost on a satisfied wait (never in the real-time
	// band, whose priorities are contractual).
	if k.cfg.PriorityBoost && status == WaitSuccess && t.base < MinRealtimePriority {
		boosted := t.base + 2
		if boosted >= MinRealtimePriority {
			boosted = MinRealtimePriority - 1
		}
		if boosted > t.priority {
			t.priority = boosted
		}
	}
	k.pushReadyBack(t)
	if k.probe.ThreadReadied != nil {
		k.probe.ThreadReadied(t, t.readiedAt)
	}
}
