// Package metrics is the runtime's operational telemetry registry: named
// counters, gauges (with high-watermarks) and wall-time histograms that the
// campaign runner, the checkpoint store and the experiment binaries update
// while a campaign executes. It is the same argument the paper makes about
// operating systems, turned on ourselves: a mean "the campaign took 40 s"
// hides exactly the behavior that matters (one straggler cell, a cold
// checkpoint store, a starved worker pool), so the runner's own behavior is
// kept as full distributions and counters, exportable as a JSON snapshot.
//
// The registry is strictly out-of-band. Nothing in the simulation reads a
// metric, metrics never feed seeds or scheduling decisions, and the
// campaign's determinism contract (byte-identical artifacts at any -jobs,
// with telemetry on or off) is therefore preserved by construction — a
// property the campaign test suite pins down.
//
// Everything is stdlib-only and concurrency-safe. Instrument handles are
// nil-safe: methods on a nil *Counter/*Gauge/*Histogram (as handed out by a
// nil *Registry) are no-ops, so instrumented code needs no "is telemetry
// on?" branches at the call sites.
package metrics

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
)

// wallFreq is the "clock frequency" wall-time histograms are kept at:
// 1 GHz, so one histogram cycle is one nanosecond and stats.Histogram's
// log-scale bucketing (16 buckets/octave over 40 octaves) spans 1 ns to
// ~18 minutes at ~4.4% relative resolution — ample for per-cell wall times.
const wallFreq = sim.Freq(1e9)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. It is a no-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level (queue depth, busy workers) that also
// tracks its high-watermark: a snapshot taken after a campaign drains would
// otherwise always read 0, which is precisely the uninformative number this
// package exists to avoid.
type Gauge struct {
	mu   sync.Mutex
	v    int64
	high int64
}

// Add moves the gauge by delta (negative to decrease). No-op on nil.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += delta
	if g.v > g.high {
		g.high = g.v
	}
	g.mu.Unlock()
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Set replaces the gauge's value. No-op on nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	if v > g.high {
		g.high = v
	}
	g.mu.Unlock()
}

// Value returns the current level (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Max returns the high-watermark (0 on a nil gauge).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.high
}

// Histogram is a wall-time distribution on the log-scale bucketing of
// internal/stats, locked for concurrent observers (stats.Histogram itself
// is single-writer).
type Histogram struct {
	mu sync.Mutex
	h  *stats.Histogram
}

// Observe records one duration. Negative durations (a clock stepped under
// us) clamp to zero rather than poisoning the histogram. No-op on nil.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.h.Add(sim.Cycles(d.Nanoseconds()))
	h.mu.Unlock()
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.N()
}

// Mean returns the mean observed duration (0 on a nil or empty histogram).
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.h.Mean())
}

// Quantile returns the q-quantile at bucket resolution (0 on nil).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return wallFreq.Duration(h.h.Quantile(q))
}

// Registry holds the named instruments. The zero value is not usable; call
// NewRegistry. A nil *Registry is a valid "telemetry off" registry: its
// getters return nil instruments whose methods are no-ops.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the counter with the given name, creating it on first
// use. The same name always returns the same counter. Nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
// Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the wall-time histogram with the given name, creating
// it on first use. Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{h: stats.NewHistogram(wallFreq)}
		r.hists[name] = h
	}
	return h
}

// GaugeSnapshot is a gauge's exported state.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// HistogramSnapshot is a wall-time histogram's exported summary, in
// milliseconds (quantiles at bucket resolution, ~4.4%).
type HistogramSnapshot struct {
	Count  uint64  `json:"count"`
	MinMS  float64 `json:"min_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// Snapshot is a point-in-time export of a registry. Its JSON encoding is
// deterministic: encoding/json marshals map keys in sorted order, and all
// struct fields marshal in declaration order, so two registries that saw
// the same updates export byte-identical snapshots regardless of the order
// instruments were created or updated in.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every instrument's current state. Safe to call while
// writers are active; each instrument is read atomically (the snapshot as a
// whole is not a single atomic cut, which is fine for telemetry).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]GaugeSnapshot{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	ctrs := make(map[string]*Counter, len(r.ctrs))
	for k, v := range r.ctrs {
		ctrs[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for name, c := range ctrs {
		s.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		s.Gauges[name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
	}
	for name, h := range hists {
		h.mu.Lock()
		hs := HistogramSnapshot{
			Count:  h.h.N(),
			MinMS:  wallFreq.Millis(h.h.Min()),
			MaxMS:  wallFreq.Millis(h.h.Max()),
			MeanMS: h.h.Mean() / 1e6,
			P50MS:  wallFreq.Millis(h.h.Quantile(0.5)),
			P90MS:  wallFreq.Millis(h.h.Quantile(0.9)),
			P99MS:  wallFreq.Millis(h.h.Quantile(0.99)),
		}
		h.mu.Unlock()
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the registry's snapshot to w as indented JSON with
// deterministic key ordering, terminated by a newline.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
