# Developer entry points. `make check` is the full gate: vet, build, tests
# with the race detector (the campaign worker pool now runs simulations —
# each with its own kernel thread goroutines — concurrently, so races are a
# first-class failure mode, not a theoretical one), plus the event-heap
# oracle and steady-state allocation tests that guard the pooled substrate.

GO ?= go

# Bench comparison inputs for bench-compare (override on the command line).
# BASE is the committed current-round baseline; NEW defaults to a scratch
# record so `make bench && make bench-compare` never dirties the baselines.
BASE ?= BENCH_2.json
NEW  ?= bench-new.json

# Coverage floor (percent of statements) for the campaign runtime and the
# metrics registry — the packages whose regressions CI must not let drift.
# Recorded from the suite at the time the gate was added; raise it as
# coverage grows, never lower it to make a failure go away.
COVER_FLOOR ?= 85.0

.PHONY: all check lint vet build test race substrate failure-paths service fleet-faults cover determinism smoke storm-smoke resume-smoke serve-smoke horde-smoke bench bench-smoke bench-compare reproduce clean

all: check

check: lint build test race substrate failure-paths service fleet-faults

# lint: formatting is enforced, not advisory — gofmt drift fails the gate,
# and go vet runs under the same umbrella so `make lint` is the one cheap
# static pass CI and pre-commit hooks share.
lint:
	@drift=$$(gofmt -l .); if [ -n "$$drift" ]; then \
		echo "gofmt drift in:"; echo "$$drift"; exit 1; fi
	@tracked=$$(git ls-files -- 'cover.out' '*.out' 'bench-new.json' 2>/dev/null || true); \
	if [ -n "$$tracked" ]; then \
		echo "generated coverage/bench artifacts are committed:"; echo "$$tracked"; exit 1; fi
	$(GO) vet ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# substrate: the pooled-event-heap oracle property test under -race, plus
# the zero-allocation tests without -race (AllocsPerRun is meaningless under
# the race detector's instrumented allocator, so those tests skip themselves
# there and must also run uninstrumented).
substrate:
	$(GO) test -race -run 'TestEngineHeapMatchesOracle|TestEngineFIFOUnderPooling|TestWheel' ./internal/sim/
	$(GO) test -run 'TestEngineSteadyStateAllocFree|TestWheelSteadyStateAllocFree' ./internal/sim/

# failure-paths: the campaign runner's fault-tolerance suite under -race —
# panic isolation, graceful cancellation with checkpoint flush, resume
# byte-identity, and the collect-twice / callback-ordering regressions.
# These tests interleave cancellation with worker publication, so the race
# detector is load-bearing here, not belt-and-braces.
failure-paths:
	$(GO) test -race -run 'TestPanicking|TestCancelled|TestResume|TestCollectTwice|TestOnCellDone|TestCheckpointRestore' ./internal/campaign/...

# service: the campaign-service suite under -race — server admission /
# overload / dedup / shutdown-drain paths, client retry/backoff and
# resumable watch, and the end-to-end byte-identity guarantee (server
# result bytes == local campaign bytes, cold and warm cache). The server
# interleaves HTTP handlers, executor goroutines and campaign workers, so
# -race is load-bearing here too.
service:
	$(GO) test -race ./internal/api/... ./internal/server/... ./internal/client/...

# fleet-faults: the coordinator fault-injection suite and the sharding
# determinism property under -race — silent workers, corrupt payloads,
# duplicate completions, drain with leases outstanding, and byte-identity
# of the merged stream across fleet sizes 1..16 with seeded churn. These
# overlap `service` (which runs the whole packages) but are named here so
# the distributed-execution guarantees have their own failing gate, plus
# the backoff-schedule pin the worker loop shares with the HTTP client.
fleet-faults:
	$(GO) test -race -run 'TestCoordinator|TestFleetSharding|TestFleetHTTP|TestJournal|TestServerResumes|TestServerDoesNotResume' ./internal/server/
	$(GO) test -race -run 'TestBackoff|TestWorker|TestRunWorker' ./internal/client/

# cover: the coverage gate for the campaign runtime, the metrics registry,
# (since fleet mode) the service wire types and the server — coordinator
# state machine included — and (since the storm frontier) the sweep engine
# and its livelock criterion. Produces cover.out (the CI job uploads it)
# and fails if total statement coverage over those packages drops below
# COVER_FLOOR. (internal/client is exercised mostly by internal/server's
# end-to-end tests, which per-package profiles do not credit, so it stays
# outside the floor's scope.)
cover:
	$(GO) test -coverprofile=cover.out ./internal/campaign/... ./internal/metrics/... ./internal/server/... ./internal/api/... ./internal/stats/... ./internal/frontier/...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || \
		{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# determinism: the byte-identity contract as a runnable gate — the encoded
# result stream and every artifact must not depend on worker count or on
# whether cells were executed or replayed from the checkpoint store, in
# fixed-replica and adaptive (-precision) mode alike. On failure the
# divergent encodings are left in results-determinism/ for the post-mortem
# (the CI matrix uploads them as artifacts).
determinism:
	rm -rf results-determinism
	mkdir -p results-determinism
	$(GO) build -o results-determinism/reproduce ./cmd/reproduce
	results-determinism/reproduce -duration 10s -jobs 1 -outdir results-determinism/j1 \
		-encode results-determinism/j1.bin
	results-determinism/reproduce -duration 10s -jobs 8 -outdir results-determinism/j8 \
		-encode results-determinism/j8.bin
	cmp results-determinism/j1.bin results-determinism/j8.bin
	diff -r results-determinism/j1 results-determinism/j8
	results-determinism/reproduce -duration 10s -jobs 8 -checkpoint results-determinism/ckpt \
		-outdir results-determinism/cold -encode results-determinism/cold.bin
	results-determinism/reproduce -duration 10s -jobs 3 -checkpoint results-determinism/ckpt \
		-outdir results-determinism/warm -encode results-determinism/warm.bin
	cmp results-determinism/j1.bin results-determinism/cold.bin
	cmp results-determinism/cold.bin results-determinism/warm.bin
	results-determinism/reproduce -duration 10s -jobs 1 -precision 0.2 -max-runs 12 \
		-outdir results-determinism/adp1 -encode results-determinism/adp1.bin
	results-determinism/reproduce -duration 10s -jobs 8 -precision 0.2 -max-runs 12 \
		-outdir results-determinism/adp8 -encode results-determinism/adp8.bin
	cmp results-determinism/adp1.bin results-determinism/adp8.bin
	diff -r results-determinism/adp1 results-determinism/adp8
	@echo "determinism: streams byte-identical across -jobs, warm store, and adaptive mode"
	rm -rf results-determinism

# smoke: a fast end-to-end pass of the full reproduction pipeline on the
# parallel campaign runner, with the observability surface on: progress to
# stderr, a checkpoint store, and a telemetry snapshot that must show the
# campaign actually counted its cells and checkpoints. The scratch
# directory is removed on success so CI runners (and developers) stay
# clean; it is left behind on failure for the post-mortem.
smoke:
	rm -rf results-smoke
	$(GO) run ./cmd/reproduce -duration 5s -jobs 4 -outdir results-smoke -progress \
		-checkpoint results-smoke/ckpt -telemetry results-smoke/telemetry.json
	@grep -q '"campaign_cells_completed": [1-9]' results-smoke/telemetry.json || \
		{ echo "smoke: telemetry has no completed cells"; exit 1; }
	@grep -q '"store_writes": [1-9]' results-smoke/telemetry.json || \
		{ echo "smoke: telemetry has no checkpoint writes"; exit 1; }
	@echo "smoke: telemetry snapshot has nonzero cell and checkpoint counters"
	rm -rf results-smoke

# storm-smoke: a fast end-to-end pass of the interrupt-storm frontier
# pipeline — a short checkpointed sweep, a warm-store re-run at a different
# worker count that must reproduce the artifacts byte for byte, and a
# telemetry snapshot that must show the sweep actually probed, saturated
# and located knees. The scratch directory is removed on success and left
# behind on failure for the post-mortem.
storm-smoke:
	rm -rf results-storm-smoke
	mkdir -p results-storm-smoke
	$(GO) build -o results-storm-smoke/stormsweep ./cmd/stormsweep
	results-storm-smoke/stormsweep -duration 2s -runs 2 -seed 7 \
		-min-pps 16384 -max-pps 262144 -bisect 2 -jobs 4 \
		-checkpoint results-storm-smoke/ckpt -outdir results-storm-smoke/cold \
		-telemetry results-storm-smoke/telemetry.json
	results-storm-smoke/stormsweep -duration 2s -runs 2 -seed 7 \
		-min-pps 16384 -max-pps 262144 -bisect 2 -jobs 1 \
		-checkpoint results-storm-smoke/ckpt -outdir results-storm-smoke/warm
	diff -r results-storm-smoke/cold results-storm-smoke/warm
	@grep -q '"frontier_probes": [1-9]' results-storm-smoke/telemetry.json || \
		{ echo "storm-smoke: telemetry has no frontier probes"; exit 1; }
	@grep -q '"frontier_saturated_probes": [1-9]' results-storm-smoke/telemetry.json || \
		{ echo "storm-smoke: no probe saturated"; exit 1; }
	@grep -q '"frontier_knees": [1-9]' results-storm-smoke/telemetry.json || \
		{ echo "storm-smoke: no knee located"; exit 1; }
	@nt=$$(awk '$$1 == "nt4/per-assert" && $$3 == "pps" {print $$2; exit}' results-storm-smoke/cold/frontier.txt); \
	w98=$$(awk '$$1 == "win98/per-assert" && $$3 == "pps" {print $$2; exit}' results-storm-smoke/cold/frontier.txt); \
	echo "storm-smoke: knees nt4=$$nt pps, win98=$$w98 pps"; \
	awk -v a="$$w98" -v b="$$nt" 'BEGIN { exit (a+0 > 0 && a+0 < b+0) ? 0 : 1 }' || \
		{ echo "storm-smoke: Win98 knee not strictly below NT4 knee"; exit 1; }
	@echo "storm-smoke: warm-store artifacts byte-identical; knees ordered; telemetry shows probes, saturation and knees"
	rm -rf results-storm-smoke

# resume-smoke: kill a checkpointed campaign mid-flight with SIGINT, resume
# it from the checkpoint store, and demand the resumed artifacts be
# byte-identical to an uninterrupted run at a different worker count. The
# interrupted invocation exits non-zero by design (timeout reports 124), so
# it is prefixed with `-`. Timings: the full campaign takes ~7 s of wall
# clock at -jobs 2, so a 3 s SIGINT lands mid-campaign with some cells
# checkpointed and some cancelled.
resume-smoke:
	rm -rf results-resume-smoke
	mkdir -p results-resume-smoke
	$(GO) build -o results-resume-smoke/reproduce ./cmd/reproduce
	-timeout -s INT 3 results-resume-smoke/reproduce -duration 150s -runs 2 -jobs 2 \
		-checkpoint results-resume-smoke/ckpt -outdir results-resume-smoke/resumed
	results-resume-smoke/reproduce -duration 150s -runs 2 -jobs 2 \
		-checkpoint results-resume-smoke/ckpt -outdir results-resume-smoke/resumed
	results-resume-smoke/reproduce -duration 150s -runs 2 -jobs 4 \
		-outdir results-resume-smoke/full
	diff -r results-resume-smoke/resumed results-resume-smoke/full
	@echo "resume-smoke: resumed artifacts byte-identical to uninterrupted run"
	rm -rf results-resume-smoke

# serve-smoke: end-to-end campaign-service smoke — start latserved, submit
# via latctl, diff the fetched result against a local cmd/reproduce run
# (byte identity), assert duplicate submissions dedup, then restart the
# server on the same cache directory and assert the re-served result is a
# pure cache hit (0 cells executed) via /metrics.
serve-smoke:
	./scripts/serve_smoke.sh

# horde-smoke: distributed-fleet smoke — latserved -fleet coordinating 4
# real latworkd processes, one SIGKILLed mid-campaign, and the merged
# result byte-compared against a single-process cmd/reproduce run. The
# /metrics counters must show the worker expired and its cells
# re-dispatched, proving the loss path actually ran.
horde-smoke:
	./scripts/horde_smoke.sh

# bench: record the substrate and experiment benchmarks into $(NEW). Compare
# against the committed previous-round baseline $(BASE) with bench-compare.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -json . > $(NEW)

# bench-smoke: one iteration of every benchmark — asserts the benches still
# compile and run, without the cost of a measured pass.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem . > /dev/null

# bench-compare: enforce the perf-regression policy (>10% ns/op or any
# allocs/op growth fails) between two bench records.
bench-compare:
	$(GO) run ./cmd/benchdiff -base $(BASE) -new $(NEW)

# reproduce: regenerate the checked-in full-length experimental record.
# These flags are the record's provenance — results/ headers embed them, and
# `git diff --exit-code results/` after this target is the determinism gate.
reproduce:
	$(GO) run ./cmd/reproduce -duration 30m -runs 3

clean:
	rm -rf results-smoke results-resume-smoke results-serve-smoke results-horde-smoke results-determinism cover.out bench-new.json latserved-cache latworkd-cache
