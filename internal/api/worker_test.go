package api

import (
	"strings"
	"testing"
	"time"

	"wdmlat/internal/campaign/store"
	"wdmlat/internal/core"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
	"wdmlat/internal/workload"
)

func testLease() Lease {
	cfg := core.RunConfig{OS: ospersona.NT4, Workload: workload.Business, Duration: time.Second}
	cfg.Seed = sim.DeriveSeed(7, "nt4/business/default/0")
	return Lease{
		Fingerprint: store.Fingerprint(7, "nt4/business/default/0", cfg),
		BaseSeed:    7,
		Key:         "nt4/business/default/0",
		Config:      cfg,
	}
}

// TestLeaseVerify: a lease whose fingerprint matches its own fields
// verifies; perturbing any identity component breaks it.
func TestLeaseVerify(t *testing.T) {
	l := testLease()
	if err := l.Verify(); err != nil {
		t.Fatalf("pristine lease failed verification: %v", err)
	}
	mutations := map[string]func(*Lease){
		"fingerprint": func(l *Lease) { l.Fingerprint = strings.Repeat("0", 64) },
		"base seed":   func(l *Lease) { l.BaseSeed++ },
		"key":         func(l *Lease) { l.Key = "win98/business/default/0" },
		"config seed": func(l *Lease) { l.Config.Seed++ },
		"duration":    func(l *Lease) { l.Config.Duration *= 2 },
	}
	for name, mutate := range mutations {
		bad := testLease()
		mutate(&bad)
		if err := bad.Verify(); err == nil {
			t.Errorf("lease with mutated %s verified; the fleet would run a wrong cell", name)
		}
	}
}

// TestCompleteRequestValidate: exactly one of result and error.
func TestCompleteRequestValidate(t *testing.T) {
	fp := strings.Repeat("a", 64)
	cases := []struct {
		name string
		req  CompleteRequest
		ok   bool
	}{
		{"result only", CompleteRequest{Fingerprint: fp, Result: []byte(`{}`)}, true},
		{"error only", CompleteRequest{Fingerprint: fp, Error: "panic: boom"}, true},
		{"both", CompleteRequest{Fingerprint: fp, Result: []byte(`{}`), Error: "x"}, false},
		{"neither", CompleteRequest{Fingerprint: fp}, false},
		{"no fingerprint", CompleteRequest{Result: []byte(`{}`)}, false},
	}
	for _, tc := range cases {
		if err := tc.req.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestEncodeCellResultMatchesCodec: the completion payload is exactly the
// cell's checkpoint encoding — the byte-identity guarantee rides on the
// coordinator merging worker payloads indistinguishable from local ones.
func TestEncodeCellResultMatchesCodec(t *testing.T) {
	l := testLease()
	res := &core.Result{Config: l.Config, OSName: "nt4", Samples: 42}
	payload, err := EncodeCellResult(res)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := core.DecodeResult(strings.NewReader(string(payload)))
	if err != nil {
		t.Fatalf("payload does not decode through the checkpoint codec: %v", err)
	}
	round, err := EncodeCellResult(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if string(round) != string(payload) {
		t.Fatal("decode→re-encode changed the payload; completion bytes are not canonical")
	}
}
