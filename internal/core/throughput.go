package core

import (
	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
	"wdmlat/internal/workload"
)

// ThroughputResult is one macrobenchmark run (§4.2): the virtual time a
// fixed Winstone-style script takes on one OS.
type ThroughputResult struct {
	OSName   string
	Units    int
	Duration sim.Cycles
	Freq     sim.Freq
}

// Seconds returns the script duration in virtual seconds.
func (t ThroughputResult) Seconds() float64 {
	return t.Freq.Duration(t.Duration).Seconds()
}

// Score returns a Winstone-style throughput score: units of work per
// virtual second (higher is better).
func (t ThroughputResult) Score() float64 {
	s := t.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(t.Units) / s
}

// RunThroughput executes the deterministic benchmark script on one OS.
func RunThroughput(os ospersona.OS, units int, seed uint64) ThroughputResult {
	m := ospersona.Build(os, ospersona.Options{Seed: seed})
	defer m.Shutdown()
	d := workload.RunThroughput(m, units)
	return ThroughputResult{
		OSName:   m.Profile.Name,
		Units:    units,
		Duration: d,
		Freq:     m.Freq(),
	}
}

// ThroughputDelta returns the relative score difference |a-b| / max(a,b),
// the quantity the paper bounds at ~10% average / 20% max while latency
// differs by orders of magnitude.
func ThroughputDelta(a, b ThroughputResult) float64 {
	sa, sb := a.Score(), b.Score()
	hi := sa
	if sb > hi {
		hi = sb
	}
	if hi == 0 {
		return 0
	}
	d := sa - sb
	if d < 0 {
		d = -d
	}
	return d / hi
}
