package latdriver_test

import (
	"testing"

	"wdmlat/internal/cpu"
	"wdmlat/internal/hw"
	"wdmlat/internal/kernel"
	"wdmlat/internal/latdriver"
	"wdmlat/internal/sim"
)

const (
	clockVector = 32
	tickPeriod  = 300_000 // 1 kHz at 300 MHz
)

type machine struct {
	eng *sim.Engine
	cpu *cpu.CPU
	k   *kernel.Kernel
	pit *hw.PIT
}

func newMachine(t *testing.T, seed uint64) *machine {
	t.Helper()
	eng := sim.NewEngine(seed)
	c := cpu.New(eng, sim.DefaultFreq)
	k := kernel.New(eng, c, kernel.Config{
		Name:          "test",
		IsrEntry:      sim.Constant(100),
		IsrExit:       sim.Constant(50),
		DpcDispatch:   sim.Constant(30),
		ClockTick:     sim.Constant(40),
		TimerFire:     sim.Constant(20),
		ContextSwitch: sim.Constant(200),
		Quantum:       6_000_000,
	})
	k.Boot(clockVector, tickPeriod)
	pit := hw.NewPIT(eng, k.InterruptForVector(clockVector))
	pit.Program(tickPeriod)
	t.Cleanup(k.Shutdown)
	return &machine{eng: eng, cpu: c, k: k, pit: pit}
}

func installAndRun(t *testing.T, m *machine, opts latdriver.Options, d sim.Cycles) *latdriver.Tool {
	t.Helper()
	tool, err := latdriver.Install(m.k, m.pit, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tool.Start(); err != nil {
		t.Fatal(err)
	}
	m.eng.RunUntil(sim.Time(d))
	tool.Stop()
	return tool
}

func TestToolCollectsSamplesAtExpectedRate(t *testing.T) {
	m := newMachine(t, 1)
	// 1 second of virtual time; the read re-arms just after a tick, so a
	// 3-tick delay lands on the 4th tick: ~250 cycles/s.
	tool := installAndRun(t, m, latdriver.Options{}, 300_000_000)
	if tool.Samples() < 240 || tool.Samples() > 260 {
		t.Fatalf("samples = %d, want ~250", tool.Samples())
	}
	if n := tool.DpcInterruptLatency().N(); n < tool.Samples() {
		t.Fatalf("DPC-int histogram has %d samples, want >= %d", n, tool.Samples())
	}
	for _, p := range []int{tool.HighPriority(), tool.MediumPriority()} {
		if n := tool.ThreadLatency(p).N(); n < tool.Samples() {
			t.Fatalf("thread %d histogram has %d samples", p, n)
		}
	}
}

func TestEstimateWithinOnePitPeriodOfOracle(t *testing.T) {
	m := newMachine(t, 2)
	tool := installAndRun(t, m, latdriver.Options{}, 300_000_000)
	est := tool.DpcInterruptLatency()
	orc := tool.DpcInterruptLatencyOracle()
	if est.N() == 0 || orc.N() == 0 {
		t.Fatal("no samples")
	}
	// est = oracle + phase, phase in [0, tick): mean estimate exceeds mean
	// oracle by less than one tick, and every estimate >= its oracle floor.
	diff := est.Mean() - orc.Mean()
	if diff < 0 || diff > tickPeriod {
		t.Fatalf("mean estimation bias %v cycles, want within [0, %d)", diff, tickPeriod)
	}
	if est.Max() > orc.Max()+tickPeriod {
		t.Fatalf("estimate max %d exceeds oracle max %d + one tick", est.Max(), orc.Max())
	}
}

func TestIdleSystemLatenciesAreSmall(t *testing.T) {
	m := newMachine(t, 3)
	tool := installAndRun(t, m, latdriver.Options{}, 300_000_000)
	freq := sim.DefaultFreq
	// Oracle DPC-interrupt latency on an idle machine: ISR entry + tick
	// processing + DPC dispatch — well under 0.1 ms.
	if ms := freq.Millis(tool.DpcInterruptLatencyOracle().Max()); ms > 0.1 {
		t.Fatalf("idle oracle DPC-int latency max = %v ms", ms)
	}
	// Thread latencies: a context switch or two.
	for _, p := range []int{28, 24} {
		if ms := freq.Millis(tool.ThreadLatency(p).Max()); ms > 0.1 {
			t.Fatalf("idle thread %d latency max = %v ms", p, ms)
		}
	}
}

func TestHighPriorityThreadNoSlowerThanMedium(t *testing.T) {
	m := newMachine(t, 4)
	// Add same-priority interference: a priority-24 spinner that hogs its
	// level, so the medium (24) measurement thread round-robins behind it
	// while the high (28) thread preempts. The spinner starts after the
	// tool's threads have raised their priorities (the paper starts its
	// tools before launching the stress load, §3.1.1).
	m.eng.At(30_000_000, "spinner", func(sim.Time) {
		m.k.CreateThread("spinner", 24, func(tc *kernel.ThreadContext) {
			for {
				tc.Exec(50_000_000)
			}
		})
	})
	tool := installAndRun(t, m, latdriver.Options{}, 2*300_000_000)
	hi := tool.ThreadLatency(28)
	med := tool.ThreadLatency(24)
	if hi.N() == 0 || med.N() == 0 {
		t.Fatal("missing samples")
	}
	if !(hi.Mean() < med.Mean()) {
		t.Fatalf("hi mean %v >= med mean %v under same-priority load", hi.Mean(), med.Mean())
	}
	if med.Max() < 10*hi.Max() {
		t.Fatalf("med max %d vs hi max %d: expected order-of-magnitude gap", med.Max(), hi.Max())
	}
}

func TestLegacyHookSplitsLatency(t *testing.T) {
	m := newMachine(t, 5)
	tool := installAndRun(t, m, latdriver.Options{HookTimerISR: true}, 300_000_000)
	intLat := tool.InterruptLatency()
	dpcLat := tool.DpcLatency()
	if intLat == nil || dpcLat == nil {
		t.Fatal("hook mode should populate split histograms")
	}
	if intLat.N() == 0 || dpcLat.N() == 0 {
		t.Fatal("no split samples")
	}
	// Decomposition: interrupt latency + DPC latency ≈ DPC-interrupt
	// latency (within bucket resolution and tool costs).
	sum := intLat.Mean() + dpcLat.Mean()
	whole := tool.DpcInterruptLatency().Mean()
	if sum < 0.9*whole || sum > 1.1*whole {
		t.Fatalf("int(%v) + dpc(%v) = %v, want ≈ dpc-int(%v)", intLat.Mean(), dpcLat.Mean(), sum, whole)
	}
	if tool.IsrMisses() > tool.Samples()/100 {
		t.Fatalf("isr misses = %d of %d", tool.IsrMisses(), tool.Samples())
	}
}

func TestNoHookModeLeavesSplitNil(t *testing.T) {
	m := newMachine(t, 6)
	tool := installAndRun(t, m, latdriver.Options{}, 30_000_000)
	if tool.InterruptLatency() != nil || tool.DpcLatency() != nil {
		t.Fatal("split histograms must be nil without the legacy hook")
	}
}

func TestMaskedWindowShowsUpInInterruptLatency(t *testing.T) {
	m := newMachine(t, 7)
	// Inject 2 ms interrupt-masked windows around every 10th tick.
	n := 0
	var inject func(sim.Time)
	inject = func(sim.Time) {
		n++
		if n%10 == 0 {
			m.k.InjectEpisode(kernel.MaskInterrupts, 600_000, "VXD", "_Cli")
		}
		m.eng.After(tickPeriod, "inject", inject)
	}
	m.eng.After(tickPeriod/2, "inject", inject)

	tool := installAndRun(t, m, latdriver.Options{HookTimerISR: true}, 600_000_000)
	freq := sim.DefaultFreq
	if ms := freq.Millis(tool.InterruptLatency().Max()); ms < 0.5 {
		t.Fatalf("interrupt latency max = %v ms: masked windows invisible", ms)
	}
}

func TestSchedLockShowsUpInThreadNotDpcLatency(t *testing.T) {
	m := newMachine(t, 8)
	// Frequent 10 ms scheduler-locked episodes.
	var inject func(sim.Time)
	inject = func(sim.Time) {
		m.k.InjectEpisode(kernel.LockScheduler, 3_000_000, "VMM", "_Win16Lock")
		m.eng.After(20*tickPeriod, "inject", inject)
	}
	m.eng.After(tickPeriod, "inject", inject)

	tool := installAndRun(t, m, latdriver.Options{}, 600_000_000)
	freq := sim.DefaultFreq
	thr := freq.Millis(tool.ThreadLatency(28).Max())
	dpc := freq.Millis(tool.DpcInterruptLatencyOracle().Max())
	if thr < 5 {
		t.Fatalf("thread latency max = %v ms: scheduler locks invisible", thr)
	}
	if dpc > 1 {
		t.Fatalf("DPC-int latency max = %v ms: scheduler locks wrongly delayed DPCs", dpc)
	}
}

func TestStopEndsSampling(t *testing.T) {
	m := newMachine(t, 9)
	tool, err := latdriver.Install(m.k, m.pit, latdriver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tool.Start(); err != nil {
		t.Fatal(err)
	}
	m.eng.RunUntil(30_000_000)
	tool.Stop()
	n := tool.Samples()
	m.eng.RunUntil(300_000_000)
	// At most the in-flight cycle completes after Stop.
	if tool.Samples() > n+1 {
		t.Fatalf("samples kept accumulating after Stop: %d -> %d", n, tool.Samples())
	}
}

func TestDoubleStartFails(t *testing.T) {
	m := newMachine(t, 10)
	tool, err := latdriver.Install(m.k, m.pit, latdriver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tool.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tool.Start(); err == nil {
		t.Fatal("second Start should fail")
	}
}

func TestInvalidPriorityOrdering(t *testing.T) {
	m := newMachine(t, 11)
	_, err := latdriver.Install(m.k, m.pit, latdriver.Options{HighPriority: 20, MediumPriority: 24})
	if err == nil {
		t.Fatal("high <= medium should be rejected")
	}
}
