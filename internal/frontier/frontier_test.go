package frontier_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"wdmlat/internal/api"
	"wdmlat/internal/campaign"
	"wdmlat/internal/campaign/store"
	"wdmlat/internal/client"
	"wdmlat/internal/core"
	"wdmlat/internal/frontier"
	"wdmlat/internal/hw"
	"wdmlat/internal/metrics"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/server"
	"wdmlat/internal/stats"
)

// sweepOpts is the shared short-but-real sweep: one Win98 per-assert track
// whose drop signal saturates inside [32768, 131072] at a 300 ms
// collection, so the grid ascent and bisection both execute against the
// real simulator in a few probe cells.
func sweepOpts(reg *metrics.Registry) frontier.Options {
	return frontier.Options{
		OSes:        []ospersona.OS{ospersona.Win98},
		Modes:       []hw.Moderation{hw.ModeratePerWindow},
		MinPPS:      32768,
		MaxPPS:      131072,
		BisectSteps: 2,
		Duration:    300 * time.Millisecond,
		Runs:        2,
		Metrics:     reg,
	}
}

// frontierBytes serializes a sweep outcome for byte comparison: the knee
// line plus every probe's verdict and full encoded result.
func frontierBytes(t *testing.T, fs []frontier.Frontier) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, f := range fs {
		fmt.Fprintf(&buf, "%s/%s knee=%v censored=%v\n",
			campaign.OSSlug(f.OS), f.Mode, f.Knee, f.Censored)
		for _, p := range f.Probes {
			fmt.Fprintf(&buf, "r%d %v\n", int64(p.PPS), p.Verdict)
			if err := core.EncodeResult(&buf, p.Result); err != nil {
				t.Fatal(err)
			}
		}
	}
	return buf.Bytes()
}

func runSweep(t *testing.T, opts campaign.Options, fopts frontier.Options) []frontier.Frontier {
	t.Helper()
	run := campaign.New(opts)
	fs, err := frontier.Run(run, fopts)
	if err != nil {
		t.Fatalf("frontier run: %v", err)
	}
	if err := run.Wait(); err != nil {
		t.Fatalf("campaign wait: %v", err)
	}
	return fs
}

// TestFrontierByteIdentity is the frontier's determinism property test, the
// TestAdaptiveByteIdentity bar applied to the sweep: identical bytes at
// jobs=1 and jobs=8, across a mid-sweep kill plus warm-store resume, and
// under the fleet dispatch path.
func TestFrontierByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real simulator")
	}
	const baseSeed = 41

	reg := metrics.NewRegistry()
	want := frontierBytes(t, runSweep(t,
		campaign.Options{BaseSeed: baseSeed, Jobs: 1}, sweepOpts(reg)))

	// The sweep must actually have exercised both phases and found a knee.
	if reg.Counter(frontier.MetricProbes).Value() < 4 {
		t.Fatalf("only %d probes; sweep did not bisect", reg.Counter(frontier.MetricProbes).Value())
	}
	if reg.Counter(frontier.MetricSaturatedProbes).Value() == 0 {
		t.Fatal("no saturated probes; sweep range no longer brackets the knee")
	}
	if reg.Counter(frontier.MetricKnees).Value() != 1 {
		t.Fatal("no knee detected")
	}

	t.Run("jobs8", func(t *testing.T) {
		got := frontierBytes(t, runSweep(t,
			campaign.Options{BaseSeed: baseSeed, Jobs: 8}, sweepOpts(nil)))
		if !bytes.Equal(got, want) {
			t.Error("jobs=8 sweep differs from jobs=1")
		}
	})

	t.Run("killResume", func(t *testing.T) {
		dir := t.TempDir()
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		// Kill: cancel the campaign context after the first few cells
		// complete, mid-sweep. The interrupted sweep fails; its finished
		// cells are checkpointed.
		ctx, cancel := context.WithCancel(context.Background())
		var done atomic.Uint64
		run := campaign.New(campaign.Options{
			BaseSeed: baseSeed,
			Jobs:     2,
			Context:  ctx,
			Store:    st,
			OnCellDone: func(string) {
				if done.Add(1) == 3 {
					cancel()
				}
			},
		})
		if _, err := frontier.Run(run, sweepOpts(nil)); err == nil {
			// Workers may drain the whole sweep before cancellation lands;
			// that still leaves a fully-populated store, which is fine.
			t.Log("sweep finished before cancellation landed")
		}
		_ = run.Wait()

		// Resume: a fresh runner on the same store must finish the sweep
		// and produce identical bytes.
		st2, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		got := frontierBytes(t, runSweep(t,
			campaign.Options{BaseSeed: baseSeed, Jobs: 4, Store: st2}, sweepOpts(nil)))
		if !bytes.Equal(got, want) {
			t.Error("resumed sweep differs from uninterrupted run")
		}
	})

	t.Run("fleet", func(t *testing.T) {
		srv := server.New(server.Options{Jobs: 4, Fleet: &server.CoordinatorOptions{}})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Close()

		ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
		defer cancel()
		for i := 0; i < 3; i++ {
			go func() {
				wc := client.New(ts.URL, client.Options{})
				_ = wc.RunWorker(ctx, client.WorkerOptions{})
			}()
		}

		// The fleet seam: each campaign cell becomes a one-cell spec
		// dispatched through the coordinator; the spec carries the outer
		// base seed and the cell's key, so the fleet derives the same
		// per-cell seed the local runner would.
		fleetCell := func(key string, cfg core.RunConfig) (*core.Result, error) {
			c := client.New(ts.URL, client.Options{})
			spec := &api.CampaignSpec{
				BaseSeed: baseSeed,
				Cells:    []api.CellSpec{{Key: key, Config: cfg}},
			}
			st, err := c.Submit(ctx, spec)
			if err != nil {
				return nil, err
			}
			if st, err = c.Watch(ctx, st.ID, nil); err != nil {
				return nil, err
			}
			if st.State != api.StateDone {
				return nil, fmt.Errorf("fleet campaign %s: %s", st.State, st.Error)
			}
			data, err := c.Result(ctx, st.ID)
			if err != nil {
				return nil, err
			}
			return core.DecodeResult(bytes.NewReader(data))
		}
		got := frontierBytes(t, runSweep(t,
			campaign.Options{BaseSeed: baseSeed, Jobs: 4, ExecuteCell: fleetCell},
			sweepOpts(nil)))
		if !bytes.Equal(got, want) {
			t.Error("fleet sweep differs from local run")
		}
	})
}

// TestFrontierKneeAndProbeShape pins the sweep mechanics on the cheap
// track: probes sorted ascending, the knee separating sustainable from
// saturated, and the bracket actually refined by bisection.
func TestFrontierKneeAndProbeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real simulator")
	}
	fs := runSweep(t, campaign.Options{BaseSeed: 41, Jobs: 8}, sweepOpts(nil))
	if len(fs) != 1 {
		t.Fatalf("%d frontiers, want 1", len(fs))
	}
	f := fs[0]
	if f.Censored {
		t.Fatal("track censored; range no longer brackets the knee")
	}
	if f.Knee < 32768 || f.Knee >= 131072 {
		t.Fatalf("knee %v outside (32768, 131072)", f.Knee)
	}
	for i, p := range f.Probes {
		if i > 0 && p.PPS <= f.Probes[i-1].PPS {
			t.Fatalf("probes not strictly ascending: %v then %v", f.Probes[i-1].PPS, p.PPS)
		}
		if p.PPS <= f.Knee && p.Verdict.Saturated {
			t.Fatalf("probe at %v below knee %v judged saturated", p.PPS, f.Knee)
		}
		if p.PPS > f.Knee && !p.Verdict.Saturated {
			t.Fatalf("probe at %v above knee %v judged sustainable", p.PPS, f.Knee)
		}
		if p.Result.Storm == nil || p.Result.NicLat == nil {
			t.Fatalf("probe at %v missing storm accounting", p.PPS)
		}
	}
	// More probes than the 3-point grid: bisection refined the bracket.
	if len(f.Probes) < 4 {
		t.Fatalf("%d probes; bisection never ran", len(f.Probes))
	}
	if f.KneeLabel() == "" {
		t.Fatal("empty knee label")
	}
}

// TestFrontierAdaptivePrecision drives the sweep through the PR 9 adaptive
// replica loop: every probe must report the replica count the stopping
// rule settled on, and the sweep stays deterministic — two runs with the
// same policy produce identical bytes.
func TestFrontierAdaptivePrecision(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real simulator")
	}
	opts := sweepOpts(nil)
	opts.Precision = &stats.Precision{RelWidth: 0.5, MaxRuns: 4}
	a := runSweep(t, campaign.Options{BaseSeed: 41, Jobs: 4}, opts)
	for _, f := range a {
		for _, p := range f.Probes {
			if p.Adaptive.Replicas < 1 {
				t.Fatalf("probe at %v reports %d adaptive replicas", p.PPS, p.Adaptive.Replicas)
			}
		}
	}
	b := runSweep(t, campaign.Options{BaseSeed: 41, Jobs: 8}, opts)
	if !bytes.Equal(frontierBytes(t, a), frontierBytes(t, b)) {
		t.Error("adaptive sweep not byte-identical across jobs 4 and 8")
	}
}
