package campaign

// Telemetry tests: the out-of-band contract. Metrics attached to a
// campaign must never change what the campaign computes — byte-identical
// encoded results at any -jobs, with telemetry on or off — and the
// instruments must account for every cell exactly once, including the
// checkpoint-store dispositions.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wdmlat/internal/campaign/store"
	"wdmlat/internal/core"
	"wdmlat/internal/metrics"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/workload"
)

// encodeAll runs one real (core.Run) campaign with the given options and
// returns the canonical encoding of every merged matrix cell, in a fixed
// collection order.
func encodeAll(t *testing.T, jobs int, reg *metrics.Registry) []byte {
	t.Helper()
	oses := []ospersona.OS{ospersona.Win98}
	classes := []workload.Class{workload.Business, workload.Games}
	const runs = 2
	r := New(Options{BaseSeed: 17, Jobs: jobs, Metrics: reg})
	byOS, err := r.RunMatrix(oses, classes, "default", core.RunConfig{Duration: shortDur}, runs)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, o := range oses {
		for _, c := range classes {
			if err := core.EncodeResult(&buf, byOS[o][c]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return buf.Bytes()
}

// TestTelemetryOutOfBand is the determinism proof the observability layer
// ships under: the same campaign at -jobs 1 and -jobs 8, with a metrics
// registry attached and without one, encodes byte-identical results in all
// four combinations. It also pins the accounting: every cell is started
// and completed exactly once, the wall-time histogram saw every execution,
// and the load gauges drained back to zero.
func TestTelemetryOutOfBand(t *testing.T) {
	baseline := encodeAll(t, 1, nil)
	const cells = 1 * 2 * 2 // oses × classes × runs

	for _, tc := range []struct {
		label string
		jobs  int
		reg   *metrics.Registry
	}{
		{"jobs1+telemetry", 1, metrics.NewRegistry()},
		{"jobs8", 8, nil},
		{"jobs8+telemetry", 8, metrics.NewRegistry()},
	} {
		got := encodeAll(t, tc.jobs, tc.reg)
		if !bytes.Equal(baseline, got) {
			t.Fatalf("%s: encoded results differ from jobs1-without-telemetry baseline", tc.label)
		}
		if tc.reg == nil {
			continue
		}
		for name, want := range map[string]uint64{
			MetricCellsStarted:   cells,
			MetricCellsCompleted: cells,
			MetricCellsFailed:    0,
			MetricCellsCancelled: 0,
			MetricCellPanics:     0,
		} {
			if got := tc.reg.Counter(name).Value(); got != want {
				t.Errorf("%s: %s = %d, want %d", tc.label, name, got, want)
			}
		}
		if n := tc.reg.Histogram(MetricCellWallTime).Count(); n != cells {
			t.Errorf("%s: wall-time histogram count = %d, want %d", tc.label, n, cells)
		}
		for _, name := range []string{MetricWorkersBusy, MetricQueueDepth} {
			g := tc.reg.Gauge(name)
			if v := g.Value(); v != 0 {
				t.Errorf("%s: drained gauge %s = %d, want 0", tc.label, name, v)
			}
			if m := g.Max(); m < 1 {
				t.Errorf("%s: gauge %s high-watermark = %d, want >= 1", tc.label, name, m)
			}
		}
	}
}

// TestProgressAccounting: Progress reports (done, total) through every
// outcome class — executed cells, checkpoint restores, and cells dropped
// by cancellation all land in done exactly once.
func TestProgressAccounting(t *testing.T) {
	r := New(Options{BaseSeed: 9, Jobs: 2, Execute: fakeResult})
	if d, tot := r.Progress(); d != 0 || tot != 0 {
		t.Fatalf("fresh runner Progress = (%d, %d), want (0, 0)", d, tot)
	}
	r.Submit(Replicas("cell", core.RunConfig{Duration: time.Second}, 5)...)
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	if d, tot := r.Progress(); d != 5 || tot != 5 {
		t.Fatalf("Progress = (%d, %d), want (5, 5)", d, tot)
	}
}

// TestCheckpointTelemetry walks one store through its three dispositions —
// cold (all misses, all writes), warm (all hits, no executions), and
// corrupt (re-run, counted) — and checks the campaign- and store-level
// counters agree with what happened.
func TestCheckpointTelemetry(t *testing.T) {
	dir := t.TempDir()
	const cells = 4
	cfg := core.RunConfig{Duration: time.Second}

	open := func(reg *metrics.Registry) *store.Store {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		st.Instrument(reg)
		return st
	}
	runCampaign := func(reg *metrics.Registry) {
		r := New(Options{BaseSeed: 2, Jobs: 2, Execute: fakeResult, Store: open(reg), Metrics: reg})
		r.Submit(Replicas("cell", cfg, cells)...)
		if err := r.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	expect := func(label string, reg *metrics.Registry, want map[string]uint64) {
		t.Helper()
		for name, w := range want {
			if got := reg.Counter(name).Value(); got != w {
				t.Errorf("%s: %s = %d, want %d", label, name, got, w)
			}
		}
	}

	cold := metrics.NewRegistry()
	runCampaign(cold)
	expect("cold", cold, map[string]uint64{
		MetricCheckpointHits:        0,
		MetricCheckpointMisses:      cells,
		MetricCheckpointCorrupt:     0,
		MetricCellsStarted:          cells,
		MetricCellsCompleted:        cells,
		store.MetricFingerprintMiss: cells,
		store.MetricWrites:          cells,
		store.MetricReads:           0,
	})

	warm := metrics.NewRegistry()
	runCampaign(warm)
	expect("warm", warm, map[string]uint64{
		MetricCheckpointHits:        cells,
		MetricCheckpointMisses:      0,
		MetricCheckpointCorrupt:     0,
		MetricCellsStarted:          0,
		MetricCellsCompleted:        cells,
		store.MetricFingerprintMiss: 0,
		store.MetricWrites:          0,
		store.MetricReads:           cells,
	})

	// Corrupt one checkpoint: that cell re-runs (and re-persists), the rest
	// restore, and the corruption is counted at the campaign level.
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != cells {
		t.Fatalf("store entries: %v, %v", entries, err)
	}
	if err := os.WriteFile(entries[0], []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	hurt := metrics.NewRegistry()
	r := New(Options{BaseSeed: 2, Jobs: 2, Execute: fakeResult, Store: open(hurt), Metrics: hurt})
	r.Submit(Replicas("cell", cfg, cells)...)
	if err := r.Wait(); err == nil {
		t.Fatal("Wait after corruption should surface the store error")
	}
	expect("corrupt", hurt, map[string]uint64{
		MetricCheckpointHits:    cells - 1,
		MetricCheckpointMisses:  0,
		MetricCheckpointCorrupt: 1,
		MetricCellsStarted:      1,
		MetricCellsCompleted:    cells,
		store.MetricReads:       cells - 1,
		store.MetricWrites:      1,
	})
}
