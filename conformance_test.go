// Paper-conformance test suite: a short parallel measurement campaign at a
// fixed seed, with the paper's shape invariants (DESIGN.md §5) asserted as
// tier-1 tests. The campaign runs through internal/campaign at the default
// worker count, so this suite also exercises the parallel runner end to
// end: the invariants must hold — and hold identically — no matter how
// many workers execute the cells.
//
// Invariants under test (Figure 4, Table 3, §4.1, §4.2, §5.1):
//
//   - NT-RT28 ≈ NT-DPC, both bounded below the 3 ms modem slack (§5.1:
//     the paper forgoes the NT MTTF analysis because every NT worst case
//     sits under the slack).
//   - NT-DPC ≪ Win98-DPC ≪ Win98-RT-thread on the worst stress class
//     (3D games).
//   - NT RT-24 roughly an order of magnitude worse than RT-28: the WDM
//     work-item worker runs at priority 24, so a measurement thread at the
//     same priority absorbs work-item bursts (§4.1/§4.2).
//   - Throughput deltas stay within ~20% while latency differs by ≥10×
//     (§4.2: "the two systems perform within 10% of each other on
//     throughput ... while differing by orders of magnitude in latency").
package wdmlat_test

import (
	"testing"
	"time"

	"wdmlat/internal/campaign"
	"wdmlat/internal/core"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/workload"
)

// Fixed campaign geometry: every threshold below was calibrated at this
// seed, duration and replica count — change one and the thresholds must be
// re-derived.
const (
	conformanceSeed = 7
	conformanceDur  = 3 * time.Minute
	conformanceRuns = 2
)

func TestPaperConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance campaign is a few seconds of simulation; skipped in -short")
	}
	oses := []ospersona.OS{ospersona.NT4, ospersona.Win98}

	run := campaign.New(campaign.Options{BaseSeed: conformanceSeed})
	byOS, err := run.RunMatrix(oses, workload.Classes, "conformance",
		core.RunConfig{Duration: conformanceDur}, conformanceRuns)
	if err != nil {
		t.Fatal(err)
	}

	// Worst-case latencies in milliseconds, per OS × class.
	dpc := map[ospersona.OS]map[workload.Class]float64{}
	t28 := map[ospersona.OS]map[workload.Class]float64{}
	t24 := map[ospersona.OS]map[workload.Class]float64{}
	hwThread := map[ospersona.OS]map[workload.Class]float64{}
	for _, o := range oses {
		dpc[o] = map[workload.Class]float64{}
		t28[o] = map[workload.Class]float64{}
		t24[o] = map[workload.Class]float64{}
		hwThread[o] = map[workload.Class]float64{}
		for _, c := range workload.Classes {
			r := byOS[o][c]
			if r.Samples == 0 {
				t.Fatalf("%s/%s: no samples collected", o, c)
			}
			dpc[o][c] = r.Freq.Millis(r.DpcInt.Max())
			t28[o][c] = r.Freq.Millis(r.Thread[r.HighPriority()].Max())
			t24[o][c] = r.Freq.Millis(r.Thread[r.MediumPriority()].Max())
			hwThread[o][c] = r.Freq.Millis(r.HwToThread[r.HighPriority()].Max())
			t.Logf("%s/%s: dpc %.2f, t28 %.2f, t24 %.2f, hw->t28 %.2f ms",
				campaign.OSSlug(o), campaign.ClassSlug(c),
				dpc[o][c], t28[o][c], t24[o][c], hwThread[o][c])
		}
	}

	t.Run("NTBelowModemSlack", func(t *testing.T) {
		// §5.1: every NT service level the paper measures stays under the
		// 3 ms slack of a 16 ms softmodem cycle; NT-RT28 ≈ NT-DPC in the
		// sense that both live in the same sub-slack band, with the thread
		// path no slower than the DPC path's envelope.
		for _, c := range workload.Classes {
			if dpc[ospersona.NT4][c] >= 3 {
				t.Errorf("%s: NT DPC worst %.2f ms, want < 3 ms", c, dpc[ospersona.NT4][c])
			}
			if t28[ospersona.NT4][c] >= 3 {
				t.Errorf("%s: NT RT-28 worst %.2f ms, want < 3 ms", c, t28[ospersona.NT4][c])
			}
			if t28[ospersona.NT4][c] > 2*dpc[ospersona.NT4][c] {
				t.Errorf("%s: NT RT-28 worst %.2f ms not ≈ NT DPC worst %.2f ms",
					c, t28[ospersona.NT4][c], dpc[ospersona.NT4][c])
			}
		}
	})

	t.Run("OrderingChain", func(t *testing.T) {
		// Figure 4 / Table 3 ordering on the worst class (3D games):
		// NT-DPC ≪ Win98-DPC ≪ Win98-RT-thread.
		g := workload.Games
		if w98, nt := dpc[ospersona.Win98][g], dpc[ospersona.NT4][g]; w98 < 2*nt {
			t.Errorf("games: Win98 DPC worst %.2f ms not ≫ NT DPC worst %.2f ms", w98, nt)
		}
		if th, d := hwThread[ospersona.Win98][g], dpc[ospersona.Win98][g]; th < 3*d {
			t.Errorf("games: Win98 RT-thread worst %.2f ms not ≫ Win98 DPC worst %.2f ms", th, d)
		}
		// And weakly across every class: the Win98 service levels never
		// undercut NT's, and the thread path never undercuts the DPC path.
		for _, c := range workload.Classes {
			if dpc[ospersona.Win98][c] < dpc[ospersona.NT4][c] {
				t.Errorf("%s: Win98 DPC worst %.2f ms below NT's %.2f ms",
					c, dpc[ospersona.Win98][c], dpc[ospersona.NT4][c])
			}
			if hwThread[ospersona.Win98][c] < dpc[ospersona.Win98][c] {
				t.Errorf("%s: Win98 RT-thread worst %.2f ms below Win98 DPC worst %.2f ms",
					c, hwThread[ospersona.Win98][c], dpc[ospersona.Win98][c])
			}
		}
	})

	t.Run("NTPriority24Cliff", func(t *testing.T) {
		// §4.1: the RT-24 measurement thread shares a priority with the
		// WDM work-item worker and eats its bursts — roughly an order of
		// magnitude worse than RT-28 on every class.
		for _, c := range workload.Classes {
			lo, hi := t28[ospersona.NT4][c], t24[ospersona.NT4][c]
			if hi < 5*lo {
				t.Errorf("%s: NT RT-24 worst %.2f ms not ≈10× RT-28 worst %.2f ms", c, hi, lo)
			}
		}
	})

	t.Run("ThroughputVsLatency", func(t *testing.T) {
		// §4.2: near-equal throughput, orders-of-magnitude latency gap.
		nt := core.RunThroughput(ospersona.NT4, 200, conformanceSeed)
		w98 := core.RunThroughput(ospersona.Win98, 200, conformanceSeed)
		delta := core.ThroughputDelta(nt, w98)
		t.Logf("throughput: NT %.2f, Win98 %.2f, delta %.1f%%", nt.Score(), w98.Score(), delta*100)
		if delta > 0.25 {
			t.Errorf("throughput delta %.1f%% exceeds the paper's ~20%% envelope", delta*100)
		}
		g := workload.Games
		if ratio := t28[ospersona.Win98][g] / t28[ospersona.NT4][g]; ratio < 10 {
			t.Errorf("games: Win98/NT RT-28 worst-case ratio %.1f, want ≥ 10×", ratio)
		}
	})
}
