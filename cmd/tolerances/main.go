// tolerances reproduces Table 1: the latency tolerances of several
// multimedia and signal processing applications, (n−1)·t for n buffers of
// t milliseconds.
package main

import (
	"flag"
	"fmt"
	"os"

	"wdmlat/internal/cli"
	"wdmlat/internal/figures"
)

func main() {
	cli.AddVersionFlag("tolerances", flag.CommandLine)
	flag.Parse()
	if err := figures.Table1().Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tolerances:", err)
		os.Exit(1)
	}
	fmt.Println("\nNote: the two most processor-intensive applications, ADSL and video at")
	fmt.Println("20 to 30 fps, sit at opposite ends of the latency tolerance spectrum (§1).")
}
