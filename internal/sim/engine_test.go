package sim

import (
	"testing"
	"time"
)

func TestEngineFiresInTimestampOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, "c", func(Time) { order = append(order, 3) })
	e.At(10, "a", func(Time) { order = append(order, 1) })
	e.At(20, "b", func(Time) { order = append(order, 2) })
	e.Drain(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fired out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameTimestamp(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, "same", func(Time) { order = append(order, i) })
	}
	e.Drain(200)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events fired out of FIFO order at %d: %v", i, order[:i+1])
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, "x", func(Time) { fired = true })
	if !ev.Pending() {
		t.Fatal("event should be pending")
	}
	if !e.Cancel(ev) {
		t.Fatal("first cancel should succeed")
	}
	if e.Cancel(ev) {
		t.Fatal("second cancel should fail")
	}
	e.Drain(10)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine(1)
	var fired []int
	evs := make([]*Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.At(Time(i*10), "n", func(Time) { fired = append(fired, i) })
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.Drain(20)
	want := []int{0, 1, 2, 3, 5, 6, 8, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestEngineReschedule(t *testing.T) {
	e := NewEngine(1)
	var at Time
	ev := e.At(10, "x", func(now Time) { at = now })
	e.Reschedule(ev, 50)
	e.Drain(10)
	if at != 50 {
		t.Fatalf("fired at %d, want 50", at)
	}
}

func TestEngineRescheduleFiredEventPanics(t *testing.T) {
	e := NewEngine(1)
	ev := e.At(10, "x", func(Time) {})
	e.Drain(10)
	defer func() {
		if recover() == nil {
			t.Fatal("rescheduling a fired (recycled) event should panic")
		}
	}()
	e.Reschedule(ev, 80)
}

func TestEngineCancelThenReschedulePanics(t *testing.T) {
	e := NewEngine(1)
	ev := e.At(10, "x", func(Time) {})
	if !e.Cancel(ev) {
		t.Fatal("cancel should succeed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("rescheduling a cancelled (recycled) event should panic")
		}
	}()
	e.Reschedule(ev, 80)
}

// TestEngineFIFOUnderPooling exercises same-timestamp FIFO ordering across
// several schedule/fire generations so that every later generation is
// served entirely from recycled records.
func TestEngineFIFOUnderPooling(t *testing.T) {
	e := NewEngine(1)
	for gen := 0; gen < 5; gen++ {
		var order []int
		base := e.Now() + 10
		evs := make([]*Event, 50)
		for i := 0; i < 50; i++ {
			i := i
			evs[i] = e.At(base, "same", func(Time) { order = append(order, i) })
		}
		// Cancel a few mid-queue so their records recycle ahead of the rest.
		e.Cancel(evs[10])
		e.Cancel(evs[20])
		e.RunUntil(base)
		want := 0
		for _, v := range order {
			if v == 10 || v == 20 {
				t.Fatalf("gen %d: cancelled event %d fired", gen, v)
			}
			for want == 10 || want == 20 {
				want++
			}
			if v != want {
				t.Fatalf("gen %d: fired %v, want FIFO without 10,20", gen, order)
			}
			want++
		}
		if len(order) != 48 {
			t.Fatalf("gen %d: fired %d events, want 48", gen, len(order))
		}
	}
}

// TestEngineSteadyStateAllocFree verifies the tentpole contract: once the
// pool is warm, the schedule-fire cycle performs no heap allocation.
func TestEngineSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	e := NewEngine(1)
	var tick func(Time)
	tick = func(Time) { e.After(100, "tick", tick) }
	e.After(100, "tick", tick)
	for i := 0; i < 1000; i++ { // warm up pool and heap slice
		e.Step()
	}
	if avg := testing.AllocsPerRun(1000, func() { e.Step() }); avg != 0 {
		t.Fatalf("steady-state After+Step allocates %v allocs/op, want 0", avg)
	}
	// Cancel/re-schedule churn must be allocation-free too.
	evs := make([]*Event, 64)
	for i := range evs {
		evs[i] = e.After(Cycles(1000+i), "churn", func(Time) {})
	}
	if avg := testing.AllocsPerRun(1000, func() {
		for i := range evs {
			e.Cancel(evs[i])
		}
		for i := range evs {
			evs[i] = e.After(Cycles(1000+i), "churn", func(Time) {})
		}
	}); avg != 0 {
		t.Fatalf("steady-state Cancel+After allocates %v allocs/op, want 0", avg)
	}
}

func TestEngineRunUntilAdvancesClockPastLastEvent(t *testing.T) {
	e := NewEngine(1)
	e.At(10, "x", func(Time) {})
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("clock = %d, want 100", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", e.Pending())
	}
}

func TestEngineEventsScheduledDuringEvent(t *testing.T) {
	e := NewEngine(1)
	var hits []Time
	e.At(10, "outer", func(now Time) {
		e.After(5, "inner", func(now Time) { hits = append(hits, now) })
	})
	e.RunUntil(100)
	if len(hits) != 1 || hits[0] != 15 {
		t.Fatalf("inner event hits = %v, want [15]", hits)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, "x", func(Time) {})
	e.RunUntil(20)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	e.At(5, "past", func(Time) {})
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay should panic")
		}
	}()
	e.After(-1, "neg", func(Time) {})
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []uint64 {
		e := NewEngine(42)
		var draws []uint64
		var tick func(Time)
		n := 0
		tick = func(Time) {
			draws = append(draws, e.RNG().Uint64())
			n++
			if n < 50 {
				e.After(Cycles(e.RNG().Intn(100)+1), "tick", tick)
			}
		}
		e.After(1, "tick", tick)
		e.RunUntil(1 << 40)
		return draws
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at draw %d", i)
		}
	}
}

func TestFreqConversions(t *testing.T) {
	f := DefaultFreq // 300 MHz
	if c := f.Cycles(time.Millisecond); c != 300_000 {
		t.Fatalf("1ms = %d cycles, want 300000", c)
	}
	if d := f.Duration(300_000); d != time.Millisecond {
		t.Fatalf("300000 cycles = %v, want 1ms", d)
	}
	if ms := f.Millis(450_000); ms != 1.5 {
		t.Fatalf("450000 cycles = %v ms, want 1.5", ms)
	}
	if c := f.FromMillis(2.0); c != 600_000 {
		t.Fatalf("2ms = %d cycles, want 600000", c)
	}
	// Round trip across a long duration (1 hour) must be exact at 300 MHz.
	if d := f.Duration(f.Cycles(time.Hour)); d != time.Hour {
		t.Fatalf("1h round trip = %v", d)
	}
}

func TestFreqString(t *testing.T) {
	cases := map[Freq]string{
		300_000_000:   "300 MHz",
		1_000_000_000: "1 GHz",
		1_000:         "1 kHz",
		60:            "60 Hz",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(f), got, want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(100)
	b := a.Add(50)
	if b != 150 {
		t.Fatalf("Add: %d", b)
	}
	if b.Sub(a) != 50 {
		t.Fatalf("Sub: %d", b.Sub(a))
	}
	if !a.Before(b) || !b.After(a) {
		t.Fatal("Before/After inconsistent")
	}
}

func TestDrainLimitPanics(t *testing.T) {
	e := NewEngine(1)
	var tick func(Time)
	tick = func(Time) { e.After(1, "tick", tick) }
	e.After(1, "tick", tick)
	defer func() {
		if recover() == nil {
			t.Fatal("Drain on a self-perpetuating queue should panic at the limit")
		}
	}()
	e.Drain(100)
}

func TestEngineCounters(t *testing.T) {
	e := NewEngine(1)
	e.At(10, "a", func(Time) {})
	e.At(20, "b", func(Time) {})
	if e.Pending() != 2 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.RunUntil(15)
	if e.Fired() != 1 || e.Pending() != 1 {
		t.Fatalf("fired=%d pending=%d", e.Fired(), e.Pending())
	}
}

func TestEventLabelAndWhen(t *testing.T) {
	e := NewEngine(1)
	ev := e.At(42, "my-label", func(Time) {})
	if ev.Label() != "my-label" || ev.When() != 42 {
		t.Fatalf("label=%q when=%d", ev.Label(), ev.When())
	}
	var nilEv *Event
	if nilEv.Label() != "" || nilEv.Pending() {
		t.Fatal("nil event accessors should be safe")
	}
}

func TestFreqMillisRoundTripProperty(t *testing.T) {
	f := DefaultFreq
	for _, ms := range []float64{0.001, 0.125, 1, 16, 33.3, 128, 5000} {
		c := f.FromMillis(ms)
		back := f.Millis(c)
		// Truncation to whole cycles costs at most one cycle: 1/300 µs.
		if diff := back - ms; diff > 1e-5 || diff < -1e-5 {
			t.Fatalf("round trip %v ms -> %d cycles -> %v ms", ms, c, back)
		}
	}
}
