package sim

import (
	"container/heap"
	"testing"
)

// The oracle: a straightforward container/heap priority queue over the
// same (when, seq) key, against which the engine's hand-specialized 4-ary
// pooled heap must dispatch identically under arbitrary interleavings of
// schedule, cancel and reschedule.

type oracleItem struct {
	when  Time
	seq   uint64
	id    int
	index int // heap index, -1 when removed
}

type oracleHeap []*oracleItem

func (h oracleHeap) Len() int { return len(h) }
func (h oracleHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h oracleHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *oracleHeap) Push(x any) {
	it := x.(*oracleItem)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *oracleHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*h = old[:n-1]
	return it
}

// TestEngineHeapMatchesOracle drives the engine and the oracle through the
// same random interleaving of schedule/cancel/reschedule/step operations
// and requires the dispatch order (event ids, timestamps) to be identical.
func TestEngineHeapMatchesOracle(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := NewRNG(uint64(trial + 1))
		e := NewEngine(1)

		var oq oracleHeap
		var oseq uint64
		onow := Time(0)

		var engFired, oraFired []int
		var engTimes, oraTimes []Time

		// Live handles, kept in sync between engine and oracle by id.
		type livePair struct {
			ev *Event
			it *oracleItem
		}
		live := map[int]livePair{}
		nextID := 0

		oracleStep := func() {
			it := heap.Pop(&oq).(*oracleItem)
			if it.when > onow {
				onow = it.when
			}
			oraFired = append(oraFired, it.id)
			oraTimes = append(oraTimes, onow)
			delete(live, it.id)
		}

		for op := 0; op < 5000; op++ {
			switch r := rng.Intn(100); {
			case r < 45: // schedule
				d := Cycles(rng.Intn(1000)) // delay 0 allowed: same-timestamp FIFO
				id := nextID
				nextID++
				ev := e.After(d, "prop", func(now Time) {
					engFired = append(engFired, id)
					engTimes = append(engTimes, now)
					delete(live, id)
				})
				it := &oracleItem{when: onow.Add(d), seq: oseq, id: id}
				oseq++
				heap.Push(&oq, it)
				live[id] = livePair{ev: ev, it: it}
			case r < 60: // cancel a random live event
				for id, p := range live { // first map hit is fine: both sides mirror it
					if !e.Cancel(p.ev) {
						t.Fatalf("trial %d op %d: cancel of live event %d failed", trial, op, id)
					}
					heap.Remove(&oq, p.it.index)
					delete(live, id)
					break
				}
			case r < 75: // reschedule a random live event
				for id, p := range live {
					d := Cycles(rng.Intn(1000))
					e.Reschedule(p.ev, e.Now().Add(d))
					p.it.when = onow.Add(d)
					p.it.seq = oseq
					oseq++
					heap.Fix(&oq, p.it.index)
					_ = id
					break
				}
			default: // step
				if e.Pending() != oq.Len() {
					t.Fatalf("trial %d op %d: pending %d vs oracle %d", trial, op, e.Pending(), oq.Len())
				}
				if e.Pending() > 0 {
					e.Step()
					oracleStep()
				}
			}
		}
		for e.Pending() > 0 {
			e.Step()
			oracleStep()
		}

		if len(engFired) != len(oraFired) {
			t.Fatalf("trial %d: engine fired %d events, oracle %d", trial, len(engFired), len(oraFired))
		}
		for i := range engFired {
			if engFired[i] != oraFired[i] || engTimes[i] != oraTimes[i] {
				t.Fatalf("trial %d: dispatch %d diverges: engine (%d@%d) oracle (%d@%d)",
					trial, i, engFired[i], engTimes[i], oraFired[i], oraTimes[i])
			}
		}
	}
}
