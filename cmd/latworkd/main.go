// latworkd is a fleet worker for latserved -fleet: it registers with the
// coordinator, leases measurement cells by checkpoint fingerprint, runs
// them through the exact same simulator a local campaign would, and
// delivers each result as its canonical checkpoint encoding. Workers are
// interchangeable by construction — every lease is verified against the
// worker's own fingerprint derivation before it executes, so a worker
// built from diverged code refuses work instead of corrupting a campaign.
//
// Run as many as the hardware allows:
//
//	latworkd -coord http://coordinator:8080 -name $(hostname) -cells 2
//
// SIGINT/SIGTERM stop leasing and let in-flight cells finish delivering.
// Losing the coordinator (restart, network partition) is survivable: all
// calls retry with jittered backoff, a worker whose registration expired
// transparently re-registers, and once registered a worker rides out
// arbitrary coordinator downtime instead of exiting.
//
// With -cache the worker is checkpoint-backed: every executed cell is
// persisted under its content fingerprint before delivery, and every
// lease is answered from the cache when its fingerprint is already there
// — so a cell whose completion was lost to a coordinator crash, or one
// re-dispatched from a dead neighbor, costs a disk read instead of a
// re-simulation (the coordinator counts these as fleet_cells_cache_hit).
// Point several workers at one shared directory and they pool their
// checkpoints; the files are the same ones latserved -cache and a local
// `reproduce -checkpoint` run read and write.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"wdmlat/internal/campaign/store"
	"wdmlat/internal/cli"
	"wdmlat/internal/client"
)

func main() {
	coord := flag.String("coord", "http://127.0.0.1:8080", "coordinator (latserved -fleet) base URL")
	name := flag.String("name", "", "worker label for coordinator logs and /v1/fleet")
	cells := flag.Int("cells", 1, "cells executing concurrently on this worker")
	cache := flag.String("cache", "latworkd-cache", "checkpoint store consulted before executing and populated after (empty disables)")
	quiet := flag.Bool("quiet", false, "suppress per-cell progress lines")
	cli.AddVersionFlag("latworkd", flag.CommandLine)
	flag.Parse()

	ctx, stop := cli.SignalContext()
	defer stop()

	var st *store.Store
	if *cache != "" {
		var err error
		st, err = store.Open(*cache)
		if err != nil {
			fmt.Fprintln(os.Stderr, "latworkd:", err)
			os.Exit(1)
		}
	}
	c := client.New(*coord, client.Options{})
	opts := client.WorkerOptions{Name: *name, Cells: *cells, Store: st}
	if !*quiet {
		opts.OnCell = func(key string, err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "latworkd: cell %s: %v\n", key, err)
				return
			}
			fmt.Fprintf(os.Stderr, "latworkd: cell %s done\n", key)
		}
	}
	fmt.Fprintf(os.Stderr, "latworkd: joining fleet at %s (%d concurrent cells)\n", *coord, *cells)
	err := c.RunWorker(ctx, opts)
	switch {
	case err == nil:
		fmt.Fprintln(os.Stderr, "latworkd: coordinator drained; exiting")
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "latworkd: signal received; exiting")
	default:
		fmt.Fprintln(os.Stderr, "latworkd:", err)
		os.Exit(1)
	}
}
