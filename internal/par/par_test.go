package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, jobs := range []int{0, 1, 2, 7, 64} {
		n := 137
		counts := make([]int32, n)
		ForEach(n, jobs, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("jobs=%d: index %d ran %d times", jobs, i, c)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const jobs = 3
	var inFlight, peak int32
	ForEach(100, jobs, func(int) {
		cur := atomic.AddInt32(&inFlight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
				break
			}
		}
		atomic.AddInt32(&inFlight, -1)
	})
	if peak > jobs {
		t.Fatalf("observed %d concurrent workers, bound is %d", peak, jobs)
	}
}

func TestForEachSerialWhenOneJob(t *testing.T) {
	var order []int
	ForEach(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("jobs=1 must run in index order, got %v", order)
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	ran := false
	ForEach(0, 4, func(int) { ran = true })
	ForEach(-3, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn must not run for n <= 0")
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("expected panic \"boom\", got %v", r)
		}
	}()
	ForEach(50, 4, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
}
