package figures

import (
	"fmt"
	"io"
	"math"
	"strings"

	"wdmlat/internal/campaign"
	"wdmlat/internal/core"
	"wdmlat/internal/frontier"
	"wdmlat/internal/report"
)

// trackLabel names one frontier track the way its probe keys do.
func trackLabel(f *frontier.Frontier) string {
	return campaign.OSSlug(f.OS) + "/" + f.Mode.String()
}

// FrontierKneeTable summarizes each (persona × moderation mode) track: the
// detected livelock knee and the signals that fired at the first saturated
// probe above it.
func FrontierKneeTable(fs []frontier.Frontier, title string) *report.Table {
	t := &report.Table{
		Title:   title,
		Headers: []string{"Track", "Knee", "Probes", "First saturation"},
	}
	for i := range fs {
		f := &fs[i]
		first := "none (censored)"
		for _, p := range f.Probes {
			if p.Verdict.Saturated {
				first = fmt.Sprintf("r%d %v", int64(p.PPS), p.Verdict.Reasons)
				break
			}
		}
		t.AddRow(trackLabel(f), f.KneeLabel(), fmt.Sprintf("%d", len(f.Probes)), first)
	}
	return t
}

// FrontierProbeTable lists every evaluated probe with its saturation
// signals and tail latency — the tabular form of the
// latency-vs-offered-load surface.
func FrontierProbeTable(fs []frontier.Frontier, title string) *report.Table {
	t := &report.Table{
		Title: title,
		Headers: []string{"Track", "Offered pps", "Verdict", "Drop frac",
			"CPU avail", "Backlog", "NIC p99.9 ms", "NIC max ms", "DPC p99.9 ms"},
	}
	for i := range fs {
		f := &fs[i]
		for _, p := range f.Probes {
			r := p.Result
			verdict := "sustainable"
			if p.Verdict.Saturated {
				verdict = fmt.Sprintf("saturated%v", p.Verdict.Reasons)
			}
			nic999, nicMax, dpc999 := "n/a", "n/a", "n/a"
			if r.NicLat != nil && r.NicLat.N() > 0 {
				nic999 = fmt.Sprintf("%.3f", r.Freq.Millis(r.NicLat.Quantile(0.999)))
				nicMax = fmt.Sprintf("%.3f", r.Freq.Millis(r.NicLat.Max()))
			}
			if r.DpcInt != nil && r.DpcInt.N() > 0 {
				dpc999 = fmt.Sprintf("%.3f", r.Freq.Millis(r.DpcInt.Quantile(0.999)))
			}
			t.AddRow(trackLabel(f), fmt.Sprintf("%d", int64(p.PPS)), verdict,
				fmt.Sprintf("%.4f", p.Verdict.DropFrac),
				fmt.Sprintf("%.3f", p.Verdict.CPUAvail),
				fmt.Sprintf("%.1f→%.1f", p.Verdict.BacklogEarly, p.Verdict.BacklogLate),
				nic999, nicMax, dpc999)
		}
	}
	return t
}

// FrontierKneeChart renders the knees as a horizontal log₂-axis ASCII bar
// chart, one bar per track, so the NT-vs-98 headroom gap is visible at a
// glance. Censored tracks end in '>', a knee below the sweep floor renders
// an empty bar.
func FrontierKneeChart(w io.Writer, title string, fs []frontier.Frontier) error {
	lo, hi := math.Inf(1), math.Inf(-1)
	labelW := 0
	for i := range fs {
		for _, p := range fs[i].Probes {
			lo, hi = math.Min(lo, p.PPS), math.Max(hi, p.PPS)
		}
		if n := len(trackLabel(&fs[i])); n > labelW {
			labelW = n
		}
	}
	if math.IsInf(lo, 1) || hi <= lo {
		return nil
	}
	const width = 48
	span := math.Log2(hi / lo)
	scale := func(v float64) int {
		if v <= lo {
			return 0
		}
		n := int(math.Round(width * math.Log2(v/lo) / span))
		if n > width {
			n = width
		}
		return n
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-*s  axis: %d pps .. %d pps, log2 scale\n", labelW, "", int64(lo), int64(hi))
	for i := range fs {
		f := &fs[i]
		n := scale(f.Knee)
		bar := strings.Repeat("#", n) + strings.Repeat(" ", width-n)
		tip := "|"
		if f.Censored {
			tip = ">"
		}
		fmt.Fprintf(&b, "%-*s  |%s%s %s\n", labelW, trackLabel(f), bar, tip, f.KneeLabel())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// FrontierCCDFSeries builds the latency-CCDF-vs-offered-load surface for
// one track: one series per probe, labelled by offered rate, over the
// packet-arrival-to-ISR-service latency histogram. Render with
// report.WriteCSV for external plotting.
func FrontierCCDFSeries(f *frontier.Frontier, loMs, hiMs float64) []report.Series {
	var out []report.Series
	for _, p := range f.Probes {
		if p.Result.NicLat == nil || p.Result.NicLat.N() == 0 {
			continue
		}
		out = append(out, report.NewSeries(fmt.Sprintf("r%d", int64(p.PPS)),
			p.Result.NicLat, loMs, hiMs))
	}
	return out
}

// PacingTable summarizes frame pacing for a set of labelled results (one
// row per cell): the missed-frame counters and the tail of the frame and
// judder distributions. Results without pacing stats are skipped.
func PacingTable(labels []string, results map[string]*core.Result, title string) *report.Table {
	t := &report.Table{
		Title: title,
		Headers: []string{"Cell", "VBlanks", "Releases", "Presented", "Missed",
			"Skipped", "Miss rate", "Max late ms", "Frame p50 ms", "Frame p99.9 ms", "Jitter p99 ms"},
	}
	for _, label := range labels {
		r := results[label]
		if r == nil || r.Pacing == nil {
			continue
		}
		p := r.Pacing
		frame50, frame999, jit99 := "n/a", "n/a", "n/a"
		if p.FrameLat != nil && p.FrameLat.N() > 0 {
			frame50 = fmt.Sprintf("%.3f", r.Freq.Millis(p.FrameLat.Quantile(0.5)))
			frame999 = fmt.Sprintf("%.3f", r.Freq.Millis(p.FrameLat.Quantile(0.999)))
		}
		if p.Jitter != nil && p.Jitter.N() > 0 {
			jit99 = fmt.Sprintf("%.3f", r.Freq.Millis(p.Jitter.Quantile(0.99)))
		}
		t.AddRow(label,
			fmt.Sprintf("%d", p.VBlanks), fmt.Sprintf("%d", p.Releases),
			fmt.Sprintf("%d", p.Completions), fmt.Sprintf("%d", p.Misses),
			fmt.Sprintf("%d", p.Skips), fmt.Sprintf("%.4f", p.MissRate()),
			fmt.Sprintf("%.3f", r.Freq.Millis(p.MaxLateness)),
			frame50, frame999, jit99)
	}
	return t
}

// PacingSeries builds the frame-latency and pacing-jitter distributions of
// one result as plottable series (the per-persona missed-frame
// distribution artifact).
func PacingSeries(r *core.Result, loMs, hiMs float64) []report.Series {
	if r.Pacing == nil {
		return nil
	}
	var out []report.Series
	if h := r.Pacing.FrameLat; h != nil && h.N() > 0 {
		out = append(out, report.NewSeries("frame_latency", h, loMs, hiMs))
	}
	if h := r.Pacing.Jitter; h != nil && h.N() > 0 {
		out = append(out, report.NewSeries("pacing_jitter", h, loMs, hiMs))
	}
	return out
}
