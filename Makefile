# Developer entry points. `make check` is the full gate: vet, build, tests
# with the race detector (the campaign worker pool now runs simulations —
# each with its own kernel thread goroutines — concurrently, so races are a
# first-class failure mode, not a theoretical one).

GO ?= go

.PHONY: all check vet build test race smoke reproduce clean

all: check

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# smoke: a fast end-to-end pass of the full reproduction pipeline on the
# parallel campaign runner. Artifacts land in a scratch directory (not
# results/, which holds the full-length record).
smoke:
	$(GO) run ./cmd/reproduce -duration 5s -jobs 4 -outdir results-smoke

# reproduce: regenerate the checked-in full-length experimental record.
reproduce:
	$(GO) run ./cmd/reproduce

clean:
	rm -rf results-smoke
