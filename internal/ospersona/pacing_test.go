package ospersona

import (
	"testing"

	"wdmlat/internal/hw"
	"wdmlat/internal/kernel"
	"wdmlat/internal/sim"
)

func TestFramePacingIdleMachineMakesEveryDeadline(t *testing.T) {
	m := build(t, NT4, Options{})
	m.StartFramePacing(PacingConfig{})
	m.RunFor(m.MS(2000))
	m.StopFramePacing()

	s, ok := m.FramePacingStats()
	if !ok {
		t.Fatal("FramePacingStats not ok after pacing ran")
	}
	// 2 s at 16.7 ms ≈ 119 vblanks.
	if s.VBlanks < 110 || s.VBlanks > 125 {
		t.Fatalf("vblanks = %d, want ~119", s.VBlanks)
	}
	if s.Releases == 0 || s.Completions == 0 {
		t.Fatalf("releases %d / completions %d, want nonzero", s.Releases, s.Completions)
	}
	// An idle NT machine rendering 40%-load frames at RT-24 must not miss.
	if s.Misses != 0 {
		t.Fatalf("misses = %d on an idle machine, want 0", s.Misses)
	}
	if s.FrameLat.N() != s.Completions {
		t.Fatalf("frame-latency samples %d != completions %d", s.FrameLat.N(), s.Completions)
	}
	if s.Jitter.N() != s.Completions-1 {
		t.Fatalf("jitter samples %d, want completions-1 = %d", s.Jitter.N(), s.Completions-1)
	}
	// Present-to-present spacing on an idle machine tracks the raster: the
	// worst jitter should be well under a millisecond.
	if max := s.Jitter.Max(); max > m.MS(1) {
		t.Fatalf("idle-machine jitter max %v cycles > 1 ms", max)
	}
}

func TestFramePacingMissesUnderSchedulerLock(t *testing.T) {
	m := build(t, Win98, Options{})
	m.StartFramePacing(PacingConfig{})
	// Inject long scheduler-locked windows mid-run: vblank ISR/DPC still
	// run, but the presentation thread cannot be dispatched, so frames
	// miss (the Win98 failure mode of §4.1).
	for i := 1; i <= 20; i++ {
		d := sim.Cycles(i) * m.MS(100)
		m.Eng.After(d, "test-lock", func(sim.Time) {
			m.Kernel.InjectEpisode(kernel.LockScheduler, m.MS(40), "VMM", "_TestLock")
		})
	}
	m.RunFor(m.MS(2500))
	m.StopFramePacing()

	s, _ := m.FramePacingStats()
	if s.Misses == 0 {
		t.Fatal("40 ms scheduler locks every 100 ms must miss 16.7 ms frames")
	}
	if s.Skips == 0 {
		t.Fatal("a >2-frame stall must skip at least one release")
	}
	if s.MaxLateness < m.MS(10) {
		t.Fatalf("max lateness %v cycles, want >= 10 ms worth", s.MaxLateness)
	}
}

func TestFramePacingRestartAndValidation(t *testing.T) {
	m := build(t, NT4, Options{})
	m.StartFramePacing(PacingConfig{})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double StartFramePacing should panic")
			}
		}()
		m.StartFramePacing(PacingConfig{})
	}()
	m.RunFor(m.MS(100))
	m.StopFramePacing()
	m.StopFramePacing() // idempotent

	if _, ok := m.FramePacingStats(); !ok {
		t.Fatal("stats should survive stop")
	}
	fresh := build(t, NT4, Options{Seed: 2})
	if _, ok := fresh.FramePacingStats(); ok {
		t.Fatal("stats ok on a machine that never paced")
	}
}

func TestNICModerationOptionsWireThrough(t *testing.T) {
	def := build(t, NT4, Options{})
	if def.NIC.Moderation() != hw.ModeratePerWindow {
		t.Fatal("default machine must keep per-window moderation")
	}
	itr := build(t, NT4, Options{Seed: 3, NICModeration: hw.ModerateITR})
	if itr.NIC.Moderation() != hw.ModerateITR || itr.NIC.Gap() != us(250) {
		t.Fatalf("ITR machine: mode %v gap %d, want itr/us(250)", itr.NIC.Moderation(), itr.NIC.Gap())
	}
	ad := build(t, NT4, Options{Seed: 4, NICModeration: hw.ModerateAdaptive, NICGap: us(1600)})
	if ad.NIC.Moderation() != hw.ModerateAdaptive || ad.NIC.Gap() != us(100) {
		t.Fatalf("adaptive machine: mode %v gap %d, want adaptive starting at us(100)", ad.NIC.Moderation(), ad.NIC.Gap())
	}
}

func TestStormAccountingChargesPerOSIndication(t *testing.T) {
	m := build(t, Win98, Options{})
	hist := m.EnableStormAccounting()
	if m.EnableStormAccounting() != hist {
		t.Fatal("EnableStormAccounting must be idempotent")
	}
	for i := 0; i < 10; i++ {
		d := sim.Cycles(i) * m.MS(1)
		m.Eng.After(d, "test-pkt", func(sim.Time) { m.StormPacket(1460) })
	}
	m.RunFor(m.MS(50))
	if hist.N() != 10 {
		t.Fatalf("nic latency samples = %d, want 10", hist.N())
	}
	if m.NIC.Delivered() != 10 {
		t.Fatalf("delivered = %d, want 10", m.NIC.Delivered())
	}
}
