package server

// Durability suite for the admission journal: replay/compaction unit
// tests, crash-boundary coordinator behavior (pre-restart straggler
// completions land as duplicates), and the headline restart property —
// a server killed mid-campaign re-admits the journaled campaign and
// serves bytes identical to an uninterrupted run, replaying finished
// cells from the checkpoint store instead of re-executing them.

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wdmlat/internal/api"
	"wdmlat/internal/campaign"
	"wdmlat/internal/campaign/store"
	"wdmlat/internal/client"
	"wdmlat/internal/core"
	"wdmlat/internal/metrics"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/workload"
)

// journalSpec builds a minimal valid campaign spec whose cell keys embed
// name, so distinct specs get distinct content addresses.
func journalSpec(name string, cells int) *api.CampaignSpec {
	cfg := core.RunConfig{OS: ospersona.NT4, Workload: workload.Business, Duration: 150 * time.Millisecond}
	spec := &api.CampaignSpec{BaseSeed: 29}
	for i := 0; i < cells; i++ {
		spec.Cells = append(spec.Cells, api.CellSpec{
			Key:    fmt.Sprintf("nt4/business/%s/%d", name, i),
			Config: cfg,
		})
	}
	return spec
}

func openJournal(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("opening journal: %v", err)
	}
	return j
}

// TestJournalReplayAndCompaction: finished campaigns and duplicate merges
// disappear across a reopen; live campaigns and the merged set survive,
// and the reopened file holds exactly the live records.
func TestJournalReplayAndCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	specA, specB := journalSpec("a", 1), journalSpec("b", 1)
	idA, idB := api.CampaignID(specA), api.CampaignID(specB)

	j1 := openJournal(t, path)
	j1.Campaign(idA, specA)
	j1.Campaign(idB, specB)
	j1.Merged("fp1")
	j1.Merged("fp2")
	j1.Merged("fp1") // duplicate: must not appear twice after replay
	j1.Finished(idA, api.StateDone)
	j1.Finished(idB, api.StateRunning) // non-terminal: must not close B
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openJournal(t, path)
	st := j2.State()
	if len(st.Campaigns) != 1 || st.Campaigns[0].ID != idB {
		t.Fatalf("live campaigns = %+v, want exactly %s", st.Campaigns, idB)
	}
	if got, want := st.Merged, []string{"fp1", "fp2"}; len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("merged = %v, want %v", st.Merged, want)
	}
	// Compaction rewrote the file to the live records only: one campaign,
	// two merged fingerprints.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 3 {
		t.Fatalf("compacted journal has %d records, want 3:\n%s", lines, data)
	}

	// The compacted journal is still appendable: closing B empties it.
	j2.Finished(idB, api.StateCancelled)
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3 := openJournal(t, path)
	defer j3.Close()
	if st := j3.State(); len(st.Campaigns) != 0 || len(st.Merged) != 2 {
		t.Fatalf("after closing all campaigns: %+v", st)
	}
}

// TestJournalToleratesTruncatedTail: a crash mid-append leaves a torn
// final record; replay keeps everything before it and the journal stays
// usable.
func TestJournalToleratesTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	spec := journalSpec("torn", 1)
	id := api.CampaignID(spec)

	j1 := openJournal(t, path)
	j1.Campaign(id, spec)
	j1.Merged("fp1")
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"merged","fp":"fp-lost-to-the-cra`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openJournal(t, path)
	st := j2.State()
	if len(st.Campaigns) != 1 || st.Campaigns[0].ID != id {
		t.Fatalf("campaigns after torn tail = %+v", st.Campaigns)
	}
	if len(st.Merged) != 1 || st.Merged[0] != "fp1" {
		t.Fatalf("merged after torn tail = %v", st.Merged)
	}
	// Appends after recovery land cleanly.
	j2.Merged("fp2")
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3 := openJournal(t, path)
	defer j3.Close()
	if st := j3.State(); len(st.Merged) != 2 {
		t.Fatalf("merged after recovery append = %v", st.Merged)
	}
}

// TestJournalNilReceiverIsSafe: the disabled journal (nil *Journal, as a
// cacheless server runs with) is a no-op on every method.
func TestJournalNilReceiverIsSafe(t *testing.T) {
	var j *Journal
	j.Campaign("id", journalSpec("nil", 1))
	j.Finished("id", api.StateDone)
	j.Merged("fp")
	j.Instrument(metrics.NewRegistry())
	if st := j.State(); len(st.Campaigns) != 0 || len(st.Merged) != 0 {
		t.Fatalf("nil journal state = %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCoordinatorSeededWithJournaledMerges crosses the crash boundary at
// the coordinator: a cell merged before the crash is journaled; after a
// restart the new coordinator, seeded from the replayed journal, answers
// the straggler's retried completion as an idempotent duplicate — and
// counts its cache-hit flag — instead of 410ing a result it already owns.
func TestCoordinatorSeededWithJournaledMerges(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j1 := openJournal(t, path)
	reg1 := metrics.NewRegistry()
	co1 := NewCoordinator(CoordinatorOptions{LeaseTTL: 10 * time.Second, Metrics: reg1, Journal: j1})

	out := startCell(context.Background(), co1, 7, "nt4/business/restart/0", cellConfig(time.Millisecond))
	waitFor(t, "cell enqueued", func() bool { return co1.Status().Pending == 1 })
	w, _ := co1.Register("first-life")
	resp, ok := co1.Lease(w.WorkerID, 1)
	if !ok || len(resp.Leases) != 1 {
		t.Fatalf("lease: ok=%v leases=%d", ok, len(resp.Leases))
	}
	l := resp.Leases[0]
	if disp, err := co1.Complete(w.WorkerID, api.CompleteRequest{Fingerprint: l.Fingerprint, Result: fakePayload(t, l)}); disp != CompleteMerged {
		t.Fatalf("complete = %v (%v), want merged", disp, err)
	}
	if o := <-out; o.err != nil {
		t.Fatalf("waiter: %v", o.err)
	}
	co1.Close()
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": replay the journal, seed a fresh coordinator with it.
	j2 := openJournal(t, path)
	defer j2.Close()
	st := j2.State()
	if len(st.Merged) != 1 || st.Merged[0] != l.Fingerprint {
		t.Fatalf("journaled merges = %v, want [%s]", st.Merged, l.Fingerprint)
	}
	reg2 := metrics.NewRegistry()
	co2 := NewCoordinator(CoordinatorOptions{LeaseTTL: 10 * time.Second, Metrics: reg2, Journal: j2, Merged: st.Merged})
	defer co2.Close()

	// The straggler redelivers from its checkpoint cache (Cached set).
	disp, err := co2.Complete("w-from-before-the-crash", api.CompleteRequest{
		Fingerprint: l.Fingerprint, Result: fakePayload(t, l), Cached: true,
	})
	if disp != CompleteDuplicate || err != nil {
		t.Fatalf("straggler completion = %v (%v), want duplicate", disp, err)
	}
	if got := counter(reg2, MetricFleetDuplicateDone); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricFleetDuplicateDone, got)
	}
	if got := counter(reg2, MetricFleetCellsCacheHit); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricFleetCellsCacheHit, got)
	}
	// An unjournaled fingerprint is still unknown — seeding must not
	// blanket-accept.
	if disp, _ := co2.Complete("w", api.CompleteRequest{Fingerprint: strings.Repeat("ef", 32), Result: fakePayload(t, l)}); disp != CompleteUnknown {
		t.Fatalf("unknown fingerprint = %v, want unknown", disp)
	}
}

// resumeFakeResult is the pure cell executor shared by the "crashed"
// server, the restarted server and the local reference run — identical
// configs produce identical results, so byte-identity is checkable.
func resumeFakeResult(cfg core.RunConfig) *core.Result {
	return &core.Result{Config: cfg, OSName: "resume-fake", Samples: cfg.Seed%100_000 + 1}
}

// localResumeBytes runs spec through the campaign runner with the same
// pure executor and returns the reference result stream.
func localResumeBytes(t *testing.T, spec *api.CampaignSpec) []byte {
	t.Helper()
	run := campaign.New(campaign.Options{BaseSeed: spec.Seed(), Jobs: 1, Execute: resumeFakeResult})
	cells := make([]campaign.Cell, len(spec.Cells))
	for i, c := range spec.Cells {
		cells[i] = campaign.Cell{Key: c.Key, Config: c.Config}
	}
	run.Submit(cells...)
	var buf bytes.Buffer
	for _, c := range spec.Cells {
		res, err := run.Result(c.Key)
		if err != nil {
			t.Fatalf("local cell %q: %v", c.Key, err)
		}
		if err := core.EncodeResult(&buf, res); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestServerResumesJournaledCampaign is the tentpole restart property: a
// server dies mid-campaign (simulated by abandoning it un-Closed, exactly
// what SIGKILL leaves behind), and its successor — same cache directory,
// same journal — re-admits the campaign on construction, replays the
// finished cell from the checkpoint store, executes the rest, and serves
// bytes identical to an uninterrupted local run.
func TestServerResumesJournaledCampaign(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal")
	spec := journalSpec("resume", 4)
	id := api.CampaignID(spec)
	want := localResumeBytes(t, spec)

	// First incarnation: cell 0 completes and checkpoints, cell 1 blocks
	// "forever" (until the crash), cells 2-3 never start (Jobs: 1).
	release := make(chan struct{})
	var calls atomic.Int32
	blockingExec := func(cfg core.RunConfig) *core.Result {
		if calls.Add(1) > 1 {
			<-release
		}
		return resumeFakeResult(cfg)
	}
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j1 := openJournal(t, jpath)
	reg1 := metrics.NewRegistry()
	srv1 := New(Options{Jobs: 1, Store: st1, Metrics: reg1, Journal: j1, Execute: blockingExec})
	ts1 := httptest.NewServer(srv1.Handler())

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c1 := client.New(ts1.URL, client.Options{})
	if _, err := c1.Submit(ctx, spec); err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitFor(t, "first cell done, second executing", func() bool {
		status, err := c1.Status(ctx, id)
		return err == nil && status.Done >= 1 && calls.Load() >= 2
	})

	// "Crash": the listener goes away and the server is abandoned with its
	// executor still wedged — never Closed, like a killed process. The
	// cleanup below unblocks it only after the successor has finished, and
	// its late journal appends land on the compacted-away old file inode.
	ts1.Close()
	t.Cleanup(func() {
		close(release)
		srv1.Close()
		j1.Close()
	})

	j2 := openJournal(t, jpath)
	defer j2.Close()
	if st := j2.State(); len(st.Campaigns) != 1 || st.Campaigns[0].ID != id {
		t.Fatalf("journal after crash = %+v, want live campaign %s", st.Campaigns, id)
	}
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := metrics.NewRegistry()
	st2.Instrument(reg2)
	srv2 := New(Options{Jobs: 1, Store: st2, Metrics: reg2, Journal: j2, Execute: resumeFakeResult})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	// No re-submission: the resumed job must already exist to watch.
	c2 := client.New(ts2.URL, client.Options{})
	status, err := c2.Watch(ctx, id, nil)
	if err != nil {
		t.Fatalf("watching resumed campaign: %v", err)
	}
	if status.State != api.StateDone {
		t.Fatalf("resumed campaign finished %s (%s), want done", status.State, status.Error)
	}
	got, err := c2.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs from uninterrupted local run (%d vs %d bytes)", len(got), len(want))
	}

	if got := counter(reg2, MetricResumed); got != 1 {
		t.Errorf("%s = %d, want 1", MetricResumed, got)
	}
	if got := counter(reg2, MetricSubmitted); got != 0 {
		t.Errorf("%s = %d, want 0 (resume is not a submission)", MetricSubmitted, got)
	}
	// Cell 0 replayed from its pre-crash checkpoint; cells 1-3 executed.
	if got := counter(reg2, campaign.MetricCheckpointHits); got != 1 {
		t.Errorf("%s = %d, want 1", campaign.MetricCheckpointHits, got)
	}
	if got := counter(reg2, MetricCellsExec); got != 3 {
		t.Errorf("%s = %d, want 3", MetricCellsExec, got)
	}
}

// TestServerDoesNotResumeFinishedCampaigns: terminal outcomes — done and
// user-cancelled — close their journal entries, so a restart re-admits
// nothing. Only a shutdown/crash leaves entries open.
func TestServerDoesNotResumeFinishedCampaigns(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal")
	doneSpec := journalSpec("done", 1)
	cancelSpec := journalSpec("cancel", 2)
	// Marker duration: only cancelSpec's cells block, so the done campaign
	// sails through while the cancel campaign wedges mid-flight.
	blockDur := 151 * time.Millisecond
	for i := range cancelSpec.Cells {
		cancelSpec.Cells[i].Config.Duration = blockDur
	}
	release := make(chan struct{})
	var blocked atomic.Int32
	exec := func(cfg core.RunConfig) *core.Result {
		if cfg.Duration == blockDur {
			blocked.Add(1)
			<-release
		}
		return resumeFakeResult(cfg)
	}

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j1 := openJournal(t, jpath)
	srv := New(Options{Jobs: 1, Store: st, Metrics: metrics.NewRegistry(), Journal: j1, Execute: exec})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c := client.New(ts.URL, client.Options{})
	if status, err := c.Watch(ctx, mustSubmit(t, ctx, c, doneSpec), nil); err != nil || status.State != api.StateDone {
		t.Fatalf("done campaign: %+v, %v", status, err)
	}

	cancelID := mustSubmit(t, ctx, c, cancelSpec)
	waitFor(t, "cancel campaign wedged in its first cell", func() bool { return blocked.Load() >= 1 })
	if _, err := c.Cancel(ctx, cancelID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	close(release) // the running cell drains; the queued one resolves cancelled
	if status, err := c.Watch(ctx, cancelID, nil); err != nil || status.State != api.StateCancelled {
		t.Fatalf("cancelled campaign: %+v, %v", status, err)
	}

	srv.Close()
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := openJournal(t, jpath)
	defer j2.Close()
	if state := j2.State(); len(state.Campaigns) != 0 {
		t.Fatalf("journal still holds %+v after both campaigns ended", state.Campaigns)
	}
}

func mustSubmit(t *testing.T, ctx context.Context, c *client.Client, spec *api.CampaignSpec) string {
	t.Helper()
	status, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return status.ID
}
