package sim

import (
	"container/heap"
	"testing"
)

// Differential oracle for the timing wheel: a deliberately naive reference
// engine — a container/heap priority queue over (when, seq) with the same
// observable contract (Step, RunUntil batching, Cancel, Reschedule, FIFO at
// one instant) — is driven through identical random scripts, and the two
// dispatch traces must agree entry for entry on (time, seq, label). The
// wheel's cascades, carry bumps and overflow migrations are invisible to
// the trace, which is exactly the point: they must be.

type traceEntry struct {
	when  Time
	seq   uint64
	label string
}

type refItem struct {
	when  Time
	seq   uint64
	index int // heap index, -1 once popped or removed
	fn    func(Time)
}

type refQueue []*refItem

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *refQueue) Push(x any) {
	it := x.(*refItem)
	it.index = len(*q)
	*q = append(*q, it)
}
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*q = old[:n-1]
	return it
}

// refEngine is the reference implementation. Its seq counter must advance
// in lockstep with the wheel engine's: both assign one seq per At and one
// per Reschedule, in script order.
type refEngine struct {
	now Time
	seq uint64
	q   refQueue
}

func (r *refEngine) at(t Time, fn func(Time)) *refItem {
	it := &refItem{when: t, seq: r.seq, fn: fn}
	r.seq++
	heap.Push(&r.q, it)
	return it
}

func (r *refEngine) cancel(it *refItem) {
	heap.Remove(&r.q, it.index)
}

func (r *refEngine) reschedule(it *refItem, t Time) {
	it.when = t
	it.seq = r.seq
	r.seq++
	heap.Fix(&r.q, it.index)
}

func (r *refEngine) step() {
	it := heap.Pop(&r.q).(*refItem)
	if it.when > r.now {
		r.now = it.when
	}
	it.fn(r.now)
}

func (r *refEngine) runUntil(t Time) {
	// Re-checking the heap top after every dispatch gives the batching
	// semantics for free: events scheduled mid-batch at or before t —
	// including at the current instant — fire in this same call, in seq
	// order.
	for len(r.q) > 0 && r.q[0].when <= t {
		r.step()
	}
	if r.now < t {
		r.now = t
	}
}

// fuzzDelta draws a delay biased toward the wheel's interesting regimes:
// zero (same-instant FIFO), level 0, the level-1 carry boundary, mid-wheel,
// both sides of the overflow cutoff, and the far future.
func fuzzDelta(rng *RNG) Cycles {
	switch rng.Intn(8) {
	case 0:
		return 0
	case 1:
		return Cycles(rng.Intn(wheelSlots))
	case 2:
		return Cycles(wheelSlots + rng.Intn(1<<16))
	case 3: // straddle the level-1/level-2 boundary
		return Cycles(1<<16 - 2 + rng.Intn(4))
	case 4:
		return Cycles(rng.Intn(int(overflowCutoff)))
	case 5: // just past the cutoff: overflow heap, migrates back soon
		return overflowCutoff + Cycles(rng.Intn(1<<20))
	case 6: // just inside the cutoff: top wheel level
		return overflowCutoff - 1 - Cycles(rng.Intn(1<<10))
	default:
		return Cycles(rng.Intn(1 << 30))
	}
}

var fuzzLabels = [...]string{"zero", "l0", "l1", "carry", "mid", "ovf+", "ovf-", "far"}

// TestWheelMatchesReferenceEngine drives the wheel engine and the reference
// heap engine through the same random At/Cancel/Reschedule/Step/RunUntil
// scripts and requires byte-identical (time, seq, label) dispatch traces.
// Some events spawn a same-or-later-instant child from inside their
// callback, so mid-batch scheduling is exercised on both sides.
func TestWheelMatchesReferenceEngine(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		rng := NewRNG(uint64(trial) + 0x9E3779B9)
		e := NewEngine(1)
		ref := &refEngine{}

		var engTrace, refTrace []traceEntry

		// One live record mirrors one pending event on both sides. The
		// engine callback marks it dead; by the time any later op can pick
		// it, the reference side has dispatched it too (traces are checked
		// to agree), so its heap index is likewise stale on both sides.
		type liveRec struct {
			ev    *Event
			it    *refItem
			seq   uint64
			label string
			dead  bool
		}
		var live []*liveRec

		// scheduleBoth schedules a matched pair at absolute time at. spawn
		// controls whether the callbacks schedule a child (delay drawn once,
		// at schedule time, so both sides agree) when they fire.
		var scheduleBoth func(at Time, label string, spawn bool) *liveRec
		scheduleBoth = func(at Time, label string, spawn bool) *liveRec {
			rec := &liveRec{label: label}
			var childD Cycles
			if spawn {
				childD = Cycles(rng.Intn(512)) // 0 allowed: same-instant child
			}
			rec.ev = e.At(at, label, func(now Time) {
				rec.dead = true
				engTrace = append(engTrace, traceEntry{now, rec.seq, rec.label})
				if spawn {
					cr := &liveRec{label: "child", dead: true} // fire-only
					cr.ev = e.At(now.Add(childD), "child", func(cn Time) {
						engTrace = append(engTrace, traceEntry{cn, cr.seq, "child"})
					})
					cr.seq = cr.ev.seq
				}
			})
			rec.seq = rec.ev.seq
			rec.it = ref.at(at, func(now Time) {
				refTrace = append(refTrace, traceEntry{now, rec.it.seq, rec.label})
				if spawn {
					var cit *refItem
					cit = ref.at(now.Add(childD), func(cn Time) {
						refTrace = append(refTrace, traceEntry{cn, cit.seq, "child"})
					})
				}
			})
			if rec.seq != rec.it.seq {
				t.Fatalf("trial %d: seq skew at schedule: engine %d, reference %d", trial, rec.seq, rec.it.seq)
			}
			return rec
		}

		// pickLive returns a random still-pending record, compacting dead
		// ones out of the slice as it goes (swap-delete keeps it O(1) and,
		// with the shared rng, deterministic per trial).
		pickLive := func() *liveRec {
			for len(live) > 0 {
				i := rng.Intn(len(live))
				rec := live[i]
				if !rec.dead {
					return rec
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			return nil
		}

		for op := 0; op < 3000; op++ {
			if e.Now() != ref.now {
				t.Fatalf("trial %d op %d: clock skew: engine %d, reference %d", trial, op, e.Now(), ref.now)
			}
			if e.Pending() != ref.q.Len() {
				t.Fatalf("trial %d op %d: pending %d, reference %d", trial, op, e.Pending(), ref.q.Len())
			}
			switch r := rng.Intn(100); {
			case r < 40: // schedule
				k := rng.Intn(len(fuzzLabels)) // label class drawn independently of delta
				d := fuzzDelta(rng)
				live = append(live, scheduleBoth(e.Now().Add(d), fuzzLabels[k], rng.Intn(4) == 0))
			case r < 55: // cancel
				if rec := pickLive(); rec != nil {
					if !e.Cancel(rec.ev) {
						t.Fatalf("trial %d op %d: cancel of live event failed", trial, op)
					}
					ref.cancel(rec.it)
					rec.dead = true
				}
			case r < 70: // reschedule, seq reassigned on both sides
				if rec := pickLive(); rec != nil {
					at := e.Now().Add(fuzzDelta(rng))
					e.Reschedule(rec.ev, at)
					ref.reschedule(rec.it, at)
					rec.seq = rec.ev.seq
					if rec.seq != rec.it.seq {
						t.Fatalf("trial %d op %d: seq skew after reschedule", trial, op)
					}
				}
			case r < 85: // single step
				if e.Pending() > 0 {
					e.Step()
					ref.step()
				}
			default: // batched run
				at := e.Now().Add(fuzzDelta(rng))
				e.RunUntil(at)
				ref.runUntil(at)
			}
		}
		// Drain both sides completely.
		for e.Pending() > 0 {
			e.Step()
			ref.step()
		}
		if ref.q.Len() != 0 {
			t.Fatalf("trial %d: reference still holds %d events after engine drained", trial, ref.q.Len())
		}

		if len(engTrace) != len(refTrace) {
			t.Fatalf("trial %d: engine dispatched %d events, reference %d", trial, len(engTrace), len(refTrace))
		}
		for i := range engTrace {
			if engTrace[i] != refTrace[i] {
				t.Fatalf("trial %d: dispatch %d diverges: engine %+v, reference %+v",
					trial, i, engTrace[i], refTrace[i])
			}
		}
	}
}

// TestWheelCancelDuringBatch cancels a later same-instant event from inside
// an earlier callback of the same batch: the victim must not fire, and the
// batch must carry on past the hole.
func TestWheelCancelDuringBatch(t *testing.T) {
	e := NewEngine(1)
	var fired []int
	evs := make([]*Event, 5)
	for i := range evs {
		i := i
		evs[i] = e.At(10, "batch", func(Time) {
			fired = append(fired, i)
			if i == 0 {
				if !e.Cancel(evs[3]) {
					t.Fatal("mid-batch cancel of a pending same-instant event failed")
				}
			}
		})
	}
	e.RunUntil(10)
	want := []int{0, 1, 2, 4}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", e.Pending())
	}
}

// TestWheelSameInstantScheduleDuringBatch schedules at the current instant
// from inside a batch: the child (and its own grandchild) must fire within
// the same RunUntil call, after the previously queued events, in seq order.
func TestWheelSameInstantScheduleDuringBatch(t *testing.T) {
	e := NewEngine(1)
	var fired []string
	e.At(10, "a", func(now Time) {
		fired = append(fired, "a")
		e.At(now, "child", func(cn Time) {
			fired = append(fired, "child")
			e.At(cn, "grandchild", func(Time) {
				fired = append(fired, "grandchild")
			})
		})
	})
	e.At(10, "b", func(Time) { fired = append(fired, "b") })
	e.RunUntil(10)
	want := []string{"a", "b", "child", "grandchild"}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if e.Now() != 10 || e.Pending() != 0 {
		t.Fatalf("now = %d pending = %d, want 10 and 0", e.Now(), e.Pending())
	}
}

// TestWheelRunUntilBoundary checks the inclusive edge: RunUntil(t) fires
// events at exactly t but nothing one cycle later.
func TestWheelRunUntilBoundary(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.At(100, "at", func(now Time) { fired = append(fired, now) })
	e.At(101, "after", func(now Time) { fired = append(fired, now) })
	e.RunUntil(100)
	if len(fired) != 1 || fired[0] != 100 {
		t.Fatalf("after RunUntil(100): fired %v, want [100]", fired)
	}
	if e.Now() != 100 || e.Pending() != 1 {
		t.Fatalf("now = %d pending = %d, want 100 and 1", e.Now(), e.Pending())
	}
	e.RunUntil(101)
	if len(fired) != 2 || fired[1] != 101 {
		t.Fatalf("after RunUntil(101): fired %v, want [100 101]", fired)
	}
}

// TestWheelOverflowCascade covers the far-future path: events beyond the
// overflow cutoff migrate back into the wheel as the clock approaches, fire
// at their exact timestamps in order, and stay cancellable both while in
// the heap and after migrating into the wheel.
func TestWheelOverflowCascade(t *testing.T) {
	e := NewEngine(1)
	var fired []string
	tA := Time(0).Add(overflowCutoff + 10) // overflow heap
	tB := Time(0).Add(overflowCutoff - 1)  // top wheel level, just inside
	e.At(tA, "a", func(now Time) {
		if now != tA {
			t.Fatalf("a fired at %d, want %d", now, tA)
		}
		fired = append(fired, "a")
	})
	e.At(tB, "b", func(now Time) {
		if now != tB {
			t.Fatalf("b fired at %d, want %d", now, tB)
		}
		fired = append(fired, "b")
	})
	e.At(50, "c", func(Time) { fired = append(fired, "c") })

	// d starts in the overflow heap and is cancelled there.
	d := e.At(Time(0).Add(2*overflowCutoff), "d", func(Time) { t.Fatal("cancelled d fired") })
	if !e.Cancel(d) {
		t.Fatal("cancel of overflow-resident event failed")
	}
	// f starts in the overflow heap, migrates into the wheel as the clock
	// closes in, and must still cancel cleanly afterwards.
	tF := Time(0).Add(overflowCutoff + 100)
	f := e.At(tF, "f", func(Time) { t.Fatal("cancelled f fired") })
	e.RunUntil(tF - 50) // a and b (and c) fire; f has migrated by now
	if !e.Cancel(f) {
		t.Fatal("cancel of migrated event failed")
	}
	e.RunUntil(tF + 100)

	want := []string{"c", "b", "a"}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", e.Pending())
	}
}

// TestWheelSteadyStateAllocFree pins the zero-allocation contract across
// every queue regime at once: level-0 ticks, a mid-wheel period that
// cascades through carries, and a far-future period that cycles through the
// overflow heap and back. Once the pool and heap slice are warm, neither
// Step nor batched RunUntil may allocate.
func TestWheelSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	e := NewEngine(1)
	var tick, slow, far func(Time)
	tick = func(Time) { e.After(100, "tick", tick) }
	slow = func(Time) { e.After(70_000, "slow", slow) } // level 2: cascades twice
	far = func(Time) { e.After(overflowCutoff+5, "far", far) }
	e.After(100, "tick", tick)
	e.After(70_000, "slow", slow)
	e.After(overflowCutoff+5, "far", far)
	for i := 0; i < 2000; i++ { // warm the pool and the overflow slice
		e.Step()
	}
	if avg := testing.AllocsPerRun(2000, func() { e.Step() }); avg != 0 {
		t.Fatalf("steady-state Step allocates %v allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { e.RunUntil(e.Now().Add(5_000)) }); avg != 0 {
		t.Fatalf("steady-state RunUntil allocates %v allocs/op, want 0", avg)
	}
}
