//go:build race

package sim

// raceEnabled reports whether the race detector is compiled in; allocation
// tests skip under it because instrumentation adds bookkeeping allocations.
const raceEnabled = true
