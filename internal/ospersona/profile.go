// Package ospersona instantiates the two operating systems under test. The
// kernel mechanics (ISR/DPC/thread hierarchy) are shared — WDM is a common
// driver model — but the two implementations differ enormously in their
// timing behaviour (paper §6: "the two implementations of the Windows
// Driver Model, although functionally compatible, are very different in
// their timing behavior"). Those differences are expressed here as:
//
//   - kernel cost configurations (dispatch, context switch, tick costs),
//   - interference responses: how much interrupt-masked time,
//     scheduler-locked time, DPC work and passive work each kind of
//     workload activity induces,
//   - optional extras: the Plus! 98 virus scanner and the Windows sound
//     schemes whose effects the paper isolates (Figure 5, Table 4).
//
// The calibration targets are the paper's own measurements (Figure 4,
// Table 3); see DESIGN.md §5 and EXPERIMENTS.md for the comparison.
package ospersona

import (
	"wdmlat/internal/cpu"
	"wdmlat/internal/kernel"
	"wdmlat/internal/sim"
)

// OS selects a personality.
type OS int

// The two operating systems of the paper (Table 2), plus the Windows 2000
// Beta the authors "continue to monitor" (§6.1).
const (
	NT4 OS = iota // Windows NT 4.0 SP3
	Win98
	Win2000Beta // "Windows 2000 was previously Windows NT 5.0"
)

// String implements fmt.Stringer.
func (o OS) String() string {
	switch o {
	case NT4:
		return "Windows NT 4.0"
	case Win98:
		return "Windows 98"
	case Win2000Beta:
		return "Windows 2000 Beta"
	default:
		return "OS(?)"
	}
}

// frames is a rotation of module/function attributions for overhead
// episodes; the cause tool samples whichever is on-CPU (§2.3, Table 4).
type frameSet []cpu.Frame

func (f frameSet) pick(r *sim.RNG) cpu.Frame {
	return f[r.Intn(len(f))]
}

// eventResponse describes what one workload activity event induces in the
// OS: probabilistic interrupt-masked and scheduler-locked windows, DPC
// work, and passive-level work-item cycles.
type eventResponse struct {
	// MaskProb/Mask: probability and length of an interrupt-masked window.
	MaskProb float64
	Mask     sim.Dist
	// LockProb/Lock: probability and length of a scheduler-locked window.
	LockProb float64
	Lock     sim.Dist
	// DpcWork: extra cycles executed in the device DPC for this event.
	DpcWork sim.Dist
	// WorkItemProb/WorkItem: passive work queued to the kernel worker
	// (runs at real-time default priority — the NT RT-24 interference).
	WorkItemProb float64
	WorkItem     sim.Dist
}

// Profile is the full behavioural envelope of one OS personality.
type Profile struct {
	OS     OS
	Name   string
	Kernel kernel.Config

	// SupportsLegacyTimerHook reports whether a driver may patch the PIT
	// IDT vector (Windows 9x legacy interface, §2.2). The NT personality
	// refuses: "on Windows NT this would require source code access".
	SupportsLegacyTimerHook bool

	// Responses per activity class.
	FileOp    eventResponse
	UIEvent   eventResponse
	NetBurst  eventResponse // per delivered packet batch
	Frame     eventResponse // per rendered 3D game frame
	PageFault eventResponse // per hard page fault burst
	AudioMix  eventResponse // per audio buffer mixed

	// LockFrames / MaskFrames attribute episodes for the cause tool.
	LockFrames frameSet
	MaskFrames frameSet

	// SoundScheme adds the Plus!-style UI sound processing: every UI event
	// triggers SYSAUDIO/KMIXER work including VMM contiguous-memory
	// allocations at raised IRQL (Table 4).
	SoundScheme eventResponse
	SoundFrames frameSet

	// VirusScanner hooks file operations: long scheduler-locked scans that
	// inflate the 16 ms thread-latency tail by two orders of magnitude
	// (Figure 5).
	VirusScanner eventResponse
	ScanFrames   frameSet

	// Disk geometry.
	DiskSeek          sim.Dist
	DiskBytesPerCycle float64

	// NicIndicate is the per-packet protocol-indication cost charged in the
	// NIC DPC when storm accounting is enabled (EnableStormAccounting). The
	// NDIS 3-style Win98 miniport indicates each packet up through a VxD
	// thunk, roughly doubling the NT figure; NT's NDIS 4 path is leaner and
	// Windows 2000's NDIS 5 slightly leaner again. Non-storm runs keep the
	// PR-1-era flat cost so every existing figure stays byte-identical.
	NicIndicate sim.Cycles
}

// ms converts milliseconds to cycles at the paper's 300 MHz.
func ms(v float64) sim.Cycles { return sim.DefaultFreq.FromMillis(v) }

// us converts microseconds to cycles at 300 MHz.
func us(v float64) sim.Cycles { return sim.DefaultFreq.FromMillis(v / 1000) }

// mix builds a two-component typical/tail mixture: the workhorse shape of
// the Win98 profile (mostly-benign regions with a rare heavy tail).
func mix(typical sim.Dist, tail sim.Dist, tailWeight float64) sim.Dist {
	return sim.NewMixture([]sim.Dist{typical, tail}, []float64{1 - tailWeight, tailWeight})
}

// NT4Profile returns the Windows NT 4.0 personality.
//
// NT's execution levels are fully preemptible (§4.1): interrupt-masked
// windows are short and bounded, scheduler-locked windows are the
// dispatcher lock (tens of microseconds, rarely ~1 ms), and the dominant
// real-time interference is (a) DPC work from device drivers and (b)
// passive work items executing on the worker thread at real-time default
// priority — which is invisible to a priority-28 thread and very visible to
// a priority-24 one (§4.2).
func NT4Profile() *Profile {
	p := &Profile{
		OS:   NT4,
		Name: "Windows NT 4.0 SP3",
		Kernel: kernel.Config{
			Name:          "Windows NT 4.0 SP3",
			IsrEntry:      sim.Uniform{Lo: us(1.5), Hi: us(3)},
			IsrExit:       sim.Uniform{Lo: us(1), Hi: us(2)},
			DpcDispatch:   sim.Uniform{Lo: us(1.5), Hi: us(3)},
			ClockTick:     sim.Uniform{Lo: us(3), Hi: us(6)},
			TimerFire:     sim.Uniform{Lo: us(1), Hi: us(3)},
			ContextSwitch: sim.LogNormal{Mu: 8.6, Sigma: 0.5, Cap: us(60)}, // ~18 µs median, cache tail
			Quantum:       ms(12),
			// The WDM work-item queue is serviced at real-time default
			// priority (paper §4.2) — the load-bearing constant for the
			// NT RT-24 vs RT-28 gap.
			WorkerPriority: kernel.RealtimeDefault,
			PriorityBoost:  true,
		},
		SupportsLegacyTimerHook: false,

		FileOp: eventResponse{
			MaskProb: 0.15, Mask: sim.LogNormal{Mu: 7.0, Sigma: 0.8, Cap: us(150)}, // ~4 µs typ
			LockProb: 0.3, Lock: sim.LogNormal{Mu: 8.0, Sigma: 0.9, Cap: ms(1.2)}, // dispatcher/FS locks
			DpcWork:      sim.LogNormal{Mu: 8.3, Sigma: 0.7, Cap: ms(0.4)},
			WorkItemProb: 0.25, WorkItem: sim.LogNormal{Mu: 12.6, Sigma: 1.0, Cap: ms(9)}, // NTFS post-processing
		},
		UIEvent: eventResponse{
			LockProb: 0.2, Lock: sim.LogNormal{Mu: 7.6, Sigma: 0.8, Cap: us(600)},
			DpcWork:      sim.Constant(0),
			WorkItemProb: 0.05, WorkItem: sim.LogNormal{Mu: 11.8, Sigma: 0.9, Cap: ms(5)},
		},
		NetBurst: eventResponse{
			MaskProb: 0.1, Mask: sim.LogNormal{Mu: 7.0, Sigma: 0.7, Cap: us(120)},
			DpcWork:      sim.LogNormal{Mu: 9.2, Sigma: 0.8, Cap: ms(0.8)},                // NDIS per-batch
			WorkItemProb: 0.35, WorkItem: sim.LogNormal{Mu: 12.2, Sigma: 1.0, Cap: ms(8)}, // TCP/IP passive work
		},
		Frame: eventResponse{
			MaskProb: 0.08, Mask: sim.LogNormal{Mu: 7.4, Sigma: 0.9, Cap: us(400)},
			LockProb: 0.1, Lock: sim.LogNormal{Mu: 8.2, Sigma: 0.8, Cap: ms(1.5)},
			DpcWork: sim.LogNormal{Mu: 9.6, Sigma: 0.9, Cap: ms(1.2)}, // AGP/sound DPCs
		},
		PageFault: eventResponse{
			LockProb: 0.5, Lock: sim.LogNormal{Mu: 8.8, Sigma: 0.9, Cap: ms(2)},
			DpcWork:      sim.LogNormal{Mu: 8.0, Sigma: 0.6, Cap: us(200)},
			WorkItemProb: 0.2, WorkItem: sim.LogNormal{Mu: 12.0, Sigma: 0.9, Cap: ms(6)},
		},
		AudioMix: eventResponse{
			DpcWork: sim.LogNormal{Mu: 9.0, Sigma: 0.5, Cap: us(500)},
		},

		LockFrames: frameSet{
			{Module: "NTOSKRNL", Function: "_KiDispatcherLock"},
			{Module: "NTFS", Function: "_NtfsCommonRead"},
			{Module: "NTOSKRNL", Function: "_MmAccessFault"},
			{Module: "WIN32K", Function: "_UserSessionSwitch"},
		},
		MaskFrames: frameSet{
			{Module: "HAL", Function: "_HalpClockInterruptStub"},
			{Module: "NTOSKRNL", Function: "_KiAcquireSpinLock"},
		},

		// The sound scheme and virus scanner belong to the Win98 story;
		// on NT the equivalents are mild (NT 4.0 shipped neither by
		// default). They remain configurable for ablation.
		SoundScheme: eventResponse{
			DpcWork:  sim.LogNormal{Mu: 9.0, Sigma: 0.6, Cap: us(600)},
			LockProb: 0.1, Lock: sim.LogNormal{Mu: 8.4, Sigma: 0.7, Cap: ms(1.5)},
		},
		SoundFrames: frameSet{
			{Module: "SYSAUDIO", Function: "_ProcessTopologyConnection"},
			{Module: "KMIXER", Function: ""},
		},
		VirusScanner: eventResponse{
			LockProb: 0.1, Lock: sim.LogNormal{Mu: 10.8, Sigma: 0.8, Cap: ms(4)},
		},
		ScanFrames: frameSet{{Module: "VSCAN", Function: "_ScanFile"}},

		DiskSeek:          sim.LogNormal{Mu: 14.4, Sigma: 0.5, Cap: ms(25)}, // ~6 ms median
		DiskBytesPerCycle: 0.055,                                            // ~16.5 MB/s UDMA

		NicIndicate: us(6), // NDIS 4 per-packet indication
	}
	return p
}

// Win98Profile returns the Windows 98 personality.
//
// Windows 98 carries the legacy Windows 95 schedulers underneath WDM
// (§4.1 footnote): long interrupt-masked windows in VxDs, and — dominating
// everything — scheduler-locked regions (Win16 lock, VMM services, paging
// through _mmFindContig/_mmCalcFrameBadness) during which interrupts and
// DPCs run but no thread is dispatched. The calibration reproduces Table 3:
// interrupt latency tails of ~1.6/6.3/12.2/3.5 ms (business/workstation/
// games/web, weekly) and hardware-interrupt-to-thread tails of ~33/31/84/84
// ms, an order of magnitude above the same driver's DPC service.
func Win98Profile() *Profile {
	p := &Profile{
		OS:   Win98,
		Name: "Windows 98 (4.10.1998)",
		Kernel: kernel.Config{
			Name:     "Windows 98",
			IsrEntry: sim.Uniform{Lo: us(2), Hi: us(5)},
			IsrExit:  sim.Uniform{Lo: us(1.5), Hi: us(3)},
			// DPC dispatch through NTKERN's emulation layer is slower.
			DpcDispatch:    sim.Uniform{Lo: us(3), Hi: us(8)},
			ClockTick:      sim.Uniform{Lo: us(4), Hi: us(9)},
			TimerFire:      sim.Uniform{Lo: us(2), Hi: us(5)},
			ContextSwitch:  sim.LogNormal{Mu: 8.9, Sigma: 0.6, Cap: us(120)}, // ~24 µs median
			Quantum:        ms(20),
			WorkerPriority: kernel.RealtimeDefault,
			PriorityBoost:  true,
		},
		SupportsLegacyTimerHook: true,

		FileOp: eventResponse{
			// VFAT/IOS VxD paths run with interrupts off far longer than
			// NT's spinlocked equivalents.
			MaskProb: 0.25, Mask: sim.LogNormal{Mu: 9.2, Sigma: 1.0, Cap: ms(1.4)}, // ~33 µs typ, 1.4 ms tail
			LockProb: 0.45, Lock: mix(
				sim.LogNormal{Mu: 10.0, Sigma: 0.9, Cap: ms(6)},
				sim.Pareto{Xm: ms(4), Alpha: 1.5, Cap: ms(33)},
				0.00005),
			DpcWork:      sim.LogNormal{Mu: 8.8, Sigma: 0.8, Cap: ms(0.6)},
			WorkItemProb: 0.15, WorkItem: sim.LogNormal{Mu: 12.2, Sigma: 0.9, Cap: ms(6)},
		},
		UIEvent: eventResponse{
			// The Win16 lock: GUI work blocks rescheduling.
			LockProb: 0.5, Lock: mix(
				sim.LogNormal{Mu: 9.6, Sigma: 0.9, Cap: ms(5)},
				sim.Pareto{Xm: ms(5), Alpha: 1.5, Cap: ms(35)},
				0.00001),
			DpcWork: sim.Constant(0),
		},
		NetBurst: eventResponse{
			MaskProb: 0.2, Mask: sim.LogNormal{Mu: 9.6, Sigma: 1.1, Cap: ms(3.5)},
			LockProb: 0.3, Lock: mix(
				sim.LogNormal{Mu: 11.2, Sigma: 1.0, Cap: ms(10)},
				sim.Pareto{Xm: ms(8), Alpha: 1.4, Cap: ms(80)},
				0.0025),
			DpcWork: sim.LogNormal{Mu: 9.4, Sigma: 0.9, Cap: ms(1.0)},
		},
		Frame: eventResponse{
			// Display and sound VxDs mask interrupts per frame; games show
			// the worst Win98 interrupt latency in Table 3 (12.2 ms).
			MaskProb: 0.3, Mask: mix(
				sim.LogNormal{Mu: 9.6, Sigma: 0.9, Cap: ms(2.5)},
				sim.Pareto{Xm: ms(2.5), Alpha: 1.4, Cap: ms(12.5)},
				0.001),
			LockProb: 0.35, Lock: mix(
				sim.LogNormal{Mu: 10.6, Sigma: 1.0, Cap: ms(12)},
				sim.Pareto{Xm: ms(8), Alpha: 1.4, Cap: ms(85)},
				0.001),
			DpcWork: sim.LogNormal{Mu: 10.2, Sigma: 0.9, Cap: ms(2.0)},
		},
		PageFault: eventResponse{
			LockProb: 0.7, Lock: mix(
				sim.LogNormal{Mu: 10.8, Sigma: 0.9, Cap: ms(10)},
				sim.Pareto{Xm: ms(6), Alpha: 1.5, Cap: ms(25)},
				0.003),
			MaskProb: 0.1, Mask: mix(
				sim.LogNormal{Mu: 9.4, Sigma: 1.0, Cap: ms(2)},
				sim.Pareto{Xm: ms(2), Alpha: 1.5, Cap: ms(6.5)},
				0.008),
			DpcWork: sim.LogNormal{Mu: 8.4, Sigma: 0.7, Cap: us(400)},
		},
		AudioMix: eventResponse{
			DpcWork: sim.LogNormal{Mu: 9.6, Sigma: 0.6, Cap: ms(0.8)},
		},

		LockFrames: frameSet{
			{Module: "VMM", Function: "_mmCalcFrameBadness"},
			{Module: "VMM", Function: "_mmFindContig"},
			{Module: "VMM", Function: "@KfLowerIrqI"},
			{Module: "NTKERN", Function: "_ExpAllocatePool"},
			{Module: "VFAT", Function: "_ReadWrite"},
			{Module: "VWIN32", Function: "_Win16Mutex"},
		},
		MaskFrames: frameSet{
			{Module: "VXD", Function: "_IOS_CritSection"},
			{Module: "VMM", Function: "@KfRaiseIrqI"},
			{Module: "ESDI_506", Function: "_DiskVxD"},
		},

		// The default Windows sound scheme: every dialog popup and walking
		// menu traversal plays a sound through SYSAUDIO/KMIXER, allocating
		// contiguous audio frames in the VMM at raised IRQL (Table 4).
		SoundScheme: eventResponse{
			DpcWork:  sim.LogNormal{Mu: 9.8, Sigma: 0.7, Cap: ms(1.2)},
			LockProb: 0.35, Lock: mix(
				sim.LogNormal{Mu: 10.9, Sigma: 0.8, Cap: ms(9)},
				sim.Pareto{Xm: ms(8), Alpha: 1.6, Cap: ms(30)},
				0.01),
			MaskProb: 0.1, Mask: sim.LogNormal{Mu: 9.0, Sigma: 0.8, Cap: ms(1.0)},
		},
		SoundFrames: frameSet{
			{Module: "SYSAUDIO", Function: "_ProcessTopologyConnection"},
			{Module: "KMIXER", Function: ""},
			{Module: "VMM", Function: "_mmCalcFrameBadness"},
			{Module: "VMM", Function: "_mmFindContig"},
			{Module: "NTKERN", Function: "_ExpAllocatePool"},
		},

		// The Plus! 98 virus scanner: file-operation hooks that hold the
		// scheduler for ~16 ms scans. "With the virus scanner on we would
		// expect a 16 millisecond thread latency about every 1000 waits"
		// (§4.3) versus one in 165,000 without.
		VirusScanner: eventResponse{
			LockProb: 0.03, Lock: mix(
				sim.LogNormal{Mu: 11.3, Sigma: 0.6, Cap: ms(12)},
				sim.Uniform{Lo: ms(14), Hi: ms(22)},
				0.25),
		},
		ScanFrames: frameSet{
			{Module: "VSCAN", Function: "_OnFileOpen"},
			{Module: "VSCAN", Function: "_ScanBuffer"},
		},

		DiskSeek:          sim.LogNormal{Mu: 14.4, Sigma: 0.5, Cap: ms(25)},
		DiskBytesPerCycle: 0.055,

		NicIndicate: us(12), // NDIS 3 indication through the VxD thunk
	}
	return p
}

// Win2000BetaProfile returns the Windows 2000 Beta personality — the §6.1
// future-work target ("We have ... continue to monitor the performance of
// Beta releases of Windows 2000").
//
// Windows 2000 keeps the NT architecture (same preemptible levels, same
// work-item worker at real-time default priority) but as a Beta carries
// more debug checking: slightly higher fixed costs, plus new subsystems
// (WDM audio via KMixer everywhere, Plug and Play re-enumeration bursts)
// that widen the DPC and lock tails relative to NT 4.0 while staying an
// order of magnitude inside Windows 98's.
func Win2000BetaProfile() *Profile {
	p := NT4Profile()
	p.OS = Win2000Beta
	p.Name = "Windows 2000 Beta 2 (NT 5.0)"
	p.Kernel.Name = p.Name
	// Checked-build overheads: ~20-40% higher dispatch costs.
	p.Kernel.IsrEntry = sim.Uniform{Lo: us(2), Hi: us(4)}
	p.Kernel.DpcDispatch = sim.Uniform{Lo: us(2), Hi: us(4)}
	p.Kernel.ContextSwitch = sim.LogNormal{Mu: 8.8, Sigma: 0.5, Cap: us(80)}
	// WDM audio (KMixer) is now the default path: more DPC work per mix.
	p.AudioMix.DpcWork = sim.LogNormal{Mu: 9.4, Sigma: 0.6, Cap: ms(0.8)}
	// PnP re-enumeration: occasional longer masked windows on file/config
	// activity than NT 4.0, still bounded well under a millisecond.
	p.FileOp.MaskProb = 0.2
	p.FileOp.Mask = sim.LogNormal{Mu: 7.4, Sigma: 0.9, Cap: us(350)}
	// Heavier passive-work plumbing (the worker interference grows).
	p.FileOp.WorkItemProb = 0.35
	p.NetBurst.WorkItemProb = 0.45
	p.NicIndicate = us(5) // NDIS 5 trims the indication path slightly
	p.LockFrames = frameSet{
		{Module: "NTOSKRNL", Function: "_KiDispatcherLock"},
		{Module: "NTFS", Function: "_NtfsCommonRead"},
		{Module: "PNPMGR", Function: "_PipEnumerateDevice"},
		{Module: "KMIXER", Function: "_MixBuffers"},
	}
	return p
}

// ProfileFor returns the personality for an OS.
func ProfileFor(os OS) *Profile {
	switch os {
	case NT4:
		return NT4Profile()
	case Win98:
		return Win98Profile()
	case Win2000Beta:
		return Win2000BetaProfile()
	default:
		panic("ospersona: unknown OS")
	}
}
