// Package kernel implements a discrete-event model of the Windows Driver
// Model execution hierarchy that the paper measures (§4.1):
//
//  1. Interrupt Service Routines, executing at device IRQLs (DIRQLs) up to
//     the clock level, preemptible only by higher DIRQLs,
//  2. Deferred Procedure Calls, drained FIFO from a single queue with three
//     importances, running below all ISRs; DPCs cannot preempt DPCs,
//  3. Real-time priority threads (Win32 priorities 16–31, default 24),
//  4. Normal priority threads (1–15),
//
// plus the machinery the measurement tools need: dispatcher objects
// (synchronization/notification events, semaphores, mutexes), single-shot
// and periodic timers processed by the clock-tick ISR, a kernel work-item
// queue serviced by a real-time default-priority worker thread, and IRP
// completion back to a control application.
//
// The same kernel mechanics serve both operating systems under test; the
// differences between Windows NT 4.0 and Windows 98 live in a Config of
// cost distributions plus "overhead episodes" (interrupt-masked and
// scheduler-locked windows) injected by the ospersona package.
package kernel

import "fmt"

// IRQL is an interrupt request level as defined by WDM. PASSIVE_LEVEL is
// where threads normally run; DISPATCH_LEVEL is where DPCs and the
// scheduler run; device interrupts are assigned DIRQLs above DISPATCH; the
// clock runs above all ordinary devices; HIGH_LEVEL masks everything.
type IRQL int

// The WDM IRQL ladder (NT x86 values).
const (
	PassiveLevel  IRQL = 0
	APCLevel      IRQL = 1
	DispatchLevel IRQL = 2
	// DIRQLs for ordinary devices occupy 3..26.
	MinDeviceIRQL IRQL = 3
	MaxDeviceIRQL IRQL = 26
	ProfileLevel  IRQL = 27
	ClockLevel    IRQL = 28 // the PIT interrupt runs here
	IPILevel      IRQL = 29
	PowerLevel    IRQL = 30
	HighLevel     IRQL = 31
)

// String implements fmt.Stringer.
func (q IRQL) String() string {
	switch q {
	case PassiveLevel:
		return "PASSIVE_LEVEL"
	case APCLevel:
		return "APC_LEVEL"
	case DispatchLevel:
		return "DISPATCH_LEVEL"
	case ClockLevel:
		return "CLOCK_LEVEL"
	case HighLevel:
		return "HIGH_LEVEL"
	default:
		if q >= MinDeviceIRQL && q <= MaxDeviceIRQL {
			return fmt.Sprintf("DIRQL(%d)", int(q))
		}
		return fmt.Sprintf("IRQL(%d)", int(q))
	}
}

// Thread priorities. WDM exposes Win32 priorities 1..31; 16..31 are the
// real-time class. 24 is the real-time default (the paper's "medium"
// measurement thread), 28 its "high" measurement thread.
const (
	MinPriority         = 0
	IdlePriority        = 0
	NormalPriority      = 8
	MinRealtimePriority = 16
	RealtimeDefault     = 24 // "Real-time Priority: ... 24 is the default."
	RealtimeHigh        = 28
	MaxPriority         = 31
	NumPriorities       = 32
)

// Preemption levels order CPU occupancy. Anything with a higher level
// preempts anything with a lower one; threads occupy the base level and are
// ordered among themselves by thread priority.
//
// levelSchedLock sits between DPCs and threads: a scheduler-locked overhead
// episode stalls thread dispatch while still letting interrupts and DPCs
// run. This is the mechanism behind Windows 98's thread-latency tail being
// ~10x its DPC-latency tail (Figure 4): legacy VMM/Win16 regions block
// rescheduling, not interrupt processing.
const (
	levelThread    = 0
	levelSchedLock = 1
	levelDispatch  = 2 // DPCs
	levelIsrBase   = 10
	levelIntMask   = 1000
)

// isrLevel maps a device IRQL to its preemption level.
func isrLevel(irql IRQL) int {
	if irql < MinDeviceIRQL || irql > HighLevel {
		panic(fmt.Sprintf("kernel: ISR at non-device IRQL %v", irql))
	}
	return levelIsrBase + int(irql)
}
