package kernel_test

import (
	"testing"

	"wdmlat/internal/kernel"
	"wdmlat/internal/sim"
)

func TestSemaphoreLimitClamps(t *testing.T) {
	b := newBench(t, 1, false)
	sem := b.k.NewSemaphore(0, 2)
	b.k.ReleaseSemaphore(sem, 5)
	if sem.Count() != 2 {
		t.Fatalf("count = %d, want clamp at limit 2", sem.Count())
	}
	entered := 0
	for i := 0; i < 3; i++ {
		b.k.CreateThread("c", 15, func(tc *kernel.ThreadContext) {
			tc.Wait(sem)
			entered++
		})
	}
	b.eng.RunUntil(1_000_000)
	if entered != 2 {
		t.Fatalf("entered = %d, want 2 (clamped units)", entered)
	}
}

func TestSemaphoreValidation(t *testing.T) {
	b := newBench(t, 1, false)
	for _, fn := range []func(){
		func() { b.k.NewSemaphore(-1, 5) },
		func() { b.k.NewSemaphore(0, 0) },
		func() { b.k.NewSemaphore(6, 5) },
		func() { b.k.ReleaseSemaphore(b.k.NewSemaphore(0, 5), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid semaphore op should panic")
				}
			}()
			fn()
		}()
	}
}

func TestMutexReleaseByNonOwnerPanics(t *testing.T) {
	// The release executes in kernel context, so the bug check surfaces
	// through the engine (the simulated BSOD), not inside the offending
	// thread's goroutine.
	b := newBench(t, 1, false)
	m := b.k.NewMutex("m")
	b.k.CreateThread("owner", 15, func(tc *kernel.ThreadContext) {
		tc.Wait(m)
		tc.Exec(1_000_000)
	})
	b.k.CreateThread("thief", 14, func(tc *kernel.ThreadContext) {
		tc.Exec(1000) // let owner acquire first
		tc.ReleaseMutex(m)
	})
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		b.eng.RunUntil(10_000_000)
		return false
	}()
	if !panicked {
		t.Fatal("release by non-owner should bug-check")
	}
}

func TestDpcRequeueFromOwnBody(t *testing.T) {
	// The self-rearming DPC pattern: a DPC that requeues itself runs once
	// per drain pass, not in an infinite inner loop.
	b := newBench(t, 1, false)
	runs := 0
	var d *kernel.DPC
	d = kernel.NewDPC("self", kernel.MediumImportance, func(c *kernel.DpcContext) {
		runs++
		c.Charge(50_000)
		if runs < 5 {
			c.QueueDpc(d)
		}
	})
	b.k.QueueDpc(d)
	b.eng.RunUntil(1_000_000)
	if runs != 5 {
		t.Fatalf("self-requeueing DPC ran %d times, want 5", runs)
	}
}

func TestTimerRearmWhileDpcQueued(t *testing.T) {
	// KeSetTimer on a timer whose previous DPC is still queued must not
	// double-queue the DPC.
	b := newBench(t, 1, true)
	runs := 0
	d := kernel.NewDPC("t", kernel.MediumImportance, func(c *kernel.DpcContext) { runs++ })
	tm := b.k.NewTimer("t")
	b.eng.At(100, "arm", func(sim.Time) { b.k.SetTimer(tm, tickPeriod/2, d) })
	// Re-arm immediately after the expected fire, before the engine lets
	// the DPC run... the kernel processes the tick atomically, so arm at
	// the same timestamp as the tick instead.
	b.eng.At(tickPeriod, "rearm", func(sim.Time) { b.k.SetTimer(tm, tickPeriod/2, d) })
	b.eng.RunUntil(10 * tickPeriod)
	if runs != 2 {
		t.Fatalf("DPC ran %d times, want 2 (one per firing)", runs)
	}
}

func TestEpisodeWhileIdleRunsImmediately(t *testing.T) {
	b := newBench(t, 1, false)
	b.eng.At(1000, "ep", func(sim.Time) {
		b.k.InjectEpisode(kernel.LockScheduler, 50_000, "VMM", "_X")
	})
	b.eng.RunUntil(100_000)
	ctr := b.k.Counters()
	if ctr.Episodes != 1 {
		t.Fatalf("episodes = %d", ctr.Episodes)
	}
	if ctr.EpisodeCycles != 50_000 {
		t.Fatalf("episode cycles = %d, want 50000", ctr.EpisodeCycles)
	}
	if b.k.PendingEpisodes() != 0 {
		t.Fatal("episode still pending")
	}
}

func TestZeroDurationEpisodeIgnored(t *testing.T) {
	b := newBench(t, 1, false)
	b.k.InjectEpisode(kernel.LockScheduler, 0, "VMM", "_X")
	if b.k.PendingEpisodes() != 0 || b.k.Counters().Episodes != 0 {
		t.Fatal("zero-duration episode should be dropped")
	}
}

func TestShutdownWithArmedTimersAndWaiters(t *testing.T) {
	b := newBench(t, 1, true)
	ev := b.k.NewEvent("never", kernel.SynchronizationEvent)
	tm := b.k.NewTimer("armed")
	d := kernel.NewDPC("d", kernel.MediumImportance, func(c *kernel.DpcContext) {})
	for i := 0; i < 3; i++ {
		b.k.CreateThread("stuck", 15, func(tc *kernel.ThreadContext) {
			tc.SetTimer(tm, 100*tickPeriod, d)
			tc.Wait(ev)
		})
	}
	b.eng.RunUntil(5 * tickPeriod)
	b.k.Shutdown() // must not hang or panic with armed timers outstanding
}

func TestSleepZeroYieldsToPeer(t *testing.T) {
	b := newBench(t, 1, false)
	var order []string
	b.k.CreateThread("a", 10, func(tc *kernel.ThreadContext) {
		order = append(order, "a1")
		tc.Sleep(0)
		order = append(order, "a2")
	})
	b.k.CreateThread("b", 10, func(tc *kernel.ThreadContext) {
		order = append(order, "b")
	})
	b.eng.RunUntil(1_000_000)
	want := []string{"a1", "b", "a2"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestExecDistUsesKernelStream(t *testing.T) {
	b := newBench(t, 1, false)
	var took sim.Time
	b.k.CreateThread("d", 15, func(tc *kernel.ThreadContext) {
		start := tc.Now()
		tc.ExecDist(sim.Uniform{Lo: 1000, Hi: 2000})
		took = tc.Now() - start
	})
	b.eng.RunUntil(1_000_000)
	if took < 1000 || took > 2000 {
		t.Fatalf("ExecDist consumed %d cycles, want within [1000,2000]", took)
	}
}

func TestConnectDuplicateVectorPanics(t *testing.T) {
	b := newBench(t, 1, false)
	b.k.Connect(40, 16, "A", "_ISR", func(c *kernel.IsrContext) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate vector should panic")
		}
	}()
	b.k.Connect(40, 17, "B", "_ISR", func(c *kernel.IsrContext) {})
}

func TestDisconnectFreesVector(t *testing.T) {
	b := newBench(t, 1, false)
	intr := b.k.Connect(40, 16, "A", "_ISR", func(c *kernel.IsrContext) {})
	b.k.Disconnect(intr)
	if b.k.InterruptForVector(40) != nil {
		t.Fatal("vector still connected")
	}
	// Reconnecting must succeed.
	b.k.Connect(40, 16, "B", "_ISR", func(c *kernel.IsrContext) {})
}

func TestSpuriousAssertCounted(t *testing.T) {
	b := newBench(t, 1, false)
	// Assert twice while masked: the second is spurious (level-triggered
	// line already pending).
	intr := b.k.Connect(40, 16, "A", "_ISR", func(c *kernel.IsrContext) {})
	b.eng.At(100, "mask", func(sim.Time) {
		b.k.InjectEpisode(kernel.MaskInterrupts, 100_000, "VXD", "_X")
	})
	b.eng.At(200, "a1", func(sim.Time) { intr.Assert() })
	b.eng.At(300, "a2", func(sim.Time) { intr.Assert() })
	b.eng.RunUntil(1_000_000)
	if intr.Asserts() != 1 || intr.Spurious() != 1 {
		t.Fatalf("asserts = %d spurious = %d, want 1/1", intr.Asserts(), intr.Spurious())
	}
	if got := b.k.Counters().Interrupts; got != 1 {
		t.Fatalf("accepted interrupts = %d, want 1 (assertions coalesced)", got)
	}
}
