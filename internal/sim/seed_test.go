package sim

import (
	"strconv"
	"testing"
)

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(3, "nt4/games/default/0")
	b := DeriveSeed(3, "nt4/games/default/0")
	if a != b {
		t.Fatalf("DeriveSeed not deterministic: %d vs %d", a, b)
	}
}

func TestDeriveSeedKeySensitivity(t *testing.T) {
	base := uint64(1)
	keys := []string{
		"nt4/games/default/0",
		"nt4/games/default/1",
		"nt4/games/default/10",
		"nt4/games/scanner/0",
		"win98/games/default/0",
		"nt4/web/default/0",
		"", "a", "aa", "a/a",
	}
	seen := map[uint64]string{}
	for _, k := range keys {
		s := DeriveSeed(base, k)
		if prev, dup := seen[s]; dup {
			t.Fatalf("keys %q and %q collide at seed %d", prev, k, s)
		}
		seen[s] = k
	}
}

func TestDeriveSeedBaseSensitivity(t *testing.T) {
	// The failure mode of the old additive scheme: base seeds 3 and
	// 3+7919 shared whole replica streams. Derived seeds from nearby (and
	// stride-offset) bases must be pairwise disjoint across replicas.
	bases := []uint64{1, 2, 3, 4, 3 + 7919, 3 + 2*7919}
	seen := map[uint64]string{}
	for _, b := range bases {
		for i := 0; i < 16; i++ {
			key := "cell/" + string(rune('0'+i%10)) + string(rune('a'+i/10))
			s := DeriveSeed(b, key)
			id := key
			if prev, dup := seen[s]; dup {
				t.Fatalf("collision: base %d key %q vs %q at %d", b, id, prev, s)
			}
			seen[s] = id
		}
	}
}

func TestDeriveSeedNeverZero(t *testing.T) {
	// Zero would alias to RunConfig's "default seed" path.
	for i := 0; i < 10000; i++ {
		if DeriveSeed(uint64(i), "k") == 0 {
			t.Fatalf("DeriveSeed(%d, \"k\") == 0", i)
		}
	}
}

func TestDeriveSeedNoWideCollisions(t *testing.T) {
	// 4 bases × 2500 keys: all derived seeds distinct (a 64-bit hash
	// colliding in 10^4 draws would be astronomically unlikely unless the
	// mixing is broken).
	seen := map[uint64]bool{}
	n := 0
	for _, base := range []uint64{0, 1, 42, 1 << 60} {
		for i := 0; i < 2500; i++ {
			key := "os/wl/variant/" + strconv.Itoa(i)
			s := DeriveSeed(base, key)
			if seen[s] {
				t.Fatalf("collision at base %d key %q", base, key)
			}
			seen[s] = true
			n++
		}
	}
	if n != len(seen) {
		t.Fatalf("expected %d distinct seeds, got %d", n, len(seen))
	}
}
