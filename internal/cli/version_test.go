package cli

import (
	"flag"
	"strings"
	"testing"
)

func TestVersionNonEmpty(t *testing.T) {
	v := Version()
	if v == "" {
		t.Fatal("Version() returned an empty string")
	}
	// Under `go test` the module path is available from build info.
	if !strings.Contains(v, "wdmlat") {
		t.Errorf("version %q does not name the module", v)
	}
}

func TestAddVersionFlagPrintsAndExits(t *testing.T) {
	exited := -1
	orig := exitFunc
	exitFunc = func(code int) { exited = code }
	defer func() { exitFunc = orig }()

	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	AddVersionFlag("sometool", fs)
	if fs.Lookup("version") == nil {
		t.Fatal("-version flag not registered")
	}
	if err := fs.Parse([]string{"-version"}); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if exited != 0 {
		t.Fatalf("want exit 0, got %d", exited)
	}
}
