package server

// The fleet coordinator: the state machine that turns one campaign process
// into N interchangeable worker processes without giving up a single byte
// of determinism.
//
// The unit of distribution is the checkpoint-store fingerprint. Every cell
// a campaign wants executed arrives through ExecuteRemote with its full
// identity (base seed, key, final config); the coordinator fingerprints it
// exactly as internal/campaign/store would, queues it, and leases it to
// whichever registered worker asks next. Because a cell's result is a pure
// function of that identity, the coordinator can be aggressively sloppy
// about *where* work runs — re-dispatching on worker death, tolerating
// stragglers that finish after being declared dead, deduplicating identical
// cells across concurrent campaigns — while the merged result stream stays
// byte-identical to a single-process run. The campaign runner still merges
// in submission order; the coordinator only ever changes who computed a
// cell, never what the cell is.
//
// Liveness is heartbeat-based: every authenticated worker call refreshes
// the worker's clock, and a janitor reclaims the leases of workers silent
// for longer than the lease TTL, returning their cells to the dispatch
// queue. Completion is validated before it is merged: the payload must
// decode through the exact result codec, re-encode to the identical bytes
// (canonical form), and its embedded config must re-derive the leased
// cell's fingerprint — a worker that returns a corrupt or wrong-cell payload is
// rejected and the cell re-dispatched, never merged. Duplicate completion
// of an already-merged cell is a counted no-op, which is what makes worker
// retries and straggler races safe.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"wdmlat/internal/api"
	"wdmlat/internal/campaign/store"
	"wdmlat/internal/core"
	"wdmlat/internal/metrics"
)

// Metric names the coordinator publishes on CoordinatorOptions.Metrics.
const (
	MetricFleetWorkersRegistered = "fleet_workers_registered"    // registrations accepted
	MetricFleetWorkersActive     = "fleet_workers_active"        // gauge: live workers
	MetricFleetWorkersExpired    = "fleet_workers_expired"       // workers declared dead (heartbeat TTL)
	MetricFleetLeasesGranted     = "fleet_leases_granted"        // cells handed to workers
	MetricFleetLeasesReclaimed   = "fleet_leases_reclaimed"      // leases taken back from dead workers
	MetricFleetCellsCompleted    = "fleet_cells_completed"       // validated results merged
	MetricFleetCellsRejected     = "fleet_cells_rejected"        // corrupt/mismatched payloads refused
	MetricFleetCellsFailed       = "fleet_cells_failed"          // deterministic worker-reported failures
	MetricFleetCellsRedispatched = "fleet_cells_redispatched"    // cells returned to the queue (reclaim or reject)
	MetricFleetDuplicateDone     = "fleet_completions_duplicate" // completions of already-merged cells (no-ops)
	MetricFleetQueueDepth        = "fleet_queue_depth"           // gauge: cells awaiting dispatch
	MetricFleetCellsLeased       = "fleet_cells_leased"          // gauge: cells out with workers
	MetricFleetCellsCacheHit     = "fleet_cells_cache_hit"       // accepted completions answered from a worker's checkpoint store
)

// ErrDraining is returned by ExecuteRemote for cells that could not finish
// because the coordinator shut down.
var ErrDraining = errors.New("coordinator draining")

// CoordinatorOptions configures fleet mode.
type CoordinatorOptions struct {
	// LeaseTTL is how long a worker may go silent before it is declared
	// dead and its leases are re-dispatched. Default 10s.
	LeaseTTL time.Duration
	// Poll is the re-poll hint handed to idle workers. Default 500ms.
	Poll time.Duration
	// Metrics receives the fleet telemetry; nil disables collection.
	Metrics *metrics.Registry
	// Now overrides the clock (tests drive expiry deterministically).
	// Must be safe for concurrent use.
	Now func() time.Time
	// Journal, if non-nil, durably records every fingerprint that reaches
	// a terminal outcome, so a restarted coordinator can keep answering
	// pre-crash stragglers with CompleteDuplicate.
	Journal *Journal
	// Merged seeds the merged-fingerprint set — the Journal's replayed
	// Merged list from a prior incarnation. Completions for these
	// fingerprints (with no live task wanting them again) are duplicates,
	// never unknowns.
	Merged []string
}

type coordMetrics struct {
	registered, expired                 *metrics.Counter
	granted, reclaimed                  *metrics.Counter
	completed, rejected, failed         *metrics.Counter
	redispatched, duplicate, cacheHit   *metrics.Counter
	workersActive, queueDepth, cellsOut *metrics.Gauge
}

// Task states. A task is one fingerprinted cell wanted by at least one
// campaign; pending and leased tasks move between the queue and workers,
// done tasks hold a result or a deterministic failure.
const (
	taskPending = iota
	taskLeased
	taskDone
)

type cellTask struct {
	lease api.Lease // full cell identity; lease.Fingerprint is the map key
	state int
	owner string // worker id while leased
	refs  int    // ExecuteRemote waiters sharing this task
	res   *core.Result
	err   error
	done  chan struct{} // closed exactly once, when state becomes taskDone
}

type fleetWorker struct {
	id, name string
	lastBeat time.Time
	leases   map[string]*cellTask
}

// Coordinator shards fingerprinted cells across registered workers. All
// methods are safe for concurrent use.
type Coordinator struct {
	opts CoordinatorOptions
	met  coordMetrics

	mu      sync.Mutex
	workers map[string]*fleetWorker
	tasks   map[string]*cellTask // by fingerprint
	queue   []*cellTask          // pending dispatch, FIFO
	// merged remembers every fingerprint that reached a terminal outcome,
	// so a worker retry or straggler that lands after the waiters consumed
	// the task is answered CompleteDuplicate (idempotent no-op) instead of
	// CompleteUnknown. One fingerprint string per finished cell — the same
	// order of growth as the result cache itself.
	merged   map[string]struct{}
	nextID   int
	draining bool

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// NewCoordinator returns a running coordinator (its reclaim janitor is
// started); Close it on shutdown.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 10 * time.Second
	}
	if opts.Poll <= 0 {
		opts.Poll = 500 * time.Millisecond
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	reg := opts.Metrics
	co := &Coordinator{
		opts: opts,
		met: coordMetrics{
			registered:    reg.Counter(MetricFleetWorkersRegistered),
			expired:       reg.Counter(MetricFleetWorkersExpired),
			granted:       reg.Counter(MetricFleetLeasesGranted),
			reclaimed:     reg.Counter(MetricFleetLeasesReclaimed),
			completed:     reg.Counter(MetricFleetCellsCompleted),
			rejected:      reg.Counter(MetricFleetCellsRejected),
			failed:        reg.Counter(MetricFleetCellsFailed),
			redispatched:  reg.Counter(MetricFleetCellsRedispatched),
			duplicate:     reg.Counter(MetricFleetDuplicateDone),
			cacheHit:      reg.Counter(MetricFleetCellsCacheHit),
			workersActive: reg.Gauge(MetricFleetWorkersActive),
			queueDepth:    reg.Gauge(MetricFleetQueueDepth),
			cellsOut:      reg.Gauge(MetricFleetCellsLeased),
		},
		workers:     map[string]*fleetWorker{},
		tasks:       map[string]*cellTask{},
		merged:      map[string]struct{}{},
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	for _, fp := range opts.Merged {
		co.merged[fp] = struct{}{}
	}
	go co.janitor()
	return co
}

// janitor periodically reclaims the leases of workers whose heartbeats
// stopped. The scan interval divides the TTL so a dead worker is detected
// within ~1.25 TTLs; expiry decisions use opts.Now, so tests with an
// injected clock stay deterministic regardless of the wall-clock ticker.
func (co *Coordinator) janitor() {
	defer close(co.janitorDone)
	t := time.NewTicker(co.opts.LeaseTTL / 4)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			co.Reclaim()
		case <-co.janitorStop:
			return
		}
	}
}

// Register admits a worker and returns its identity and cadence contract.
// ok is false while the coordinator is draining: the janitor is already
// stopped, so a worker admitted now would sit in co.workers (and hold the
// fleet_workers_active gauge) forever — refuse it instead, and let the
// server answer 503 so the worker's backoff retries land on the next
// coordinator incarnation.
func (co *Coordinator) Register(name string) (api.RegisterResponse, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.draining {
		return api.RegisterResponse{}, false
	}
	co.nextID++
	w := &fleetWorker{
		id:       "w" + strconv.Itoa(co.nextID),
		name:     name,
		lastBeat: co.opts.Now(),
		leases:   map[string]*cellTask{},
	}
	co.workers[w.id] = w
	co.met.registered.Inc()
	co.met.workersActive.Inc()
	return api.RegisterResponse{
		WorkerID:       w.id,
		LeaseTTLMillis: co.opts.LeaseTTL.Milliseconds(),
		PollMillis:     co.opts.Poll.Milliseconds(),
	}, true
}

// Heartbeat refreshes a worker's liveness. Unknown workers (never
// registered, or expired and reclaimed) report false: the worker must
// re-register before it can lease again.
func (co *Coordinator) Heartbeat(workerID string) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	w, ok := co.workers[workerID]
	if !ok {
		return false
	}
	w.lastBeat = co.opts.Now()
	return true
}

// Lease hands up to max pending cells to the worker. ok is false for
// unknown workers. An empty grant with Draining set tells the worker to
// finish up and exit.
func (co *Coordinator) Lease(workerID string, max int) (resp api.LeaseResponse, ok bool) {
	if max < 1 {
		max = 1
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	w, wok := co.workers[workerID]
	if !wok {
		return api.LeaseResponse{}, false
	}
	w.lastBeat = co.opts.Now()
	if co.draining {
		return api.LeaseResponse{Draining: true}, true
	}
	for len(resp.Leases) < max && len(co.queue) > 0 {
		t := co.queue[0]
		co.queue = co.queue[1:]
		t.state = taskLeased
		t.owner = w.id
		w.leases[t.lease.Fingerprint] = t
		resp.Leases = append(resp.Leases, t.lease)
		co.met.granted.Inc()
		co.met.queueDepth.Dec()
		co.met.cellsOut.Inc()
	}
	return resp, true
}

// Completion dispositions, mapped to HTTP statuses by the server handlers.
type CompleteDisposition int

const (
	CompleteMerged    CompleteDisposition = iota // validated and merged (or failure recorded)
	CompleteDuplicate                            // cell already merged; no-op
	CompleteUnknown                              // no such task (campaign gone); worker moves on
	CompleteRejected                             // corrupt payload; cell re-dispatched
)

// Complete delivers one finished cell from a worker. The worker need not
// still be registered — a straggler that was declared dead can still land
// its result, and the copy the re-dispatched worker delivers later becomes
// the duplicate no-op. Payloads are validated before they can reach a
// campaign: decode through the exact codec, canonical re-encode, and
// fingerprint re-derivation from the embedded config must all agree, or
// the payload is rejected and the cell goes back to the queue.
func (co *Coordinator) Complete(workerID string, req api.CompleteRequest) (CompleteDisposition, error) {
	if err := req.Validate(); err != nil {
		return CompleteRejected, err
	}

	// Validate the payload outside the lock: decoding a large result is
	// real work, and the verdict depends only on the bytes.
	var res *core.Result
	var valErr error
	if len(req.Result) > 0 {
		res, valErr = decodeCanonical(req.Result)
	}

	co.mu.Lock()
	defer co.mu.Unlock()
	if w, ok := co.workers[workerID]; ok {
		w.lastBeat = co.opts.Now()
	}
	t, ok := co.tasks[req.Fingerprint]
	if !ok {
		if _, was := co.merged[req.Fingerprint]; was {
			co.met.duplicate.Inc()
			co.countCacheHitLocked(req)
			return CompleteDuplicate, nil
		}
		return CompleteUnknown, fmt.Errorf("no task with fingerprint %s", req.Fingerprint)
	}
	if t.state == taskDone {
		co.met.duplicate.Inc()
		co.countCacheHitLocked(req)
		return CompleteDuplicate, nil
	}
	if req.Error != "" {
		// A deterministic execution failure: re-dispatching would fail
		// identically on every worker, so record it and release waiters.
		co.met.failed.Inc()
		co.finishLocked(t, nil, fmt.Errorf("cell %q failed on worker %s: %s", t.lease.Key, workerID, req.Error))
		return CompleteMerged, nil
	}
	if valErr == nil {
		// The simulator embeds the normalized config (defaults filled), so
		// the lease's config is normalized before the fingerprints can be
		// compared — a mismatch means the payload answers a different cell.
		want := store.Fingerprint(t.lease.BaseSeed, t.lease.Key, t.lease.Config.Normalized())
		if fp := store.Fingerprint(t.lease.BaseSeed, t.lease.Key, res.Config); fp != want {
			valErr = fmt.Errorf("payload config re-derives fingerprint %s, leased cell is %s", short(fp), short(want))
		}
	}
	if valErr != nil {
		// Corrupt payload: never merged. A leased cell goes back to the
		// queue for a healthy worker; a pending one (straggler corrupting
		// a cell Reclaim already requeued) is in the queue already, and
		// appending it again would lease the same cell to two workers.
		co.met.rejected.Inc()
		if t.state == taskLeased {
			co.requeueLocked(t)
		}
		return CompleteRejected, fmt.Errorf("cell %q from worker %s rejected: %w", t.lease.Key, workerID, valErr)
	}
	co.met.completed.Inc()
	co.countCacheHitLocked(req)
	co.finishLocked(t, res, nil)
	return CompleteMerged, nil
}

// countCacheHitLocked counts a completion the worker answered from its
// checkpoint store instead of executing. Only accepted completions
// (merged or duplicate) reach it — a rejected payload's Cached flag is
// worthless, cached or not.
func (co *Coordinator) countCacheHitLocked(req api.CompleteRequest) {
	if req.Cached {
		co.met.cacheHit.Inc()
	}
}

// decodeCanonical decodes a completion payload through the exact result
// codec and insists the decoded form re-encodes to the identical bytes —
// a payload that survives is indistinguishable from a local checkpoint.
// The comparison is byte-exact: the canonical wire form is the
// core.EncodeResult document without its trailing newline (the form
// api.EncodeCellResult produces), and any padding — whitespace included —
// is a rejection, because the journal-replay duplicate path depends on
// "merged" meaning exactly one byte sequence per fingerprint.
func decodeCanonical(payload []byte) (*core.Result, error) {
	res, err := core.DecodeResult(bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	var round bytes.Buffer
	if err := core.EncodeResult(&round, res); err != nil {
		return nil, err
	}
	canon := bytes.TrimSuffix(round.Bytes(), []byte("\n"))
	if !bytes.Equal(canon, payload) {
		return nil, errors.New("payload is not the canonical result encoding")
	}
	return res, nil
}

func short(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

// finishLocked publishes a task's terminal outcome and releases waiters.
func (co *Coordinator) finishLocked(t *cellTask, res *core.Result, err error) {
	switch t.state {
	case taskLeased:
		co.releaseLocked(t)
	case taskPending:
		// A straggler can finish a cell Reclaim already requeued, before
		// any re-lease. The done task must leave the queue, or a later
		// Lease would grant it again — a ghost lease that clobbers the
		// published outcome and leaks the leased-cells gauge.
		co.dequeueLocked(t)
	}
	t.state = taskDone
	t.res, t.err = res, err
	co.merged[t.lease.Fingerprint] = struct{}{}
	// Durably remember the terminal outcome before waiters see it: a
	// straggler delivering this cell to the next coordinator incarnation
	// must be answered CompleteDuplicate, not CompleteUnknown. The fsync
	// per cell is noise against a multi-second simulated cell.
	co.opts.Journal.Merged(t.lease.Fingerprint)
	close(t.done)
	if t.refs == 0 {
		delete(co.tasks, t.lease.Fingerprint)
	}
}

// releaseLocked detaches a leased task from its owner.
func (co *Coordinator) releaseLocked(t *cellTask) {
	if w, ok := co.workers[t.owner]; ok {
		delete(w.leases, t.lease.Fingerprint)
	}
	t.owner = ""
	co.met.cellsOut.Dec()
}

// dequeueLocked removes a pending task from the dispatch queue.
func (co *Coordinator) dequeueLocked(t *cellTask) {
	for i, q := range co.queue {
		if q == t {
			co.queue = append(co.queue[:i], co.queue[i+1:]...)
			co.met.queueDepth.Dec()
			return
		}
	}
}

// requeueLocked returns a task to the dispatch queue.
func (co *Coordinator) requeueLocked(t *cellTask) {
	if t.state == taskLeased {
		co.releaseLocked(t)
	}
	t.state = taskPending
	co.queue = append(co.queue, t)
	co.met.redispatched.Inc()
	co.met.queueDepth.Inc()
}

// Reclaim expires every worker whose last heartbeat is older than the
// lease TTL and returns its leased cells to the queue. The janitor calls
// it on a timer; tests call it directly against an injected clock.
func (co *Coordinator) Reclaim() {
	now := co.opts.Now()
	co.mu.Lock()
	defer co.mu.Unlock()
	for id, w := range co.workers {
		if now.Sub(w.lastBeat) <= co.opts.LeaseTTL {
			continue
		}
		// Reclaim the dead worker's leases first, then the identity: a
		// worker that went silent mid-cell gets its cells re-dispatched
		// (free re-execution when a straggler already checkpointed them).
		for _, t := range w.leases {
			co.met.reclaimed.Inc()
			co.requeueLocked(t)
		}
		delete(co.workers, id)
		co.met.expired.Inc()
		co.met.workersActive.Dec()
	}
}

// ExecuteRemote runs one fingerprinted cell on the fleet: enqueue (or join
// the identical in-flight cell — concurrent campaigns wanting the same
// fingerprint share one execution), wait for a validated completion, and
// return the decoded result. It fails with ctx's error on cancellation and
// ErrDraining if the coordinator shuts down first. This is the campaign
// runner's ExecuteCell seam, so an error here fails one cell, not the
// campaign process.
func (co *Coordinator) ExecuteRemote(ctx context.Context, baseSeed uint64, key string, cfg core.RunConfig) (*core.Result, error) {
	fp := store.Fingerprint(baseSeed, key, cfg)
	co.mu.Lock()
	if co.draining {
		co.mu.Unlock()
		return nil, fmt.Errorf("cell %q: %w", key, ErrDraining)
	}
	t, ok := co.tasks[fp]
	if !ok {
		t = &cellTask{
			lease: api.Lease{Fingerprint: fp, BaseSeed: baseSeed, Key: key, Config: cfg},
			state: taskPending,
			done:  make(chan struct{}),
		}
		co.tasks[fp] = t
		co.queue = append(co.queue, t)
		co.met.queueDepth.Inc()
	}
	t.refs++
	co.mu.Unlock()

	select {
	case <-t.done:
	case <-ctx.Done():
	}

	co.mu.Lock()
	defer co.mu.Unlock()
	t.refs--
	switch {
	case t.state == taskDone:
		if t.refs == 0 {
			delete(co.tasks, fp)
		}
		if t.err != nil {
			return nil, t.err
		}
		return t.res, nil
	case t.refs > 0:
		// Another campaign still wants this cell; leave it in flight.
		return nil, ctx.Err()
	default:
		// Last waiter gone: retract the cell. If it is pending, pull it
		// out of the queue; if leased, orphan it — a late completion gets
		// CompleteUnknown and the worker moves on.
		if t.state == taskPending {
			co.dequeueLocked(t)
		} else {
			co.releaseLocked(t)
		}
		delete(co.tasks, fp)
		return nil, ctx.Err()
	}
}

// Status reports the fleet for GET /v1/fleet, workers sorted by id.
func (co *Coordinator) Status() api.FleetStatus {
	now := co.opts.Now()
	co.mu.Lock()
	defer co.mu.Unlock()
	st := api.FleetStatus{Draining: co.draining, Pending: len(co.queue)}
	for _, w := range co.workers {
		st.Workers = append(st.Workers, api.WorkerStatus{
			ID:         w.id,
			Name:       w.name,
			Leases:     len(w.leases),
			IdleMillis: now.Sub(w.lastBeat).Milliseconds(),
		})
		st.Leased += len(w.leases)
	}
	sort.Slice(st.Workers, func(i, j int) bool {
		return workerNum(st.Workers[i].ID) < workerNum(st.Workers[j].ID)
	})
	return st
}

func workerNum(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "w"))
	return n
}

// Close drains the coordinator: no new cells are accepted or leased, every
// unfinished task fails its waiters with ErrDraining, and lease responses
// tell workers to exit. Leases still outstanding are simply forgotten — a
// completion that arrives after Close gets CompleteUnknown. Idempotent.
func (co *Coordinator) Close() {
	co.mu.Lock()
	if co.draining {
		co.mu.Unlock()
		<-co.janitorDone
		return
	}
	co.draining = true
	for fp, t := range co.tasks {
		if t.state != taskDone {
			if t.state == taskLeased {
				co.releaseLocked(t)
			} else {
				co.met.queueDepth.Dec()
			}
			t.state = taskDone
			t.err = fmt.Errorf("cell %q: %w", t.lease.Key, ErrDraining)
			close(t.done)
		}
		delete(co.tasks, fp)
	}
	co.queue = nil
	co.mu.Unlock()
	close(co.janitorStop)
	<-co.janitorDone
}
