// Package mttf implements the paper's quality-of-service analyses:
//
//   - Table 1: latency tolerances of low-latency streaming applications,
//     (n-1)·t for n buffers of t milliseconds;
//   - §5.1 / Figures 6–7: mean time to buffer underrun for a soft-modem
//     datapump as a function of total buffering, derived from a measured
//     latency table: "calculating the slack time for each amount of
//     buffering (i.e., t*(n-1) − c ...). This number is used to index into
//     the latency table to determine the frequency with which such
//     latencies occur, and this frequency is divided by an approximation of
//     the cycle time (for simplicity, (n-1)*t)".
package mttf

import (
	"math"

	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
)

// Application is one Table 1 row: a low-latency streaming application with
// its typical buffer size and count ranges.
type Application struct {
	Name       string
	BufMinMS   float64 // t range
	BufMaxMS   float64
	BuffersMin int // n range
	BuffersMax int
	Note       string
}

// ToleranceRow is one Table 1 row together with its published latency
// tolerance range ("tolerance range roughly (nmax−1)*tmin to (nmin−1)*tmax
// ms", per the table's caption).
type ToleranceRow struct {
	App     Application
	TolLoMS float64
	TolHiMS float64
}

// Table1 returns the paper's Table 1 rows with their published tolerance
// ranges in milliseconds.
func Table1() []ToleranceRow {
	return []ToleranceRow{
		{Application{"ADSL", 2, 4, 2, 6, "G.992.2 splitterless ADSL"}, 4, 10},
		{Application{"Modem", 4, 16, 2, 6, "V.90 soft modem datapump"}, 12, 20},
		{Application{"RT audio", 8, 24, 2, 8, "8 buffers is KMixer's max; 4 more realistic"}, 20, 60},
		{Application{"RT video", 33, 50, 2, 3, "20-30 fps"}, 33, 100},
	}
}

// ToleranceMS is the latency tolerance (n−1)·t of a specific configuration.
func ToleranceMS(bufMS float64, buffers int) float64 {
	return float64(buffers-1) * bufMS
}

// Point is one Figure 6/7 sample: total buffering versus mean time to
// underrun.
type Point struct {
	BufferingMS float64
	MTTFSeconds float64
	// Censored marks buffering levels whose slack exceeds every observed
	// latency: the data only supports "no underrun observed", so
	// MTTFSeconds holds the observation-span lower bound.
	Censored bool
}

// Analytic computes the §5 estimate for one configuration: cycle time t ms,
// n buffers, compute c ms, against the latency distribution h observed over
// `observed` cycles. The distribution should match the datapump's
// modality: DPC-interrupt latency for a DPC-based pump, hardware-interrupt-
// to-thread latency for a thread-based one.
func Analytic(h *stats.Histogram, observed sim.Cycles, cycleMS float64, buffers int, computeMS float64) Point {
	freq := h.Freq()
	buffering := ToleranceMS(cycleMS, buffers)
	slackMS := buffering - computeMS
	pt := Point{BufferingMS: buffering}
	if slackMS <= 0 {
		pt.MTTFSeconds = 0 // every cycle misses
		return pt
	}
	p := h.CCDF(freq.FromMillis(slackMS))
	period := buffering / 1e3 // "(n-1)*t" in seconds, the paper's approximation
	if p <= 0 {
		pt.Censored = true
		pt.MTTFSeconds = freq.Duration(observed).Seconds()
		return pt
	}
	pt.MTTFSeconds = period / p
	return pt
}

// Sweep produces a Figure 6/7 curve: MTTF for every buffering level in
// steps of the cycle time, with the compute cost fixed at computeFraction
// of the cycle.
func Sweep(h *stats.Histogram, observed sim.Cycles, cycleMS float64, computeFraction float64, maxBuffers int) []Point {
	if maxBuffers < 2 {
		maxBuffers = 2
	}
	computeMS := cycleMS * computeFraction
	var out []Point
	for n := 2; n <= maxBuffers; n++ {
		pt := Analytic(h, observed, cycleMS, n, computeMS)
		// MTTF is monotone in buffering by construction; a censored point
		// (no observed event beyond the slack) is a *lower bound*, so it
		// can be tightened to the best preceding finite estimate.
		if pt.Censored && len(out) > 0 && out[len(out)-1].MTTFSeconds > pt.MTTFSeconds {
			pt.MTTFSeconds = out[len(out)-1].MTTFSeconds
		}
		out = append(out, pt)
	}
	return out
}

// MinBufferingFor returns the smallest buffering (ms, in whole cycles) at
// which the analytic MTTF reaches the target, or ok=false if no tested
// level reaches it. This answers §5.1 questions like "how much buffering
// for an hour between misses while playing an average 3D game?".
func MinBufferingFor(h *stats.Histogram, observed sim.Cycles, cycleMS float64, computeFraction float64, targetSeconds float64, maxBuffers int) (float64, bool) {
	for _, pt := range Sweep(h, observed, cycleMS, computeFraction, maxBuffers) {
		if pt.MTTFSeconds >= targetSeconds && !math.IsNaN(pt.MTTFSeconds) {
			return pt.BufferingMS, true
		}
	}
	return 0, false
}
