package ospersona

import "wdmlat/internal/stats"

// Storm hooks: the interrupt-storm workload (internal/workload.Storm) feeds
// single packets through the NIC at a swept offered rate and periodically
// charges the OS's network response. All of it is opt-in — a machine that
// never calls EnableStormAccounting runs the exact PR-1 NIC path.

// EnableStormAccounting switches the NIC driver into storm accounting:
// every drained packet's arrival-to-indication latency is recorded in the
// returned histogram and the per-OS NicIndicate cost is charged per packet
// (instead of the flat pre-storm constant). Call before traffic flows; the
// histogram stays owned by the caller.
func (m *Machine) EnableStormAccounting() *stats.Histogram {
	if m.nicLat == nil {
		m.nicLat = stats.NewHistogram(m.Freq())
	}
	return m.nicLat
}

// StormPacket delivers one storm packet through the NIC ring now.
func (m *Machine) StormPacket(bytes int) {
	m.NIC.Deliver(bytes)
}

// StormBatchResponse applies the OS's network-burst response (masked
// windows, scheduler locks, DPC work, work items) once per indication
// batch. The storm generator calls it at a fixed offered-packet stride so
// the OS-side interference scales with offered load without charging a
// full NetBurst per packet.
func (m *Machine) StormBatchResponse() {
	m.netBursts++
	m.apply(m.Profile.NetBurst, m.Profile.LockFrames, m.Profile.MaskFrames, &m.nicDpcExtra)
}
