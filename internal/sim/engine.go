package sim

import (
	"errors"
	"fmt"
)

// Engine is a discrete-event simulation driver: a virtual clock plus a
// cancellable event queue. Events scheduled for the same instant fire in
// FIFO order of scheduling, which keeps runs deterministic.
//
// The engine allocates nothing in steady state: fired and cancelled Event
// records are recycled through a free list, and the queue is a
// hand-specialized 4-ary heap over a reused slice, so a long-running
// simulation settles into a fixed working set no matter how many events it
// dispatches. The price of pooling is a handle discipline — see Event.
//
// Engine is not safe for concurrent use; the whole simulator is
// single-threaded by design (see the kernel package for how simulated
// threads are multiplexed onto it).
type Engine struct {
	now    Time
	queue  []*Event // 4-ary min-heap on (when, seq); see event.go
	free   []*Event // dead records awaiting reuse
	seq    uint64
	nfired uint64
	rng    *RNG
}

// ErrHalted is returned by Run when Halt was called from inside an event.
var ErrHalted = errors.New("sim: engine halted")

// NewEngine returns an engine at time zero with a deterministic RNG seeded
// from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's random number generator. All stochastic behaviour
// in a simulation should derive from this generator so that runs are
// reproducible from the engine seed.
func (e *Engine) RNG() *RNG { return e.rng }

// Fired returns the total number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.nfired }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// alloc returns a recycled Event record, or a fresh one if the pool is dry.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{}
}

// release returns a dead record to the pool. The callback is dropped so the
// pool does not pin closures (and whatever they capture) alive.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.state = stateDead
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute time t. Scheduling in the past (before
// Now) panics: it would silently reorder causality. The label is retained
// for debugging and tracing; callers on hot paths should pass a precomputed
// constant, not build one per call.
func (e *Engine) At(t Time, label string, fn func(Time)) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %d before now %d", label, t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := e.alloc()
	ev.when = t
	ev.seq = e.seq
	ev.fn = fn
	ev.label = label
	ev.state = statePending
	e.seq++
	e.heapPush(ev)
	return ev
}

// After schedules fn to run d cycles from now. Negative delays panic.
func (e *Engine) After(d Cycles, label string, fn func(Time)) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d for %q", d, label))
	}
	return e.At(e.now.Add(d), label, fn)
}

// Cancel removes a pending event from the queue and recycles its record;
// the caller must drop the handle. Cancelling an event that already fired
// or was already cancelled is a no-op and returns false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.state != statePending {
		return false
	}
	e.heapRemove(int(ev.index))
	e.release(ev)
	return true
}

// Reschedule moves a pending event to a new absolute time, preserving its
// callback. The event must be pending: records are pooled, so a handle
// whose event fired or was cancelled may already describe someone else's
// event, and rescheduling it would corrupt the queue — Reschedule panics
// instead. Re-arm by scheduling a fresh event.
func (e *Engine) Reschedule(ev *Event, t Time) {
	if ev == nil {
		panic("sim: Reschedule of nil event")
	}
	if ev.state != statePending {
		panic(fmt.Sprintf("sim: Reschedule of dead event %q: it already fired or was cancelled and its record may have been recycled", ev.label))
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: rescheduling %q at %d before now %d", ev.label, t, e.now))
	}
	ev.when = t
	ev.seq = e.seq
	e.seq++
	e.heapFix(int(ev.index))
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It returns false when the queue is empty. The record is recycled after
// the callback returns, giving handle holders that nil their reference
// inside the callback a race-free window.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.heapPopMin()
	if ev.when < e.now {
		panic("sim: event queue time went backwards")
	}
	e.now = ev.when
	e.nfired++
	fn := ev.fn
	ev.state = stateDead
	fn(e.now)
	e.release(ev)
	return true
}

// RunUntil fires events in timestamp order until the clock reaches t (events
// at exactly t do fire) or the queue drains. The clock is left at t or at
// the time of the last fired event, whichever is later.
func (e *Engine) RunUntil(t Time) {
	for len(e.queue) > 0 && e.queue[0].when <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d cycles (see RunUntil).
func (e *Engine) RunFor(d Cycles) { e.RunUntil(e.now.Add(d)) }

// Drain fires every pending event. It is mainly useful in tests; real
// simulations have periodic sources and never drain. The limit guards
// against runaway self-rescheduling loops: Drain panics after firing limit
// events if the queue is still non-empty.
func (e *Engine) Drain(limit int) {
	for i := 0; len(e.queue) > 0; i++ {
		if i >= limit {
			panic(fmt.Sprintf("sim: Drain exceeded %d events", limit))
		}
		e.Step()
	}
}
