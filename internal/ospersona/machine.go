package ospersona

import (
	"fmt"

	"wdmlat/internal/cpu"
	"wdmlat/internal/hw"
	"wdmlat/internal/kernel"
	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
)

// Interrupt vectors of the simulated board.
const (
	VectorClock   = 32
	VectorDisk    = 34
	VectorNIC     = 35
	VectorSound   = 36
	VectorDisplay = 38 // 37 is the soft modem's, claimed in internal/modem
)

// Options configures machine assembly.
type Options struct {
	// Seed drives all stochastic behaviour; same seed, same run.
	Seed uint64
	// CPUFreq defaults to the 300 MHz Pentium II of Table 2.
	CPUFreq sim.Freq
	// PITPeriod defaults to 1 ms (the tools' 1 kHz reprogramming, §2.2).
	PITPeriod sim.Cycles
	// VirusScanner installs the Plus! 98 virus scanner file hooks
	// (Figure 5). The paper's Figure 4 data is *without* it.
	VirusScanner bool
	// SoundScheme enables the default Windows sound scheme: UI events play
	// sounds through SYSAUDIO/KMIXER (Table 4). The paper's headline runs
	// use the "no sound" scheme.
	SoundScheme bool
	// WorkerPriority overrides the kernel work-item worker's priority
	// (ablation knob for the paper's §4.2 explanation of the NT RT-24 vs
	// RT-28 gap). Zero keeps the OS default (real-time default, 24).
	WorkerPriority int
	// PIODisk disables the bus-master DMA configuration of Table 2 ("A
	// key point, easily overlooked, is that both OSs have been configured
	// to use DMA drivers for the IDE devices"): disk transfers then burn
	// CPU in the driver DPC at DISPATCH_LEVEL instead of overlapping.
	PIODisk bool
	// NICModeration selects the card's interrupt-moderation mode for the
	// storm frontier. The zero value (per-window) is the behaviour every
	// paper-era figure was produced under.
	NICModeration hw.Moderation
	// NICGap is the moderation spacing in cycles: the fixed inter-assert
	// gap for ITR, or the adaptive upper bound (the lower bound is
	// NICGap/16, floored at one ISR's worth). Zero defaults to 250 µs, the
	// e100-class default throttle.
	NICGap sim.Cycles
}

func (o *Options) fillDefaults() {
	if o.CPUFreq == 0 {
		o.CPUFreq = sim.DefaultFreq
	}
	if o.PITPeriod == 0 {
		o.PITPeriod = o.CPUFreq.FromMillis(1)
	}
}

// Machine is one assembled test system: CPU, OS, devices and stock
// drivers. Workload generators drive it through the activity methods
// (FileOp, UIEvent, NetDeliver, RenderFrame, PageFaultBurst); measurement
// tools attach to its kernel and PIT.
type Machine struct {
	OS      OS
	Profile *Profile
	Opts    Options

	Eng     *sim.Engine
	CPU     *cpu.CPU
	Kernel  *kernel.Kernel
	PIT     *hw.PIT
	Disk    *hw.Disk
	NIC     *hw.NIC
	Sound   *hw.Sound
	Display *hw.Display // built lazily by StartFramePacing

	rng *sim.RNG

	diskDpc    *kernel.DPC
	nicDpc     *kernel.DPC
	soundDpc   *kernel.DPC
	displayDpc *kernel.DPC

	// pending per-DPC extra work, fed by activity events and drained by
	// the device DPC bodies.
	diskDpcExtra    sim.Cycles
	nicDpcExtra     sim.Cycles
	soundDpcExtra   sim.Cycles
	displayDpcExtra sim.Cycles

	// completion callbacks for in-flight disk requests, run in DPC context.
	audio *audioPipeline

	// frame-pacing application (lazy, StartFramePacing).
	pacing *pacingApp

	// nicLat, when non-nil, switches the NIC DPC into storm accounting:
	// per-packet arrival-to-indication latency plus the per-OS NicIndicate
	// cost. Nil (the default) keeps the original drain path, so every
	// pre-storm artifact stays byte-identical.
	nicLat *stats.Histogram

	// Activity counters.
	fileOps, uiEvents, netBursts, frames, pageFaults uint64
}

// Build assembles a machine running the given OS.
func Build(os OS, opts Options) *Machine {
	opts.fillDefaults()
	prof := ProfileFor(os)

	eng := sim.NewEngine(opts.Seed)
	c := cpu.New(eng, opts.CPUFreq)
	kcfg := prof.Kernel
	if opts.WorkerPriority != 0 {
		kcfg.WorkerPriority = opts.WorkerPriority
	}
	k := kernel.New(eng, c, kcfg)
	k.Boot(VectorClock, opts.PITPeriod)

	m := &Machine{
		OS:      os,
		Profile: prof,
		Opts:    opts,
		Eng:     eng,
		CPU:     c,
		Kernel:  k,
		rng:     eng.RNG().Split(),
	}

	// The PIT drives the OS clock.
	m.PIT = hw.NewPIT(eng, k.InterruptForVector(VectorClock))
	m.PIT.Program(opts.PITPeriod)

	m.buildDisk()
	m.buildNIC()
	m.buildSound()
	return m
}

// Shutdown unwinds the machine's thread goroutines. Call when done.
func (m *Machine) Shutdown() { m.Kernel.Shutdown() }

// RunFor advances the machine by d cycles of virtual time.
func (m *Machine) RunFor(d sim.Cycles) { m.Eng.RunFor(d) }

// Now returns the machine's current virtual time.
func (m *Machine) Now() sim.Time { return m.Eng.Now() }

// Freq returns the CPU clock frequency.
func (m *Machine) Freq() sim.Freq { return m.CPU.Freq() }

// MS converts milliseconds to cycles on this machine.
func (m *Machine) MS(v float64) sim.Cycles { return m.Freq().FromMillis(v) }

// --- stock drivers ---------------------------------------------------------

func (m *Machine) buildDisk() {
	k := m.Kernel
	intr := k.Connect(VectorDisk, 16, "ESDI_506", "_DiskISR", func(c *kernel.IsrContext) {
		c.Charge(us(4))
		c.QueueDpc(m.diskDpc)
	})
	m.Disk = hw.NewDisk(m.Eng, intr, m.Profile.DiskSeek, m.Profile.DiskBytesPerCycle)
	m.Disk.PIO = m.Opts.PIODisk
	m.diskDpc = kernel.NewDPC("IDEDISK", kernel.MediumImportance, func(c *kernel.DpcContext) {
		c.Charge(m.takeExtra(&m.diskDpcExtra))
		for {
			req := m.Disk.CompleteTransfer()
			if req == nil {
				break
			}
			if m.Disk.PIO {
				// Programmed I/O: the driver moves the data itself at
				// DISPATCH_LEVEL.
				c.Charge(m.Disk.TransferCycles(req))
			}
			if fn, ok := req.Tag.(func(*kernel.DpcContext)); ok && fn != nil {
				fn(c)
			}
			m.Disk.FreeRequest(req)
		}
	})
}

func (m *Machine) buildNIC() {
	k := m.Kernel
	intr := k.Connect(VectorNIC, 17, "E100B", "_NicISR", func(c *kernel.IsrContext) {
		c.Charge(us(5))
		c.QueueDpc(m.nicDpc)
	})
	m.NIC = hw.NewNIC(m.Eng, intr, 128, us(12)) // ~100 Mbit inter-frame gap
	if m.Opts.NICModeration != hw.ModeratePerWindow {
		gap := m.Opts.NICGap
		if gap == 0 {
			gap = us(250) // e100-class default throttle
		}
		switch m.Opts.NICModeration {
		case hw.ModerateITR:
			m.NIC.SetModeration(hw.ModerateITR, gap, 0, 0)
		case hw.ModerateAdaptive:
			lo := gap / 16
			if lo < us(5) {
				lo = us(5) // no tighter than one ISR's worth
			}
			m.NIC.SetModeration(hw.ModerateAdaptive, 0, lo, gap)
		}
	}
	m.nicDpc = kernel.NewDPC("E100B", kernel.MediumImportance, func(c *kernel.DpcContext) {
		c.Charge(m.takeExtra(&m.nicDpcExtra))
		if m.nicLat != nil {
			// Storm accounting: record each packet's queueing delay and
			// charge the per-OS indication cost.
			pkts, waits := m.NIC.DrainTimed(32)
			for _, w := range waits {
				m.nicLat.Add(w)
			}
			c.Charge(sim.Cycles(len(pkts)) * m.Profile.NicIndicate)
			return
		}
		pkts := m.NIC.Drain(32)
		c.Charge(sim.Cycles(len(pkts)) * us(6)) // per-packet indication cost
	})
}

func (m *Machine) buildSound() {
	k := m.Kernel
	intr := k.Connect(VectorSound, 18, "SNDCARD", "_SoundISR", func(c *kernel.IsrContext) {
		c.Charge(us(3))
		c.QueueDpc(m.soundDpc)
	})
	m.Sound = hw.NewSound(m.Eng, intr, 4)
	m.soundDpc = kernel.NewDPC("SNDCARD", kernel.MediumImportance, func(c *kernel.DpcContext) {
		c.Charge(m.takeExtra(&m.soundDpcExtra))
		if m.audio != nil {
			m.audio.onBufferComplete(c)
		}
	})
}

func (m *Machine) takeExtra(p *sim.Cycles) sim.Cycles {
	v := *p
	*p = 0
	return v
}

// --- interference plumbing -------------------------------------------------

// apply realizes one activity event's OS response: episodes, DPC work and
// work items per the profile.
func (m *Machine) apply(r eventResponse, lockFrames, maskFrames frameSet, extra *sim.Cycles) {
	if r.MaskProb > 0 && r.Mask != nil && m.rng.Bool(r.MaskProb) {
		f := maskFrames.pick(m.rng)
		m.Kernel.InjectEpisode(kernel.MaskInterrupts, r.Mask.Draw(m.rng), f.Module, f.Function)
	}
	if r.LockProb > 0 && r.Lock != nil && m.rng.Bool(r.LockProb) {
		f := lockFrames.pick(m.rng)
		m.Kernel.InjectEpisode(kernel.LockScheduler, r.Lock.Draw(m.rng), f.Module, f.Function)
	}
	if r.DpcWork != nil && extra != nil {
		*extra += r.DpcWork.Draw(m.rng)
	}
	if r.WorkItemProb > 0 && r.WorkItem != nil && m.rng.Bool(r.WorkItemProb) {
		m.Kernel.QueueWorkItem(&kernel.WorkItem{
			Name:   "ospersona.work",
			Cycles: r.WorkItem.Draw(m.rng),
		})
	}
}

// --- activity surface (driven by the workload package) ---------------------

// FileOp performs an asynchronous file system operation of the given size.
// onDone (optional) runs in the disk DPC when the transfer completes. With
// the virus scanner installed, reads and writes may trigger a scan
// (Figure 5).
func (m *Machine) FileOp(bytes int, write bool, onDone func(*kernel.DpcContext)) {
	m.fileOps++
	m.apply(m.Profile.FileOp, m.Profile.LockFrames, m.Profile.MaskFrames, &m.diskDpcExtra)
	if m.Opts.VirusScanner {
		m.apply(m.Profile.VirusScanner, m.Profile.ScanFrames, m.Profile.MaskFrames, nil)
	}
	req := m.Disk.AllocRequest()
	req.Bytes, req.Write, req.Tag = bytes, write, onDone
	m.Disk.Submit(req)
}

// UIEvent models one user-interface event (keystroke batch, menu, dialog).
// With a sound scheme enabled it also plays an event sound through
// SYSAUDIO/KMIXER (Table 4: "EVERY time a submenu appears").
func (m *Machine) UIEvent() {
	m.uiEvents++
	m.apply(m.Profile.UIEvent, m.Profile.LockFrames, m.Profile.MaskFrames, nil)
	if m.Opts.SoundScheme {
		m.apply(m.Profile.SoundScheme, m.Profile.SoundFrames, m.Profile.MaskFrames, &m.soundDpcExtra)
		// The event sound reaches the card: one buffer-complete interrupt
		// carries the KMIXER processing into the DPC path.
		m.Kernel.InterruptForVector(VectorSound).Assert()
	}
}

// NetDeliver delivers a burst of received packets through the NIC.
func (m *Machine) NetDeliver(packets, bytesEach int) {
	m.netBursts++
	m.apply(m.Profile.NetBurst, m.Profile.LockFrames, m.Profile.MaskFrames, &m.nicDpcExtra)
	m.NIC.DeliverBurst(packets, bytesEach)
}

// RenderFrame models one 3D game frame: display/sound VxD activity.
func (m *Machine) RenderFrame() {
	m.frames++
	m.apply(m.Profile.Frame, m.Profile.LockFrames, m.Profile.MaskFrames, &m.soundDpcExtra)
	m.Kernel.InterruptForVector(VectorSound).Assert()
}

// PageFaultBurst models a hard page-fault burst: VMM page hunting plus the
// backing disk I/O.
func (m *Machine) PageFaultBurst(pages int) {
	m.pageFaults++
	m.apply(m.Profile.PageFault, m.Profile.LockFrames, m.Profile.MaskFrames, &m.diskDpcExtra)
	if pages > 0 {
		req := m.Disk.AllocRequest()
		req.Bytes, req.Tag = pages*4096, (func(*kernel.DpcContext))(nil)
		m.Disk.Submit(req)
	}
}

// Counters returns how many activity events of each kind were applied.
func (m *Machine) Counters() (fileOps, uiEvents, netBursts, frames, pageFaults uint64) {
	return m.fileOps, m.uiEvents, m.netBursts, m.frames, m.pageFaults
}

// String describes the machine.
func (m *Machine) String() string {
	return fmt.Sprintf("%s on %v Pentium II, PIT %v", m.Profile.Name, m.Freq(), m.PIT.Period())
}
