package metrics

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestCounterBasics: counters accumulate and identical names alias the same
// instrument.
func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cells")
	c.Inc()
	c.Add(4)
	if got := r.Counter("cells").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("cells") != c {
		t.Fatal("same name returned a different counter")
	}
	if got := r.Counter("other").Value(); got != 0 {
		t.Fatalf("fresh counter = %d, want 0", got)
	}
}

// TestGaugeWatermark: a gauge that rises and fully drains still reports its
// high-watermark — the property that makes end-of-campaign snapshots of
// queue depth and busy workers informative.
func TestGaugeWatermark(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	for i := 0; i < 7; i++ {
		g.Inc()
	}
	for i := 0; i < 7; i++ {
		g.Dec()
	}
	if v := g.Value(); v != 0 {
		t.Fatalf("drained gauge value = %d, want 0", v)
	}
	if m := g.Max(); m != 7 {
		t.Fatalf("gauge max = %d, want 7", m)
	}
	g.Set(-3)
	if v, m := g.Value(), g.Max(); v != -3 || m != 7 {
		t.Fatalf("after Set(-3): value %d max %d, want -3 and 7", v, m)
	}
}

// TestHistogramObserve: durations land in the wall-time histogram with
// sane count/mean/quantile readings, and negative observations clamp.
func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wall")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	h.Observe(-time.Second) // clamps to 0, must not panic
	if n := h.Count(); n != 101 {
		t.Fatalf("count = %d, want 101", n)
	}
	mean := h.Mean()
	if mean < 40*time.Millisecond || mean > 60*time.Millisecond {
		t.Fatalf("mean = %v, want ~50ms", mean)
	}
	p50 := h.Quantile(0.5)
	if p50 < 40*time.Millisecond || p50 > 60*time.Millisecond {
		t.Fatalf("p50 = %v, want ~50ms", p50)
	}
	if q99, q50 := h.Quantile(0.99), h.Quantile(0.5); q99 < q50 {
		t.Fatalf("quantiles not monotone: p99 %v < p50 %v", q99, q50)
	}
}

// TestNilRegistrySafe: a nil registry hands out nil instruments whose
// methods are no-ops — the "telemetry off" mode instrumented code relies on
// having zero branches at call sites.
func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Counter("c").Add(3)
	r.Gauge("g").Inc()
	r.Gauge("g").Dec()
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(time.Second)
	if v := r.Counter("c").Value(); v != 0 {
		t.Fatalf("nil counter value = %d", v)
	}
	if v, m := r.Gauge("g").Value(), r.Gauge("g").Max(); v != 0 || m != 0 {
		t.Fatalf("nil gauge value/max = %d/%d", v, m)
	}
	if n := r.Histogram("h").Count(); n != 0 {
		t.Fatalf("nil histogram count = %d", n)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil registry WriteJSON: %v", err)
	}
}

// TestSnapshotDeterministic: two registries that saw the same updates —
// applied in different creation and update orders — export byte-identical
// JSON. This is the deterministic-key-ordering contract the telemetry
// artifacts depend on.
func TestSnapshotDeterministic(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()

	a.Counter("alpha").Add(2)
	a.Counter("beta").Add(5)
	a.Gauge("depth").Set(4)
	a.Histogram("wall").Observe(3 * time.Millisecond)
	a.Histogram("wall").Observe(9 * time.Millisecond)

	b.Histogram("wall").Observe(3 * time.Millisecond)
	b.Gauge("depth").Set(4)
	b.Counter("beta").Add(5)
	b.Histogram("wall").Observe(9 * time.Millisecond)
	b.Counter("alpha").Add(2)

	var ja, jb bytes.Buffer
	if err := a.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", ja.String(), jb.String())
	}
	// The export must round-trip as JSON with the expected sections.
	var s Snapshot
	if err := json.Unmarshal(ja.Bytes(), &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if s.Counters["alpha"] != 2 || s.Counters["beta"] != 5 {
		t.Fatalf("decoded counters wrong: %+v", s.Counters)
	}
	if s.Gauges["depth"].Value != 4 || s.Gauges["depth"].Max != 4 {
		t.Fatalf("decoded gauge wrong: %+v", s.Gauges["depth"])
	}
	if s.Histograms["wall"].Count != 2 {
		t.Fatalf("decoded histogram wrong: %+v", s.Histograms["wall"])
	}
}

// TestRegistryConcurrent hammers one counter, gauge and histogram from many
// goroutines; the counter total must be exact, and the race detector (make
// race) turns any unsynchronized access into a failure.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("hits").Inc()
				r.Gauge("busy").Inc()
				r.Histogram("wall").Observe(time.Microsecond)
				r.Gauge("busy").Dec()
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("hits").Value(); v != workers*per {
		t.Fatalf("counter = %d, want %d", v, workers*per)
	}
	if n := r.Histogram("wall").Count(); n != workers*per {
		t.Fatalf("histogram count = %d, want %d", n, workers*per)
	}
	if v := r.Gauge("busy").Value(); v != 0 {
		t.Fatalf("drained gauge = %d, want 0", v)
	}
	if m := r.Gauge("busy").Max(); m < 1 || m > workers {
		t.Fatalf("gauge max = %d, want within [1,%d]", m, workers)
	}
}
