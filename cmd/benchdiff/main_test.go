package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func res(ns float64, allocs float64, hasAlloc bool) benchResult {
	return benchResult{NsPerOp: ns, AllocsOp: allocs, hasNs: true, hasAlloc: hasAlloc}
}

// A 0 ns/op baseline must not produce an Inf/NaN ratio, a garbage speedup
// column, or a spurious time-regression verdict.
func TestCompareRowZeroBaseline(t *testing.T) {
	v := compareRow("BenchmarkX", res(0, 0, false), res(57.3, 0, false), 0.10)
	if v.speedup != "n/a" {
		t.Errorf("speedup = %q, want n/a", v.speedup)
	}
	if len(v.failures) != 0 || v.status != "" {
		t.Errorf("zero baseline flagged a regression: status %q, failures %v",
			v.status, v.failures)
	}
	for _, cell := range []string{v.speedup, v.allocs, v.status} {
		if strings.Contains(cell, "Inf") || strings.Contains(cell, "NaN") {
			t.Errorf("cell %q leaks a degenerate ratio", cell)
		}
	}
}

// Both sides zero: still no verdict, still "n/a".
func TestCompareRowBothZero(t *testing.T) {
	v := compareRow("BenchmarkX", res(0, 0, false), res(0, 0, false), 0.10)
	if v.speedup != "n/a" || len(v.failures) != 0 {
		t.Errorf("both-zero row: speedup %q failures %v", v.speedup, v.failures)
	}
}

// Zero new time with a real baseline: the ratio would be +Inf, so the column
// reads "n/a"; a faster benchmark is never a regression.
func TestCompareRowZeroNew(t *testing.T) {
	v := compareRow("BenchmarkX", res(42, 0, false), res(0, 0, false), 0.10)
	if v.speedup != "n/a" || len(v.failures) != 0 {
		t.Errorf("zero-new row: speedup %q failures %v", v.speedup, v.failures)
	}
}

// The zero-baseline guard must not mask real regressions elsewhere.
func TestCompareRowTimeRegressionStillCaught(t *testing.T) {
	v := compareRow("BenchmarkY", res(100, 2, true), res(150, 2, true), 0.10)
	if !strings.Contains(v.status, "REGRESSION(time)") || len(v.failures) != 1 {
		t.Fatalf("50%% slowdown not flagged: status %q failures %v", v.status, v.failures)
	}
	if !strings.Contains(v.failures[0], "BenchmarkY") {
		t.Errorf("failure line missing benchmark name: %q", v.failures[0])
	}
	if v.speedup != "0.67x" {
		t.Errorf("speedup = %q, want 0.67x", v.speedup)
	}
}

// The allocs gate is ratio-free and applies even when the time baseline is
// zero — alloc growth must still fail the gate.
func TestCompareRowAllocRegressionWithZeroTimeBaseline(t *testing.T) {
	v := compareRow("BenchmarkZ", res(0, 0, true), res(10, 3, true), 0.10)
	if !strings.Contains(v.status, "REGRESSION(allocs)") || len(v.failures) != 1 {
		t.Fatalf("alloc growth not flagged: status %q failures %v", v.status, v.failures)
	}
	if v.speedup != "n/a" {
		t.Errorf("speedup = %q, want n/a", v.speedup)
	}
	if v.allocs != "0 -> 3" {
		t.Errorf("allocs cell = %q, want 0 -> 3", v.allocs)
	}
}

// Within-tolerance slowdown passes.
func TestCompareRowWithinTolerance(t *testing.T) {
	v := compareRow("BenchmarkW", res(100, 1, true), res(105, 1, true), 0.10)
	if len(v.failures) != 0 || v.status != "" {
		t.Errorf("5%% slowdown should pass: status %q failures %v", v.status, v.failures)
	}
	if v.speedup != "0.95x" {
		t.Errorf("speedup = %q, want 0.95x", v.speedup)
	}
}

// writeBenchJSON writes a synthetic `go test -json` bench record, using the
// split name/metrics event shape `make bench` actually produces (benchmark
// name in the Test field, metrics alone in Output).
func writeBenchJSON(t *testing.T, name string, lines ...string) string {
	t.Helper()
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func event(test, output string) string {
	return `{"Action":"output","Test":"` + test + `","Output":"` + output + `"}`
}

// TestWriteComparisonTable drives parse + render end to end over a synthetic
// JSON pair: the table must carry the allocs/op column, per-row speedups,
// and the regression verdicts the exit code is derived from.
func TestWriteComparisonTable(t *testing.T) {
	base := writeBenchJSON(t, "base.json",
		event("BenchmarkFast", "1000 100.0 ns/op 0 B/op 0 allocs/op"),
		event("BenchmarkSlow", "500 200.0 ns/op 16 B/op 2 allocs/op"),
		event("BenchmarkOnlyInBase", "10 5.0 ns/op"),
	)
	newer := writeBenchJSON(t, "new.json",
		event("BenchmarkFast", "2000 50.0 ns/op 0 B/op 0 allocs/op"),
		event("BenchmarkSlow", "400 260.0 ns/op 24 B/op 3 allocs/op"),
		event("BenchmarkOnlyInNew", "10 5.0 ns/op"),
	)
	baseRes, err := parseBenchFile(base)
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := parseBenchFile(newer)
	if err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	failures, err := writeComparison(&out, baseRes, newRes, "base.json", "new.json", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	table := out.String()

	for _, want := range []string{
		"allocs/op",          // header column
		"2.00x",              // BenchmarkFast speedup
		"0 -> 0",             // BenchmarkFast allocs cell
		"0.77x",              // BenchmarkSlow speedup
		"2 -> 3",             // BenchmarkSlow allocs cell
		"REGRESSION(time)",   // 30% > 10% policy
		"REGRESSION(allocs)", // 2 -> 3
		"2 benchmarks compared (base.json -> new.json)",
	} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	for _, reject := range []string{"BenchmarkOnlyInBase", "BenchmarkOnlyInNew", "no regressions"} {
		if strings.Contains(table, reject) {
			t.Errorf("table wrongly contains %q:\n%s", reject, table)
		}
	}
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want exactly a time and an allocs regression", failures)
	}
}

// A clean pair renders the pass line and no failures.
func TestWriteComparisonClean(t *testing.T) {
	base := writeBenchJSON(t, "base.json",
		event("BenchmarkFast", "1000 100.0 ns/op 0 B/op 0 allocs/op"))
	newer := writeBenchJSON(t, "new.json",
		event("BenchmarkFast", "1000 101.0 ns/op 0 B/op 0 allocs/op"))
	baseRes, _ := parseBenchFile(base)
	newRes, _ := parseBenchFile(newer)
	var out strings.Builder
	failures, err := writeComparison(&out, baseRes, newRes, "b", "n", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("clean pair produced failures: %v", failures)
	}
	if !strings.Contains(out.String(), "no regressions beyond policy") {
		t.Errorf("pass line missing:\n%s", out.String())
	}
}

// Disjoint records are a tooling mistake, not a pass.
func TestWriteComparisonNoCommon(t *testing.T) {
	var out strings.Builder
	_, err := writeComparison(&out,
		map[string]benchResult{"BenchmarkA": res(1, 0, false)},
		map[string]benchResult{"BenchmarkB": res(1, 0, false)},
		"b", "n", 0.10)
	if err == nil || !strings.Contains(err.Error(), "no common benchmarks") {
		t.Fatalf("err = %v, want no-common-benchmarks error", err)
	}
}
