package causetool_test

import (
	"strings"
	"testing"
	"time"

	"wdmlat/internal/causetool"
	"wdmlat/internal/kernel"
	"wdmlat/internal/sim"
)

func TestNMISourceSamplesAtConfiguredRate(t *testing.T) {
	m := newMachine(t, 21)
	tool := causetool.Attach(m.Kernel, causetool.Options{
		Source:       causetool.PerfCounterNMI,
		SamplePeriod: m.MS(0.25),
	})
	m.RunFor(m.Freq().Cycles(time.Second))
	// 4 kHz vs the PIT hook's 1 kHz.
	if n := tool.Samples(); n < 3900 || n > 4100 {
		t.Fatalf("NMI samples = %d, want ~4000", n)
	}
	tool.Detach()
	before := tool.Samples()
	m.RunFor(m.Freq().Cycles(time.Second))
	if tool.Samples() != before {
		t.Fatal("sampler survived Detach")
	}
}

// The §6.1 payoff: the PIT hook cannot see inside interrupt-masked windows
// (its own interrupt is masked); the NMI sampler can, so masked-window
// episodes get attributed.
func TestNMISeesInsideMaskedWindowsPITDoesNot(t *testing.T) {
	countMaskedSamples := func(src causetool.Source) int {
		m := newMachine(t, 22)
		tool := causetool.Attach(m.Kernel, causetool.Options{
			Source:       src,
			SamplePeriod: m.MS(0.25),
			Threshold:    m.MS(3),
			RingSize:     256, // cover the whole 40 ms dump window at 4 kHz
		})
		// Repeating 5 ms masked windows attributed to a VxD.
		var inject func(sim.Time)
		inject = func(sim.Time) {
			m.Kernel.InjectEpisode(kernel.MaskInterrupts, m.MS(5), "VXD", "_MaskedRegion")
			m.Eng.After(m.MS(50), "inj", inject)
		}
		m.Eng.After(m.MS(10), "inj", inject)
		m.RunFor(m.Freq().Cycles(2 * time.Second))
		// Dump everything currently in the ring as one episode.
		tool.OnLatency(m.MS(40))
		eps := tool.Episodes()
		if len(eps) == 0 {
			return 0
		}
		n := 0
		for _, fc := range eps[0].Analysis() {
			if fc.Frame.Module == "VXD" {
				n += fc.Count
			}
		}
		return n
	}
	pit := countMaskedSamples(causetool.PITHook)
	nmi := countMaskedSamples(causetool.PerfCounterNMI)
	if pit != 0 {
		t.Fatalf("PIT hook sampled %d times inside masked windows", pit)
	}
	if nmi == 0 {
		t.Fatal("NMI sampler saw nothing inside masked windows")
	}
}

func TestStackWalkingProducesCallTrees(t *testing.T) {
	m := newMachine(t, 23)
	tool := causetool.Attach(m.Kernel, causetool.Options{
		Source:       causetool.PerfCounterNMI,
		SamplePeriod: m.MS(0.2),
		Threshold:    m.MS(3),
		WalkStack:    true,
		RingSize:     1024,
	})
	// A scheduler-locked episode with a long DPC running on top of it:
	// NMI samples during the DPC see the two-deep stack [episode, DPC].
	d := kernel.NewDPC("LONGDPC", kernel.MediumImportance, func(c *kernel.DpcContext) {
		c.Charge(m.MS(4))
	})
	m.Eng.At(sim.Time(m.MS(10)), "ep", func(sim.Time) {
		m.Kernel.InjectEpisode(kernel.LockScheduler, m.MS(12), "VMM", "_mmFindContig")
	})
	m.Eng.At(sim.Time(m.MS(12)), "dpc", func(sim.Time) { m.Kernel.QueueDpc(d) })
	m.RunFor(m.Freq().Cycles(40 * time.Millisecond))
	tool.OnLatency(m.MS(35)) // window covers the episode at 10-22 ms

	eps := tool.Episodes()
	if len(eps) == 0 {
		t.Fatal("no episode")
	}
	trees := eps[0].CallTrees()
	if len(trees) == 0 {
		t.Fatal("no call trees recorded")
	}
	var sawNested bool
	for _, tc := range trees {
		if len(tc.Path) >= 2 &&
			tc.Path[0].Module == "VMM" && tc.Path[1].Module == "LONGDPC" {
			sawNested = true
		}
	}
	if !sawNested {
		paths := make([]string, 0, len(trees))
		for _, tc := range trees {
			paths = append(paths, causetool.FormatPath(tc.Path))
		}
		t.Fatalf("no VMM -> LONGDPC tree; got:\n%s", strings.Join(paths, "\n"))
	}
}

func TestFormatIncludesCallTrees(t *testing.T) {
	m := newMachine(t, 24)
	tool := causetool.Attach(m.Kernel, causetool.Options{
		Source:       causetool.PerfCounterNMI,
		SamplePeriod: m.MS(0.25),
		Threshold:    1,
		WalkStack:    true,
		RingSize:     512,
	})
	m.Eng.At(sim.Time(m.MS(5)), "ep", func(sim.Time) {
		m.Kernel.InjectEpisode(kernel.LockScheduler, m.MS(8), "VMM", "_X")
	})
	m.RunFor(m.Freq().Cycles(20 * time.Millisecond))
	tool.OnLatency(m.MS(18))
	var b strings.Builder
	if err := tool.FormatAll(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "call trees:") {
		t.Fatalf("no call trees section:\n%s", b.String())
	}
}
