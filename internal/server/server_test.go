package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wdmlat/internal/api"
	"wdmlat/internal/campaign/store"
	"wdmlat/internal/core"
	"wdmlat/internal/metrics"
	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
)

// fakeResult builds a tiny but codec-complete Result for a config, pure in
// the config (so the determinism contract holds for fakes too).
func fakeResult(cfg core.RunConfig) *core.Result {
	h := stats.NewHistogram(sim.Freq(1e6))
	h.Add(sim.Cycles(cfg.Seed%97) + 1)
	return &core.Result{Config: cfg, OSName: "fake", Samples: cfg.Seed, DpcInt: h}
}

// blockingExec returns an executor that blocks every cell until release is
// closed, plus the release func.
func blockingExec() (func(core.RunConfig) *core.Result, func()) {
	release := make(chan struct{})
	var once sync.Once
	return func(cfg core.RunConfig) *core.Result {
		<-release
		return fakeResult(cfg)
	}, func() { once.Do(func() { close(release) }) }
}

func specN(seed uint64, n int) *api.CampaignSpec {
	s := &api.CampaignSpec{BaseSeed: seed}
	for i := 0; i < n; i++ {
		s.Cells = append(s.Cells, api.CellSpec{
			Key:    fmt.Sprintf("cell/%d", i),
			Config: core.RunConfig{Duration: time.Second},
		})
	}
	return s
}

func postSpec(t *testing.T, ts *httptest.Server, spec *api.CampaignSpec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeStatus(t *testing.T, resp *http.Response) api.Status {
	t.Helper()
	defer resp.Body.Close()
	var st api.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

func waitState(t *testing.T, ts *httptest.Server, id, want string) api.Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeStatus(t, resp)
		if st.State == want {
			return st
		}
		if api.TerminalState(st.State) {
			t.Fatalf("campaign reached terminal state %q (err %q), want %q", st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign never reached state %q", want)
	return api.Status{}
}

func TestOverloadReturns429WithoutBlockingAccept(t *testing.T) {
	reg := metrics.NewRegistry()
	exec, release := blockingExec()
	s := New(Options{Jobs: 1, QueueLimit: 1, Concurrency: 1, Metrics: reg, Execute: exec,
		RetryAfter: 3 * time.Second})
	defer func() { release(); s.Close() }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// First campaign occupies the executor, second fills the queue.
	idA := decodeStatus(t, postSpec(t, ts, specN(1, 1))).ID
	waitState(t, ts, idA, api.StateRunning)
	respB := postSpec(t, ts, specN(2, 1))
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("second submission: %d", respB.StatusCode)
	}
	respB.Body.Close()

	// Third must bounce immediately with 429 + Retry-After.
	start := time.Now()
	respC := postSpec(t, ts, specN(3, 1))
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded submission: %d, want 429", respC.StatusCode)
	}
	if ra := respC.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
	respC.Body.Close()
	if took := time.Since(start); took > 2*time.Second {
		t.Errorf("429 took %v; the accept loop blocked on simulation work", took)
	}

	// The accept loop stays responsive while the executor is wedged.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during overload: %v %v", resp, err)
	}
	resp.Body.Close()

	if got := reg.Counter(MetricRejected).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricRejected, got)
	}

	release()
	waitState(t, ts, idA, api.StateDone)
}

func TestDuplicateSubmissionsShareOneJob(t *testing.T) {
	reg := metrics.NewRegistry()
	exec, release := blockingExec()
	s := New(Options{Jobs: 2, Metrics: reg, Execute: exec})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := specN(9, 3)
	first := decodeStatus(t, postSpec(t, ts, spec))
	waitState(t, ts, first.ID, api.StateRunning)
	second := decodeStatus(t, postSpec(t, ts, spec))
	if second.ID != first.ID {
		t.Fatalf("identical specs got different jobs: %s vs %s", first.ID, second.ID)
	}
	if got := reg.Counter(MetricDeduped).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricDeduped, got)
	}
	if got := reg.Counter(MetricSubmitted).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricSubmitted, got)
	}
	release()
	waitState(t, ts, first.ID, api.StateDone)
	if got := reg.Counter(MetricCellsExec).Value(); got != 3 {
		t.Errorf("%s = %d, want 3 (one execution of each cell)", MetricCellsExec, got)
	}
	// And a post-completion duplicate joins the retained job.
	third := decodeStatus(t, postSpec(t, ts, spec))
	if third.ID != first.ID || third.State != api.StateDone {
		t.Fatalf("post-completion duplicate: %+v", third)
	}
	if got := reg.Counter(MetricCellsExec).Value(); got != 3 {
		t.Errorf("completed-job dedup re-executed cells: %s = %d", MetricCellsExec, got)
	}
}

func TestCancelEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	exec, release := blockingExec()
	s := New(Options{Jobs: 1, Metrics: reg, Execute: exec})
	defer func() { release(); s.Close() }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Two cells on one worker: cell 0 runs (blocked), cell 1 is queued
	// inside the campaign and will be dropped by cancellation.
	id := decodeStatus(t, postSpec(t, ts, specN(4, 2))).ID
	waitState(t, ts, id, api.StateRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	resp.Body.Close()

	release() // let the running cell drain
	st := waitState(t, ts, id, api.StateCancelled)
	if st.Error == "" {
		t.Error("cancelled status has no error detail")
	}
	if got := reg.Counter(MetricCancelled).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricCancelled, got)
	}

	// The result endpoint reports the terminal failure, not 409.
	rresp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusGone {
		t.Errorf("result of cancelled campaign: %d, want 410", rresp.StatusCode)
	}
}

// TestCancelFleetJobReportsCancelled: DELETE on a fleet-mode campaign whose
// cells are waiting on the coordinator (no worker ever leases them) must
// finish state=cancelled, not failed — ExecuteRemote surfaces the bare ctx
// error, and runJob must still classify it as cancellation.
func TestCancelFleetJobReportsCancelled(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Options{Jobs: 2, Metrics: reg, Fleet: &CoordinatorOptions{LeaseTTL: time.Minute}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := decodeStatus(t, postSpec(t, ts, specN(9, 2))).ID
	waitState(t, ts, id, api.StateRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// waitState fails fast on any other terminal state, so a job
	// misreported as failed is caught here, not by timeout.
	waitState(t, ts, id, api.StateCancelled)
	if got := reg.Counter(MetricCancelled).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricCancelled, got)
	}
	if got := reg.Counter(MetricFailed).Value(); got != 0 {
		t.Errorf("%s = %d, want 0", MetricFailed, got)
	}
}

func TestCloseDrainsRunningCellsThroughStore(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	st.Instrument(reg)
	exec, release := blockingExec()
	s := New(Options{Jobs: 1, Metrics: reg, Store: st, Execute: exec})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := decodeStatus(t, postSpec(t, ts, specN(5, 2))).ID
	waitState(t, ts, id, api.StateRunning)

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned while a cell was still running (no drain)")
	case <-time.After(100 * time.Millisecond):
	}
	release()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close never returned after the running cell drained")
	}

	// The running cell drained through the checkpoint path.
	if got := reg.Counter("store_writes").Value(); got != 1 {
		t.Errorf("store_writes = %d, want 1 (the drained running cell)", got)
	}
	// OnCellDone fires for the drained running cell only (the runner
	// deliberately skips cells dropped by cancellation), so Done counts
	// exactly the work that really finished.
	st2 := waitState(t, ts, id, api.StateCancelled)
	if st2.Done != 1 {
		t.Errorf("published cells = %d, want 1 (the drained running cell)", st2.Done)
	}

	// Submissions after Close are refused.
	resp := postSpec(t, ts, specN(6, 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-Close submission: %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestBadRequests(t *testing.T) {
	s := New(Options{Execute: fakeResult, MaxCells: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"invalid json":   {`{`, http.StatusBadRequest},
		"no cells":       {`{"base_seed":1,"cells":[]}`, http.StatusBadRequest},
		"empty key":      {`{"cells":[{"key":"","config":{}}]}`, http.StatusBadRequest},
		"duplicate keys": {`{"cells":[{"key":"a","config":{}},{"key":"a","config":{}}]}`, http.StatusBadRequest},
		"unknown field":  {`{"bogus":1,"cells":[{"key":"a","config":{}}]}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.want {
			t.Errorf("%s: got %d, want %d", name, resp.StatusCode, tc.want)
		}
		resp.Body.Close()
	}

	// Too many cells.
	resp := postSpec(t, ts, specN(1, 5))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("over MaxCells: got %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown ids.
	for _, path := range []string{"/v1/campaigns/nope", "/v1/campaigns/nope/result", "/v1/campaigns/nope/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: got %d, want 404", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Result before completion is 409.
	exec, release := blockingExec()
	s2 := New(Options{Jobs: 1, Execute: exec})
	defer func() { release(); s2.Close() }()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	id := decodeStatus(t, postSpec(t, ts2, specN(7, 1))).ID
	waitState(t, ts2, id, api.StateRunning)
	rresp, err := http.Get(ts2.URL + "/v1/campaigns/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if rresp.StatusCode != http.StatusConflict {
		t.Errorf("early result fetch: got %d, want 409", rresp.StatusCode)
	}
	rresp.Body.Close()
}

func TestEventsStreamCarriesFullLifecycle(t *testing.T) {
	s := New(Options{Jobs: 2, Execute: fakeResult})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := decodeStatus(t, postSpec(t, ts, specN(8, 2))).ID
	waitState(t, ts, id, api.StateDone)

	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []api.Event
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var ev api.Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("decoding event: %v", err)
		}
		events = append(events, ev)
	}
	// queued, running, 2×cell, done — dense seqs, terminal last.
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5: %+v", len(events), events)
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
	}
	if events[0].State != api.StateQueued || events[1].State != api.StateRunning {
		t.Errorf("lifecycle head = %+v", events[:2])
	}
	last := events[len(events)-1]
	if last.Type != api.EventState || last.State != api.StateDone || last.Done != 2 {
		t.Errorf("terminal event = %+v", last)
	}

	// Resume from the middle replays only the tail.
	resp2, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/events?from=4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var tail []api.Event
	dec = json.NewDecoder(resp2.Body)
	for dec.More() {
		var ev api.Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		tail = append(tail, ev)
	}
	if len(tail) != 1 || tail[0].Seq != 4 {
		t.Errorf("from=4 returned %+v", tail)
	}
}
