package sim

import "math/bits"

// The event queue is a hierarchical timing wheel (Varghese & Lauck) with the
// 4-ary min-heap of event.go demoted to an overflow area for the far future.
//
// Layout: wheelLevels levels of wheelSlots slots each. A level-l slot spans
// 256^l cycles, so level 0 buckets events by their exact cycle and level l
// covers deltas in [256^l, 256^(l+1)). An event delta cycles ahead of the
// clock is linked into level floor(log256 delta) — an O(1) insert — and
// cascades one level down each time the clock enters its slot's window,
// reaching level 0 (and dispatch) after at most wheelLevels-1 O(1) moves.
// Events overflowCutoff or more cycles ahead go to the overflow heap and
// migrate into the wheel as the clock approaches (see migrate/advanceTo).
//
// Slots are circular doubly-linked lists threaded through the Event records
// themselves (next/prev, with head.prev holding the tail for O(1) append),
// so the wheel allocates nothing: events move between the free list, slot
// lists and the overflow heap without a single per-slot slice. Per-level
// occupancy bitmaps (one bit per slot) make "next occupied slot" a handful
// of word scans, which is what lets the clock jump across empty regions in
// O(levels) instead of ticking slot by slot.
//
// Ordering invariant. Dispatch order is strictly (when, seq). A level-0
// slot maps to exactly one instant (all level-0 events lie within
// wheelSlots cycles of the clock, so slot index identifies the cycle), so
// within a level-0 slot ordering is pure seq — and wheelLink keeps level-0
// lists sorted by seq. That sort is a tail append in the common case (live
// At/After calls carry the largest seq yet issued); the walk only triggers
// when same-instant events reach the slot out of seq order, which takes a
// mixed history — e.g. event A scheduled early lands at level 2 while
// same-instant event B scheduled later (closer to the instant) lands at
// level 1, and A's cascade arrives after B's. Higher-level slot lists need
// no order at all: they are dispersed, never dispatched.

const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits // 256 slots per level
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	wheelWords  = wheelSlots / 64 // occupancy bitmap words per level

	// overflowCutoff is the wheel's horizon: events at least this many
	// cycles ahead live in the overflow heap. It is (wheelSlots-1)<<24, not
	// wheelSlots<<24, so that a delta just under the cutoff can never carry
	// past the top level's last reachable slot: below the cutoff the wheel
	// placement always lands strictly ahead of the top-level cursor, and a
	// heap event migrating below the cutoff always re-enters the wheel.
	// At 300 MHz the horizon is ~14 s of virtual time, far beyond every
	// periodic device timer in the simulator.
	overflowCutoff = Cycles((wheelSlots - 1) << ((wheelLevels - 1) * wheelBits))
)

// maxTime is the "no pending event" sentinel returned by nextLandmark.
const maxTime = Time(1<<63 - 1)

// place links a pending event into the wheel or the overflow heap based on
// its distance from the current clock. The caller has set when/seq/state.
func (e *Engine) place(ev *Event) {
	delta := Cycles(ev.when - e.now) // >= 0: scheduling in the past panics
	if delta < wheelSlots {
		e.wheelLink(0, int(uint64(ev.when)&wheelMask), ev)
		return
	}
	if delta >= overflowCutoff {
		ev.level = levelOverflow
		e.heapPush(ev)
		e.migrateAt = e.overflow[0].when - Time(overflowCutoff)
		return
	}
	l := (bits.Len64(uint64(delta)) - 1) >> 3 // floor(log256 delta), 1..3
	sh := uint(l * wheelBits)
	// A carry out of the low bits can push the event one slot past what the
	// delta alone suggests; if that lands it on the level's cursor slot
	// (offset wheelSlots), it belongs one level up, at offset 1 there. The
	// cutoff guarantees this cannot happen at the top level.
	if (uint64(ev.when)>>sh)-(uint64(e.now)>>sh) >= wheelSlots {
		l++
		sh += wheelBits
	}
	e.wheelLink(l, int((uint64(ev.when)>>sh)&wheelMask), ev)
}

// wheelLink links ev into the slot list at (l, s) and marks the slot
// occupied. head.prev is the list tail, so append is O(1) with no sentinel.
// Level-0 lists are kept in seq order (see the ordering invariant above);
// higher levels always append.
func (e *Engine) wheelLink(l, s int, ev *Event) {
	ev.level = int8(l)
	e.lcount[l]++
	h := e.wheel[l][s]
	if h == nil {
		e.wheel[l][s] = ev
		ev.prev = ev // single element: it is its own tail
		e.occupied[l][s>>6] |= 1 << (s & 63)
		return
	}
	t := h.prev
	if l > 0 || t.seq < ev.seq {
		t.next = ev
		ev.prev = t
		h.prev = ev
		return
	}
	// Out-of-order arrival at a level-0 slot: walk back from the tail to
	// the last node scheduled before ev, and insert after it.
	p := t
	for p.seq > ev.seq {
		if p == h {
			p = nil
			break
		}
		p = p.prev
	}
	if p == nil {
		// New head. The old head becomes interior: its prev — the tail
		// pointer — moves to ev, and ev inherits the tail (for a single
		// node, h.prev is h itself, which is exactly ev's predecessor).
		ev.next = h
		ev.prev = h.prev
		h.prev = ev
		e.wheel[l][s] = ev
		return
	}
	ev.next = p.next
	ev.prev = p
	p.next = ev
	ev.next.prev = ev // p had a successor: p was not the tail
}

// wheelUnlink removes a pending event from its slot list in O(1). The slot
// is recomputed from (when, level), so Reschedule must unlink before it
// touches the timestamp.
func (e *Engine) wheelUnlink(ev *Event) {
	l := int(ev.level)
	e.lcount[l]--
	s := int((uint64(ev.when) >> uint(l*wheelBits)) & wheelMask)
	if h := e.wheel[l][s]; ev == h {
		nh := ev.next
		if nh != nil {
			nh.prev = ev.prev // new head inherits the tail pointer
			e.wheel[l][s] = nh
		} else {
			e.wheel[l][s] = nil
			e.occupied[l][s>>6] &^= 1 << (s & 63)
		}
	} else {
		ev.prev.next = ev.next
		if ev.next != nil {
			ev.next.prev = ev.prev
		} else {
			h.prev = ev.prev // ev was the tail
		}
	}
	ev.next, ev.prev = nil, nil
	ev.level = levelNone
}

// unqueue removes a pending event from whichever structure holds it.
func (e *Engine) unqueue(ev *Event) {
	if ev.level == levelOverflow {
		e.heapRemove(int(ev.index))
		ev.level = levelNone
		if len(e.overflow) == 0 {
			e.migrateAt = maxTime
		} else {
			e.migrateAt = e.overflow[0].when - Time(overflowCutoff)
		}
		return
	}
	e.wheelUnlink(ev)
}

// redistribute empties the slot at (l, s), re-placing each event relative
// to the current clock. Walking head-to-tail preserves the relative order
// of same-instant events; every event lands at a strictly lower level (its
// delta has shrunk below its slot's span), so cascading terminates.
func (e *Engine) redistribute(l, s int) {
	ev := e.wheel[l][s]
	e.wheel[l][s] = nil
	e.occupied[l][s>>6] &^= 1 << (s & 63)
	for ev != nil {
		next := ev.next
		ev.next, ev.prev = nil, nil
		e.lcount[l]--
		e.place(ev)
		ev = next
	}
}

// nextBitFrom returns the first set bit at or after from, or -1.
func nextBitFrom(bm *[wheelWords]uint64, from int) int {
	if from >= wheelSlots {
		return -1
	}
	wi := from >> 6
	w := bm[wi] & (^uint64(0) << (from & 63))
	for {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
		wi++
		if wi == wheelWords {
			return -1
		}
		w = bm[wi]
	}
}

// nextLandmark returns the earliest instant at which the queue needs
// attention: the exact time of the next level-0 event, the window start of
// the next occupied higher-level slot (whose events must cascade there), or
// the overflow minimum once the wheel is empty. maxTime means no events.
//
// The returned time never skips an event: every pending event's timestamp
// is >= some landmark at or before it, so advancing the clock to the
// landmark and cascading the slots that come due is always safe.
func (e *Engine) nextLandmark() Time {
	if e.npend == len(e.overflow) {
		// Wheel empty. The heap minimum is exact — and whenever the wheel
		// is non-empty its landmark wins, because every wheel event is
		// within overflowCutoff of the clock and, after the last advance's
		// migration, every heap event is not.
		if len(e.overflow) == 0 {
			return maxTime
		}
		return e.overflow[0].when
	}
	now := uint64(e.now)
	c := int(now & wheelMask)
	best := maxTime
	if e.lcount[0] > 0 {
		if s := nextBitFrom(&e.occupied[0], c); s >= 0 {
			// In-window level-0 hit: at most c+255, before any higher-level
			// slot start, which is past the next 256-cycle boundary.
			return e.now + Time(s-c)
		}
		if s := nextBitFrom(&e.occupied[0], 0); s >= 0 {
			best = e.now + Time(s+wheelSlots-c) // level 0, next revolution
		}
	}
	for l := 1; l < wheelLevels; l++ {
		if e.lcount[l] == 0 {
			continue
		}
		sh := uint(l * wheelBits)
		boundary := Time((now>>sh + 1) << sh)
		if best <= boundary {
			return best // level >= l slots all start at or past boundary
		}
		bm := &e.occupied[l]
		cl := int((now >> sh) & wheelMask)
		var d int
		// Occupied slots at level >= 1 sit strictly ahead of the cursor
		// (its own slot cascades the moment the clock arrives), so the
		// wrap scan below cannot double-count the cursor slot.
		if s := nextBitFrom(bm, cl+1); s >= 0 {
			d = s - cl
		} else {
			d = nextBitFrom(bm, 0) + wheelSlots - cl
		}
		if t := Time((now>>sh + uint64(d)) << sh); t < best {
			best = t
		}
	}
	return best
}

// advanceTo moves the clock to t, migrating newly-near overflow events into
// the wheel and cascading every occupied slot whose window the clock just
// entered. The caller guarantees no event fires in (e.now, t) — t is at most
// the value nextLandmark returned, or the exact timestamp of the earliest
// pending event (minWhen): in either case an occupied higher-level slot
// window cannot lie entirely inside the jump (it would contain an earlier
// event), so it either contains t — it is the landing slot, and cascades —
// or starts after t and is untouched.
//
// The body is small enough to inline; the common case (no overflow events,
// no 256-cycle boundary crossed) advances the clock with no cascade work.
func (e *Engine) advanceTo(t Time) {
	old := e.now
	e.now = t
	if t > e.migrateAt || (uint64(old)^uint64(t))>>wheelBits != 0 {
		e.advanceSlow(old)
	}
}

func (e *Engine) advanceSlow(oldT Time) {
	old, now := uint64(oldT), uint64(e.now)
	// Migrate before cascading: a heap event sharing an instant with a
	// wheel event was necessarily scheduled earlier (see the ordering
	// invariant above), so it must reach the slot list first.
	if e.now > e.migrateAt {
		for len(e.overflow) > 0 && Cycles(e.overflow[0].when-e.now) < overflowCutoff {
			ev := e.heapPopMin()
			ev.level = levelNone
			e.place(ev)
		}
		if len(e.overflow) == 0 {
			e.migrateAt = maxTime
		} else {
			e.migrateAt = e.overflow[0].when - Time(overflowCutoff)
		}
	}
	if e.lcount[1]|e.lcount[2]|e.lcount[3] == 0 {
		return // nothing above level 0: no slot can need a cascade
	}
	for l := 1; l < wheelLevels; l++ {
		sh := uint(l * wheelBits)
		if old>>sh == now>>sh {
			return // this level's cursor did not move; higher ones did not either
		}
		s := int((now >> sh) & wheelMask)
		if e.occupied[l][s>>6]&(1<<(s&63)) != 0 {
			e.redistribute(l, s)
		}
	}
}

// dispatchBatch fires every event at the current instant — the whole
// level-0 slot — in one pass, in FIFO (seq) order. Events the callbacks
// schedule for this same instant are appended to the same slot and fire in
// the same batch; events they cancel are unlinked and skipped. Each record
// is recycled only after its callback returns (the handle-drop window).
func (e *Engine) dispatchBatch() int {
	s := int(uint64(e.now) & wheelMask)
	n := 0
	for {
		ev := e.wheel[0][s]
		if ev == nil {
			break
		}
		// Head unlink, spelled out: the general wheelUnlink re-derives the
		// slot and branches on list position, all known here.
		if nh := ev.next; nh != nil {
			nh.prev = ev.prev
			e.wheel[0][s] = nh
		} else {
			e.wheel[0][s] = nil
			e.occupied[0][s>>6] &^= 1 << (s & 63)
		}
		ev.next, ev.prev = nil, nil
		ev.level = levelNone
		e.lcount[0]--
		e.npend--
		e.nfired++
		n++
		fn := ev.fn
		ev.state = stateDead
		if e.npend == 0 {
			e.minWhen, e.minOK = maxTime, true
		}
		fn(e.now)
		e.release(ev)
	}
	// Everything at this instant is gone; a cached minimum pointing at it
	// is stale (unless a callback emptied-then-refilled the queue, which
	// revalidated it with a strictly later timestamp).
	if e.minOK && e.minWhen == e.now && e.npend > 0 {
		e.minOK = false
	}
	return n
}
