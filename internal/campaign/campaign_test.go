package campaign

import (
	"math"
	"reflect"
	"testing"
	"time"

	"wdmlat/internal/core"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
	"wdmlat/internal/workload"
)

const shortDur = 10 * time.Second // virtual collection per determinism cell

// sameMeasurements asserts that two results carry identical measured data.
// Histogram bucket contents, sample counts and kernel counters must match
// exactly; float accumulators (sum/sumsq) are included via DeepEqual on
// the histograms, which is exact when the merge order is identical.
func sameMeasurements(t *testing.T, label string, a, b *core.Result) {
	t.Helper()
	if a.Samples != b.Samples {
		t.Fatalf("%s: samples differ: %d vs %d", label, a.Samples, b.Samples)
	}
	if a.Observed != b.Observed {
		t.Fatalf("%s: observed span differs: %d vs %d", label, a.Observed, b.Observed)
	}
	if !reflect.DeepEqual(a.DpcInt, b.DpcInt) {
		t.Fatalf("%s: DpcInt histograms differ", label)
	}
	if !reflect.DeepEqual(a.DpcIntOracle, b.DpcIntOracle) {
		t.Fatalf("%s: DpcIntOracle histograms differ", label)
	}
	if !reflect.DeepEqual(a.IntLat, b.IntLat) || !reflect.DeepEqual(a.DpcLat, b.DpcLat) {
		t.Fatalf("%s: legacy-hook split histograms differ", label)
	}
	if !reflect.DeepEqual(a.Thread, b.Thread) {
		t.Fatalf("%s: thread histograms differ", label)
	}
	if !reflect.DeepEqual(a.HwToThread, b.HwToThread) {
		t.Fatalf("%s: hw-to-thread histograms differ", label)
	}
	if a.Counters != b.Counters {
		t.Fatalf("%s: kernel counters differ:\n%+v\n%+v", label, a.Counters, b.Counters)
	}
	if a.AudioUnderruns != b.AudioUnderruns || a.AudioPeriods != b.AudioPeriods {
		t.Fatalf("%s: audio counters differ", label)
	}
	if len(a.Episodes) != len(b.Episodes) {
		t.Fatalf("%s: episode counts differ: %d vs %d", label, len(a.Episodes), len(b.Episodes))
	}
}

// TestParallelEqualsSerial is the determinism regression test: the same
// campaign run serially (jobs=1) and widely parallel (jobs=8) must produce
// identical merged histograms, counters and episode lists for every cell.
func TestParallelEqualsSerial(t *testing.T) {
	oses := []ospersona.OS{ospersona.NT4, ospersona.Win98}
	base := core.RunConfig{Duration: shortDur}
	const runs = 3

	serial := New(Options{BaseSeed: 7, Jobs: 1})
	bySerial, err := serial.RunMatrix(oses, workload.Classes, "default", base, runs)
	if err != nil {
		t.Fatal(err)
	}

	parallel := New(Options{BaseSeed: 7, Jobs: 8})
	byParallel, err := parallel.RunMatrix(oses, workload.Classes, "default", base, runs)
	if err != nil {
		t.Fatal(err)
	}

	for _, o := range oses {
		for _, c := range workload.Classes {
			sameMeasurements(t, MatrixKey(o, c, "default"), bySerial[o][c], byParallel[o][c])
		}
	}
}

// TestSubmissionOrderIrrelevant: submitting the same cells in reverse
// order on a different pool width still yields identical per-cell results,
// because seeds derive from keys, not submission indices.
func TestSubmissionOrderIrrelevant(t *testing.T) {
	cells := MatrixCells([]ospersona.OS{ospersona.Win98}, workload.Classes, "default",
		core.RunConfig{Duration: shortDur}, 1)

	forward, err := Run(cells, Options{BaseSeed: 3, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}

	reversed := make([]Cell, len(cells))
	for i, c := range cells {
		reversed[len(cells)-1-i] = c
	}
	backward, err := Run(reversed, Options{BaseSeed: 3, Jobs: 5})
	if err != nil {
		t.Fatal(err)
	}

	for i := range cells {
		j := len(cells) - 1 - i
		sameMeasurements(t, cells[i].Key, forward[i], backward[j])
	}
}

// TestMergeOrderIndependent asserts Result.Merge pools replicas
// order-independently for everything except float accumulator rounding:
// pooling A,B,C and C,B,A must agree exactly on bucket counts, sample
// counts, extrema, quantiles and kernel counters, and up to rounding on
// means.
func TestMergeOrderIndependent(t *testing.T) {
	cfg := core.RunConfig{OS: ospersona.Win98, Workload: workload.Games, Duration: shortDur}
	run := func(i int) *core.Result {
		c := cfg
		c.Seed = core.ReplicaSeed(11, i)
		return core.Run(c)
	}
	// Two independent, identical replica sets (runs are deterministic).
	fwd := run(0)
	fwd.Merge(run(1))
	fwd.Merge(run(2))
	rev := run(2)
	rev.Merge(run(1))
	rev.Merge(run(0))

	if fwd.Samples != rev.Samples || fwd.Observed != rev.Observed {
		t.Fatalf("pooled totals differ across merge order")
	}
	if fwd.Counters != rev.Counters {
		t.Fatalf("pooled counters differ across merge order")
	}
	check := func(name string, a, b *stats.Histogram) {
		if a.N() != b.N() || a.Min() != b.Min() || a.Max() != b.Max() {
			t.Fatalf("%s: shape differs across merge order", name)
		}
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999} {
			if a.Quantile(q) != b.Quantile(q) {
				t.Fatalf("%s: quantile %.3f differs across merge order", name, q)
			}
		}
		for v := sim.Cycles(1); v < a.Max(); v *= 4 {
			if a.CCDF(v) != b.CCDF(v) {
				t.Fatalf("%s: CCDF(%d) differs across merge order", name, v)
			}
		}
		if d := math.Abs(a.Mean() - b.Mean()); d > 1e-6*math.Max(1, a.Mean()) {
			t.Fatalf("%s: mean differs beyond rounding: %g vs %g", name, a.Mean(), b.Mean())
		}
	}
	check("DpcInt", fwd.DpcInt, rev.DpcInt)
	for p := range fwd.Thread {
		check("Thread", fwd.Thread[p], rev.Thread[p])
		check("HwToThread", fwd.HwToThread[p], rev.HwToThread[p])
	}
}

// TestRunnerSeedDerivation: cell seeds depend only on (base, key).
func TestRunnerSeedDerivation(t *testing.T) {
	key := MatrixKey(ospersona.NT4, workload.Web, "default")
	want := sim.DeriveSeed(42, ReplicaKey(key, 0))
	r := New(Options{BaseSeed: 42, Jobs: 2})
	cfg := core.RunConfig{OS: ospersona.NT4, Workload: workload.Web, Duration: time.Second}
	r.Submit(Replicas(key, cfg, 1)...)
	res, err := r.Merged(key, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Seed != want {
		t.Fatalf("cell seed %d, want derived %d", res.Config.Seed, want)
	}
	if res.Config.OS != ospersona.NT4 || res.Config.Workload != workload.Web {
		t.Fatalf("cell config not preserved: %+v", res.Config)
	}
}

// TestDuplicateKeyPanics: a key collision would silently correlate cells.
func TestDuplicateKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate key must panic")
		}
	}()
	r := New(Options{Jobs: 1})
	c := Cell{Key: "a/b/c/0", Config: core.RunConfig{Duration: time.Second}}
	r.Submit(c, c)
}

// TestWaitDrainsCampaign: Wait returns only after every cell completes.
func TestWaitDrainsCampaign(t *testing.T) {
	r := New(Options{BaseSeed: 5, Jobs: 4})
	cells := MatrixCells([]ospersona.OS{ospersona.NT4}, workload.Classes, "default",
		core.RunConfig{Duration: time.Second}, 2)
	r.Submit(cells...)
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		res, err := r.Result(c.Key)
		if err != nil || res == nil {
			t.Fatalf("cell %s missing after Wait: %v", c.Key, err)
		}
	}
}
