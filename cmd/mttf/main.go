// mttf reproduces Figures 6 and 7: the mean time to buffer underrun for a
// soft-modem datapump on Windows 98 as a function of its total buffering,
// for a DPC-based (-mode dpc) or thread-based (-mode thread) datapump, per
// application stress class. The curves are derived from measured latency
// tables exactly as in §5; -validate cross-checks a few points against a
// direct datapump simulation running alongside the stress load.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"wdmlat/internal/campaign"
	"wdmlat/internal/cli"
	"wdmlat/internal/core"
	"wdmlat/internal/figures"
	"wdmlat/internal/latdriver"
	"wdmlat/internal/modem"
	"wdmlat/internal/mttf"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
	"wdmlat/internal/workload"
)

func main() {
	osFlag := flag.String("os", "win98", "operating system (the paper forgoes NT: its worst cases sit below the modem slack)")
	mode := flag.String("mode", "dpc", "datapump modality: dpc (Figure 6) or thread (Figure 7)")
	cycle := flag.Float64("cycle", 4, "datapump cycle time t in ms (4-16)")
	maxBuf := flag.Int("maxbuffers", 17, "largest buffer count to sweep")
	duration := flag.Duration("duration", 15*time.Minute, "virtual collection time per workload")
	seed := flag.Uint64("seed", 1, "simulation seed")
	runs := flag.Int("runs", 1, "independent replicas to pool per workload (deepens tails)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulation workers")
	validate := flag.Bool("validate", false, "cross-check one point per class against direct datapump simulation")
	checkpoint := flag.String("checkpoint", "", "checkpoint directory: persist finished cells and skip them on re-run")
	obs := cli.NewObs("mttf", flag.CommandLine)
	cli.AddVersionFlag("mttf", flag.CommandLine)
	flag.Parse()
	fatal(obs.Start())

	osSel, err := cli.ParseOS(*osFlag)
	fatal(err)
	var modality modem.Modality
	switch *mode {
	case "dpc":
		modality = modem.DPCBased
	case "thread":
		modality = modem.ThreadBased
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	fig := "Figure 6"
	if modality == modem.ThreadBased {
		fig = "Figure 7"
	}
	name := ospersona.ProfileFor(osSel).Name
	fmt.Printf("%s: Mean Time to Buffer Underrun for a %v Datapump of a Softmodem on %s\n",
		fig, modality, name)
	fmt.Printf("(t = %.0f ms cycles, compute 25%% of cycle, collection %v per class)\n\n", *cycle, *duration)

	// The per-class measurement cells are independent: fan them out across
	// the campaign pool, then sweep the analytic curves in class order.
	ctx, stop := cli.SignalContext()
	defer stop()
	st, err := cli.OpenStore(*checkpoint, obs.Registry)
	fatal(err)
	run := campaign.New(campaign.Options{BaseSeed: *seed, Jobs: *jobs, Context: ctx, Store: st, Metrics: obs.Registry})
	obs.StartProgress(run)
	byOS, err := run.RunMatrix([]ospersona.OS{osSel}, workload.Classes, "mttf",
		core.RunConfig{Duration: *duration}, *runs)
	if err != nil {
		cli.FailCampaign("mttf", run, obs, err)
	}

	curves := make(map[workload.Class][]mttf.Point)
	for _, wl := range workload.Classes {
		r := byOS[osSel][wl]
		h := pickDistribution(r, modality)
		pts := mttf.Sweep(h, r.UsageObserved(), *cycle, 0.25, *maxBuf)
		curves[wl] = pts

		if *validate {
			validatePoint(osSel, wl, modality, *cycle, *seed, *duration, pts)
		}
	}
	fatal(figures.MTTFTable(curves, "").Write(os.Stdout))
	fmt.Println("\n('>' marks censored points: no event beyond that slack was observed;")
	fmt.Println(" the value is the lower bound supported by the collection span.)")
	if err := run.Wait(); err != nil {
		cli.FailCampaign("mttf", run, obs, err)
	}
	fatal(obs.Close())
}

// pickDistribution matches the datapump's modality to the latency it waits
// through: DPC-interrupt latency for DPC pumps, hardware-interrupt-to-
// high-priority-thread latency for thread pumps.
func pickDistribution(r *core.Result, m modem.Modality) *stats.Histogram {
	if m == modem.DPCBased {
		return r.DpcInt
	}
	return r.HwToThread[r.HighPriority()]
}

// validatePoint runs a real datapump (triple buffered) inside the stress
// load and compares its observed MTTF with the analytic curve.
func validatePoint(osSel ospersona.OS, wl workload.Class, modality modem.Modality, cycle float64, seed uint64, duration time.Duration, pts []mttf.Point) {
	m := ospersona.Build(osSel, ospersona.Options{Seed: seed + 99})
	defer m.Shutdown()
	// Tool threads must exist before the stress starts.
	tool, err := latdriver.Install(m.Kernel, m.PIT, latdriver.Options{})
	fatal(err)
	fatal(tool.Start())
	d := modem.Attach(m.Kernel, modem.Config{CycleMS: cycle, Buffers: 3, Modality: modality})
	m.RunFor(m.Freq().Cycles(200 * time.Millisecond))
	gen := workload.New(wl, m)
	gen.Start()
	m.Eng.After(m.MS(50), "pump", func(sim.Time) { d.Start() })
	m.RunFor(m.Freq().Cycles(duration))
	observed, ok := d.MTTFSeconds()
	analytic := pts[1].MTTFSeconds // n=3 point
	if !ok {
		fmt.Printf("  [validate %s] no underrun in %v (analytic %.0f s)\n", wl, duration, analytic)
		return
	}
	fmt.Printf("  [validate %s] direct sim MTTF %.0f s vs analytic %.0f s\n", wl, observed, analytic)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mttf:", err)
		os.Exit(1)
	}
}
