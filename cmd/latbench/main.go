// latbench reproduces Figure 4 (and, with -scanner, Figure 5): it runs the
// WDM latency measurement tools on a simulated Windows NT 4.0 and/or
// Windows 98 machine under the selected application stress loads and prints
// the measured latency distributions as log-log series, a summary table,
// and optionally CSV for external plotting.
//
// Usage:
//
//	latbench [-os both|all] [-workload all] [-duration 10m] [-seed 1]
//	         [-runs N] [-jobs N] [-checkpoint dir] [-scanner] [-sound]
//	         [-csv] [-oracle] [-config] [-progress] [-telemetry out.json]
//	         [-cpuprofile f] [-memprofile f] [-pprof :6060]
//
// With -checkpoint, every finished cell is persisted under dir and a
// re-run skips cells already completed; SIGINT/SIGTERM stops dispatching
// new cells, drains the running ones into the store, and exits non-zero
// naming the cells that were dropped.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"wdmlat/internal/campaign"
	"wdmlat/internal/cli"
	"wdmlat/internal/core"
	"wdmlat/internal/figures"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/report"
	"wdmlat/internal/workload"
)

func main() {
	osFlag := flag.String("os", "both", "operating system: nt4, win98 or both")
	wlFlag := flag.String("workload", "all", "stress class: business, workstation, games, web or all")
	duration := flag.Duration("duration", 10*time.Minute, "virtual collection time per run")
	seed := flag.Uint64("seed", 1, "simulation seed")
	scanner := flag.Bool("scanner", false, "install the Plus! 98 virus scanner (Figure 5)")
	sound := flag.Bool("sound", false, "enable the default Windows sound scheme")
	csv := flag.Bool("csv", false, "emit CSV series instead of ASCII charts")
	config := flag.Bool("config", false, "print the Table 2 system configurations and exit")
	runs := flag.Int("runs", 1, "independent replicas to pool per cell (deepens tails)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulation workers")
	oracle := flag.Bool("oracle", false, "plot ground-truth DPC-interrupt latency instead of the tool's estimate")
	checkpoint := flag.String("checkpoint", "", "checkpoint directory: persist finished cells and skip them on re-run")
	precf := cli.AddPrecisionFlags(flag.CommandLine)
	obs := cli.NewObs("latbench", flag.CommandLine)
	cli.AddVersionFlag("latbench", flag.CommandLine)
	flag.Parse()
	fatal(obs.Start())

	if *config {
		printConfigs()
		return
	}

	oses, err := cli.ParseOSList(*osFlag)
	fatal(err)
	classes, err := cli.ParseWorkloadList(*wlFlag)
	fatal(err)
	pol, err := precf.Policy()
	fatal(err)
	if pol != nil && *runs != 1 {
		fatal(fmt.Errorf("-precision chooses replica counts adaptively; drop -runs"))
	}

	// Variant names the campaign cell keys so that e.g. the -scanner cells
	// draw seed streams independent of the headline cells.
	variant := "default"
	if *scanner {
		variant = "scanner"
	}
	if *sound {
		variant += "+sound"
	}
	ctx, stop := cli.SignalContext()
	defer stop()
	st, err := cli.OpenStore(*checkpoint, obs.Registry)
	fatal(err)
	run := campaign.New(campaign.Options{BaseSeed: *seed, Jobs: *jobs, Context: ctx, Store: st, Metrics: obs.Registry})
	obs.StartProgress(run)
	base := core.RunConfig{Duration: *duration, VirusScanner: *scanner, SoundScheme: *sound}
	var byOS map[ospersona.OS]map[workload.Class]*core.Result
	var ads map[string]campaign.Adaptive
	if pol != nil {
		byOS, ads, err = run.RunMatrixAdaptive(oses, classes, variant, base, *pol)
	} else {
		byOS, err = run.RunMatrix(oses, classes, variant, base, *runs)
	}
	if err != nil {
		cli.FailCampaign("latbench", run, obs, err)
	}

	for _, osSel := range oses {
		// One Figure 4 panel set per OS: DPC-interrupt latency plus the
		// two thread latencies, one series per workload.
		results := byOS[osSel]
		for _, wl := range classes {
			r := results[wl]
			label := wl.String()

			fmt.Printf("# %s / %s: %d samples over %v virtual",
				r.OSName, label, r.Samples, *duration)
			if *scanner {
				fmt.Printf(" (virus scanner ON)")
			}
			if *sound {
				fmt.Printf(" (default sound scheme)")
			}
			fmt.Println()
			fmt.Printf("#   DPC-interrupt latency: mean %.3f ms, max %.2f ms\n",
				r.DpcInt.MeanMillis(), r.Freq.Millis(r.DpcInt.Max()))
			for _, p := range []int{28, 24} {
				fmt.Printf("#   RT %d thread latency:   mean %.3f ms, max %.2f ms\n",
					p, r.Thread[p].MeanMillis(), r.Freq.Millis(r.Thread[p].Max()))
			}
			if pol != nil {
				p := pol.Normalized()
				ad := ads[campaign.MatrixKey(osSel, wl, variant)]
				fmt.Printf("#   adaptive: %d replicas, converged=%v\n", ad.Replicas, ad.Converged)
				for _, q := range p.Quantiles {
					lo, est, hi := r.DpcInt.QuantileCI(q, p.Confidence)
					fmt.Printf("#   DPC p%g: %s ms at %.0f%% confidence\n", q*100,
						report.CIMillis(r.Freq.Millis(est), r.Freq.Millis(lo), r.Freq.Millis(hi)),
						p.Confidence*100)
				}
			}
		}

		dpcSeries, t28Series, t24Series := figures.Figure4Panels(results)
		if *oracle {
			dpcSeries = dpcSeries[:0]
			for _, wl := range classes {
				dpcSeries = append(dpcSeries, report.NewSeries(wl.String(), results[wl].DpcIntOracle, 0.125, 128))
			}
		}
		osName := ospersona.ProfileFor(osSel).Name
		if *csv {
			// In adaptive mode the CSV carries DKW confidence-band columns,
			// so external plots can shade each CCDF curve's uncertainty.
			if pol != nil && !*oracle {
				conf := pol.Normalized().Confidence
				dpcB, t28B, t24B := figures.Figure4BandPanels(results, conf)
				fmt.Printf("\n## %s DPC interrupt latency\n", osName)
				fatal(report.WriteBandCSV(os.Stdout, dpcB))
				fmt.Printf("\n## %s RT-28 thread latency\n", osName)
				fatal(report.WriteBandCSV(os.Stdout, t28B))
				fmt.Printf("\n## %s RT-24 thread latency\n", osName)
				fatal(report.WriteBandCSV(os.Stdout, t24B))
				continue
			}
			fmt.Printf("\n## %s DPC interrupt latency\n", osName)
			fatal(report.WriteCSV(os.Stdout, dpcSeries))
			fmt.Printf("\n## %s RT-28 thread latency\n", osName)
			fatal(report.WriteCSV(os.Stdout, t28Series))
			fmt.Printf("\n## %s RT-24 thread latency\n", osName)
			fatal(report.WriteCSV(os.Stdout, t24Series))
			continue
		}
		fmt.Println()
		fatal(report.WriteLogLog(os.Stdout,
			fmt.Sprintf("%s DPC Interrupt Latency in Milliseconds (Figure 4)", osName), dpcSeries))
		fmt.Println()
		fatal(report.WriteLogLog(os.Stdout,
			fmt.Sprintf("%s Kernel Mode Thread (RT Priority 28) Latency in Millisecs (Figure 4)", osName), t28Series))
		fmt.Println()
		fatal(report.WriteLogLog(os.Stdout,
			fmt.Sprintf("%s Kernel Mode Thread (RT Priority 24) Latency in Millisecs (Figure 4)", osName), t24Series))
	}
	// Every cell was collected above; a residual Wait error means the
	// checkpoint store could not persist something — fail loudly, or the
	// next resume would silently re-run those cells.
	if err := run.Wait(); err != nil {
		cli.FailCampaign("latbench", run, obs, err)
	}
	fatal(obs.Close())
}

func printConfigs() {
	for _, osSel := range []ospersona.OS{ospersona.NT4, ospersona.Win98} {
		fatal(figures.Table2(osSel).Write(os.Stdout))
		fmt.Println()
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "latbench:", err)
		os.Exit(1)
	}
}
