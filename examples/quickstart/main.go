// Quickstart: measure WDM latency distributions on both simulated
// operating systems while playing a 3D game, and print the
// paper's headline comparison — NT's real-time service is one to two
// orders of magnitude better than Windows 98's, even though throughput
// benchmarks cannot tell the machines apart.
package main

import (
	"fmt"
	"time"

	"wdmlat/internal/core"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/workload"
)

func main() {
	fmt.Println("WDM latency lab quickstart: 3 virtual minutes of 3D gaming on each OS,")
	fmt.Println("measured by the paper's binary-portable WDM driver.")
	fmt.Println()

	for _, osSel := range []ospersona.OS{ospersona.NT4, ospersona.Win98} {
		r := core.Run(core.RunConfig{
			OS:       osSel,
			Workload: workload.Games,
			Duration: 3 * time.Minute,
			Seed:     42,
		})
		f := r.Freq
		fmt.Printf("%s (%d measurement cycles)\n", r.OSName, r.Samples)
		fmt.Printf("  DPC-interrupt latency:        mean %6.3f ms   worst %7.2f ms\n",
			r.DpcInt.MeanMillis(), f.Millis(r.DpcInt.Max()))
		fmt.Printf("  RT-28 thread latency:         mean %6.3f ms   worst %7.2f ms\n",
			r.Thread[28].MeanMillis(), f.Millis(r.Thread[28].Max()))
		fmt.Printf("  RT-24 thread latency:         mean %6.3f ms   worst %7.2f ms\n",
			r.Thread[24].MeanMillis(), f.Millis(r.Thread[24].Max()))
		fmt.Printf("  H/W int -> RT-28 thread:      mean %6.3f ms   worst %7.2f ms\n",
			r.HwToThread[28].MeanMillis(), f.Millis(r.HwToThread[28].Max()))
		fmt.Println()
	}

	nt := core.RunThroughput(ospersona.NT4, 100, 42)
	w98 := core.RunThroughput(ospersona.Win98, 100, 42)
	fmt.Printf("Throughput view of the same machines (§4.2): %.1f vs %.1f units/s (delta %.0f%%)\n",
		nt.Score(), w98.Score(), core.ThroughputDelta(nt, w98)*100)
	fmt.Println("— throughput can't see the order-of-magnitude real-time difference above.")
}
