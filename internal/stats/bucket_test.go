package stats

import (
	"math"
	"testing"

	"wdmlat/internal/sim"
)

// oracleIndex is an independent reference for bucketIndex: a linear scan for
// the largest bucket whose inclusive lower edge is <= v. bucketIndex computes
// the same thing with bits.Len64 plus a binary search inside one octave; the
// two must agree everywhere.
func oracleIndex(v sim.Cycles) int {
	if v < 1 {
		return 0
	}
	idx := 1
	for i := 2; i <= numBuckets+1; i++ {
		if uint64(v) >= bucketEdges[i] {
			idx = i
		}
	}
	return idx
}

// TestBucketEdgesExact sweeps every bucket edge in [1, 2^40) — each edge and
// the values one below and one above it — plus every power of two and its
// predecessor, checking bucketIndex against the linear-scan oracle. This pins
// down the boundary behaviour the old floating-point formulation
// (1 + int(math.Log2(v)*bucketsPerOctave)) delivered only up to rounding; the
// integer edge table must place every boundary exactly. Note that in the
// lowest octaves consecutive edges collide (e.g. ceil(2^(2/16)) and
// ceil(2^(3/16)) are both 2), so some buckets are empty by construction and a
// collided edge belongs to the last bucket of its run — the oracle encodes
// exactly that.
func TestBucketEdgesExact(t *testing.T) {
	check := func(v sim.Cycles) {
		t.Helper()
		if got, want := bucketIndex(v), oracleIndex(v); got != want {
			t.Errorf("bucketIndex(%d) = %d, want %d", v, got, want)
		}
	}
	for i := 1; i <= numBuckets+1; i++ {
		edge := sim.Cycles(bucketEdges[i])
		check(edge - 1)
		check(edge)
		check(edge + 1)
	}
	// Exact powers of two start their octave: 2^k -> bucket 1+16k. This is
	// the boundary family the float formulation got right only because Go's
	// math.Log2 special-cases powers of two; the integer table must not
	// regress it.
	for k := 0; k < octaves; k++ {
		v := sim.Cycles(1) << uint(k)
		if got, want := bucketIndex(v), 1+k*bucketsPerOctave; got != want {
			t.Errorf("bucketIndex(1<<%d) = %d, want %d", k, got, want)
		}
		check(v - 1)
	}
	// Overflow: the first value past the top octave.
	if got := bucketIndex(sim.Cycles(1) << octaves); got != numBuckets+1 {
		t.Errorf("bucketIndex(1<<%d) = %d, want overflow %d", octaves, got, numBuckets+1)
	}
	check(math.MaxInt64)
	check(0)
	check(-5)
}

// TestBucketEdgesMonotonic checks the edge table never decreases, is
// strictly increasing once the ~4.4% bucket width exceeds one integer
// (edges >= 32), and that bucketLow returns the table edge.
func TestBucketEdgesMonotonic(t *testing.T) {
	for i := 2; i <= numBuckets+1; i++ {
		if bucketEdges[i] < bucketEdges[i-1] {
			t.Fatalf("edge %d (%d) < edge %d (%d)", i, bucketEdges[i], i-1, bucketEdges[i-1])
		}
		if bucketEdges[i-1] >= 32 && bucketEdges[i] <= bucketEdges[i-1] {
			t.Fatalf("edge %d (%d) not above edge %d (%d)", i, bucketEdges[i], i-1, bucketEdges[i-1])
		}
	}
	for i := 1; i <= numBuckets; i++ {
		if got := bucketLow(i); got != sim.Cycles(bucketEdges[i]) {
			t.Fatalf("bucketLow(%d) = %d, want %d", i, got, bucketEdges[i])
		}
	}
}

// TestBucketEdgesMatchFloatGeometry ties the integer table back to the
// histogram's documented geometry: each edge is the ceiling of
// 2^((i-1)/bucketsPerOctave) to within the float tolerance of Exp2.
func TestBucketEdgesMatchFloatGeometry(t *testing.T) {
	for i := 1; i <= numBuckets+1; i++ {
		want := math.Exp2(float64(i-1) / bucketsPerOctave)
		got := float64(bucketEdges[i])
		if got < want-1e-6 || got-want >= 1+1e-6 {
			t.Errorf("edge %d = %d, not the ceiling of %g", i, bucketEdges[i], want)
		}
	}
}
