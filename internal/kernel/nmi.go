package kernel

import (
	"wdmlat/internal/cpu"
	"wdmlat/internal/sim"
)

// Non-maskable interrupt support. The paper's future work (§6.1) plans to
// move the cause tool's sampler from the PIT interrupt to "non-maskable
// interrupts caused by the Pentium II performance monitoring counters"
// configured on CPU_CLOCKS_UNHALTED — NMIs are delivered even inside
// interrupt-masked windows and at any IRQL, giving sub-millisecond
// visibility into exactly the regions the PIT sampler cannot see.

// levelNMI sits above everything, including interrupt-masked episodes.
const levelNMI = 2000

// SetNMIHandler installs the NMI handler (nil uninstalls). The handler runs
// at NMI level: it may read machine state and charge a small cost via the
// CPU's charge accumulator, but must not touch dispatcher objects.
func (k *Kernel) SetNMIHandler(h func(now sim.Time)) {
	k.nmiHandler = h
}

// AssertNMI delivers a non-maskable interrupt immediately: it preempts
// whatever occupies the CPU — a thread, a DPC, an ISR, even an
// interrupt-masked overhead episode — runs the handler, and resumes the
// preempted work. An NMI arriving while one is already being serviced is
// dropped (the hardware latches a single pending NMI; at sampling rates
// this cannot happen and dropping is the conservative choice).
func (k *Kernel) AssertNMI() {
	if k.nmiHandler == nil {
		return
	}
	if k.topLevel() >= levelNMI {
		k.counters.NMIsDropped++
		return
	}
	k.counters.NMIs++

	act := k.newActivity()
	act.kind = actISR
	act.level = levelNMI
	act.label = "nmi"
	act.doneLabel = "isr:nmi"
	act.frame = cpu.Frame{Module: "NTOSKRNL", Function: "_KiTrap02"}
	k.occupy(act)
	k.cpu.ResetCharge()
	k.cpu.AddCharge(200) // trap entry: ~0.7 µs
	k.nmiHandler(k.now())
	act.remaining = k.cpu.ResetCharge() + 100
	k.maybeRun()
}

// PerfCounterSampler drives AssertNMI at a fixed unhalted-cycle period,
// modeling a Pentium II performance counter programmed to overflow on
// CPU_CLOCKS_UNHALTED (§6.1).
type PerfCounterSampler struct {
	k       *Kernel
	period  sim.Cycles
	ev      *sim.Event
	tickFn  func(sim.Time) // re-arm callback, allocated once
	running bool
}

// NewPerfCounterSampler creates a stopped sampler with the given period.
func (k *Kernel) NewPerfCounterSampler(period sim.Cycles) *PerfCounterSampler {
	if period <= 0 {
		panic("kernel: non-positive perf counter period")
	}
	s := &PerfCounterSampler{k: k, period: period}
	s.tickFn = func(sim.Time) {
		// Event records are pooled: drop the handle before anything else so
		// Stop cannot cancel a recycled record.
		s.ev = nil
		if !s.running {
			return
		}
		s.arm()
		s.k.AssertNMI()
	}
	return s
}

// Start begins overflow NMIs every period cycles.
func (s *PerfCounterSampler) Start() {
	if s.running {
		return
	}
	s.running = true
	s.arm()
}

func (s *PerfCounterSampler) arm() {
	s.ev = s.k.eng.After(s.period, "perfctr-nmi", s.tickFn)
}

// Stop halts the counter.
func (s *PerfCounterSampler) Stop() {
	s.running = false
	if s.ev != nil {
		s.k.eng.Cancel(s.ev)
		s.ev = nil
	}
}

// Period returns the sampling period in cycles.
func (s *PerfCounterSampler) Period() sim.Cycles { return s.period }
