package kernel

import (
	"fmt"

	"wdmlat/internal/sim"
)

// threadState is the scheduler-visible lifecycle state of a thread.
type threadState int

const (
	threadReady threadState = iota
	threadStandby
	threadRunning
	threadWaiting
	threadTerminated
)

func (s threadState) String() string {
	switch s {
	case threadReady:
		return "ready"
	case threadStandby:
		return "standby"
	case threadRunning:
		return "running"
	case threadWaiting:
		return "waiting"
	case threadTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// request kinds carried over the thread → kernel channel.
type reqKind int

const (
	reqExec reqKind = iota
	reqCall
	reqWait
	reqExit
	reqRaisedExec
	reqWaitAny
	// reqYield carries no payload: the body ran a kernel-context closure
	// inline (see ThreadContext.call) and something above thread level
	// became runnable, so the dispatch loop must take a pass before the
	// body continues.
	reqYield
	// reqPanic forwards a panic from an inlined kernel-context closure to
	// the kernel goroutine: bug checks must unwind the engine (the
	// simulated BSOD), not the offending thread's goroutine.
	reqPanic
)

type request struct {
	kind    reqKind
	cycles  sim.Cycles // reqExec, reqRaisedExec
	fn      func()     // reqCall
	obj     Waitable   // reqWait
	objs    []Waitable // reqWaitAny
	timeout sim.Cycles // reqWait/reqWaitAny; <0 means infinite
	irql    IRQL       // reqRaisedExec
	pv      any        // reqPanic
}

type resumeMsg struct {
	status WaitStatus
	index  int // reqWaitAny: which object satisfied the wait
	kill   bool
}

// errKilled is the panic value used to unwind a thread goroutine at
// shutdown.
var errKilled = fmt.Errorf("kernel: thread killed at shutdown")

// Thread is a simulated kernel-mode thread. Its body runs on a dedicated
// goroutine that is resumed by the scheduler exactly when the simulated
// thread runs; the body interacts with the machine solely through its
// ThreadContext, and simulated time only passes at Exec/Wait boundaries.
type Thread struct {
	k        *Kernel
	Name     string
	priority int // effective (base + any dynamic boost)
	base     int // assigned priority
	state    threadState

	resume    chan resumeMsg
	resumeVal resumeMsg
	dead      chan struct{}

	// Execution-segment state while running.
	execRemaining sim.Cycles
	execDone      *sim.Event
	quantumEvent  *sim.Event
	quantumLeft   sim.Cycles
	segStart      sim.Time
	needsResume   bool

	// Wait state.
	waitObj       Waitable
	waitAny       []Waitable // multi-object wait registrations
	waitTimeoutEv *sim.Event

	readiedAt  sim.Time
	cpuTime    sim.Cycles
	switches   uint64
	doneEvent  *Event // signaled at termination; waitable for joins
	terminated bool

	// Per-thread event labels and callbacks, built once at creation so the
	// scheduler's hot paths (exec segments, quanta, wait timeouts, context
	// switches) neither format strings nor allocate closures per event.
	labelExec        string
	labelQuantum     string
	labelWaitTimeout string
	labelWaitAny     string
	labelSwitch      string
	labelRaised      string
	onExecDoneFn     func(sim.Time)
	onQuantumFn      func(sim.Time)
	onWaitTimeoutFn  func(sim.Time)
	onSwitchDoneFn   func(sim.Time)
	onRaisedDoneFn   func(sim.Time)
	switchReadiedAt  sim.Time   // readiedAt latched when the switch began
	raisedCycles     sim.Cycles // cost of the raised-IRQL section in flight
}

// CreateThread creates and readies a kernel thread (PsCreateSystemThread).
// The body runs when the scheduler first dispatches the thread.
func (k *Kernel) CreateThread(name string, priority int, fn func(tc *ThreadContext)) *Thread {
	if priority < MinPriority || priority > MaxPriority {
		panic(fmt.Sprintf("kernel: priority %d out of range", priority))
	}
	if fn == nil {
		panic("kernel: nil thread body")
	}
	t := &Thread{
		k:           k,
		Name:        name,
		priority:    priority,
		base:        priority,
		state:       threadReady,
		resume:      make(chan resumeMsg),
		dead:        make(chan struct{}),
		quantumLeft: k.cfg.Quantum,
		readiedAt:   k.now(),
		needsResume: true,
	}
	t.doneEvent = k.NewEvent(name+".done", NotificationEvent)
	t.labelExec = "exec:" + name
	t.labelQuantum = "quantum:" + name
	t.labelWaitTimeout = "waitTimeout:" + name
	t.labelWaitAny = "waitAnyTimeout:" + name
	t.labelSwitch = "switch:" + name
	t.labelRaised = "raisedIRQL:" + name
	t.onExecDoneFn = func(now sim.Time) { k.onExecDone(t, now) }
	t.onQuantumFn = func(now sim.Time) { k.onQuantumExpiry(t, now) }
	t.onWaitTimeoutFn = func(sim.Time) { k.onWaitTimeout(t) }
	t.onSwitchDoneFn = func(now sim.Time) {
		t.state = threadRunning
		t.switches++
		k.counters.Switches++
		k.current = t
		if k.probe.ThreadDispatched != nil {
			k.probe.ThreadDispatched(t, t.switchReadiedAt, now)
		}
	}
	t.onRaisedDoneFn = func(sim.Time) {
		t.cpuTime += t.raisedCycles
		t.needsResume = true
	}
	k.threads = append(k.threads, t)

	tc := &ThreadContext{k: k, t: t}
	go func() {
		defer close(t.dead)
		defer func() {
			if r := recover(); r != nil && r != errKilled {
				panic(r)
			}
		}()
		msg := <-t.resume
		if msg.kill {
			return
		}
		fn(tc)
		// Body returned: deliver the exit request. The kernel never
		// resumes a terminated thread, so the goroutine ends here.
		tc.req = request{kind: reqExit}
		k.reqCh <- &tc.req
	}()

	k.pushReadyBack(t)
	if k.probe.ThreadReadied != nil {
		k.probe.ThreadReadied(t, t.readiedAt)
	}
	k.maybeRun()
	return t
}

// Priority returns the thread's current effective priority (base plus any
// dynamic boost).
func (t *Thread) Priority() int { return t.priority }

// BasePriority returns the thread's assigned priority.
func (t *Thread) BasePriority() int { return t.base }

// CPUTime returns the accumulated thread-context execution time.
func (t *Thread) CPUTime() sim.Cycles { return t.cpuTime }

// Switches returns how many times the thread has been dispatched.
func (t *Thread) Switches() uint64 { return t.switches }

// Terminated reports whether the thread has exited.
func (t *Thread) Terminated() bool { return t.state == threadTerminated }

// Done returns a notification event signaled when the thread terminates.
func (t *Thread) Done() *Event { return t.doneEvent }

// State returns the scheduler state name, for diagnostics.
func (t *Thread) State() string { return t.state.String() }

// ThreadContext is the API surface a thread body uses to act on the
// machine. Each method that logically takes time round-trips through the
// scheduler, so preemption, interrupts and overhead episodes interleave
// exactly as they would on hardware.
type ThreadContext struct {
	k *Kernel
	t *Thread
	// req is the request in flight over k.reqCh. The channel carries a
	// pointer to this scratch slot rather than the ~100-byte struct: the
	// body goroutine only reuses it after the kernel resumes it, by which
	// point serveOne has consumed the previous request.
	req request
}

// Thread returns the underlying thread.
func (tc *ThreadContext) Thread() *Thread { return tc.t }

// Kernel returns the owning kernel (read-only use).
func (tc *ThreadContext) Kernel() *Kernel { return tc.k }

// Now reads the time stamp counter — GetCycleCount from thread context.
func (tc *ThreadContext) Now() sim.Time { return tc.k.cpu.TSC() }

// await blocks the goroutine until the kernel resumes it, translating a
// shutdown kill into goroutine unwinding.
func (tc *ThreadContext) await() resumeMsg {
	msg := <-tc.t.resume
	if msg.kill {
		panic(errKilled)
	}
	return msg
}

// send delivers a request and blocks until resumed.
func (tc *ThreadContext) send(r request) resumeMsg {
	tc.req = r
	tc.k.reqCh <- &tc.req
	return tc.await()
}

// Exec consumes c cycles of CPU in thread context. The call returns when
// the thread has actually accumulated that much execution, however long
// that takes in virtual time under preemption.
func (tc *ThreadContext) Exec(c sim.Cycles) {
	if c < 0 {
		panic("kernel: negative exec")
	}
	if c == 0 {
		// Nothing to run and nothing above thread level can be pending while
		// the body holds the CPU (see call), so the scheduler pass a
		// round trip would trigger provably resumes us unchanged.
		return
	}
	tc.send(request{kind: reqExec, cycles: c})
}

// ExecDist draws a duration from d and executes it.
func (tc *ThreadContext) ExecDist(d sim.Dist) {
	tc.Exec(d.Draw(tc.k.rng))
}

// ExecRaised executes c cycles at a raised IRQL (KeRaiseIrql / work /
// KeLowerIrql). Per the WDM hierarchy (§4.1), real-time threads "can raise
// IRQL from PASSIVE (lowest) to arbitrarily high levels (i.e., block
// interrupts)": at DISPATCH_LEVEL the section blocks DPCs and rescheduling;
// at HIGH_LEVEL it masks interrupts outright. The section itself is
// preempted only by work above its level.
func (tc *ThreadContext) ExecRaised(irql IRQL, c sim.Cycles) {
	if c < 0 {
		panic("kernel: negative raised exec")
	}
	if irql <= PassiveLevel || irql > HighLevel {
		panic(fmt.Sprintf("kernel: ExecRaised at %v", irql))
	}
	tc.send(request{kind: reqRaisedExec, cycles: c, irql: irql})
}

// call runs fn in kernel context at the current instant (used to build the
// Ke*/Io* wrappers below; fn must not block).
//
// While a thread body runs, the kernel goroutine is parked inside serveOne
// and virtual time stands still, so the body has exclusive access to all
// kernel state and fn can execute right here — no scheduler round trip.
// The round trip is only needed when fn made work runnable above thread
// level (asserted an interrupt, queued a DPC, injected an episode, readied
// a higher-priority thread): exactly the set the dispatch loop would admit
// before resuming this body, and nothing else can have changed, because
// nothing but this body runs between its own requests. Any maybeRun that
// fn triggers is a no-op either way — the kernel goroutine parked inside
// the dispatch loop, so the re-entrancy guard holds.
func (tc *ThreadContext) call(fn func()) {
	tc.runKernelFn(fn)
	k, t := tc.k, tc.t
	if k.irqPending == 0 && len(k.dpcQ) == 0 && len(k.episodes) == 0 &&
		k.bestReadyPriority() <= t.priority {
		return
	}
	tc.send(request{kind: reqYield})
}

// runKernelFn executes an inlined kernel-context closure, re-raising any
// panic on the kernel goroutine so bug checks keep surfacing through the
// engine. The offending goroutine then parks like any bug-checked thread
// (Shutdown still unwinds it).
func (tc *ThreadContext) runKernelFn(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			tc.req = request{kind: reqPanic, pv: r}
			tc.k.reqCh <- &tc.req
			tc.await()
		}
	}()
	fn()
}

// Do runs fn in kernel context at the current virtual instant — the
// general escape hatch for driver bodies that must poke hardware or
// harness state from thread context. fn must not block or advance time.
func (tc *ThreadContext) Do(fn func()) { tc.call(fn) }

// Wait blocks until obj is signaled (KeWaitForSingleObject, infinite).
//
// A wait an initial poll satisfies never blocks, and poll side effects
// (auto-reset clear, semaphore decrement, mutex acquire) make nothing
// runnable, so by the same exclusive-access argument as call the
// scheduler round trip is skipped entirely. beginWait runs the identical
// poll first, so the observable effect sequence is unchanged.
func (tc *ThreadContext) Wait(obj Waitable) WaitStatus {
	if obj != nil && obj.poll(tc.t) {
		return WaitSuccess
	}
	return tc.send(request{kind: reqWait, obj: obj, timeout: -1}).status
}

// WaitAny blocks until any of the objects is signaled
// (KeWaitForMultipleObjects with WaitAny), returning the index of the
// satisfying object. Objects are polled in argument order, so earlier
// objects win ties — the NT semantics.
func (tc *ThreadContext) WaitAny(objs ...Waitable) int {
	if len(objs) == 0 {
		panic("kernel: WaitAny with no objects")
	}
	for i, o := range objs {
		if o.poll(tc.t) { // same first-signaled-wins order as beginWaitAny
			return i
		}
	}
	msg := tc.send(request{kind: reqWaitAny, objs: objs, timeout: -1})
	return msg.index
}

// WaitAnyTimeout is WaitAny with a timeout; index is -1 on timeout.
func (tc *ThreadContext) WaitAnyTimeout(d sim.Cycles, objs ...Waitable) (int, WaitStatus) {
	if len(objs) == 0 {
		panic("kernel: WaitAny with no objects")
	}
	if d < 0 {
		panic("kernel: negative wait timeout")
	}
	for i, o := range objs {
		if o.poll(tc.t) {
			return i, WaitSuccess
		}
	}
	msg := tc.send(request{kind: reqWaitAny, objs: objs, timeout: d})
	if msg.status == WaitTimedOut {
		return -1, msg.status
	}
	return msg.index, msg.status
}

// WaitTimeout blocks until obj is signaled or d cycles elapse.
func (tc *ThreadContext) WaitTimeout(obj Waitable, d sim.Cycles) WaitStatus {
	if d < 0 {
		panic("kernel: negative wait timeout")
	}
	if obj != nil && obj.poll(tc.t) {
		return WaitSuccess // satisfied before the timeout is ever armed
	}
	return tc.send(request{kind: reqWait, obj: obj, timeout: d}).status
}

// Sleep blocks the thread for d cycles (KeDelayExecutionThread).
func (tc *ThreadContext) Sleep(d sim.Cycles) {
	if d < 0 {
		panic("kernel: negative sleep")
	}
	tc.send(request{kind: reqWait, obj: nil, timeout: d})
}

// SetEvent signals an event from thread context (KeSetEvent).
func (tc *ThreadContext) SetEvent(ev *Event) { tc.call(func() { ev.set() }) }

// ResetEvent clears an event (KeResetEvent).
func (tc *ThreadContext) ResetEvent(ev *Event) { tc.call(ev.reset) }

// ReleaseSemaphore releases n units (KeReleaseSemaphore).
func (tc *ThreadContext) ReleaseSemaphore(s *Semaphore, n int) {
	tc.call(func() { s.release(n) })
}

// ReleaseMutex releases a mutex owned by this thread (KeReleaseMutex).
func (tc *ThreadContext) ReleaseMutex(m *Mutex) {
	tc.call(func() { m.release(tc.t) })
}

// SetPriority changes this thread's priority (KeSetPriorityThread). The
// paper's measurement thread raises itself to real-time priority this way
// (§2.2.4).
func (tc *ThreadContext) SetPriority(p int) {
	if p < MinPriority || p > MaxPriority {
		panic(fmt.Sprintf("kernel: priority %d out of range", p))
	}
	tc.call(func() {
		tc.t.base = p
		tc.t.priority = p
	})
}

// QueueDpc inserts a DPC from thread context.
func (tc *ThreadContext) QueueDpc(d *DPC) { tc.call(func() { tc.k.queueDpc(d) }) }

// SetTimer (re)arms a timer relative to now (KeSetTimer).
func (tc *ThreadContext) SetTimer(t *Timer, delay sim.Cycles, dpc *DPC) {
	tc.call(func() { tc.k.setTimer(t, delay, dpc) })
}

// CancelTimer disarms a timer (KeCancelTimer).
func (tc *ThreadContext) CancelTimer(t *Timer) { tc.call(func() { tc.k.cancelTimer(t) }) }

// CompleteIrp completes an I/O request packet (IoCompleteRequest).
func (tc *ThreadContext) CompleteIrp(irp *IRP) { tc.call(func() { tc.k.completeIrp(irp) }) }

// QueueWorkItem schedules passive-level work on the kernel worker.
func (tc *ThreadContext) QueueWorkItem(w *WorkItem) { tc.call(func() { tc.k.QueueWorkItem(w) }) }
