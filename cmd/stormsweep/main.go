// stormsweep maps the interrupt-storm frontier: for each OS persona × NIC
// interrupt-moderation mode it sweeps offered packet rate until the
// deterministic livelock criterion trips (ring drops, CPU starvation, or
// unbounded backlog growth), bisects the knee, and writes the frontier
// tables, an ASCII knee chart, and per-probe latency-CCDF CSVs under
// -outdir. It also runs the frame-pacing cells — the vblank-paced
// presentation app, idle and under a sustainable storm — and reports each
// persona's missed-frame and judder distributions.
//
// The sweep rides the campaign runner, so it inherits -jobs parallelism,
// -checkpoint resume, SIGINT drain, and the byte-identity contract: the
// artifacts are identical for any -jobs value and for cold vs warm stores
// (the frontier property tests pin exactly this).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"wdmlat/internal/campaign"
	"wdmlat/internal/cli"
	"wdmlat/internal/core"
	"wdmlat/internal/figures"
	"wdmlat/internal/frontier"
	"wdmlat/internal/hw"
	"wdmlat/internal/report"
	"wdmlat/internal/workload"
)

func main() {
	osFlag := flag.String("os", "both", "persona(s) to sweep: nt4, win98, win2000, both or all")
	modesFlag := flag.String("modes", "per-assert,itr", "NIC moderation modes to sweep (per-assert, itr, adaptive; comma-separated)")
	minPPS := flag.Float64("min-pps", 4096, "sweep floor, offered packets/sec")
	maxPPS := flag.Float64("max-pps", 262144, "sweep ceiling, offered packets/sec")
	bisect := flag.Int("bisect", 3, "log-space bisection probes refining the knee bracket")
	duration := flag.Duration("duration", 2*time.Second, "virtual collection per replica")
	runs := flag.Int("runs", 3, "replicas pooled per probe")
	seed := flag.Uint64("seed", 7, "simulation seed")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulation workers")
	checkpoint := flag.String("checkpoint", "", "checkpoint directory: persist finished cells and skip them on re-run")
	outdir := flag.String("outdir", "results", "artifact directory")
	bytesFlag := flag.Int("bytes", 1460, "storm frame size in bytes")
	gapUS := flag.Float64("gap-us", 250, "moderation gap for itr/adaptive modes, microseconds")
	pacing := flag.Bool("pacing", false, "attach the frame pacer to every storm probe too")
	precf := cli.AddPrecisionFlags(flag.CommandLine)
	obs := cli.NewObs("stormsweep", flag.CommandLine)
	cli.AddVersionFlag("stormsweep", flag.CommandLine)
	flag.Parse()

	pol, err := precf.Policy()
	if err != nil {
		fail(err)
	}
	if pol != nil && *runs != 3 {
		fail(fmt.Errorf("-precision chooses replica counts adaptively; drop -runs"))
	}
	oses, err := cli.ParseOSList(*osFlag)
	if err != nil {
		fail(err)
	}
	modes, err := parseModes(*modesFlag)
	if err != nil {
		fail(err)
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		fail(err)
	}
	if err := obs.Start(); err != nil {
		fail(err)
	}
	st, err := cli.OpenStore(*checkpoint, obs.Registry)
	if err != nil {
		fail(err)
	}
	ctx, stop := cli.SignalContext()
	defer stop()
	run := campaign.New(campaign.Options{
		BaseSeed: *seed, Jobs: *jobs, Context: ctx, Store: st, Metrics: obs.Registry,
	})
	obs.StartProgress(run)

	// The frame-pacing cells run alongside the sweep on the same pool: per
	// persona, the presentation app on an otherwise idle machine, under a
	// storm pinned at the sweep floor (a rate every persona sustains), and
	// under the games stress workload — the cell where Windows 98's
	// scheduler-locked windows turn into user-visible missed frames.
	paceLabels := make([]string, 0, 3*len(oses))
	paceCells := make([]campaign.Cell, 0, 3*len(oses))
	for _, o := range oses {
		for _, variant := range []string{"idle", "storm", "games"} {
			cfg := core.RunConfig{
				OS: o, Idle: true, Duration: *duration, FramePacing: true,
			}
			switch variant {
			case "storm":
				cfg.StormPPS = *minPPS
				cfg.StormBytes = *bytesFlag
			case "games":
				cfg.Idle = false
				cfg.Workload = workload.Games
			}
			label := campaign.Key("pace", campaign.OSSlug(o), variant)
			paceLabels = append(paceLabels, label)
			paceCells = append(paceCells, campaign.Cell{Key: campaign.ReplicaKey(label, 0), Config: cfg})
		}
	}
	run.Submit(paceCells...)

	fmt.Printf("stormsweep: %d track(s) over [%d, %d] pps on %d workers (%v per replica)\n",
		len(oses)*len(modes), int64(*minPPS), int64(*maxPPS), *jobs, *duration)
	fs, err := frontier.Run(run, frontier.Options{
		OSes:        oses,
		Modes:       modes,
		MinPPS:      *minPPS,
		MaxPPS:      *maxPPS,
		BisectSteps: *bisect,
		Duration:    *duration,
		Runs:        *runs,
		Precision:   pol,
		StormBytes:  *bytesFlag,
		NICGapUS:    *gapUS,
		FramePacing: *pacing,
		Metrics:     obs.Registry,
	})
	if err != nil {
		cli.FailCampaign("stormsweep", run, obs, err)
	}

	emit(*outdir, "frontier.txt", func(w io.Writer) error {
		if err := figures.FrontierKneeTable(fs,
			"Interrupt-storm frontier: livelock knee by persona x moderation mode").Write(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
		if err := figures.FrontierKneeChart(w, "Knee chart (offered load each persona sustains)", fs); err != nil {
			return err
		}
		fmt.Fprintln(w)
		return figures.FrontierProbeTable(fs, "All probes").Write(w)
	})
	for i := range fs {
		f := &fs[i]
		name := fmt.Sprintf("frontier_%s_%s.csv", campaign.OSSlug(f.OS), f.Mode)
		emit(*outdir, name, func(w io.Writer) error {
			return report.WriteCSV(w, figures.FrontierCCDFSeries(f, 0.015625, 128))
		})
	}

	paceResults := make(map[string]*core.Result, len(paceLabels))
	for _, label := range paceLabels {
		r, err := run.Merged(label, 1)
		if err != nil {
			cli.FailCampaign("stormsweep", run, obs, err)
		}
		paceResults[label] = r
	}
	emit(*outdir, "pacing.txt", func(w io.Writer) error {
		return figures.PacingTable(paceLabels, paceResults,
			"Frame pacing (60 Hz vblank) by persona: idle, under a sustained storm,\n"+
				"and under the games stress workload").Write(w)
	})
	for _, label := range paceLabels {
		name := strings.ReplaceAll(label, "/", "_") + ".csv"
		emit(*outdir, name, func(w io.Writer) error {
			return report.WriteCSV(w, figures.PacingSeries(paceResults[label], 0.015625, 128))
		})
	}

	if err := run.Wait(); err != nil {
		cli.FailCampaign("stormsweep", run, obs, err)
	}
	if err := obs.Close(); err != nil {
		fail(err)
	}
}

// parseModes resolves the -modes flag against hw.Moderation's String names.
func parseModes(s string) ([]hw.Moderation, error) {
	var out []hw.Moderation
	for _, part := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(part)) {
		case "per-assert", "per-window", "none":
			out = append(out, hw.ModeratePerWindow)
		case "itr", "throttle":
			out = append(out, hw.ModerateITR)
		case "adaptive":
			out = append(out, hw.ModerateAdaptive)
		case "":
		default:
			return nil, fmt.Errorf("unknown moderation mode %q (want per-assert, itr or adaptive)", part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no moderation modes selected")
	}
	return out, nil
}

func emit(dir, name string, fn func(io.Writer) error) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		fail(err)
	}
	fmt.Printf("   wrote %s\n", filepath.Join(dir, name))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "stormsweep:", err)
	os.Exit(1)
}
