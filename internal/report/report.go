// Package report renders the experiment outputs in the shapes the paper
// uses: log-log distribution series (Figure 4/5), the hourly/daily/weekly
// worst-case table (Table 3), plain ASCII tables (Tables 1, 2), and CSV for
// external plotting.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"wdmlat/internal/stats"
)

// Table is a simple ASCII table builder.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is one labelled latency distribution rendered as Figure 4 points.
type Series struct {
	Label  string
	Points []stats.Point
}

// NewSeries builds a series over the paper's axes from a histogram.
func NewSeries(label string, h *stats.Histogram, loMs, hiMs float64) Series {
	return Series{Label: label, Points: h.OctaveSeries(loMs, hiMs)}
}

// WriteLogLog renders a set of series as an ASCII log-log chart in the
// style of Figure 4: x = latency bins (power-of-two milliseconds),
// y = percent of samples, log scale down to 0.0001%.
func WriteLogLog(w io.Writer, title string, series []Series) error {
	if len(series) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-26s", "latency bin (ms)")
	for _, p := range series[0].Points {
		fmt.Fprintf(&b, " %8s", trimFloat(p.LoMs))
	}
	b.WriteByte('\n')
	for _, s := range series {
		fmt.Fprintf(&b, "%-26s", s.Label)
		for _, p := range s.Points {
			if p.Count == 0 {
				fmt.Fprintf(&b, " %8s", ".")
				continue
			}
			fmt.Fprintf(&b, " %8s", formatPercent(p.Percent))
		}
		b.WriteByte('\n')
	}
	// The log-scale sparkline rows: one row per decade from 100% down to
	// 0.0001%, marking which series has mass in which bin at that level.
	b.WriteByte('\n')
	decades := []float64{100, 10, 1, 0.1, 0.01, 0.001, 0.0001}
	for _, s := range series {
		fmt.Fprintf(&b, "  %s\n", s.Label)
		for _, d := range decades {
			fmt.Fprintf(&b, "  %8s%% |", trimFloat(d))
			for _, p := range s.Points {
				if p.Count > 0 && p.Percent >= d {
					b.WriteString(" ######## ")
				} else if p.Count > 0 && p.Percent >= d/10 {
					b.WriteString(" :::::::: ")
				} else {
					b.WriteString("          ")
				}
			}
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV emits the series as CSV: bin_lo_ms, then one percent column per
// series, suitable for external log-log plotting.
func WriteCSV(w io.Writer, series []Series) error {
	if len(series) == 0 {
		return nil
	}
	var b strings.Builder
	b.WriteString("bin_lo_ms")
	for _, s := range series {
		fmt.Fprintf(&b, ",%s_pct,%s_ccdf_pct", csvName(s.Label), csvName(s.Label))
	}
	b.WriteByte('\n')
	for i, p := range series[0].Points {
		fmt.Fprintf(&b, "%g", p.LoMs)
		for _, s := range series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, ",%.6g,%.6g", s.Points[i].Percent, s.Points[i].CCDFPercent)
			} else {
				b.WriteString(",,")
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// BandSeries is one labelled latency distribution carrying its DKW
// confidence band (see stats.BandPoint).
type BandSeries struct {
	Label  string
	Points []stats.BandPoint
}

// NewBandSeries builds a band series over the paper's axes from a
// histogram, with the simultaneous DKW band at the given confidence.
func NewBandSeries(label string, h *stats.Histogram, loMs, hiMs, confidence float64) BandSeries {
	return BandSeries{Label: label, Points: h.OctaveBandSeries(loMs, hiMs, confidence)}
}

// WriteBandCSV emits the series as CSV with confidence-band columns:
// bin_lo_ms, then <name>_ccdf_pct, <name>_ccdf_lo_pct, <name>_ccdf_hi_pct
// per series — the plottable form of the DKW bands (DESIGN.md §12), so an
// external Figure 4/5 plot can shade the uncertainty of each CCDF curve.
func WriteBandCSV(w io.Writer, series []BandSeries) error {
	if len(series) == 0 {
		return nil
	}
	var b strings.Builder
	b.WriteString("bin_lo_ms")
	for _, s := range series {
		n := csvName(s.Label)
		fmt.Fprintf(&b, ",%s_ccdf_pct,%s_ccdf_lo_pct,%s_ccdf_hi_pct", n, n, n)
	}
	b.WriteByte('\n')
	for i, p := range series[0].Points {
		fmt.Fprintf(&b, "%g", p.LoMs)
		for _, s := range series {
			if i < len(s.Points) {
				q := s.Points[i]
				fmt.Fprintf(&b, ",%.6g,%.6g,%.6g", q.CCDFPercent, q.CCDFLoPercent, q.CCDFHiPercent)
			} else {
				b.WriteString(",,,")
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CIMillis renders a quantile estimate with its confidence interval the way
// the precision tables do: "est [lo, hi]" in milliseconds.
func CIMillis(est, lo, hi float64) string {
	return fmt.Sprintf("%s [%s, %s]", Millis(est), Millis(lo), Millis(hi))
}

func csvName(s string) string {
	s = strings.ToLower(s)
	s = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
	return strings.Trim(s, "_")
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}

// formatPercent renders a sample percentage across the 100%..0.0001% range
// the paper's y-axes span.
func formatPercent(p float64) string {
	switch {
	case p == 0:
		return "."
	case p >= 1:
		return fmt.Sprintf("%.1f", p)
	case p >= 0.0001:
		return fmt.Sprintf("%.*f", decimalsFor(p), p)
	default:
		return "<1e-4"
	}
}

func decimalsFor(p float64) int {
	d := int(math.Ceil(-math.Log10(p))) + 1
	if d < 1 {
		d = 1
	}
	if d > 6 {
		d = 6
	}
	return d
}

// Millis renders a millisecond value the way the paper's tables do: "+ 0.1"
// deltas keep one decimal, values below 1 show "<1.0" style when rounded
// away.
func Millis(v float64) string {
	if v < 0.05 {
		return "<0.1"
	}
	return fmt.Sprintf("%.1f", v)
}
