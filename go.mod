module wdmlat

go 1.22
