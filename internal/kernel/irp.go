package kernel

import "wdmlat/internal/sim"

// IRP is an I/O request packet. The paper's control application exchanges
// IRPs with the measurement driver via ReadFileEx; the driver writes the
// three captured time stamps into the system buffer and completes the
// request (§2.2). ASB mirrors IRP->AssociatedIrp.SystemBuffer, which the
// paper "pretends is of type LARGE_INTEGER" — slot 0 is the I/O-read TSC,
// slot 1 the DPC TSC, slot 2 the thread TSC.
type IRP struct {
	ASB [4]sim.Time
	Tag any

	// OnComplete is invoked by IoCompleteRequest. It stands in for the
	// user-mode completion routine of ReadFileEx.
	OnComplete func(irp *IRP, completedAt sim.Time)

	completed   bool
	createdAt   sim.Time
	completedAt sim.Time
}

// NewIRP allocates a request packet stamped with its creation time.
func (k *Kernel) NewIRP() *IRP {
	return &IRP{createdAt: k.now()}
}

// Completed reports whether the IRP has been completed.
func (irp *IRP) Completed() bool { return irp.completed }

// CompletedAt returns when the IRP completed (zero if not yet).
func (irp *IRP) CompletedAt() sim.Time { return irp.completedAt }

// completeIrp is IoCompleteRequest: mark the packet done and deliver it to
// its originator. Completing an already-completed IRP panics — the real
// bug check (MULTIPLE_IRP_COMPLETE_REQUESTS) is fatal too.
func (k *Kernel) completeIrp(irp *IRP) {
	if irp.completed {
		panic("kernel: IRP completed twice")
	}
	irp.completed = true
	irp.completedAt = k.now()
	if irp.OnComplete != nil {
		irp.OnComplete(irp, irp.completedAt)
	}
}

// CompleteIrp completes an IRP from simulation-harness context.
func (k *Kernel) CompleteIrp(irp *IRP) {
	k.completeIrp(irp)
	k.maybeRun()
}
