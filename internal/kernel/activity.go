package kernel

import (
	"fmt"

	"wdmlat/internal/cpu"
	"wdmlat/internal/sim"
)

// activityKind discriminates what occupies the CPU above thread level.
type activityKind int

const (
	actISR activityKind = iota
	actDPC
	actEpisode
	actSwitch // context-switch cost, runs at levelSchedLock
)

func (k activityKind) String() string {
	switch k {
	case actISR:
		return "isr"
	case actDPC:
		return "dpc"
	case actEpisode:
		return "episode"
	case actSwitch:
		return "switch"
	default:
		return fmt.Sprintf("activity(%d)", int(k))
	}
}

// activity is a unit of CPU occupancy above thread level: an ISR execution,
// a DPC execution, an overhead episode, or a context switch. Activities
// stack: a higher-level activity suspends the one below and resumes it on
// completion. The running (top) activity has a completion event scheduled;
// suspended activities only carry their remaining work.
//
// Records are pooled on the owning kernel (newActivity/releaseActivity):
// activities are created and completed on every interrupt, DPC and context
// switch, so recycling them — together with the precomputed doneLabel and
// the once-per-record fire closure — keeps the dispatch loop allocation-free.
type activity struct {
	kind       activityKind
	level      int
	label      string
	doneLabel  string // completion-event label, precomputed by the creator
	frame      cpu.Frame
	remaining  sim.Cycles
	resumedAt  sim.Time   // when the activity last (re)started running
	done       *sim.Event // completion event while running
	onComplete func(now sim.Time)
	fire       func(now sim.Time) // completion callback; bound once per record
}

// suspend stops the running activity's clock: its completion event is
// cancelled and the elapsed run time is deducted from remaining work.
func (a *activity) suspend(eng *sim.Engine, now sim.Time) {
	if a.done == nil {
		return // already suspended
	}
	eng.Cancel(a.done)
	a.done = nil
	elapsed := now.Sub(a.resumedAt)
	if elapsed > a.remaining {
		elapsed = a.remaining
	}
	a.remaining -= elapsed
}

// pendingEpisode is an overhead episode requested while the CPU was busy at
// or above its level; it is admitted by the dispatch loop as soon as the
// occupancy drops.
type pendingEpisode struct {
	level     int
	duration  sim.Cycles
	frame     cpu.Frame
	label     string
	doneLabel string
	since     sim.Time
}
