package kernel

import (
	"fmt"

	"wdmlat/internal/cpu"
	"wdmlat/internal/sim"
)

// EpisodeKind selects what an overhead episode blocks. Episodes are the
// mechanism by which OS personalities inject the platform-specific latency
// sources the paper measures but cannot see the source of (§2.3, §4.4):
// interrupt-masked windows push out ISR entry; scheduler-locked windows
// push out thread dispatch while ISRs and DPCs keep running.
type EpisodeKind int

const (
	// MaskInterrupts models a CLI window / HIGH_LEVEL section: nothing
	// runs until it completes, and pending interrupts accumulate latency.
	MaskInterrupts EpisodeKind = iota
	// LockScheduler models a non-rescheduling region (Win98 VMM and
	// Win16-lock code paths, NT dispatcher lock): interrupts and DPCs
	// preempt it freely, but no thread context switch occurs until it
	// ends. This is the level that separates Win98 DPC latency (small)
	// from Win98 thread latency (huge) in Figure 4.
	LockScheduler
)

func (e EpisodeKind) String() string {
	switch e {
	case MaskInterrupts:
		return "mask-interrupts"
	case LockScheduler:
		return "lock-scheduler"
	default:
		return fmt.Sprintf("episode(%d)", int(e))
	}
}

func (e EpisodeKind) level() int {
	switch e {
	case MaskInterrupts:
		return levelIntMask
	case LockScheduler:
		return levelSchedLock
	default:
		panic("kernel: unknown episode kind")
	}
}

// InjectEpisode requests an overhead episode of the given kind and length,
// attributed to module/function (what the cause tool will sample if it
// catches the episode on-CPU). The episode starts as soon as the CPU
// occupancy level drops below the episode's level; episodes of equal level
// queue FIFO.
func (k *Kernel) InjectEpisode(kind EpisodeKind, duration sim.Cycles, module, function string) {
	if duration <= 0 {
		return
	}
	switch kind {
	case MaskInterrupts:
		if duration > k.counters.MaxMaskEpisode {
			k.counters.MaxMaskEpisode = duration
		}
	case LockScheduler:
		if duration > k.counters.MaxLockEpisode {
			k.counters.MaxLockEpisode = duration
		}
	}
	lbl := k.episodeLabels(module, function)
	ep := k.newEpisode()
	ep.level = kind.level()
	ep.duration = duration
	ep.frame = cpu.Frame{Module: module, Function: function}
	ep.label = lbl.label
	ep.doneLabel = lbl.doneLabel
	ep.since = k.now()
	k.episodes = append(k.episodes, ep)
	k.maybeRun()
}

// PendingEpisodes returns the number of episodes waiting to start.
func (k *Kernel) PendingEpisodes() int { return len(k.episodes) }

// takeEpisode removes and returns the first pending episode with exactly
// the given level, provided that level exceeds top.
func (k *Kernel) takeEpisode(top, level int) *pendingEpisode {
	if level <= top {
		return nil
	}
	for i, ep := range k.episodes {
		if ep.level == level {
			k.episodes = append(k.episodes[:i], k.episodes[i+1:]...)
			return ep
		}
	}
	return nil
}

// startEpisode pushes a pending episode onto the occupancy stack.
func (k *Kernel) startEpisode(ep *pendingEpisode) {
	k.counters.Episodes++
	act := k.newActivity()
	act.kind = actEpisode
	act.level = ep.level
	act.label = ep.label
	act.doneLabel = ep.doneLabel
	act.frame = ep.frame
	act.remaining = ep.duration
	k.occupy(act)
	k.releaseEpisode(ep) // the activity carries everything from here on
	// resumeTop (dispatch loop) schedules the completion.
}
