// causetool reproduces Table 4: it runs the §2.3 latency cause analysis
// tool on a simulated Windows 98 under the Business Winstone stress with
// the default sound scheme enabled, and prints the post-mortem episode
// traces ("N samples in MODULE function FUNC").
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wdmlat/internal/cli"
	"wdmlat/internal/core"
	"wdmlat/internal/workload"
)

func main() {
	duration := flag.Duration("duration", 5*time.Minute, "virtual collection time")
	threshold := flag.Duration("threshold", 6*time.Millisecond, "episode latency threshold")
	seed := flag.Uint64("seed", 1, "simulation seed")
	sound := flag.Bool("sound", true, "enable the default Windows sound scheme (Table 4 setting)")
	scanner := flag.Bool("scanner", false, "install the Plus! 98 virus scanner instead")
	maxPrint := flag.Int("episodes", 4, "number of episodes to print")
	osFlag := flag.String("os", "win98", "operating system (NT requires -nmi: no legacy IDT patching)")
	nmi := flag.Bool("nmi", false, "sample via performance-counter NMIs (§6.1) instead of the PIT hook")
	walk := flag.Bool("walkstack", false, "record call trees instead of single frames (§6.1)")
	cli.AddVersionFlag("causetool", flag.CommandLine)
	flag.Parse()

	osSel, err := cli.ParseOS(*osFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "causetool:", err)
		os.Exit(1)
	}

	r := core.Run(core.RunConfig{
		OS:             osSel,
		Workload:       workload.Business,
		Duration:       *duration,
		Seed:           *seed,
		SoundScheme:    *sound,
		VirusScanner:   *scanner,
		CauseAnalysis:  true,
		CauseThreshold: *threshold,
		CauseNMI:       *nmi,
		CauseWalkStack: *walk,
	})

	fmt.Printf("Table 4: Thread Latency Cause Tool Output, %s w. Biz Apps", r.OSName)
	if *sound {
		fmt.Printf(", Default Sound Scheme")
	}
	if *scanner {
		fmt.Printf(", Virus Scanner")
	}
	fmt.Printf("\n(threshold %v; %d episodes captured over %v virtual)\n\n",
		*threshold, len(r.Episodes), *duration)

	if len(r.Episodes) == 0 {
		fmt.Println("no latency episodes crossed the threshold")
		return
	}
	n := *maxPrint
	if n > len(r.Episodes) {
		n = len(r.Episodes)
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			fmt.Println()
		}
		if err := r.Episodes[i].Format(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "causetool:", err)
			os.Exit(1)
		}
	}
}
