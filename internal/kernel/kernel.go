package kernel

import (
	"fmt"

	"wdmlat/internal/cpu"
	"wdmlat/internal/sim"
)

// Config parameterizes the mechanical costs of the kernel. The two OS
// personalities (ospersona package) supply different values; the mechanics
// themselves are shared, mirroring the fact that WDM is a common driver
// model with two very different implementations underneath (paper §1, §6).
type Config struct {
	// Name identifies the OS build, e.g. "Windows NT 4.0 SP3".
	Name string

	// IsrEntry is the cost from interrupt acceptance to the first
	// instruction of the ISR (vectoring, register save, IRQL raise).
	IsrEntry sim.Dist
	// IsrExit is the cost from ISR return to resuming the preempted work.
	IsrExit sim.Dist
	// DpcDispatch is the per-DPC dequeue-and-call overhead.
	DpcDispatch sim.Dist
	// ClockTick is the base cost of the clock ISR body, excluding expired
	// timer processing.
	ClockTick sim.Dist
	// TimerFire is the per-expired-timer processing cost inside the clock
	// ISR.
	TimerFire sim.Dist
	// ContextSwitch is the thread context switch cost including the cache
	// refill effects that lmbench-style microbenchmarks exclude (the paper
	// §1.2 criticizes exactly that exclusion, so we keep them in).
	ContextSwitch sim.Dist
	// Quantum is the round-robin timeslice shared by all threads.
	Quantum sim.Cycles
	// WorkerPriority is the priority of the kernel work-item worker thread.
	// WDM services the work-item queue with a real-time *default* priority
	// thread (paper §4.2); the NT RT-24 vs RT-28 latency gap follows from
	// this value, which makes it a prime ablation knob.
	WorkerPriority int
	// PriorityBoost enables dynamic-class priority boosting: threads in
	// the normal band (priority < 16) get a temporary bump when a wait is
	// satisfied, decaying one level per expired quantum back to the base.
	// Both Windows schedulers boost; real-time priorities (16-31) are
	// never boosted or decayed.
	PriorityBoost bool
}

func (c *Config) fillDefaults() {
	def := func(d *sim.Dist, v sim.Dist) {
		if *d == nil {
			*d = v
		}
	}
	// Defaults approximate a generic late-90s x86 kernel at 300 MHz
	// (~3.3 ns/cycle): entry/exit ~2 µs, DPC dispatch ~1.5 µs, context
	// switch ~15 µs with cache effects.
	def(&c.IsrEntry, sim.Uniform{Lo: 400, Hi: 800})
	def(&c.IsrExit, sim.Uniform{Lo: 200, Hi: 500})
	def(&c.DpcDispatch, sim.Uniform{Lo: 300, Hi: 600})
	def(&c.ClockTick, sim.Uniform{Lo: 900, Hi: 2100})
	def(&c.TimerFire, sim.Uniform{Lo: 300, Hi: 900})
	def(&c.ContextSwitch, sim.Uniform{Lo: 3000, Hi: 6000})
	if c.Quantum <= 0 {
		c.Quantum = 6_000_000 // 20 ms at 300 MHz
	}
	if c.WorkerPriority == 0 {
		c.WorkerPriority = RealtimeDefault
	}
	if c.Name == "" {
		c.Name = "generic WDM kernel"
	}
}

// Counters aggregates CPU-occupancy accounting for utilization and the
// throughput experiment (§4.2).
type Counters struct {
	ISRCycles     sim.Cycles
	DPCCycles     sim.Cycles
	EpisodeCycles sim.Cycles
	SwitchCycles  sim.Cycles
	ThreadCycles  sim.Cycles
	Interrupts    uint64
	DPCs          uint64
	Switches      uint64
	Episodes      uint64
	// MaxLockEpisode / MaxMaskEpisode record the longest injected overhead
	// windows, for calibration diagnostics.
	MaxLockEpisode sim.Cycles
	MaxMaskEpisode sim.Cycles
	// NMIs delivered and dropped (a drop means one arrived while another
	// was being serviced).
	NMIs        uint64
	NMIsDropped uint64
}

// Busy returns the total accounted busy cycles.
func (c Counters) Busy() sim.Cycles {
	return c.ISRCycles + c.DPCCycles + c.EpisodeCycles + c.SwitchCycles + c.ThreadCycles
}

// Hooks are optional ground-truth instrumentation callbacks. The paper's
// tools only see TSC reads; tests use Hooks to verify that what the tools
// report matches what actually happened inside the kernel.
type Hooks struct {
	InterruptAsserted func(vector int, at sim.Time)
	IsrEntered        func(vector int, asserted, entered sim.Time)
	DpcQueued         func(d *DPC, at sim.Time)
	DpcStarted        func(d *DPC, queuedAt, started sim.Time)
	ThreadReadied     func(t *Thread, at sim.Time)
	ThreadDispatched  func(t *Thread, readiedAt, at sim.Time)
}

// Kernel is one simulated machine's operating system instance.
type Kernel struct {
	eng *sim.Engine
	cpu *cpu.CPU
	cfg Config
	rng *sim.RNG

	// CPU occupancy above thread level.
	stack    []*activity
	episodes []*pendingEpisode
	actFree  []*activity       // recycled activity records
	epFree   []*pendingEpisode // recycled pending-episode records
	irpFree  []*IRP            // recycled request packets (FreeIRP)
	epLabels map[epLabelKey]epLabelVal

	// Interrupt state. irqList mirrors the map for iteration (Go map walks
	// cost an iterator setup per call, and the dispatch loop polls every
	// pass); irqPending counts asserted lines so the common nothing-pending
	// poll is one compare.
	interrupts map[int]*Interrupt
	irqList    []*Interrupt
	irqPending int

	// DPC queue (FIFO; High importance inserts at front).
	dpcQ []*DPC

	// Timers, ordered by due time (small n; linear scan at each tick).
	timers     []*Timer
	tickPeriod sim.Cycles
	clockVec   int

	// Scheduler state. readyMask mirrors the ready queues (bit p set iff
	// ready[p] is non-empty) so the highest ready priority is one bit scan.
	ready      [NumPriorities][]*Thread
	readyMask  uint32
	current    *Thread
	reqCh      chan *request
	threads    []*Thread
	inDispatch bool

	// Work-item queue (§4.2: serviced by an RT default priority thread).
	workQ   []*WorkItem
	workSem *Semaphore
	worker  *Thread

	nmiHandler func(now sim.Time)

	probe    Hooks
	counters Counters
}

// New constructs a kernel on the given engine and CPU. Boot must be called
// before the simulation runs.
func New(eng *sim.Engine, c *cpu.CPU, cfg Config) *Kernel {
	cfg.fillDefaults()
	k := &Kernel{
		eng:        eng,
		cpu:        c,
		cfg:        cfg,
		rng:        eng.RNG().Split(),
		interrupts: make(map[int]*Interrupt),
		reqCh:      make(chan *request),
	}
	return k
}

// Engine returns the simulation engine.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// CPU returns the virtual processor.
func (k *Kernel) CPU() *cpu.CPU { return k.cpu }

// Config returns the kernel's cost configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Counters returns a snapshot of the occupancy counters.
func (k *Kernel) Counters() Counters { return k.counters }

// SetHooks installs ground-truth instrumentation.
func (k *Kernel) SetHooks(h Hooks) { k.probe = h }

// Name returns the OS build name.
func (k *Kernel) Name() string { return k.cfg.Name }

func (k *Kernel) draw(d sim.Dist) sim.Cycles { return d.Draw(k.rng) }

// now returns the current engine time (not including body charge).
func (k *Kernel) now() sim.Time { return k.eng.Now() }

// topLevel returns the preemption level currently occupying the CPU above
// threads, or levelThread when only threads (or idle) occupy it.
func (k *Kernel) topLevel() int {
	if n := len(k.stack); n > 0 {
		return k.stack[n-1].level
	}
	return levelThread
}

// Boot finalizes kernel construction: it claims the clock vector, installs
// the clock ISR, and starts the work-item worker thread. tickPeriod is the
// interval at which the PIT has been programmed to interrupt; the paper's
// tools reprogram it to 1 kHz (§2.2).
func (k *Kernel) Boot(clockVector int, tickPeriod sim.Cycles) {
	if tickPeriod <= 0 {
		panic("kernel: non-positive tick period")
	}
	k.tickPeriod = tickPeriod
	k.clockVec = clockVector
	k.Connect(clockVector, ClockLevel, "NTKERN", "_KeUpdateSystemTime", k.clockISR)
	k.workSem = k.NewSemaphore(0, 1<<30)
	k.worker = k.CreateThread("ExWorkerThread", k.cfg.WorkerPriority, k.workerBody)
}

// TickPeriod returns the programmed clock interrupt period in cycles.
func (k *Kernel) TickPeriod() sim.Cycles { return k.tickPeriod }

// ClockVector returns the IDT vector claimed by the clock interrupt. The
// Windows 98 interrupt-latency tool hooks this vector (paper §2.2, §2.3).
func (k *Kernel) ClockVector() int { return k.clockVec }

// ---------------------------------------------------------------------------
// The dispatch loop.
// ---------------------------------------------------------------------------

// maybeRun is the kernel's central dispatch loop. It is invoked after every
// state change (interrupt assertion, DPC enqueue, thread wakeup, activity
// completion, episode injection) and repeatedly admits the highest-level
// pending work until the CPU is committed to something (an activity with a
// scheduled completion, a thread execution segment) or goes idle. It is
// re-entrancy guarded: nested calls from inside the loop are no-ops.
func (k *Kernel) maybeRun() {
	if k.inDispatch {
		return
	}
	// Cleared explicitly at each exit rather than by defer: the loop runs
	// once per kernel state change, and the per-call defer is measurable
	// there. A panic escaping the loop is a simulated bug check — the
	// kernel is not used again, so a stuck flag is harmless.
	k.inDispatch = true

	for {
		top := k.topLevel()

		// 1. Deliverable hardware interrupt (highest DIRQL first)? The
		// pending-count guard keeps the common empty case call-free.
		if k.irqPending > 0 {
			if irq := k.bestDeliverableIRQ(top); irq != nil {
				k.acceptInterrupt(irq)
				continue
			}
		}
		if len(k.episodes) > 0 {
			// 2. Interrupt-masked overhead episode? Admitted only when no
			// ISR is in flight: masked windows originate in thread/DPC-
			// context code, not inside other interrupt handlers.
			if top < levelIsrBase {
				if ep := k.takeEpisode(top, levelIntMask); ep != nil {
					k.startEpisode(ep)
					continue
				}
			}
		}
		// 3. DPC drain (DPCs cannot preempt DPCs, so only when below
		// dispatch level)?
		if top < levelDispatch && len(k.dpcQ) > 0 {
			k.startDPC()
			continue
		}
		// 4. Scheduler-locked overhead episode?
		if len(k.episodes) > 0 {
			if ep := k.takeEpisode(top, levelSchedLock); ep != nil {
				k.startEpisode(ep)
				continue
			}
		}
		// 5. Resume the suspended top activity, if any.
		if len(k.stack) > 0 {
			k.resumeTop()
			k.inDispatch = false
			return
		}
		// 6. Threads.
		if !k.scheduleStep() {
			k.inDispatch = false
			return
		}
	}
}

// newActivity returns a recycled activity record, or a fresh one whose
// completion callback is bound to the record once for its whole lifetime.
func (k *Kernel) newActivity() *activity {
	if n := len(k.actFree); n > 0 {
		act := k.actFree[n-1]
		k.actFree[n-1] = nil
		k.actFree = k.actFree[:n-1]
		return act
	}
	act := &activity{}
	act.fire = func(now sim.Time) { k.completeActivity(act, now) }
	return act
}

// releaseActivity returns a completed record to the pool, dropping any
// per-use closure so the pool does not pin captured state alive.
func (k *Kernel) releaseActivity(act *activity) {
	act.label = ""
	act.doneLabel = ""
	act.frame = cpu.Frame{}
	act.onComplete = nil
	act.remaining = 0
	k.actFree = append(k.actFree, act)
}

// epLabelKey / epLabelVal cache the "module:function" episode labels:
// episodes are injected at interrupt rates from a small fixed set of
// profile frames, so the concatenation is paid once per distinct frame
// rather than once per episode.
type epLabelKey struct{ module, function string }
type epLabelVal struct{ label, doneLabel string }

func (k *Kernel) episodeLabels(module, function string) epLabelVal {
	key := epLabelKey{module, function}
	if v, ok := k.epLabels[key]; ok {
		return v
	}
	if k.epLabels == nil {
		k.epLabels = make(map[epLabelKey]epLabelVal)
	}
	l := module + ":" + function
	v := epLabelVal{label: l, doneLabel: "episode:" + l}
	k.epLabels[key] = v
	return v
}

// newEpisode returns a recycled pending-episode record or a fresh one.
func (k *Kernel) newEpisode() *pendingEpisode {
	if n := len(k.epFree); n > 0 {
		ep := k.epFree[n-1]
		k.epFree[n-1] = nil
		k.epFree = k.epFree[:n-1]
		return ep
	}
	return &pendingEpisode{}
}

// releaseEpisode returns a started episode's record to the pool.
func (k *Kernel) releaseEpisode(ep *pendingEpisode) {
	k.epFree = append(k.epFree, ep)
}

// resumeTop restarts the clock of the top-of-stack activity.
func (k *Kernel) resumeTop() {
	act := k.stack[len(k.stack)-1]
	if act.done != nil {
		return // already running
	}
	act.resumedAt = k.now()
	act.done = k.eng.After(act.remaining, act.doneLabel, act.fire)
}

// occupy suspends whatever is currently using the CPU and pushes act on the
// occupancy stack. The caller must ensure act.level exceeds the current top
// level.
func (k *Kernel) occupy(act *activity) {
	now := k.now()
	if n := len(k.stack); n > 0 {
		topAct := k.stack[n-1]
		if act.level <= topAct.level {
			panic(fmt.Sprintf("kernel: %s level %d cannot preempt %s level %d",
				act.label, act.level, topAct.label, topAct.level))
		}
		k.suspendActivity(topAct, now)
	} else if k.current != nil && k.current.execDone != nil {
		k.suspendExec(k.current, now)
	}
	k.stack = append(k.stack, act)
	k.cpu.PushFrame(act.frame.Module, act.frame.Function)
}

// suspendActivity pauses a running activity, accounting its elapsed time.
func (k *Kernel) suspendActivity(act *activity, now sim.Time) {
	if act.done == nil {
		return
	}
	k.accountActivity(act.kind, now.Sub(act.resumedAt))
	act.suspend(k.eng, now)
}

// completeActivity pops the finished top-of-stack activity.
func (k *Kernel) completeActivity(act *activity, now sim.Time) {
	n := len(k.stack)
	if n == 0 || k.stack[n-1] != act {
		panic("kernel: completing activity that is not on top of stack")
	}
	k.accountActivity(act.kind, now.Sub(act.resumedAt))
	act.done = nil
	act.remaining = 0
	k.stack = k.stack[:n-1]
	k.cpu.PopFrame()
	if act.onComplete != nil {
		act.onComplete(now)
	}
	k.releaseActivity(act)
	k.maybeRun()
}

func (k *Kernel) accountActivity(kind activityKind, elapsed sim.Cycles) {
	if elapsed < 0 {
		elapsed = 0
	}
	switch kind {
	case actISR:
		k.counters.ISRCycles += elapsed
	case actDPC:
		k.counters.DPCCycles += elapsed
	case actEpisode:
		k.counters.EpisodeCycles += elapsed
	case actSwitch:
		k.counters.SwitchCycles += elapsed
	}
}
