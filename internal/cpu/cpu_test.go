package cpu

import (
	"testing"

	"wdmlat/internal/sim"
)

func newCPU() (*sim.Engine, *CPU) {
	eng := sim.NewEngine(1)
	return eng, New(eng, sim.DefaultFreq)
}

func TestTSCTracksEngineClock(t *testing.T) {
	eng, c := newCPU()
	if c.TSC() != 0 {
		t.Fatalf("TSC at boot = %d", c.TSC())
	}
	eng.At(500, "x", func(sim.Time) {})
	eng.RunUntil(1000)
	if c.TSC() != 1000 {
		t.Fatalf("TSC = %d, want 1000", c.TSC())
	}
}

func TestTSCIncludesCharge(t *testing.T) {
	_, c := newCPU()
	c.AddCharge(300)
	if c.TSC() != 300 {
		t.Fatalf("TSC with charge = %d, want 300", c.TSC())
	}
	c.AddCharge(200)
	if c.TSC() != 500 {
		t.Fatalf("TSC with charge = %d, want 500", c.TSC())
	}
	if got := c.ResetCharge(); got != 500 {
		t.Fatalf("ResetCharge = %d, want 500", got)
	}
	if c.TSC() != 0 {
		t.Fatalf("TSC after reset = %d, want 0", c.TSC())
	}
}

func TestNegativeChargePanics(t *testing.T) {
	_, c := newCPU()
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge should panic")
		}
	}()
	c.AddCharge(-1)
}

func TestInstallAndDispatch(t *testing.T) {
	_, c := newCPU()
	var got sim.Time
	c.Install(32, func(now sim.Time) { got = now })
	c.Dispatch(32, 777)
	if got != 777 {
		t.Fatalf("handler saw %d, want 777", got)
	}
}

func TestDispatchEmptyVectorPanics(t *testing.T) {
	_, c := newCPU()
	defer func() {
		if recover() == nil {
			t.Fatal("dispatch through empty vector should panic")
		}
	}()
	c.Dispatch(33, 0)
}

func TestVectorRangeChecks(t *testing.T) {
	_, c := newCPU()
	for _, v := range []int{-1, NumVectors} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("vector %d should panic", v)
				}
			}()
			c.Install(v, func(sim.Time) {})
		}()
	}
}

func TestHookChainsAndUnhooks(t *testing.T) {
	_, c := newCPU()
	var order []string
	c.Install(40, func(sim.Time) { order = append(order, "os") })
	unhook := c.Hook(40, func(now sim.Time, chain Handler) {
		order = append(order, "hook")
		chain(now)
	})
	c.Dispatch(40, 1)
	if len(order) != 2 || order[0] != "hook" || order[1] != "os" {
		t.Fatalf("hook order = %v", order)
	}

	unhook()
	order = nil
	c.Dispatch(40, 2)
	if len(order) != 1 || order[0] != "os" {
		t.Fatalf("after unhook order = %v", order)
	}
}

func TestHookStacking(t *testing.T) {
	_, c := newCPU()
	var order []string
	c.Install(41, func(sim.Time) { order = append(order, "os") })
	c.Hook(41, func(now sim.Time, chain Handler) {
		order = append(order, "first")
		chain(now)
	})
	c.Hook(41, func(now sim.Time, chain Handler) {
		order = append(order, "second")
		chain(now)
	})
	c.Dispatch(41, 1)
	want := []string{"second", "first", "os"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("stacked hooks order = %v, want %v", order, want)
		}
	}
}

func TestFrameStack(t *testing.T) {
	_, c := newCPU()
	if c.CurrentFrame() != IdleFrame {
		t.Fatalf("boot frame = %v", c.CurrentFrame())
	}
	c.PushFrame("VMM", "_mmCalcFrameBadness")
	c.PushFrame("KMIXER", "")
	if f := c.CurrentFrame(); f.Module != "KMIXER" {
		t.Fatalf("current frame = %v", f)
	}
	if d := c.Depth(); d != 2 {
		t.Fatalf("depth = %d", d)
	}
	st := c.Stack()
	if len(st) != 2 || st[0].Module != "VMM" || st[1].Module != "KMIXER" {
		t.Fatalf("stack = %v", st)
	}
	c.PopFrame()
	if f := c.CurrentFrame(); f.Module != "VMM" || f.Function != "_mmCalcFrameBadness" {
		t.Fatalf("after pop frame = %v", f)
	}
	c.PopFrame()
	if c.CurrentFrame() != IdleFrame {
		t.Fatal("frame stack should be empty")
	}
}

func TestPopEmptyFrameStackPanics(t *testing.T) {
	_, c := newCPU()
	defer func() {
		if recover() == nil {
			t.Fatal("PopFrame on empty stack should panic")
		}
	}()
	c.PopFrame()
}

func TestFrameString(t *testing.T) {
	cases := []struct {
		f    Frame
		want string
	}{
		{Frame{}, "idle"},
		{Frame{Module: "KMIXER"}, "KMIXER function unknown"},
		{Frame{Module: "VMM", Function: "_mmFindContig"}, "VMM function _mmFindContig"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.f, got, c.want)
		}
	}
}

func TestStackIsACopy(t *testing.T) {
	_, c := newCPU()
	c.PushFrame("A", "f")
	st := c.Stack()
	st[0].Module = "mutated"
	if c.CurrentFrame().Module != "A" {
		t.Fatal("Stack() must return a copy")
	}
}
