package mttf

import (
	"math"
	"testing"
	"time"

	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
)

const freq = sim.DefaultFreq

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table 1 has %d rows", len(rows))
	}
	want := map[string][2]float64{
		"ADSL":     {4, 10},
		"Modem":    {12, 20},
		"RT audio": {20, 60},
		"RT video": {33, 100},
	}
	for _, r := range rows {
		w, ok := want[r.App.Name]
		if !ok {
			t.Fatalf("unexpected row %q", r.App.Name)
		}
		if r.TolLoMS != w[0] || r.TolHiMS != w[1] {
			t.Errorf("%s tolerance = %v..%v, want %v..%v", r.App.Name, r.TolLoMS, r.TolHiMS, w[0], w[1])
		}
	}
	// The two most processor-intensive applications, ADSL and video, sit
	// at opposite ends of the tolerance spectrum (§1).
	if rows[0].TolHiMS >= rows[3].TolLoMS {
		t.Error("ADSL tolerance should sit far below video tolerance")
	}
}

func TestToleranceFormula(t *testing.T) {
	if ToleranceMS(6, 3) != 12 {
		t.Fatalf("(3-1)*6 = %v", ToleranceMS(6, 3))
	}
	if ToleranceMS(16, 2) != 16 {
		t.Fatalf("(2-1)*16 = %v", ToleranceMS(16, 2))
	}
}

// buildLatencyTable builds a measured-looking distribution: dense fast
// samples plus a controlled tail.
func buildLatencyTable() (*stats.Histogram, sim.Cycles) {
	h := stats.NewHistogram(freq)
	// 1 hour at 250 samples/s.
	total := 900_000
	for i := 0; i < total-91; i++ {
		h.AddMillis(0.3)
	}
	for i := 0; i < 90; i++ {
		h.AddMillis(11) // ~1.5/min events of 11 ms
	}
	h.AddMillis(45)
	return h, freq.Cycles(time.Hour)
}

func TestAnalyticMatchesHandComputation(t *testing.T) {
	h, obs := buildLatencyTable()
	// Triple buffered 6 ms buffers: buffering 12 ms, compute 1.5 ms,
	// slack 10.5 ms. P(lat >= 10.5ms) = 91/900000 (the 11 ms and 45 ms
	// samples). MTTF = 0.012 s / p.
	pt := Analytic(h, obs, 6, 3, 1.5)
	if pt.BufferingMS != 12 {
		t.Fatalf("buffering = %v", pt.BufferingMS)
	}
	p := 91.0 / 900000.0
	want := 0.012 / p
	if math.Abs(pt.MTTFSeconds-want)/want > 0.02 {
		t.Fatalf("MTTF = %v s, want ~%v", pt.MTTFSeconds, want)
	}
	if pt.Censored {
		t.Fatal("should not be censored")
	}
}

func TestAnalyticZeroSlackAlwaysMisses(t *testing.T) {
	h, obs := buildLatencyTable()
	// 2 buffers of 1 ms with 1.5 ms compute: slack negative.
	pt := Analytic(h, obs, 1, 2, 1.5)
	if pt.MTTFSeconds != 0 {
		t.Fatalf("negative slack should give MTTF 0, got %v", pt.MTTFSeconds)
	}
}

func TestAnalyticCensoredBeyondObservedMax(t *testing.T) {
	h, obs := buildLatencyTable()
	// Slack beyond 45 ms: no observed event ⇒ censored at the observation
	// span.
	pt := Analytic(h, obs, 16, 5, 0) // buffering 64, slack 64
	if !pt.Censored {
		t.Fatal("should be censored")
	}
	if math.Abs(pt.MTTFSeconds-3600) > 1 {
		t.Fatalf("censored MTTF = %v, want observation span", pt.MTTFSeconds)
	}
}

func TestSweepMonotone(t *testing.T) {
	h, obs := buildLatencyTable()
	pts := Sweep(h, obs, 6, 0.25, 12)
	if len(pts) != 11 {
		t.Fatalf("sweep has %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].BufferingMS <= pts[i-1].BufferingMS {
			t.Fatal("buffering not increasing")
		}
		if pts[i].MTTFSeconds+1e-9 < pts[i-1].MTTFSeconds {
			t.Fatalf("MTTF not monotone at %v ms: %v < %v",
				pts[i].BufferingMS, pts[i].MTTFSeconds, pts[i-1].MTTFSeconds)
		}
	}
}

func TestMinBufferingFor(t *testing.T) {
	h, obs := buildLatencyTable()
	// For an hour between misses we need slack beyond the 11 ms events
	// (which occur 91 times/hour): buffering - 1.5 > 11 → >= 12.5 → with
	// 6 ms cycles, buffering 18 (n=4) is the first level above.
	b, ok := MinBufferingFor(h, obs, 6, 0.25, 3600, 12)
	if !ok {
		t.Fatal("no buffering level found")
	}
	if b != 18 {
		t.Fatalf("min buffering = %v, want 18", b)
	}
	// A 1-second target is met by the smallest level already.
	b, ok = MinBufferingFor(h, obs, 6, 0.25, 1, 12)
	if !ok || b != 6 {
		t.Fatalf("easy target: %v %v", b, ok)
	}
}

func TestPaperExampleShape(t *testing.T) {
	// Reproduce the §5.1 reading exercise shape: on a distribution whose
	// ~10.5 ms events occur every ~12-15 minutes, 12 ms of buffering gives
	// a 12-15 minute MTTF and 20 ms of buffering (slack 17.5) gives much
	// more.
	h := stats.NewHistogram(freq)
	total := 900_000 // one hour at 250/s
	for i := 0; i < total-5; i++ {
		h.AddMillis(0.5)
	}
	for i := 0; i < 4; i++ {
		h.AddMillis(12) // 4/hour ≈ one per 15 min
	}
	h.AddMillis(25) // 1/hour
	obs := freq.Cycles(time.Hour)

	at12 := Analytic(h, obs, 6, 3, 1.5)
	if at12.MTTFSeconds < 400 || at12.MTTFSeconds > 2500 {
		t.Fatalf("12 ms buffering MTTF = %v s, want ~O(10 min)", at12.MTTFSeconds)
	}
	at30 := Analytic(h, obs, 10, 4, 2.5) // buffering 30, slack 27.5
	if !at30.Censored && at30.MTTFSeconds < 3600 {
		t.Fatalf("30 ms buffering MTTF = %v s, want > 1 hour", at30.MTTFSeconds)
	}
	if at30.MTTFSeconds <= at12.MTTFSeconds {
		t.Fatal("more buffering must not reduce MTTF")
	}
}
