package stats

import (
	"reflect"
	"testing"

	"wdmlat/internal/sim"
)

// Property-based tests over randomized sample sets. Samples are bounded
// below 2^20 cycles so that sums and sums of squares stay exactly
// representable in float64 — merge associativity can then be asserted
// bitwise, not just within tolerance.

const propFreq = sim.Freq(300e6)

// randHistogram fills a histogram with n samples from a mix of the
// distribution families the simulator produces (uniform noise, exponential
// bulk, Pareto tail), all clamped to [0, 2^20).
func randHistogram(rng *sim.RNG, n int) *Histogram {
	h := NewHistogram(propFreq)
	for i := 0; i < n; i++ {
		var v float64
		switch rng.Intn(3) {
		case 0:
			v = float64(rng.Cyclesn(1 << 20))
		case 1:
			v = rng.Exp(5000)
		default:
			v = rng.Pareto(100, 1.1)
		}
		c := sim.Cycles(v)
		if c < 0 {
			c = 0
		}
		if c >= 1<<20 {
			c = 1<<20 - 1
		}
		h.Add(c)
	}
	return h
}

// TestCCDFMonotoneNonIncreasing: P(X >= v) cannot grow as v grows.
func TestCCDFMonotoneNonIncreasing(t *testing.T) {
	rng := sim.NewRNG(101)
	for trial := 0; trial < 20; trial++ {
		h := randHistogram(rng, 500+rng.Intn(2000))
		prev := 1.0
		for v := sim.Cycles(0); v < 1<<21; v = v*2 + 1 {
			cur := h.CCDF(v)
			if cur > prev+1e-15 {
				t.Fatalf("trial %d: CCDF increased from %g to %g at v=%d", trial, prev, cur, v)
			}
			if cur < 0 || cur > 1 {
				t.Fatalf("trial %d: CCDF(%d) = %g outside [0,1]", trial, v, cur)
			}
			prev = cur
		}
	}
}

// TestExpectedMaxMonotoneProperty: over randomized sample sets, a longer
// horizon can only raise (never lower) the expected worst case, and it is
// capped by the observed max. (stats_test.go checks the same property on
// one fixed Pareto distribution; this sweeps random mixtures.)
func TestExpectedMaxMonotoneProperty(t *testing.T) {
	rng := sim.NewRNG(202)
	observed := sim.Cycles(1 << 30)
	for trial := 0; trial < 20; trial++ {
		h := randHistogram(rng, 500+rng.Intn(2000))
		prev := sim.Cycles(0)
		for w := sim.Cycles(1); w <= observed*4; w *= 2 {
			cur := h.ExpectedMaxOver(w, observed)
			if cur < prev {
				t.Fatalf("trial %d: expected max dropped from %d to %d as window grew to %d",
					trial, prev, cur, w)
			}
			if cur > h.Max() {
				t.Fatalf("trial %d: expected max %d exceeds observed max %d", trial, cur, h.Max())
			}
			prev = cur
		}
		if got := h.ExpectedMaxOver(observed, observed); got != h.Max() {
			t.Fatalf("trial %d: window == observed must return the observed max", trial)
		}
	}
}

// TestMergeCommutative: a ∪ b == b ∪ a, bitwise.
func TestMergeCommutative(t *testing.T) {
	rng := sim.NewRNG(303)
	for trial := 0; trial < 20; trial++ {
		a := randHistogram(rng, 100+rng.Intn(1500))
		b := randHistogram(rng, rng.Intn(1500)) // possibly empty-ish
		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("trial %d: merge is not commutative", trial)
		}
	}
}

// TestMergeAssociative: (a ∪ b) ∪ c == a ∪ (b ∪ c), bitwise (sample values
// are small enough that the float accumulators are exact).
func TestMergeAssociative(t *testing.T) {
	rng := sim.NewRNG(404)
	for trial := 0; trial < 20; trial++ {
		a := randHistogram(rng, 100+rng.Intn(1000))
		b := randHistogram(rng, rng.Intn(1000))
		c := randHistogram(rng, rng.Intn(1000))

		left := a.Clone()
		left.Merge(b)
		left.Merge(c)

		bc := b.Clone()
		bc.Merge(c)
		right := a.Clone()
		right.Merge(bc)

		if !reflect.DeepEqual(left, right) {
			t.Fatalf("trial %d: merge is not associative", trial)
		}
	}
}

// TestMergeWithEmptyIsIdentity: merging an empty histogram changes nothing
// (in particular min/max sentinels must not leak through).
func TestMergeWithEmptyIsIdentity(t *testing.T) {
	rng := sim.NewRNG(505)
	a := randHistogram(rng, 1000)
	empty := NewHistogram(propFreq)

	merged := a.Clone()
	merged.Merge(empty)
	if !reflect.DeepEqual(merged, a) {
		t.Fatal("merging an empty histogram must be the identity")
	}

	other := empty.Clone()
	other.Merge(a)
	if !reflect.DeepEqual(other, a) {
		t.Fatal("merging into an empty histogram must copy the samples")
	}
}
