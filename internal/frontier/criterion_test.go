package frontier

import (
	"reflect"
	"testing"

	"wdmlat/internal/core"
	"wdmlat/internal/sim"
	"wdmlat/internal/workload"
)

// stormResult hand-builds a merged result with the given storm accounting
// and busy fraction, the criterion's three inputs.
func stormResult(offered, dropped uint64, busyFrac float64, backlog []workload.BacklogSample) *core.Result {
	const observed = 1 << 30
	r := &core.Result{Observed: observed, Freq: sim.DefaultFreq}
	r.Counters.ISRCycles = sim.Cycles(busyFrac * observed)
	r.Storm = &core.StormStats{
		OfferedPPS: 1000,
		Offered:    offered,
		Dropped:    dropped,
		Backlog:    backlog,
	}
	return r
}

// flat builds a steady backlog trajectory at the given occupancy.
func flat(n int, pending int) []workload.BacklogSample {
	out := make([]workload.BacklogSample, n)
	for i := range out {
		out[i] = workload.BacklogSample{T: sim.Time(i + 1), Pending: pending}
	}
	return out
}

// ramp builds a linearly growing trajectory from lo to hi occupancy.
func ramp(n, lo, hi int) []workload.BacklogSample {
	out := make([]workload.BacklogSample, n)
	for i := range out {
		out[i] = workload.BacklogSample{
			T:       sim.Time(i + 1),
			Pending: lo + (hi-lo)*i/(n-1),
		}
	}
	return out
}

func TestCriterionSustainable(t *testing.T) {
	v := Criterion{}.Evaluate(stormResult(100_000, 0, 0.5, flat(40, 3)))
	if v.Saturated {
		t.Fatalf("clean run judged saturated: %v", v)
	}
	if len(v.Reasons) != 0 {
		t.Fatalf("reasons on a sustainable run: %v", v.Reasons)
	}
}

func TestCriterionDropSignal(t *testing.T) {
	v := Criterion{}.Evaluate(stormResult(100_000, 5_000, 0.5, flat(40, 3)))
	if !v.Saturated || !reflect.DeepEqual(v.Reasons, []string{"drops"}) {
		t.Fatalf("5%% drops: %v", v)
	}
	if v.DropFrac != 0.05 {
		t.Fatalf("drop frac = %v, want 0.05", v.DropFrac)
	}
	// Exactly at the threshold is sustainable: the criterion is strict.
	v = Criterion{}.Evaluate(stormResult(100_000, 1_000, 0.5, flat(40, 3)))
	if v.Saturated {
		t.Fatalf("drops exactly at MaxDropFrac judged saturated: %v", v)
	}
}

func TestCriterionCPUSignal(t *testing.T) {
	v := Criterion{}.Evaluate(stormResult(100_000, 0, 0.95, flat(40, 3)))
	if !v.Saturated || !reflect.DeepEqual(v.Reasons, []string{"cpu"}) {
		t.Fatalf("5%% cpu available: %v", v)
	}
	if v.CPUAvail < 0.049 || v.CPUAvail > 0.051 {
		t.Fatalf("cpu avail = %v, want ~0.05", v.CPUAvail)
	}
}

func TestCriterionBacklogGrowthSignal(t *testing.T) {
	// Early quarter ~5, late quarter ~120: floor and factor both satisfied.
	v := Criterion{}.Evaluate(stormResult(100_000, 0, 0.5, ramp(40, 0, 128)))
	if !v.Saturated || !reflect.DeepEqual(v.Reasons, []string{"backlog"}) {
		t.Fatalf("growing backlog: %v", v)
	}
	// High but flat occupancy must NOT fire: no growth, just a busy ring.
	v = Criterion{}.Evaluate(stormResult(100_000, 0, 0.5, flat(40, 120)))
	if v.Saturated {
		t.Fatalf("flat 120-occupancy judged saturated: %v", v)
	}
	// Growth below the floor must not fire (2 -> 20 packets).
	v = Criterion{}.Evaluate(stormResult(100_000, 0, 0.5, ramp(40, 2, 20)))
	if v.Saturated {
		t.Fatalf("sub-floor growth judged saturated: %v", v)
	}
}

func TestCriterionMergedTrajectorySegments(t *testing.T) {
	// Two concatenated replicas (time resets between them), each growing:
	// the splitter must see two segments and still fire.
	merged := append(ramp(40, 0, 128), ramp(40, 0, 128)...)
	v := Criterion{}.Evaluate(stormResult(100_000, 0, 0.5, merged))
	if !v.Saturated || !reflect.DeepEqual(v.Reasons, []string{"backlog"}) {
		t.Fatalf("merged growing replicas: %v", v)
	}
	// One growing replica diluted by three idle ones: per-segment averaging
	// halves the late mean (128-cap ramp late mean ~120 / 4 segments = ~30),
	// below the 96 floor — growth in a minority of replicas is suspicious
	// but not saturation.
	diluted := append(ramp(40, 0, 128), flat(120, 0)...)
	v = Criterion{}.Evaluate(stormResult(100_000, 0, 0.5, diluted))
	if v.Saturated {
		t.Fatalf("one growing replica among idle ones judged saturated: %v", v)
	}
}

func TestCriterionMultipleReasonsStableOrder(t *testing.T) {
	v := Criterion{}.Evaluate(stormResult(100_000, 50_000, 0.95, ramp(40, 0, 128)))
	if !reflect.DeepEqual(v.Reasons, []string{"drops", "cpu", "backlog"}) {
		t.Fatalf("reasons = %v, want stable [drops cpu backlog]", v.Reasons)
	}
}

func TestCriterionEmptyBacklogAndZeroOffered(t *testing.T) {
	v := Criterion{}.Evaluate(stormResult(0, 0, 0.5, nil))
	if v.Saturated {
		t.Fatalf("empty run judged saturated: %v", v)
	}
	if v.DropFrac != 0 || v.BacklogEarly != 0 || v.BacklogLate != 0 {
		t.Fatalf("empty-run signals nonzero: %v", v)
	}
}

func TestCriterionPanicsWithoutStormStats(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Evaluate without storm stats should panic")
		}
	}()
	Criterion{}.Evaluate(&core.Result{})
}

func TestCriterionNormalizedDefaults(t *testing.T) {
	c := Criterion{}.Normalized()
	want := Criterion{MaxDropFrac: 0.01, MinCPUAvail: 0.10, GrowthFactor: 4, GrowthFloor: 96}
	if c != want {
		t.Fatalf("defaults = %+v, want %+v", c, want)
	}
	// Explicit values survive normalization.
	custom := Criterion{MaxDropFrac: 0.5, MinCPUAvail: 0.01, GrowthFactor: 2, GrowthFloor: 10}
	if custom.Normalized() != custom {
		t.Fatal("explicit criterion altered by Normalized")
	}
}
