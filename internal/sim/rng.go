package sim

import "math"

// RNG is a deterministic pseudo-random number generator
// (xoshiro256** seeded via splitmix64). It is small, fast, has no global
// state, and produces an identical stream on every platform, which keeps
// whole-simulation runs reproducible from a single seed.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed. Any seed value, including
// zero, is valid.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed reinitializes the generator state from seed using splitmix64, as
// recommended by the xoshiro authors.
func (r *RNG) Seed(seed uint64) {
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// xoshiro256** must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is independent of r's future
// output. It is used to give each subsystem (scheduler noise, each workload,
// each device) its own stream so that adding one subsystem does not perturb
// the randomness seen by another.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Cyclesn returns a uniform Cycles value in [0, n). It panics if n <= 0.
func (r *RNG) Cyclesn(n Cycles) Cycles {
	return Cycles(r.Int63n(int64(n)))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(1-u)
}

// Norm returns a normally distributed value with the given mean and
// standard deviation (Box–Muller).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNorm returns a log-normally distributed value parameterized by the mu
// and sigma of the underlying normal.
func (r *RNG) LogNorm(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Pareto returns a Pareto(xm, alpha) distributed value: xm scale (minimum),
// alpha shape. Small alpha gives heavy tails; the Win98 latency tail in the
// paper is distinctly heavy-tailed (Figure 4 is presented log-log for this
// reason).
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return xm / math.Pow(1-u, 1/alpha)
}
