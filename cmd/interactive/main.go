// interactive runs the Endo et al.-style interactive-event latency
// methodology (§1.2) side by side with the paper's multimedia-deadline view
// on the same machines: both operating systems look "adequately responsive"
// (50–150 ms band) under load, while their ability to hold a 10 ms
// multimedia tolerance differs drastically — the reason the paper needed a
// different metric.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wdmlat/internal/cli"
	"wdmlat/internal/core"
	"wdmlat/internal/interactive"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/report"
)

func main() {
	wlFlag := flag.String("workload", "business", "concurrent stress class")
	duration := flag.Duration("duration", 5*time.Minute, "virtual collection time")
	seed := flag.Uint64("seed", 1, "simulation seed")
	cli.AddVersionFlag("interactive", flag.CommandLine)
	flag.Parse()

	wl, err := cli.ParseWorkload(*wlFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "interactive:", err)
		os.Exit(1)
	}

	t := &report.Table{
		Title: fmt.Sprintf("Interactive response vs. multimedia deadlines under %v (§1.2)", wl),
		Headers: []string{"System", "echo p50 (ms)", "echo p99 (ms)", "echo worst (ms)",
			"within 150 ms", "P(thread lat >= 10 ms)"},
	}
	for _, osSel := range []ospersona.OS{ospersona.NT4, ospersona.Win98} {
		ir := interactive.Run(interactive.Config{
			OS: osSel, Workload: wl, Duration: *duration, Seed: *seed,
		})
		lr := core.Run(core.RunConfig{OS: osSel, Workload: wl, Duration: *duration, Seed: *seed})
		p10 := lr.Thread[lr.HighPriority()].CCDF(lr.Freq.FromMillis(10))
		t.AddRow(
			ir.OSName,
			fmt.Sprintf("%.1f", ir.Freq.Millis(ir.Response.Quantile(0.5))),
			fmt.Sprintf("%.1f", ir.Freq.Millis(ir.Response.Quantile(0.99))),
			fmt.Sprintf("%.1f", ir.Freq.Millis(ir.Response.Max())),
			fmt.Sprintf("%.2f%%", ir.WithinMS(150)*100),
			fmt.Sprintf("%.2g", p10),
		)
	}
	if err := t.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "interactive:", err)
		os.Exit(1)
	}
	fmt.Println("\nBoth systems clear the 50-150 ms interactive adequacy band [20]; only the")
	fmt.Println("latency-distribution methodology exposes the multimedia-deadline gap (§1.2).")
}
