package campaign

// Failure-path tests: the fault-tolerance contract of the runner. A
// panicking cell must not deadlock collection, a cancelled campaign must
// drain and checkpoint what it has, a resumed campaign must be
// indistinguishable from an uninterrupted one, and collecting the same
// key twice must not corrupt the pooled results.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wdmlat/internal/campaign/store"
	"wdmlat/internal/core"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
	"wdmlat/internal/workload"
)

// fakeResult is a cheap, deterministic stand-in for core.Run: a few
// histogram samples derived from the cell's seed, enough for Merge and
// the checkpoint codec to chew on without simulating anything.
func fakeResult(cfg core.RunConfig) *core.Result {
	s := sim.Cycles(cfg.Seed%1000) + 1
	h := func(vals ...sim.Cycles) *stats.Histogram {
		hh := stats.NewHistogram(sim.DefaultFreq)
		for _, v := range vals {
			hh.Add(v)
		}
		return hh
	}
	return &core.Result{
		Config:       cfg,
		OSName:       "fake",
		Class:        cfg.Workload,
		Observed:     1000 + s,
		Freq:         sim.DefaultFreq,
		Samples:      3,
		DpcInt:       h(s, 2*s, 3*s),
		DpcIntOracle: h(s),
		Thread:       map[int]*stats.Histogram{28: h(4 * s), 24: h(5 * s)},
		HwToThread:   map[int]*stats.Histogram{28: h(6 * s), 24: h(7 * s)},
	}
}

// TestPanickingCellCompletesCampaign: a worker panic inside a cell is
// recovered and published as that cell's failure; the rest of the campaign
// finishes, Wait returns (instead of deadlocking on the lost decrement)
// naming the failed cell, and Result on the bad key reports a *PanicError
// carrying key, value and stack.
func TestPanickingCellCompletesCampaign(t *testing.T) {
	const boomDur = 666 * time.Second
	r := New(Options{BaseSeed: 5, Jobs: 2, Execute: func(cfg core.RunConfig) *core.Result {
		if cfg.Duration == boomDur {
			panic("injected cell failure")
		}
		return fakeResult(cfg)
	}})
	r.Submit(
		Cell{Key: "good/1", Config: core.RunConfig{Duration: time.Second}},
		Cell{Key: "bad/0", Config: core.RunConfig{Duration: boomDur}},
		Cell{Key: "good/2", Config: core.RunConfig{Duration: time.Second}},
	)

	err := r.Wait()
	if err == nil || !strings.Contains(err.Error(), `"bad/0"`) {
		t.Fatalf("Wait error %v, want one naming cell \"bad/0\"", err)
	}
	for _, k := range []string{"good/1", "good/2"} {
		if res, rerr := r.Result(k); rerr != nil || res == nil {
			t.Fatalf("healthy cell %s: (%v, %v), want a result", k, res, rerr)
		}
	}
	_, rerr := r.Result("bad/0")
	var pe *PanicError
	if !errors.As(rerr, &pe) {
		t.Fatalf("Result(bad/0) error %v, want a *PanicError", rerr)
	}
	if pe.Key != "bad/0" || pe.Value != "injected cell failure" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError incomplete: key %q value %v stack %d bytes", pe.Key, pe.Value, len(pe.Stack))
	}
	fails := r.Failed()
	if len(fails) != 1 || fails[0].Key != "bad/0" {
		t.Fatalf("Failed() = %v, want exactly bad/0", fails)
	}
}

// TestCollectTwiceReturnsIdenticalResults is the Merged-aliasing
// regression test: collecting the same key twice must return two equal,
// independent pooled results, and must leave the stored replica-0 result
// unmodified — the old in-place merge double-pooled the replicas into the
// campaign's own copy on the second collection.
func TestCollectTwiceReturnsIdenticalResults(t *testing.T) {
	r := New(Options{BaseSeed: 3, Jobs: 4, Execute: fakeResult})
	const key = "cell"
	r.Submit(Replicas(key, core.RunConfig{Duration: time.Second}, 3)...)

	m1, err := r.Merged(key, 3)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.Merged(key, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("collecting the same key twice returned different pooled results")
	}
	if m1.Samples != 9 {
		t.Fatalf("pooled samples %d, want 9 (3 replicas x 3)", m1.Samples)
	}
	r0, err := r.Result(ReplicaKey(key, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r0.Samples != 3 {
		t.Fatalf("stored replica-0 mutated by pooling: %d samples, want 3", r0.Samples)
	}
}

// TestOnCellDoneAfterPublication: the callback fires only after the
// cell's outcome is visible, outside the runner lock — so a callback that
// collects its own key (a progress bar materializing results as they
// land) returns immediately instead of deadlocking on the unpublished
// cell.
func TestOnCellDoneAfterPublication(t *testing.T) {
	var r *Runner
	var mu sync.Mutex
	collected := map[string]uint64{}
	opts := Options{BaseSeed: 2, Jobs: 1, Execute: fakeResult,
		OnCellDone: func(key string) {
			res, err := r.Result(key) // deadlocked before publication-first ordering
			if err != nil {
				t.Errorf("callback Result(%s): %v", key, err)
				return
			}
			mu.Lock()
			collected[key] = res.Samples
			mu.Unlock()
		}}
	r = New(opts)
	r.Submit(Replicas("cb", core.RunConfig{Duration: time.Second}, 3)...)
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(collected) != 3 {
		t.Fatalf("callback collected %d cells, want 3", len(collected))
	}
	for k, n := range collected {
		if n != 3 {
			t.Fatalf("callback for %s saw %d samples, want 3", k, n)
		}
	}
}

// TestCancelledCampaignDrainsAndCheckpoints: cancelling mid-campaign stops
// dispatch (queued cells publish as ErrCancelled), drains the running
// cell, and flushes its checkpoint — so nothing already paid for is lost.
func TestCancelledCampaignDrainsAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	r := New(Options{BaseSeed: 9, Jobs: 1, Context: ctx, Store: st,
		Execute: func(cfg core.RunConfig) *core.Result {
			once.Do(func() {
				close(started)
				<-release
			})
			return fakeResult(cfg)
		}})
	r.Submit(
		Cell{Key: "a/0", Config: core.RunConfig{Duration: 1 * time.Second}},
		Cell{Key: "b/0", Config: core.RunConfig{Duration: 2 * time.Second}},
		Cell{Key: "c/0", Config: core.RunConfig{Duration: 3 * time.Second}},
	)
	<-started // a/0 is executing; b/0 and c/0 are queued
	cancel()
	close(release)

	err = r.Wait()
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("Wait error %v, want ErrCancelled in the chain", err)
	}
	if res, rerr := r.Result("a/0"); rerr != nil || res == nil {
		t.Fatalf("running cell did not drain: (%v, %v)", res, rerr)
	}
	for _, k := range []string{"b/0", "c/0"} {
		if _, rerr := r.Result(k); !errors.Is(rerr, ErrCancelled) {
			t.Fatalf("queued cell %s: error %v, want ErrCancelled", k, rerr)
		}
	}

	cfg := core.RunConfig{Duration: 1 * time.Second}
	cfg.Seed = sim.DeriveSeed(9, "a/0")
	if ck, lerr := st.Load(store.Fingerprint(9, "a/0", cfg)); lerr != nil || ck == nil {
		t.Fatalf("drained cell not checkpointed: (%v, %v)", ck, lerr)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("store holds %d checkpoints, want exactly the drained cell", len(entries))
	}
}

// TestCheckpointRestoreSkipsExecution: re-submitting a finished campaign
// against its store replays every cell from disk — zero executions — and
// the replayed pooled results are identical to the originals.
func TestCheckpointRestoreSkipsExecution(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	execute := func(cfg core.RunConfig) *core.Result {
		calls.Add(1)
		return fakeResult(cfg)
	}
	cells := Replicas("cell", core.RunConfig{Duration: time.Second}, 4)

	r1 := New(Options{BaseSeed: 4, Jobs: 2, Store: st, Execute: execute})
	r1.Submit(cells...)
	if err := r1.Wait(); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Fatalf("first run executed %d cells, want 4", calls.Load())
	}

	var restored atomic.Int64
	r2 := New(Options{BaseSeed: 4, Jobs: 2, Store: st, Execute: execute,
		OnCellDone: func(string) { restored.Add(1) }})
	r2.Submit(cells...)
	if err := r2.Wait(); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Fatalf("resume re-executed checkpointed cells (%d total executions)", calls.Load())
	}
	if restored.Load() != 4 {
		t.Fatalf("OnCellDone fired %d times for restored cells, want 4", restored.Load())
	}

	m1, err := r1.Merged("cell", 4)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r2.Merged("cell", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("replayed pooled result differs from the originally computed one")
	}
}

// TestResumeMatchesUninterrupted is the resume determinism guard: a
// campaign killed mid-matrix and resumed from its checkpoint store must
// produce pooled results byte-identical (under the checkpoint encoding)
// to an uninterrupted campaign — at one worker and at eight.
func TestResumeMatchesUninterrupted(t *testing.T) {
	if testing.Short() {
		t.Skip("resume determinism runs real simulation cells; skipped in -short")
	}
	oses := []ospersona.OS{ospersona.NT4, ospersona.Win98}
	classes := []workload.Class{workload.Business, workload.Games}
	base := core.RunConfig{Duration: time.Second}
	const runs = 3 // 2 OSes x 2 classes x 3 replicas = 12 cells

	for _, jobs := range []int{1, 8} {
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			ref := New(Options{BaseSeed: 13, Jobs: jobs})
			refBy, err := ref.RunMatrix(oses, classes, "resume", base, runs)
			if err != nil {
				t.Fatal(err)
			}

			st, err := store.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var done atomic.Int32
			interrupted := New(Options{BaseSeed: 13, Jobs: jobs, Context: ctx, Store: st,
				OnCellDone: func(string) {
					if done.Add(1) == 2 {
						cancel() // simulate SIGINT two cells into the matrix
					}
				}})
			interrupted.Submit(MatrixCells(oses, classes, "resume", base, runs)...)
			if err := interrupted.Wait(); !errors.Is(err, ErrCancelled) && jobs == 1 {
				t.Fatalf("interrupted campaign Wait: %v, want ErrCancelled", err)
			}
			if jobs == 1 && len(interrupted.Failed()) == 0 {
				t.Fatal("interruption dropped no cells; the resume path is not exercised")
			}

			resumed := New(Options{BaseSeed: 13, Jobs: jobs, Store: st})
			resBy, err := resumed.RunMatrix(oses, classes, "resume", base, runs)
			if err != nil {
				t.Fatal(err)
			}

			for _, o := range oses {
				for _, c := range classes {
					var want, got bytes.Buffer
					if err := core.EncodeResult(&want, refBy[o][c]); err != nil {
						t.Fatal(err)
					}
					if err := core.EncodeResult(&got, resBy[o][c]); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(want.Bytes(), got.Bytes()) {
						t.Errorf("%s: resumed pooled result differs from uninterrupted run",
							MatrixKey(o, c, "resume"))
					}
				}
			}
		})
	}
}
