package kernel

import "wdmlat/internal/sim"

// WorkItem is a unit of passive-level work executed by the kernel worker
// thread (ExQueueWorkItem). The paper singles the work-item queue out: it
// is "serviced by a real-time default priority thread, which accounts for
// the large difference between high and default priority threads under
// NT 4.0" (§4.2). Workloads enqueue work items to generate exactly that
// interference.
type WorkItem struct {
	Name   string
	Cycles sim.Cycles
	// Fn, if non-nil, runs in the worker thread's context after the cost
	// has been executed.
	Fn func(tc *ThreadContext)
}

// QueueWorkItem appends w to the work queue and wakes the worker. Safe to
// call from simulation-harness context and from ISR/DPC contexts.
func (k *Kernel) QueueWorkItem(w *WorkItem) {
	if w == nil || w.Cycles < 0 {
		panic("kernel: invalid work item")
	}
	k.workQ = append(k.workQ, w)
	k.workSem.release(1)
	k.maybeRun()
}

// WorkQueueLen returns the number of queued-but-unstarted work items.
func (k *Kernel) WorkQueueLen() int { return len(k.workQ) }

// Worker returns the worker thread (available after Boot).
func (k *Kernel) Worker() *Thread { return k.worker }

// workerBody is the ExWorkerThread main loop.
func (k *Kernel) workerBody(tc *ThreadContext) {
	for {
		tc.Wait(k.workSem)
		var w *WorkItem
		tc.call(func() {
			if len(k.workQ) > 0 {
				w = k.workQ[0]
				k.workQ = k.workQ[1:]
			}
		})
		if w == nil {
			continue
		}
		if w.Cycles > 0 {
			tc.Exec(w.Cycles)
		}
		if w.Fn != nil {
			w.Fn(tc)
		}
	}
}
