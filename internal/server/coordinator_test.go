package server

// Fault-injection suite for the fleet coordinator, run under -race in CI.
// Every test drives the Coordinator directly — registration, leases,
// completions and the reclaim clock are all under test control — and
// checks the two properties the fleet design hangs on: a cell's bytes
// reach a campaign exactly once no matter how workers misbehave, and
// every failure mode (silence, corruption, duplication, shutdown) resolves
// without stalling a waiter forever.
//
// Results here are fabricated, not simulated: coordinator validation only
// inspects the payload's encoding and embedded config, so a pure function
// of the lease stands in for core.Run and keeps the suite instant. The
// real simulator flows through the HTTP-level tests in shard_test.go.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"wdmlat/internal/api"
	"wdmlat/internal/core"
	"wdmlat/internal/metrics"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/workload"
)

// fakeClock is an injectable coordinator clock; Advance moves lease-expiry
// time without waiting on the wall clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// fakeCellResult fabricates the result a perfectly deterministic worker
// would deliver for a lease: a pure function of the cell identity, with
// the lease's normalized config embedded — exactly as core.Run embeds the
// defaults-filled config it executed — so fingerprint re-derivation passes.
func fakeCellResult(l api.Lease) *core.Result {
	return &core.Result{
		Config:  l.Config.Normalized(),
		OSName:  "fleetfake",
		Samples: uint64(len(l.Key))*1000 + uint64(l.Config.Seed%997),
	}
}

// fakePayload is the canonical completion body for a lease.
func fakePayload(t *testing.T, l api.Lease) json.RawMessage {
	t.Helper()
	payload, err := api.EncodeCellResult(fakeCellResult(l))
	if err != nil {
		t.Fatalf("encoding fake result: %v", err)
	}
	return payload
}

type cellOutcome struct {
	res *core.Result
	err error
}

// startCell launches ExecuteRemote in the background and returns the
// channel its outcome lands on.
func startCell(ctx context.Context, co *Coordinator, baseSeed uint64, key string, cfg core.RunConfig) <-chan cellOutcome {
	ch := make(chan cellOutcome, 1)
	go func() {
		res, err := co.ExecuteRemote(ctx, baseSeed, key, cfg)
		ch <- cellOutcome{res, err}
	}()
	return ch
}

// waitFor polls cond until it holds or the test deadline budget runs out.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func cellConfig(d time.Duration) core.RunConfig {
	return core.RunConfig{OS: ospersona.NT4, Workload: workload.Business, Duration: d, Seed: 41}
}

func counter(reg *metrics.Registry, name string) uint64 {
	return reg.Counter(name).Value()
}

// TestCoordinatorReclaimsSilentWorker is the headline fault: a worker
// registers, leases a cell, and never heartbeats again. The reclaim pass
// must expire it, re-dispatch the cell, and let a healthy worker finish it
// — with the loss visible in the fleet counters.
func TestCoordinatorReclaimsSilentWorker(t *testing.T) {
	clock := newFakeClock()
	reg := metrics.NewRegistry()
	co := NewCoordinator(CoordinatorOptions{LeaseTTL: 10 * time.Second, Metrics: reg, Now: clock.Now})
	defer co.Close()

	out := startCell(context.Background(), co, 7, "nt4/business/silent/0", cellConfig(time.Millisecond))
	waitFor(t, "cell enqueued", func() bool { return co.Status().Pending == 1 })

	// The doomed worker takes the lease and goes dark.
	dead, _ := co.Register("dead")
	resp, ok := co.Lease(dead.WorkerID, 4)
	if !ok || len(resp.Leases) != 1 {
		t.Fatalf("lease to dead worker: ok=%v leases=%d", ok, len(resp.Leases))
	}

	// A healthy worker keeps beating across the silence window.
	live, _ := co.Register("live")
	for i := 0; i < 3; i++ {
		clock.Advance(4 * time.Second)
		if !co.Heartbeat(live.WorkerID) {
			t.Fatalf("live worker lost registration at step %d", i)
		}
		co.Reclaim()
	}

	if co.Heartbeat(dead.WorkerID) {
		t.Fatal("silent worker still registered after TTL elapsed")
	}
	if got := co.Status(); got.Pending != 1 || got.Leased != 0 {
		t.Fatalf("after reclaim: pending=%d leased=%d, want 1/0", got.Pending, got.Leased)
	}
	for name, want := range map[string]uint64{
		MetricFleetWorkersExpired:    1,
		MetricFleetLeasesReclaimed:   1,
		MetricFleetCellsRedispatched: 1,
	} {
		if got := counter(reg, name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	// The re-dispatched lease must be the same cell, and its completion
	// must release the original waiter.
	resp, ok = co.Lease(live.WorkerID, 1)
	if !ok || len(resp.Leases) != 1 {
		t.Fatalf("re-dispatch lease: ok=%v leases=%d", ok, len(resp.Leases))
	}
	l := resp.Leases[0]
	if l.Key != "nt4/business/silent/0" {
		t.Fatalf("re-dispatched lease is %q", l.Key)
	}
	disp, err := co.Complete(live.WorkerID, api.CompleteRequest{Fingerprint: l.Fingerprint, Result: fakePayload(t, l)})
	if err != nil || disp != CompleteMerged {
		t.Fatalf("complete after re-dispatch: %v (disposition %d)", err, disp)
	}
	res := <-out
	if res.err != nil {
		t.Fatalf("ExecuteRemote: %v", res.err)
	}
	want := fakeCellResult(l)
	if res.res.Samples != want.Samples {
		t.Fatalf("merged samples %d, want %d", res.res.Samples, want.Samples)
	}
}

// TestCoordinatorRejectsCorruptPayloads feeds the completion path every
// corruption the protocol can express: undecodable bytes, a non-canonical
// encoding of a correct result, and a canonical result for the wrong cell
// (fingerprint mismatch). Each must be rejected and re-dispatched — none
// may ever reach the waiting campaign.
func TestCoordinatorRejectsCorruptPayloads(t *testing.T) {
	reg := metrics.NewRegistry()
	co := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Minute, Metrics: reg})
	defer co.Close()

	out := startCell(context.Background(), co, 9, "nt4/business/corrupt/0", cellConfig(2*time.Millisecond))
	waitFor(t, "cell enqueued", func() bool { return co.Status().Pending == 1 })
	w, _ := co.Register("saboteur")

	takeLease := func() api.Lease {
		t.Helper()
		resp, ok := co.Lease(w.WorkerID, 1)
		if !ok || len(resp.Leases) != 1 {
			t.Fatalf("lease: ok=%v leases=%d", ok, len(resp.Leases))
		}
		return resp.Leases[0]
	}

	l := takeLease()
	good := fakePayload(t, l)

	// Non-canonical: decodes to the right result, but the bytes are not
	// the codec's own encoding (indentation added).
	var indented bytes.Buffer
	if err := json.Indent(&indented, good, "", "  "); err != nil {
		t.Fatal(err)
	}
	// Wrong cell: a perfectly canonical result whose embedded config
	// re-derives a different fingerprint.
	wrong := l
	wrong.Config.Duration += time.Millisecond
	wrongPayload := fakePayload(t, wrong)

	corruptions := []struct {
		name    string
		payload json.RawMessage
	}{
		{"undecodable", json.RawMessage(`{"Version":`)},
		{"non-canonical", indented.Bytes()},
		{"wrong-cell", wrongPayload},
	}
	for i, c := range corruptions {
		disp, err := co.Complete(w.WorkerID, api.CompleteRequest{Fingerprint: l.Fingerprint, Result: c.payload})
		if disp != CompleteRejected || err == nil {
			t.Fatalf("%s: disposition %d err %v, want rejected", c.name, disp, err)
		}
		select {
		case res := <-out:
			t.Fatalf("%s: corrupt payload reached the campaign: %+v", c.name, res)
		default:
		}
		if got := co.Status(); got.Pending != 1 || got.Leased != 0 {
			t.Fatalf("%s: pending=%d leased=%d, want re-dispatched 1/0", c.name, got.Pending, got.Leased)
		}
		if got := counter(reg, MetricFleetCellsRejected); got != uint64(i+1) {
			t.Fatalf("%s: rejected counter %d, want %d", c.name, got, i+1)
		}
		l = takeLease() // the re-dispatched copy, for the next corruption (or the clean finish)
	}

	disp, err := co.Complete(w.WorkerID, api.CompleteRequest{Fingerprint: l.Fingerprint, Result: fakePayload(t, l)})
	if err != nil || disp != CompleteMerged {
		t.Fatalf("clean completion after corruption: %v (disposition %d)", err, disp)
	}
	res := <-out
	if res.err != nil {
		t.Fatalf("ExecuteRemote: %v", res.err)
	}
	if got := counter(reg, MetricFleetCellsCompleted); got != 1 {
		t.Errorf("completed counter %d, want exactly 1 merge", got)
	}
	if got := counter(reg, MetricFleetCellsRedispatched); got != 3 {
		t.Errorf("redispatched counter %d, want 3", got)
	}
}

// TestCoordinatorDuplicateCompletionIsNoOp re-delivers an already-merged
// cell — the retry/straggler race — and checks it neither double-merges
// nor errors, and is counted.
func TestCoordinatorDuplicateCompletionIsNoOp(t *testing.T) {
	reg := metrics.NewRegistry()
	co := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Minute, Metrics: reg})
	defer co.Close()

	out := startCell(context.Background(), co, 3, "nt4/business/dup/0", cellConfig(time.Millisecond))
	waitFor(t, "cell enqueued", func() bool { return co.Status().Pending == 1 })
	w, _ := co.Register("")
	resp, _ := co.Lease(w.WorkerID, 1)
	l := resp.Leases[0]
	payload := fakePayload(t, l)

	if disp, err := co.Complete(w.WorkerID, api.CompleteRequest{Fingerprint: l.Fingerprint, Result: payload}); err != nil || disp != CompleteMerged {
		t.Fatalf("first completion: %v (disposition %d)", err, disp)
	}
	if res := <-out; res.err != nil {
		t.Fatalf("ExecuteRemote: %v", res.err)
	}
	for i := 0; i < 2; i++ {
		disp, err := co.Complete(w.WorkerID, api.CompleteRequest{Fingerprint: l.Fingerprint, Result: payload})
		if err != nil || disp != CompleteDuplicate {
			t.Fatalf("duplicate %d: %v (disposition %d, want duplicate no-op)", i, err, disp)
		}
	}
	if got := counter(reg, MetricFleetDuplicateDone); got != 2 {
		t.Errorf("%s = %d, want 2", MetricFleetDuplicateDone, got)
	}
	if got := counter(reg, MetricFleetCellsCompleted); got != 1 {
		t.Errorf("%s = %d, want 1", MetricFleetCellsCompleted, got)
	}
}

// TestCoordinatorStragglerFromExpiredWorkerMerges covers work
// conservation: a worker declared dead finishes its cell anyway. The
// straggler's (valid) result merges, and the re-dispatched copy becomes
// the duplicate no-op.
func TestCoordinatorStragglerFromExpiredWorkerMerges(t *testing.T) {
	clock := newFakeClock()
	reg := metrics.NewRegistry()
	co := NewCoordinator(CoordinatorOptions{LeaseTTL: 5 * time.Second, Metrics: reg, Now: clock.Now})
	defer co.Close()

	out := startCell(context.Background(), co, 13, "nt4/business/straggler/0", cellConfig(time.Millisecond))
	waitFor(t, "cell enqueued", func() bool { return co.Status().Pending == 1 })

	slow, _ := co.Register("slow")
	resp, _ := co.Lease(slow.WorkerID, 1)
	l := resp.Leases[0]

	clock.Advance(6 * time.Second)
	co.Reclaim()
	second, _ := co.Register("second")
	resp2, _ := co.Lease(second.WorkerID, 1)
	if len(resp2.Leases) != 1 || resp2.Leases[0].Fingerprint != l.Fingerprint {
		t.Fatalf("re-dispatch after expiry: %+v", resp2)
	}

	// The expired worker lands its result first.
	disp, err := co.Complete(slow.WorkerID, api.CompleteRequest{Fingerprint: l.Fingerprint, Result: fakePayload(t, l)})
	if err != nil || disp != CompleteMerged {
		t.Fatalf("straggler completion: %v (disposition %d)", err, disp)
	}
	if res := <-out; res.err != nil {
		t.Fatalf("ExecuteRemote: %v", res.err)
	}
	// The re-dispatched copy arrives later: a no-op, not an error.
	disp, err = co.Complete(second.WorkerID, api.CompleteRequest{Fingerprint: l.Fingerprint, Result: fakePayload(t, l)})
	if err != nil || disp != CompleteDuplicate {
		t.Fatalf("re-dispatched copy: %v (disposition %d, want duplicate)", err, disp)
	}
}

// TestCoordinatorStragglerCompletesBeforeRedispatch covers the narrower
// straggler race: the declared-dead worker delivers its completion while
// the reclaimed cell is still *queued*, before anyone re-leases it. The
// finished cell must leave the queue — a later Lease granting a done cell
// would clobber the published outcome and leak the leased-cells gauge —
// and both the valid-result and deterministic-error deliveries take the
// same finish path.
func TestCoordinatorStragglerCompletesBeforeRedispatch(t *testing.T) {
	deliveries := []struct {
		name string
		req  func(t *testing.T, l api.Lease) api.CompleteRequest
	}{
		{"result", func(t *testing.T, l api.Lease) api.CompleteRequest {
			return api.CompleteRequest{Fingerprint: l.Fingerprint, Result: fakePayload(t, l)}
		}},
		{"error", func(t *testing.T, l api.Lease) api.CompleteRequest {
			return api.CompleteRequest{Fingerprint: l.Fingerprint, Error: "panic: boom"}
		}},
	}
	for _, d := range deliveries {
		t.Run(d.name, func(t *testing.T) {
			clock := newFakeClock()
			reg := metrics.NewRegistry()
			co := NewCoordinator(CoordinatorOptions{LeaseTTL: 5 * time.Second, Metrics: reg, Now: clock.Now})
			defer co.Close()

			out := startCell(context.Background(), co, 17, "nt4/business/early-straggler/0", cellConfig(time.Millisecond))
			waitFor(t, "cell enqueued", func() bool { return co.Status().Pending == 1 })
			slow, _ := co.Register("slow")
			resp, _ := co.Lease(slow.WorkerID, 1)
			l := resp.Leases[0]

			clock.Advance(6 * time.Second)
			co.Reclaim() // cell back in the queue, pending

			disp, err := co.Complete(slow.WorkerID, d.req(t, l))
			if err != nil || disp != CompleteMerged {
				t.Fatalf("straggler completion: %v (disposition %d)", err, disp)
			}
			res := <-out
			if d.name == "result" && res.err != nil {
				t.Fatalf("ExecuteRemote: %v", res.err)
			}
			if d.name == "error" && (res.err == nil || !strings.Contains(res.err.Error(), "panic: boom")) {
				t.Fatalf("ExecuteRemote error = %v, want the worker's failure", res.err)
			}
			if got := co.Status(); got.Pending != 0 || got.Leased != 0 {
				t.Fatalf("after merge: pending=%d leased=%d, want 0/0", got.Pending, got.Leased)
			}

			// No ghost grant: a fresh worker asking for work gets nothing,
			// and the queue/lease gauges are back to zero.
			late, _ := co.Register("late")
			if resp, ok := co.Lease(late.WorkerID, 4); !ok || len(resp.Leases) != 0 {
				t.Fatalf("lease after merged straggler: ok=%v grants=%d, want empty", ok, len(resp.Leases))
			}
			if got := reg.Gauge(MetricFleetQueueDepth).Value(); got != 0 {
				t.Errorf("%s = %d, want 0", MetricFleetQueueDepth, got)
			}
			if got := reg.Gauge(MetricFleetCellsLeased).Value(); got != 0 {
				t.Errorf("%s = %d, want 0", MetricFleetCellsLeased, got)
			}
		})
	}
}

// TestCoordinatorCorruptStragglerDoesNotDoubleQueue: a declared-dead
// worker delivers a *corrupt* payload for a cell Reclaim already requeued.
// The rejection must not append the cell a second time — a double-queued
// cell would be leased to two workers at once and drift the gauges.
func TestCoordinatorCorruptStragglerDoesNotDoubleQueue(t *testing.T) {
	clock := newFakeClock()
	reg := metrics.NewRegistry()
	co := NewCoordinator(CoordinatorOptions{LeaseTTL: 5 * time.Second, Metrics: reg, Now: clock.Now})
	defer co.Close()

	out := startCell(context.Background(), co, 19, "nt4/business/corrupt-straggler/0", cellConfig(time.Millisecond))
	waitFor(t, "cell enqueued", func() bool { return co.Status().Pending == 1 })
	slow, _ := co.Register("slow")
	resp, _ := co.Lease(slow.WorkerID, 1)
	l := resp.Leases[0]

	clock.Advance(6 * time.Second)
	co.Reclaim() // cell back in the queue, pending

	disp, err := co.Complete(slow.WorkerID, api.CompleteRequest{Fingerprint: l.Fingerprint, Result: json.RawMessage(`{"Version":`)})
	if disp != CompleteRejected || err == nil {
		t.Fatalf("corrupt straggler: disposition %d err %v, want rejected", disp, err)
	}
	if got := co.Status(); got.Pending != 1 {
		t.Fatalf("pending=%d after rejected straggler, want exactly 1 queued copy", got.Pending)
	}
	if got := reg.Gauge(MetricFleetQueueDepth).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricFleetQueueDepth, got)
	}

	// Exactly one copy of the cell is grantable.
	first, _ := co.Register("first")
	grant, _ := co.Lease(first.WorkerID, 4)
	if len(grant.Leases) != 1 {
		t.Fatalf("re-dispatch grant: %d leases, want 1", len(grant.Leases))
	}
	second, _ := co.Register("second")
	if resp, _ := co.Lease(second.WorkerID, 4); len(resp.Leases) != 0 {
		t.Fatalf("cell leased twice: second worker got %d leases", len(resp.Leases))
	}

	disp, err = co.Complete(first.WorkerID, api.CompleteRequest{Fingerprint: l.Fingerprint, Result: fakePayload(t, grant.Leases[0])})
	if err != nil || disp != CompleteMerged {
		t.Fatalf("clean completion: %v (disposition %d)", err, disp)
	}
	if res := <-out; res.err != nil {
		t.Fatalf("ExecuteRemote: %v", res.err)
	}
	if got := counter(reg, MetricFleetCellsCompleted); got != 1 {
		t.Errorf("completed counter %d, want exactly 1 merge", got)
	}
}

// TestCoordinatorWorkerErrorFailsCellDeterministically: a worker-reported
// execution error fails the cell for its waiters instead of re-dispatching
// — results are pure functions of the lease, so a retry would fail the
// same way on every worker.
func TestCoordinatorWorkerErrorFailsCellDeterministically(t *testing.T) {
	reg := metrics.NewRegistry()
	co := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Minute, Metrics: reg})
	defer co.Close()

	out := startCell(context.Background(), co, 5, "nt4/business/panic/0", cellConfig(time.Millisecond))
	waitFor(t, "cell enqueued", func() bool { return co.Status().Pending == 1 })
	w, _ := co.Register("")
	resp, _ := co.Lease(w.WorkerID, 1)
	l := resp.Leases[0]

	disp, err := co.Complete(w.WorkerID, api.CompleteRequest{Fingerprint: l.Fingerprint, Error: "panic: boom"})
	if err != nil || disp != CompleteMerged {
		t.Fatalf("error completion: %v (disposition %d)", err, disp)
	}
	res := <-out
	if res.err == nil || !strings.Contains(res.err.Error(), "panic: boom") {
		t.Fatalf("ExecuteRemote error = %v, want the worker's failure", res.err)
	}
	if got := co.Status(); got.Pending != 0 || got.Leased != 0 {
		t.Fatalf("failed cell was re-dispatched: pending=%d leased=%d", got.Pending, got.Leased)
	}
	if got := counter(reg, MetricFleetCellsFailed); got != 1 {
		t.Errorf("%s = %d, want 1", MetricFleetCellsFailed, got)
	}
	if got := counter(reg, MetricFleetCellsRedispatched); got != 0 {
		t.Errorf("%s = %d, want 0", MetricFleetCellsRedispatched, got)
	}
}

// TestCoordinatorDrainWithLeasesOutstanding shuts the coordinator down
// while one cell is leased out and another is still queued. Every waiter
// must fail promptly with ErrDraining, workers must be told to exit, and
// post-drain traffic must resolve (not hang, not merge).
func TestCoordinatorDrainWithLeasesOutstanding(t *testing.T) {
	co := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Minute})

	leased := startCell(context.Background(), co, 21, "nt4/business/drain/0", cellConfig(time.Millisecond))
	queued := startCell(context.Background(), co, 21, "nt4/business/drain/1", cellConfig(2*time.Millisecond))
	waitFor(t, "cells enqueued", func() bool { return co.Status().Pending == 2 })
	w, _ := co.Register("holder")
	resp, _ := co.Lease(w.WorkerID, 1)
	if len(resp.Leases) != 1 {
		t.Fatalf("lease grant: %d", len(resp.Leases))
	}
	l := resp.Leases[0]

	co.Close()

	for name, ch := range map[string]<-chan cellOutcome{"leased": leased, "queued": queued} {
		select {
		case res := <-ch:
			if !errors.Is(res.err, ErrDraining) {
				t.Fatalf("%s cell: err = %v, want ErrDraining", name, res.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s cell: waiter still blocked after Close", name)
		}
	}
	if resp, ok := co.Lease(w.WorkerID, 1); !ok || !resp.Draining || len(resp.Leases) != 0 {
		t.Fatalf("post-drain lease: ok=%v %+v, want empty draining grant", ok, resp)
	}
	if disp, _ := co.Complete(w.WorkerID, api.CompleteRequest{Fingerprint: l.Fingerprint, Result: fakePayload(t, l)}); disp != CompleteUnknown {
		t.Fatalf("post-drain completion disposition %d, want unknown", disp)
	}
	if _, err := co.ExecuteRemote(context.Background(), 21, "nt4/business/drain/2", cellConfig(time.Millisecond)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain ExecuteRemote err = %v, want ErrDraining", err)
	}
	co.Close() // idempotent
}

// TestCoordinatorCancelledWaiterRetractsCell: when the last campaign
// waiting on a cell gives up, the cell leaves the queue (pending) or is
// orphaned (leased) instead of running for nobody.
func TestCoordinatorCancelledWaiterRetractsCell(t *testing.T) {
	co := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Minute})
	defer co.Close()

	ctx, cancel := context.WithCancel(context.Background())
	out := startCell(ctx, co, 31, "nt4/business/retract/0", cellConfig(time.Millisecond))
	waitFor(t, "cell enqueued", func() bool { return co.Status().Pending == 1 })
	cancel()
	res := <-out
	if !errors.Is(res.err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", res.err)
	}
	if got := co.Status(); got.Pending != 0 {
		t.Fatalf("retracted cell still queued: pending=%d", got.Pending)
	}

	// Leased variant: the orphaned completion resolves as unknown.
	ctx2, cancel2 := context.WithCancel(context.Background())
	out2 := startCell(ctx2, co, 31, "nt4/business/retract/1", cellConfig(time.Millisecond))
	waitFor(t, "cell enqueued", func() bool { return co.Status().Pending == 1 })
	w, _ := co.Register("")
	resp, _ := co.Lease(w.WorkerID, 1)
	l := resp.Leases[0]
	cancel2()
	if res := <-out2; !errors.Is(res.err, context.Canceled) {
		t.Fatalf("leased retract err = %v", res.err)
	}
	if disp, _ := co.Complete(w.WorkerID, api.CompleteRequest{Fingerprint: l.Fingerprint, Result: fakePayload(t, l)}); disp != CompleteUnknown {
		t.Fatalf("orphaned completion disposition %d, want unknown", disp)
	}
}

// TestCoordinatorDeduplicatesIdenticalCells: two campaigns wanting the
// same fingerprint share one lease, and a single completion releases both
// waiters with the same result.
func TestCoordinatorDeduplicatesIdenticalCells(t *testing.T) {
	reg := metrics.NewRegistry()
	co := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Minute, Metrics: reg})
	defer co.Close()

	cfg := cellConfig(3 * time.Millisecond)
	a := startCell(context.Background(), co, 55, "nt4/business/shared/0", cfg)
	b := startCell(context.Background(), co, 55, "nt4/business/shared/0", cfg)
	waitFor(t, "deduped enqueue", func() bool { return co.Status().Pending == 1 })

	w, _ := co.Register("")
	resp, _ := co.Lease(w.WorkerID, 8)
	if len(resp.Leases) != 1 {
		t.Fatalf("identical cells produced %d leases, want 1", len(resp.Leases))
	}
	l := resp.Leases[0]
	if _, err := co.Complete(w.WorkerID, api.CompleteRequest{Fingerprint: l.Fingerprint, Result: fakePayload(t, l)}); err != nil {
		t.Fatal(err)
	}
	ra, rb := <-a, <-b
	if ra.err != nil || rb.err != nil {
		t.Fatalf("waiters: %v / %v", ra.err, rb.err)
	}
	if ra.res.Samples != rb.res.Samples {
		t.Fatalf("waiters saw different results: %d vs %d", ra.res.Samples, rb.res.Samples)
	}
	if got := counter(reg, MetricFleetLeasesGranted); got != 1 {
		t.Errorf("%s = %d, want 1", MetricFleetLeasesGranted, got)
	}
}

// TestCoordinatorRefusesRegistrationWhileDraining: after Close the
// janitor is gone, so an admitted worker could never be expired — a
// late registration must be turned away (the server answers it 503),
// not silently leaked into the worker table.
func TestCoordinatorRefusesRegistrationWhileDraining(t *testing.T) {
	reg := metrics.NewRegistry()
	co := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Second, Metrics: reg})
	co.Close()

	if resp, ok := co.Register("latecomer"); ok {
		t.Fatalf("drained coordinator admitted worker %q", resp.WorkerID)
	}
	if got := reg.Gauge(MetricFleetWorkersActive).Value(); got != 0 {
		t.Fatalf("%s = %d after refused registration, want 0", MetricFleetWorkersActive, got)
	}
	if workers := co.Status().Workers; len(workers) != 0 {
		t.Fatalf("drained coordinator lists workers: %+v", workers)
	}
}

// TestCoordinatorRejectsPaddedPayload: canonical-form validation is exact.
// A payload that differs from the canonical encoding only by surrounding
// whitespace would decode to the same result, but merging it would break
// byte-identity of the campaign stream — it must be rejected, and the
// untouched canonical payload must still merge afterwards.
func TestCoordinatorRejectsPaddedPayload(t *testing.T) {
	reg := metrics.NewRegistry()
	co := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Minute, Metrics: reg})
	defer co.Close()

	out := startCell(context.Background(), co, 7, "nt4/business/padded/0", cellConfig(time.Millisecond))
	waitFor(t, "cell enqueued", func() bool { return co.Status().Pending == 1 })
	w, _ := co.Register("strict")
	resp, _ := co.Lease(w.WorkerID, 1)
	if len(resp.Leases) != 1 {
		t.Fatalf("leases = %d, want 1", len(resp.Leases))
	}
	l := resp.Leases[0]
	good := fakePayload(t, l)

	pad := func(prefix, suffix string) json.RawMessage {
		p := append(json.RawMessage(prefix), good...)
		return append(p, suffix...)
	}
	for name, payload := range map[string]json.RawMessage{
		"trailing newline": pad("", "\n"),
		"leading newline":  pad("\n", ""),
		"trailing space":   pad("", " "),
	} {
		disp, err := co.Complete(w.WorkerID, api.CompleteRequest{Fingerprint: l.Fingerprint, Result: payload})
		if disp != CompleteRejected {
			t.Fatalf("%s: disposition %d (%v), want rejected", name, disp, err)
		}
	}
	if got := counter(reg, MetricFleetCellsRejected); got != 3 {
		t.Fatalf("%s = %d, want 3", MetricFleetCellsRejected, got)
	}

	// The exact canonical bytes still merge and release the waiter.
	resp, _ = co.Lease(w.WorkerID, 1)
	if len(resp.Leases) != 1 || resp.Leases[0].Fingerprint != l.Fingerprint {
		t.Fatalf("re-lease after rejections = %+v", resp.Leases)
	}
	if disp, err := co.Complete(w.WorkerID, api.CompleteRequest{Fingerprint: l.Fingerprint, Result: good}); disp != CompleteMerged {
		t.Fatalf("canonical completion = %v (%v), want merged", disp, err)
	}
	if o := <-out; o.err != nil {
		t.Fatalf("waiter: %v", o.err)
	}
}

// TestCoordinatorCountsCacheHitCompletions: the Cached flag on accepted
// completions — merges and duplicates alike — feeds fleet_cells_cache_hit;
// a rejected payload's flag counts for nothing.
func TestCoordinatorCountsCacheHitCompletions(t *testing.T) {
	reg := metrics.NewRegistry()
	co := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Minute, Metrics: reg})
	defer co.Close()

	out := startCell(context.Background(), co, 7, "nt4/business/cachehit/0", cellConfig(time.Millisecond))
	waitFor(t, "cell enqueued", func() bool { return co.Status().Pending == 1 })
	w, _ := co.Register("cached")
	resp, _ := co.Lease(w.WorkerID, 1)
	l := resp.Leases[0]

	// A rejected cached payload must not count.
	bad := append(append(json.RawMessage(nil), fakePayload(t, l)...), '\n')
	if disp, _ := co.Complete(w.WorkerID, api.CompleteRequest{Fingerprint: l.Fingerprint, Result: bad, Cached: true}); disp != CompleteRejected {
		t.Fatalf("padded payload disposition %d, want rejected", disp)
	}
	if got := counter(reg, MetricFleetCellsCacheHit); got != 0 {
		t.Fatalf("%s = %d after rejection, want 0", MetricFleetCellsCacheHit, got)
	}

	resp, _ = co.Lease(w.WorkerID, 1)
	l = resp.Leases[0]
	if disp, err := co.Complete(w.WorkerID, api.CompleteRequest{Fingerprint: l.Fingerprint, Result: fakePayload(t, l), Cached: true}); disp != CompleteMerged {
		t.Fatalf("cached merge = %v (%v)", disp, err)
	}
	if o := <-out; o.err != nil {
		t.Fatalf("waiter: %v", o.err)
	}
	// The straggler's retry of the same cached cell is a duplicate — and
	// still a cache hit.
	if disp, _ := co.Complete(w.WorkerID, api.CompleteRequest{Fingerprint: l.Fingerprint, Result: fakePayload(t, l), Cached: true}); disp != CompleteDuplicate {
		t.Fatal("retried completion not a duplicate")
	}
	if got := counter(reg, MetricFleetCellsCacheHit); got != 2 {
		t.Fatalf("%s = %d, want 2 (merge + duplicate)", MetricFleetCellsCacheHit, got)
	}
}
