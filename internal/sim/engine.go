package sim

import (
	"errors"
	"fmt"
)

// Engine is a discrete-event simulation driver: a virtual clock plus a
// cancellable event queue. Events scheduled for the same instant fire in
// FIFO order of scheduling, which keeps runs deterministic.
//
// The queue is a hierarchical timing wheel (wheel.go) backed by a 4-ary
// min-heap overflow area for the far future (event.go): the dense periodic
// timers that dominate the simulated machines — PIT ticks, sound DMA
// periods, modem pacing deadlines, scheduler quanta — insert, cancel and
// cascade in O(1), and all events at one instant dispatch in a single
// batched pass over their wheel slot.
//
// The engine allocates nothing in steady state: fired and cancelled Event
// records are recycled through a free list, and both queue structures
// thread through the records themselves (intrusive slot links, reused heap
// slice), so a long-running simulation settles into a fixed working set no
// matter how many events it dispatches. The price of pooling is a handle
// discipline — see Event.
//
// Engine is not safe for concurrent use; the whole simulator is
// single-threaded by design (see the kernel package for how simulated
// threads are multiplexed onto it).
type Engine struct {
	now    Time
	seq    uint64
	nfired uint64
	npend  int    // events pending across wheel + overflow
	free   *Event // dead records awaiting reuse, chained through next
	rng    *RNG

	// Timing wheel: slot lists (head.prev = tail) plus occupancy bitmaps,
	// see wheel.go. overflow is the far-future 4-ary min-heap, see event.go.
	wheel    [wheelLevels][wheelSlots]*Event
	occupied [wheelLevels][wheelWords]uint64
	lcount   [wheelLevels]int32 // events linked per level (bitmap-scan skips)
	overflow []*Event

	// Exact-minimum cache: when minOK, minWhen is the exact timestamp of the
	// earliest pending event (maxTime when the queue is empty), and the
	// dispatch path can jump the clock straight to it without a landmark
	// scan. The cache goes stale (minOK=false) when the minimum is removed
	// with other events still pending; it revalidates whenever the queue
	// drains or a schedule lands on an empty queue.
	minWhen Time
	minOK   bool

	// migrateAt caches the clock time after which the overflow minimum
	// comes within the wheel horizon (maxTime when the heap is empty), so
	// the advance fast path skips advanceSlow without touching the heap —
	// a machine with even one long-lived far-future event would otherwise
	// pay a heap probe on every single clock advance.
	migrateAt Time
}

// ErrHalted is returned by Run when Halt was called from inside an event.
var ErrHalted = errors.New("sim: engine halted")

// NewEngine returns an engine at time zero with a deterministic RNG seeded
// from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed), minWhen: maxTime, minOK: true, migrateAt: maxTime}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's random number generator. All stochastic behaviour
// in a simulation should derive from this generator so that runs are
// reproducible from the engine seed.
func (e *Engine) RNG() *RNG { return e.rng }

// Fired returns the total number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.nfired }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return e.npend }

// alloc returns a recycled Event record, or a fresh one if the pool is dry.
// The pool is an intrusive LIFO chained through the records' own next
// links, so it needs no backing slice and recycles the most recently
// released (cache-warm) record first.
func (e *Engine) alloc() *Event {
	if ev := e.free; ev != nil {
		e.free = ev.next
		ev.next = nil
		return ev
	}
	return &Event{index: -1, level: levelNone}
}

// release returns a dead record to the pool. The callback is dropped so the
// pool does not pin closures (and whatever they capture) alive.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.state = stateDead
	ev.next = e.free
	e.free = ev
}

// At schedules fn to run at absolute time t. Scheduling in the past (before
// Now) panics: it would silently reorder causality. The label is retained
// for debugging and tracing; callers on hot paths should pass a precomputed
// constant, not build one per call.
func (e *Engine) At(t Time, label string, fn func(Time)) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %d before now %d", label, t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := e.alloc()
	ev.when = t
	ev.seq = e.seq
	ev.fn = fn
	ev.label = label
	ev.state = statePending
	e.seq++
	e.npend++
	if e.npend == 1 {
		e.minWhen, e.minOK = t, true // empty queue: t is the exact minimum
	} else if e.minOK && t < e.minWhen {
		e.minWhen = t
	}
	if Cycles(t-e.now) < wheelSlots {
		// Near-future fast path, by far the common case. A fresh event
		// carries the largest seq yet issued, so the ordered level-0 insert
		// of wheelLink reduces to a tail append — spelled out here to keep
		// the schedule→dispatch cycle free of further calls.
		s := int(uint64(t) & wheelMask)
		ev.level = 0
		e.lcount[0]++
		if h := e.wheel[0][s]; h == nil {
			e.wheel[0][s] = ev
			ev.prev = ev // single element: it is its own tail
			e.occupied[0][s>>6] |= 1 << (s & 63)
		} else {
			tl := h.prev
			tl.next = ev
			ev.prev = tl
			h.prev = ev
		}
	} else {
		e.place(ev)
	}
	return ev
}

// After schedules fn to run d cycles from now. Negative delays panic.
func (e *Engine) After(d Cycles, label string, fn func(Time)) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d for %q", d, label))
	}
	return e.At(e.now.Add(d), label, fn)
}

// Cancel removes a pending event from the queue and recycles its record;
// the caller must drop the handle. Cancelling an event that already fired
// or was already cancelled is a no-op and returns false. Cancellation is
// O(1) for every event inside the wheel horizon (an unlink from its slot
// list); only far-future overflow events pay the heap's O(log n).
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.state != statePending {
		return false
	}
	e.unqueue(ev)
	e.npend--
	if e.npend == 0 {
		e.minWhen, e.minOK = maxTime, true
	} else if e.minOK && ev.when == e.minWhen {
		e.minOK = false // may have been the minimum; recompute lazily
	}
	e.release(ev)
	return true
}

// Reschedule moves a pending event to a new absolute time, preserving its
// callback. The event must be pending: records are pooled, so a handle
// whose event fired or was cancelled may already describe someone else's
// event, and rescheduling it would corrupt the queue — Reschedule panics
// instead. Re-arm by scheduling a fresh event.
func (e *Engine) Reschedule(ev *Event, t Time) {
	if ev == nil {
		panic("sim: Reschedule of nil event")
	}
	if ev.state != statePending {
		panic(fmt.Sprintf("sim: Reschedule of dead event %q: it already fired or was cancelled and its record may have been recycled", ev.label))
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: rescheduling %q at %d before now %d", ev.label, t, e.now))
	}
	e.unqueue(ev) // before touching when: the wheel slot derives from it
	if e.npend == 1 {
		e.minWhen, e.minOK = t, true // the sole pending event: exact
	} else {
		if e.minOK && ev.when == e.minWhen {
			e.minOK = false
		}
		if e.minOK && t < e.minWhen {
			e.minWhen = t
		}
	}
	ev.when = t
	ev.seq = e.seq
	e.seq++
	e.place(ev)
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It returns false when the queue is empty. The record is recycled after
// the callback returns, giving handle holders that nil their reference
// inside the callback a race-free window.
func (e *Engine) Step() bool {
	if e.minOK {
		// Exact-minimum fast path: jump straight to the earliest event (see
		// advanceTo for why no cascade can be skipped over).
		t := e.minWhen
		if t == maxTime {
			return false
		}
		if t != e.now {
			// advanceTo, spelled out so the no-cascade case stays inline.
			old := e.now
			e.now = t
			if t > e.migrateAt || (uint64(old)^uint64(t))>>wheelBits != 0 {
				e.advanceSlow(old)
			}
		}
		// The minimum is at level 0 after the advance: it was either placed
		// there (delta < wheelSlots) or its slot's window contains t, making
		// it the landing slot advanceTo just cascaded.
		return e.fireOne(int(uint64(t) & wheelMask))
	}
	for {
		lm := e.nextLandmark()
		if lm == maxTime {
			return false
		}
		e.advanceTo(lm)
		// The landmark is either an exact level-0 event time (dispatch it)
		// or the window start of a higher-level slot that advanceTo just
		// cascaded (loop: its events now sit closer to the clock).
		s := int(uint64(e.now) & wheelMask)
		if e.wheel[0][s] != nil {
			return e.fireOne(s)
		}
	}
}

// fireOne dispatches the head of the level-0 slot s, which the caller has
// verified (or proven) to be non-empty and due at the current instant.
func (e *Engine) fireOne(s int) bool {
	ev := e.wheel[0][s]
	if nh := ev.next; nh != nil {
		nh.prev = ev.prev
		e.wheel[0][s] = nh
	} else {
		e.wheel[0][s] = nil
		e.occupied[0][s>>6] &^= 1 << (s & 63)
	}
	ev.next, ev.prev = nil, nil
	ev.level = levelNone
	e.lcount[0]--
	e.npend--
	e.nfired++
	fn := ev.fn
	ev.state = stateDead
	if e.npend == 0 {
		e.minWhen, e.minOK = maxTime, true
	} else if e.minOK && ev.when == e.minWhen && e.wheel[0][s] == nil {
		e.minOK = false // last event at the cached minimum instant
	}
	fn(e.now)
	e.release(ev)
	return true
}

// RunUntil fires events in timestamp order until the clock reaches t (events
// at exactly t do fire) or the queue drains. The clock is left at t or at
// the time of the last fired event, whichever is later. Unlike Step, it
// dispatches every event at a given instant in one batched slot pass.
func (e *Engine) RunUntil(t Time) {
	for {
		lm := e.minWhen
		if !e.minOK {
			lm = e.nextLandmark()
		}
		if lm > t {
			break
		}
		// advanceTo, spelled out so the no-cascade case stays inline.
		old := e.now
		e.now = lm
		if lm > e.migrateAt || (uint64(old)^uint64(lm))>>wheelBits != 0 {
			e.advanceSlow(old)
		}
		e.dispatchBatch()
	}
	if e.now < t {
		// No landmark at or before t remains, so the skipped-over slots
		// are all empty and the jump cascades nothing.
		e.advanceTo(t)
	}
}

// RunFor advances the simulation by d cycles (see RunUntil).
func (e *Engine) RunFor(d Cycles) { e.RunUntil(e.now.Add(d)) }

// Drain fires every pending event. It is mainly useful in tests; real
// simulations have periodic sources and never drain. The limit guards
// against runaway self-rescheduling loops: Drain panics after firing limit
// events if the queue is still non-empty.
func (e *Engine) Drain(limit int) {
	for i := 0; e.npend > 0; i++ {
		if i >= limit {
			panic(fmt.Sprintf("sim: Drain exceeded %d events", limit))
		}
		e.Step()
	}
}
