// Package server is the latency-campaign service: a long-lived HTTP front
// end over the internal/campaign runner that turns one-shot measurement
// runs into submitted, queryable, cached jobs.
//
// The load-bearing guarantee is byte identity: the result stream served
// for a campaign — one core.EncodeResult document per cell, in submission
// order — is exactly what the same campaign produces locally, at any
// worker count, whether the cells were executed or replayed from the
// cache. That falls out of the campaign determinism contract (per-cell
// seeds derived from the campaign seed and cell key, never from
// scheduling) plus the exact result codec, and the test suite pins it.
//
// Campaigns are content-addressed (api.CampaignID over the cells' store
// fingerprints), which collapses three mechanisms into one:
//
//   - in-flight deduplication: a second submission of a running campaign
//     joins the existing job instead of executing again;
//   - a completed-result cache: re-submitting a finished campaign returns
//     the retained job immediately;
//   - a durable cell cache: with a store attached, individual cells are
//     replayed from disk across server restarts — and shared with local
//     runs pointed at the same checkpoint directory.
//
// Admission is bounded: campaigns wait in a fixed-capacity queue for one
// of a fixed number of executor slots, and a submission that finds the
// queue full is rejected immediately with 429 and a Retry-After hint —
// the accept loop never blocks on simulation work. Each job runs under
// its own context (DELETE cancels just that job), and Close cancels all
// of them, draining running cells through the campaign runner's
// checkpoint path before returning.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"wdmlat/internal/api"
	"wdmlat/internal/campaign"
	"wdmlat/internal/campaign/store"
	"wdmlat/internal/core"
	"wdmlat/internal/metrics"
)

// Metric names the server publishes on Options.Metrics, alongside the
// campaign runner's and store's own instruments (shared registry, served
// verbatim by /metrics).
const (
	MetricSubmitted    = "server_campaigns_submitted" // new jobs admitted to the queue
	MetricResumed      = "server_campaigns_resumed"   // journaled jobs re-admitted after a restart
	MetricDeduped      = "server_campaigns_deduped"   // submissions that joined an existing job
	MetricRejected     = "server_campaigns_rejected"  // submissions bounced with 429 (queue full)
	MetricCompleted    = "server_campaigns_completed" // jobs finished in state done
	MetricFailed       = "server_campaigns_failed"    // jobs finished in state failed
	MetricCancelled    = "server_campaigns_cancelled" // jobs finished in state cancelled
	MetricRunning      = "server_campaigns_running"   // gauge: jobs executing right now
	MetricQueueDepth   = "server_queue_depth"         // gauge: admitted jobs waiting for an executor
	MetricCellsExec    = "server_cells_executed"      // cells actually simulated (cache misses)
	MetricCampaignWall = "server_campaign_wall_time"  // histogram: per-job wall time
)

// Options configures a Server.
type Options struct {
	// Jobs is the per-campaign worker-pool width (campaign.Options.Jobs);
	// <= 0 means GOMAXPROCS.
	Jobs int
	// QueueLimit bounds admitted-but-not-running jobs; a submission that
	// finds the queue full gets 429. Default 16.
	QueueLimit int
	// Concurrency is how many campaigns execute at once. Default 1: one
	// campaign already saturates Jobs workers, and serial execution keeps
	// the measurement host's load — the thing the paper says perturbs
	// latency — predictable.
	Concurrency int
	// MaxCells bounds the cells of one campaign (admission-time 400, so a
	// huge spec cannot wedge an executor slot for hours). Default 4096.
	MaxCells int
	// RetryAfter is the hint returned with 429 responses. Default 2s.
	RetryAfter time.Duration
	// Store, if non-nil, is the durable content-addressed cell cache
	// (campaign.Options.Store): executed cells are checkpointed under
	// their fingerprints and replayed on later submissions, including
	// across server restarts.
	Store *store.Store
	// Metrics receives the server's, runner's and store's telemetry; nil
	// disables collection. /metrics serves this registry's snapshot.
	Metrics *metrics.Registry
	// Execute overrides the cell executor (core.Run) — tests inject
	// blocking or instant fakes. Must stay a pure function of its config.
	// Ignored in fleet mode, where cells execute on remote workers.
	Execute func(core.RunConfig) *core.Result
	// Fleet, if non-nil, runs the server as a coordinator: campaigns'
	// cells are leased to registered workers (POST /v1/workers ...)
	// instead of executed in-process, sharded by checkpoint-store
	// fingerprint and merged in submission order — byte-identical to a
	// local run at any fleet size, including across worker crashes.
	Fleet *CoordinatorOptions
	// Journal, if non-nil, makes admitted campaigns durable: every
	// admission, terminal state and coordinator merge is appended, and
	// New re-admits the journal's unfinished campaigns so a restart
	// resumes them (cells already in Store replay from disk; the rest
	// re-execute or re-dispatch) instead of failing their waiters. The
	// journal's merged fingerprints also seed the coordinator, so
	// pre-restart straggler completions land as duplicates.
	Journal *Journal
}

type serverMetrics struct {
	submitted, resumed, deduped, rejected *metrics.Counter
	completed, failed, cancelled, cellsEx *metrics.Counter
	running, depth                        *metrics.Gauge
	wall                                  *metrics.Histogram
}

// job is one content-addressed campaign. Its mutable state is guarded by
// mu; every mutation appends an event and replaces changed, so watchers
// block on a channel (selectable against the request context) instead of
// a condition variable.
type job struct {
	id   string
	spec api.CampaignSpec

	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	state   string
	done    int
	cached  bool
	errMsg  string
	result  []byte // concatenated core.EncodeResult docs, set in state done
	events  []api.Event
	changed chan struct{}
}

func (j *job) publishLocked(ev api.Event) {
	ev.Seq = len(j.events)
	ev.Done = j.done
	ev.Total = len(j.spec.Cells)
	j.events = append(j.events, ev)
	close(j.changed)
	j.changed = make(chan struct{})
}

func (j *job) setState(state string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.publishLocked(api.Event{Type: api.EventState, State: state})
}

func (j *job) cellDone(key string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done++
	j.publishLocked(api.Event{Type: api.EventCell, Key: key})
}

func (j *job) status() api.Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return api.Status{
		ID:     j.id,
		State:  j.state,
		Done:   j.done,
		Total:  len(j.spec.Cells),
		Cached: j.cached,
		Error:  j.errMsg,
	}
}

// Server is the campaign service. Create with New, expose Handler on an
// http.Server, and Close on shutdown.
type Server struct {
	opts Options
	met  serverMetrics
	mux  *http.ServeMux

	mu     sync.Mutex
	jobs   map[string]*job
	queue  chan *job
	closed bool

	// coord is non-nil in fleet mode: cells are dispatched to workers
	// through it rather than executed in-process.
	coord *Coordinator

	rootCtx    context.Context
	rootCancel context.CancelFunc
	executors  sync.WaitGroup
}

// New returns a Server with its executor pool started.
func New(opts Options) *Server {
	if opts.QueueLimit <= 0 {
		opts.QueueLimit = 16
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 1
	}
	if opts.MaxCells <= 0 {
		opts.MaxCells = 4096
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = 2 * time.Second
	}
	reg := opts.Metrics
	opts.Journal.Instrument(reg)
	// The journal's unfinished campaigns are re-admitted below; the queue
	// is sized to hold them all on top of the normal admission window, so
	// resumption can never bounce a journaled campaign off a full queue.
	jstate := opts.Journal.State()
	s := &Server{
		opts: opts,
		met: serverMetrics{
			submitted: reg.Counter(MetricSubmitted),
			resumed:   reg.Counter(MetricResumed),
			deduped:   reg.Counter(MetricDeduped),
			rejected:  reg.Counter(MetricRejected),
			completed: reg.Counter(MetricCompleted),
			failed:    reg.Counter(MetricFailed),
			cancelled: reg.Counter(MetricCancelled),
			cellsEx:   reg.Counter(MetricCellsExec),
			running:   reg.Gauge(MetricRunning),
			depth:     reg.Gauge(MetricQueueDepth),
			wall:      reg.Histogram(MetricCampaignWall),
		},
		jobs:  map[string]*job{},
		queue: make(chan *job, opts.QueueLimit+len(jstate.Campaigns)),
	}
	s.rootCtx, s.rootCancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if opts.Fleet != nil {
		co := *opts.Fleet
		if co.Metrics == nil {
			co.Metrics = opts.Metrics
		}
		if co.Journal == nil {
			co.Journal = opts.Journal
		}
		co.Merged = append(append([]string(nil), co.Merged...), jstate.Merged...)
		s.coord = NewCoordinator(co)
		s.mux.HandleFunc("POST /v1/workers", s.handleWorkerRegister)
		s.mux.HandleFunc("POST /v1/workers/{id}/heartbeat", s.handleWorkerHeartbeat)
		s.mux.HandleFunc("POST /v1/workers/{id}/leases", s.handleWorkerLease)
		s.mux.HandleFunc("POST /v1/workers/{id}/complete", s.handleWorkerComplete)
		s.mux.HandleFunc("GET /v1/fleet", s.handleFleet)
	}
	for i := 0; i < opts.Concurrency; i++ {
		s.executors.Add(1)
		go s.executor()
	}
	s.resumeJournaled(jstate.Campaigns)
	return s
}

// resumeJournaled re-admits the campaigns a previous incarnation journaled
// but never finished, in their original admission order. A resumed job is
// indistinguishable from a fresh submission downstream: cells already in
// the checkpoint store replay from disk, the rest execute (or, in fleet
// mode, re-dispatch to workers). The journal already holds these
// campaigns' records, so nothing is re-appended here.
func (s *Server) resumeJournaled(campaigns []JournalCampaign) {
	for i := range campaigns {
		spec := campaigns[i].Spec
		id := api.CampaignID(&spec)
		if id != campaigns[i].ID {
			// The content address no longer matches the journaled one: the
			// codec (and therefore every cell fingerprint) diverged across
			// the restart, and the old campaign identity is meaningless.
			// Skip it; a re-submission computes fresh results.
			continue
		}
		s.mu.Lock()
		if _, ok := s.jobs[id]; ok {
			s.mu.Unlock()
			continue
		}
		j := &job{id: id, spec: spec, state: api.StateQueued, changed: make(chan struct{})}
		j.ctx, j.cancel = context.WithCancel(s.rootCtx)
		j.publishLocked(api.Event{Type: api.EventState, State: api.StateQueued})
		s.met.depth.Inc()
		select {
		case s.queue <- j:
			s.jobs[id] = j
			s.mu.Unlock()
			s.met.resumed.Inc()
		default:
			// Unreachable by construction (the queue is sized for every
			// journaled campaign), kept so a future sizing bug degrades to
			// a dropped resume instead of a deadlocked constructor.
			s.mu.Unlock()
			j.cancel()
			s.met.depth.Dec()
		}
	}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts the service down gracefully: new submissions get 503, every
// job's context is cancelled — queued cells are dropped as cancelled,
// running cells drain to completion and checkpoint through the store —
// and Close returns once all executors have finished draining. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.executors.Wait()
		if s.coord != nil {
			s.coord.Close()
		}
		return
	}
	s.closed = true
	close(s.queue) // safe: submissions only enqueue under mu with closed==false
	s.mu.Unlock()
	s.rootCancel()
	s.executors.Wait()
	if s.coord != nil {
		// After the executors drained there are no ExecuteRemote waiters
		// left; this stops the lease janitor and tells polling workers,
		// via Draining lease responses, to exit.
		s.coord.Close()
	}
}

// executor pulls admitted jobs off the queue and runs them one at a time.
func (s *Server) executor() {
	defer s.executors.Done()
	for j := range s.queue {
		s.met.depth.Dec()
		s.runJob(j)
	}
}

// runJob executes one campaign and publishes its terminal state.
func (s *Server) runJob(j *job) {
	defer j.cancel()
	if j.ctx.Err() != nil {
		s.finishJob(j, api.StateCancelled, nil, fmt.Sprintf("cancelled before start: %v", context.Cause(j.ctx)))
		return
	}
	j.setState(api.StateRunning)
	s.met.running.Inc()
	begin := time.Now()
	defer func() {
		s.met.wall.Observe(time.Since(begin))
		s.met.running.Dec()
	}()

	execute := s.opts.Execute
	if execute == nil {
		execute = core.Run
	}
	var executed atomic.Uint64 // cells actually simulated, to compute Cached
	var executeCell func(string, core.RunConfig) (*core.Result, error)
	if s.coord != nil {
		// Fleet mode: "executing" a cell means leasing it to a worker by
		// its content fingerprint. The campaign runner's Jobs bound now
		// caps outstanding leases per campaign instead of local CPU work.
		executeCell = func(key string, cfg core.RunConfig) (*core.Result, error) {
			s.met.cellsEx.Inc()
			executed.Add(1)
			res, err := s.coord.ExecuteRemote(j.ctx, j.spec.Seed(), key, cfg)
			if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
				// ExecuteRemote surfaces a cancelled wait as the bare ctx
				// error, but the terminal-state classification below keys
				// on ErrCancelled — without the wrap, a DELETE-cancelled
				// fleet job is published as failed.
				err = fmt.Errorf("%w: %v", campaign.ErrCancelled, err)
			}
			return res, err
		}
	}
	runOpts := campaign.Options{
		BaseSeed: j.spec.Seed(),
		Jobs:     s.opts.Jobs,
		Context:  j.ctx,
		Store:    s.opts.Store,
		Metrics:  s.opts.Metrics,
		Execute: func(cfg core.RunConfig) *core.Result {
			s.met.cellsEx.Inc()
			executed.Add(1)
			return execute(cfg)
		},
		ExecuteCell: executeCell,
		OnCellDone:  j.cellDone,
	}
	if j.spec.Precision != nil {
		// Adaptive campaigns publish progress per logical cell, below —
		// the runner's per-replica callback would overshoot Total.
		runOpts.OnCellDone = nil
		s.runAdaptive(j, campaign.New(runOpts), &executed)
		return
	}
	run := campaign.New(runOpts)
	cells := make([]campaign.Cell, len(j.spec.Cells))
	for i, c := range j.spec.Cells {
		cells[i] = campaign.Cell{Key: c.Key, Config: c.Config}
	}
	run.Submit(cells...)

	// Collect in submission order and stream each cell's exact checkpoint
	// encoding into the result buffer — the same bytes a local runner
	// would encode for the same campaign.
	var buf bytes.Buffer
	for _, c := range j.spec.Cells {
		res, err := run.Result(c.Key)
		if err != nil {
			_ = run.Wait() // drain running cells so their checkpoints flush
			state := api.StateFailed
			if errors.Is(err, campaign.ErrCancelled) {
				state = api.StateCancelled
			}
			s.finishJob(j, state, nil, err.Error())
			return
		}
		if err := core.EncodeResult(&buf, res); err != nil {
			_ = run.Wait()
			s.finishJob(j, api.StateFailed, nil, fmt.Sprintf("encoding cell %q: %v", c.Key, err))
			return
		}
	}
	// Every cell collected; Wait only surfaces checkpoint-store I/O
	// problems now, which fail the job loudly rather than serving a
	// result whose cache entries silently went missing.
	if err := run.Wait(); err != nil {
		s.finishJob(j, api.StateFailed, nil, err.Error())
		return
	}
	j.mu.Lock()
	j.cached = executed.Load() == 0
	j.mu.Unlock()
	s.finishJob(j, api.StateDone, buf.Bytes(), "")
}

// runAdaptive executes an adaptive (Precision-bearing) campaign: every spec
// cell is a logical cell whose replicas are added by the stopping rule, all
// logical cells progress concurrently on the shared runner pool, and the
// result stream is one pooled core.EncodeResult document per logical cell
// in submission order — byte-identical to the same spec run locally,
// because replica seeds and the stopping rule depend only on the data.
func (s *Server) runAdaptive(j *job, run *campaign.Runner, executed *atomic.Uint64) {
	prec := *j.spec.Precision
	type outcome struct {
		res *core.Result
		err error
	}
	outs := make([]outcome, len(j.spec.Cells))
	var wg sync.WaitGroup
	for i, c := range j.spec.Cells {
		i, c := i, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _, err := run.MergedAdaptive(c.Key, c.Config, prec)
			outs[i] = outcome{res, err}
			j.cellDone(c.Key)
		}()
	}
	wg.Wait()

	var buf bytes.Buffer
	for i, c := range j.spec.Cells {
		if err := outs[i].err; err != nil {
			_ = run.Wait() // drain in-flight replicas so their checkpoints flush
			state := api.StateFailed
			if errors.Is(err, campaign.ErrCancelled) {
				state = api.StateCancelled
			}
			s.finishJob(j, state, nil, err.Error())
			return
		}
		if err := core.EncodeResult(&buf, outs[i].res); err != nil {
			_ = run.Wait()
			s.finishJob(j, api.StateFailed, nil, fmt.Sprintf("encoding cell %q: %v", c.Key, err))
			return
		}
	}
	if err := run.Wait(); err != nil {
		s.finishJob(j, api.StateFailed, nil, err.Error())
		return
	}
	j.mu.Lock()
	j.cached = executed.Load() == 0
	j.mu.Unlock()
	s.finishJob(j, api.StateDone, buf.Bytes(), "")
}

func (s *Server) finishJob(j *job, state string, result []byte, errMsg string) {
	j.mu.Lock()
	j.result = result
	j.errMsg = errMsg
	j.mu.Unlock()
	j.setState(state)
	switch state {
	case api.StateDone:
		s.met.completed.Inc()
	case api.StateFailed:
		s.met.failed.Inc()
	case api.StateCancelled:
		s.met.cancelled.Inc()
	}
	// A terminal state reached because the server itself is shutting down
	// — Close cancelled the job, or draining failed its cells — is not the
	// campaign's outcome, it is the restart's starting point: leave the
	// journal entry open so the next incarnation resumes the job. A
	// user-requested DELETE (root context still alive) closes it for good.
	if s.rootCtx.Err() == nil {
		s.opts.Journal.Finished(j.id, state)
	}
}

// --- HTTP handlers ---------------------------------------------------------

// maxSpecBytes bounds the submission body; a full 4096-cell matrix spec is
// well under 4 MiB.
const maxSpecBytes = 8 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, api.Error{Message: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec api.CampaignSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding campaign spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(spec.Cells) > s.opts.MaxCells {
		writeError(w, http.StatusBadRequest, "campaign has %d cells, limit %d", len(spec.Cells), s.opts.MaxCells)
		return
	}
	if spec.Precision != nil {
		// Admission bounds the worst case: every logical cell running to
		// the policy's replica cap.
		if worst := len(spec.Cells) * spec.Precision.Normalized().MaxRuns; worst > s.opts.MaxCells {
			writeError(w, http.StatusBadRequest,
				"adaptive campaign could expand to %d replica cells (%d cells x max_runs %d), limit %d",
				worst, len(spec.Cells), spec.Precision.Normalized().MaxRuns, s.opts.MaxCells)
			return
		}
	}
	id := api.CampaignID(&spec)

	s.mu.Lock()
	if existing, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		s.met.deduped.Inc()
		writeJSON(w, http.StatusOK, existing.status())
		return
	}
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	j := &job{id: id, spec: spec, state: api.StateQueued, changed: make(chan struct{})}
	j.ctx, j.cancel = context.WithCancel(s.rootCtx)
	// Publish the queued event before the job is visible to an executor,
	// so the event stream always starts with it.
	j.publishLocked(api.Event{Type: api.EventState, State: api.StateQueued})
	s.met.depth.Inc() // before the enqueue, so the executor's Dec never races it negative
	select {
	case s.queue <- j:
	default:
		// Queue full: reject now, with a hint, rather than ever blocking
		// the accept loop behind simulation work.
		s.mu.Unlock()
		j.cancel()
		s.met.depth.Dec()
		s.met.rejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, "admission queue full (%d campaigns queued)", s.opts.QueueLimit)
		return
	}
	s.jobs[id] = j
	s.mu.Unlock()
	s.met.submitted.Inc()
	// Journal the admission outside the lock (appends fsync). A crash in
	// the window between admission and append merely loses the campaign;
	// the client's retried submit re-creates it under the same content
	// address.
	s.opts.Journal.Campaign(id, &spec)
	writeJSON(w, http.StatusAccepted, j.status())
}

func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return nil
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.jobFor(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	j.cancel()
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state, result, errMsg := j.state, j.result, j.errMsg
	j.mu.Unlock()
	switch {
	case state == api.StateDone:
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Content-Length", strconv.Itoa(len(result)))
		_, _ = w.Write(result)
	case api.TerminalState(state):
		writeError(w, http.StatusGone, "campaign %s: %s", state, errMsg)
	default:
		writeError(w, http.StatusConflict, "campaign is %s; result not ready", state)
	}
}

// handleEvents streams the job's events as NDJSON from ?from= (default 0),
// live-following until a terminal state event has been sent or the client
// disconnects. Seq numbers are dense, so a dropped watcher resumes with
// from=<last seen>+1 and misses nothing.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad from=%q", v)
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := from
	for {
		j.mu.Lock()
		pending := append([]api.Event(nil), j.events[min(next, len(j.events)):]...)
		changed := j.changed
		j.mu.Unlock()
		terminal := false
		for _, ev := range pending {
			if err := enc.Encode(ev); err != nil {
				return
			}
			next = ev.Seq + 1
			if ev.Type == api.EventState && api.TerminalState(ev.State) {
				terminal = true
			}
		}
		if len(pending) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// --- Fleet (coordinator) handlers ------------------------------------------
//
// Thin HTTP skins over the Coordinator state machine. 410 Gone is the
// "identity lost" signal — an unknown worker id (expired and reclaimed) or
// an unknown task fingerprint (campaign finished or cancelled) — and tells
// the worker to re-register or drop the result, never to retry verbatim.

func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	var req api.RegisterRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "decoding registration: %v", err)
		return
	}
	resp, ok := s.coord.Register(req.Name)
	if !ok {
		// Draining: the janitor is stopped, so an admitted worker would
		// never be reclaimed. 503 is retryable — the worker's backoff
		// lands on this coordinator's next incarnation.
		writeError(w, http.StatusServiceUnavailable, "coordinator is draining; retry")
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWorkerHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !s.coord.Heartbeat(r.PathValue("id")) {
		writeError(w, http.StatusGone, "unknown worker %q: re-register", r.PathValue("id"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleWorkerLease(w http.ResponseWriter, r *http.Request) {
	var req api.LeaseRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "decoding lease request: %v", err)
		return
	}
	resp, ok := s.coord.Lease(r.PathValue("id"), req.Max)
	if !ok {
		writeError(w, http.StatusGone, "unknown worker %q: re-register", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWorkerComplete(w http.ResponseWriter, r *http.Request) {
	var req api.CompleteRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding completion: %v", err)
		return
	}
	disp, err := s.coord.Complete(r.PathValue("id"), req)
	switch disp {
	case CompleteMerged:
		writeJSON(w, http.StatusOK, map[string]string{"status": "merged"})
	case CompleteDuplicate:
		writeJSON(w, http.StatusOK, map[string]string{"status": "duplicate"})
	case CompleteUnknown:
		writeError(w, http.StatusGone, "%v", err)
	case CompleteRejected:
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	}
}

func (s *Server) handleFleet(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.coord.Status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.opts.Metrics.WriteJSON(w)
}
