package kernel

import (
	"fmt"
	"strconv"

	"wdmlat/internal/cpu"
	"wdmlat/internal/sim"
)

// Interrupt is the kernel's connection of an IDT vector to a driver ISR at
// a device IRQL — the analogue of a WDM KINTERRUPT object.
type Interrupt struct {
	k        *Kernel
	Vector   int
	Irql     IRQL
	Module   string // owning driver, for the cause tool's frames
	Function string
	isr      func(*IsrContext)

	// Precomputed at Connect so acceptInterrupt does no per-delivery
	// formatting, plus a reusable ISR context (ISRs run one at a time).
	actLabel  string
	doneLabel string
	ctx       *IsrContext

	pending    bool
	assertedAt sim.Time
	asserts    uint64
	spurious   uint64
}

// IsrContext is the restricted execution environment handed to an ISR body.
// WDM ISRs are supposed to be very short and queue a DPC for real work
// (paper §2.1); the context surface enforces that style.
type IsrContext struct {
	k   *Kernel
	irq *Interrupt
}

// Now reads the time stamp counter, including cycles charged so far by the
// body — the simulated GetCycleCount (paper §2.2.5).
func (c *IsrContext) Now() sim.Time { return c.k.cpu.TSC() }

// Charge accounts d cycles of ISR execution; subsequent Now reads observe
// them.
func (c *IsrContext) Charge(d sim.Cycles) { c.k.cpu.AddCharge(d) }

// QueueDpc inserts d into the DPC queue (KeInsertQueueDpc). It returns
// false if the DPC was already queued.
func (c *IsrContext) QueueDpc(d *DPC) bool { return c.k.queueDpc(d) }

// Vector returns the interrupt vector being serviced.
func (c *IsrContext) Vector() int { return c.irq.Vector }

// AssertedAt returns the ground-truth assertion time of the interrupt being
// serviced. The paper's drivers cannot see this (they estimate it, §2.2);
// it is exposed for oracle-mode validation only and is clearly labelled as
// such wherever used.
func (c *IsrContext) AssertedAt() sim.Time { return c.irq.assertedAt }

// Connect claims vector for a driver ISR running at irql, installing the
// kernel's interrupt trampoline in the IDT (IoConnectInterrupt).
func (k *Kernel) Connect(vector int, irql IRQL, module, function string, isr func(*IsrContext)) *Interrupt {
	if _, ok := k.interrupts[vector]; ok {
		panic(fmt.Sprintf("kernel: vector %d already connected", vector))
	}
	if irql < MinDeviceIRQL || irql > HighLevel {
		panic(fmt.Sprintf("kernel: cannot connect ISR at %v", irql))
	}
	intr := &Interrupt{k: k, Vector: vector, Irql: irql, Module: module, Function: function, isr: isr}
	intr.actLabel = module + " vec" + strconv.Itoa(vector)
	intr.doneLabel = "isr:" + intr.actLabel
	intr.ctx = &IsrContext{k: k, irq: intr}
	k.interrupts[vector] = intr
	k.irqList = append(k.irqList, intr)
	k.cpu.Install(vector, func(now sim.Time) {
		intr.isr(intr.ctx)
	})
	return intr
}

// InterruptForVector returns the interrupt object connected to a vector, or
// nil. Tools use it to assert or inspect lines they did not create (the
// Win98 latency tool manipulates the OS-owned PIT interrupt this way).
func (k *Kernel) InterruptForVector(vector int) *Interrupt {
	return k.interrupts[vector]
}

// Disconnect releases a vector.
func (k *Kernel) Disconnect(intr *Interrupt) {
	delete(k.interrupts, intr.Vector)
	for i, x := range k.irqList {
		if x == intr {
			k.irqList = append(k.irqList[:i], k.irqList[i+1:]...)
			break
		}
	}
	if intr.pending {
		intr.pending = false
		k.irqPending--
	}
}

// Assert raises the interrupt line. Devices call this; it is level-styled:
// asserting an already-pending line is recorded as spurious and otherwise
// ignored.
func (intr *Interrupt) Assert() {
	k := intr.k
	if intr.pending {
		intr.spurious++
		return
	}
	intr.pending = true
	k.irqPending++
	intr.assertedAt = k.now()
	intr.asserts++
	if k.probe.InterruptAsserted != nil {
		k.probe.InterruptAsserted(intr.Vector, intr.assertedAt)
	}
	k.maybeRun()
}

// Asserts returns how many times the line has been asserted.
func (intr *Interrupt) Asserts() uint64 { return intr.asserts }

// Spurious returns assertions that arrived while the line was already
// pending (level-triggered: they coalesce into one delivery).
func (intr *Interrupt) Spurious() uint64 { return intr.spurious }

// bestDeliverableIRQ returns the pending interrupt with the highest IRQL
// whose level exceeds top, or nil. FIFO order breaks IRQL ties via
// assertion time.
func (k *Kernel) bestDeliverableIRQ(top int) *Interrupt {
	if k.irqPending == 0 {
		return nil
	}
	var best *Interrupt
	for _, intr := range k.irqList {
		if !intr.pending || isrLevel(intr.Irql) <= top {
			continue
		}
		if best == nil ||
			intr.Irql > best.Irql ||
			(intr.Irql == best.Irql && intr.assertedAt < best.assertedAt) ||
			(intr.Irql == best.Irql && intr.assertedAt == best.assertedAt && intr.Vector < best.Vector) {
			best = intr
		}
	}
	return best
}

// acceptInterrupt vectors a pending interrupt: it preempts the current CPU
// occupant, pushes the ISR activity, and dispatches through the IDT (so
// that cause-tool hooks on the vector run exactly where they would on real
// hardware). The ISR body executes logically at acceptance time, charging
// its cycles; the activity then occupies the CPU for entry + body + exit.
func (k *Kernel) acceptInterrupt(intr *Interrupt) {
	now := k.now()
	intr.pending = false
	k.irqPending--
	k.counters.Interrupts++

	act := k.newActivity()
	act.kind = actISR
	act.level = isrLevel(intr.Irql)
	act.label = intr.actLabel
	act.doneLabel = intr.doneLabel
	act.frame = cpu.Frame{Module: intr.Module, Function: intr.Function}
	k.occupy(act)

	entry := k.draw(k.cfg.IsrEntry)
	k.cpu.ResetCharge()
	k.cpu.AddCharge(entry)
	if k.probe.IsrEntered != nil {
		k.probe.IsrEntered(intr.Vector, intr.assertedAt, now.Add(entry))
	}
	k.cpu.Dispatch(intr.Vector, now)
	body := k.cpu.ResetCharge()
	act.remaining = body + k.draw(k.cfg.IsrExit)
	// The dispatch loop's resumeTop schedules the completion.
}
