package modem

import (
	"wdmlat/internal/kernel"
	"wdmlat/internal/sim"
)

// PeriodicTask is the paper's future-work tool (§6.1): a configurable
// periodic computation at a chosen modality and priority that reports
// missed deadlines. It generalizes the datapump: each release at k·T must
// complete its compute by k·T + Deadline.
type PeriodicTask struct {
	k *kernel.Kernel

	Name     string
	Period   sim.Cycles
	Compute  sim.Cycles
	Deadline sim.Cycles // relative; defaults to Period
	Modality Modality
	Priority int // thread modality only

	// ExternallyPaced marks the task as released by an outside interrupt
	// source (the display vblank DPC, say) instead of its own kernel
	// timer: Start arms nothing and each Release call is one period
	// boundary. Set before Start.
	ExternallyPaced bool
	// OnComplete, if set, observes every completed activation with its
	// completion time and its latency from release — the hook the
	// frame-pacing application hangs its jitter distributions on. It runs
	// in the completing context (DPC or thread), so it must be cheap.
	OnComplete func(now sim.Time, latency sim.Cycles)

	timer  *kernel.Timer
	dpc    *kernel.DPC
	ev     *kernel.Event
	thread *kernel.Thread

	releases    uint64
	completions uint64
	misses      uint64
	skips       uint64 // releases dropped because the previous was still running
	pending     bool
	pendingDue  sim.Time
	pendingRel  sim.Time // release time of the in-flight activation
	running     bool
	maxLateness sim.Cycles
}

// NewPeriodicTask builds (but does not start) a periodic task.
func NewPeriodicTask(k *kernel.Kernel, name string, period, compute sim.Cycles, m Modality, priority int) *PeriodicTask {
	if period <= 0 || compute < 0 {
		panic("modem: invalid periodic task parameters")
	}
	if priority == 0 {
		priority = kernel.RealtimeHigh
	}
	t := &PeriodicTask{
		k:        k,
		Name:     name,
		Period:   period,
		Compute:  compute,
		Deadline: period,
		Modality: m,
		Priority: priority,
	}
	t.timer = k.NewTimer(name + ".period")
	t.dpc = kernel.NewDPC("PERIODIC:"+name, kernel.MediumImportance, t.onRelease)
	if m == ThreadBased {
		t.ev = k.NewEvent(name+".wake", kernel.SynchronizationEvent)
		prio := priority
		t.thread = k.CreateThread(name, kernel.NormalPriority, func(tc *kernel.ThreadContext) {
			tc.SetPriority(prio)
			for {
				tc.Wait(t.ev)
				if t.Compute > 0 {
					tc.Exec(t.Compute)
				}
				tc.Do(func() { t.complete(t.k.CPU().TSC()) })
			}
		})
	}
	return t
}

// Start begins periodic releases. An externally-paced task arms no timer —
// its releases arrive through Release.
func (t *PeriodicTask) Start() {
	if t.running {
		panic("modem: periodic task already started")
	}
	t.running = true
	if t.ExternallyPaced {
		return
	}
	t.k.SetPeriodicTimer(t.timer, t.Period, t.Period, t.dpc)
}

// Release delivers one externally-paced period boundary, in DPC context
// (the pacing interrupt's DPC calls this — the display vblank pattern).
func (t *PeriodicTask) Release(c *kernel.DpcContext) {
	if !t.ExternallyPaced {
		panic("modem: Release on a timer-paced task")
	}
	t.onRelease(c)
}

// Stop halts releases.
func (t *PeriodicTask) Stop() {
	t.running = false
	t.k.CancelTimer(t.timer)
}

func (t *PeriodicTask) onRelease(c *kernel.DpcContext) {
	if !t.running {
		return
	}
	t.releases++
	rel := c.Now()
	due := rel.Add(t.Deadline)
	switch t.Modality {
	case DPCBased:
		if t.Compute > 0 {
			c.Charge(t.Compute)
		}
		t.pendingDue = due
		t.pendingRel = rel
		t.pending = true
		t.complete(c.Now())
	case ThreadBased:
		if t.pending {
			// Previous release still in flight: this release is skipped
			// and counts as a miss (its buffer was never produced).
			t.skips++
			t.misses++
			return
		}
		t.pending = true
		t.pendingDue = due
		t.pendingRel = rel
		c.SetEvent(t.ev)
	}
}

func (t *PeriodicTask) complete(now sim.Time) {
	if !t.pending {
		return
	}
	t.pending = false
	t.completions++
	if now.After(t.pendingDue) {
		t.misses++
		if late := now.Sub(t.pendingDue); late > t.maxLateness {
			t.maxLateness = late
		}
	}
	if t.OnComplete != nil {
		t.OnComplete(now, now.Sub(t.pendingRel))
	}
}

// Releases, Completions, Misses and Skips report progress counters.
func (t *PeriodicTask) Releases() uint64 { return t.releases }

// Completions returns the number of finished activations.
func (t *PeriodicTask) Completions() uint64 { return t.completions }

// Misses returns deadline misses (including skipped releases).
func (t *PeriodicTask) Misses() uint64 { return t.misses }

// Skips returns releases dropped because the previous was still running.
func (t *PeriodicTask) Skips() uint64 { return t.skips }

// MaxLateness returns the worst observed completion lateness.
func (t *PeriodicTask) MaxLateness() sim.Cycles { return t.maxLateness }

// MissRate returns misses per release.
func (t *PeriodicTask) MissRate() float64 {
	if t.releases == 0 {
		return 0
	}
	return float64(t.misses) / float64(t.releases)
}
