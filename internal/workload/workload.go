// Package workload implements the paper's four application stress classes
// (§3.1) as stochastic activity generators driving a simulated machine:
//
//   - Business: Business Winstone 97 (database/publishing/word processing)
//     driven by MS-Test "at speeds much faster than possible for a human" —
//     dense UI input, periodic file copy bursts, install/uninstall sweeps;
//   - Workstation: High-End Winstone 97 (CAD, photo editing, compilation) —
//     long CPU bursts, large file I/O, paging pressure on a 32 MB system;
//   - Games: Freespace/Unreal demo loops — a 30 fps frame loop with heavy
//     display/sound driver activity and level-load bursts;
//   - Web: browsing over a LAN "at speeds far in excess of a phone line" —
//     download bursts through the NIC, page rendering, media clips.
//
// Generators are OS-agnostic: the same stress runs against either
// personality, exactly as the paper runs the same Winstone scripts on both
// systems. Each class also carries the paper's time-compression factor
// (§3.1: MS-Test drives input ≥10× human speed for business, ~5× for
// workstation, 1× for game demos, ~4× for LAN web browsing), used to map
// collection time onto usage horizons for Table 3.
package workload

import (
	"fmt"

	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
)

// Class identifies one of the paper's four stress categories.
type Class int

// The four application stress loads of §3.1.
const (
	Business Class = iota
	Workstation
	Games
	Web
)

// Classes lists all four in the paper's presentation order.
var Classes = []Class{Business, Workstation, Games, Web}

// String implements fmt.Stringer, matching the paper's legend labels.
func (c Class) String() string {
	switch c {
	case Business:
		return "Business Apps"
	case Workstation:
		return "Workstation Apps"
	case Games:
		return "3D Games"
	case Web:
		return "Web Browsing"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// TimeCompression returns how much faster than real use the stress runs
// (§3.1): one hour of collection equals this many hours of heavy use.
func (c Class) TimeCompression() float64 {
	switch c {
	case Business:
		return 10 // "Winstone can drive input at least ten times as quickly"
	case Workstation:
		return 5 // "a more conservative 5 to 1 ratio"
	case Games:
		return 1 // "canned sequences of game play ... no speedup"
	case Web:
		return 4 // "an overall 4 to 1 ratio" for LAN browsing
	default:
		return 1
	}
}

// Usage returns the heavy-use pattern for Table 3's day/week horizons.
func (c Class) Usage() stats.UsageModel {
	switch c {
	case Business:
		return stats.OfficeUsage
	case Workstation:
		return stats.WorkstationUsage
	default:
		return stats.ConsumerUsage
	}
}

// Generator drives stress activity onto a machine until stopped.
type Generator struct {
	class Class
	m     *ospersona.Machine
	rng   *sim.RNG
	app   *ospersona.App
	on    bool
}

// New creates a generator of the given class bound to a machine. Start
// begins the stress; the paper's procedure is to start the measurement
// tools first, then launch the benchmark (§3.1.1) — follow the same order.
func New(class Class, m *ospersona.Machine) *Generator {
	return &Generator{
		class: class,
		m:     m,
		rng:   m.Eng.RNG().Split(),
	}
}

// Class returns the generator's stress class.
func (g *Generator) Class() Class { return g.class }

// Start launches the stress activity.
func (g *Generator) Start() {
	if g.on {
		panic("workload: generator already started")
	}
	g.on = true
	g.app = g.m.NewApp(fmt.Sprintf("stress.%v", g.class))
	switch g.class {
	case Business:
		g.startBusiness()
	case Workstation:
		g.startWorkstation()
	case Games:
		g.startGames()
	case Web:
		g.startWeb()
	}
}

// Stop halts further activity generation (in-flight operations drain; the
// audio pipeline started by the games/web classes stops with it).
func (g *Generator) Stop() {
	if !g.on {
		return
	}
	g.on = false
	if g.class == Games || g.class == Web {
		g.m.StopAudio()
	}
}

// delay draws one mean-exponential spacing (mean in ms) in cycles.
func (g *Generator) delay(mean float64) sim.Cycles {
	d := sim.Cycles(g.rng.Exp(float64(g.m.MS(mean))))
	if d < 1 {
		d = 1
	}
	return d
}

// after schedules fn once after a mean-exponential delay, if still running.
func (g *Generator) after(mean float64, label string, fn func()) {
	g.m.Eng.After(g.delay(mean), label, func(sim.Time) {
		if g.on {
			fn()
		}
	})
}

// loop schedules fn repeatedly with mean-exponential spacing (ms). The tick
// closure is allocated once per loop and re-armed on each firing, not
// wrapped anew per event: generators keep a dozen loops ticking for the
// whole collection, so per-firing closures would dominate the allocation
// profile.
func (g *Generator) loop(mean float64, label string, fn func()) {
	var tick func(sim.Time)
	tick = func(sim.Time) {
		if !g.on {
			return
		}
		fn()
		g.m.Eng.After(g.delay(mean), label, tick)
	}
	g.m.Eng.After(g.delay(mean), label, tick)
}

// --- Business Winstone 97 ---------------------------------------------------

func (g *Generator) startBusiness() {
	m := g.m
	// MS-Test keystroke/menu stream: a UI event every ~8 ms of activity,
	// in on/off bursts (scripted actions separated by application work).
	g.loop(8, "biz.ui", func() { m.UIEvent() })
	// Document work: spreadsheet recalcs, reformats — foreground compute.
	g.loop(120, "biz.compute", func() {
		g.app.Submit(ospersona.Op{Compute: sim.Cycles(g.rng.Exp(float64(m.MS(25))))})
	})
	// Saves and implicit "save as" copies: runs of writes.
	g.loop(400, "biz.save", func() {
		n := 2 + g.rng.Intn(8)
		for i := 0; i < n; i++ {
			m.FileOp(16*1024+g.rng.Intn(128*1024), true, nil)
		}
	})
	// Small reads: document and DLL traffic.
	g.loop(60, "biz.read", func() {
		m.FileOp(4*1024+g.rng.Intn(64*1024), false, nil)
	})
	// Install/uninstall sweeps between application suites ("each
	// application is installed via an InstallShield script, run ... and
	// then uninstalled"): extended file copying, the activity the paper
	// flags as the likely source of long latencies (§3.1.1).
	g.loop(8000, "biz.install", func() {
		n := 40 + g.rng.Intn(80)
		for i := 0; i < n; i++ {
			g.app.Submit(ospersona.Op{
				ReadBytes:  32*1024 + g.rng.Intn(256*1024),
				WriteBytes: 32*1024 + g.rng.Intn(256*1024),
			})
		}
	})
}

// --- High-End Winstone 97 ----------------------------------------------------

func (g *Generator) startWorkstation() {
	m := g.m
	// CAD/photo-editing/compile: long foreground compute bursts.
	g.loop(150, "wks.compute", func() {
		g.app.Submit(ospersona.Op{Compute: sim.Cycles(g.rng.Exp(float64(m.MS(80))))})
	})
	// Large file I/O: image loads, object files.
	g.loop(90, "wks.io", func() {
		g.app.Submit(ospersona.Op{ReadBytes: 128*1024 + g.rng.Intn(1<<20)})
	})
	g.loop(300, "wks.write", func() {
		m.FileOp(64*1024+g.rng.Intn(512*1024), true, nil)
	})
	// 32 MB of RAM under workstation apps: recurring paging bursts.
	g.loop(250, "wks.paging", func() {
		m.PageFaultBurst(4 + g.rng.Intn(24))
	})
	// Occasional UI (dialogs, tool switches).
	g.loop(100, "wks.ui", func() { m.UIEvent() })
}

// --- 3D games ----------------------------------------------------------------

func (g *Generator) startGames() {
	m := g.m
	// The frame loop: ~30 fps, each frame rendering plus game logic.
	g.loop(33, "game.frame", func() {
		m.RenderFrame()
		g.app.Submit(ospersona.Op{Compute: sim.Cycles(g.rng.Exp(float64(m.MS(18))))})
	})
	// Continuous game audio.
	m.StartAudio(ospersona.AudioConfig{PeriodMS: 16})
	// Level/asset streaming from disk.
	g.loop(700, "game.stream", func() {
		n := 2 + g.rng.Intn(6)
		for i := 0; i < n; i++ {
			m.FileOp(64*1024+g.rng.Intn(512*1024), false, nil)
		}
	})
	// Input sampling (far below MS-Test rates).
	g.loop(50, "game.input", func() { m.UIEvent() })
}

// --- Web browsing -------------------------------------------------------------

func (g *Generator) startWeb() {
	m := g.m
	// Page downloads over the LAN: bursts of full-size frames.
	g.loop(250, "web.download", func() {
		bursts := 1 + g.rng.Intn(4)
		for i := 0; i < bursts; i++ {
			i := i
			g.m.Eng.After(sim.Cycles(i)*m.MS(15), "web.burst", func(sim.Time) {
				if g.on {
					m.NetDeliver(10+g.rng.Intn(40), 1460)
				}
			})
		}
		// Cache writes for the downloaded objects.
		m.FileOp(16*1024+g.rng.Intn(256*1024), true, nil)
	})
	// Rendering and viewer launches (Acrobat, Ghostview, Word — §3.1.3).
	g.loop(500, "web.render", func() {
		g.app.Submit(ospersona.Op{
			Compute:   sim.Cycles(g.rng.Exp(float64(m.MS(60)))),
			ReadBytes: 64*1024 + g.rng.Intn(512*1024),
		})
	})
	// Scrolling and link clicks.
	g.loop(40, "web.ui", func() { m.UIEvent() })
	// Streaming media clips (RealPlayer/Shockwave): periodic audio.
	m.StartAudio(ospersona.AudioConfig{PeriodMS: 24})
}
