// Frontier-conformance shape test: the interrupt-storm sweep must
// reproduce the paper's ordering at the livelock frontier. Windows 98
// spends more cycles per indicated packet than NT (VxD emulation and the
// longer masked windows, §4.2), so its receive path collapses at a
// strictly lower offered rate: the Win98 knee sits below the NT4 knee in
// every matched moderation mode, and at a matched offered load the Win98
// packet-service tail is the worse one. Like the paper-conformance suite,
// this runs a short fixed-seed campaign through internal/campaign, so the
// invariants hold identically at any worker count.
package wdmlat_test

import (
	"testing"
	"time"

	"wdmlat/internal/campaign"
	"wdmlat/internal/frontier"
	"wdmlat/internal/hw"
	"wdmlat/internal/ospersona"
)

func TestFrontierKneeOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("frontier sweep is a few seconds of simulation; skipped in -short")
	}
	run := campaign.New(campaign.Options{BaseSeed: conformanceSeed})
	fs, err := frontier.Run(run, frontier.Options{
		OSes:        []ospersona.OS{ospersona.NT4, ospersona.Win98},
		Modes:       []hw.Moderation{hw.ModeratePerWindow},
		MinPPS:      16384,
		MaxPPS:      262144,
		BisectSteps: 2,
		Duration:    2 * time.Second,
		Runs:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if werr := run.Wait(); werr != nil {
		t.Fatal(werr)
	}
	if len(fs) != 2 {
		t.Fatalf("%d tracks, want 2", len(fs))
	}
	nt, w98 := fs[0], fs[1]

	// Both personas must saturate inside the sweep range: a censored track
	// means the criterion (or the storm model) stopped biting.
	for _, f := range fs {
		if f.Censored {
			t.Fatalf("%v track censored: nothing saturated up to the ceiling", f.OS)
		}
		if f.Knee == 0 {
			t.Fatalf("%v track saturated at the sweep floor", f.OS)
		}
	}

	// The headline ordering: Win98 collapses strictly first.
	if w98.Knee >= nt.Knee {
		t.Fatalf("Win98 knee %.0f pps not strictly below NT4 knee %.0f pps",
			w98.Knee, nt.Knee)
	}

	// At the shared floor rate — comfortably sustainable for both — the
	// Win98 packet-arrival→ISR tail must already be the worse one (§4.2's
	// per-packet cost gap, visible long before the knee).
	ntLat := probeTail(t, &nt, 16384)
	w98Lat := probeTail(t, &w98, 16384)
	if w98Lat <= ntLat {
		t.Fatalf("Win98 NIC p99.9 %.3f ms not above NT4's %.3f ms at 16384 pps",
			w98Lat, ntLat)
	}
}

// probeTail returns the packet-service p99.9 in milliseconds at an offered
// rate the track is known to have probed.
func probeTail(t *testing.T, f *frontier.Frontier, pps float64) float64 {
	t.Helper()
	for _, p := range f.Probes {
		if p.PPS == pps {
			if p.Result.NicLat == nil || p.Result.NicLat.N() == 0 {
				t.Fatalf("%v probe at %.0f pps has no NIC latency histogram", f.OS, pps)
			}
			return p.Result.Freq.Millis(p.Result.NicLat.Quantile(0.999))
		}
	}
	t.Fatalf("%v track never probed %.0f pps", f.OS, pps)
	return 0
}
