package modem_test

import (
	"testing"
	"time"

	"wdmlat/internal/kernel"
	"wdmlat/internal/modem"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
)

func newMachine(t *testing.T, os ospersona.OS, seed uint64) *ospersona.Machine {
	t.Helper()
	m := ospersona.Build(os, ospersona.Options{Seed: seed})
	t.Cleanup(m.Shutdown)
	return m
}

func TestDatapumpRunsCleanOnIdleSystem(t *testing.T) {
	for _, mod := range []modem.Modality{modem.DPCBased, modem.ThreadBased} {
		m := newMachine(t, ospersona.NT4, 1)
		d := modem.Attach(m.Kernel, modem.Config{CycleMS: 8, Buffers: 2, Modality: mod})
		m.Eng.At(1000, "start", func(sim.Time) { d.Start() })
		m.RunFor(m.Freq().Cycles(5 * time.Second))
		if d.Cycles() < 600 {
			t.Fatalf("%v: only %d cycles", mod, d.Cycles())
		}
		if d.Underruns() != 0 {
			t.Fatalf("%v: %d underruns on an idle system", mod, d.Underruns())
		}
	}
}

func TestDatapumpUnderrunsUnderSchedulerLocks(t *testing.T) {
	// Thread-based pump with 8 ms tolerance against recurring 30 ms
	// scheduler locks: must miss buffers. The DPC-based pump must not
	// (locks don't block DPCs).
	run := func(mod modem.Modality) uint64 {
		m := newMachine(t, ospersona.Win98, 3)
		d := modem.Attach(m.Kernel, modem.Config{CycleMS: 8, Buffers: 2, Modality: mod})
		m.Eng.At(1000, "start", func(sim.Time) { d.Start() })
		var inject func(sim.Time)
		inject = func(sim.Time) {
			m.Kernel.InjectEpisode(kernel.LockScheduler, m.MS(30), "VMM", "_Win16Lock")
			m.Eng.After(m.MS(100), "inj", inject)
		}
		m.Eng.After(m.MS(50), "inj", inject)
		m.RunFor(m.Freq().Cycles(10 * time.Second))
		return d.Underruns()
	}
	if u := run(modem.ThreadBased); u == 0 {
		t.Fatal("thread-based pump should underrun under scheduler locks")
	}
	if u := run(modem.DPCBased); u != 0 {
		t.Fatalf("DPC-based pump underran %d times under scheduler locks", u)
	}
}

func TestDatapumpUnderrunsUnderMaskedInterrupts(t *testing.T) {
	// Interrupt-masked windows delay the PIT itself: both modalities
	// suffer when the mask exceeds the tolerance.
	m := newMachine(t, ospersona.Win98, 5)
	d := modem.Attach(m.Kernel, modem.Config{CycleMS: 4, Buffers: 2, Modality: modem.DPCBased})
	m.Eng.At(1000, "start", func(sim.Time) { d.Start() })
	var inject func(sim.Time)
	inject = func(sim.Time) {
		m.Kernel.InjectEpisode(kernel.MaskInterrupts, m.MS(12), "VXD", "_Cli")
		m.Eng.After(m.MS(80), "inj", inject)
	}
	m.Eng.After(m.MS(40), "inj", inject)
	m.RunFor(m.Freq().Cycles(10 * time.Second))
	if d.Underruns() == 0 {
		t.Fatal("12 ms masked windows must underrun a 4 ms tolerance pump")
	}
}

func TestMoreBufferingReducesUnderruns(t *testing.T) {
	run := func(buffers int) uint64 {
		m := newMachine(t, ospersona.Win98, 7)
		d := modem.Attach(m.Kernel, modem.Config{CycleMS: 8, Buffers: buffers, Modality: modem.ThreadBased})
		m.Eng.At(1000, "start", func(sim.Time) { d.Start() })
		var inject func(sim.Time)
		inject = func(sim.Time) {
			m.Kernel.InjectEpisode(kernel.LockScheduler, m.MS(20), "VMM", "_Win16Lock")
			m.Eng.After(m.MS(150), "inj", inject)
		}
		m.Eng.After(m.MS(40), "inj", inject)
		m.RunFor(m.Freq().Cycles(20 * time.Second))
		return d.Underruns()
	}
	few, many := run(2), run(5)
	if many >= few {
		t.Fatalf("buffers 5 underruns (%d) should be < buffers 2 (%d)", many, few)
	}
}

func TestMTTFSeconds(t *testing.T) {
	m := newMachine(t, ospersona.Win98, 9)
	d := modem.Attach(m.Kernel, modem.Config{CycleMS: 4, Buffers: 2, Modality: modem.ThreadBased})
	m.Eng.At(1000, "start", func(sim.Time) { d.Start() })
	if _, ok := d.MTTFSeconds(); ok {
		t.Fatal("MTTF should be unavailable before any underrun")
	}
	var inject func(sim.Time)
	inject = func(sim.Time) {
		m.Kernel.InjectEpisode(kernel.LockScheduler, m.MS(25), "VMM", "_X")
		m.Eng.After(m.MS(200), "inj", inject)
	}
	m.Eng.After(m.MS(100), "inj", inject)
	m.RunFor(m.Freq().Cycles(10 * time.Second))
	mttf, ok := d.MTTFSeconds()
	if !ok {
		t.Fatal("expected underruns")
	}
	if mttf <= 0 || mttf > 10 {
		t.Fatalf("MTTF = %v s over a 10 s run", mttf)
	}
}

func TestConfigDefaultsAndTolerance(t *testing.T) {
	c := modem.Config{CycleMS: 6, Buffers: 3}
	if c.ToleranceMS() != 12 {
		t.Fatalf("tolerance = %v", c.ToleranceMS())
	}
	m := newMachine(t, ospersona.NT4, 1)
	d := modem.Attach(m.Kernel, modem.Config{})
	cfg := d.Config()
	if cfg.CycleMS != 8 || cfg.Buffers != 2 || cfg.ComputeFraction != 0.25 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.ThreadPriority != kernel.RealtimeHigh {
		t.Fatalf("default priority = %d", cfg.ThreadPriority)
	}
}

func TestPeriodicTaskMeetsDeadlinesWhenIdle(t *testing.T) {
	for _, mod := range []modem.Modality{modem.DPCBased, modem.ThreadBased} {
		m := newMachine(t, ospersona.NT4, 1)
		pt := modem.NewPeriodicTask(m.Kernel, "p", m.MS(8), m.MS(2), mod, 28)
		m.Eng.At(1000, "start", func(sim.Time) { pt.Start() })
		m.RunFor(m.Freq().Cycles(5 * time.Second))
		if pt.Releases() < 600 {
			t.Fatalf("%v: %d releases", mod, pt.Releases())
		}
		if pt.Misses() != 0 {
			t.Fatalf("%v: %d misses on idle system", mod, pt.Misses())
		}
		if pt.Completions() < pt.Releases()-1 {
			t.Fatalf("%v: completions %d vs releases %d", mod, pt.Completions(), pt.Releases())
		}
	}
}

func TestPeriodicTaskReportsMissesUnderLoad(t *testing.T) {
	m := newMachine(t, ospersona.Win98, 11)
	pt := modem.NewPeriodicTask(m.Kernel, "p", m.MS(8), m.MS(2), modem.ThreadBased, 28)
	m.Eng.At(1000, "start", func(sim.Time) { pt.Start() })
	var inject func(sim.Time)
	inject = func(sim.Time) {
		m.Kernel.InjectEpisode(kernel.LockScheduler, m.MS(40), "VMM", "_X")
		m.Eng.After(m.MS(120), "inj", inject)
	}
	m.Eng.After(m.MS(60), "inj", inject)
	m.RunFor(m.Freq().Cycles(10 * time.Second))
	if pt.Misses() == 0 {
		t.Fatal("expected deadline misses")
	}
	if pt.MissRate() <= 0 || pt.MissRate() > 1 {
		t.Fatalf("miss rate = %v", pt.MissRate())
	}
	if pt.Skips() == 0 {
		t.Fatal("40 ms locks should skip whole releases of an 8 ms task")
	}
	if pt.MaxLateness() == 0 {
		t.Fatal("max lateness not recorded")
	}
}

func TestPeriodicTaskStop(t *testing.T) {
	m := newMachine(t, ospersona.NT4, 1)
	pt := modem.NewPeriodicTask(m.Kernel, "p", m.MS(10), m.MS(1), modem.DPCBased, 0)
	m.Eng.At(1000, "start", func(sim.Time) { pt.Start() })
	m.RunFor(m.Freq().Cycles(time.Second))
	pt.Stop()
	n := pt.Releases()
	m.RunFor(m.Freq().Cycles(time.Second))
	if pt.Releases() != n {
		t.Fatal("releases continued after Stop")
	}
}

func TestDpcDatapumpDelaysOtherDpcs(t *testing.T) {
	// The paper's §6 point: multi-millisecond computations in "interrupt
	// context" impact everyone else. A DPC-based pump with 25% of a 16 ms
	// cycle (4 ms at DISPATCH) must stretch another driver's DPC latency.
	measure := func(withPump bool) sim.Cycles {
		m := newMachine(t, ospersona.NT4, 13)
		if withPump {
			d := modem.Attach(m.Kernel, modem.Config{CycleMS: 16, Buffers: 2, Modality: modem.DPCBased})
			m.Eng.At(1000, "start", func(sim.Time) { d.Start() })
		}
		var worst sim.Cycles
		probe := kernel.NewDPC("probe", kernel.MediumImportance, func(c *kernel.DpcContext) {})
		m.Kernel.SetHooks(kernel.Hooks{
			DpcStarted: func(dpc *kernel.DPC, queued, started sim.Time) {
				if dpc == probe {
					if lat := started.Sub(queued); lat > worst {
						worst = lat
					}
				}
			},
		})
		var fire func(sim.Time)
		fire = func(sim.Time) {
			m.Kernel.QueueDpc(probe)
			m.Eng.After(m.MS(3), "fire", fire)
		}
		m.Eng.After(m.MS(5), "fire", fire)
		m.RunFor(m.Freq().Cycles(5 * time.Second))
		return worst
	}
	without := measure(false)
	with := measure(true)
	if with < 10*without {
		t.Fatalf("DPC pump barely affected other DPCs: %d vs %d", with, without)
	}
}

func TestPeriodicTaskExternallyPaced(t *testing.T) {
	m := newMachine(t, ospersona.NT4, 17)
	pt := modem.NewPeriodicTask(m.Kernel, "p", m.MS(10), m.MS(2), modem.ThreadBased, 28)
	pt.ExternallyPaced = true
	var lats []sim.Cycles
	pt.OnComplete = func(now sim.Time, lat sim.Cycles) { lats = append(lats, lat) }

	// The external pacer: a kernel timer DPC standing in for the vblank.
	pacer := kernel.NewDPC("pacer", kernel.MediumImportance, func(c *kernel.DpcContext) {
		pt.Release(c)
	})
	tm := m.Kernel.NewTimer("pacer")
	m.Kernel.SetPeriodicTimer(tm, m.MS(10), m.MS(10), pacer)
	m.Eng.At(1000, "start", func(sim.Time) { pt.Start() })
	m.RunFor(m.Freq().Cycles(2 * time.Second))

	if pt.Releases() < 150 {
		t.Fatalf("externally paced releases = %d, want ~200", pt.Releases())
	}
	if pt.Misses() != 0 {
		t.Fatalf("%d misses on idle system", pt.Misses())
	}
	if uint64(len(lats)) != pt.Completions() {
		t.Fatalf("OnComplete saw %d activations, completions %d", len(lats), pt.Completions())
	}
	for _, l := range lats {
		if l < m.MS(2) || l > m.MS(10) {
			t.Fatalf("release-to-complete latency %d outside [compute, deadline]", l)
		}
	}
}

func TestPeriodicTaskReleaseRequiresExternalPacing(t *testing.T) {
	m := newMachine(t, ospersona.NT4, 1)
	pt := modem.NewPeriodicTask(m.Kernel, "p", m.MS(10), m.MS(1), modem.DPCBased, 0)
	probe := kernel.NewDPC("probe", kernel.MediumImportance, func(c *kernel.DpcContext) {
		defer func() {
			if recover() == nil {
				t.Error("Release on a timer-paced task should panic")
			}
		}()
		pt.Release(c)
	})
	tm := m.Kernel.NewTimer("probe")
	m.Kernel.SetPeriodicTimer(tm, 1000, m.MS(100), probe)
	pt.Start()
	m.RunFor(m.MS(5))
}
