package stats

import (
	"encoding/json"
	"reflect"
	"testing"

	"wdmlat/internal/sim"
)

// TestHistogramCodecRoundTrip: decode(encode(h)) must be field-for-field
// identical — bucket counts, float accumulators (bit-exact), and extrema —
// because resumed campaigns replay stored histograms into byte-identical
// artifacts.
func TestHistogramCodecRoundTrip(t *testing.T) {
	h := NewHistogram(sim.DefaultFreq)
	for _, v := range []sim.Cycles{0, 1, 2, 3, 31, 32, 33, 999, 123456, 1 << 39, 1 << 41} {
		h.Add(v)
	}
	h.AddMillis(0.001)
	h.AddMillis(17.3)

	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	got := new(Histogram)
	if err := json.Unmarshal(data, got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, got) {
		t.Fatalf("round-trip changed histogram:\nwant %+v\ngot  %+v", h, got)
	}
	if got.Mean() != h.Mean() || got.StdDev() != h.StdDev() {
		t.Fatalf("float accumulators not bit-exact after round-trip")
	}
}

// TestHistogramCodecEmpty: an empty histogram's min/max sentinels survive
// the round-trip, so Min()/Max() still report 0 afterwards.
func TestHistogramCodecEmpty(t *testing.T) {
	h := NewHistogram(sim.DefaultFreq)
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	got := new(Histogram)
	if err := json.Unmarshal(data, got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, got) {
		t.Fatalf("empty histogram round-trip not identical")
	}
	if got.Min() != 0 || got.Max() != 0 || got.N() != 0 {
		t.Fatalf("empty histogram semantics changed: min %d max %d n %d", got.Min(), got.Max(), got.N())
	}
}

// TestHistogramCodecRejectsBadInput: corrupt wire data errors instead of
// silently producing a broken histogram.
func TestHistogramCodecRejectsBadInput(t *testing.T) {
	for _, bad := range []string{
		`{"freq":0,"n":0}`,                        // non-positive frequency
		`{"freq":300000000,"counts":{"99999":1}}`, // bucket index out of range
		`{"freq":300000000,"counts":{"-1":1}}`,    // negative bucket index
	} {
		if err := json.Unmarshal([]byte(bad), new(Histogram)); err == nil {
			t.Errorf("decode of %s succeeded, want error", bad)
		}
	}
}
