package core_test

import (
	"testing"
	"time"

	"wdmlat/internal/core"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/stats"
	"wdmlat/internal/workload"
)

// run is a short-duration helper for assertions on distribution shape.
func run(t *testing.T, cfg core.RunConfig) *core.Result {
	t.Helper()
	if cfg.Duration == 0 {
		cfg.Duration = 30 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return core.Run(cfg)
}

func ms(r *core.Result, h *stats.Histogram, q float64) float64 {
	return r.Freq.Millis(h.Quantile(q))
}

// TestPaperHeadlineOrdering asserts the paper's central conclusions (§4.2,
// §6) on every workload class:
//
//  1. On NT, high real-time priority threads receive service nearly
//     indistinguishable from DPCs.
//  2. A driver on NT — DPC or RT-28 thread — is at least an order of
//     magnitude better served than the same WDM driver's *threads* on 98.
//  3. On Win98, DPC service is an order of magnitude better than RT thread
//     service.
//  4. On NT, the default RT priority (24) is an order of magnitude worse
//     than 28 (the work-item worker shares priority 24).
func TestPaperHeadlineOrdering(t *testing.T) {
	for _, wl := range workload.Classes {
		wl := wl
		t.Run(wl.String(), func(t *testing.T) {
			t.Parallel()
			// Web tails are driven by download bursts that are sparser
			// than the other classes' events; give them a longer window.
			dur := 30 * time.Second
			if wl == workload.Web {
				dur = 2 * time.Minute
			}
			nt := run(t, core.RunConfig{OS: ospersona.NT4, Workload: wl, Seed: 2, Duration: dur})
			w98 := run(t, core.RunConfig{OS: ospersona.Win98, Workload: wl, Seed: 2, Duration: dur})

			ntDpc999 := ms(nt, nt.DpcIntOracle, 0.999)
			nt28t999 := ms(nt, nt.Thread[28], 0.999)
			nt24max := nt.Freq.Millis(nt.Thread[24].Max())
			nt28max := nt.Freq.Millis(nt.Thread[28].Max())
			w98t28max := w98.Freq.Millis(w98.Thread[28].Max())
			w98dpc999 := ms(w98, w98.DpcIntOracle, 0.999)
			w98t28p999 := ms(w98, w98.Thread[28], 0.999)

			// Short windows under-sample the rarest events (the paper
			// collects hours; Table 3's web 14 ms events occur a few times
			// per collection-hour), so the web class is held to a looser
			// multiplier here; the bench harness demonstrates the full
			// order-of-magnitude gaps on long runs.
			maxGap := 4.0
			if wl == workload.Web {
				maxGap = 2.0
			}

			// (1) NT: RT-28 thread ≈ DPC (within a few context switches).
			if nt28t999 > ntDpc999+0.3 {
				t.Errorf("NT RT-28 p99.9 %.3f ms far above DPC p99.9 %.3f ms", nt28t999, ntDpc999)
			}
			// (2) Win98 thread service clearly worse than NT's in the
			// worst case (the quantity a real-time driver designs for).
			if w98t28max < maxGap*nt28max {
				t.Errorf("Win98 RT-28 worst %.2f ms vs NT %.2f ms: gap collapsed", w98t28max, nt28max)
			}
			// (3) Win98: DPC p99.9 far below thread p99.9.
			if w98t28p999 < 2*w98dpc999 && w98t28max < 5*w98dpc999 {
				t.Errorf("Win98 thread tail (p99.9 %.3f, max %.3f) not clearly above DPC tail %.3f",
					w98t28p999, w98t28max, w98dpc999)
			}
			// (4) NT: RT-24 worst an order of magnitude above RT-28 worst.
			if nt24max < 5*nt28max {
				t.Errorf("NT RT-24 worst %.2f ms vs RT-28 worst %.2f ms: work-item effect missing", nt24max, nt28max)
			}
		})
	}
}

// TestNTWorstCaseBelowModemSlack is the §5.1 claim: "the worst case
// latencies for Windows NT are uniformly below the minimum modem slack time
// of 3 milliseconds (= cycle time of 4 ms - 1 ms of computation), we forgo
// the analysis". True latencies (oracle) must stay under 3 ms for DPCs and
// RT-28 threads on every workload.
func TestNTWorstCaseBelowModemSlack(t *testing.T) {
	for _, wl := range workload.Classes {
		wl := wl
		t.Run(wl.String(), func(t *testing.T) {
			t.Parallel()
			r := run(t, core.RunConfig{OS: ospersona.NT4, Workload: wl, Seed: 3, Duration: time.Minute})
			if got := r.Freq.Millis(r.DpcIntOracle.Max()); got >= 3 {
				t.Errorf("NT DPC-interrupt worst %.2f ms >= 3 ms modem slack", got)
			}
			if got := r.Freq.Millis(r.Thread[28].Max()); got >= 3 {
				t.Errorf("NT RT-28 thread worst %.2f ms >= 3 ms modem slack", got)
			}
		})
	}
}

// TestVirusScannerFigure5: with the Plus! 98 virus scanner on, 16 ms thread
// latencies occur about two orders of magnitude more often (§4.3,
// Figure 5): "about every 1000 times that our thread does a wait" versus
// "once in 165,000 waits" without.
func TestVirusScannerFigure5(t *testing.T) {
	clean := run(t, core.RunConfig{OS: ospersona.Win98, Workload: workload.Business, Seed: 4, Duration: time.Minute})
	dirty := run(t, core.RunConfig{OS: ospersona.Win98, Workload: workload.Business, Seed: 4, Duration: time.Minute, VirusScanner: true})

	at16 := dirty.Freq.FromMillis(15)
	pClean := clean.Thread[24].CCDF(at16)
	pDirty := dirty.Thread[24].CCDF(at16)
	if pDirty < 3e-4 {
		t.Fatalf("scanner 15+ms rate %.2g too low (paper: ~1e-3)", pDirty)
	}
	if pClean > pDirty/10 {
		t.Fatalf("scanner effect too weak: clean %.2g vs dirty %.2g", pClean, pDirty)
	}
}

// TestCauseToolTable4: with the default sound scheme on Windows 98, long
// thread-latency episodes trace into SYSAUDIO / KMIXER / VMM / NTKERN
// frames, as in Table 4.
func TestCauseToolTable4(t *testing.T) {
	r := run(t, core.RunConfig{
		OS:             ospersona.Win98,
		Workload:       workload.Business,
		Seed:           5,
		Duration:       2 * time.Minute,
		SoundScheme:    true,
		CauseAnalysis:  true,
		CauseThreshold: 6 * time.Millisecond,
	})
	if len(r.Episodes) == 0 {
		t.Fatal("no latency episodes captured")
	}
	audioModules := map[string]bool{"SYSAUDIO": true, "KMIXER": true, "VMM": true, "NTKERN": true}
	found := false
	for _, ep := range r.Episodes {
		for _, fc := range ep.Analysis() {
			if audioModules[fc.Frame.Module] {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no sound-scheme module in %d episodes", len(r.Episodes))
	}
}

// TestCauseAnalysisIgnoredOnNT: the IDT hook needs the Win9x legacy
// interface; on NT the request must be ignored, not honored.
func TestCauseAnalysisIgnoredOnNT(t *testing.T) {
	r := run(t, core.RunConfig{
		OS:            ospersona.NT4,
		Workload:      workload.Business,
		Seed:          6,
		Duration:      10 * time.Second,
		CauseAnalysis: true,
	})
	if r.Episodes != nil {
		t.Fatal("NT run should not carry cause-tool episodes")
	}
	if r.IntLat != nil {
		t.Fatal("NT run should not have the legacy interrupt-latency split")
	}
}

// TestThroughputSection42: the Winstone-style macrobenchmark cannot tell
// the systems apart (§4.2: ~10% average delta, 20% max) even though the
// latency distributions differ by orders of magnitude.
func TestThroughputSection42(t *testing.T) {
	nt := core.RunThroughput(ospersona.NT4, 60, 7)
	w98 := core.RunThroughput(ospersona.Win98, 60, 7)
	if d := core.ThroughputDelta(nt, w98); d > 0.25 {
		t.Fatalf("throughput delta %.0f%% exceeds the paper's ~10-20%% band", d*100)
	}
	if nt.Score() <= 0 || w98.Score() <= 0 {
		t.Fatal("scores must be positive")
	}
}

func TestResultMetadata(t *testing.T) {
	r := run(t, core.RunConfig{OS: ospersona.Win98, Workload: workload.Business, Seed: 8, Duration: 10 * time.Second})
	if r.OSName == "" || r.Samples == 0 {
		t.Fatalf("result incomplete: %+v", r)
	}
	if r.HighPriority() != 28 || r.MediumPriority() != 24 {
		t.Fatalf("priorities: %d/%d", r.HighPriority(), r.MediumPriority())
	}
	// Collection span ~ warmup + duration.
	sec := r.Freq.Duration(r.Observed).Seconds()
	if sec < 10 || sec > 11 {
		t.Fatalf("observed %.2f s", sec)
	}
	// Business compression is 10x: usage-equivalent span ~102 s.
	usage := r.Freq.Duration(r.UsageObserved()).Seconds()
	if usage < 100 || usage > 105 {
		t.Fatalf("usage observed %.2f s", usage)
	}
	// Worst-case rows are ordered hourly <= daily <= weekly.
	wc := r.WorstCaseRow(r.Thread[28])
	if !(wc[0] <= wc[1] && wc[1] <= wc[2]) {
		t.Fatalf("worst-case row out of order: %v", wc)
	}
}

func TestIdleRun(t *testing.T) {
	r := run(t, core.RunConfig{OS: ospersona.NT4, Idle: true, Seed: 9, Duration: 10 * time.Second})
	// An idle system is what traditional microbenchmarks measure; its
	// latencies are tiny and miss everything interesting (§1.2).
	if got := r.Freq.Millis(r.Thread[28].Max()); got > 0.1 {
		t.Fatalf("idle NT RT-28 worst %.3f ms", got)
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := core.RunConfig{OS: ospersona.Win98, Workload: workload.Web, Seed: 10, Duration: 10 * time.Second}
	a, b := core.Run(cfg), core.Run(cfg)
	if a.Samples != b.Samples {
		t.Fatalf("samples differ: %d vs %d", a.Samples, b.Samples)
	}
	if a.Thread[28].Max() != b.Thread[28].Max() || a.DpcInt.Mean() != b.DpcInt.Mean() {
		t.Fatal("distributions differ between identical runs")
	}
	if a.Counters != b.Counters {
		t.Fatalf("counters differ:\n%+v\n%+v", a.Counters, b.Counters)
	}
}

func TestSystemConfigTable2(t *testing.T) {
	nt := core.SystemConfigFor(ospersona.NT4)
	w98 := core.SystemConfigFor(ospersona.Win98)
	if nt.Filesystem != "NTFS" || w98.Filesystem != "FAT32" {
		t.Fatalf("filesystems: %q / %q", nt.Filesystem, w98.Filesystem)
	}
	if nt.Processor != w98.Processor || nt.Memory != w98.Memory {
		t.Fatal("shared hardware rows must match")
	}
	if nt.Audio == w98.Audio {
		t.Fatal("audio solutions differ in Table 2")
	}
	if w98.OptionalPack == "" || nt.OptionalPack != "" {
		t.Fatal("Plus! 98 pack is a Win98 row")
	}
}
