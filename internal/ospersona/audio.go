package ospersona

import (
	"wdmlat/internal/kernel"
	"wdmlat/internal/sim"
)

// audioPipeline is the low-latency soft-audio path (§1: "a kernel mode ...
// low latency soft audio codec"): the sound device completes a buffer every
// period, the driver DPC signals the mixer thread, the mixer computes the
// next buffer and hands it back to the hardware. If the mixer thread is
// delayed past the buffered slack, the device underruns — audible breakup,
// the user-visible symptom Figure 5's virus-scanner data explains.
type audioPipeline struct {
	m        *Machine
	ev       *kernel.Event
	thread   *kernel.Thread
	mixCost  sim.Dist
	running  bool
	signaled uint64
	mixes    uint64
}

// AudioConfig configures StartAudio.
type AudioConfig struct {
	// PeriodMS is the buffer length in milliseconds (8–24 ms for real-time
	// audio per Table 1).
	PeriodMS float64
	// Buffers is the hardware queue depth: the pipeline's latency
	// tolerance is (Buffers-1) periods (§1). Default 4 (KMixer-style;
	// Table 1 notes 4 is "more realistic for low latency audio").
	Buffers int
	// MixPriority is the mixer thread priority; KMixer-style engines run
	// at real-time default priority.
	MixPriority int
	// MixCost is the per-buffer mixing computation; defaults to 10–20% of
	// the period.
	MixCost sim.Dist
}

// StartAudio starts the soft-audio pipeline. Underruns are counted by the
// sound device (Machine.Sound.Underruns).
func (m *Machine) StartAudio(cfg AudioConfig) {
	if m.audio != nil && m.audio.running {
		panic("ospersona: audio already running")
	}
	if cfg.PeriodMS <= 0 {
		cfg.PeriodMS = 16
	}
	if cfg.Buffers > 0 {
		m.Sound.SetDepth(cfg.Buffers)
	}
	if cfg.MixPriority == 0 {
		cfg.MixPriority = kernel.RealtimeDefault
	}
	if cfg.MixCost == nil {
		cfg.MixCost = sim.Uniform{
			Lo: sim.Cycles(float64(m.MS(cfg.PeriodMS)) * 0.10),
			Hi: sim.Cycles(float64(m.MS(cfg.PeriodMS)) * 0.20),
		}
	}

	a := &audioPipeline{
		m:       m,
		ev:      m.Kernel.NewEvent("KMixer.wake", kernel.SynchronizationEvent),
		mixCost: cfg.MixCost,
		running: true,
	}
	m.audio = a

	prio := cfg.MixPriority
	refill := m.Sound.Refill // bind the method value once, not per buffer
	a.thread = m.Kernel.CreateThread("KMixer", kernel.NormalPriority, func(tc *kernel.ThreadContext) {
		tc.SetPriority(prio)
		for {
			tc.Wait(a.ev)
			tc.ExecDist(a.mixCost)
			a.mixes++
			// Hand the mixed buffer back to the hardware.
			tc.Do(refill)
		}
	})
	m.Sound.Start(m.MS(cfg.PeriodMS))
}

// onBufferComplete runs in the sound DPC on every buffer-complete
// interrupt: it charges the per-buffer audio-path processing from the OS
// profile (KMixer format conversion, buffer bookkeeping) and signals the
// mixer thread.
func (a *audioPipeline) onBufferComplete(c *kernel.DpcContext) {
	if !a.running {
		return
	}
	a.m.apply(a.m.Profile.AudioMix, a.m.Profile.LockFrames, a.m.Profile.MaskFrames, nil)
	if d := a.m.Profile.AudioMix.DpcWork; d != nil {
		c.Charge(d.Draw(a.m.rng))
	}
	a.signaled++
	c.SetEvent(a.ev)
}

// StopAudio halts the pipeline (the mixer thread parks on its event).
func (m *Machine) StopAudio() {
	if m.audio != nil {
		m.audio.running = false
	}
	m.Sound.Stop()
}

// AudioStats reports pipeline progress: buffers signaled to the mixer and
// buffers mixed.
func (m *Machine) AudioStats() (signaled, mixed uint64) {
	if m.audio == nil {
		return 0, 0
	}
	return m.audio.signaled, m.audio.mixes
}
