package ospersona

import (
	"wdmlat/internal/kernel"
	"wdmlat/internal/sim"
)

// Op is one step of an application script.
type Op struct {
	// Compute cycles to execute in thread context.
	Compute sim.Cycles
	// ReadBytes / WriteBytes perform a synchronous file operation of the
	// given size (the app blocks until the disk completes).
	ReadBytes, WriteBytes int
	// UI emits a user-interface event (and its sound-scheme side effects).
	UI bool
	// ThinkMS pauses the app (user think time); MS-Test-driven benchmarks
	// set it to zero ("the complete absence of think time", §3.1.1).
	ThinkMS float64
	// PageFaultPages models a working-set fault burst before the op.
	PageFaultPages int
}

// App is a foreground application: a normal-priority thread executing a
// queue of Ops. Throughput experiments (§4.2) measure how fast an App
// drains a fixed script; stress workloads use Apps to keep the CPU and
// disk busy the way Winstone's applications do.
type App struct {
	m      *Machine
	Name   string
	thread *kernel.Thread
	sem    *kernel.Semaphore
	queue  []Op
	done   uint64
	ioWait *kernel.Event
	idleEv *kernel.Event // signaled every time the queue drains

	// Per-op state plus the closures that consume it, bound once at app
	// creation. Ops are executed millions of times per collection, so the
	// run loop passes these stable funcs to tc.Do instead of constructing a
	// capture per op.
	op       Op  // current op, set by popFn
	ioBytes  int // fileSync arguments for ioFn
	ioWrite  bool
	popFn    func()
	finishFn func()
	pfFn     func()
	uiFn     func()
	ioFn     func()
	ioDoneFn func(*kernel.DpcContext)
}

// NewApp creates an application thread at normal priority.
func (m *Machine) NewApp(name string) *App {
	a := &App{
		m:      m,
		Name:   name,
		sem:    m.Kernel.NewSemaphore(0, 1<<30),
		ioWait: m.Kernel.NewEvent(name+".io", kernel.SynchronizationEvent),
		idleEv: m.Kernel.NewEvent(name+".idle", kernel.NotificationEvent),
	}
	a.popFn = func() {
		a.op = a.queue[0]
		// Shift down in place: reslicing from the front sheds capacity and
		// makes every Submit reallocate.
		n := copy(a.queue, a.queue[1:])
		a.queue[n] = Op{}
		a.queue = a.queue[:n]
	}
	a.finishFn = func() {
		a.done++
		if len(a.queue) == 0 {
			a.m.Kernel.SetEvent(a.idleEv)
		}
	}
	a.pfFn = func() { a.m.PageFaultBurst(a.op.PageFaultPages) }
	a.uiFn = a.m.UIEvent
	a.ioDoneFn = func(c *kernel.DpcContext) { c.SetEvent(a.ioWait) }
	a.ioFn = func() { a.m.FileOp(a.ioBytes, a.ioWrite, a.ioDoneFn) }
	a.thread = m.Kernel.CreateThread(name, kernel.NormalPriority, a.run)
	return a
}

// Submit appends ops to the app's script. Callable from simulation-harness
// context (workload generator events).
func (a *App) Submit(ops ...Op) {
	if len(ops) == 0 {
		return
	}
	a.queue = append(a.queue, ops...)
	a.m.Kernel.ReleaseSemaphore(a.sem, len(ops))
}

// Done returns the number of completed ops.
func (a *App) Done() uint64 { return a.done }

// Pending returns the number of queued, unfinished ops.
func (a *App) Pending() int { return len(a.queue) }

// IdleEvent is signaled whenever the app drains its queue; throughput
// harnesses wait on it to time a script.
func (a *App) IdleEvent() *kernel.Event { return a.idleEv }

func (a *App) run(tc *kernel.ThreadContext) {
	for {
		tc.Wait(a.sem)
		tc.Do(a.popFn)
		a.exec(tc)
		tc.Do(a.finishFn)
	}
}

func (a *App) exec(tc *kernel.ThreadContext) {
	op := a.op
	if op.PageFaultPages > 0 {
		tc.Do(a.pfFn)
	}
	if op.UI {
		tc.Do(a.uiFn)
		tc.Exec(a.m.MS(0.05)) // message pump handling
	}
	if op.ThinkMS > 0 {
		tc.Sleep(a.m.MS(op.ThinkMS))
	}
	if op.Compute > 0 {
		tc.Exec(op.Compute)
	}
	if op.ReadBytes > 0 {
		a.fileSync(tc, op.ReadBytes, false)
	}
	if op.WriteBytes > 0 {
		a.fileSync(tc, op.WriteBytes, true)
	}
}

// fileSync performs a blocking file operation: submit through the machine's
// file-system path and wait for the disk DPC to signal completion.
func (a *App) fileSync(tc *kernel.ThreadContext, bytes int, write bool) {
	a.ioBytes, a.ioWrite = bytes, write
	tc.Do(a.ioFn)
	tc.Wait(a.ioWait)
	tc.Exec(sim.Cycles(bytes/64) + 2000) // copy to user buffer
}
