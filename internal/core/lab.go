// Package core is the public façade of the latency laboratory: it wires a
// simulated machine (ospersona), a stress workload (workload) and the
// measurement drivers (latdriver) into one experiment run, following the
// paper's procedure — assemble the system, start the measurement tools,
// then launch the stress benchmark (§3.1.1) — and returns the measured
// distributions ready for the reporting and analysis layers.
package core

import (
	"fmt"
	"time"

	"wdmlat/internal/causetool"
	"wdmlat/internal/hw"
	"wdmlat/internal/kernel"
	"wdmlat/internal/latdriver"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
	"wdmlat/internal/workload"
)

// RunConfig describes one measurement run: an OS, a stress class, and a
// virtual collection duration.
type RunConfig struct {
	OS ospersona.OS
	// Workload is the stress class; set Idle true to measure an unloaded
	// system instead (the baseline traditional microbenchmarks use, which
	// the paper argues is uninformative — §1.2).
	Workload workload.Class
	Idle     bool
	// Duration is the virtual collection time (default 1 minute). The
	// paper collects hours; longer runs resolve deeper tails.
	Duration time.Duration
	// Warmup precedes the workload launch (tool threads raise priority,
	// caches settle); samples from it are included, as in the paper where
	// the tools start before the benchmark. Default 200 ms.
	Warmup time.Duration
	// Seed drives all randomness (default 1).
	Seed uint64
	// VirusScanner and SoundScheme toggle the Figure 5 / Table 4 factors.
	// The paper's headline data (Figure 4) has both off.
	VirusScanner bool
	SoundScheme  bool
	// DelayTicks overrides the tool's timer delay (default 3).
	DelayTicks int
	// CauseAnalysis attaches the §2.3 latency cause tool (IDT hook) with
	// the given threshold; zero threshold means 5 ms. It requires a
	// personality that allows legacy vector patching (Windows 98) — on NT
	// the request is ignored, matching the paper ("on Windows NT this
	// would require source code access").
	CauseAnalysis  bool
	CauseThreshold time.Duration
	CauseRingSize  int
	// CauseNMI samples via performance-counter NMIs instead of the PIT
	// hook (§6.1 future work): sub-millisecond resolution, visibility
	// inside masked windows — and no legacy interface needed, so it works
	// on the NT personality too.
	CauseNMI bool
	// CauseWalkStack records call trees instead of single frames (§6.1).
	CauseWalkStack bool
	// HighPriority/MediumPriority override the measurement thread
	// priorities (defaults 28 and 24, as in §4.1).
	HighPriority, MediumPriority int
	// WorkerPriority overrides the kernel work-item worker priority
	// (ablation: set it below the real-time band and the NT RT-24 vs
	// RT-28 gap disappears). Zero keeps the default 24.
	WorkerPriority int
	// PITPeriod overrides the 1 kHz PIT programming (ablation: the 67-100
	// Hz machine default trades sampling resolution for intrusiveness).
	PITPeriod time.Duration
	// PIODisk disables the Table 2 DMA configuration (ablation): disk
	// transfers then execute at DISPATCH_LEVEL in the driver.
	PIODisk bool
	// StormPPS, when positive, adds the interrupt-storm workload: a
	// sustained packet stream at this offered rate (packets per second)
	// with per-packet arrival-to-indication accounting. It composes with
	// Idle (storm only — the frontier's configuration) or a stress class.
	StormPPS float64
	// StormBytes is the storm frame size (default 1460 when storming).
	StormBytes int
	// NICModeration selects the card's interrupt-moderation mode; the zero
	// value is the per-window behaviour of every paper-era figure.
	NICModeration hw.Moderation
	// NICGapUS is the moderation spacing in microseconds: the ITR gap, or
	// the adaptive upper bound. Zero defaults to 250 µs when a throttled
	// mode is selected.
	NICGapUS float64
	// FramePacing attaches the display vblank device and the frame-pacing
	// application, reporting missed-frame and jitter distributions.
	FramePacing bool
	// FramePeriodMS / FrameComputeFrac / FramePriority parameterize the
	// pacer (defaults 16.7 ms, 0.4, real-time default priority).
	FramePeriodMS    float64
	FrameComputeFrac float64
	FramePriority    int
}

func (c *RunConfig) fillDefaults() {
	if c.Duration == 0 {
		c.Duration = time.Minute
	}
	if c.Warmup == 0 {
		c.Warmup = 200 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	// Storm and pacing defaults resolve only when their feature is on, so
	// the Normalized form of every pre-storm config is unchanged.
	if c.StormPPS > 0 {
		if c.StormBytes == 0 {
			c.StormBytes = 1460
		}
	}
	if c.NICModeration != hw.ModeratePerWindow && c.NICGapUS == 0 {
		c.NICGapUS = 250
	}
	if c.FramePacing {
		if c.FramePeriodMS == 0 {
			c.FramePeriodMS = 16.7
		}
		if c.FrameComputeFrac == 0 {
			c.FrameComputeFrac = 0.4
		}
		if c.FramePriority == 0 {
			c.FramePriority = kernel.RealtimeDefault
		}
	}
}

// Normalized returns the config as Run will actually execute it: every
// zero-valued knob replaced by its documented default. A Result's embedded
// Config is always in this form, which is what lets a verifier match a
// result back to the (possibly shorthand) config that requested it.
func (c RunConfig) Normalized() RunConfig {
	c.fillDefaults()
	return c
}

// Result is the outcome of one measurement run.
type Result struct {
	Config   RunConfig
	OSName   string
	Class    workload.Class
	Observed sim.Cycles // virtual collection span (for rate math)
	Freq     sim.Freq

	Samples uint64

	// DpcInt is the estimated DPC-interrupt latency (Figure 4, top row);
	// DpcIntOracle is the same latency against exact tick times.
	DpcInt, DpcIntOracle *stats.Histogram
	// IntLat/DpcLat are the Win98 legacy-hook split (nil on NT).
	IntLat, DpcLat *stats.Histogram
	// Thread maps measurement priority to its thread-latency distribution
	// (Figure 4, middle and bottom rows).
	Thread map[int]*stats.Histogram
	// HwToThread maps measurement priority to the measured end-to-end
	// latency from the (estimated) hardware interrupt to the thread — the
	// "H/W Int. to kernel RT thread" rows of Table 3.
	HwToThread map[int]*stats.Histogram

	Counters       kernel.Counters
	AudioUnderruns uint64
	AudioPeriods   uint64

	// Episodes holds the cause-tool captures when CauseAnalysis was on.
	Episodes []causetool.Episode

	// NicLat is the packet arrival-to-indication latency — the queueing
	// cost of interrupt moderation (nil unless StormPPS > 0).
	NicLat *stats.Histogram
	// Storm summarizes the offered stream (nil unless StormPPS > 0).
	Storm *StormStats
	// Pacing is the frame pacer's outcome (nil unless FramePacing).
	Pacing *ospersona.PacingStats
}

// StormStats summarizes one storm run's packet accounting: the livelock
// criterion reads the backlog trajectory, the frontier tables the rest.
type StormStats struct {
	OfferedPPS float64 // configured offered rate
	Offered    uint64  // packets the storm delivered to the ring
	Delivered  uint64  // packets the driver drained
	Dropped    uint64  // ring overflows
	Asserts    uint64  // interrupt assertions (coalescing ratio = Delivered/Asserts)
	Backlog    []workload.BacklogSample
}

// Run executes one measurement run and returns its result.
func Run(cfg RunConfig) *Result {
	cfg.fillDefaults()

	opts := ospersona.Options{
		Seed:           cfg.Seed,
		VirusScanner:   cfg.VirusScanner,
		SoundScheme:    cfg.SoundScheme,
		WorkerPriority: cfg.WorkerPriority,
		PIODisk:        cfg.PIODisk,
		NICModeration:  cfg.NICModeration,
	}
	if cfg.PITPeriod > 0 {
		opts.PITPeriod = sim.DefaultFreq.Cycles(cfg.PITPeriod)
	}
	if cfg.NICGapUS > 0 {
		opts.NICGap = sim.DefaultFreq.FromMillis(cfg.NICGapUS / 1000)
	}
	m := ospersona.Build(cfg.OS, opts)
	defer m.Shutdown()

	var nicLat *stats.Histogram
	if cfg.StormPPS > 0 {
		nicLat = m.EnableStormAccounting()
	}

	var cause *causetool.Tool
	toolOpts := latdriver.Options{
		DelayTicks:     cfg.DelayTicks,
		HookTimerISR:   m.Profile.SupportsLegacyTimerHook,
		HighPriority:   cfg.HighPriority,
		MediumPriority: cfg.MediumPriority,
	}
	if cfg.CauseAnalysis && (m.Profile.SupportsLegacyTimerHook || cfg.CauseNMI) {
		src := causetool.PITHook
		if cfg.CauseNMI {
			src = causetool.PerfCounterNMI
		}
		cause = causetool.Attach(m.Kernel, causetool.Options{
			RingSize:  cfg.CauseRingSize,
			Threshold: m.Freq().Cycles(cfg.CauseThreshold),
			Source:    src,
			WalkStack: cfg.CauseWalkStack,
		})
		toolOpts.OnThreadLatency = func(_ int, lat sim.Cycles) { cause.OnLatency(lat) }
	}
	tool, err := latdriver.Install(m.Kernel, m.PIT, toolOpts)
	if err != nil {
		panic(fmt.Sprintf("core: tool install failed: %v", err))
	}
	if err := tool.Start(); err != nil {
		panic(fmt.Sprintf("core: tool start failed: %v", err))
	}

	start := m.Now()
	m.RunFor(m.Freq().Cycles(cfg.Warmup))

	var gen *workload.Generator
	if !cfg.Idle {
		gen = workload.New(cfg.Workload, m)
		gen.Start()
	}
	var storm *workload.Storm
	if cfg.StormPPS > 0 {
		storm = workload.NewStorm(m, workload.StormConfig{
			PPS:   cfg.StormPPS,
			Bytes: cfg.StormBytes,
		})
		storm.Start()
	}
	if cfg.FramePacing {
		m.StartFramePacing(ospersona.PacingConfig{
			PeriodMS:    cfg.FramePeriodMS,
			ComputeFrac: cfg.FrameComputeFrac,
			Priority:    cfg.FramePriority,
		})
	}
	m.RunFor(m.Freq().Cycles(cfg.Duration))
	if gen != nil {
		gen.Stop()
	}
	if storm != nil {
		storm.Stop()
	}
	if cfg.FramePacing {
		m.StopFramePacing()
	}
	tool.Stop()

	res := &Result{
		Config:       cfg,
		OSName:       m.Profile.Name,
		Class:        cfg.Workload,
		Observed:     m.Now().Sub(start),
		Freq:         m.Freq(),
		Samples:      tool.Samples(),
		DpcInt:       tool.DpcInterruptLatency(),
		DpcIntOracle: tool.DpcInterruptLatencyOracle(),
		IntLat:       tool.InterruptLatency(),
		DpcLat:       tool.DpcLatency(),
		Thread: map[int]*stats.Histogram{
			tool.HighPriority():   tool.ThreadLatency(tool.HighPriority()),
			tool.MediumPriority(): tool.ThreadLatency(tool.MediumPriority()),
		},
		HwToThread: map[int]*stats.Histogram{
			tool.HighPriority():   tool.HwToThreadLatency(tool.HighPriority()),
			tool.MediumPriority(): tool.HwToThreadLatency(tool.MediumPriority()),
		},
		Counters:       m.Kernel.Counters(),
		AudioUnderruns: m.Sound.Underruns(),
		AudioPeriods:   m.Sound.Periods(),
	}
	if cause != nil {
		cause.Detach()
		res.Episodes = cause.Episodes()
	}
	if storm != nil {
		res.NicLat = nicLat
		res.Storm = &StormStats{
			OfferedPPS: cfg.StormPPS,
			Offered:    storm.Offered(),
			Delivered:  m.NIC.Delivered(),
			Dropped:    m.NIC.Dropped(),
			Asserts:    m.NIC.Asserts(),
			Backlog:    append([]workload.BacklogSample(nil), storm.Samples()...),
		}
	}
	if cfg.FramePacing {
		if p, ok := m.FramePacingStats(); ok {
			res.Pacing = &p
		}
	}
	return res
}

// HighPriority returns the high measurement-thread priority used.
func (r *Result) HighPriority() int {
	if r.Config.HighPriority != 0 {
		return r.Config.HighPriority
	}
	return kernel.RealtimeHigh
}

// MediumPriority returns the medium measurement-thread priority used.
func (r *Result) MediumPriority() int {
	if r.Config.MediumPriority != 0 {
		return r.Config.MediumPriority
	}
	return kernel.RealtimeDefault
}

// UsageObserved converts the collection span into heavy-use time via the
// workload's MS-Test time-compression factor (§3.1): one collection hour
// equals TimeCompression() hours of real use. Table 3's horizons are
// evaluated against this usage-equivalent span.
func (r *Result) UsageObserved() sim.Cycles {
	comp := r.Class.TimeCompression()
	if r.Config.Idle {
		comp = 1
	}
	return sim.Cycles(float64(r.Observed) * comp)
}

// WorstCaseRow computes the Table 3 hourly/daily/weekly expected worst
// cases (in milliseconds) for one measured distribution.
func (r *Result) WorstCaseRow(h *stats.Histogram) [3]float64 {
	return h.WorstCases(r.UsageObserved(), r.Class.Usage())
}
