// Package cli holds small helpers shared by the cmd/ tools: flag parsing
// for OS and workload names, campaign signal handling, checkpoint-store
// opening, the shared campaign failure exit path, and the observability
// surface (metrics registry, -progress reporter, -telemetry snapshot and
// profiling hooks — see Obs).
package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"wdmlat/internal/campaign"
	"wdmlat/internal/campaign/store"
	"wdmlat/internal/metrics"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/workload"
)

// SignalContext returns a context cancelled on SIGINT/SIGTERM. Wired into
// campaign.Options.Context, the first signal makes the campaign stop
// dispatching new cells, drain the running ones, and flush completed work
// to the checkpoint store; a second signal kills the process immediately
// (the returned stop function restores default signal behaviour).
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// OpenStore opens the checkpoint store for a -checkpoint flag value and
// attaches its telemetry counters to reg (nil disables them); an empty dir
// (flag unset) disables checkpointing and returns (nil, nil).
func OpenStore(dir string, reg *metrics.Registry) (*store.Store, error) {
	if dir == "" {
		return nil, nil
	}
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	st.Instrument(reg)
	return st, nil
}

// ReportFailures writes every failed cell — with panic stacks, when the
// failure was a recovered panic — to w, prefixed by the tool name.
func ReportFailures(w io.Writer, name string, failures []campaign.Failure) {
	for _, f := range failures {
		fmt.Fprintf(w, "%s: cell %q failed: %v\n", name, f.Key, f.Err)
		var pe *campaign.PanicError
		if errors.As(f.Err, &pe) && len(pe.Stack) > 0 {
			fmt.Fprintf(w, "%s\n", pe.Stack)
		}
	}
}

// FailCampaign is the cmds' shared campaign fatal path: it reports err,
// waits for in-flight cells to drain (so their checkpoints flush — the
// cancellation contract), names every failed cell, flushes the
// observability surface (a failed campaign's telemetry snapshot is exactly
// the artifact that attributes the failure), and exits non-zero. obs may
// be nil.
func FailCampaign(name string, run *campaign.Runner, obs *Obs, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	_ = run.Wait()
	ReportFailures(os.Stderr, name, run.Failed())
	if obs != nil {
		if cerr := obs.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, cerr)
		}
	}
	os.Exit(1)
}

// ParseOS resolves an --os flag value.
func ParseOS(s string) (ospersona.OS, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "nt", "nt4", "winnt", "nt4.0":
		return ospersona.NT4, nil
	case "98", "win98", "windows98", "w98":
		return ospersona.Win98, nil
	case "2000", "win2000", "win2k", "nt5":
		return ospersona.Win2000Beta, nil
	default:
		return 0, fmt.Errorf("unknown OS %q (want nt4, win98 or win2000)", s)
	}
}

// ParseOSList resolves an --os flag that may be "both" (the paper's two
// systems) or "all" (including the Windows 2000 Beta).
func ParseOSList(s string) ([]ospersona.OS, error) {
	if strings.EqualFold(strings.TrimSpace(s), "both") {
		return []ospersona.OS{ospersona.NT4, ospersona.Win98}, nil
	}
	if strings.EqualFold(strings.TrimSpace(s), "all") {
		return []ospersona.OS{ospersona.NT4, ospersona.Win98, ospersona.Win2000Beta}, nil
	}
	os, err := ParseOS(s)
	if err != nil {
		return nil, err
	}
	return []ospersona.OS{os}, nil
}

// ParseWorkload resolves a --workload flag value.
func ParseWorkload(s string) (workload.Class, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "business", "biz", "office":
		return workload.Business, nil
	case "workstation", "wks", "highend":
		return workload.Workstation, nil
	case "games", "game", "3d":
		return workload.Games, nil
	case "web", "browsing":
		return workload.Web, nil
	default:
		return 0, fmt.Errorf("unknown workload %q (want business|workstation|games|web)", s)
	}
}

// ParseWorkloadList resolves a --workload flag that may be "all".
func ParseWorkloadList(s string) ([]workload.Class, error) {
	if strings.EqualFold(strings.TrimSpace(s), "all") {
		return workload.Classes, nil
	}
	c, err := ParseWorkload(s)
	if err != nil {
		return nil, err
	}
	return []workload.Class{c}, nil
}
