package sim

// Campaign seed derivation. A measurement campaign runs many independent
// cells (OS × workload × variant × replica); each needs its own seed, and
// the mapping from cell to seed must depend only on the base seed and the
// cell's stable identity — never on worker count, scheduling order, or the
// order cells were created in — so that a parallel campaign reproduces a
// serial one byte for byte.
//
// The additive schemes that look obvious here (seed+i, seed+i*prime) are
// subtly wrong: two campaigns whose base seeds differ by the stride share
// entire replica streams (base 3 replica 1 == base 7922 replica 0 when the
// stride is 7919). Hashing the cell key through SplitMix64 breaks that
// aliasing: any change to the base seed or any byte of the key yields an
// unrelated 64-bit value.

// SplitMix64 advances x through one round of the SplitMix64 output
// function (Steele, Lea & Flood; the same finalizer RNG.Seed uses). It is
// a strong 64-bit mixer: every input bit affects every output bit.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed maps a base seed and a stable cell key (e.g.
// "nt4/games/default/2") to an independent per-cell seed by folding each
// key byte into a running SplitMix64 state seeded from base. The result
// depends only on (base, key), is never zero (RunConfig treats a zero seed
// as "use the default", which would alias unrelated cells), and differs
// across any change to either input.
func DeriveSeed(base uint64, key string) uint64 {
	h := SplitMix64(base)
	for i := 0; i < len(key); i++ {
		h = SplitMix64(h ^ uint64(key[i]))
	}
	// Mix the length in so "a" with base SplitMix64('a') cannot collide
	// with "aa" patterns, and guarantee a non-zero result.
	h = SplitMix64(h ^ uint64(len(key)))
	if h == 0 {
		h = 0x9e3779b97f4a7c15
	}
	return h
}
