package client

// Pins the shared equal-jitter schedule exactly. Client.do, Client.Watch
// and the fleet worker loop all retry through Backoff.Delay, so a change
// to this schedule changes the retry pressure every consumer puts on the
// service — it must be a deliberate edit here, never drift.

import (
	"testing"
	"time"
)

// TestBackoffExactEqualJitterSchedule: with Rand pinned to its extremes,
// attempt n's delay is exactly [d/2, d] for d = min(Base·2ⁿ, Max).
func TestBackoffExactEqualJitterSchedule(t *testing.T) {
	base, max := 100*time.Millisecond, 2*time.Second
	wantCeil := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 2 * time.Second,
		2 * time.Second, // capped forever after
	}
	ceil := Backoff{Base: base, Max: max, Rand: func() float64 { return 1 }}
	floor := Backoff{Base: base, Max: max, Rand: func() float64 { return 0 }}
	for n, want := range wantCeil {
		if got := ceil.Delay(n, 0); got != want {
			t.Errorf("attempt %d ceiling = %v, want %v", n, got, want)
		}
		if got := floor.Delay(n, 0); got != want/2 {
			t.Errorf("attempt %d floor = %v, want %v (half the window, never ~0)", n, got, want/2)
		}
	}
}

// TestBackoffShiftOverflowCapsAtMax: attempt counts large enough to shift
// the base out of range still return the cap, not zero or a negative delay.
func TestBackoffShiftOverflowCapsAtMax(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 5 * time.Second, Rand: func() float64 { return 1 }}
	for _, n := range []int{40, 63, 64, 200} {
		if got := b.Delay(n, 0); got != 5*time.Second {
			t.Errorf("attempt %d = %v, want the 5s cap", n, got)
		}
	}
}

// TestBackoffRetryAfterIsAFloorAtAttemptZero: attempt 0's jittered window
// is [Base/2, Base]; an explicit Retry-After longer than the drawn delay
// replaces it exactly, and a shorter one is ignored — the server hint is a
// floor, never a discount.
func TestBackoffRetryAfterIsAFloorAtAttemptZero(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Rand: func() float64 { return 1 }}
	// Hint above the window: returned verbatim.
	if got := b.Delay(0, 3*time.Second); got != 3*time.Second {
		t.Errorf("Delay(0, 3s) = %v, want exactly 3s", got)
	}
	// Hint inside the window (jitter drew the 100ms ceiling): ignored.
	if got := b.Delay(0, 80*time.Millisecond); got != 100*time.Millisecond {
		t.Errorf("Delay(0, 80ms) = %v, want the drawn 100ms", got)
	}
	// Hint exactly at the drawn delay: unchanged (strictly-greater raises).
	if got := b.Delay(0, 100*time.Millisecond); got != 100*time.Millisecond {
		t.Errorf("Delay(0, 100ms) = %v, want 100ms", got)
	}
	// The floor also applies deep into the schedule, past the cap.
	if got := b.Delay(10, 10*time.Second); got != 10*time.Second {
		t.Errorf("Delay(10, 10s) = %v, want 10s", got)
	}
}

// TestBackoffNilRandDefaults: a zero-value Rand falls back to math/rand and
// stays within the equal-jitter window.
func TestBackoffNilRandDefaults(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second}
	for i := 0; i < 100; i++ {
		if d := b.Delay(0, 0); d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("Delay(0,0) = %v, want within [50ms, 100ms]", d)
		}
	}
}
