package hw

import "wdmlat/internal/sim"

// NIC models the EtherExpress Pro 100 of the test system: received packets
// accumulate in a ring and the card asserts its interrupt line, with simple
// interrupt moderation (one assertion per pending window rather than per
// packet — the line stays asserted until the driver drains the ring). The
// web-browsing workload delivers download bursts through it (§3.1.3).
type NIC struct {
	eng  *sim.Engine
	line IRQLine

	// InterPacketGap is the wire spacing between packets inside a burst
	// (10 Mbit LAN in the paper ≈ 1.2 ms for a 1500-byte frame; the test
	// LAN was 100 Mbit to over-stress the system).
	InterPacketGap sim.Cycles

	// ring holds pending packet sizes; head indexes the first undrained
	// entry. Draining advances head instead of re-slicing the base away,
	// which would discard capacity and make every burst reallocate.
	ring      []int
	head      int
	delivered uint64
	dropped   uint64
	ringCap   int
	raised    bool
}

// NewNIC creates a card with the given ring capacity.
func NewNIC(eng *sim.Engine, line IRQLine, ringCap int, gap sim.Cycles) *NIC {
	if ringCap <= 0 {
		panic("hw: non-positive NIC ring capacity")
	}
	return &NIC{eng: eng, line: line, ringCap: ringCap, InterPacketGap: gap}
}

// DeliverBurst schedules n packets of the given size arriving back to back
// starting now. Each arrival raises the interrupt line if it is not already
// raised.
func (n *NIC) DeliverBurst(packets, bytes int) {
	if packets <= 0 || bytes <= 0 {
		panic("hw: invalid NIC burst")
	}
	// One arrival closure serves the whole burst: every packet in a burst
	// has the same size, and allocating per packet dominated the machine's
	// steady-state garbage.
	rx := func(sim.Time) { n.receive(bytes) }
	for i := 0; i < packets; i++ {
		delay := sim.Cycles(i) * n.InterPacketGap
		n.eng.After(delay, "nic-rx", rx)
	}
}

func (n *NIC) receive(bytes int) {
	if len(n.ring)-n.head >= n.ringCap {
		n.dropped++
		return
	}
	n.ring = append(n.ring, bytes)
	if !n.raised {
		n.raised = true
		n.line.Assert()
	}
}

// Drain removes up to max packets from the ring (the driver ISR/DPC calls
// this), returning their sizes. When the ring empties the line deasserts;
// if packets remain the card re-asserts so the driver takes another pass.
// The returned slice aliases the ring's recycled storage and is only valid
// until the card next receives a packet.
func (n *NIC) Drain(max int) []int {
	avail := len(n.ring) - n.head
	if max <= 0 || avail == 0 {
		n.raised = avail > 0
		return nil
	}
	if max > avail {
		max = avail
	}
	out := n.ring[n.head : n.head+max]
	n.head += max
	n.delivered += uint64(max)
	if n.head < len(n.ring) {
		// More work: model a level-triggered line by re-asserting.
		n.line.Assert()
	} else {
		n.ring = n.ring[:0]
		n.head = 0
		n.raised = false
	}
	return out
}

// Pending returns the number of packets in the ring.
func (n *NIC) Pending() int { return len(n.ring) - n.head }

// Delivered returns packets handed to the driver; Dropped counts ring
// overflows.
func (n *NIC) Delivered() uint64 { return n.delivered }

// Dropped returns the number of packets lost to ring overflow.
func (n *NIC) Dropped() uint64 { return n.dropped }
