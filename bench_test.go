// Benchmarks regenerating every table and figure of the paper, plus
// ablation benches for the design choices DESIGN.md §7 calls out and
// substrate microbenchmarks. Each experiment bench runs a short virtual
// collection per iteration and reports the headline quantity as a custom
// metric; the cmd/ tools run the same pipelines at full length.
package wdmlat_test

import (
	"testing"
	"time"

	"wdmlat/internal/campaign"
	"wdmlat/internal/core"
	"wdmlat/internal/cpu"
	"wdmlat/internal/interactive"
	"wdmlat/internal/kernel"
	"wdmlat/internal/microbench"
	"wdmlat/internal/modem"
	"wdmlat/internal/mttf"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/rma"
	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
	"wdmlat/internal/workload"
)

const benchDur = 20 * time.Second // virtual collection per iteration

// BenchmarkTable1LatencyTolerances regenerates Table 1.
func BenchmarkTable1LatencyTolerances(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := mttf.Table1()
		if len(rows) != 4 || rows[0].TolLoMS != 4 {
			b.Fatal("Table 1 corrupted")
		}
	}
}

// figure4 runs one Figure 4 cell: an OS × workload measurement.
func figure4(b *testing.B, os ospersona.OS, wl workload.Class) *core.Result {
	b.Helper()
	var r *core.Result
	for i := 0; i < b.N; i++ {
		r = core.Run(core.RunConfig{
			OS:       os,
			Workload: wl,
			Duration: benchDur,
			Seed:     uint64(i + 1),
		})
	}
	return r
}

// BenchmarkFigure4 regenerates the six Figure 4 panels, one sub-benchmark
// per OS × workload cell, reporting the distribution's worst case.
func BenchmarkFigure4(b *testing.B) {
	for _, os := range []ospersona.OS{ospersona.NT4, ospersona.Win98} {
		for _, wl := range workload.Classes {
			os, wl := os, wl
			b.Run(os.String()+"/"+wl.String(), func(b *testing.B) {
				r := figure4(b, os, wl)
				b.ReportMetric(r.Freq.Millis(r.DpcInt.Max()), "dpcint-worst-ms")
				b.ReportMetric(r.Freq.Millis(r.Thread[28].Max()), "t28-worst-ms")
				b.ReportMetric(r.Freq.Millis(r.Thread[24].Max()), "t24-worst-ms")
				b.ReportMetric(float64(r.Samples), "samples")
			})
		}
	}
}

// BenchmarkTable3WorstCase regenerates the Table 3 pipeline for Windows 98
// under the games stress (the class with the paper's worst numbers).
func BenchmarkTable3WorstCase(b *testing.B) {
	var wc [3]float64
	for i := 0; i < b.N; i++ {
		r := core.Run(core.RunConfig{
			OS:       ospersona.Win98,
			Workload: workload.Games,
			Duration: benchDur,
			Seed:     uint64(i + 1),
		})
		wc = r.WorstCaseRow(r.HwToThread[r.HighPriority()])
	}
	b.ReportMetric(wc[0], "hourly-ms")
	b.ReportMetric(wc[2], "weekly-ms")
}

// BenchmarkSec42Throughput regenerates the §4.2 macrobenchmark comparison.
func BenchmarkSec42Throughput(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		nt := core.RunThroughput(ospersona.NT4, 60, uint64(i+1))
		w98 := core.RunThroughput(ospersona.Win98, 60, uint64(i+1))
		delta = core.ThroughputDelta(nt, w98)
	}
	b.ReportMetric(delta*100, "score-delta-pct")
}

// BenchmarkFigure5VirusScanner regenerates the Figure 5 comparison and
// reports the 15+ms thread-latency rate inflation.
func BenchmarkFigure5VirusScanner(b *testing.B) {
	var clean, dirty float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i + 1)
		rc := core.Run(core.RunConfig{OS: ospersona.Win98, Workload: workload.Business,
			Duration: benchDur, Seed: seed})
		rd := core.Run(core.RunConfig{OS: ospersona.Win98, Workload: workload.Business,
			Duration: benchDur, Seed: seed, VirusScanner: true})
		at := rd.Freq.FromMillis(15)
		clean = rc.Thread[24].CCDF(at)
		dirty = rd.Thread[24].CCDF(at)
	}
	b.ReportMetric(dirty, "scanner-p16ms")
	b.ReportMetric(clean, "clean-p16ms")
}

// BenchmarkTable4CauseTool regenerates the Table 4 episode captures.
func BenchmarkTable4CauseTool(b *testing.B) {
	var episodes int
	for i := 0; i < b.N; i++ {
		r := core.Run(core.RunConfig{
			OS:             ospersona.Win98,
			Workload:       workload.Business,
			Duration:       benchDur,
			Seed:           uint64(i + 1),
			SoundScheme:    true,
			CauseAnalysis:  true,
			CauseThreshold: 6 * time.Millisecond,
		})
		episodes = len(r.Episodes)
	}
	b.ReportMetric(float64(episodes), "episodes")
}

// mttfBench runs one Figure 6/7 curve and reports the MTTF at 12 ms of
// buffering (the paper's worked example).
func mttfBench(b *testing.B, modality modem.Modality) {
	b.Helper()
	var at12 float64
	for i := 0; i < b.N; i++ {
		r := core.Run(core.RunConfig{
			OS:       ospersona.Win98,
			Workload: workload.Games,
			Duration: benchDur,
			Seed:     uint64(i + 1),
		})
		var h *stats.Histogram
		if modality == modem.DPCBased {
			h = r.DpcInt
		} else {
			h = r.HwToThread[r.HighPriority()]
		}
		pts := mttf.Sweep(h, r.UsageObserved(), 6, 0.25, 8)
		at12 = pts[1].MTTFSeconds // n=3: 12 ms of buffering
	}
	b.ReportMetric(at12, "mttf-at-12ms-s")
}

// BenchmarkFigure6MTTFDpc regenerates Figure 6 (DPC-based datapump).
func BenchmarkFigure6MTTFDpc(b *testing.B) { mttfBench(b, modem.DPCBased) }

// BenchmarkFigure7MTTFThread regenerates Figure 7 (thread-based datapump).
func BenchmarkFigure7MTTFThread(b *testing.B) { mttfBench(b, modem.ThreadBased) }

// BenchmarkSec52Schedulability regenerates the §5.2 pseudo-worst-case
// schedulability pipeline.
func BenchmarkSec52Schedulability(b *testing.B) {
	var blockMS float64
	var ok bool
	for i := 0; i < b.N; i++ {
		r := core.Run(core.RunConfig{
			OS:       ospersona.Win98,
			Workload: workload.Games,
			Duration: benchDur,
			Seed:     uint64(i + 1),
		})
		h := r.HwToThread[r.HighPriority()]
		block := rma.PseudoWorstCase(h, r.UsageObserved(), r.Freq.Cycles(time.Hour))
		blockMS = r.Freq.Millis(block)
		tasks := []rma.Task{{
			Name: "softmodem", Period: r.Freq.FromMillis(16),
			Compute: r.Freq.FromMillis(4), Blocking: block,
		}}
		if err := tasks[0].Validate(); err != nil {
			ok = false
			continue
		}
		_, ok, _ = rma.Analyze(tasks)
	}
	b.ReportMetric(blockMS, "design-latency-ms")
	if ok {
		b.ReportMetric(1, "schedulable")
	} else {
		b.ReportMetric(0, "schedulable")
	}
}

// --- ablation benches (DESIGN.md §7) ---------------------------------------

// BenchmarkAblationWorkerPriority moves the kernel work-item worker out of
// the real-time band: the paper's explanation predicts the NT RT-24 vs
// RT-28 gap should collapse — and it does.
func BenchmarkAblationWorkerPriority(b *testing.B) {
	for _, prio := range []int{kernel.RealtimeDefault, kernel.NormalPriority} {
		prio := prio
		name := "worker-rt-default"
		if prio == kernel.NormalPriority {
			name = "worker-normal"
		}
		b.Run(name, func(b *testing.B) {
			var gap float64
			for i := 0; i < b.N; i++ {
				r := core.Run(core.RunConfig{
					OS:             ospersona.NT4,
					Workload:       workload.Business,
					Duration:       benchDur,
					Seed:           uint64(i + 1),
					WorkerPriority: prio,
				})
				t28 := r.Freq.Millis(r.Thread[28].Max())
				t24 := r.Freq.Millis(r.Thread[24].Max())
				if t28 > 0 {
					gap = t24 / t28
				}
			}
			b.ReportMetric(gap, "t24/t28-worst-ratio")
		})
	}
}

// BenchmarkAblationPITFrequency compares the tools' 1 kHz PIT programming
// against the 67-100 Hz machine default (§2.2): the slow clock collects an
// order of magnitude fewer samples and quantizes timer firing to ~15 ms.
func BenchmarkAblationPITFrequency(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		period time.Duration
	}{
		{"pit-1kHz", time.Millisecond},
		{"pit-67Hz", 15 * time.Millisecond},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var samples float64
			for i := 0; i < b.N; i++ {
				r := core.Run(core.RunConfig{
					OS:        ospersona.NT4,
					Workload:  workload.Business,
					Duration:  benchDur,
					Seed:      uint64(i + 1),
					PITPeriod: cfg.period,
				})
				samples = float64(r.Samples)
			}
			b.ReportMetric(samples, "samples")
		})
	}
}

// BenchmarkAblationMTTFValidation cross-checks the §5 analytic MTTF against
// a direct datapump simulation under the same stress (the "strictly
// accurate only for double buffering" approximation).
func BenchmarkAblationMTTFValidation(b *testing.B) {
	var direct, analytic float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i + 1)
		r := core.Run(core.RunConfig{OS: ospersona.Win98, Workload: workload.Games,
			Duration: benchDur, Seed: seed})
		analytic = mttf.Analytic(r.DpcInt, r.UsageObserved(), 4, 2, 1).MTTFSeconds

		m := ospersona.Build(ospersona.Win98, ospersona.Options{Seed: seed + 7})
		d := modem.Attach(m.Kernel, modem.Config{CycleMS: 4, Buffers: 2, Modality: modem.DPCBased})
		gen := workload.New(workload.Games, m)
		gen.Start()
		m.Eng.After(m.MS(50), "pump", func(sim.Time) { d.Start() })
		m.RunFor(m.Freq().Cycles(benchDur))
		if s, ok := d.MTTFSeconds(); ok {
			direct = s
		} else {
			direct = m.Freq().Duration(m.Freq().Cycles(benchDur)).Seconds()
		}
		m.Shutdown()
	}
	b.ReportMetric(analytic, "analytic-mttf-s")
	b.ReportMetric(direct, "direct-mttf-s")
}

// --- substrate microbenchmarks ----------------------------------------------

// BenchmarkEngineEventThroughput measures raw discrete-event dispatch.
func BenchmarkEngineEventThroughput(b *testing.B) {
	eng := sim.NewEngine(1)
	var tick func(sim.Time)
	n := 0
	tick = func(sim.Time) {
		n++
		eng.After(100, "tick", tick)
	}
	eng.After(100, "tick", tick)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// BenchmarkKernelContextSwitch measures a full simulated wait/wake/switch
// round trip between two threads.
func BenchmarkKernelContextSwitch(b *testing.B) {
	eng := sim.NewEngine(1)
	c := cpu.New(eng, sim.DefaultFreq)
	k := kernel.New(eng, c, kernel.Config{Name: "bench"})
	k.Boot(32, 300_000)
	defer k.Shutdown()
	ping := k.NewEvent("ping", kernel.SynchronizationEvent)
	pong := k.NewEvent("pong", kernel.SynchronizationEvent)
	k.CreateThread("a", 20, func(tc *kernel.ThreadContext) {
		for {
			tc.Wait(ping)
			tc.SetEvent(pong)
		}
	})
	k.CreateThread("b", 20, func(tc *kernel.ThreadContext) {
		for {
			tc.SetEvent(ping)
			tc.Wait(pong)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// BenchmarkEngineScheduleCancel measures the schedule/cancel churn path: a
// rotating window of pending timers, as armed and disarmed by every device
// model and wait timeout.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	eng := sim.NewEngine(1)
	nop := func(sim.Time) {}
	const depth = 64
	var evs [depth]*sim.Event
	for i := range evs {
		evs[i] = eng.After(sim.Cycles(1000+i), "churn", nop)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % depth
		eng.Cancel(evs[j])
		evs[j] = eng.After(sim.Cycles(1000+j), "churn", nop)
	}
}

// BenchmarkHistogramAdd measures the latency-recording hot path in
// isolation: samples are drawn ahead of time so the Pareto draw (dominated
// by math.Pow) does not mask the bucketing cost being measured.
func BenchmarkHistogramAdd(b *testing.B) {
	h := stats.NewHistogram(sim.DefaultFreq)
	r := sim.NewRNG(1)
	d := sim.Pareto{Xm: 1000, Alpha: 1.3, Cap: 1 << 30}
	const mask = 1<<16 - 1
	draws := make([]sim.Cycles, mask+1)
	for i := range draws {
		draws[i] = d.Draw(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(draws[i&mask])
	}
}

// BenchmarkMachineMinute measures full-machine simulation speed: virtual
// seconds simulated per wall second under the games stress.
func BenchmarkMachineMinute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := ospersona.Build(ospersona.Win98, ospersona.Options{Seed: uint64(i + 1)})
		gen := workload.New(workload.Games, m)
		gen.Start()
		m.RunFor(m.Freq().Cycles(time.Minute))
		m.Shutdown()
	}
}

// BenchmarkAblationPIODisk disables the Table 2 DMA configuration ("a key
// point, easily overlooked"): programmed-I/O transfers execute at
// DISPATCH_LEVEL in the disk driver, and the DPC-interrupt latency tail
// explodes even on NT.
func BenchmarkAblationPIODisk(b *testing.B) {
	for _, cfg := range []struct {
		name string
		pio  bool
	}{
		{"dma", false},
		{"pio", true},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				r := core.Run(core.RunConfig{
					OS:       ospersona.NT4,
					Workload: workload.Workstation,
					Duration: benchDur,
					Seed:     uint64(i + 1),
					PIODisk:  cfg.pio,
				})
				worst = r.Freq.Millis(r.DpcIntOracle.Max())
			}
			b.ReportMetric(worst, "dpcint-worst-ms")
		})
	}
}

// BenchmarkSec12Baselines runs the two §1.2 baseline methodologies (the
// lmbench-style suite and the Endo-style interactive measurement) and
// reports the numbers that fail to separate the systems.
func BenchmarkSec12Baselines(b *testing.B) {
	var ctxNT, ctxW98, within float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i + 1)
		ctxNT = microbench.Run(ospersona.NT4, seed, 300).ContextSwitch.MeanUS
		ctxW98 = microbench.Run(ospersona.Win98, seed, 300).ContextSwitch.MeanUS
		ir := interactive.Run(interactive.Config{
			OS: ospersona.Win98, Workload: workload.Business,
			Duration: benchDur, Seed: seed,
		})
		within = ir.WithinMS(150)
	}
	b.ReportMetric(ctxNT, "nt-ctxswitch-us")
	b.ReportMetric(ctxW98, "w98-ctxswitch-us")
	b.ReportMetric(within*100, "interactive-within-150ms-pct")
}

// BenchmarkCampaignMatrix runs the full Figure 4 measurement matrix (2 OSes
// × 4 workloads) through the parallel campaign runner at GOMAXPROCS
// workers — the cell fan-out cmd/reproduce uses — and reports aggregate
// throughput. Results are byte-identical to a serial run by construction.
func BenchmarkCampaignMatrix(b *testing.B) {
	oses := []ospersona.OS{ospersona.NT4, ospersona.Win98}
	var samples uint64
	for i := 0; i < b.N; i++ {
		run := campaign.New(campaign.Options{BaseSeed: uint64(i + 1)})
		byOS, err := run.RunMatrix(oses, workload.Classes, "bench",
			core.RunConfig{Duration: benchDur}, 1)
		if err != nil {
			b.Fatal(err)
		}
		samples = 0
		for _, byClass := range byOS {
			for _, r := range byClass {
				samples += r.Samples
			}
		}
	}
	b.ReportMetric(float64(samples), "matrix-samples")
}
