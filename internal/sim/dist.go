package sim

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a distribution of durations in cycles. OS personalities express
// every overhead source (interrupt-masked windows, dispatch-disabled
// windows, ISR bodies, DPC bodies, context-switch costs) as a Dist; drawing
// from it requires the caller's RNG so that distributions themselves stay
// stateless and shareable.
type Dist interface {
	// Draw samples one duration. Implementations must never return a
	// negative value.
	Draw(r *RNG) Cycles
	// Mean returns the distribution's expected value in cycles. It is used
	// by analytic reports and sanity tests, not by the simulation itself.
	Mean() float64
	fmt.Stringer
}

// Constant is a degenerate distribution that always returns V.
type Constant Cycles

// Draw implements Dist.
func (c Constant) Draw(*RNG) Cycles { return Cycles(c) }

// Mean implements Dist.
func (c Constant) Mean() float64 { return float64(c) }

func (c Constant) String() string { return fmt.Sprintf("const(%d)", int64(c)) }

// Uniform is a uniform distribution over [Lo, Hi].
type Uniform struct {
	Lo, Hi Cycles
}

// Draw implements Dist.
func (u Uniform) Draw(r *RNG) Cycles {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + r.Cyclesn(u.Hi-u.Lo+1)
}

// Mean implements Dist.
func (u Uniform) Mean() float64 { return float64(u.Lo+u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("uniform[%d,%d]", int64(u.Lo), int64(u.Hi)) }

// Exponential is an exponential distribution with the given mean, optionally
// clamped to Cap (0 means no cap).
type Exponential struct {
	MeanCycles Cycles
	Cap        Cycles
}

// Draw implements Dist.
func (e Exponential) Draw(r *RNG) Cycles {
	v := Cycles(r.Exp(float64(e.MeanCycles)))
	if e.Cap > 0 && v > e.Cap {
		v = e.Cap
	}
	return v
}

// Mean implements Dist.
func (e Exponential) Mean() float64 { return float64(e.MeanCycles) }

func (e Exponential) String() string { return fmt.Sprintf("exp(mean=%d)", int64(e.MeanCycles)) }

// Pareto is a bounded Pareto distribution: scale Xm (the minimum value),
// shape Alpha, hard upper bound Cap (0 = unbounded). Heavy tails with
// alpha in (1, 2] reproduce the long, thin latency tails of Figure 4.
type Pareto struct {
	Xm    Cycles
	Alpha float64
	Cap   Cycles
}

// Draw implements Dist.
func (p Pareto) Draw(r *RNG) Cycles {
	v := Cycles(r.Pareto(float64(p.Xm), p.Alpha))
	if v < p.Xm {
		v = p.Xm
	}
	if p.Cap > 0 && v > p.Cap {
		v = p.Cap
	}
	return v
}

// Mean implements Dist. For alpha <= 1 the unbounded mean diverges; the
// reported mean is then the cap (or Xm when uncapped), which is the most
// useful number for sanity checks.
func (p Pareto) Mean() float64 {
	if p.Alpha > 1 {
		m := p.Alpha * float64(p.Xm) / (p.Alpha - 1)
		if p.Cap > 0 && m > float64(p.Cap) {
			return float64(p.Cap)
		}
		return m
	}
	if p.Cap > 0 {
		return float64(p.Cap)
	}
	return float64(p.Xm)
}

func (p Pareto) String() string {
	return fmt.Sprintf("pareto(xm=%d,alpha=%.2f,cap=%d)", int64(p.Xm), p.Alpha, int64(p.Cap))
}

// LogNormal is a log-normal distribution parameterized by the mu/sigma of
// the underlying normal (in log-cycles), optionally clamped to Cap.
type LogNormal struct {
	Mu, Sigma float64
	Cap       Cycles
}

// Draw implements Dist.
func (l LogNormal) Draw(r *RNG) Cycles {
	v := Cycles(r.LogNorm(l.Mu, l.Sigma))
	if v < 0 {
		v = 0
	}
	if l.Cap > 0 && v > l.Cap {
		v = l.Cap
	}
	return v
}

// Mean implements Dist (ignores the cap; close enough for reporting).
func (l LogNormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

func (l LogNormal) String() string {
	return fmt.Sprintf("lognormal(mu=%.2f,sigma=%.2f)", l.Mu, l.Sigma)
}

// Mixture draws from one of several component distributions with the given
// weights. It models overhead sources that are usually cheap but
// occasionally catastrophic (e.g. the Win98 VMM contiguous-memory
// allocations of Table 4).
type Mixture struct {
	Components []Dist
	Weights    []float64 // same length as Components; need not sum to 1
	total      float64
}

// NewMixture builds a mixture, validating shape.
func NewMixture(components []Dist, weights []float64) *Mixture {
	if len(components) == 0 || len(components) != len(weights) {
		panic("sim: mixture needs equal non-zero counts of components and weights")
	}
	m := &Mixture{Components: components, Weights: weights}
	for _, w := range weights {
		if w < 0 {
			panic("sim: negative mixture weight")
		}
		m.total += w
	}
	if m.total <= 0 {
		panic("sim: mixture weights sum to zero")
	}
	return m
}

// Draw implements Dist.
func (m *Mixture) Draw(r *RNG) Cycles {
	x := r.Float64() * m.total
	for i, w := range m.Weights {
		if x < w || i == len(m.Weights)-1 {
			return m.Components[i].Draw(r)
		}
		x -= w
	}
	return m.Components[len(m.Components)-1].Draw(r)
}

// Mean implements Dist.
func (m *Mixture) Mean() float64 {
	var sum float64
	for i, c := range m.Components {
		sum += m.Weights[i] / m.total * c.Mean()
	}
	return sum
}

func (m *Mixture) String() string { return fmt.Sprintf("mixture(%d components)", len(m.Components)) }

// Empirical draws uniformly from a fixed sample set. It is used to replay
// measured distributions (e.g. feeding a measured latency table back into
// the analytic MTTF model for cross-validation).
type Empirical struct {
	samples []Cycles
}

// NewEmpirical copies and sorts the samples. It panics on an empty set.
func NewEmpirical(samples []Cycles) *Empirical {
	if len(samples) == 0 {
		panic("sim: empirical distribution with no samples")
	}
	cp := make([]Cycles, len(samples))
	copy(cp, samples)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return &Empirical{samples: cp}
}

// Draw implements Dist.
func (e *Empirical) Draw(r *RNG) Cycles {
	return e.samples[r.Intn(len(e.samples))]
}

// Mean implements Dist.
func (e *Empirical) Mean() float64 {
	var sum float64
	for _, s := range e.samples {
		sum += float64(s)
	}
	return sum / float64(len(e.samples))
}

// Quantile returns the q-quantile (q in [0,1]) of the sample set.
func (e *Empirical) Quantile(q float64) Cycles {
	if q <= 0 {
		return e.samples[0]
	}
	if q >= 1 {
		return e.samples[len(e.samples)-1]
	}
	i := int(q * float64(len(e.samples)))
	if i >= len(e.samples) {
		i = len(e.samples) - 1
	}
	return e.samples[i]
}

func (e *Empirical) String() string { return fmt.Sprintf("empirical(n=%d)", len(e.samples)) }

// Scaled wraps a distribution, multiplying every draw by Factor. Workload
// intensity knobs use it to derive "heavy" variants from a base profile.
type Scaled struct {
	Base   Dist
	Factor float64
}

// Draw implements Dist.
func (s Scaled) Draw(r *RNG) Cycles {
	v := float64(s.Base.Draw(r)) * s.Factor
	if v < 0 {
		return 0
	}
	return Cycles(v)
}

// Mean implements Dist.
func (s Scaled) Mean() float64 { return s.Base.Mean() * s.Factor }

func (s Scaled) String() string { return fmt.Sprintf("scaled(%.2f, %s)", s.Factor, s.Base) }
