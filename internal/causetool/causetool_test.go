package causetool_test

import (
	"strings"
	"testing"
	"time"

	"wdmlat/internal/causetool"
	"wdmlat/internal/kernel"
	"wdmlat/internal/latdriver"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
)

func newMachine(t *testing.T, seed uint64) *ospersona.Machine {
	t.Helper()
	m := ospersona.Build(ospersona.Win98, ospersona.Options{Seed: seed})
	t.Cleanup(m.Shutdown)
	return m
}

func TestHookSamplesEveryTick(t *testing.T) {
	m := newMachine(t, 1)
	tool := causetool.Attach(m.Kernel, causetool.Options{})
	m.RunFor(m.Freq().Cycles(time.Second))
	// 1 kHz PIT for one second.
	if n := tool.Samples(); n < 990 || n > 1010 {
		t.Fatalf("hook samples = %d, want ~1000", n)
	}
}

func TestEpisodeCapturesLockingFrames(t *testing.T) {
	m := newMachine(t, 2)
	tool := causetool.Attach(m.Kernel, causetool.Options{
		Threshold: m.MS(5),
	})
	lat, err := latdriver.Install(m.Kernel, m.PIT, latdriver.Options{
		OnThreadLatency: func(_ int, l sim.Cycles) { tool.OnLatency(l) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := lat.Start(); err != nil {
		t.Fatal(err)
	}
	m.RunFor(m.Freq().Cycles(100 * time.Millisecond))

	// Inject a 12 ms scheduler-locked episode attributed to the VMM: the
	// measurement thread's next wakeup crosses the threshold and dumps the
	// ring, which must contain VMM samples (the hook fires every 1 ms
	// during the episode: DPCs and ISRs still run under a scheduler lock).
	m.Eng.At(m.Now().Add(m.MS(10)), "inject", func(sim.Time) {
		m.Kernel.InjectEpisode(kernel.LockScheduler, m.MS(12), "VMM", "_mmFindContig")
	})
	m.RunFor(m.Freq().Cycles(200 * time.Millisecond))

	eps := tool.Episodes()
	if len(eps) == 0 {
		t.Fatal("no episode captured")
	}
	found := false
	for _, fc := range eps[0].Analysis() {
		if fc.Frame.Module == "VMM" && fc.Frame.Function == "_mmFindContig" {
			if fc.Count < 5 {
				t.Fatalf("only %d VMM samples in a 12 ms episode", fc.Count)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("VMM frame missing from episode analysis: %+v", eps[0].Analysis())
	}
}

func TestNoEpisodeBelowThreshold(t *testing.T) {
	m := newMachine(t, 3)
	tool := causetool.Attach(m.Kernel, causetool.Options{Threshold: m.MS(5)})
	lat, _ := latdriver.Install(m.Kernel, m.PIT, latdriver.Options{
		OnThreadLatency: func(_ int, l sim.Cycles) { tool.OnLatency(l) },
	})
	lat.Start()
	// Idle machine: thread latencies are microseconds.
	m.RunFor(m.Freq().Cycles(2 * time.Second))
	if n := len(tool.Episodes()); n != 0 {
		t.Fatalf("captured %d episodes on an idle machine", n)
	}
	if tool.Triggered() != 0 {
		t.Fatal("no trigger expected")
	}
}

func TestFormatMatchesTable4Layout(t *testing.T) {
	m := newMachine(t, 4)
	tool := causetool.Attach(m.Kernel, causetool.Options{Threshold: m.MS(3)})
	lat, _ := latdriver.Install(m.Kernel, m.PIT, latdriver.Options{
		OnThreadLatency: func(_ int, l sim.Cycles) { tool.OnLatency(l) },
	})
	lat.Start()
	m.RunFor(m.Freq().Cycles(100 * time.Millisecond))
	m.Eng.At(m.Now().Add(m.MS(7)), "inject", func(sim.Time) {
		m.Kernel.InjectEpisode(kernel.LockScheduler, m.MS(6), "SYSAUDIO", "_ProcessTopologyConnection")
	})
	m.RunFor(m.Freq().Cycles(100 * time.Millisecond))

	eps := tool.Episodes()
	if len(eps) == 0 {
		t.Fatal("no episode")
	}
	var b strings.Builder
	if err := tool.FormatAll(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Analysis of latency episode number 0") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "samples in SYSAUDIO function _ProcessTopologyConnection") {
		t.Fatalf("missing SYSAUDIO line:\n%s", out)
	}
	if !strings.Contains(out, "total samples in episode") {
		t.Fatalf("missing total line:\n%s", out)
	}
}

func TestDetachRestoresVector(t *testing.T) {
	m := newMachine(t, 5)
	tool := causetool.Attach(m.Kernel, causetool.Options{})
	m.RunFor(m.Freq().Cycles(100 * time.Millisecond))
	n := tool.Samples()
	tool.Detach()
	m.RunFor(m.Freq().Cycles(100 * time.Millisecond))
	if tool.Samples() != n {
		t.Fatal("hook still sampling after Detach")
	}
	// The clock still works after detach.
	fired := false
	d := kernel.NewDPC("x", kernel.MediumImportance, func(c *kernel.DpcContext) { fired = true })
	tm := m.Kernel.NewTimer("x")
	m.Eng.At(m.Now().Add(1000), "arm", func(sim.Time) { m.Kernel.SetTimer(tm, m.MS(2), d) })
	m.RunFor(m.Freq().Cycles(50 * time.Millisecond))
	if !fired {
		t.Fatal("clock broken after Detach")
	}
}

func TestMaxEpisodesBound(t *testing.T) {
	m := newMachine(t, 6)
	tool := causetool.Attach(m.Kernel, causetool.Options{Threshold: 1, MaxEpisodes: 3})
	for i := 0; i < 10; i++ {
		// Distinct, non-overlapping latency windows.
		m.RunFor(m.MS(20))
		tool.OnLatency(m.MS(10))
	}
	if len(tool.Episodes()) != 3 {
		t.Fatalf("retained %d episodes, want 3", len(tool.Episodes()))
	}
	if tool.Triggered() != 10 {
		t.Fatalf("triggered = %d, want 10", tool.Triggered())
	}
}

func TestInterruptedFrameFallsBackToThreadAndIdle(t *testing.T) {
	m := newMachine(t, 7)
	tool := causetool.Attach(m.Kernel, causetool.Options{Threshold: 1})
	// Busy thread spinning: samples should attribute to the thread name.
	m.Kernel.CreateThread("spinner", 10, func(tc *kernel.ThreadContext) {
		tc.Exec(m.Freq().Cycles(10 * time.Second))
	})
	m.RunFor(m.Freq().Cycles(500 * time.Millisecond))
	tool.OnLatency(m.MS(400))
	eps := tool.Episodes()
	if len(eps) != 1 {
		t.Fatal("no episode")
	}
	sawSpinner := false
	for _, fc := range eps[0].Analysis() {
		if fc.Frame.Module == "spinner" {
			sawSpinner = true
		}
	}
	if !sawSpinner {
		t.Fatalf("spinner thread not attributed: %+v", eps[0].Analysis())
	}
}
