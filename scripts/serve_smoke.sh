#!/bin/sh
# serve-smoke: end-to-end exercise of the campaign service binaries.
#
#   1. start latserved on a scratch port with a scratch cache dir
#   2. submit the default 5s matrix via latctl and fetch its result
#   3. diff those bytes against the same campaign run locally by
#      cmd/reproduce -encode (the byte-identity guarantee)
#   4. resubmit: assert the in-memory dedup joined the existing job
#   5. restart latserved on the same cache dir, resubmit, and assert via
#      /metrics that the result was served entirely from the
#      content-addressed cache (zero cells executed, all checkpoint hits)
#
# Scratch state lives in results-serve-smoke/ (gitignored); it is removed
# on success and kept for post-mortem on failure.
set -eu

GO=${GO:-go}
DIR=results-serve-smoke
ADDR=127.0.0.1:8471
URL=http://$ADDR
SEED=3
DURATION=5s

rm -rf "$DIR"
mkdir -p "$DIR"

fail() {
    echo "serve-smoke: $*" >&2
    exit 1
}

SERVED_PID=
cleanup() {
    [ -n "$SERVED_PID" ] && kill "$SERVED_PID" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

echo "== build"
$GO build -o "$DIR/latserved" ./cmd/latserved
$GO build -o "$DIR/latctl" ./cmd/latctl
$GO build -o "$DIR/reproduce" ./cmd/reproduce

start_served() {
    "$DIR/latserved" -addr "$ADDR" -cache "$DIR/cache" -jobs 4 2>>"$DIR/latserved.log" &
    SERVED_PID=$!
    i=0
    until curl -sf "$URL/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "latserved did not come up (see $DIR/latserved.log)"
        sleep 0.1
    done
}

metric() {
    # metric <name>: print the integer value of a counter from /metrics
    curl -sf "$URL/metrics" | sed -n "s/^.*\"$1\": \([0-9][0-9]*\).*$/\1/p" | head -1
}

echo "== start latserved"
start_served

echo "== submit via latctl and fetch the result"
ID=$("$DIR/latctl" -server "$URL" submit -duration "$DURATION" -seed "$SEED" -runs 1)
"$DIR/latctl" -server "$URL" result -o "$DIR/server.json" "$ID"

echo "== run the same campaign locally via cmd/reproduce -encode"
"$DIR/reproduce" -duration "$DURATION" -seed "$SEED" -runs 1 -jobs 4 \
    -outdir "$DIR/repro" -encode "$DIR/local.json" >/dev/null

echo "== byte-identity: server result vs local reproduce"
cmp "$DIR/server.json" "$DIR/local.json" || fail "server result differs from local reproduce run"

echo "== resubmit: in-flight/completed dedup"
ID2=$("$DIR/latctl" -server "$URL" submit -duration "$DURATION" -seed "$SEED" -runs 1)
[ "$ID2" = "$ID" ] || fail "identical campaign got a different id ($ID2 vs $ID)"
DEDUP=$(metric server_campaigns_deduped)
[ "${DEDUP:-0}" -ge 1 ] || fail "expected server_campaigns_deduped >= 1, got '${DEDUP:-}'"

echo "== restart latserved on the same cache: warm-cache byte identity"
kill "$SERVED_PID"
wait "$SERVED_PID" 2>/dev/null || true
SERVED_PID=
start_served
"$DIR/latctl" -server "$URL" result -o "$DIR/server-warm.json" \
    "$("$DIR/latctl" -server "$URL" submit -duration "$DURATION" -seed "$SEED" -runs 1)"
cmp "$DIR/server-warm.json" "$DIR/local.json" || fail "warm-cache result differs from local run"
EXEC=$(metric server_cells_executed)
HITS=$(metric campaign_checkpoint_hits)
[ "${EXEC:-1}" -eq 0 ] || fail "warm cache executed $EXEC cells, want 0"
[ "${HITS:-0}" -ge 1 ] || fail "warm cache shows no checkpoint hits"
echo "   warm cache: 0 cells executed, $HITS checkpoint hits"

kill "$SERVED_PID"
wait "$SERVED_PID" 2>/dev/null || true
SERVED_PID=

echo "serve-smoke: ok (server result byte-identical to local run, cold and warm)"
rm -rf "$DIR"
