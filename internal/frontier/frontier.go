// Package frontier sweeps offered interrupt load against each OS persona ×
// NIC-moderation mode and locates the livelock knee: the highest offered
// packet rate the system sustains under the deterministic saturation
// criterion. The paper measures latency at fixed, polite workloads; the
// frontier asks the complementary modern question — how much interrupt
// load can each persona absorb before latency collapses — and reports the
// latency-CCDF-vs-offered-load surface that results.
//
// The sweep is built on internal/campaign: every probe is a campaign cell
// (or an adaptive-precision logical cell), so frontiers inherit parallel
// execution, checkpoint/resume, fleet dispatch and the byte-for-byte
// determinism contract for free. Probe keys are
// "storm/<os>/<mode>/r<pps>", and the knee search — geometric grid ascent
// to bracket the knee, then log-space bisection inside the bracket — asks
// for exactly the same keys in the same order regardless of Jobs, resume
// or fleet placement.
package frontier

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"wdmlat/internal/campaign"
	"wdmlat/internal/core"
	"wdmlat/internal/hw"
	"wdmlat/internal/metrics"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/stats"
)

// Metric names the sweep publishes on Options.Metrics.
const (
	// MetricProbes counts offered-load probes evaluated (grid + bisection).
	MetricProbes = "frontier_probes"
	// MetricSaturatedProbes counts probes the criterion judged saturated.
	MetricSaturatedProbes = "frontier_saturated_probes"
	// MetricKnees counts tracks that located a knee inside the sweep range.
	MetricKnees = "frontier_knees"
	// MetricCensoredTracks counts tracks that never saturated up to MaxPPS
	// (their knee is right-censored at the sweep ceiling).
	MetricCensoredTracks = "frontier_censored_tracks"
)

// Options configures a sweep.
type Options struct {
	// OSes are the personas to sweep (default NT4 and Win98).
	OSes []ospersona.OS
	// Modes are the NIC moderation modes (default per-assert and itr).
	Modes []hw.Moderation
	// MinPPS / MaxPPS bound the offered-rate range (defaults 4096 and
	// 262144, the storm lattice ceiling). MinPPS must be >= 1.
	MinPPS, MaxPPS float64
	// GridFactor is the geometric ascent ratio (default 2).
	GridFactor float64
	// BisectSteps is how many log-space bisection probes refine the knee
	// bracket after the grid ascent (default 3).
	BisectSteps int
	// Duration is the per-replica virtual collection time (default 2s).
	Duration time.Duration
	// Runs is the fixed replica count per probe (default 3); ignored when
	// Precision is set.
	Runs int
	// Precision, if non-nil, replaces fixed replicas with the PR 9
	// adaptive stopping rule per probe.
	Precision *stats.Precision
	// StormBytes is the storm frame size (default 1460).
	StormBytes int
	// NICGapUS is the moderation spacing for the throttled modes
	// (default 250 µs).
	NICGapUS float64
	// FramePacing attaches the display frame pacer to every probe, so the
	// frontier also reports missed-frame distributions along the load axis.
	FramePacing bool
	// Criterion is the saturation test (zero value = documented defaults).
	Criterion Criterion
	// Metrics, if non-nil, receives the frontier_* instruments. Telemetry
	// is out-of-band: results are byte-identical with or without it.
	Metrics *metrics.Registry
}

func (o Options) normalized() Options {
	if len(o.OSes) == 0 {
		o.OSes = []ospersona.OS{ospersona.NT4, ospersona.Win98}
	}
	if len(o.Modes) == 0 {
		o.Modes = []hw.Moderation{hw.ModeratePerWindow, hw.ModerateITR}
	}
	if o.MinPPS <= 0 {
		o.MinPPS = 4096
	}
	if o.MaxPPS <= 0 {
		o.MaxPPS = 262144
	}
	if o.GridFactor <= 1 {
		o.GridFactor = 2
	}
	if o.BisectSteps == 0 {
		o.BisectSteps = 3
	}
	if o.Duration == 0 {
		o.Duration = 2 * time.Second
	}
	if o.Runs <= 0 {
		o.Runs = 3
	}
	o.Criterion = o.Criterion.Normalized()
	return o
}

// Probe is one evaluated offered-load point on a track.
type Probe struct {
	PPS     float64
	Verdict Verdict
	// Result is the merged measurement at this rate (latency histograms,
	// storm accounting, pacing stats) — the CCDF source for the figures.
	Result *core.Result
	// Adaptive reports the replica loop's outcome when a precision policy
	// drove the probe (zero value under fixed replicas).
	Adaptive campaign.Adaptive
}

// Frontier is one (persona × moderation mode) track's outcome.
type Frontier struct {
	OS   ospersona.OS
	Mode hw.Moderation
	// Probes are every evaluated point, sorted by ascending offered rate.
	Probes []Probe
	// Knee is the highest offered rate judged sustainable. Zero means even
	// MinPPS saturated (the knee lies below the sweep floor).
	Knee float64
	// Censored reports that no probe saturated up to MaxPPS: Knee equals
	// MaxPPS but the true knee lies beyond the sweep ceiling.
	Censored bool
}

// KneeLabel renders the knee for tables: "157k pps", "<4096 pps" when the
// floor saturated, ">=262144 pps (censored)" when the ceiling held.
func (f *Frontier) KneeLabel() string {
	switch {
	case f.Censored:
		return fmt.Sprintf(">=%d pps (censored)", int64(f.Knee))
	case f.Knee == 0:
		return fmt.Sprintf("<%d pps", int64(f.Probes[0].PPS))
	default:
		return fmt.Sprintf("%d pps", int64(f.Knee))
	}
}

// rateKey is the probe's campaign cell key: offered rates are always whole
// packets per second, so the key is exact and stable.
func rateKey(os ospersona.OS, mode hw.Moderation, pps float64) string {
	return campaign.Key("storm", campaign.OSSlug(os), mode.String(),
		fmt.Sprintf("r%d", int64(pps)))
}

// Run sweeps every (persona × mode) track on the given campaign runner and
// returns the frontiers in (OSes × Modes) declaration order. Tracks run
// concurrently — the runner's worker pool still bounds actual simulation
// parallelism — and every probe's result is deterministic per the campaign
// contract, so the returned frontiers are byte-identical at any Jobs
// setting, across kill/resume against the same store, and under fleet
// dispatch.
func Run(r *campaign.Runner, opts Options) ([]Frontier, error) {
	o := opts.normalized()
	probesMet := counter(o.Metrics, MetricProbes)
	satMet := counter(o.Metrics, MetricSaturatedProbes)
	kneesMet := counter(o.Metrics, MetricKnees)
	censMet := counter(o.Metrics, MetricCensoredTracks)

	type slot struct {
		f   Frontier
		err error
	}
	out := make([]slot, len(o.OSes)*len(o.Modes))
	var wg sync.WaitGroup
	idx := 0
	for _, os := range o.OSes {
		for _, mode := range o.Modes {
			os, mode, i := os, mode, idx
			idx++
			wg.Add(1)
			go func() {
				defer wg.Done()
				f, err := sweepTrack(r, o, os, mode, probesMet, satMet)
				if err == nil {
					if f.Censored {
						censMet.Inc()
					} else if f.Knee > 0 {
						kneesMet.Inc()
					}
				}
				out[i] = slot{f, err}
			}()
		}
	}
	wg.Wait()

	frontiers := make([]Frontier, 0, len(out))
	for _, s := range out {
		if s.err != nil {
			return nil, s.err
		}
		frontiers = append(frontiers, s.f)
	}
	return frontiers, nil
}

// sweepTrack runs one (os, mode) track: geometric ascent from MinPPS until
// the first saturated probe (or the ceiling), then log-space bisection
// inside the bracketing interval.
func sweepTrack(r *campaign.Runner, o Options, os ospersona.OS, mode hw.Moderation,
	probesMet, satMet *metrics.Counter) (Frontier, error) {

	f := Frontier{OS: os, Mode: mode}
	seen := map[float64]bool{}

	probe := func(pps float64) (Probe, error) {
		cfg := core.RunConfig{
			OS:            os,
			Idle:          true,
			StormPPS:      pps,
			StormBytes:    o.StormBytes,
			NICModeration: mode,
			NICGapUS:      o.NICGapUS,
			FramePacing:   o.FramePacing,
			Duration:      o.Duration,
		}
		key := rateKey(os, mode, pps)
		var res *core.Result
		var ad campaign.Adaptive
		var err error
		if o.Precision != nil {
			res, ad, err = r.MergedAdaptive(key, cfg, *o.Precision)
		} else {
			r.Submit(campaign.Replicas(key, cfg, o.Runs)...)
			res, err = r.Merged(key, o.Runs)
		}
		if err != nil {
			return Probe{}, err
		}
		p := Probe{PPS: pps, Verdict: o.Criterion.Evaluate(res), Result: res, Adaptive: ad}
		probesMet.Inc()
		if p.Verdict.Saturated {
			satMet.Inc()
		}
		f.Probes = append(f.Probes, p)
		seen[pps] = true
		return p, nil
	}

	// Geometric ascent: bracket the knee between the last sustainable rate
	// (lo) and the first saturated one (hi).
	var lo, hi float64
	pps := math.Floor(o.MinPPS)
	for {
		p, err := probe(pps)
		if err != nil {
			return f, err
		}
		if p.Verdict.Saturated {
			hi = pps
			break
		}
		lo = pps
		if pps >= o.MaxPPS {
			break
		}
		pps = math.Floor(pps * o.GridFactor)
		if pps > o.MaxPPS {
			pps = math.Floor(o.MaxPPS)
		}
	}

	switch {
	case hi == 0:
		// Never saturated: right-censored at the ceiling.
		f.Knee, f.Censored = lo, true
	case lo == 0:
		// Even the floor saturated: the knee lies below the sweep range.
		f.Knee = 0
	default:
		// Log-space bisection: rates are whole pps, and a repeated midpoint
		// (bracket too tight to split) ends the refinement early.
		for step := 0; step < o.BisectSteps; step++ {
			mid := math.Floor(math.Sqrt(lo * hi))
			if seen[mid] || mid <= lo || mid >= hi {
				break
			}
			p, err := probe(mid)
			if err != nil {
				return f, err
			}
			if p.Verdict.Saturated {
				hi = mid
			} else {
				lo = mid
			}
		}
		f.Knee = lo
	}

	sort.Slice(f.Probes, func(i, j int) bool { return f.Probes[i].PPS < f.Probes[j].PPS })
	return f, nil
}

// counter resolves a named counter, or a nil handle (whose methods are
// nil-safe no-ops) when reg is nil.
func counter(reg *metrics.Registry, name string) *metrics.Counter {
	if reg == nil {
		return nil
	}
	return reg.Counter(name)
}
