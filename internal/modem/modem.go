// Package modem models the paper's motivating hard real-time driver: a
// host-based soft modem datapump (§1.3, §5.1). The datapump is the modem's
// physical-interface layer; it "executes periodically with a cycle time of
// between 4 and 16 milliseconds and takes somewhat less than 25% of a cycle
// on a 300 MHz Pentium II". Under WDM it is implemented either as a DPC
// (interrupt processing) or as a real-time kernel thread, and its quality
// of service is the mean time between buffer underruns (Figures 6–7).
//
// The package also implements the configurable periodic-computation tool
// the paper describes as future work (§6.1): "a tool that models periodic
// computation at configurable modalities (e.g., threads, DPCs) and
// priorities within modalities, and reports the number of deadlines that
// have been missed".
package modem

import (
	"fmt"

	"wdmlat/internal/kernel"
	"wdmlat/internal/sim"
)

// Modality selects how the periodic computation is scheduled — the paper's
// central dichotomy.
type Modality int

// The two WDM processing modalities (§1, §5.1).
const (
	DPCBased Modality = iota
	ThreadBased
)

// String implements fmt.Stringer.
func (m Modality) String() string {
	switch m {
	case DPCBased:
		return "DPC-based"
	case ThreadBased:
		return "thread-based"
	default:
		return "Modality(?)"
	}
}

// Config describes a datapump.
type Config struct {
	// CycleMS is the buffer time t in milliseconds (4–16 for modems,
	// Table 1).
	CycleMS float64
	// Buffers is n; latency tolerance is (n-1)*t (§1).
	Buffers int
	// ComputeFraction is the fraction of each cycle spent computing
	// (default 0.25, the paper's conservative estimate for data transfer
	// mode on a 300 MHz Pentium II).
	ComputeFraction float64
	// Modality selects DPC or thread processing.
	Modality Modality
	// ThreadPriority applies to ThreadBased (default real-time high 28 —
	// §5.1 analyzes "high-priority, real-time kernel mode threads").
	ThreadPriority int
	// Vector and Irql place the modem codec's interrupt (defaults 37 and
	// DIRQL 15).
	Vector int
	Irql   kernel.IRQL
}

func (c *Config) fillDefaults() {
	if c.CycleMS <= 0 {
		c.CycleMS = 8
	}
	if c.Buffers <= 0 {
		c.Buffers = 2
	}
	if c.ComputeFraction <= 0 {
		c.ComputeFraction = 0.25
	}
	if c.ThreadPriority == 0 {
		c.ThreadPriority = kernel.RealtimeHigh
	}
	if c.Vector == 0 {
		c.Vector = 37
	}
	if c.Irql == 0 {
		c.Irql = 15
	}
}

// ToleranceMS returns the latency tolerance (n-1)*t of the configuration.
func (c Config) ToleranceMS() float64 { return float64(c.Buffers-1) * c.CycleMS }

// Datapump is an attached, startable datapump driver. The codec hardware
// is line-paced: it consumes one buffer per cycle on its own clock (DMA
// from a ring) and asserts its interrupt; the datapump computation — in the
// ISR's DPC or in a kernel thread it signals — must produce the next buffer
// before the ring drains.
type Datapump struct {
	k   *kernel.Kernel
	cfg Config

	intr    *kernel.Interrupt
	dpc     *kernel.DPC
	ev      *kernel.Event
	thread  *kernel.Thread
	compute sim.Cycles
	period  sim.Cycles

	queue     int // produced buffers ready for the line (0..Buffers)
	cycles    uint64
	underruns uint64
	started   sim.Time
	running   bool
	pace      *sim.Event
	paceFn    func(sim.Time) // line-pace callback, allocated once
}

// Attach creates a datapump on a machine's kernel. Start begins the line.
func Attach(k *kernel.Kernel, cfg Config) *Datapump {
	cfg.fillDefaults()
	freq := k.CPU().Freq()
	d := &Datapump{
		k:       k,
		cfg:     cfg,
		period:  freq.FromMillis(cfg.CycleMS),
		compute: sim.Cycles(float64(freq.FromMillis(cfg.CycleMS)) * cfg.ComputeFraction),
	}
	d.paceFn = func(sim.Time) {
		// Event records are pooled: drop the handle before anything else so
		// Stop cannot cancel a recycled record.
		d.pace = nil
		if !d.running {
			return
		}
		d.cycles++
		if d.queue > 0 {
			d.queue--
		} else {
			// Buffer underrun: the hardware transmits a dummy buffer
			// (footnote 6: indistinguishable from line noise to the peer).
			d.underruns++
		}
		d.armPace()
		d.intr.Assert()
	}
	d.dpc = kernel.NewDPC("SOFTMDM", kernel.MediumImportance, d.pumpDpc)
	d.intr = k.Connect(cfg.Vector, cfg.Irql, "SOFTMDM", "_CodecISR", func(c *kernel.IsrContext) {
		c.Charge(1500) // ~5 µs: WDM ISRs are supposed to be very short
		c.QueueDpc(d.dpc)
	})
	if cfg.Modality == ThreadBased {
		d.ev = k.NewEvent("softmodem.wake", kernel.SynchronizationEvent)
		prio := cfg.ThreadPriority
		d.thread = k.CreateThread("SoftModemPump", kernel.NormalPriority, func(tc *kernel.ThreadContext) {
			tc.SetPriority(prio)
			for {
				tc.Wait(d.ev)
				tc.Exec(d.compute)
				tc.Do(d.produce)
			}
		})
	}
	return d
}

// Config returns the datapump configuration.
func (d *Datapump) Config() Config { return d.cfg }

// Start opens the line: the codec consumes one buffer per cycle from a
// queue that starts full, asserting its interrupt each time.
func (d *Datapump) Start() {
	if d.running {
		panic("modem: datapump already started")
	}
	d.running = true
	d.queue = d.cfg.Buffers
	d.started = d.k.Engine().Now()
	d.armPace()
}

// armPace schedules the next hardware cycle. This is pure hardware: it is
// not delayed by anything the OS does.
func (d *Datapump) armPace() {
	d.pace = d.k.Engine().After(d.period, "modem-line", d.paceFn)
}

// Stop closes the line.
func (d *Datapump) Stop() {
	d.running = false
	if d.pace != nil {
		d.k.Engine().Cancel(d.pace)
		d.pace = nil
	}
}

// pumpDpc is the datapump's deferred processing: compute in the DPC itself
// (multi-millisecond "interrupt context" computation, §1.3) or wake the
// pump thread.
func (d *Datapump) pumpDpc(c *kernel.DpcContext) {
	if !d.running {
		return
	}
	switch d.cfg.Modality {
	case DPCBased:
		c.Charge(d.compute)
		d.produce()
	case ThreadBased:
		c.SetEvent(d.ev)
	}
}

// produce adds a completed buffer if there is room.
func (d *Datapump) produce() {
	if d.queue < d.cfg.Buffers {
		d.queue++
	}
}

// Cycles returns the number of elapsed hardware cycles.
func (d *Datapump) Cycles() uint64 { return d.cycles }

// Underruns returns the number of missed buffers.
func (d *Datapump) Underruns() uint64 { return d.underruns }

// MTTFSeconds returns the observed mean time to buffer underrun in virtual
// seconds; +Inf (as math.Inf) is represented by ok=false when no underrun
// occurred.
func (d *Datapump) MTTFSeconds() (float64, bool) {
	if d.underruns == 0 {
		return 0, false
	}
	elapsed := d.k.Engine().Now().Sub(d.started)
	sec := d.k.CPU().Freq().Duration(elapsed).Seconds()
	return sec / float64(d.underruns), true
}

// String describes the datapump.
func (d *Datapump) String() string {
	return fmt.Sprintf("softmodem %v t=%.0fms n=%d (tolerance %.0f ms)",
		d.cfg.Modality, d.cfg.CycleMS, d.cfg.Buffers, d.cfg.ToleranceMS())
}
