package core

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"wdmlat/internal/hw"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/workload"
)

func roundTrip(t *testing.T, r *Result) *Result {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeResult(&buf, r); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeResult(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

// TestResultCodecRoundTrip: decode(encode(r)) is deep-equal to r for both
// OS personalities — including the NT result's nil legacy-hook histograms
// and the Win98 cause-tool episode captures — so a checkpointed cell
// replays into the same artifacts an uninterrupted run writes.
func TestResultCodecRoundTrip(t *testing.T) {
	cfgs := []RunConfig{
		{OS: ospersona.NT4, Workload: workload.Business, Duration: 2 * time.Second, Seed: 11},
		{OS: ospersona.Win98, Workload: workload.Games, Duration: 2 * time.Second, Seed: 12,
			SoundScheme: true, CauseAnalysis: true, CauseThreshold: 4 * time.Millisecond},
		{OS: ospersona.NT4, Idle: true, Duration: time.Second, Seed: 13,
			StormPPS: 32768, NICModeration: hw.ModerateITR, FramePacing: true},
	}
	for _, cfg := range cfgs {
		r := Run(cfg)
		got := roundTrip(t, r)
		if !reflect.DeepEqual(r, got) {
			t.Fatalf("%v/%v: round-trip changed result", cfg.OS, cfg.Workload)
		}
	}
}

// TestResultCodecVersionGuard: a stored result from a different codec
// version must refuse to decode — stale checkpoints re-run, never replay.
func TestResultCodecVersionGuard(t *testing.T) {
	r := Run(RunConfig{OS: ospersona.NT4, Workload: workload.Web, Duration: time.Second, Seed: 5})
	var buf bytes.Buffer
	if err := EncodeResult(&buf, r); err != nil {
		t.Fatal(err)
	}
	data := bytes.Replace(buf.Bytes(),
		[]byte(`"Version":2`), []byte(`"Version":999`), 1)
	if !bytes.Contains(data, []byte(`"Version":999`)) {
		t.Fatal("test setup: version tag not found in encoding")
	}
	if _, err := DecodeResult(bytes.NewReader(data)); err == nil {
		t.Fatal("decode of mismatched codec version succeeded, want error")
	}
}

// TestResultCloneIndependent: merging into a clone must leave the original
// untouched (the collect-twice corruption fixed in the campaign runner).
func TestResultCloneIndependent(t *testing.T) {
	a := Run(RunConfig{OS: ospersona.Win98, Workload: workload.Business, Duration: 2 * time.Second, Seed: 21})
	b := Run(RunConfig{OS: ospersona.Win98, Workload: workload.Business, Duration: 2 * time.Second, Seed: 22})

	var before bytes.Buffer
	if err := EncodeResult(&before, a); err != nil {
		t.Fatal(err)
	}
	cl := a.Clone()
	if !reflect.DeepEqual(a, cl) {
		t.Fatal("clone not equal to original")
	}
	cl.Merge(b)
	var after bytes.Buffer
	if err := EncodeResult(&after, a); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("merging into a clone mutated the original result")
	}
	if cl.Samples != a.Samples+b.Samples {
		t.Fatalf("clone did not accumulate: %d samples, want %d", cl.Samples, a.Samples+b.Samples)
	}
}
