package kernel_test

import (
	"testing"

	"wdmlat/internal/kernel"
	"wdmlat/internal/sim"
)

func TestExecRaisedDispatchBlocksDpcsAndThreads(t *testing.T) {
	b := newBench(t, 1, false)
	var dpcAt, hiAt, sectionEnd sim.Time
	d := kernel.NewDPC("d", kernel.MediumImportance, func(c *kernel.DpcContext) {
		dpcAt = c.Now()
	})
	ev := b.k.NewEvent("hi", kernel.SynchronizationEvent)
	b.k.CreateThread("hi", 28, func(tc *kernel.ThreadContext) {
		tc.Wait(ev)
		hiAt = tc.Now()
	})
	b.k.CreateThread("raiser", 16, func(tc *kernel.ThreadContext) {
		tc.Exec(10_000)
		tc.ExecRaised(kernel.DispatchLevel, 100_000)
		sectionEnd = tc.Now()
	})
	// Mid-section: queue a DPC and wake the priority-28 thread. Neither
	// may run until the raised section ends.
	b.eng.At(50_000, "mid", func(sim.Time) {
		b.k.QueueDpc(d)
		b.k.SetEvent(ev)
	})
	b.eng.RunUntil(10_000_000)
	if sectionEnd == 0 || dpcAt == 0 || hiAt == 0 {
		t.Fatalf("incomplete: section=%d dpc=%d hi=%d", sectionEnd, dpcAt, hiAt)
	}
	// Deterministic timeline: three dispatches (worker, hi, raiser) at
	// costSwitch each, then 10k of exec, then the 100k raised section:
	// the section ends at 3*200 + 10000 + 100000 = 110600.
	const rawSectionEnd = 3*costSwitch + 10_000 + 100_000
	if dpcAt < rawSectionEnd {
		t.Fatalf("DPC at %d ran inside the raised section ending %d", dpcAt, rawSectionEnd)
	}
	if hiAt < rawSectionEnd {
		t.Fatalf("priority-28 thread at %d preempted a DISPATCH-level section ending %d", hiAt, rawSectionEnd)
	}
	// DPCs drain before threads once the section drops.
	if dpcAt > hiAt {
		t.Fatalf("DPC at %d after thread at %d", dpcAt, hiAt)
	}
}

func TestExecRaisedDispatchStillPreemptedByIsr(t *testing.T) {
	b := newBench(t, 1, false)
	var isrAt sim.Time
	intr := b.k.Connect(40, 16, "DRV", "_ISR", func(c *kernel.IsrContext) {
		isrAt = c.Now()
	})
	b.k.CreateThread("raiser", 16, func(tc *kernel.ThreadContext) {
		tc.ExecRaised(kernel.DispatchLevel, 300_000)
	})
	b.eng.At(100_000, "irq", func(sim.Time) { intr.Assert() })
	b.eng.RunUntil(10_000_000)
	if isrAt == 0 || isrAt > 110_000 {
		t.Fatalf("ISR at %d: interrupts must preempt a DISPATCH-level section", isrAt)
	}
}

func TestExecRaisedHighLevelMasksInterrupts(t *testing.T) {
	b := newBench(t, 1, false)
	var isrAt sim.Time
	intr := b.k.Connect(40, 16, "DRV", "_ISR", func(c *kernel.IsrContext) {
		isrAt = c.Now()
	})
	var sectionEnd sim.Time
	b.k.CreateThread("raiser", 16, func(tc *kernel.ThreadContext) {
		tc.ExecRaised(kernel.HighLevel, 300_000)
		tc.Do(func() { sectionEnd = b.cpu.TSC() })
	})
	b.eng.At(100_000, "irq", func(sim.Time) { intr.Assert() })
	b.eng.RunUntil(10_000_000)
	if isrAt == 0 {
		t.Fatal("ISR never ran")
	}
	if isrAt < sectionEnd-1000 {
		t.Fatalf("ISR at %d ran inside a HIGH_LEVEL section ending %d", isrAt, sectionEnd)
	}
}

func TestExecRaisedAccountsCpuTime(t *testing.T) {
	b := newBench(t, 1, false)
	var th *kernel.Thread
	th = b.k.CreateThread("raiser", 16, func(tc *kernel.ThreadContext) {
		tc.Exec(10_000)
		tc.ExecRaised(kernel.DispatchLevel, 40_000)
	})
	b.eng.RunUntil(10_000_000)
	if got := th.CPUTime(); got != 50_000 {
		t.Fatalf("cpu time = %d, want 50000", got)
	}
}

func TestExecRaisedValidation(t *testing.T) {
	b := newBench(t, 1, false)
	done := make(chan error, 1)
	b.k.CreateThread("bad", 16, func(tc *kernel.ThreadContext) {
		defer func() {
			if recover() == nil {
				done <- nil
			} else {
				done <- errSentinel
			}
		}()
		tc.ExecRaised(kernel.PassiveLevel, 1000)
	})
	b.eng.RunUntil(1_000_000)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("ExecRaised at PASSIVE should panic")
		}
	default:
		t.Fatal("thread never reached the call")
	}
}

var errSentinel = sentinelError{}

type sentinelError struct{}

func (sentinelError) Error() string { return "panicked" }
