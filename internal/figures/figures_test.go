package figures

import (
	"io"
	"strings"
	"testing"
	"time"

	"wdmlat/internal/campaign"
	"wdmlat/internal/core"
	"wdmlat/internal/mttf"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/stats"
	"wdmlat/internal/workload"
)

func render(t *testing.T, write func(w io.Writer) error) string {
	t.Helper()
	var b strings.Builder
	if err := write(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestTable1(t *testing.T) {
	out := render(t, Table1().Write)
	for _, want := range []string{"ADSL", "Modem", "RT audio", "RT video", "12 to 20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestTable2BothSystems(t *testing.T) {
	nt := render(t, Table2(ospersona.NT4).Write)
	w98 := render(t, Table2(ospersona.Win98).Write)
	if !strings.Contains(nt, "NTFS") || !strings.Contains(w98, "FAT32") {
		t.Fatal("filesystem rows wrong")
	}
	if !strings.Contains(w98, "Plus! 98") {
		t.Fatal("Plus! pack row missing from Win98 config")
	}
}

func campaignResults(t *testing.T) map[workload.Class]*core.Result {
	t.Helper()
	out := map[workload.Class]*core.Result{}
	for _, wl := range []workload.Class{workload.Business, workload.Games} {
		out[wl] = core.Run(core.RunConfig{
			OS: ospersona.Win98, Workload: wl,
			Duration: 10 * time.Second, Seed: 9,
		})
	}
	return out
}

func TestTable3RendersAllRows(t *testing.T) {
	// Full four-class map (reuse the two-run results for the others; the
	// builder only requires presence).
	results := campaignResults(t)
	results[workload.Workstation] = results[workload.Business]
	results[workload.Web] = results[workload.Games]
	out := render(t, Table3(results, "Table 3 test").Write)
	for _, want := range []string{
		"H/W Int. to S/W ISR",
		"S/W ISR to DPC",
		"H/W Interrupt to DPC",
		"DPC to kernel RT thread (High Priority)",
		"H/W Int. to kernel RT thread (Med. Priority)",
		"Office Hr", "Web Wk",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// Win98 results carry the legacy split: no n/a cells.
	if strings.Contains(out, "n/a") {
		t.Fatalf("unexpected n/a for Win98 results:\n%s", out)
	}
}

func TestTable3NTSideMarksLegacyRowsNA(t *testing.T) {
	results := map[workload.Class]*core.Result{}
	for _, wl := range workload.Classes {
		results[wl] = core.Run(core.RunConfig{
			OS: ospersona.NT4, Workload: wl,
			Duration: 5 * time.Second, Seed: 9,
		})
	}
	out := render(t, Table3(results, "NT").Write)
	if !strings.Contains(out, "n/a") {
		t.Fatal("NT table should mark the legacy-hook rows n/a")
	}
}

func TestFigure4Panels(t *testing.T) {
	results := campaignResults(t)
	dpc, t28, t24 := Figure4Panels(results)
	if len(dpc) != 2 || len(t28) != 2 || len(t24) != 2 {
		t.Fatalf("panel sizes: %d %d %d", len(dpc), len(t28), len(t24))
	}
	if dpc[0].Label != "Business Apps" {
		t.Fatalf("series order/label: %q", dpc[0].Label)
	}
	if len(t28[0].Points) == 0 {
		t.Fatal("empty series")
	}
}

func TestMTTFTable(t *testing.T) {
	results := campaignResults(t)
	curves := map[workload.Class][]mttf.Point{}
	for wl, r := range results {
		curves[wl] = mttf.Sweep(r.DpcInt, r.UsageObserved(), 4, 0.25, 5)
	}
	out := render(t, MTTFTable(curves, "Figure 6 test").Write)
	if !strings.Contains(out, "Buffering (ms)") || !strings.Contains(out, "3D Games MTTF(s)") {
		t.Fatalf("table malformed:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3+4 { // title, header, separator + 4 buffer levels
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
}

func TestShortNames(t *testing.T) {
	want := map[workload.Class]string{
		workload.Business:    "Office",
		workload.Workstation: "Wkstn",
		workload.Games:       "Games",
		workload.Web:         "Web",
	}
	for c, s := range want {
		if ShortName(c) != s {
			t.Errorf("ShortName(%v) = %q", c, ShortName(c))
		}
	}
}

func TestFigure4BandPanels(t *testing.T) {
	results := campaignResults(t)
	dpc, t28, t24 := Figure4BandPanels(results, 0.95)
	if len(dpc) != 2 || len(t28) != 2 || len(t24) != 2 {
		t.Fatalf("panel sizes: %d %d %d", len(dpc), len(t28), len(t24))
	}
	for _, p := range dpc[0].Points {
		if p.CCDFLoPercent > p.CCDFHiPercent {
			t.Fatalf("inverted band [%g, %g] at %g ms", p.CCDFLoPercent, p.CCDFHiPercent, p.LoMs)
		}
	}
}

func TestPrecisionTable(t *testing.T) {
	results := campaignResults(t)
	results[workload.Workstation] = results[workload.Business]
	results[workload.Web] = results[workload.Games]
	byOS := map[ospersona.OS]map[workload.Class]*core.Result{ospersona.Win98: results}
	ads := map[string]campaign.Adaptive{}
	for _, wl := range workload.Classes {
		ads[campaign.MatrixKey(ospersona.Win98, wl, "default")] = campaign.Adaptive{Replicas: 3, Converged: true}
	}
	prec := stats.Precision{RelWidth: 0.1}
	out := render(t, PrecisionTable([]ospersona.OS{ospersona.Win98}, workload.Classes, "default",
		byOS, ads, prec, "Precision test").Write)
	for _, want := range []string{
		"Precision test",
		"p99 ms [95% CI]", "p99.9 ms [95% CI]",
		"win98/business/default", "DPC interrupt", "RT 28 thread", "RT 24 thread",
		"true",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// 4 cells x 3 distributions, plus title/header/separator.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3+4*3 {
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
}
