package ospersona

import (
	"wdmlat/internal/hw"
	"wdmlat/internal/kernel"
	"wdmlat/internal/modem"
	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
)

// The frame-pacing application: a third QoS consumer alongside the soft
// modem and audio pipeline. The display's vblank interrupt releases a
// presentation activation each refresh (the D3DKMTWaitForVerticalBlankEvent
// pattern); the activation must render its frame before the next vblank or
// the frame is missed. Its missed-frame and present-jitter distributions
// are a user-visible readout of the same OS latency the paper measures at
// the driver level — on Windows 98 a scheduler-locked window stalls the
// presentation thread even though the vblank ISR and DPC keep running.

// PacingConfig configures StartFramePacing. Zero values take the defaults
// noted per field.
type PacingConfig struct {
	// PeriodMS is the refresh period; default 16.7 ms (60 Hz, Table 2).
	PeriodMS float64
	// ComputeFrac is per-frame render compute as a fraction of the period;
	// default 0.4 (a comfortably feasible frame on an idle machine).
	ComputeFrac float64
	// Priority of the presentation thread; default real-time default (24),
	// the priority ordinary multimedia apps actually get.
	Priority int
}

func (c *PacingConfig) fillDefaults() {
	if c.PeriodMS <= 0 {
		c.PeriodMS = 16.7
	}
	if c.ComputeFrac <= 0 {
		c.ComputeFrac = 0.4
	}
	if c.Priority == 0 {
		c.Priority = kernel.RealtimeDefault
	}
}

// PacingStats is the frame pacer's outcome: counters plus the two
// distributions the frontier reports per persona.
type PacingStats struct {
	VBlanks     uint64 // hardware vblanks while pacing ran
	Releases    uint64 // activations released to the presentation thread
	Completions uint64 // frames presented
	Misses      uint64 // frames past their deadline (includes skips)
	Skips       uint64 // releases dropped: previous frame still in flight
	MaxLateness sim.Cycles

	// FrameLat is release-to-present latency; Jitter is |present interval −
	// refresh period|, the pacing error a viewer perceives as judder.
	FrameLat *stats.Histogram
	Jitter   *stats.Histogram
}

// MissRate returns misses per release (0 if nothing was released).
func (s *PacingStats) MissRate() float64 {
	if s.Releases == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Releases)
}

type pacingApp struct {
	m    *Machine
	task *modem.PeriodicTask

	frameLat *stats.Histogram
	jitter   *stats.Histogram
	period   sim.Cycles

	lastPresent sim.Time
	presented   bool
	running     bool
}

// StartFramePacing attaches the display and presentation thread and begins
// pacing. Like StartAudio, the display hardware is built lazily on first
// use so machines that never pace frames are untouched.
func (m *Machine) StartFramePacing(cfg PacingConfig) {
	if m.pacing != nil && m.pacing.running {
		panic("ospersona: frame pacing already running")
	}
	cfg.fillDefaults()
	period := m.MS(cfg.PeriodMS)
	compute := sim.Cycles(float64(period) * cfg.ComputeFrac)

	if m.Display == nil {
		m.buildDisplay()
	}
	p := &pacingApp{
		m:        m,
		frameLat: stats.NewHistogram(m.Freq()),
		jitter:   stats.NewHistogram(m.Freq()),
		period:   period,
		running:  true,
	}
	t := modem.NewPeriodicTask(m.Kernel, "present", period, compute,
		modem.ThreadBased, cfg.Priority)
	t.ExternallyPaced = true
	t.OnComplete = p.onPresent
	p.task = t
	m.pacing = p
	t.Start()
	m.Display.Start(period)
}

// StopFramePacing halts the raster and the presentation task. Stats remain
// readable afterwards.
func (m *Machine) StopFramePacing() {
	if m.pacing == nil || !m.pacing.running {
		return
	}
	m.pacing.running = false
	m.pacing.task.Stop()
	m.Display.Stop()
}

// FramePacingStats reports the pacer's outcome; ok is false if pacing was
// never started on this machine.
func (m *Machine) FramePacingStats() (s PacingStats, ok bool) {
	p := m.pacing
	if p == nil {
		return PacingStats{}, false
	}
	return PacingStats{
		VBlanks:     m.Display.VBlanks(),
		Releases:    p.task.Releases(),
		Completions: p.task.Completions(),
		Misses:      p.task.Misses(),
		Skips:       p.task.Skips(),
		MaxLateness: p.task.MaxLateness(),
		FrameLat:    p.frameLat,
		Jitter:      p.jitter,
	}, true
}

// buildDisplay wires the vblank interrupt path: ISR at device IRQL 19
// queues the display DPC, which charges pending per-frame work, applies the
// per-frame OS response and releases the presentation activation.
func (m *Machine) buildDisplay() {
	k := m.Kernel
	intr := k.Connect(VectorDisplay, 19, "DISPLAY", "_VsyncISR", func(c *kernel.IsrContext) {
		c.Charge(us(2))
		c.QueueDpc(m.displayDpc)
	})
	m.displayDpc = kernel.NewDPC("DISPLAY", kernel.MediumImportance, func(c *kernel.DpcContext) {
		c.Charge(m.takeExtra(&m.displayDpcExtra))
		if m.pacing != nil && m.pacing.running {
			m.pacing.onVBlank(c)
		}
	})
	m.Display = hw.NewDisplay(m.Eng, intr)
}

// onVBlank runs in the display DPC at each vblank: the presented frame's
// display/sound VxD activity hits the OS, then the next activation is
// released.
func (p *pacingApp) onVBlank(c *kernel.DpcContext) {
	p.m.frames++
	p.m.apply(p.m.Profile.Frame, p.m.Profile.LockFrames, p.m.Profile.MaskFrames,
		&p.m.displayDpcExtra)
	p.task.Release(c)
}

// onPresent observes each completed frame (runs in the presenting thread).
func (p *pacingApp) onPresent(now sim.Time, lat sim.Cycles) {
	p.frameLat.Add(lat)
	if p.presented {
		iv := now.Sub(p.lastPresent)
		dev := iv - p.period
		if dev < 0 {
			dev = -dev
		}
		p.jitter.Add(dev)
	}
	p.presented = true
	p.lastPresent = now
}
