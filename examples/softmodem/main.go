// Softmodem: the §5.1 scenario end to end. A soft modem datapump (8 ms
// cycles, 25% CPU) runs inside a simulated Windows 98 playing a 3D game,
// once as a DPC and once as a high real-time priority thread, with
// different amounts of buffering. The DPC pump survives with far less
// buffering — the paper's reason why "many compute-intensive drivers will
// be forced to use DPCs on Windows 98".
//
// The periodic deadline-miss tool from the paper's future work (§6.1) runs
// alongside to validate the datapump's view.
package main

import (
	"fmt"
	"time"

	"wdmlat/internal/latdriver"
	"wdmlat/internal/modem"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
	"wdmlat/internal/workload"
)

func main() {
	const cycleMS = 8
	fmt.Println("Soft modem datapump on Windows 98 while playing a 3D game (§5.1)")
	fmt.Printf("cycle %d ms, compute 25%% of cycle, 10 virtual minutes per configuration\n\n", cycleMS)
	fmt.Printf("%-14s %-9s %-16s %-10s %s\n", "modality", "buffers", "tolerance (ms)", "underruns", "MTTF")

	for _, modality := range []modem.Modality{modem.DPCBased, modem.ThreadBased} {
		for _, buffers := range []int{2, 3, 5, 7} {
			underruns, mttfs, ok := runOne(modality, buffers, cycleMS)
			mttfStr := "> run length"
			if ok {
				mttfStr = fmt.Sprintf("%.0f s", mttfs)
			}
			cfg := modem.Config{CycleMS: cycleMS, Buffers: buffers}
			fmt.Printf("%-14s %-9d %-16.0f %-10d %s\n",
				modality, buffers, cfg.ToleranceMS(), underruns, mttfStr)
		}
	}

	fmt.Println("\nPeriodic deadline-miss tool (§6.1 future work), thread modality, 8 ms period:")
	m := ospersona.Build(ospersona.Win98, ospersona.Options{Seed: 7})
	defer m.Shutdown()
	pt := modem.NewPeriodicTask(m.Kernel, "probe", m.MS(8), m.MS(2), modem.ThreadBased, 28)
	m.RunFor(m.Freq().Cycles(200 * time.Millisecond))
	gen := workload.New(workload.Games, m)
	gen.Start()
	m.Eng.After(m.MS(50), "start", func(sim.Time) { pt.Start() })
	m.RunFor(m.Freq().Cycles(10 * time.Minute))
	fmt.Printf("  releases %d, completions %d, deadline misses %d (%.3f%%), worst lateness %.1f ms\n",
		pt.Releases(), pt.Completions(), pt.Misses(), pt.MissRate()*100,
		m.Freq().Millis(pt.MaxLateness()))
}

func runOne(modality modem.Modality, buffers int, cycleMS float64) (uint64, float64, bool) {
	m := ospersona.Build(ospersona.Win98, ospersona.Options{Seed: 7})
	defer m.Shutdown()
	// Measurement tool threads exist first, as in the paper's procedure.
	tool, err := latdriver.Install(m.Kernel, m.PIT, latdriver.Options{})
	if err != nil {
		panic(err)
	}
	if err := tool.Start(); err != nil {
		panic(err)
	}
	d := modem.Attach(m.Kernel, modem.Config{
		CycleMS:  cycleMS,
		Buffers:  buffers,
		Modality: modality,
	})
	m.RunFor(m.Freq().Cycles(200 * time.Millisecond))
	gen := workload.New(workload.Games, m)
	gen.Start()
	m.Eng.After(m.MS(50), "pump", func(sim.Time) { d.Start() })
	m.RunFor(m.Freq().Cycles(10 * time.Minute))
	mttfs, ok := d.MTTFSeconds()
	return d.Underruns(), mttfs, ok
}
