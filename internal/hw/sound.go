package hw

import "wdmlat/internal/sim"

// Sound models the audio device (Ensoniq PCI card on NT, Philips USB
// speakers on 98 — Table 2): while playing, it consumes one buffer per
// period and asserts its interrupt line so the driver can refill. A buffer
// that is not refilled in time is an underrun — the audible "breakup" the
// paper traces to the virus scanner (§4.4).
type Sound struct {
	eng  *sim.Engine
	line IRQLine

	period    sim.Cycles
	playing   bool
	queued    int // refilled buffers ready to play
	depth     int // hardware queue depth
	underruns uint64
	periods   uint64
	tick      *sim.Event
	tickFn    func(sim.Time) // period callback, allocated once
}

// NewSound creates a device with the given hardware buffer queue depth.
func NewSound(eng *sim.Engine, line IRQLine, depth int) *Sound {
	if depth <= 0 {
		panic("hw: non-positive sound queue depth")
	}
	s := &Sound{eng: eng, line: line, depth: depth}
	s.tickFn = func(sim.Time) {
		// Event records are pooled: drop the handle before re-arming so a
		// later Stop cannot cancel a recycled record.
		s.tick = nil
		s.periods++
		if s.queued > 0 {
			s.queued--
		} else {
			s.underruns++
		}
		s.arm()
		s.line.Assert() // buffer-complete interrupt: driver should refill
	}
	return s
}

// SetDepth changes the hardware buffer queue depth. Playback must be
// stopped; the latency tolerance of the pipeline is (depth-1) periods plus
// the in-flight buffer.
func (s *Sound) SetDepth(depth int) {
	if s.playing {
		panic("hw: SetDepth while playing")
	}
	if depth <= 0 {
		panic("hw: non-positive sound queue depth")
	}
	s.depth = depth
}

// Depth returns the hardware buffer queue depth.
func (s *Sound) Depth() int { return s.depth }

// Start begins playback with the given buffer period and an initially full
// hardware queue.
func (s *Sound) Start(period sim.Cycles) {
	if period <= 0 {
		panic("hw: non-positive sound period")
	}
	s.Stop()
	s.playing = true
	s.period = period
	s.queued = s.depth
	s.arm()
}

// Stop halts playback.
func (s *Sound) Stop() {
	s.playing = false
	if s.tick != nil {
		s.eng.Cancel(s.tick)
		s.tick = nil
	}
}

func (s *Sound) arm() {
	s.tick = s.eng.After(s.period, "sound-period", s.tickFn)
}

// Refill adds one refilled buffer (the driver DPC calls this). Refilling a
// full queue is a no-op.
func (s *Sound) Refill() {
	if s.queued < s.depth {
		s.queued++
	}
}

// Playing reports whether playback is active.
func (s *Sound) Playing() bool { return s.playing }

// Queued returns the number of ready buffers.
func (s *Sound) Queued() int { return s.queued }

// Underruns returns the number of periods with no buffer ready.
func (s *Sound) Underruns() uint64 { return s.underruns }

// Periods returns the number of elapsed playback periods.
func (s *Sound) Periods() uint64 { return s.periods }
