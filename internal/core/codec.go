package core

// Checkpoint codec for Result. A campaign checkpoint store persists one
// encoded Result per finished cell; on resume the stored bytes must
// reconstruct the cell's result exactly — every histogram bucket, float
// accumulator, kernel counter and cause-tool episode — or the resumed
// campaign's artifacts would drift from an uninterrupted run's. The wire
// form is versioned JSON: Result is pure data with exported fields (the
// histograms carry their own exact codec in internal/stats), and
// ResultCodecVersion guards against replaying results captured by an
// incompatible encoding *or* an incompatible simulation (bump it whenever
// either changes observable output).

import (
	"encoding/json"
	"fmt"
	"io"

	"wdmlat/internal/causetool"
	"wdmlat/internal/kernel"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
	"wdmlat/internal/workload"
)

// ResultCodecVersion identifies the encoding and the simulation semantics
// a stored Result was produced under. Checkpoint fingerprints include it,
// so bumping the version invalidates every stored cell — the safe
// direction: a stale checkpoint silently re-runs, it never corrupts.
// Version 2: storm/pacing fields (NicLat, Storm, Pacing) and the RunConfig
// storm knobs — pre-storm checkpoints re-run rather than silently losing
// the new fields.
const ResultCodecVersion = 2

// resultWire mirrors Result field-for-field plus the version tag.
type resultWire struct {
	Version  int
	Config   RunConfig
	OSName   string
	Class    workload.Class
	Observed sim.Cycles
	Freq     sim.Freq
	Samples  uint64

	DpcInt       *stats.Histogram
	DpcIntOracle *stats.Histogram
	IntLat       *stats.Histogram
	DpcLat       *stats.Histogram
	Thread       map[int]*stats.Histogram
	HwToThread   map[int]*stats.Histogram

	Counters       kernel.Counters
	AudioUnderruns uint64
	AudioPeriods   uint64

	Episodes []causetool.Episode

	NicLat *stats.Histogram       `json:",omitempty"`
	Storm  *StormStats            `json:",omitempty"`
	Pacing *ospersona.PacingStats `json:",omitempty"`
}

// EncodeResult writes r's checkpoint encoding to w.
func EncodeResult(w io.Writer, r *Result) error {
	wire := resultWire{
		Version:        ResultCodecVersion,
		Config:         r.Config,
		OSName:         r.OSName,
		Class:          r.Class,
		Observed:       r.Observed,
		Freq:           r.Freq,
		Samples:        r.Samples,
		DpcInt:         r.DpcInt,
		DpcIntOracle:   r.DpcIntOracle,
		IntLat:         r.IntLat,
		DpcLat:         r.DpcLat,
		Thread:         r.Thread,
		HwToThread:     r.HwToThread,
		Counters:       r.Counters,
		AudioUnderruns: r.AudioUnderruns,
		AudioPeriods:   r.AudioPeriods,
		Episodes:       r.Episodes,
		NicLat:         r.NicLat,
		Storm:          r.Storm,
		Pacing:         r.Pacing,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&wire)
}

// DecodeResult reads one checkpoint-encoded Result from rd.
func DecodeResult(rd io.Reader) (*Result, error) {
	var wire resultWire
	if err := json.NewDecoder(rd).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: decoding result: %w", err)
	}
	if wire.Version != ResultCodecVersion {
		return nil, fmt.Errorf("core: result codec version %d, want %d", wire.Version, ResultCodecVersion)
	}
	return &Result{
		Config:         wire.Config,
		OSName:         wire.OSName,
		Class:          wire.Class,
		Observed:       wire.Observed,
		Freq:           wire.Freq,
		Samples:        wire.Samples,
		DpcInt:         wire.DpcInt,
		DpcIntOracle:   wire.DpcIntOracle,
		IntLat:         wire.IntLat,
		DpcLat:         wire.DpcLat,
		Thread:         wire.Thread,
		HwToThread:     wire.HwToThread,
		Counters:       wire.Counters,
		AudioUnderruns: wire.AudioUnderruns,
		AudioPeriods:   wire.AudioPeriods,
		Episodes:       wire.Episodes,
		NicLat:         wire.NicLat,
		Storm:          wire.Storm,
		Pacing:         wire.Pacing,
	}, nil
}
