// worstcase reproduces Table 3: observed hourly, daily and weekly expected
// worst-case latencies (in milliseconds) for each OS service level, per
// application stress class. The paper publishes the Windows 98 table
// ("because Windows 98 has been recently released"); pass -os nt4 for the
// NT side, whose values sit below the 3 ms modem slack (§5.1).
//
// Horizons follow §3.1/§4.3: collection time maps onto heavy-use time via
// the per-class MS-Test compression factor, a "day" is 6-8 working hours or
// 3-4 consumer hours, and a week is 5 work days or 7 consumer days.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"wdmlat/internal/campaign"
	"wdmlat/internal/cli"
	"wdmlat/internal/core"
	"wdmlat/internal/figures"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/workload"
)

func main() {
	osFlag := flag.String("os", "win98", "operating system: nt4, win98 or win2000")
	duration := flag.Duration("duration", 15*time.Minute, "virtual collection time per workload")
	seed := flag.Uint64("seed", 1, "simulation seed")
	scanner := flag.Bool("scanner", false, "install the Plus! 98 virus scanner")
	runs := flag.Int("runs", 1, "independent replicas to pool per workload (deepens tails)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulation workers")
	checkpoint := flag.String("checkpoint", "", "checkpoint directory: persist finished cells and skip them on re-run")
	obs := cli.NewObs("worstcase", flag.CommandLine)
	cli.AddVersionFlag("worstcase", flag.CommandLine)
	flag.Parse()

	osSel, err := cli.ParseOS(*osFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "worstcase:", err)
		os.Exit(1)
	}
	if err := obs.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "worstcase:", err)
		os.Exit(1)
	}

	variant := "default"
	if *scanner {
		variant = "scanner"
	}
	ctx, stop := cli.SignalContext()
	defer stop()
	st, err := cli.OpenStore(*checkpoint, obs.Registry)
	if err != nil {
		fmt.Fprintln(os.Stderr, "worstcase:", err)
		os.Exit(1)
	}
	run := campaign.New(campaign.Options{BaseSeed: *seed, Jobs: *jobs, Context: ctx, Store: st, Metrics: obs.Registry})
	obs.StartProgress(run)
	byOS, err := run.RunMatrix([]ospersona.OS{osSel}, workload.Classes, variant,
		core.RunConfig{Duration: *duration, VirusScanner: *scanner}, *runs)
	if err != nil {
		cli.FailCampaign("worstcase", run, obs, err)
	}
	results := byOS[osSel]

	name := ospersona.ProfileFor(osSel).Name
	title := fmt.Sprintf("Table 3: Observed Hourly, Daily and Weekly Worst Case %s Latencies (in ms.)\n"+
		"(collection %v x %d per class; horizons in heavy-use time via MS-Test compression)",
		name, *duration, *runs)
	if err := figures.Table3(results, title).Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "worstcase:", err)
		os.Exit(1)
	}
	if err := run.Wait(); err != nil {
		cli.FailCampaign("worstcase", run, obs, err)
	}
	if err := obs.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "worstcase:", err)
		os.Exit(1)
	}
}
