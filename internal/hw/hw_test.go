package hw

import (
	"testing"

	"wdmlat/internal/sim"
)

func TestPITAssertsAtExactPeriods(t *testing.T) {
	eng := sim.NewEngine(1)
	var at []sim.Time
	p := NewPIT(eng, LineFunc(func() { at = append(at, eng.Now()) }))
	p.Program(1000)
	eng.RunUntil(5500)
	if len(at) != 5 {
		t.Fatalf("got %d ticks, want 5", len(at))
	}
	for i, tm := range at {
		if want := sim.Time(1000 * (i + 1)); tm != want {
			t.Fatalf("tick %d at %d, want %d", i, tm, want)
		}
	}
	if p.Ticks() != 5 {
		t.Fatalf("Ticks = %d", p.Ticks())
	}
	if p.NominalTickTime(3) != 3000 {
		t.Fatalf("NominalTickTime(3) = %d", p.NominalTickTime(3))
	}
}

func TestPITReprogram(t *testing.T) {
	eng := sim.NewEngine(1)
	var at []sim.Time
	p := NewPIT(eng, LineFunc(func() { at = append(at, eng.Now()) }))
	p.Program(10_000) // 30 Hz-ish default
	eng.RunUntil(25_000)
	p.Program(1000) // the tool reprograms to 1 kHz
	eng.RunUntil(30_000)
	// 2 slow ticks (10k, 20k) then fast ticks from 26k on.
	if len(at) < 6 {
		t.Fatalf("ticks: %v", at)
	}
	if at[0] != 10_000 || at[1] != 20_000 {
		t.Fatalf("slow ticks: %v", at[:2])
	}
	if at[2] != 26_000 {
		t.Fatalf("first fast tick at %d, want 26000", at[2])
	}
	if p.Period() != 1000 {
		t.Fatalf("period = %d", p.Period())
	}
}

func TestPITStop(t *testing.T) {
	eng := sim.NewEngine(1)
	n := 0
	p := NewPIT(eng, LineFunc(func() { n++ }))
	p.Program(1000)
	eng.RunUntil(3500)
	p.Stop()
	eng.RunUntil(10_000)
	if n != 3 {
		t.Fatalf("ticks after stop = %d, want 3", n)
	}
}

func TestPITValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Program(0) should panic")
		}
	}()
	NewPIT(eng, LineFunc(func() {})).Program(0)
}

func TestDiskServiceAndCompletion(t *testing.T) {
	eng := sim.NewEngine(1)
	interrupts := 0
	d := NewDisk(eng, LineFunc(func() { interrupts++ }), sim.Constant(1000), 10) // 10 B/cycle
	var done []*DiskRequest
	d.SetCompletionHandler(func(r *DiskRequest) { done = append(done, r) })

	d.Submit(&DiskRequest{Bytes: 50_000, Tag: "a"})
	// Service = 1000 seek + 5000 transfer = 6000.
	eng.RunUntil(6000)
	if interrupts != 1 {
		t.Fatalf("interrupts = %d, want 1", interrupts)
	}
	req := d.CompleteTransfer()
	if req == nil || req.Tag != "a" {
		t.Fatalf("completion = %+v", req)
	}
	if len(done) != 1 {
		t.Fatal("completion handler not invoked")
	}
	if d.CompleteTransfer() != nil {
		t.Fatal("second completion should be nil")
	}
	if d.Transfers() != 1 {
		t.Fatalf("transfers = %d", d.Transfers())
	}
}

func TestDiskQueuesFIFO(t *testing.T) {
	eng := sim.NewEngine(1)
	var asserts int
	d := NewDisk(eng, LineFunc(func() { asserts++ }), sim.Constant(100), 100)
	var order []any
	// Acknowledge each completion from the "ISR" as it happens.
	prev := 0
	for _, tag := range []string{"a", "b", "c"} {
		d.Submit(&DiskRequest{Bytes: 10_000, Tag: tag})
	}
	// Poll for completions the way a driver ISR would.
	var poll func(sim.Time)
	poll = func(sim.Time) {
		if asserts > prev {
			prev = asserts
			if req := d.CompleteTransfer(); req != nil {
				order = append(order, req.Tag)
			}
		}
		if len(order) < 3 {
			eng.After(10, "poll", poll)
		}
	}
	eng.After(10, "poll", poll)
	eng.RunUntil(100_000)
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
	if d.MeanQueueWait() <= 0 {
		t.Fatal("queued requests should have waited")
	}
}

func TestDiskHoldsUntilAcknowledged(t *testing.T) {
	eng := sim.NewEngine(1)
	asserts := 0
	d := NewDisk(eng, LineFunc(func() { asserts++ }), sim.Constant(100), 100)
	d.Submit(&DiskRequest{Bytes: 1000, Tag: 1})
	d.Submit(&DiskRequest{Bytes: 1000, Tag: 2})
	eng.RunUntil(50_000)
	// Without acknowledgment, only the first transfer completes.
	if asserts != 1 {
		t.Fatalf("asserts = %d, want 1 (no ack yet)", asserts)
	}
	d.CompleteTransfer()
	eng.RunUntil(100_000)
	if asserts != 2 {
		t.Fatalf("asserts = %d, want 2 after ack", asserts)
	}
}

func TestNICBurstAndDrain(t *testing.T) {
	eng := sim.NewEngine(1)
	asserts := 0
	n := NewNIC(eng, LineFunc(func() { asserts++ }), 64, 100)
	n.DeliverBurst(10, 1500)
	eng.RunUntil(2000)
	if n.Pending() != 10 {
		t.Fatalf("pending = %d, want 10", n.Pending())
	}
	if asserts != 1 {
		t.Fatalf("asserts = %d, want 1 (moderated)", asserts)
	}
	got := n.Drain(4)
	if len(got) != 4 || got[0] != 1500 {
		t.Fatalf("drain = %v", got)
	}
	// Partial drain re-asserts.
	if asserts != 2 {
		t.Fatalf("asserts after partial drain = %d, want 2", asserts)
	}
	rest := n.Drain(100)
	if len(rest) != 6 {
		t.Fatalf("second drain = %d packets", len(rest))
	}
	if n.Delivered() != 10 {
		t.Fatalf("delivered = %d", n.Delivered())
	}
}

func TestNICRingOverflowDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	n := NewNIC(eng, LineFunc(func() {}), 4, 10)
	n.DeliverBurst(10, 1500)
	eng.RunUntil(1000)
	if n.Pending() != 4 {
		t.Fatalf("pending = %d, want ring cap 4", n.Pending())
	}
	if n.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", n.Dropped())
	}
}

func TestSoundPlaybackAndUnderruns(t *testing.T) {
	eng := sim.NewEngine(1)
	asserts := 0
	s := NewSound(eng, LineFunc(func() { asserts++ }), 2)
	s.Start(1000)
	// Never refill: first 2 periods consume the queue, then underruns.
	eng.RunUntil(5500)
	if s.Periods() != 5 {
		t.Fatalf("periods = %d", s.Periods())
	}
	if s.Underruns() != 3 {
		t.Fatalf("underruns = %d, want 3", s.Underruns())
	}
	if asserts != 5 {
		t.Fatalf("asserts = %d", asserts)
	}
	s.Stop()
	eng.RunUntil(10_000)
	if s.Periods() != 5 {
		t.Fatal("device ran after Stop")
	}
}

func TestSoundRefillPreventsUnderruns(t *testing.T) {
	eng := sim.NewEngine(1)
	var s *Sound
	s = NewSound(eng, LineFunc(func() {
		s.Refill() // perfect zero-latency driver
	}), 2)
	s.Start(1000)
	eng.RunUntil(100_000)
	if s.Underruns() != 0 {
		t.Fatalf("underruns = %d with perfect refill", s.Underruns())
	}
	if s.Queued() != 2 {
		t.Fatalf("queued = %d, want full", s.Queued())
	}
}

func TestSoundSetDepth(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewSound(eng, LineFunc(func() {}), 4)
	s.SetDepth(2)
	if s.Depth() != 2 {
		t.Fatalf("depth = %d", s.Depth())
	}
	s.Start(1000)
	// Two periods consume the queue; the third underruns.
	eng.RunUntil(3500)
	if s.Underruns() != 1 {
		t.Fatalf("underruns = %d, want 1", s.Underruns())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetDepth while playing should panic")
			}
		}()
		s.SetDepth(8)
	}()
}

func TestDiskPIOShiftsTransferToCPU(t *testing.T) {
	eng := sim.NewEngine(1)
	fired := 0
	d := NewDisk(eng, LineFunc(func() { fired++ }), sim.Constant(1000), 10)
	d.PIO = true
	req := &DiskRequest{Bytes: 50_000}
	d.Submit(req)
	// PIO: device signals after the seek only (1000 cycles), leaving the
	// 5000-cycle transfer to the CPU.
	eng.RunUntil(1000)
	if fired != 1 {
		t.Fatalf("PIO completion not signaled after seek (fired=%d)", fired)
	}
	if got := d.TransferCycles(req); got != 5000 {
		t.Fatalf("TransferCycles = %d, want 5000", got)
	}
}
