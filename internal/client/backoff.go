package client

// Backoff is the one retry-delay policy every consumer of the service
// shares: Client.do between request attempts, Client.Watch between dropped
// event streams, and the fleet worker loop between registration attempts
// and failed coordinator calls. Extracting it keeps the schedule a single
// point of truth — a worker fleet and a wall of latctl clients hammer the
// same coordinator, so they had better thunder with the same jitter.

import (
	"math/rand"
	"time"
)

// Backoff computes equal-jitter exponential retry delays. Attempt n (0-based)
// waits a duration in [d/2, d] for d = min(Base·2ⁿ, Max): half the window is
// deterministic — the delay never collapses to ~0 — and half is random, so a
// herd of clients that failed together does not retry together.
//
// A server-supplied Retry-After acts as a floor, not a branch: the jittered
// exponential delay is raised to it when it is longer. That holds at attempt
// 0 too, where the jittered window [Base/2, Base] is usually far below any
// explicit hint.
type Backoff struct {
	// Base seeds the exponential schedule (attempt 0's full window).
	Base time.Duration
	// Max caps the un-jittered window; delays never exceed it even after
	// the shift count would overflow.
	Max time.Duration
	// Rand supplies jitter in [0,1) (default math/rand.Float64).
	Rand func() float64
}

// Delay returns the wait before retrying after attempt (0-based), raised to
// retryAfter when the server supplied a longer hint.
func (b Backoff) Delay(attempt int, retryAfter time.Duration) time.Duration {
	random := b.Rand
	if random == nil {
		random = rand.Float64
	}
	d := b.Base << attempt
	if d > b.Max || d <= 0 { // <<-overflow guard
		d = b.Max
	}
	// Equal jitter: half deterministic, half random — spreads a thundering
	// herd without ever collapsing the delay to ~0.
	d = d/2 + time.Duration(random()*float64(d/2))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}
