package hw

import (
	"wdmlat/internal/sim"
)

// PIT is the programmable interval timer (Intel 8253/8254). By default
// Windows programs it at 67–100 Hz; the paper's measurement tools raise it
// to 1 kHz (§2.2). Interrupt assertions happen at exact period multiples
// from programming time — all observed jitter is OS-side, which is exactly
// what the tools measure.
type PIT struct {
	eng    *sim.Engine
	line   IRQLine
	period sim.Cycles
	tick   *sim.Event
	tickFn func(sim.Time) // tick callback, allocated once
	ticks  uint64
	epoch  sim.Time // time of last Program call; ticks count from here
}

// NewPIT creates an unprogrammed timer that will assert line when it fires.
func NewPIT(eng *sim.Engine, line IRQLine) *PIT {
	if line == nil {
		panic("hw: PIT with nil interrupt line")
	}
	p := &PIT{eng: eng, line: line}
	p.tickFn = func(sim.Time) {
		// Event records are pooled: drop the handle before re-arming so a
		// later Stop cannot cancel a recycled record.
		p.tick = nil
		p.ticks++
		p.arm() // re-arm first: the ISR path may run arbitrary code
		p.line.Assert()
	}
	return p
}

// Program sets the interrupt period and (re)starts the count. The first
// interrupt asserts one full period after programming.
func (p *PIT) Program(period sim.Cycles) {
	if period <= 0 {
		panic("hw: non-positive PIT period")
	}
	p.Stop()
	p.period = period
	p.epoch = p.eng.Now()
	p.arm()
}

func (p *PIT) arm() {
	p.tick = p.eng.After(p.period, "pit-tick", p.tickFn)
}

// Stop halts the timer.
func (p *PIT) Stop() {
	if p.tick != nil {
		p.eng.Cancel(p.tick)
		p.tick = nil
	}
}

// Period returns the programmed period (0 if unprogrammed).
func (p *PIT) Period() sim.Cycles { return p.period }

// Ticks returns the number of interrupts asserted since programming.
func (p *PIT) Ticks() uint64 { return p.ticks }

// FirstTickAtOrAfter returns the exact hardware time of the first tick at
// or after t — the ground-truth assertion instant for a timer due at t.
func (p *PIT) FirstTickAtOrAfter(t sim.Time) sim.Time {
	if p.period <= 0 {
		return t
	}
	d := t.Sub(p.epoch)
	if d <= 0 {
		return p.NominalTickTime(1)
	}
	n := uint64((d + p.period - 1) / p.period)
	if n == 0 {
		n = 1
	}
	return p.NominalTickTime(n)
}

// NominalTickTime returns the exact hardware time of tick n (1-based)
// since the last Program call. Measurement tools use it as the ground-truth
// assertion instant that the paper's drivers estimate via "I/O-read TSC +
// delay".
func (p *PIT) NominalTickTime(n uint64) sim.Time {
	return p.epoch.Add(sim.Cycles(n) * p.period)
}
