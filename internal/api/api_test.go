package api

import (
	"strings"
	"testing"
	"time"

	"wdmlat/internal/core"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/stats"
	"wdmlat/internal/workload"
)

func spec() *CampaignSpec {
	return &CampaignSpec{
		BaseSeed: 7,
		Cells: []CellSpec{
			{Key: "nt4/business/default/0", Config: core.RunConfig{OS: ospersona.NT4, Workload: workload.Business, Duration: time.Second}},
			{Key: "win98/games/default/0", Config: core.RunConfig{OS: ospersona.Win98, Workload: workload.Games, Duration: time.Second}},
		},
	}
}

func TestCampaignIDStable(t *testing.T) {
	a, b := CampaignID(spec()), CampaignID(spec())
	if a != b {
		t.Fatalf("same spec hashed differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("want a full sha256 hex id, got %q", a)
	}
}

func TestCampaignIDCoversContent(t *testing.T) {
	base := CampaignID(spec())

	s := spec()
	s.BaseSeed = 8
	if CampaignID(s) == base {
		t.Error("changing the base seed did not change the id")
	}

	s = spec()
	s.Cells[1].Config.Duration = 2 * time.Second
	if CampaignID(s) == base {
		t.Error("changing a cell config did not change the id")
	}

	s = spec()
	s.Cells[0], s.Cells[1] = s.Cells[1], s.Cells[0]
	if CampaignID(s) == base {
		t.Error("reordering cells did not change the id (result stream order differs)")
	}

	// The cell's own Seed field must NOT matter: the runner overwrites it
	// with the derived seed, so two specs differing only there are the
	// same campaign.
	s = spec()
	s.Cells[0].Config.Seed = 999
	if CampaignID(s) != base {
		t.Error("a submitted cell Seed (which the runner ignores) changed the id")
	}
}

// TestCampaignIDCoversPrecision: the precision policy is part of the
// campaign identity — the same cells at a different precision are a
// different result stream — while a nil policy hashes exactly as specs did
// before the field existed, and equivalent policies (defaults spelled out
// or elided) hash identically.
func TestCampaignIDCoversPrecision(t *testing.T) {
	base := CampaignID(spec())

	s := spec()
	s.Precision = &stats.Precision{RelWidth: 0.1}
	precise := CampaignID(s)
	if precise == base {
		t.Error("attaching a precision policy did not change the id")
	}

	s = spec()
	s.Precision = &stats.Precision{RelWidth: 0.1, Confidence: stats.DefaultConfidence,
		MinRuns: stats.DefaultMinRuns, MaxRuns: stats.DefaultMaxRuns, Batch: stats.DefaultBatch,
		Quantiles: stats.DefaultQuantiles()}
	if CampaignID(s) != precise {
		t.Error("spelled-out default policy hashed differently from the shorthand form")
	}

	s = spec()
	s.Precision = &stats.Precision{RelWidth: 0.2}
	if CampaignID(s) == precise {
		t.Error("changing the policy's rel_width did not change the id")
	}
}

func TestValidateRejectsBadPrecision(t *testing.T) {
	s := spec()
	s.Precision = &stats.Precision{RelWidth: 0.1}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid precision rejected: %v", err)
	}
	s.Precision = &stats.Precision{RelWidth: -1}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "precision") {
		t.Errorf("invalid precision: got %v", err)
	}
}

func TestSeedDefaultsToOne(t *testing.T) {
	s := spec()
	s.BaseSeed = 0
	zero := CampaignID(s)
	s.BaseSeed = 1
	if CampaignID(s) != zero {
		t.Error("seed 0 and seed 1 should be the same campaign (the runner defaults 0 to 1)")
	}
}

func TestValidate(t *testing.T) {
	if err := spec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	s := &CampaignSpec{}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "no cells") {
		t.Errorf("empty spec: got %v", err)
	}
	s = spec()
	s.Cells[1].Key = ""
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "empty key") {
		t.Errorf("empty key: got %v", err)
	}
	s = spec()
	s.Cells[1].Key = s.Cells[0].Key
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate key: got %v", err)
	}
}

func TestTerminalState(t *testing.T) {
	for _, st := range []string{StateDone, StateFailed, StateCancelled} {
		if !TerminalState(st) {
			t.Errorf("%s should be terminal", st)
		}
	}
	for _, st := range []string{StateQueued, StateRunning, ""} {
		if TerminalState(st) {
			t.Errorf("%s should not be terminal", st)
		}
	}
}
