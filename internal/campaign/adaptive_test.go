package campaign

// Adaptive-replica tests: the stopping rule is a pure function of the
// pooled replica prefix, so an adaptive campaign must pick the same replica
// count — and produce byte-identical pooled encodings — at any worker
// count, through a warm checkpoint store, and after an interrupted run is
// resumed. Convergence itself must respond to the data: tight cells stop
// early, noisy or data-starved cells hit the cap and are counted as
// convergence failures.

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"wdmlat/internal/campaign/store"
	"wdmlat/internal/core"
	"wdmlat/internal/metrics"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
	"wdmlat/internal/workload"
)

// adaptiveFake is a convergence-capable stand-in for core.Run: each replica
// contributes a seeded batch of samples whose size and spread depend on the
// workload class, so different logical cells genuinely need different
// replica counts. Tight classes pool enough samples for a p99 DKW bound
// within a few replicas; the noisy class spreads mass across octaves and
// converges late or not at all.
func adaptiveFake(cfg core.RunConfig) *core.Result {
	rng := sim.NewRNG(cfg.Seed)
	perReplica := 5000 + 2000*int(cfg.Workload%2) // class-dependent sample budget
	spread := sim.Cycles(48)                      // sub-bucket at base 1024: converges fast
	if cfg.Workload >= 2 {
		spread = 1 << 18 // many octaves: p99 CI stays wide
	}
	h := stats.NewHistogram(sim.DefaultFreq)
	for i := 0; i < perReplica; i++ {
		h.Add(1024 + rng.Cyclesn(spread))
	}
	thread := func() *stats.Histogram {
		hh := stats.NewHistogram(sim.DefaultFreq)
		for i := 0; i < perReplica; i++ {
			hh.Add(2048 + rng.Cyclesn(spread))
		}
		return hh
	}
	return &core.Result{
		Config:       cfg,
		OSName:       "fake",
		Class:        cfg.Workload,
		Observed:     1 << 20,
		Freq:         sim.DefaultFreq,
		Samples:      uint64(perReplica),
		DpcInt:       h,
		DpcIntOracle: stats.NewHistogram(sim.DefaultFreq),
		Thread:       map[int]*stats.Histogram{28: thread(), 24: thread()},
		HwToThread:   map[int]*stats.Histogram{28: thread(), 24: thread()},
	}
}

// p99Policy is the test policy: one watched quantile whose DKW bound is
// reachable with a few thousand pooled samples.
func p99Policy() stats.Precision {
	return stats.Precision{Quantiles: []float64{0.99}, RelWidth: 0.15, MaxRuns: 16}
}

func encodeOne(t *testing.T, res *core.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.EncodeResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAdaptiveConvergesAndVariesPerCell: a tight cell stops at MinRuns, a
// noisier (but converging) cell takes more replicas, and both report
// Converged with the replica counts visible in telemetry.
func TestAdaptiveConvergesAndVariesPerCell(t *testing.T) {
	reg := metrics.NewRegistry()
	r := New(Options{BaseSeed: 21, Jobs: 4, Execute: adaptiveFake, Metrics: reg})

	resA, adA, err := r.MergedAdaptive("tight", core.RunConfig{Workload: workload.Class(1)}, p99Policy())
	if err != nil {
		t.Fatal(err)
	}
	if !adA.Converged {
		t.Fatalf("tight cell did not converge: %+v", adA)
	}
	if adA.Replicas != stats.DefaultMinRuns {
		t.Errorf("tight cell used %d replicas, want to stop at MinRuns=%d", adA.Replicas, stats.DefaultMinRuns)
	}
	if resA.Samples == 0 || int(resA.Samples)%adA.Replicas != 0 {
		t.Errorf("pooled samples %d not a multiple of %d replicas", resA.Samples, adA.Replicas)
	}

	// Smaller per-replica batches: the p99 DKW bound needs more replicas.
	_, adB, err := r.MergedAdaptive("slow", core.RunConfig{Workload: workload.Class(0)}, p99Policy())
	if err != nil {
		t.Fatal(err)
	}
	if !adB.Converged {
		t.Fatalf("slow cell did not converge: %+v", adB)
	}
	if adB.Replicas <= adA.Replicas {
		t.Errorf("replica counts did not vary with the data: tight %d, slow %d", adA.Replicas, adB.Replicas)
	}

	if got := reg.Snapshot().Counters[MetricReplicasAdaptive]; got != uint64(adA.Replicas+adB.Replicas) {
		t.Errorf("%s = %d, want %d", MetricReplicasAdaptive, got, adA.Replicas+adB.Replicas)
	}
	if got := reg.Snapshot().Counters[MetricCellsConverged]; got != 2 {
		t.Errorf("%s = %d, want 2", MetricCellsConverged, got)
	}
}

// TestAdaptiveCapIsAConvergenceFailure: a cell whose data cannot satisfy
// the policy stops at MaxRuns, reports Converged=false, and increments the
// convergence-failure counter — it must not loop forever or pretend.
func TestAdaptiveCapIsAConvergenceFailure(t *testing.T) {
	reg := metrics.NewRegistry()
	r := New(Options{BaseSeed: 7, Jobs: 2, Execute: fakeResult, Metrics: reg})
	prec := stats.Precision{Quantiles: []float64{0.99}, RelWidth: 0.05, MaxRuns: 6}

	// fakeResult contributes 3 samples per replica: 18 pooled samples can
	// never push the DKW epsilon under 1-q = 0.01.
	res, ad, err := r.MergedAdaptive("starved", core.RunConfig{Duration: time.Second}, prec)
	if err != nil {
		t.Fatal(err)
	}
	if ad.Converged {
		t.Fatal("data-starved cell claimed convergence")
	}
	if ad.Replicas != 6 {
		t.Fatalf("capped cell used %d replicas, want MaxRuns=6", ad.Replicas)
	}
	if res == nil || res.Samples != 18 {
		t.Fatalf("capped cell still owes its pooled result (samples=%v)", res.Samples)
	}
	if got := reg.Snapshot().Counters[MetricConvergenceFailures]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricConvergenceFailures, got)
	}

	// An invalid policy is rejected before any replica runs.
	if _, _, err := r.MergedAdaptive("bad", core.RunConfig{}, stats.Precision{RelWidth: -1}); err == nil {
		t.Error("invalid precision policy accepted")
	}
}

// TestAdaptiveByteIdentity is the adaptive determinism guard: the same
// spec and policy must pick the same replica counts and produce
// byte-identical pooled encodings at -jobs 1 vs 8, through a warm
// checkpoint store (zero executions), and when an interrupted adaptive
// campaign is resumed from its partial store.
func TestAdaptiveByteIdentity(t *testing.T) {
	oses := []string{"cellA", "cellB", "cellC"}
	classes := []workload.Class{workload.Class(0), workload.Class(1), workload.Class(1)}
	run := func(jobs int, st *store.Store, execute func(core.RunConfig) *core.Result, ctx context.Context) (map[string][]byte, map[string]Adaptive, error) {
		r := New(Options{BaseSeed: 77, Jobs: jobs, Store: st, Execute: execute, Context: ctx})
		enc := make(map[string][]byte, len(oses))
		ads := make(map[string]Adaptive, len(oses))
		for i, key := range oses {
			res, ad, err := r.MergedAdaptive(key, core.RunConfig{Workload: classes[i]}, p99Policy())
			if err != nil {
				return nil, nil, err
			}
			var buf bytes.Buffer
			if err := core.EncodeResult(&buf, res); err != nil {
				return nil, nil, err
			}
			enc[key] = buf.Bytes()
			ads[key] = ad
		}
		return enc, ads, nil
	}

	ref, refAds, err := run(1, nil, adaptiveFake, nil)
	if err != nil {
		t.Fatal(err)
	}

	wide, wideAds, err := run(8, nil, adaptiveFake, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range oses {
		if !bytes.Equal(ref[key], wide[key]) {
			t.Errorf("%s: jobs=8 pooled encoding differs from jobs=1", key)
		}
		if refAds[key] != wideAds[key] {
			t.Errorf("%s: adaptive outcome differs across jobs: %+v vs %+v", key, refAds[key], wideAds[key])
		}
	}

	// Warm store: a second campaign over the same store replays every
	// replica from disk, executes nothing, and still picks the same counts.
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	counting := func(cfg core.RunConfig) *core.Result {
		calls.Add(1)
		return adaptiveFake(cfg)
	}
	cold, _, err := run(4, st, counting, nil)
	if err != nil {
		t.Fatal(err)
	}
	executed := calls.Load()
	warm, warmAds, err := run(4, st, counting, nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != executed {
		t.Fatalf("warm adaptive run re-executed cells: %d -> %d", executed, calls.Load())
	}
	for _, key := range oses {
		if !bytes.Equal(ref[key], cold[key]) || !bytes.Equal(ref[key], warm[key]) {
			t.Errorf("%s: checkpointed adaptive encodings diverge from reference", key)
		}
		if warmAds[key] != refAds[key] {
			t.Errorf("%s: warm-store adaptive outcome %+v, want %+v", key, warmAds[key], refAds[key])
		}
	}

	// Kill/resume: cancel after the first few replicas land, then resume
	// against the partial store — the resumed campaign must be
	// indistinguishable from an uninterrupted one.
	st2, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var landed atomic.Int32
	interrupting := func(cfg core.RunConfig) *core.Result {
		if landed.Add(1) == 4 {
			cancel() // simulate SIGINT a few replicas into the campaign
		}
		return adaptiveFake(cfg)
	}
	if _, _, err := run(2, st2, interrupting, ctx); !errors.Is(err, ErrCancelled) {
		t.Fatalf("interrupted adaptive campaign: %v, want ErrCancelled", err)
	}
	resumed, resumedAds, err := run(2, st2, adaptiveFake, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range oses {
		if !bytes.Equal(ref[key], resumed[key]) {
			t.Errorf("%s: resumed adaptive encoding differs from uninterrupted run", key)
		}
		if resumedAds[key] != refAds[key] {
			t.Errorf("%s: resumed adaptive outcome %+v, want %+v", key, resumedAds[key], refAds[key])
		}
	}
}

// TestRunMatrixAdaptive: the matrix driver pools every logical cell under
// the policy, reports per-cell Adaptive outcomes keyed by MatrixKey, and
// matches what per-cell MergedAdaptive computes.
func TestRunMatrixAdaptive(t *testing.T) {
	osList := []ospersona.OS{ospersona.NT4, ospersona.Win98}
	classes := []workload.Class{workload.Class(0), workload.Class(1)}
	r := New(Options{BaseSeed: 5, Jobs: 8, Execute: adaptiveFake})
	byOS, ads, err := r.RunMatrixAdaptive(osList, classes, "adp", core.RunConfig{}, p99Policy())
	if err != nil {
		t.Fatal(err)
	}
	if len(ads) != len(osList)*len(classes) {
		t.Fatalf("adaptive outcomes for %d cells, want %d", len(ads), len(osList)*len(classes))
	}
	ref := New(Options{BaseSeed: 5, Jobs: 1, Execute: adaptiveFake})
	for _, o := range osList {
		for _, c := range classes {
			key := MatrixKey(o, c, "adp")
			ad, ok := ads[key]
			if !ok || ad.Replicas < stats.DefaultMinRuns {
				t.Fatalf("outcome missing or malformed for %s: %+v", key, ad)
			}
			cfg := core.RunConfig{}
			cfg.OS = o
			cfg.Workload = c
			want, wantAd, err := ref.MergedAdaptive(key, cfg, p99Policy())
			if err != nil {
				t.Fatal(err)
			}
			if wantAd != ad {
				t.Errorf("%s: matrix outcome %+v, per-cell outcome %+v", key, ad, wantAd)
			}
			if !bytes.Equal(encodeOne(t, byOS[o][c]), encodeOne(t, want)) {
				t.Errorf("%s: matrix pooled encoding differs from per-cell MergedAdaptive", key)
			}
		}
	}
}
