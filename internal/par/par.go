// Package par provides a minimal bounded worker pool for fanning
// independent simulation work across CPUs. It deliberately has no
// dependencies on the rest of the laboratory so that both the low-level
// replica pooling in internal/core and the campaign orchestration in
// internal/campaign can share one implementation.
package par

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n), using at most jobs concurrent
// workers, and returns once all calls have completed. jobs <= 0 selects
// runtime.GOMAXPROCS(0); jobs == 1 runs strictly serially on the calling
// goroutine. A panic in any fn is re-raised on the calling goroutine after
// the remaining workers drain (the first panic wins).
//
// Callers are responsible for determinism: fn must write only to its own
// slot of any shared output so that results do not depend on worker count
// or scheduling order.
func ForEach(n, jobs int, fn func(int)) {
	if n <= 0 {
		return
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	if jobs == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		mu       sync.Mutex
		next     int
		panicked any
		wg       sync.WaitGroup
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n || panicked != nil {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	worker := func() {
		defer wg.Done()
		for {
			i, ok := claim()
			if !ok {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						mu.Lock()
						if panicked == nil {
							panicked = r
						}
						mu.Unlock()
					}
				}()
				fn(i)
			}()
		}
	}
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go worker()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
