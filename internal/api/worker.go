package api

// Fleet-mode wire types: the worker side of the coordinator protocol.
//
// A coordinator (latserved -fleet) shards a campaign's cells across
// registered workers by checkpoint-store fingerprint. The protocol is four
// idempotent POSTs — everything a worker sends is safe to retry through
// the client's usual backoff, because the unit of work is content-
// addressed:
//
//	POST /v1/workers                 register        -> RegisterResponse
//	POST /v1/workers/{id}/heartbeat  stay alive      -> 204 (410: re-register)
//	POST /v1/workers/{id}/leases     claim cells     -> LeaseResponse
//	POST /v1/workers/{id}/complete   deliver a cell  -> 200 (422: rejected)
//	GET  /v1/fleet                   observability   -> FleetStatus
//
// A lease carries the cell's complete identity: base seed, key, and the
// final RunConfig with the per-cell seed already derived (sim.DeriveSeed —
// never a worker index), plus the store fingerprint over all of it. The
// worker re-derives the fingerprint before executing (Lease.Verify): a
// mismatch means the worker's code computes different results than the
// coordinator expects — wrong codec version, diverged simulator — and the
// only safe move is to refuse the work loudly, because a fleet is only
// defensible while every worker is bit-for-bit interchangeable.

import (
	"bytes"
	"encoding/json"
	"fmt"

	"wdmlat/internal/campaign/store"
	"wdmlat/internal/core"
)

// RegisterRequest is the POST /v1/workers body.
type RegisterRequest struct {
	// Name is a human label for logs and /v1/fleet; uniqueness is not
	// required (the coordinator assigns the id).
	Name string `json:"name"`
}

// RegisterResponse tells a fresh worker who it is and how to behave.
type RegisterResponse struct {
	// WorkerID is the coordinator-assigned identity every subsequent call
	// is keyed by.
	WorkerID string `json:"worker_id"`
	// LeaseTTLMillis is how long the coordinator waits between heartbeats
	// before declaring the worker dead and re-dispatching its leases.
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
	// PollMillis is the coordinator's hint for how often an idle worker
	// should re-ask for leases.
	PollMillis int64 `json:"poll_ms"`
}

// Lease is one cell the coordinator has assigned to a worker.
type Lease struct {
	// Fingerprint is the cell's checkpoint-store content address
	// (store.Fingerprint over BaseSeed, Key and Config) — the identity
	// completion is keyed by, and the name its result is cached under.
	Fingerprint string `json:"fingerprint"`
	// BaseSeed is the owning campaign's seed; Key is the cell's stable
	// key; Config is the final run configuration, per-cell seed included.
	BaseSeed uint64         `json:"base_seed"`
	Key      string         `json:"key"`
	Config   core.RunConfig `json:"config"`
}

// Verify re-derives the lease's fingerprint from its own fields. A
// mismatch means this worker binary would compute a result the coordinator
// must not merge (diverged codec or simulation); the worker refuses the
// lease and exits rather than poisoning the campaign.
func (l *Lease) Verify() error {
	if fp := store.Fingerprint(l.BaseSeed, l.Key, l.Config); fp != l.Fingerprint {
		return fmt.Errorf("api: lease %q: fingerprint mismatch (coordinator %s, worker derives %s): worker and coordinator disagree on cell identity",
			l.Key, short(l.Fingerprint), short(fp))
	}
	return nil
}

func short(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

// LeaseRequest is the POST /v1/workers/{id}/leases body.
type LeaseRequest struct {
	// Max bounds how many cells the worker wants; the coordinator may
	// grant fewer (including zero, when the queue is empty or draining).
	Max int `json:"max"`
}

// LeaseResponse carries the granted leases. Empty Leases with Draining
// false means "no work right now, poll again"; Draining true means the
// coordinator is shutting down and the worker should finish what it holds
// and exit.
type LeaseResponse struct {
	Leases   []Lease `json:"leases"`
	Draining bool    `json:"draining,omitempty"`
}

// CompleteRequest is the POST /v1/workers/{id}/complete body: one finished
// cell. Exactly one of Result and Error is set. Result holds the cell's
// canonical payload (EncodeCellResult: the core.EncodeResult document sans
// trailing newline — the same content a local checkpoint file holds),
// which the coordinator independently validates before merging (decode,
// byte-exact canonical re-encode, fingerprint re-derivation from the
// embedded config). Completion is idempotent: re-delivering an already-
// merged cell is a no-op.
type CompleteRequest struct {
	Fingerprint string          `json:"fingerprint"`
	Result      json.RawMessage `json:"result,omitempty"`
	// Error reports a deterministic execution failure (e.g. a recovered
	// panic). The coordinator fails the cell instead of re-dispatching:
	// results are pure functions of the lease, so another worker would
	// fail identically.
	Error string `json:"error,omitempty"`
	// Cached reports that the worker answered from its checkpoint store
	// instead of executing — a re-dispatched cell some worker already
	// finished. Purely telemetry (fleet_cells_cache_hit); the payload is
	// validated identically either way.
	Cached bool `json:"cached,omitempty"`
}

// Validate rejects completion bodies that could not possibly be merged.
func (c *CompleteRequest) Validate() error {
	if c.Fingerprint == "" {
		return fmt.Errorf("api: completion without a fingerprint")
	}
	if (len(c.Result) == 0) == (c.Error == "") {
		return fmt.Errorf("api: completion must carry exactly one of result and error")
	}
	if c.Cached && len(c.Result) == 0 {
		return fmt.Errorf("api: cached completion without a result")
	}
	return nil
}

// EncodeCellResult produces the canonical completion payload for a result:
// its exact core.EncodeResult document with the encoder's trailing newline
// stripped. The strip matters because the payload travels embedded in the
// CompleteRequest JSON as a RawMessage, and encoding/json compacts raw
// values in transit — a payload defined with the newline would arrive one
// byte short of itself and never survive the coordinator's byte-exact
// canonical check. Workers use this so the bytes they deliver are the
// bytes a local run would have checkpointed.
func EncodeCellResult(res *core.Result) (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := core.EncodeResult(&buf, res); err != nil {
		return nil, err
	}
	return bytes.TrimSuffix(buf.Bytes(), []byte("\n")), nil
}

// WorkerStatus is one worker's row in GET /v1/fleet.
type WorkerStatus struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// Leases is the number of cells the worker currently holds.
	Leases int `json:"leases"`
	// IdleMillis is how long ago the worker's last heartbeat (or any
	// other call) arrived.
	IdleMillis int64 `json:"idle_ms"`
}

// FleetStatus is the GET /v1/fleet body: the coordinator's live view of
// its workers and dispatch queue, for operators and the horde smoke test.
type FleetStatus struct {
	Workers []WorkerStatus `json:"workers"`
	// Pending counts cells queued for dispatch; Leased counts cells
	// currently out with workers.
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	// Draining reports a coordinator that has stopped granting leases.
	Draining bool `json:"draining"`
}
