// latctl is the command-line client of latserved.
//
//	latctl [-server URL] submit  [matrix flags | -f spec.json]  -> prints campaign id
//	latctl [-server URL] status  <id>
//	latctl [-server URL] result  [-o file] <id>   (waits for completion)
//	latctl [-server URL] watch   <id>             (streams progress events)
//	latctl [-server URL] cancel  <id>
//	latctl [-server URL] fleet                    (fleet-mode worker/lease status)
//	latctl local [matrix flags] [-jobs N] [-o file]
//
// submit and local build the same campaign from the same matrix flags
// (-os, -workload, -duration, -runs, -seed, -variant), so
//
//	latctl local -o local.json && latctl result -o server.json $(latctl submit)
//
// must produce byte-identical files — the service's core guarantee. All
// requests retry transient failures (429 with Retry-After, 5xx, dropped
// connections) with jittered exponential backoff, and watch resumes a
// dropped event stream from the last sequence number it saw.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"wdmlat/internal/api"
	"wdmlat/internal/campaign"
	"wdmlat/internal/cli"
	"wdmlat/internal/client"
	"wdmlat/internal/core"
)

func main() {
	serverURL := flag.String("server", "http://127.0.0.1:8080", "latserved base URL")
	cli.AddVersionFlag("latctl", flag.CommandLine)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	c := client.New(*serverURL, client.Options{})
	ctx := context.Background()
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "submit":
		err = cmdSubmit(ctx, c, args)
	case "status":
		err = cmdStatus(ctx, c, args)
	case "result":
		err = cmdResult(ctx, c, args)
	case "watch":
		err = cmdWatch(ctx, c, args)
	case "cancel":
		err = cmdCancel(ctx, c, args)
	case "fleet":
		err = cmdFleet(ctx, c, args)
	case "local":
		err = cmdLocal(args)
	default:
		fmt.Fprintf(os.Stderr, "latctl: unknown subcommand %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "latctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: latctl [-server URL] <subcommand> [flags] [args]

subcommands:
  submit   build a campaign from matrix flags (or -f spec.json) and submit it
  status   print a campaign's status
  result   wait for a campaign and write its result stream (exact codec bytes)
  watch    stream a campaign's progress events
  cancel   cancel a campaign
  fleet    print a fleet-mode server's workers and lease queue
  local    run the same campaign locally, writing the identical result stream
`)
	flag.PrintDefaults()
}

// matrixFlags registers the campaign-shape flags shared by submit and
// local, mirroring cmd/reproduce's defaults so the two build identical
// default-matrix campaigns.
type matrixFlags struct {
	osList   *string
	wlList   *string
	duration *time.Duration
	runs     *int
	seed     *uint64
	variant  *string
	prec     *cli.PrecisionFlags
}

func addMatrixFlags(fs *flag.FlagSet) matrixFlags {
	return matrixFlags{
		osList:   fs.String("os", "both", "OS list: nt4|win98|win2000|both|all"),
		wlList:   fs.String("workload", "all", "workload list: business|workstation|games|web|all"),
		duration: fs.Duration("duration", 15*time.Minute, "virtual collection per cell"),
		runs:     fs.Int("runs", 1, "replicas per cell"),
		seed:     fs.Uint64("seed", 3, "campaign base seed"),
		variant:  fs.String("variant", "default", "campaign variant tag in cell keys"),
		prec:     cli.AddPrecisionFlags(fs),
	}
}

func (m matrixFlags) spec() (*api.CampaignSpec, error) {
	oses, err := cli.ParseOSList(*m.osList)
	if err != nil {
		return nil, err
	}
	classes, err := cli.ParseWorkloadList(*m.wlList)
	if err != nil {
		return nil, err
	}
	pol, err := m.prec.Policy()
	if err != nil {
		return nil, err
	}
	base := core.RunConfig{Duration: *m.duration}
	if pol != nil {
		// Adaptive campaigns submit logical cells — the policy, not -runs,
		// decides how many "<key>/<i>" replicas each one expands to.
		if *m.runs != 1 {
			return nil, fmt.Errorf("-precision chooses replica counts adaptively; drop -runs")
		}
		spec := &api.CampaignSpec{BaseSeed: *m.seed, Precision: pol}
		for _, o := range oses {
			for _, c := range classes {
				cfg := base
				cfg.OS = o
				cfg.Workload = c
				spec.Cells = append(spec.Cells, api.CellSpec{Key: campaign.MatrixKey(o, c, *m.variant), Config: cfg})
			}
		}
		return spec, nil
	}
	cells := campaign.MatrixCells(oses, classes, *m.variant, base, *m.runs)
	spec := &api.CampaignSpec{BaseSeed: *m.seed, Cells: make([]api.CellSpec, len(cells))}
	for i, c := range cells {
		spec.Cells[i] = api.CellSpec{Key: c.Key, Config: c.Config}
	}
	return spec, nil
}

func cmdSubmit(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	m := addMatrixFlags(fs)
	specFile := fs.String("f", "", "submit this JSON campaign spec instead of building one from flags")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var spec *api.CampaignSpec
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			return err
		}
		spec = &api.CampaignSpec{}
		if err := json.Unmarshal(data, spec); err != nil {
			return fmt.Errorf("parsing %s: %w", *specFile, err)
		}
	} else {
		var err error
		spec, err = m.spec()
		if err != nil {
			return err
		}
	}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "latctl: campaign %s: %s (%d cells)\n", st.ID, st.State, st.Total)
	fmt.Println(st.ID) // bare id on stdout, for shell capture
	return nil
}

func cmdStatus(ctx context.Context, c *client.Client, args []string) error {
	id, err := oneID("status", args)
	if err != nil {
		return err
	}
	st, err := c.Status(ctx, id)
	if err != nil {
		return err
	}
	return printStatus(st)
}

func cmdResult(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("result", flag.ExitOnError)
	out := fs.String("o", "", "write result bytes here (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	id, err := oneID("result", fs.Args())
	if err != nil {
		return err
	}
	st, err := c.Watch(ctx, id, nil)
	if err != nil {
		return err
	}
	if st.State != api.StateDone {
		return fmt.Errorf("campaign %s: %s: %s", id, st.State, st.Error)
	}
	data, err := c.Result(ctx, id)
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	_, err = w.Write(data)
	return err
}

func cmdWatch(ctx context.Context, c *client.Client, args []string) error {
	id, err := oneID("watch", args)
	if err != nil {
		return err
	}
	st, err := c.Watch(ctx, id, func(ev api.Event) {
		switch ev.Type {
		case api.EventState:
			fmt.Printf("state=%s %d/%d\n", ev.State, ev.Done, ev.Total)
		case api.EventCell:
			fmt.Printf("cell %s done %d/%d\n", ev.Key, ev.Done, ev.Total)
		}
	})
	if err != nil {
		return err
	}
	return printStatus(st)
}

func cmdCancel(ctx context.Context, c *client.Client, args []string) error {
	id, err := oneID("cancel", args)
	if err != nil {
		return err
	}
	st, err := c.Cancel(ctx, id)
	if err != nil {
		return err
	}
	return printStatus(st)
}

// cmdFleet prints a fleet-mode coordinator's status (workers, outstanding
// leases, queue depth) as JSON — what the horde smoke script polls to time
// its worker kill.
func cmdFleet(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 0 {
		return fmt.Errorf("fleet: want no args, got %d", len(args))
	}
	st, err := c.Fleet(ctx)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

// cmdLocal executes the campaign in-process on the campaign runner and
// writes the result stream the server would serve: one core.EncodeResult
// document per cell, in cell order. Used to demonstrate (and smoke-test)
// the byte-identity guarantee.
func cmdLocal(args []string) error {
	fs := flag.NewFlagSet("local", flag.ExitOnError)
	m := addMatrixFlags(fs)
	jobs := fs.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulation workers")
	out := fs.String("o", "", "write result bytes here (default stdout)")
	checkpoint := fs.String("checkpoint", "", "checkpoint directory (share latserved's -cache to reuse its cells)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := m.spec()
	if err != nil {
		return err
	}
	st, err := cli.OpenStore(*checkpoint, nil)
	if err != nil {
		return err
	}
	run := campaign.New(campaign.Options{BaseSeed: spec.Seed(), Jobs: *jobs, Store: st})
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if spec.Precision != nil {
		// Mirror the server's adaptive path: each logical cell runs its own
		// replica loop and the stream carries one pooled document per cell.
		for _, c := range spec.Cells {
			res, _, err := run.MergedAdaptive(c.Key, c.Config, *spec.Precision)
			if err != nil {
				return err
			}
			if err := core.EncodeResult(w, res); err != nil {
				return err
			}
		}
		return run.Wait()
	}
	cells := make([]campaign.Cell, len(spec.Cells))
	for i, c := range spec.Cells {
		cells[i] = campaign.Cell{Key: c.Key, Config: c.Config}
	}
	run.Submit(cells...)
	for _, c := range spec.Cells {
		res, err := run.Result(c.Key)
		if err != nil {
			return err
		}
		if err := core.EncodeResult(w, res); err != nil {
			return err
		}
	}
	return run.Wait()
}

func printStatus(st api.Status) error {
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

func oneID(cmd string, args []string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("%s: want exactly one campaign id, got %d args", cmd, len(args))
	}
	return args[0], nil
}
