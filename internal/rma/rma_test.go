package rma

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
)

func TestLiuLaylandBound(t *testing.T) {
	cases := map[int]float64{
		1: 1.0,
		2: 0.8284,
		3: 0.7798,
	}
	for n, want := range cases {
		if got := LiuLaylandBound(n); math.Abs(got-want) > 1e-3 {
			t.Errorf("bound(%d) = %v, want %v", n, got, want)
		}
	}
	if LiuLaylandBound(0) != 0 {
		t.Error("bound(0) should be 0")
	}
	// The bound converges to ln 2 from above.
	if b := LiuLaylandBound(1000); math.Abs(b-math.Ln2) > 1e-3 {
		t.Errorf("bound(1000) = %v, want ~ln2", b)
	}
}

func TestUtilization(t *testing.T) {
	tasks := []Task{
		{Name: "a", Period: 100, Compute: 25},
		{Name: "b", Period: 200, Compute: 50},
	}
	if u := Utilization(tasks); math.Abs(u-0.5) > 1e-12 {
		t.Fatalf("utilization = %v", u)
	}
	if !PassesUtilizationTest(tasks) {
		t.Fatal("0.5 should pass the 2-task bound 0.828")
	}
}

func TestAnalyzeClassicExample(t *testing.T) {
	// The canonical Liu & Layland / RTA example: T1=(C=3,T=8) T2=(C=3,T=12)
	// T3=(C=5,T=20): schedulable with R3 = 20 exactly... use a textbook set
	// with known responses: C={1,2,3}, T={4,6,13}: R1=1, R2=3, R3=13? do
	// the math: R3 = 3 + ceil(R/4)*1 + ceil(R/6)*2. Iterate: 3→ 3+1+2=6 →
	// 3+2+2=7 → 3+2+4=9 → 3+3+4=10 → 3+3+4=10 fix. R3=10.
	tasks := []Task{
		{Name: "t3", Period: 13, Compute: 3},
		{Name: "t1", Period: 4, Compute: 1},
		{Name: "t2", Period: 6, Compute: 2},
	}
	res, ok, err := Analyze(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("set should be schedulable")
	}
	// Results come back in rate-monotonic order.
	if res[0].Task.Name != "t1" || res[0].Response != 1 {
		t.Fatalf("t1: %+v", res[0])
	}
	if res[1].Task.Name != "t2" || res[1].Response != 3 {
		t.Fatalf("t2: %+v", res[1])
	}
	if res[2].Task.Name != "t3" || res[2].Response != 10 {
		t.Fatalf("t3: %+v", res[2])
	}
}

func TestAnalyzeUnschedulable(t *testing.T) {
	tasks := []Task{
		{Name: "hog", Period: 10, Compute: 8},
		{Name: "low", Period: 20, Compute: 8},
	}
	res, ok, err := Analyze(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("160% utilization cannot be schedulable")
	}
	if res[1].Meets {
		t.Fatal("low task cannot meet its deadline")
	}
}

func TestBlockingDelaysResponse(t *testing.T) {
	base := []Task{{Name: "x", Period: 100, Compute: 10}}
	withB := []Task{{Name: "x", Period: 100, Compute: 10, Blocking: 30}}
	r1, _, _ := Analyze(base)
	r2, _, _ := Analyze(withB)
	if r2[0].Response != r1[0].Response+30 {
		t.Fatalf("blocking not added: %d vs %d", r2[0].Response, r1[0].Response)
	}
}

func TestValidate(t *testing.T) {
	bad := []Task{
		{Name: "p0", Period: 0, Compute: 1},
		{Name: "c0", Period: 10, Compute: 0},
		{Name: "impossible", Period: 10, Compute: 8, Blocking: 5},
	}
	for _, task := range bad {
		if err := task.Validate(); err == nil {
			t.Errorf("task %q should fail validation", task.Name)
		}
		if _, _, err := Analyze([]Task{task}); err == nil {
			t.Errorf("Analyze should reject %q", task.Name)
		}
	}
}

func TestDeadlineShorterThanPeriod(t *testing.T) {
	tasks := []Task{
		{Name: "hp", Period: 10, Compute: 4},
		{Name: "tight", Period: 50, Compute: 10, Deadline: 15},
	}
	res, ok, err := Analyze(tasks)
	if err != nil {
		t.Fatal(err)
	}
	// R(tight) = 10 + ceil(R/10)*4: 10→ 10+4=14 → 10+8=18 → 10+8=18; R=18 > 15.
	if ok || res[1].Meets {
		t.Fatalf("tight deadline should be missed: %+v", res[1])
	}
}

func freqHist(latsMS []float64, counts []int) *stats.Histogram {
	h := stats.NewHistogram(sim.DefaultFreq)
	for i, ms := range latsMS {
		for j := 0; j < counts[i]; j++ {
			h.AddMillis(ms)
		}
	}
	return h
}

func TestPseudoWorstCase(t *testing.T) {
	freq := sim.DefaultFreq
	// One hour of observation: 1M samples at 0.1 ms, 60 at 10 ms (one per
	// minute), 1 at 60 ms.
	h := freqHist([]float64{0.1, 10, 60}, []int{1_000_000, 60, 1})
	observed := freq.Cycles(time.Hour)

	// Permissible error: one per minute → the 10 ms events are exactly at
	// the budget; design point must be >= 0.1 ms and <= ~10 ms.
	perMin := PseudoWorstCase(h, observed, freq.Cycles(time.Minute))
	if ms := freq.Millis(perMin); ms <= 0.05 || ms > 10.5 {
		t.Fatalf("per-minute pseudo worst case = %v ms", ms)
	}
	// One per day: even the 60 ms event (1/hr) exceeds the budget → must
	// design for the full 60 ms (or above).
	perDay := PseudoWorstCase(h, observed, freq.Cycles(24*time.Hour))
	if ms := freq.Millis(perDay); ms < 55 {
		t.Fatalf("per-day pseudo worst case = %v ms, want >= observed max", ms)
	}
	// Monotone in the error period.
	if perDay < perMin {
		t.Fatal("pseudo worst case must grow with stricter error budgets")
	}
}

func TestPseudoWorstCaseEdgeCases(t *testing.T) {
	h := stats.NewHistogram(sim.DefaultFreq)
	if PseudoWorstCase(h, 1000, 1000) != 0 {
		t.Fatal("empty histogram should yield 0")
	}
	h.AddMillis(1)
	if PseudoWorstCase(h, 0, 1000) != 0 || PseudoWorstCase(h, 1000, 0) != 0 {
		t.Fatal("invalid spans should yield 0")
	}
}

func TestDesignTaskIntegratesPseudoWorstCase(t *testing.T) {
	freq := sim.DefaultFreq
	h := freqHist([]float64{0.1, 5}, []int{100_000, 10})
	observed := freq.Cycles(10 * time.Minute)
	task := DesignTask("softmodem", freq.FromMillis(8), freq.FromMillis(2),
		h, observed, freq.Cycles(time.Hour))
	if task.Blocking == 0 {
		t.Fatal("design task should carry blocking")
	}
	// 5 ms events happen once a minute — way over a 1/hr budget, so the
	// blocking must cover them.
	if ms := freq.Millis(task.Blocking); ms < 4.9 {
		t.Fatalf("blocking = %v ms, want >= 5", ms)
	}
	// An 8 ms period task with 2 ms compute and ~5 ms blocking: R = 7 ms,
	// schedulable alone.
	res, ok, err := Analyze([]Task{task})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("softmodem should be schedulable alone: %+v", res[0])
	}
}

// Property: response times are monotone under added interference — adding a
// higher-priority task never decreases anyone's response time.
func TestQuickResponseMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		base := []Task{
			{Name: "a", Period: sim.Cycles(5000 + r.Intn(5000)), Compute: sim.Cycles(100 + r.Intn(900))},
			{Name: "b", Period: sim.Cycles(20000 + r.Intn(20000)), Compute: sim.Cycles(100 + r.Intn(2000))},
		}
		res1, _, err := Analyze(base)
		if err != nil {
			return true
		}
		extra := append([]Task{{Name: "hp", Period: 2000, Compute: 200}}, base...)
		res2, _, err := Analyze(extra)
		if err != nil {
			return true
		}
		// Find b in both (last in RM order).
		rb1 := res1[len(res1)-1].Response
		rb2 := res2[len(res2)-1].Response
		return rb2 >= rb1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
