package kernel

// White-box property and stress tests: random workloads hammer the
// scheduler while invariants are checked from inside the package.

import (
	"testing"

	"wdmlat/internal/cpu"
	"wdmlat/internal/sim"
)

func newWhiteboxKernel(t *testing.T, seed uint64) (*sim.Engine, *Kernel) {
	t.Helper()
	eng := sim.NewEngine(seed)
	c := cpu.New(eng, sim.DefaultFreq)
	k := New(eng, c, Config{Name: "prop"})
	k.Boot(32, 300_000)
	t.Cleanup(k.Shutdown)
	return eng, k
}

// TestDispatchInvariantNoHigherReadyThread asserts the fundamental
// scheduling guarantee: a thread may complete its dispatch while a
// higher-priority thread is ready only transiently (the waker arrived
// during the context switch); by the next cycle the higher thread must own
// the CPU (or a switch/ISR toward it must be in flight).
func TestDispatchInvariantNoHigherReadyThread(t *testing.T) {
	eng, k := newWhiteboxKernel(t, 99)
	k.probe.ThreadDispatched = func(th *Thread, _, _ sim.Time) {
		if best := k.bestReadyPriority(); best > th.priority {
			// Re-check after the dispatch loop settles.
			eng.After(1, "invariant", func(sim.Time) {
				cur := k.Current()
				if cur == th && len(k.stack) == 0 && k.bestReadyPriority() > th.priority {
					t.Errorf("%s (prio %d) kept the CPU while prio %d stayed ready",
						th.Name, th.priority, k.bestReadyPriority())
				}
			})
		}
	}

	rng := sim.NewRNG(7)
	events := []*Event{}
	for i := 0; i < 8; i++ {
		ev := k.NewEvent("ev", SynchronizationEvent)
		events = append(events, ev)
		prio := 4 + rng.Intn(26)
		k.CreateThread("w", prio, func(tc *ThreadContext) {
			for {
				tc.Wait(ev)
				tc.Exec(sim.Cycles(1000 + rng.Intn(200_000)))
			}
		})
	}
	// Random wakeups and interrupts.
	intr := k.Connect(40, 16, "DRV", "_ISR", func(c *IsrContext) { c.Charge(2000) })
	var kick func(sim.Time)
	kick = func(sim.Time) {
		k.SetEvent(events[rng.Intn(len(events))])
		if rng.Bool(0.3) {
			intr.Assert()
		}
		if rng.Bool(0.2) {
			k.InjectEpisode(LockScheduler, sim.Cycles(1000+rng.Intn(500_000)), "VMM", "_X")
		}
		eng.After(sim.Cycles(1000+rng.Intn(100_000)), "kick", kick)
	}
	eng.After(1000, "kick", kick)
	eng.RunUntil(300_000_000) // 1 virtual second
}

// TestStackLevelMonotonic asserts the occupancy stack is strictly
// increasing in preemption level from bottom to top at every event.
func TestStackLevelMonotonic(t *testing.T) {
	eng, k := newWhiteboxKernel(t, 5)
	rng := sim.NewRNG(11)
	intrLow := k.Connect(40, 10, "LOW", "_ISR", func(c *IsrContext) { c.Charge(20_000) })
	intrHigh := k.Connect(41, 20, "HIGH", "_ISR", func(c *IsrContext) { c.Charge(5_000) })
	d := NewDPC("d", MediumImportance, func(c *DpcContext) { c.Charge(50_000) })
	k.CreateThread("burner", 8, func(tc *ThreadContext) {
		for {
			tc.Exec(1_000_000)
		}
	})

	var storm func(sim.Time)
	storm = func(sim.Time) {
		switch rng.Intn(4) {
		case 0:
			intrLow.Assert()
		case 1:
			intrHigh.Assert()
		case 2:
			k.QueueDpc(d)
		case 3:
			k.InjectEpisode(LockScheduler, sim.Cycles(1000+rng.Intn(300_000)), "VMM", "_X")
		}
		for i := 1; i < len(k.stack); i++ {
			if k.stack[i].level <= k.stack[i-1].level {
				t.Fatalf("stack levels not increasing: %v <= %v (%s under %s)",
					k.stack[i].level, k.stack[i-1].level, k.stack[i].label, k.stack[i-1].label)
			}
		}
		eng.After(sim.Cycles(500+rng.Intn(50_000)), "storm", storm)
	}
	eng.After(100, "storm", storm)
	eng.RunUntil(150_000_000)
}

// TestAccountingConservation: total accounted busy cycles can never exceed
// elapsed virtual time, and thread CPU time never exceeds its requests.
func TestAccountingConservation(t *testing.T) {
	eng, k := newWhiteboxKernel(t, 21)
	rng := sim.NewRNG(13)
	var requested sim.Cycles
	ev := k.NewEvent("ev", SynchronizationEvent)
	th := k.CreateThread("acct", 15, func(tc *ThreadContext) {
		for {
			tc.Wait(ev)
			c := sim.Cycles(1000 + rng.Intn(400_000))
			requested += c
			tc.Exec(c)
		}
	})
	intr := k.Connect(40, 16, "DRV", "_ISR", func(c *IsrContext) { c.Charge(3000) })
	var kick func(sim.Time)
	kick = func(sim.Time) {
		k.SetEvent(ev)
		intr.Assert()
		if rng.Bool(0.3) {
			k.InjectEpisode(MaskInterrupts, sim.Cycles(1000+rng.Intn(100_000)), "VXD", "_X")
		}
		eng.After(sim.Cycles(10_000+rng.Intn(500_000)), "kick", kick)
	}
	eng.After(1000, "kick", kick)

	end := sim.Time(300_000_000)
	eng.RunUntil(end)
	ctr := k.Counters()
	if ctr.Busy() > sim.Cycles(end) {
		t.Fatalf("accounted %d busy cycles in %d elapsed", ctr.Busy(), end)
	}
	if th.CPUTime() > requested {
		t.Fatalf("thread cpu time %d exceeds requested %d", th.CPUTime(), requested)
	}
	if ctr.ThreadCycles < th.CPUTime() {
		t.Fatalf("global thread accounting %d below thread's own %d", ctr.ThreadCycles, th.CPUTime())
	}
}

// TestRandomStressDeterministic runs a chaotic mixed workload twice and
// requires identical end states.
func TestRandomStressDeterministic(t *testing.T) {
	runOnce := func() (Counters, sim.Time) {
		eng := sim.NewEngine(77)
		c := cpu.New(eng, sim.DefaultFreq)
		k := New(eng, c, Config{Name: "det"})
		k.Boot(32, 300_000)
		defer k.Shutdown()
		rng := sim.NewRNG(3)

		evs := make([]*Event, 4)
		for i := range evs {
			evs[i] = k.NewEvent("ev", SynchronizationEvent)
			ev := evs[i]
			k.CreateThread("w", 6+i*6, func(tc *ThreadContext) {
				for {
					if tc.WaitTimeout(ev, sim.Cycles(1+rng.Intn(1_000_000))) == WaitSuccess {
						tc.Exec(sim.Cycles(rng.Intn(100_000)))
					} else {
						tc.Sleep(sim.Cycles(rng.Intn(10_000)))
					}
				}
			})
		}
		intr := k.Connect(40, 16, "DRV", "_ISR", func(ic *IsrContext) {
			ic.Charge(sim.Cycles(500 + rng.Intn(5000)))
		})
		d := NewDPC("d", HighImportance, func(dc *DpcContext) {
			dc.Charge(sim.Cycles(rng.Intn(50_000)))
			dc.SetEvent(evs[rng.Intn(len(evs))])
		})
		var kick func(sim.Time)
		kick = func(sim.Time) {
			switch rng.Intn(5) {
			case 0:
				intr.Assert()
			case 1:
				k.QueueDpc(d)
			case 2:
				k.SetEvent(evs[rng.Intn(len(evs))])
			case 3:
				k.InjectEpisode(LockScheduler, sim.Cycles(1+rng.Intn(200_000)), "VMM", "_X")
			case 4:
				k.QueueWorkItem(&WorkItem{Name: "wi", Cycles: sim.Cycles(rng.Intn(100_000))})
			}
			eng.After(sim.Cycles(1000+rng.Intn(80_000)), "kick", kick)
		}
		eng.After(500, "kick", kick)
		eng.RunUntil(200_000_000)
		return k.Counters(), eng.Now()
	}
	c1, t1 := runOnce()
	c2, t2 := runOnce()
	if c1 != c2 || t1 != t2 {
		t.Fatalf("chaotic run diverged:\n%+v @ %d\n%+v @ %d", c1, t1, c2, t2)
	}
}

// TestEpisodeFIFOWithinLevel: same-level episodes run in injection order.
func TestEpisodeFIFOWithinLevel(t *testing.T) {
	eng, k := newWhiteboxKernel(t, 1)
	var order []string
	k.CreateThread("observer", 28, func(tc *ThreadContext) {
		for {
			tc.Sleep(1000)
		}
	})
	// Inject three scheduler locks back to back; their execution order is
	// observable through the frame stack when each starts.
	probe := func(name string) {
		k.InjectEpisode(LockScheduler, 50_000, name, "_F")
	}
	eng.At(1000, "inj", func(sim.Time) {
		probe("A")
		probe("B")
		probe("C")
	})
	var watch func(sim.Time)
	watch = func(sim.Time) {
		f := k.cpu.CurrentFrame()
		if f.Function == "_F" {
			if len(order) == 0 || order[len(order)-1] != f.Module {
				order = append(order, f.Module)
			}
		}
		eng.After(10_000, "watch", watch)
	}
	eng.After(1000, "watch", watch)
	eng.RunUntil(10_000_000)
	if len(order) != 3 || order[0] != "A" || order[1] != "B" || order[2] != "C" {
		t.Fatalf("episode order = %v, want [A B C]", order)
	}
}
