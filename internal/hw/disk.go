package hw

import (
	"fmt"

	"wdmlat/internal/sim"
)

// DiskRequest is one transfer submitted to the disk controller.
type DiskRequest struct {
	Bytes int
	Write bool
	// Tag is carried through to completion for the submitting driver.
	Tag any

	submitted sim.Time
	started   sim.Time
}

// Disk models the UDMA IDE drive of the test system (Maxtor DiamondMax,
// Table 2) behind a bus-master DMA controller: requests queue FIFO, each
// costs seek + rotational + transfer time, and completion asserts the IDE
// interrupt line. Both OSes in the paper were explicitly configured for DMA
// rather than PIO (§3.2) — with PIO the transfer would burn CPU in the
// driver instead, which the PIO knob reproduces for ablation.
type Disk struct {
	eng  *sim.Engine
	rng  *sim.RNG
	line IRQLine

	// SeekTime is drawn per request that misses the "sequential" window.
	SeekTime sim.Dist
	// BytesPerCycle is the media+interface transfer rate.
	BytesPerCycle float64
	// PIO, when true, models programmed I/O: the transfer occupies the CPU
	// (reported via completion so the driver can charge it) instead of
	// overlapping with computation.
	PIO bool

	queue     []*DiskRequest
	busy      bool
	inflight  *DiskRequest // the transfer the controller is executing
	completed *DiskRequest // awaiting driver acknowledgment
	onDone    func(req *DiskRequest)
	xferDone  func(sim.Time) // hoisted completion event (one transfer at a time)
	reqFree   []*DiskRequest // recycled request records (FreeRequest)
	total     uint64
	totalWait sim.Cycles
}

// NewDisk creates a disk with the given service parameters asserting line
// on completion. onDone runs when the driver acknowledges the completion
// interrupt (CompleteTransfer), i.e. in ISR context.
func NewDisk(eng *sim.Engine, line IRQLine, seek sim.Dist, bytesPerCycle float64) *Disk {
	if bytesPerCycle <= 0 {
		panic("hw: non-positive disk transfer rate")
	}
	d := &Disk{
		eng:           eng,
		rng:           eng.RNG().Split(),
		line:          line,
		SeekTime:      seek,
		BytesPerCycle: bytesPerCycle,
	}
	d.xferDone = func(sim.Time) {
		d.busy = false
		d.completed = d.inflight
		d.inflight = nil
		d.line.Assert()
	}
	return d
}

// AllocRequest returns a zeroed request, reusing pooled storage when
// available. Pairs with FreeRequest; plain &DiskRequest{} literals remain
// valid for callers that do not recycle.
func (d *Disk) AllocRequest() *DiskRequest {
	if n := len(d.reqFree); n > 0 {
		req := d.reqFree[n-1]
		d.reqFree[n-1] = nil
		d.reqFree = d.reqFree[:n-1]
		*req = DiskRequest{}
		return req
	}
	return &DiskRequest{}
}

// FreeRequest returns a request to the pool. The caller relinquishes the
// handle: call it only after CompleteTransfer has returned the request and
// its Tag has been fully processed — a freed request may be handed out
// again by the next AllocRequest.
func (d *Disk) FreeRequest(req *DiskRequest) {
	req.Tag = nil
	d.reqFree = append(d.reqFree, req)
}

// SetCompletionHandler registers the driver callback invoked from
// CompleteTransfer.
func (d *Disk) SetCompletionHandler(fn func(req *DiskRequest)) { d.onDone = fn }

// Submit queues a transfer. The controller starts it immediately if idle.
func (d *Disk) Submit(req *DiskRequest) {
	if req == nil || req.Bytes <= 0 {
		panic("hw: invalid disk request")
	}
	req.submitted = d.eng.Now()
	d.queue = append(d.queue, req)
	d.kick()
}

// QueueLen returns the number of requests waiting or in flight.
func (d *Disk) QueueLen() int {
	n := len(d.queue)
	if d.busy {
		n++
	}
	return n
}

// Transfers returns the number of completed transfers.
func (d *Disk) Transfers() uint64 { return d.total }

// MeanQueueWait returns the average submit-to-start wait in cycles.
func (d *Disk) MeanQueueWait() float64 {
	if d.total == 0 {
		return 0
	}
	return float64(d.totalWait) / float64(d.total)
}

func (d *Disk) kick() {
	if d.busy || d.completed != nil || len(d.queue) == 0 {
		return
	}
	// Shift in place rather than advancing the slice base, which would
	// discard capacity and reallocate the queue every steady-state cycle.
	req := d.queue[0]
	copy(d.queue, d.queue[1:])
	d.queue[len(d.queue)-1] = nil
	d.queue = d.queue[:len(d.queue)-1]
	d.busy = true
	req.started = d.eng.Now()
	d.totalWait += req.started.Sub(req.submitted)
	service := d.serviceTime(req)
	d.inflight = req
	d.eng.After(service, "disk-xfer", d.xferDone)
}

func (d *Disk) serviceTime(req *DiskRequest) sim.Cycles {
	seek := sim.Cycles(0)
	if d.SeekTime != nil {
		seek = d.SeekTime.Draw(d.rng)
	}
	if d.PIO {
		// Programmed I/O: the controller signals readiness after the seek;
		// the data movement is the CPU's problem (see TransferCycles).
		return seek
	}
	xfer := sim.Cycles(float64(req.Bytes) / d.BytesPerCycle)
	return seek + xfer
}

// TransferCycles returns the CPU cost of moving a request's data under
// programmed I/O — the cycles the driver must burn at raised IRQL instead
// of letting the bus master overlap the transfer. Table 2 flags the DMA
// configuration as "a key point, easily overlooked"; this is what being
// overlooked costs.
func (d *Disk) TransferCycles(req *DiskRequest) sim.Cycles {
	return sim.Cycles(float64(req.Bytes) / d.BytesPerCycle)
}

// CompleteTransfer acknowledges the completion interrupt: the driver ISR
// calls it to fetch the finished request. It returns nil if no completion
// is pending (a spurious or shared interrupt). The next queued request then
// starts.
func (d *Disk) CompleteTransfer() *DiskRequest {
	req := d.completed
	if req == nil {
		return nil
	}
	d.completed = nil
	d.total++
	if d.onDone != nil {
		d.onDone(req)
	}
	d.kick()
	return req
}

// String describes the disk configuration.
func (d *Disk) String() string {
	mode := "DMA"
	if d.PIO {
		mode = "PIO"
	}
	return fmt.Sprintf("disk(%s, %.1f B/cycle)", mode, d.BytesPerCycle)
}
