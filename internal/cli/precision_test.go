package cli

import (
	"flag"
	"strings"
	"testing"

	"wdmlat/internal/stats"
)

func parsePrecision(t *testing.T, args ...string) (*PrecisionFlags, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p := AddPrecisionFlags(fs)
	return p, fs.Parse(args)
}

func TestPrecisionFlagsOffByDefault(t *testing.T) {
	p, err := parsePrecision(t)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := p.Policy()
	if err != nil || pol != nil {
		t.Fatalf("default flags: got policy %v, err %v; want nil, nil", pol, err)
	}
}

func TestPrecisionFlagsBuildPolicy(t *testing.T) {
	p, err := parsePrecision(t, "-precision", "0.1", "-ci", "0.99", "-max-runs", "32")
	if err != nil {
		t.Fatal(err)
	}
	pol, err := p.Policy()
	if err != nil {
		t.Fatal(err)
	}
	n := pol.Normalized()
	if n.RelWidth != 0.1 || n.Confidence != 0.99 || n.MaxRuns != 32 {
		t.Errorf("policy %+v, want w=0.1 c=0.99 max=32", n)
	}
	if len(n.Quantiles) == 0 || n.MinRuns != stats.DefaultMinRuns {
		t.Errorf("defaults not filled: %+v", n)
	}
}

func TestPrecisionFlagsRejectOrphanTuning(t *testing.T) {
	for _, args := range [][]string{
		{"-ci", "0.99"},
		{"-max-runs", "8"},
	} {
		p, err := parsePrecision(t, args...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Policy(); err == nil || !strings.Contains(err.Error(), "-precision") {
			t.Errorf("%v without -precision: got %v, want error naming -precision", args, err)
		}
	}
}

func TestPrecisionFlagsRejectInvalidPolicy(t *testing.T) {
	p, err := parsePrecision(t, "-precision", "1.5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Policy(); err == nil {
		t.Error("rel width 1.5 accepted")
	}
}
