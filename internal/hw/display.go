package hw

import "wdmlat/internal/sim"

// Display models the AGP graphics adapter's vertical-blank interrupt: a
// free-running raster that asserts its line at every vblank (16.7 ms at the
// 60 Hz refresh of the Table 2 test system). A frame-pacing application
// waits on the vblank to present — the D3DKMTWaitForVerticalBlankEvent
// pattern — so its missed-frame distribution is a user-visible readout of
// OS latency, the third QoS consumer alongside the soft modem and audio.
//
// Like the PIT, vblanks happen at exact period multiples from Start: all
// observed pacing jitter is OS-side, which is exactly what the frame pacer
// measures.
type Display struct {
	eng    *sim.Engine
	line   IRQLine
	period sim.Cycles
	tick   *sim.Event
	tickFn func(sim.Time) // vblank callback, allocated once
	blanks uint64
	epoch  sim.Time // time of Start; vblanks count from here
}

// NewDisplay creates a stopped display that will assert line at each
// vblank once started.
func NewDisplay(eng *sim.Engine, line IRQLine) *Display {
	if line == nil {
		panic("hw: display with nil interrupt line")
	}
	d := &Display{eng: eng, line: line}
	d.tickFn = func(sim.Time) {
		// Event records are pooled: drop the handle before re-arming so a
		// later Stop cannot cancel a recycled record.
		d.tick = nil
		d.blanks++
		d.arm() // re-arm first: the ISR path may run arbitrary code
		d.line.Assert()
	}
	return d
}

// Start begins the raster at the given refresh period. The first vblank
// asserts one full period after starting.
func (d *Display) Start(period sim.Cycles) {
	if period <= 0 {
		panic("hw: non-positive display refresh period")
	}
	d.Stop()
	d.period = period
	d.epoch = d.eng.Now()
	d.arm()
}

func (d *Display) arm() {
	d.tick = d.eng.After(d.period, "vblank", d.tickFn)
}

// Stop halts the raster.
func (d *Display) Stop() {
	if d.tick != nil {
		d.eng.Cancel(d.tick)
		d.tick = nil
	}
}

// Period returns the refresh period (0 if stopped since creation).
func (d *Display) Period() sim.Cycles { return d.period }

// VBlanks returns the number of vblank interrupts asserted since Start.
func (d *Display) VBlanks() uint64 { return d.blanks }

// NominalVBlankTime returns the exact hardware time of vblank n (1-based)
// since the last Start call — the ground-truth release instant a perfectly
// paced frame presents against.
func (d *Display) NominalVBlankTime(n uint64) sim.Time {
	return d.epoch.Add(sim.Cycles(n) * d.period)
}
