package microbench

import (
	"testing"

	"wdmlat/internal/ospersona"
)

func TestSuiteProducesPlausibleAverages(t *testing.T) {
	r := Run(ospersona.NT4, 1, 200)
	if r.OSName == "" {
		t.Fatal("missing OS name")
	}
	check := func(name string, s Stat, loUS, hiUS float64) {
		t.Helper()
		if s.N < 200 {
			t.Fatalf("%s: only %d samples", name, s.N)
		}
		if s.MeanUS < loUS || s.MeanUS > hiUS {
			t.Fatalf("%s mean = %.2f µs, want in [%v, %v]", name, s.MeanUS, loUS, hiUS)
		}
	}
	// Late-90s magnitudes: tens of µs for switches and signals, a few µs
	// for dispatch, sub-PIT-period for timer error.
	check("context switch", r.ContextSwitch, 5, 100)
	check("event signal", r.EventSignal, 5, 100)
	check("dpc dispatch", r.DpcDispatch, 0.5, 20)
	check("interrupt dispatch", r.InterruptDispatch, 0.5, 20)
	check("timer granularity", r.TimerGranularity, 1, 1100)
}

// The paper's §1.2/§4.2 point, in one test: the traditional suite cannot
// separate the systems (averages within ~3x) even though their loaded
// worst cases differ by orders of magnitude (asserted in internal/core).
func TestAveragesCannotSeparateTheSystems(t *testing.T) {
	nt := Run(ospersona.NT4, 2, 300)
	w98 := Run(ospersona.Win98, 2, 300)
	ratio := func(a, b float64) float64 {
		if a < b {
			a, b = b, a
		}
		if b == 0 {
			return 0
		}
		return a / b
	}
	pairs := []struct {
		name   string
		nt, w9 Stat
	}{
		{"context switch", nt.ContextSwitch, w98.ContextSwitch},
		{"event signal", nt.EventSignal, w98.EventSignal},
		{"dpc dispatch", nt.DpcDispatch, w98.DpcDispatch},
		{"interrupt dispatch", nt.InterruptDispatch, w98.InterruptDispatch},
	}
	for _, p := range pairs {
		if r := ratio(p.nt.MeanUS, p.w9.MeanUS); r > 3 {
			t.Errorf("%s: idle-system averages differ %.1fx — the strawman should look close", p.name, r)
		}
	}
}

func TestWin2000BetaRuns(t *testing.T) {
	r := Run(ospersona.Win2000Beta, 3, 100)
	if r.OSName != "Windows 2000 Beta 2 (NT 5.0)" {
		t.Fatalf("OS name = %q", r.OSName)
	}
	if r.ContextSwitch.MeanUS <= 0 {
		t.Fatal("no context switch data")
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(ospersona.Win98, 9, 100)
	b := Run(ospersona.Win98, 9, 100)
	if a != b {
		t.Fatalf("suite not deterministic:\n%+v\n%+v", a, b)
	}
}
