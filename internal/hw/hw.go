// Package hw models the PC hardware devices of the paper's test system
// (Table 2) at the level the latency study needs: devices take programmed
// commands, consume virtual time, and assert interrupt lines. The ISR/DPC
// halves of their drivers live with the OS personality (ospersona package);
// this package is "the board".
package hw

// IRQLine is an interrupt line into the interrupt controller/kernel.
// *kernel.Interrupt satisfies it.
type IRQLine interface {
	Assert()
}

// LineFunc adapts a function to an IRQLine, mainly for tests.
type LineFunc func()

// Assert implements IRQLine.
func (f LineFunc) Assert() { f() }
