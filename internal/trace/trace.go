// Package trace is an ETW-style kernel event tracer for the simulated
// machine: it subscribes to the kernel's instrumentation hooks and records
// typed scheduling events (interrupt assertion/ISR entry, DPC queue/start,
// thread ready/dispatch) into a bounded ring. It is the debugging
// counterpart to the cause tool: where causetool samples *what* is on-CPU,
// the tracer records *why* the CPU changed hands.
//
// The tracer is non-invasive (it observes the simulator's ground-truth
// hooks, consuming no simulated cycles), so it is a tool for studying the
// machine, not a model of a 1998 profiler.
package trace

import (
	"fmt"
	"io"
	"strings"

	"wdmlat/internal/kernel"
	"wdmlat/internal/sim"
)

// Kind is the event type.
type Kind int

// Event kinds.
const (
	InterruptAsserted Kind = iota
	IsrEntered
	DpcQueued
	DpcStarted
	ThreadReadied
	ThreadDispatched
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case InterruptAsserted:
		return "irq-assert"
	case IsrEntered:
		return "isr-enter"
	case DpcQueued:
		return "dpc-queue"
	case DpcStarted:
		return "dpc-start"
	case ThreadReadied:
		return "thread-ready"
	case ThreadDispatched:
		return "thread-dispatch"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded kernel event.
type Event struct {
	At   sim.Time
	Kind Kind
	// Vector for interrupt events; -1 otherwise.
	Vector int
	// Name is the DPC or thread name, if any.
	Name string
	// Lag is the assertion→entry, queue→start or ready→dispatch delay for
	// the *Entered/*Started/*Dispatched kinds.
	Lag sim.Cycles
}

// Tracer records kernel events into a bounded ring.
type Tracer struct {
	k      *kernel.Kernel
	ring   []Event
	head   int
	filled bool
	total  uint64
	// filter, when non-nil, drops events for which it returns false.
	filter func(Event) bool
}

// Attach subscribes a tracer to a kernel. It replaces any previously-set
// kernel hooks (the kernel supports one hook consumer; use the tracer's
// Chain option to multiplex if needed).
func Attach(k *kernel.Kernel, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	t := &Tracer{k: k, ring: make([]Event, capacity)}
	k.SetHooks(kernel.Hooks{
		InterruptAsserted: func(vector int, at sim.Time) {
			t.add(Event{At: at, Kind: InterruptAsserted, Vector: vector, Name: ""})
		},
		IsrEntered: func(vector int, asserted, entered sim.Time) {
			t.add(Event{At: entered, Kind: IsrEntered, Vector: vector, Lag: entered.Sub(asserted)})
		},
		DpcQueued: func(d *kernel.DPC, at sim.Time) {
			t.add(Event{At: at, Kind: DpcQueued, Vector: -1, Name: d.Name})
		},
		DpcStarted: func(d *kernel.DPC, queuedAt, started sim.Time) {
			t.add(Event{At: started, Kind: DpcStarted, Vector: -1, Name: d.Name, Lag: started.Sub(queuedAt)})
		},
		ThreadReadied: func(th *kernel.Thread, at sim.Time) {
			t.add(Event{At: at, Kind: ThreadReadied, Vector: -1, Name: th.Name})
		},
		ThreadDispatched: func(th *kernel.Thread, readiedAt, at sim.Time) {
			t.add(Event{At: at, Kind: ThreadDispatched, Vector: -1, Name: th.Name, Lag: at.Sub(readiedAt)})
		},
	})
	return t
}

// SetFilter installs a predicate; events failing it are not recorded.
func (t *Tracer) SetFilter(f func(Event) bool) { t.filter = f }

// Detach unsubscribes from the kernel.
func (t *Tracer) Detach() { t.k.SetHooks(kernel.Hooks{}) }

func (t *Tracer) add(e Event) {
	t.total++
	if t.filter != nil && !t.filter(e) {
		return
	}
	t.ring[t.head] = e
	t.head = (t.head + 1) % len(t.ring)
	if t.head == 0 {
		t.filled = true
	}
}

// Total returns the number of events observed (recorded or filtered).
func (t *Tracer) Total() uint64 { return t.total }

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if !t.filled {
		out := make([]Event, t.head)
		copy(out, t.ring[:t.head])
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.head:]...)
	out = append(out, t.ring[:t.head]...)
	return out
}

// Between returns retained events with At in [from, to].
func (t *Tracer) Between(from, to sim.Time) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.At >= from && e.At <= to {
			out = append(out, e)
		}
	}
	return out
}

// WorstLag returns the retained event of the given kind with the largest
// lag, and whether any was found.
func (t *Tracer) WorstLag(kind Kind) (Event, bool) {
	var best Event
	found := false
	for _, e := range t.Events() {
		if e.Kind != kind {
			continue
		}
		if !found || e.Lag > best.Lag {
			best = e
			found = true
		}
	}
	return best, found
}

// Dump writes the retained events, one per line, with millisecond
// timestamps at the given frequency.
func (t *Tracer) Dump(w io.Writer, freq sim.Freq) error {
	var b strings.Builder
	for _, e := range t.Events() {
		fmt.Fprintf(&b, "%12.4f ms  %-16s", freq.Millis(sim.Cycles(e.At)), e.Kind)
		if e.Vector >= 0 {
			fmt.Fprintf(&b, " vec=%d", e.Vector)
		}
		if e.Name != "" {
			fmt.Fprintf(&b, " %s", e.Name)
		}
		if e.Lag > 0 {
			fmt.Fprintf(&b, " (lag %.4f ms)", freq.Millis(e.Lag))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
