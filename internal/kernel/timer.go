package kernel

import (
	"wdmlat/internal/sim"
)

// Timer is a KTIMER: a waitable dispatcher object that is signaled — and
// optionally queues a DPC — when it expires. Expiry is processed by the
// clock-tick ISR, so effective resolution is the programmed PIT period;
// the paper's tools raise the PIT from the 67–100 Hz default to 1 kHz to
// get millisecond timers (§2.2).
type Timer struct {
	waiterList
	Name     string
	active   bool
	due      sim.Time
	period   sim.Cycles // 0 for single-shot
	dpc      *DPC
	signaled bool
	fires    uint64
}

// NewTimer creates an inactive single-shot timer (KeInitializeTimer).
func (k *Kernel) NewTimer(name string) *Timer {
	return &Timer{waiterList: waiterList{k: k}, Name: name}
}

// Active reports whether the timer is armed.
func (t *Timer) Active() bool { return t.active }

// Fires returns how many times the timer has expired.
func (t *Timer) Fires() uint64 { return t.fires }

// Due returns the armed expiry time (meaningful while Active).
func (t *Timer) Due() sim.Time { return t.due }

func (t *Timer) poll(_ *Thread) bool {
	// NT timers default to notification semantics: signaled latches until
	// the timer is re-armed.
	return t.signaled
}

// setTimer arms (or re-arms) a single-shot timer relative to now
// (KeSetTimer). Arming clears the signaled state.
func (k *Kernel) setTimer(t *Timer, delay sim.Cycles, dpc *DPC) {
	if delay < 0 {
		panic("kernel: negative timer delay")
	}
	k.cancelTimer(t)
	t.active = true
	t.signaled = false
	t.due = k.now().Add(delay)
	t.period = 0
	t.dpc = dpc
	k.timers = append(k.timers, t)
}

// setPeriodicTimer arms a periodic timer (KeSetTimerEx; "NT 4.0 added
// periodic OS timers", paper §2.2).
func (k *Kernel) setPeriodicTimer(t *Timer, delay, period sim.Cycles, dpc *DPC) {
	if period <= 0 {
		panic("kernel: non-positive timer period")
	}
	k.setTimer(t, delay, dpc)
	t.period = period
}

// cancelTimer disarms a timer (KeCancelTimer). Returns true if it was armed.
func (k *Kernel) cancelTimer(t *Timer) bool {
	if !t.active {
		return false
	}
	t.active = false
	for i, x := range k.timers {
		if x == t {
			k.timers = append(k.timers[:i], k.timers[i+1:]...)
			break
		}
	}
	return true
}

// SetTimer arms a single-shot timer from simulation-harness context.
func (k *Kernel) SetTimer(t *Timer, delay sim.Cycles, dpc *DPC) {
	k.setTimer(t, delay, dpc)
}

// SetPeriodicTimer arms a periodic timer from simulation-harness context.
func (k *Kernel) SetPeriodicTimer(t *Timer, delay, period sim.Cycles, dpc *DPC) {
	k.setPeriodicTimer(t, delay, period, dpc)
}

// CancelTimer disarms a timer from simulation-harness context.
func (k *Kernel) CancelTimer(t *Timer) bool { return k.cancelTimer(t) }

// clockISR is the kernel's handler for the PIT interrupt: charge the tick
// bookkeeping, then fire every due timer (signal its waiters and queue its
// DPC). This is where the measurement timeline of Figure 3 begins: "PIT
// ISR: Read and save TSC, Queue DPC".
func (k *Kernel) clockISR(c *IsrContext) {
	c.Charge(k.draw(k.cfg.ClockTick))
	now := c.Now()
	// Fire due timers. The slice is filtered in place (the write index
	// never passes the read index), so the tick allocates nothing.
	keep := k.timers[:0]
	for _, t := range k.timers {
		if !t.active || t.due.After(now) {
			keep = append(keep, t)
			continue
		}
		c.Charge(k.draw(k.cfg.TimerFire))
		t.fires++
		t.signaled = true
		// Wake all waiters (notification semantics).
		for {
			w := t.popWaiter()
			if w == nil {
				break
			}
			k.wakeThreadFrom(t, w, WaitSuccess)
		}
		if t.dpc != nil {
			k.queueDpc(t.dpc)
		}
		if t.period > 0 {
			t.due = t.due.Add(t.period)
			t.signaled = false // periodic timers pulse
			keep = append(keep, t)
		} else {
			t.active = false
		}
	}
	for i := len(keep); i < len(k.timers); i++ {
		k.timers[i] = nil // drop fired single-shot refs from the backing array
	}
	k.timers = keep
}

// ActiveTimers returns the number of armed timers.
func (k *Kernel) ActiveTimers() int { return len(k.timers) }
