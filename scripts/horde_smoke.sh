#!/bin/sh
# horde-smoke: distributed fleet execution under real process loss, on
# both sides of the protocol.
#
#   1. start latserved -fleet (coordinator mode, 1s lease TTL) on a
#      scratch port, plus 4 latworkd worker processes sharing one
#      checkpoint cache directory
#   2. submit the default matrix via latctl
#   3. poll /v1/fleet until a worker holds 2 leases, then SIGKILL -9 it
#      mid-campaign — no drain, no goodbye, exactly what a crashed host
#      looks like to the coordinator — and assert via /metrics that the
#      loss was seen and handled (fleet_workers_expired >= 1,
#      fleet_cells_redispatched >= 1; asserted now, because the restart
#      below resets the metrics registry)
#   4. SIGKILL -9 the coordinator itself while leases are outstanding,
#      leave it dead long enough for the surviving workers' in-flight
#      cells to finish, checkpoint to the shared cache, and exhaust their
#      completion retries, then restart latserved on the same -cache
#   5. fetch the merged result — the restarted server re-admits the
#      campaign from its journal; nothing is re-submitted — and diff it
#      against the same campaign run by cmd/reproduce -encode in one
#      local process: byte-identity across worker loss AND coordinator
#      loss
#   6. assert the recovery actually exercised the durable paths:
#      server_campaigns_resumed >= 1 (journal replay) and
#      fleet_cells_cache_hit >= 1 (a re-dispatched cell answered from a
#      worker's checkpoint cache instead of re-simulating)
#
# Scratch state lives in results-horde-smoke/ (gitignored); it is removed
# on success and kept for post-mortem on failure.
set -eu

GO=${GO:-go}
DIR=results-horde-smoke
ADDR=127.0.0.1:8473
URL=http://$ADDR
SEED=3
DURATION=60s
WORKERS=4
DOWNTIME=${DOWNTIME:-16}

rm -rf "$DIR"
mkdir -p "$DIR"

fail() {
    echo "horde-smoke: $*" >&2
    exit 1
}

SERVED_PID=
cleanup() {
    for i in $(seq 1 $WORKERS); do
        eval "pid=\${WORKER_PID_$i:-}"
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    [ -n "$SERVED_PID" ] && kill "$SERVED_PID" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

echo "== build"
$GO build -o "$DIR/latserved" ./cmd/latserved
$GO build -o "$DIR/latworkd" ./cmd/latworkd
$GO build -o "$DIR/latctl" ./cmd/latctl
$GO build -o "$DIR/reproduce" ./cmd/reproduce

metric() {
    # metric <name>: print the integer value of a counter from /metrics
    curl -sf "$URL/metrics" | sed -n "s/^.*\"$1\": \([0-9][0-9]*\).*$/\1/p" | head -1
}

start_served() {
    "$DIR/latserved" -addr "$ADDR" -cache "$DIR/cache" -jobs 8 \
        -fleet -lease-ttl 1s -poll 100ms 2>>"$DIR/latserved.log" &
    SERVED_PID=$!
    i=0
    until curl -sf "$URL/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "latserved did not come up (see $DIR/latserved.log)"
        sleep 0.1
    done
}

echo "== start coordinator + $WORKERS workers (shared checkpoint cache)"
start_served
for i in $(seq 1 $WORKERS); do
    "$DIR/latworkd" -coord "$URL" -name "horde-$i" -cells 2 \
        -cache "$DIR/wcache" 2>>"$DIR/latworkd-$i.log" &
    eval "WORKER_PID_$i=$!"
done

echo "== submit the campaign"
ID=$("$DIR/latctl" -server "$URL" submit -duration "$DURATION" -seed "$SEED" -runs 1)

echo "== wait for a worker to hold 2 leases, then SIGKILL it"
VICTIM=
i=0
while [ -z "$VICTIM" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "no worker ever held 2 leases (see $DIR/latserved.log)"
    VICTIM=$(curl -sf "$URL/v1/fleet" | tr '}' '\n' \
        | grep '"leases":2' | head -1 \
        | sed -n 's/.*"name":"\([^"]*\)".*/\1/p') || true
    [ -n "$VICTIM" ] || sleep 0.1
done
VICTIM_N=${VICTIM#horde-}
eval "VICTIM_PID=\$WORKER_PID_$VICTIM_N"
echo "   killing $VICTIM (pid $VICTIM_PID) with 2 leases outstanding"
kill -9 "$VICTIM_PID"
eval "WORKER_PID_$VICTIM_N="

echo "== worker loss visible in /metrics (before the restart resets them)"
i=0
while :; do
    EXPIRED=$(metric fleet_workers_expired)
    REDISPATCHED=$(metric fleet_cells_redispatched)
    [ "${EXPIRED:-0}" -ge 1 ] && [ "${REDISPATCHED:-0}" -ge 1 ] && break
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "worker loss never surfaced (expired='${EXPIRED:-}' redispatched='${REDISPATCHED:-}')"
    sleep 0.1
done
echo "   $EXPIRED worker expired, $REDISPATCHED cells re-dispatched"

echo "== SIGKILL the coordinator with leases outstanding"
i=0
while ! curl -sf "$URL/v1/fleet" | grep -q '"leases":[1-9]'; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "no leases outstanding to orphan (campaign finished too fast?)"
    sleep 0.1
done
kill -9 "$SERVED_PID"
SERVED_PID=
echo "   coordinator dead; ${DOWNTIME}s of downtime while survivors finish," \
    "checkpoint, and exhaust completion retries"
sleep "$DOWNTIME"

echo "== restart the coordinator on the same cache + journal"
start_served

echo "== fetch the merged result (campaign resumed from the journal, not re-submitted)"
"$DIR/latctl" -server "$URL" result -o "$DIR/horde.json" "$ID"

echo "== run the same campaign locally via cmd/reproduce -encode"
"$DIR/reproduce" -duration "$DURATION" -seed "$SEED" -runs 1 -jobs 8 \
    -outdir "$DIR/repro" -encode "$DIR/local.json" >/dev/null

echo "== byte-identity: fleet-merged result vs single-process run"
cmp "$DIR/horde.json" "$DIR/local.json" || fail "fleet result differs from local reproduce run"

echo "== recovery visible in /metrics"
RESUMED=$(metric server_campaigns_resumed)
CACHEHIT=$(metric fleet_cells_cache_hit)
[ "${RESUMED:-0}" -ge 1 ] || fail "expected server_campaigns_resumed >= 1, got '${RESUMED:-}'"
[ "${CACHEHIT:-0}" -ge 1 ] || fail "expected fleet_cells_cache_hit >= 1, got '${CACHEHIT:-}'"
echo "   $RESUMED campaign resumed from the journal, $CACHEHIT cells answered from worker caches"

echo "horde-smoke: ok (fleet result byte-identical to local run despite worker AND coordinator SIGKILL mid-campaign)"
rm -rf "$DIR"
