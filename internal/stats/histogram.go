// Package stats implements the statistical machinery of the paper's
// methodology: latency distributions kept as log-scale histograms (Figure 4
// is plotted log-log precisely because the distributions are "highly
// nonsymmetric, with a very long tail on one side", §4.2), complementary
// distributions, tail-event rates, and the expected worst case over an
// observation horizon (the hourly/daily/weekly columns of Table 3).
package stats

import (
	"fmt"
	"math"
	"math/big"
	"math/bits"

	"wdmlat/internal/sim"
)

// Histogram bucket geometry: logarithmic buckets, bucketsPerOctave per
// doubling, spanning [minValue, minValue<<octaves). At 16 buckets per
// octave the relative resolution is ~4.4%, ample for order-of-magnitude
// latency comparisons while keeping memory constant regardless of sample
// count.
const (
	bucketsPerOctave = 16
	octaves          = 40 // covers [1, 2^40) cycles ≈ up to ~1 hour at 300 MHz
	numBuckets       = bucketsPerOctave * octaves
)

// Histogram is a fixed-memory log-scale histogram of non-negative cycle
// counts. The zero value is not usable; call NewHistogram.
type Histogram struct {
	freq     sim.Freq
	counts   [numBuckets + 2]uint64 // +underflow (index 0 handles <1), +overflow
	n        uint64
	sum      float64
	sumsq    float64
	min, max sim.Cycles
}

// NewHistogram creates an empty histogram that formats values at the given
// clock frequency.
func NewHistogram(freq sim.Freq) *Histogram {
	if freq <= 0 {
		panic("stats: non-positive frequency")
	}
	return &Histogram{freq: freq, min: math.MaxInt64, max: -1}
}

// Freq returns the histogram's clock frequency.
func (h *Histogram) Freq() sim.Freq { return h.freq }

// bucketEdges[i] is the inclusive integer lower edge of bucket i in cycles:
// the smallest integer >= 2^((i-1)/bucketsPerOctave). Edges are computed
// once, exactly, in integer arithmetic — the old per-call
// math.Log2/math.Exp2 formulation both paid a transcendental call per
// sample and could drift a value across a bucket boundary when the float
// rounding of lg*bucketsPerOctave landed on the wrong side of an integer.
// bucketEdges[0] is 0 (underflow) and bucketEdges[numBuckets+1] is the
// overflow edge 1<<octaves.
var bucketEdges [numBuckets + 2]uint64

// smallIdx[u] is the bucket index of u for u in [1,32) — the low octaves
// where integer edges collide and a direct table is both simplest and
// exact. smallIdx[0] is unused (values < 1 underflow before the lookup).
var smallIdx [32]uint8

// subGuess[m] is a lower bound for the sub-octave bucket of any value
// whose five mantissa bits below the leading 1 are m, valid in every
// octave k >= 5: subGuess[m] = max{ j : 2^(j/16) <= 1 + m/32 }. For a
// value u with mantissa m in octave k, u >= 2^(k-5)(32+m) >=
// ceil(2^(k+j/16)) so edge[subGuess[m]] is always <= u, and because a
// 1/32 mantissa step spans less than one 2^(1/16) bucket ratio the true
// sub-bucket is subGuess[m] or subGuess[m]+1 — resolved by a single edge
// comparison in bucketIndex.
var subGuess [32]uint8

func init() {
	for i := 1; i <= numBuckets+1; i++ {
		bucketEdges[i] = exactEdge(i - 1)
	}
	for u := uint64(1); u < 32; u++ {
		i := 1
		for bucketEdges[i+1] <= u {
			i++
		}
		smallIdx[u] = uint8(i)
	}
	// max{ j : 2^(j/16) <= 1+m/32 } = max{ j : 2^(80+j) <= (32+m)^16 },
	// computed exactly in integers: (32+m)^16 >= 2^(80+j) iff its bit
	// length is at least 81+j.
	for m := int64(0); m < 32; m++ {
		x := new(big.Int).Exp(big.NewInt(32+m), big.NewInt(16), nil)
		subGuess[m] = uint8(x.BitLen() - 81)
	}
}

// exactEdge returns ceil(2^(n/bucketsPerOctave)) computed exactly. For
// n = 16k the edge is the integer 1<<k. Otherwise 2^(n/16) is irrational,
// so its ceiling is r+1 where r is the integer 16th root of 2^n — taken as
// four nested integer square roots, which preserve the floor at each step.
func exactEdge(n int) uint64 {
	k, j := n/bucketsPerOctave, n%bucketsPerOctave
	if j == 0 {
		return 1 << uint(k)
	}
	x := new(big.Int).Lsh(big.NewInt(1), uint(n))
	for i := 0; i < 4; i++ {
		x.Sqrt(x)
	}
	return x.Uint64() + 1
}

// bucketIndex maps a value to its bucket: the octave comes from the bit
// length of v, the sub-octave from the subGuess mantissa table plus at
// most one exact-edge comparison (values below 32 use the direct
// smallIdx table). Values < 1 go to the underflow bucket 0; values
// beyond the top octave go to the overflow bucket.
func bucketIndex(v sim.Cycles) int {
	if v < 1 {
		return 0
	}
	u := uint64(v)
	if u < 32 {
		return int(smallIdx[u])
	}
	k := uint(bits.Len64(u)) - 1
	if k >= octaves {
		return numBuckets + 1
	}
	i := 1 + int(k)*bucketsPerOctave + int(subGuess[(u>>(k-5))&31])
	if u >= bucketEdges[i+1] {
		i++
	}
	return i
}

// bucketLow returns the inclusive lower edge of bucket i in cycles. The
// ceiling keeps integer values inside their bucket's half-open interval
// even in the lowest octaves where edges would otherwise truncate together.
func bucketLow(i int) sim.Cycles {
	if i <= 0 {
		return 0
	}
	if i > numBuckets {
		i = numBuckets + 1
	}
	return sim.Cycles(bucketEdges[i])
}

// Add records one latency sample. Negative samples panic: a latency cannot
// be negative, and silently clamping would hide measurement bugs.
func (h *Histogram) Add(v sim.Cycles) {
	if v < 0 {
		panic(fmt.Sprintf("stats: negative latency sample %d", v))
	}
	h.counts[bucketIndex(v)]++
	h.n++
	f := float64(v)
	h.sum += f
	h.sumsq += f * f
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// AddMillis records a sample given in milliseconds.
func (h *Histogram) AddMillis(ms float64) {
	h.Add(h.freq.FromMillis(ms))
}

// N returns the sample count.
func (h *Histogram) N() uint64 { return h.n }

// Min returns the smallest sample (0 if empty).
func (h *Histogram) Min() sim.Cycles {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 if empty).
func (h *Histogram) Max() sim.Cycles {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Mean returns the sample mean in cycles.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// StdDev returns the sample standard deviation in cycles.
func (h *Histogram) StdDev() float64 {
	if h.n < 2 {
		return 0
	}
	m := h.Mean()
	v := h.sumsq/float64(h.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// MaxMillis returns the largest sample in milliseconds.
func (h *Histogram) MaxMillis() float64 { return h.freq.Millis(h.Max()) }

// MeanMillis returns the mean in milliseconds.
func (h *Histogram) MeanMillis() float64 {
	return h.Mean() / float64(h.freq) * 1e3
}

// CountAtLeast returns the number of samples in buckets whose lower edge is
// >= v (i.e., samples guaranteed to be >= the bucket floor containing v;
// the count is taken from the bucket containing v upward, which
// slightly over-counts by at most one bucket width — conservative in the
// direction the worst-case analysis wants).
func (h *Histogram) CountAtLeast(v sim.Cycles) uint64 {
	var c uint64
	for i := bucketIndex(v); i < len(h.counts); i++ {
		c += h.counts[i]
	}
	return c
}

// CCDF returns the fraction of samples >= v (bucket-resolution), in [0,1].
func (h *Histogram) CCDF(v sim.Cycles) float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.CountAtLeast(v)) / float64(h.n)
}

// Quantile returns the q-quantile (q in [0,1]) at bucket resolution.
func (h *Histogram) Quantile(q float64) sim.Cycles {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(q * float64(h.n))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i]
		if cum > target {
			return bucketLow(i)
		}
	}
	return h.max
}

// Merge adds other's samples into h. The frequencies must match.
func (h *Histogram) Merge(other *Histogram) {
	if h.freq != other.freq {
		panic("stats: merging histograms with different frequencies")
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.n += other.n
	h.sum += other.sum
	h.sumsq += other.sumsq
	if other.n > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	cp := *h
	return &cp
}
