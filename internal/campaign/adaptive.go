package campaign

import (
	"sync"

	"wdmlat/internal/core"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/stats"
	"wdmlat/internal/workload"
)

// Adaptive-replica metric names (see also the Metric* constants in
// campaign.go). Counters, so a campaign resumed across processes reports
// only what each process actually decided.
const (
	// MetricReplicasAdaptive counts replicas charged to adaptive logical
	// cells — the quantity a fixed-replica campaign would have had to guess.
	MetricReplicasAdaptive = "campaign_replicas_adaptive"
	// MetricCellsConverged counts logical cells whose stopping rule was
	// satisfied before the replica cap.
	MetricCellsConverged = "campaign_cells_converged"
	// MetricConvergenceFailures counts logical cells that hit MaxRuns still
	// unconverged — their results ship, but the requested precision does
	// not hold and the campaign's aggregate claim must say so.
	MetricConvergenceFailures = "campaign_convergence_failures"
)

// SteadyWindow is the trailing-window length of the steady-state test the
// adaptive stopping rule applies to per-replica quantile trajectories. It
// matches stats.DefaultMinRuns so the rule can fire at the very first
// evaluation when the data genuinely are settled.
const SteadyWindow = 3

// Adaptive describes how one logical cell's adaptive replica loop ended.
type Adaptive struct {
	// Replicas is the number of replicas pooled into the returned result.
	Replicas int
	// Converged reports whether the stopping rule was satisfied; false
	// means the cell hit the MaxRuns cap first and the requested precision
	// is not guaranteed.
	Converged bool
}

// convergenceTargets returns the pooled distributions the stopping rule
// watches: the DPC-interrupt latency and the two measurement-thread
// latencies — the three Figure 4 panels every headline claim reads from.
// Nil histograms (e.g. a personality without a thread tier) are skipped.
func convergenceTargets(res *core.Result) []*stats.Histogram {
	targets := make([]*stats.Histogram, 0, 3)
	if res.DpcInt != nil {
		targets = append(targets, res.DpcInt)
	}
	if h := res.Thread[res.HighPriority()]; h != nil {
		targets = append(targets, h)
	}
	if h := res.Thread[res.MediumPriority()]; h != nil {
		targets = append(targets, h)
	}
	return targets
}

// adaptiveDone evaluates the stopping rule on the pooled prefix: every
// watched quantile of every target distribution must be DKW-converged to
// the policy's relative half-width, and every per-replica estimate
// trajectory must have settled (SteadyState over the last SteadyWindow
// replicas). A pure function of (merged, traj, policy) — no clocks, no
// worker identity — so every execution path agrees on it.
func adaptiveDone(merged *core.Result, traj [][]float64, p stats.Precision) bool {
	for _, h := range convergenceTargets(merged) {
		for _, q := range p.Quantiles {
			if !h.QuantileConverged(q, p.Confidence, p.RelWidth) {
				return false
			}
		}
	}
	for _, series := range traj {
		if !stats.SteadyState(series, SteadyWindow, p.RelWidth) {
			return false
		}
	}
	return true
}

// MergedAdaptive runs replicas of one logical cell adaptively: it submits
// MinRuns replicas, pools them in replica order exactly like Merged, and
// keeps adding Batch more until the precision policy's stopping rule holds
// or MaxRuns is reached. Replica seeds come from the same DeriveSeed(base,
// ReplicaKey(key, i)) scheme as fixed campaigns, and the stopping rule is
// evaluated only on pooled replica prefixes — a pure function of the data —
// so the chosen replica count, and therefore the returned result, is
// byte-identical at any Jobs setting and across resume and fleet execution.
// Replicas within a round execute in parallel on the runner's pool.
//
// The cell's replicas must not have been submitted already (Submit panics
// on duplicate keys); MergedAdaptive owns the "<key>/<i>" namespace for its
// key. Any failed replica aborts collection with that replica's error.
func (r *Runner) MergedAdaptive(key string, cfg core.RunConfig, prec stats.Precision) (*core.Result, Adaptive, error) {
	p := prec.Normalized()
	if err := p.Validate(); err != nil {
		return nil, Adaptive{}, err
	}

	var merged *core.Result
	var traj [][]float64 // per target×quantile estimate trajectory
	submitted, pooled := 0, 0

	// extend submits replicas [submitted, n) — one adaptive round — and
	// pools them in replica order as they finish.
	extend := func(n int) error {
		cells := make([]Cell, 0, n-submitted)
		for i := submitted; i < n; i++ {
			cells = append(cells, Cell{Key: ReplicaKey(key, i), Config: cfg})
		}
		submitted = n
		r.Submit(cells...)
		for ; pooled < n; pooled++ {
			res, err := r.Result(ReplicaKey(key, pooled))
			if err != nil {
				return err
			}
			if merged == nil {
				merged = res.Clone()
			} else {
				merged.Merge(res)
			}
			targets := convergenceTargets(merged)
			if traj == nil {
				traj = make([][]float64, len(targets)*len(p.Quantiles))
			}
			for ti, h := range targets {
				for qi, q := range p.Quantiles {
					s := ti*len(p.Quantiles) + qi
					traj[s] = append(traj[s], float64(h.Quantile(q)))
				}
			}
		}
		return nil
	}

	if err := extend(p.MinRuns); err != nil {
		return nil, Adaptive{}, err
	}
	converged := adaptiveDone(merged, traj, p)
	for !converged && pooled < p.MaxRuns {
		next := pooled + p.Batch
		if next > p.MaxRuns {
			next = p.MaxRuns
		}
		if err := extend(next); err != nil {
			return nil, Adaptive{}, err
		}
		converged = adaptiveDone(merged, traj, p)
	}

	r.met.adaptive.Add(uint64(pooled))
	if converged {
		r.met.converged.Inc()
	} else {
		r.met.convFailed.Inc()
	}
	return merged, Adaptive{Replicas: pooled, Converged: converged}, nil
}

// RunMatrixAdaptive is RunMatrix with a precision policy instead of a fixed
// replica count: every logical OS × workload cell runs its own adaptive
// loop (concurrently — the runner's pool still bounds actual parallelism),
// so light cells stop early and noisy ones keep sampling. It returns the
// pooled results, the per-logical-cell Adaptive outcomes keyed by
// MatrixKey, and the first failure in deterministic cell order.
func (r *Runner) RunMatrixAdaptive(oses []ospersona.OS, classes []workload.Class, variant string, base core.RunConfig, prec stats.Precision) (map[ospersona.OS]map[workload.Class]*core.Result, map[string]Adaptive, error) {
	type outcome struct {
		res *core.Result
		ad  Adaptive
		err error
	}
	outs := make([]outcome, len(oses)*len(classes))
	var wg sync.WaitGroup
	idx := 0
	for _, o := range oses {
		for _, c := range classes {
			cfg := base
			cfg.OS = o
			cfg.Workload = c
			key := MatrixKey(o, c, variant)
			i := idx
			idx++
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, ad, err := r.MergedAdaptive(key, cfg, prec)
				outs[i] = outcome{res, ad, err}
			}()
		}
	}
	wg.Wait()

	results := make(map[ospersona.OS]map[workload.Class]*core.Result, len(oses))
	adaptives := make(map[string]Adaptive, len(outs))
	idx = 0
	for _, o := range oses {
		results[o] = make(map[workload.Class]*core.Result, len(classes))
		for _, c := range classes {
			out := outs[idx]
			idx++
			if out.err != nil {
				return nil, nil, out.err
			}
			results[o][c] = out.res
			adaptives[MatrixKey(o, c, variant)] = out.ad
		}
	}
	return results, adaptives, nil
}
