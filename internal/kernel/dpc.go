package kernel

import (
	"wdmlat/internal/cpu"
	"wdmlat/internal/sim"
)

// Importance is a DPC queue-insertion policy. Ordinary DPCs queue FIFO
// (paper §2.1: "Because ordinary DPCs queue in FIFO order, DPC latency
// encompasses ... the aggregate time to execute all DPCs in the DPC queue
// when the DPC was enqueued"); HighImportance inserts at the queue head.
type Importance int

// The three WDM DPC importances (paper §4.1).
const (
	LowImportance Importance = iota
	MediumImportance
	HighImportance
)

// String implements fmt.Stringer.
func (i Importance) String() string {
	switch i {
	case LowImportance:
		return "Low"
	case MediumImportance:
		return "Medium"
	case HighImportance:
		return "High"
	default:
		return "Importance(?)"
	}
}

// DPC is a deferred procedure call — the unit of "interrupt context" work
// in WDM (a KDPC). Bodies receive a DpcContext and account their execution
// cost through Charge.
type DPC struct {
	Name       string
	Importance Importance
	fn         func(*DpcContext)

	doneLabel string      // precomputed completion-event label
	ctx       *DpcContext // reusable body context, bound on first run

	queued   bool
	queuedAt sim.Time
	runs     uint64
}

// NewDPC initializes a DPC (KeInitializeDpc).
func NewDPC(name string, imp Importance, fn func(*DpcContext)) *DPC {
	if fn == nil {
		panic("kernel: nil DPC body")
	}
	return &DPC{Name: name, Importance: imp, fn: fn, doneLabel: "dpc:" + name}
}

// Runs returns how many times the DPC has executed.
func (d *DPC) Runs() uint64 { return d.runs }

// Queued reports whether the DPC is currently in the queue.
func (d *DPC) Queued() bool { return d.queued }

// DpcContext is the execution environment of a DPC body: it runs at
// DISPATCH_LEVEL, may signal dispatcher objects, queue further DPCs, set
// timers and complete IRPs, but may not wait.
type DpcContext struct {
	k *Kernel
	d *DPC
}

// Now reads the time stamp counter including charged cycles.
func (c *DpcContext) Now() sim.Time { return c.k.cpu.TSC() }

// Charge accounts d cycles of DPC execution.
func (c *DpcContext) Charge(d sim.Cycles) { c.k.cpu.AddCharge(d) }

// SetEvent signals an event (KeSetEvent at DISPATCH_LEVEL).
func (c *DpcContext) SetEvent(ev *Event) { ev.set() }

// ReleaseSemaphore releases n units of a semaphore.
func (c *DpcContext) ReleaseSemaphore(s *Semaphore, n int) { s.release(n) }

// QueueDpc inserts another DPC into the queue.
func (c *DpcContext) QueueDpc(d *DPC) bool { return c.k.queueDpc(d) }

// SetTimer (re)arms a timer relative to now (KeSetTimer).
func (c *DpcContext) SetTimer(t *Timer, delay sim.Cycles, dpc *DPC) { c.k.setTimer(t, delay, dpc) }

// CompleteIrp completes an I/O request packet back to its originator.
func (c *DpcContext) CompleteIrp(irp *IRP) { c.k.completeIrp(irp) }

// QueueWorkItem schedules passive-level work on the kernel worker thread.
func (c *DpcContext) QueueWorkItem(w *WorkItem) { c.k.QueueWorkItem(w) }

// Kernel returns the owning kernel, for instrumentation-style drivers that
// need read-only access (e.g. the cause tool reading the current frame).
func (c *DpcContext) Kernel() *Kernel { return c.k }

// queueDpc is the internal KeInsertQueueDpc.
func (k *Kernel) queueDpc(d *DPC) bool {
	if d.queued {
		return false
	}
	d.queued = true
	d.queuedAt = k.now()
	if d.Importance == HighImportance {
		// Insert at the head in place; the queue is short and this avoids
		// reallocating a fresh backing array per high-importance insert.
		k.dpcQ = append(k.dpcQ, nil)
		copy(k.dpcQ[1:], k.dpcQ)
		k.dpcQ[0] = d
	} else {
		k.dpcQ = append(k.dpcQ, d)
	}
	if k.probe.DpcQueued != nil {
		k.probe.DpcQueued(d, d.queuedAt)
	}
	k.maybeRun()
	return true
}

// QueueDpc inserts a DPC from simulation-harness context (engine callbacks
// such as device models). Driver code should use the contexts instead.
func (k *Kernel) QueueDpc(d *DPC) bool { return k.queueDpc(d) }

// startDPC pops the queue head and runs it as a DISPATCH_LEVEL activity.
func (k *Kernel) startDPC() {
	d := k.dpcQ[0]
	// Shift down in place rather than reslicing from the front: reslicing
	// sheds capacity one slot per pop, so the next insert reallocates.
	n := copy(k.dpcQ, k.dpcQ[1:])
	k.dpcQ[n] = nil
	k.dpcQ = k.dpcQ[:n]
	d.queued = false
	d.runs++
	k.counters.DPCs++

	act := k.newActivity()
	act.kind = actDPC
	act.level = levelDispatch
	act.label = d.Name
	act.doneLabel = d.doneLabel
	act.frame = cpu.Frame{Module: d.Name, Function: "DPC"}
	k.occupy(act)

	k.cpu.ResetCharge()
	k.cpu.AddCharge(k.draw(k.cfg.DpcDispatch))
	if k.probe.DpcStarted != nil {
		k.probe.DpcStarted(d, d.queuedAt, k.cpu.TSC())
	}
	if d.ctx == nil || d.ctx.k != k {
		d.ctx = &DpcContext{k: k, d: d}
	}
	d.fn(d.ctx)
	act.remaining = k.cpu.ResetCharge()
}

// DpcQueueLen returns the number of DPCs currently queued.
func (k *Kernel) DpcQueueLen() int { return len(k.dpcQ) }
