// reproduce regenerates the full experimental record of EXPERIMENTS.md in
// one invocation: every table and figure, the §4.2/§5.2/§1.2 analyses, and
// the ablations, written as text artifacts under -outdir (default
// ./results).
//
// The measurement campaign fans out across -jobs workers (default
// GOMAXPROCS): every simulation cell is submitted to the campaign pool up
// front and each artifact is emitted as soon as the cells it depends on
// complete. Runs are deterministic for a given -seed, and because per-cell
// seeds are derived from the cell key (never from scheduling order), the
// artifacts are byte-identical for every -jobs value.
//
// With -checkpoint dir, every finished cell is persisted under dir, and a
// re-run of the same campaign skips cells already completed — a killed
// multi-hour matrix resumes instead of restarting, with byte-identical
// artifacts. SIGINT/SIGTERM cancels gracefully: no new cells are
// dispatched, running cells drain into the store, and the process exits
// non-zero naming the cells it had to drop.
//
// The campaign's own behavior is observable out-of-band: -progress reports
// cells done/total with throughput and an ETA, -telemetry out.json writes
// the final metrics snapshot (cell outcomes, checkpoint hits/misses,
// worker utilization, per-cell wall-time distribution), and -cpuprofile /
// -memprofile / -pprof expose the stdlib profilers. None of these affect
// the artifacts, which stay byte-identical with telemetry on or off.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"wdmlat/internal/campaign"
	"wdmlat/internal/cli"
	"wdmlat/internal/core"
	"wdmlat/internal/figures"
	"wdmlat/internal/interactive"
	"wdmlat/internal/microbench"
	"wdmlat/internal/mttf"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/par"
	"wdmlat/internal/report"
	"wdmlat/internal/rma"
	"wdmlat/internal/workload"
)

var oses = []ospersona.OS{ospersona.NT4, ospersona.Win98}

func main() {
	duration := flag.Duration("duration", 15*time.Minute, "virtual collection per cell")
	seed := flag.Uint64("seed", 3, "simulation seed")
	outdir := flag.String("outdir", "results", "artifact directory")
	runs := flag.Int("runs", 1, "replicas pooled per cell")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulation workers")
	checkpoint := flag.String("checkpoint", "", "checkpoint directory: persist finished cells and skip them on re-run")
	encodeOut := flag.String("encode", "", "also write the default matrix's raw per-cell results (exact codec bytes, cell order) to this file — the stream latserved serves for the same campaign")
	precf := cli.AddPrecisionFlags(flag.CommandLine)
	obs := cli.NewObs("reproduce", flag.CommandLine)
	cli.AddVersionFlag("reproduce", flag.CommandLine)
	flag.Parse()
	pol, err := precf.Policy()
	if err != nil {
		fail(err)
	}
	if pol != nil && *runs != 1 {
		fail(fmt.Errorf("-precision chooses replica counts adaptively; drop -runs"))
	}

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		fail(err)
	}
	if err := obs.Start(); err != nil {
		fail(err)
	}
	start := time.Now()

	// --- Submit the whole campaign up front ---------------------------------
	// Every core.Run cell of every artifact goes to one bounded pool; the
	// emission code below blocks only on the cells each artifact needs.
	ctx, stop := cli.SignalContext()
	defer stop()
	st, err := cli.OpenStore(*checkpoint, obs.Registry)
	if err != nil {
		fail(err)
	}
	run := campaign.New(campaign.Options{BaseSeed: *seed, Jobs: *jobs, Context: ctx, Store: st, Metrics: obs.Registry})
	failedRun, failedObs = run, obs
	obs.StartProgress(run)
	base := core.RunConfig{Duration: *duration}

	scannerKey := campaign.MatrixKey(ospersona.Win98, workload.Business, "scanner")
	scannerCfg := base
	scannerCfg.OS = ospersona.Win98
	scannerCfg.Workload = workload.Business
	scannerCfg.VirusScanner = true

	// In fixed-replica mode every cell is submitted up front. With a
	// -precision policy, the adaptive loops below own replica submission:
	// each logical cell keeps adding replicas until its tail quantiles
	// converge to the requested half-width (DESIGN.md §12).
	if pol == nil {
		step("campaign: %d cells x %d replicas on %d workers (%v virtual per cell)",
			2*len(workload.Classes)+1, *runs, *jobs, *duration)
		run.Submit(campaign.MatrixCells(oses, workload.Classes, "default", base, *runs)...)
		run.Submit(campaign.Replicas(scannerKey, scannerCfg, *runs)...)
	} else {
		step("adaptive campaign: %d logical cells on %d workers (%v virtual per cell, rel half-width %g)",
			2*len(workload.Classes)+1, *jobs, *duration, pol.RelWidth)
	}

	causeKey := campaign.MatrixKey(ospersona.Win98, workload.Business, "causetool")
	run.Submit(campaign.Cell{Key: causeKey, Config: core.RunConfig{
		OS: ospersona.Win98, Workload: workload.Business, Duration: *duration,
		SoundScheme: true, CauseAnalysis: true,
		CauseThreshold: 6 * time.Millisecond,
	}})

	// The non-campaign pipelines (throughput script, microbenchmarks,
	// interactive response) run concurrently with the pool.
	var (
		auxWG sync.WaitGroup
		tp    [2]core.ThroughputResult
		mb    [2]microbench.Results
		ir    [2]*interactive.Result
	)
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		par.ForEach(len(oses), *jobs, func(i int) {
			tp[i] = core.RunThroughput(oses[i], 300, *seed)
			mb[i] = microbench.Run(oses[i], *seed, 1000)
			ir[i] = interactive.Run(interactive.Config{
				OS: oses[i], Workload: workload.Business, Duration: *duration, Seed: *seed,
			})
		})
	}()

	// --- Tables 1 and 2 (static) -------------------------------------------
	emit(*outdir, "table1.txt", func(w io.Writer) error {
		return figures.Table1().Write(w)
	})
	emit(*outdir, "table2.txt", func(w io.Writer) error {
		for _, osSel := range oses {
			if err := figures.Table2(osSel).Write(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	})

	// --- The measurement campaign: both OSes × all workloads ----------------
	// Collection order is fixed (OS, then class, then replica index), so the
	// pooled results — and every artifact below — are independent of worker
	// count and completion order.
	byOS := map[ospersona.OS]map[workload.Class]*core.Result{}
	var ads map[string]campaign.Adaptive
	var scannerRes *core.Result
	var scannerAd campaign.Adaptive
	if pol != nil {
		// The scanner cell's adaptive loop runs concurrently with the
		// matrix; the runner's pool still bounds actual parallelism.
		var scanWG sync.WaitGroup
		var scanErr error
		scanWG.Add(1)
		go func() {
			defer scanWG.Done()
			scannerRes, scannerAd, scanErr = run.MergedAdaptive(scannerKey, scannerCfg, *pol)
		}()
		m, a, err := run.RunMatrixAdaptive(oses, workload.Classes, "default", base, *pol)
		if err != nil {
			cli.FailCampaign("reproduce", run, obs, err)
		}
		byOS, ads = m, a
		scanWG.Wait()
		if scanErr != nil {
			cli.FailCampaign("reproduce", run, obs, scanErr)
		}
	} else {
		for _, osSel := range oses {
			byOS[osSel] = map[workload.Class]*core.Result{}
			for _, wl := range workload.Classes {
				res, err := run.Merged(campaign.MatrixKey(osSel, wl, "default"), *runs)
				if err != nil {
					cli.FailCampaign("reproduce", run, obs, err)
				}
				byOS[osSel][wl] = res
			}
		}
	}

	// The -encode stream: the default matrix's replica cells, raw (not
	// pooled), in MatrixCells order — exactly the byte stream the campaign
	// service serves for this campaign, which serve-smoke diffs.
	if *encodeOut != "" {
		emit(filepath.Dir(*encodeOut), filepath.Base(*encodeOut), func(w io.Writer) error {
			if pol != nil {
				// Adaptive campaigns stream one pooled document per logical
				// cell, matching what latserved serves for the same
				// Precision-bearing spec.
				for _, osSel := range oses {
					for _, wl := range workload.Classes {
						if err := core.EncodeResult(w, byOS[osSel][wl]); err != nil {
							return err
						}
					}
				}
				return nil
			}
			for _, cell := range campaign.MatrixCells(oses, workload.Classes, "default", base, *runs) {
				res, err := run.Result(cell.Key)
				if err != nil {
					return err
				}
				if err := core.EncodeResult(w, res); err != nil {
					return err
				}
			}
			return nil
		})
	}

	// Figure 4 panels per OS.
	for _, osSel := range oses {
		osSel := osSel
		name := ospersona.ProfileFor(osSel).Name
		fname := "figure4_nt4.txt"
		if osSel == ospersona.Win98 {
			fname = "figure4_win98.txt"
		}
		emit(*outdir, fname, func(w io.Writer) error {
			dpc, t28, t24 := figures.Figure4Panels(byOS[osSel])
			if err := report.WriteLogLog(w, name+" DPC Interrupt Latency in Milliseconds (Figure 4)", dpc); err != nil {
				return err
			}
			fmt.Fprintln(w)
			if err := report.WriteLogLog(w, name+" Kernel Mode Thread (RT Priority 28) Latency (Figure 4)", t28); err != nil {
				return err
			}
			fmt.Fprintln(w)
			return report.WriteLogLog(w, name+" Kernel Mode Thread (RT Priority 24) Latency (Figure 4)", t24)
		})
		emit(*outdir, fname[:len(fname)-4]+".csv", func(w io.Writer) error {
			dpc, t28, t24 := figures.Figure4Panels(byOS[osSel])
			for _, s := range [][]report.Series{dpc, t28, t24} {
				if err := report.WriteCSV(w, s); err != nil {
					return err
				}
				fmt.Fprintln(w)
			}
			return nil
		})
	}

	// Table 3, both OSes. poolDesc keeps the fixed-mode titles byte-stable
	// while letting adaptive runs say what actually pooled.
	poolDesc := fmt.Sprintf("%v x %d per class", *duration, *runs)
	if pol != nil {
		poolDesc = fmt.Sprintf("%v x adaptive(w=%g) per class", *duration, pol.RelWidth)
	}
	emit(*outdir, "table3_win98.txt", func(w io.Writer) error {
		return figures.Table3(byOS[ospersona.Win98],
			fmt.Sprintf("Table 3: Observed Worst Case Windows 98 Latencies (ms), %s", poolDesc)).Write(w)
	})
	emit(*outdir, "table3_nt4.txt", func(w io.Writer) error {
		return figures.Table3(byOS[ospersona.NT4],
			fmt.Sprintf("Table 3 (NT side): Observed Worst Case NT 4.0 Latencies (ms), %s", poolDesc)).Write(w)
	})

	// Adaptive runs get a statistical appendix: the per-cell precision
	// table and the confidence-band CSV form of the Figure 4 panels. Gated
	// on -precision so the default artifact set stays byte-identical.
	if pol != nil {
		p := pol.Normalized()
		step("precision summary")
		emit(*outdir, "precision.txt", func(w io.Writer) error {
			title := fmt.Sprintf("Adaptive precision summary: rel half-width %g at %.0f%% confidence",
				p.RelWidth, p.Confidence*100)
			if err := figures.PrecisionTable(oses, workload.Classes, "default", byOS, ads, p, title).Write(w); err != nil {
				return err
			}
			fmt.Fprintf(w, "\nscanner cell %s: %d replicas, converged=%v\n",
				scannerKey, scannerAd.Replicas, scannerAd.Converged)
			return nil
		})
		emit(*outdir, "precision.csv", func(w io.Writer) error {
			for _, osSel := range oses {
				dpc, t28, t24 := figures.Figure4BandPanels(byOS[osSel], p.Confidence)
				for _, s := range [][]report.BandSeries{dpc, t28, t24} {
					if err := report.WriteBandCSV(w, s); err != nil {
						return err
					}
					fmt.Fprintln(w)
				}
			}
			return nil
		})
	}

	// Figures 6 and 7 from the Win98 distributions.
	step("MTTF curves")
	emit(*outdir, "figure6_dpc.txt", func(w io.Writer) error {
		curves := map[workload.Class][]mttf.Point{}
		for wl, r := range byOS[ospersona.Win98] {
			curves[wl] = mttf.Sweep(r.DpcInt, r.UsageObserved(), 4, 0.25, 17)
		}
		return figures.MTTFTable(curves, "Figure 6: MTTF to underrun, DPC-based datapump, Windows 98 (t=4ms)").Write(w)
	})
	emit(*outdir, "figure7_thread.txt", func(w io.Writer) error {
		curves := map[workload.Class][]mttf.Point{}
		for wl, r := range byOS[ospersona.Win98] {
			curves[wl] = mttf.Sweep(r.HwToThread[r.HighPriority()], r.UsageObserved(), 16, 0.25, 7)
		}
		return figures.MTTFTable(curves, "Figure 7: MTTF to underrun, thread-based datapump, Windows 98 (t=16ms)").Write(w)
	})

	// --- Figure 5: virus scanner --------------------------------------------
	step("Figure 5 (virus scanner)")
	emit(*outdir, "figure5_scanner.txt", func(w io.Writer) error {
		dirty := scannerRes
		if pol == nil {
			var err error
			dirty, err = run.Merged(scannerKey, *runs)
			if err != nil {
				return err
			}
		}
		clean := byOS[ospersona.Win98][workload.Business]
		at := dirty.Freq.FromMillis(15)
		fmt.Fprintf(w, "Figure 5: Effect of the Virus Scanner on RT Thread Latency (Win98, Business)\n\n")
		fmt.Fprintf(w, "P(thread latency >= 15 ms) per wait:\n")
		fmt.Fprintf(w, "  virus scanner ON : %.3g\n", dirty.Thread[24].CCDF(at))
		fmt.Fprintf(w, "  no virus scanner : %.3g\n", clean.Thread[24].CCDF(at))
		fmt.Fprintf(w, "worst case: %.1f ms (scanner) vs %.1f ms (clean)\n",
			dirty.Freq.Millis(dirty.Thread[24].Max()), clean.Freq.Millis(clean.Thread[24].Max()))
		return report.WriteLogLog(w, "Win98 Kernel Mode Thread (RT 24) Latency, scanner ON",
			[]report.Series{report.NewSeries("Business Apps w. Virus Scanner", dirty.Thread[24], 0.125, 128)})
	})

	// --- §4.2 throughput ------------------------------------------------------
	step("throughput")
	auxWG.Wait()
	emit(*outdir, "sec42_throughput.txt", func(w io.Writer) error {
		t := &report.Table{
			Title:   "Winstone-style throughput (§4.2)",
			Headers: []string{"System", "Script time (s)", "Score"},
		}
		for _, r := range tp {
			t.AddRow(r.OSName, fmt.Sprintf("%.2f", r.Seconds()), fmt.Sprintf("%.2f", r.Score()))
		}
		if err := t.Write(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nScore delta: %.1f%% (paper: ~10%% avg, 20%% max)\n", core.ThroughputDelta(tp[0], tp[1])*100)
		return nil
	})

	// --- Table 4: cause tool ---------------------------------------------------
	step("Table 4 (cause tool)")
	emit(*outdir, "table4_causetool.txt", func(w io.Writer) error {
		r, err := run.Result(causeKey)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Table 4: Cause Tool Output, Win98 w. Biz Apps, Default Sound Scheme (%d episodes)\n\n", len(r.Episodes))
		n := len(r.Episodes)
		if n > 4 {
			n = 4
		}
		for i := 0; i < n; i++ {
			if i > 0 {
				fmt.Fprintln(w)
			}
			if err := r.Episodes[i].Format(w); err != nil {
				return err
			}
		}
		return nil
	})

	// --- §5.2 schedulability ----------------------------------------------------
	step("§5.2 schedulability")
	emit(*outdir, "sec52_rma.txt", func(w io.Writer) error {
		for _, osSel := range oses {
			r := byOS[osSel][workload.Games]
			h := r.HwToThread[r.HighPriority()]
			block := rma.PseudoWorstCase(h, r.UsageObserved(), r.Freq.Cycles(time.Hour))
			fmt.Fprintf(w, "%s: pseudo worst case @ 1 drop/hour = %.2f ms\n", r.OSName, r.Freq.Millis(block))
			task := rma.Task{Name: "softmodem", Period: r.Freq.FromMillis(8), Compute: r.Freq.FromMillis(2), Blocking: block}
			if err := task.Validate(); err != nil {
				fmt.Fprintf(w, "  -> infeasible: %v\n\n", err)
				continue
			}
			res, ok, err := rma.Analyze([]rma.Task{task})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  -> response %.1f ms, schedulable=%v\n\n", r.Freq.Millis(res[0].Response), ok)
		}
		return nil
	})

	// --- §1.2: microbench + interactive ------------------------------------------
	step("§1.2 baselines")
	emit(*outdir, "sec12_microbench.txt", func(w io.Writer) error {
		t := &report.Table{
			Title:   "Traditional microbenchmarks: idle-system averages (µs)",
			Headers: []string{"Primitive"},
		}
		for _, r := range mb {
			t.Headers = append(t.Headers, r.OSName)
		}
		add := func(name string, pick func(microbench.Results) microbench.Stat) {
			row := []string{name}
			for _, r := range mb {
				row = append(row, fmt.Sprintf("%.1f", pick(r).MeanUS))
			}
			t.AddRow(row...)
		}
		add("context switch", func(r microbench.Results) microbench.Stat { return r.ContextSwitch })
		add("event signal", func(r microbench.Results) microbench.Stat { return r.EventSignal })
		add("dpc dispatch", func(r microbench.Results) microbench.Stat { return r.DpcDispatch })
		add("interrupt dispatch", func(r microbench.Results) microbench.Stat { return r.InterruptDispatch })
		return t.Write(w)
	})
	emit(*outdir, "sec12_interactive.txt", func(w io.Writer) error {
		t := &report.Table{
			Title:   "Interactive response under Business stress (Endo-style, §1.2)",
			Headers: []string{"System", "p50 (ms)", "p99 (ms)", "worst (ms)", "within 150 ms"},
		}
		for _, r := range ir {
			t.AddRow(r.OSName,
				fmt.Sprintf("%.1f", r.Freq.Millis(r.Response.Quantile(0.5))),
				fmt.Sprintf("%.1f", r.Freq.Millis(r.Response.Quantile(0.99))),
				fmt.Sprintf("%.1f", r.Freq.Millis(r.Response.Max())),
				fmt.Sprintf("%.2f%%", r.WithinMS(150)*100))
		}
		return t.Write(w)
	})

	if err := run.Wait(); err != nil {
		cli.FailCampaign("reproduce", run, obs, err)
	}
	if err := obs.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("done in %v; artifacts in %s/\n", time.Since(start).Round(time.Second), *outdir)
}

func step(format string, args ...any) {
	fmt.Printf("== "+format+"\n", args...)
}

// failedRun/failedObs let emit's error path drain the campaign and flush
// telemetry before exiting, so an interrupted reproduce still persists its
// running cells' checkpoints and its metrics snapshot.
var (
	failedRun *campaign.Runner
	failedObs *cli.Obs
)

func emit(dir, name string, fn func(io.Writer) error) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		if failedRun != nil {
			cli.FailCampaign("reproduce", failedRun, failedObs, err)
		}
		fail(err)
	}
	fmt.Printf("   wrote %s\n", filepath.Join(dir, name))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "reproduce:", err)
	os.Exit(1)
}
