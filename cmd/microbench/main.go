// microbench runs the traditional lmbench/hbench-style OS microbenchmark
// suite (§1.2) on the simulated systems and contrasts its idle-system
// averages with the loaded worst cases from the latency methodology — the
// paper's argument, rendered side by side: the averages cannot separate
// systems whose real-time behaviour differs by orders of magnitude.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wdmlat/internal/cli"
	"wdmlat/internal/core"
	"wdmlat/internal/microbench"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/report"
	"wdmlat/internal/workload"
)

func main() {
	iterations := flag.Int("n", 1000, "iterations per primitive")
	seed := flag.Uint64("seed", 1, "simulation seed")
	contrast := flag.Bool("contrast", true, "also show loaded worst cases for contrast")
	win2k := flag.Bool("win2000", false, "include the Windows 2000 Beta personality")
	cli.AddVersionFlag("microbench", flag.CommandLine)
	flag.Parse()

	oses := []ospersona.OS{ospersona.NT4, ospersona.Win98}
	if *win2k {
		oses = append(oses, ospersona.Win2000Beta)
	}

	t := &report.Table{
		Title:   "Traditional microbenchmarks: averages on an unloaded system (§1.2 methodology)",
		Headers: []string{"Primitive (mean µs)"},
	}
	var results []microbench.Results
	for _, osSel := range oses {
		r := microbench.Run(osSel, *seed, *iterations)
		results = append(results, r)
		t.Headers = append(t.Headers, r.OSName)
	}
	row := func(name string, pick func(r microbench.Results) microbench.Stat) {
		cells := []string{name}
		for _, r := range results {
			cells = append(cells, fmt.Sprintf("%.1f", pick(r).MeanUS))
		}
		t.AddRow(cells...)
	}
	row("thread context switch", func(r microbench.Results) microbench.Stat { return r.ContextSwitch })
	row("event signal -> RT thread", func(r microbench.Results) microbench.Stat { return r.EventSignal })
	row("DPC dispatch", func(r microbench.Results) microbench.Stat { return r.DpcDispatch })
	row("interrupt dispatch", func(r microbench.Results) microbench.Stat { return r.InterruptDispatch })
	row("timer expiry error", func(r microbench.Results) microbench.Stat { return r.TimerGranularity })
	if err := t.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "microbench:", err)
		os.Exit(1)
	}

	if !*contrast {
		return
	}
	fmt.Println()
	ct := &report.Table{
		Title:   "What those averages miss: loaded worst cases (3 virtual min of 3D gaming)",
		Headers: []string{"Loaded worst case (ms)"},
	}
	type loaded struct {
		name         string
		dpc, t28, t2 float64
	}
	var rows []loaded
	for _, osSel := range oses {
		r := core.Run(core.RunConfig{OS: osSel, Workload: workload.Games,
			Duration: 3 * time.Minute, Seed: *seed})
		rows = append(rows, loaded{
			name: r.OSName,
			dpc:  r.Freq.Millis(r.DpcIntOracle.Max()),
			t28:  r.Freq.Millis(r.Thread[28].Max()),
			t2:   r.Freq.Millis(r.Thread[24].Max()),
		})
		ct.Headers = append(ct.Headers, r.OSName)
	}
	add := func(name string, pick func(l loaded) float64) {
		cells := []string{name}
		for _, l := range rows {
			cells = append(cells, fmt.Sprintf("%.2f", pick(l)))
		}
		ct.AddRow(cells...)
	}
	add("DPC-interrupt latency", func(l loaded) float64 { return l.dpc })
	add("RT-28 thread latency", func(l loaded) float64 { return l.t28 })
	add("RT-24 thread latency", func(l loaded) float64 { return l.t2 })
	if err := ct.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "microbench:", err)
		os.Exit(1)
	}
	fmt.Println("\nThe idle averages sit within a small factor of each other; the loaded")
	fmt.Println("worst cases differ by orders of magnitude — the paper's §1.2 critique.")
}
